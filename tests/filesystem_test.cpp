// Tests for the in-memory file system: path helpers, tree operations,
// actions, and the §2.4 write/delete order semantics.
#include <gtest/gtest.h>

#include <memory>

#include "core/reconciler.hpp"
#include "objects/file_system.hpp"
#include "test_helpers.hpp"

namespace icecube {
namespace {

using testing::make_log;

TEST(FsPath, ParentOfNestedPath) {
  EXPECT_EQ(fspath::parent("/a/b/c"), "/a/b");
  EXPECT_EQ(fspath::parent("/a"), "/");
  EXPECT_EQ(fspath::parent("/"), "/");
}

TEST(FsPath, CoversSelfAndDescendants) {
  EXPECT_TRUE(fspath::covers("/a", "/a"));
  EXPECT_TRUE(fspath::covers("/a", "/a/b"));
  EXPECT_TRUE(fspath::covers("/a", "/a/b/c"));
  EXPECT_TRUE(fspath::covers("/", "/anything"));
  EXPECT_FALSE(fspath::covers("/a", "/ab"));  // prefix but not a component
  EXPECT_FALSE(fspath::covers("/a/b", "/a"));
}

TEST(FileSystem, StartsWithRootOnly) {
  FileSystem fs;
  EXPECT_TRUE(fs.is_dir("/"));
  EXPECT_EQ(fs.entry_count(), 1u);
}

TEST(FileSystem, MkdirRequiresParent) {
  FileSystem fs;
  EXPECT_TRUE(fs.mkdir("/a"));
  EXPECT_FALSE(fs.mkdir("/a"));      // already exists
  EXPECT_FALSE(fs.mkdir("/b/c"));    // missing parent
  EXPECT_TRUE(fs.mkdir("/a/b"));
  EXPECT_TRUE(fs.is_dir("/a/b"));
}

TEST(FileSystem, WriteCreatesAndOverwrites) {
  FileSystem fs;
  ASSERT_TRUE(fs.mkdir("/a"));
  EXPECT_TRUE(fs.write("/a/f", "one"));
  EXPECT_EQ(fs.read("/a/f"), "one");
  EXPECT_TRUE(fs.write("/a/f", "two"));
  EXPECT_EQ(fs.read("/a/f"), "two");
  EXPECT_FALSE(fs.write("/a", "oops"));   // target is a directory
  EXPECT_FALSE(fs.write("/b/f", "no"));   // missing parent
}

TEST(FileSystem, RemoveDeletesSubtree) {
  FileSystem fs;
  ASSERT_TRUE(fs.mkdir("/a"));
  ASSERT_TRUE(fs.mkdir("/a/b"));
  ASSERT_TRUE(fs.write("/a/b/f", "x"));
  ASSERT_TRUE(fs.write("/a/g", "y"));
  EXPECT_TRUE(fs.remove("/a"));
  EXPECT_FALSE(fs.exists("/a"));
  EXPECT_FALSE(fs.exists("/a/b"));
  EXPECT_FALSE(fs.exists("/a/b/f"));
  EXPECT_FALSE(fs.exists("/a/g"));
  EXPECT_TRUE(fs.is_dir("/"));
  EXPECT_FALSE(fs.remove("/"));  // the root is not removable
}

TEST(FileSystem, ActionsEnforcePreconditions) {
  Universe u;
  const ObjectId fs = u.add(std::make_unique<FileSystem>());
  EXPECT_FALSE(WriteFileAction(fs, "/d/f", "x").precondition(u));
  ASSERT_TRUE(MkdirAction(fs, "/d").precondition(u));
  ASSERT_TRUE(MkdirAction(fs, "/d").execute(u));
  EXPECT_TRUE(WriteFileAction(fs, "/d/f", "x").precondition(u));
  EXPECT_FALSE(DeleteAction(fs, "/d/f").precondition(u));  // doesn't exist
  ASSERT_TRUE(WriteFileAction(fs, "/d/f", "x").execute(u));
  EXPECT_TRUE(DeleteAction(fs, "/d/f").precondition(u));
}

TEST(FileSystem, CloneIsDeep) {
  FileSystem fs;
  ASSERT_TRUE(fs.mkdir("/a"));
  auto copy = fs.clone();
  ASSERT_TRUE(fs.write("/a/f", "x"));
  EXPECT_FALSE(dynamic_cast<FileSystem&>(*copy).exists("/a/f"));
}

// ---------------------------------------------------------------------------
// §2.4 order semantics: write-before-delete unsafe, delete-before-write
// maybe.

TEST(FileSystemOrder, WriteBeforeParentDeleteIsUnsafe) {
  Universe u;
  const ObjectId fs_id = u.add(std::make_unique<FileSystem>());
  const auto& fs = u.as<FileSystem>(fs_id);
  const WriteFileAction write(fs_id, "/dir/file", "work");
  const DeleteAction del(fs_id, "/dir");
  EXPECT_EQ(fs.order(write, del, LogRelation::kAcrossLogs),
            Constraint::kUnsafe);
  EXPECT_EQ(fs.order(del, write, LogRelation::kAcrossLogs),
            Constraint::kMaybe);
}

TEST(FileSystemOrder, UnrelatedPathsCommute) {
  Universe u;
  const ObjectId fs_id = u.add(std::make_unique<FileSystem>());
  const auto& fs = u.as<FileSystem>(fs_id);
  const WriteFileAction w1(fs_id, "/a/f", "x");
  const WriteFileAction w2(fs_id, "/b/g", "y");
  EXPECT_EQ(fs.order(w1, w2, LogRelation::kAcrossLogs), Constraint::kSafe);
  EXPECT_EQ(fs.order(w1, w2, LogRelation::kSameLog), Constraint::kSafe);
}

TEST(FileSystemOrder, SamePathConcurrentWritesAreMaybe) {
  Universe u;
  const ObjectId fs_id = u.add(std::make_unique<FileSystem>());
  const auto& fs = u.as<FileSystem>(fs_id);
  const WriteFileAction w1(fs_id, "/f", "x");
  const WriteFileAction w2(fs_id, "/f", "y");
  EXPECT_EQ(fs.order(w1, w2, LogRelation::kAcrossLogs), Constraint::kMaybe);
}

TEST(FileSystemOrder, RelatedPathsKeepLogOrderWithinLog) {
  Universe u;
  const ObjectId fs_id = u.add(std::make_unique<FileSystem>());
  const auto& fs = u.as<FileSystem>(fs_id);
  const MkdirAction mk(fs_id, "/d");
  const WriteFileAction w(fs_id, "/d/f", "x");
  EXPECT_EQ(fs.order(w, mk, LogRelation::kSameLog), Constraint::kUnsafe);
}

// ---------------------------------------------------------------------------
// The paper's scenario, reconciled end to end: user 1 writes a file while
// user 2 deletes its parent directory. The unsafe constraint forces the
// delete first; the write then fails dynamically and is surfaced (rather
// than silently losing the write).

TEST(FileSystemReconcile, ConcurrentWriteAndParentDelete) {
  Universe u;
  const ObjectId fs = u.add(std::make_unique<FileSystem>());
  {
    // Common initial state: /dir exists with a file in it.
    ASSERT_TRUE(MkdirAction(fs, "/dir").execute(u));
    ASSERT_TRUE(WriteFileAction(fs, "/dir/old", "v0").execute(u));
  }
  std::vector<Log> logs;
  logs.push_back(make_log(
      "writer", {std::make_shared<WriteFileAction>(fs, "/dir/new", "v1")}));
  logs.push_back(
      make_log("deleter", {std::make_shared<DeleteAction>(fs, "/dir")}));

  ReconcilerOptions opts;
  opts.heuristic = Heuristic::kAll;
  Reconciler r(u, logs, opts);
  // D: the delete (action 1) must precede the write (action 0).
  EXPECT_TRUE(r.relations().depends(ActionId(1), ActionId(0)));
  const auto result = r.run();
  // The write fails after the delete: no complete schedule, and the best
  // outcome executed only the delete — the conflict is visible, not silent.
  EXPECT_EQ(result.stats.schedules_completed, 0u);
  ASSERT_TRUE(result.found_any());
  EXPECT_EQ(result.best().schedule, std::vector<ActionId>{ActionId(1)});
  EXPECT_GE(result.stats.precondition_failures, 1u);
  EXPECT_FALSE(
      result.best().final_state.as<FileSystem>(fs).exists("/dir/new"));
}

TEST(FileSystemReconcile, IndependentUsersMergeCleanly) {
  Universe u;
  const ObjectId fs = u.add(std::make_unique<FileSystem>());
  ASSERT_TRUE(MkdirAction(fs, "/alice").execute(u));
  ASSERT_TRUE(MkdirAction(fs, "/bob").execute(u));

  std::vector<Log> logs;
  logs.push_back(make_log(
      "alice", {std::make_shared<WriteFileAction>(fs, "/alice/a", "1"),
                std::make_shared<MkdirAction>(fs, "/alice/sub")}));
  logs.push_back(make_log(
      "bob", {std::make_shared<WriteFileAction>(fs, "/bob/b", "2"),
              std::make_shared<DeleteAction>(fs, "/bob/b")}));
  Reconciler r(u, logs);
  const auto result = r.run();
  ASSERT_TRUE(result.found_any());
  EXPECT_TRUE(result.best().complete);
  const auto& merged = result.best().final_state.as<FileSystem>(fs);
  EXPECT_EQ(merged.read("/alice/a"), "1");
  EXPECT_TRUE(merged.is_dir("/alice/sub"));
  EXPECT_FALSE(merged.exists("/bob/b"));
}

}  // namespace
}  // namespace icecube
