// The streaming daemon's infrastructure pieces in isolation: the SPSC ring
// (including a two-thread stress pass that gives TSan a real interleaving
// to check), the bump-pointer arena, and the timing wheel.
#include <cstdint>
#include <memory>
#include <numeric>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "stream/daemon.hpp"
#include "util/arena.hpp"
#include "util/spsc_ring.hpp"
#include "util/wheel_timer.hpp"

namespace icecube {
namespace {

// --- SPSC ring ------------------------------------------------------------

TEST(SpscRing, FifoOrderAndCapacity) {
  SpscRing<int, 8> ring;
  EXPECT_EQ(ring.capacity(), 7u);
  EXPECT_TRUE(ring.empty());
  for (int i = 0; i < 7; ++i) EXPECT_TRUE(ring.try_push(i));
  EXPECT_FALSE(ring.try_push(99));  // full: backpressure, not overwrite
  EXPECT_EQ(ring.size(), 7u);
  for (int i = 0; i < 7; ++i) {
    int out = -1;
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);
  }
  int out = -1;
  EXPECT_FALSE(ring.try_pop(out));
}

TEST(SpscRing, WrapAroundManyRevolutions) {
  SpscRing<std::uint64_t, 16> ring;
  std::uint64_t next_in = 0;
  std::uint64_t next_out = 0;
  // Push/pop in ragged runs so head and tail cross the wrap point at
  // different offsets many times.
  for (int round = 0; round < 1000; ++round) {
    const std::size_t burst = 1 + (static_cast<std::size_t>(round) % 11);
    for (std::size_t i = 0; i < burst; ++i) {
      if (!ring.try_push(next_in)) break;
      ++next_in;
    }
    const std::size_t drain = 1 + (static_cast<std::size_t>(round) % 7);
    for (std::size_t i = 0; i < drain; ++i) {
      std::uint64_t out = 0;
      if (!ring.try_pop(out)) break;
      EXPECT_EQ(out, next_out++);
    }
  }
  std::uint64_t out = 0;
  while (ring.try_pop(out)) EXPECT_EQ(out, next_out++);
  EXPECT_EQ(next_out, next_in);
}

TEST(SpscRing, PopBatchDrainsInOrder) {
  SpscRing<int, 32> ring;
  for (int i = 0; i < 20; ++i) ASSERT_TRUE(ring.try_push(i));
  std::vector<int> got(32, -1);
  EXPECT_EQ(ring.pop_batch(got.begin(), 8), 8u);
  EXPECT_EQ(ring.pop_batch(got.begin() + 8, 32), 12u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)], i);
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, MovesOwnershipThroughTheRing) {
  SpscRing<std::unique_ptr<int>, 8> ring;
  ASSERT_TRUE(ring.try_push(std::make_unique<int>(42)));
  std::unique_ptr<int> out;
  ASSERT_TRUE(ring.try_pop(out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 42);
}

/// The TSan workhorse: one producer pushes 1M sequenced values while the
/// consumer concurrently drains (mixing try_pop and pop_batch). Any missing
/// ordering in the ring shows up as a TSan race or a sequence gap.
TEST(SpscRing, TwoThreadStressOneMillion) {
  constexpr std::uint64_t kCount = 1'000'000;
  SpscRing<std::uint64_t, 1024> ring;
  std::thread producer([&ring] {
    for (std::uint64_t i = 0; i < kCount; ++i) {
      while (!ring.try_push(i)) std::this_thread::yield();
    }
  });
  std::uint64_t expected = 0;
  std::uint64_t checksum = 0;
  std::vector<std::uint64_t> batch(256);
  while (expected < kCount) {
    if (expected % 3 == 0) {
      const std::size_t got = ring.pop_batch(batch.begin(), batch.size());
      for (std::size_t i = 0; i < got; ++i) {
        ASSERT_EQ(batch[i], expected++);
        checksum += batch[i];
      }
      if (got == 0) std::this_thread::yield();
    } else {
      std::uint64_t out = 0;
      if (ring.try_pop(out)) {
        ASSERT_EQ(out, expected++);
        checksum += out;
      } else {
        std::this_thread::yield();
      }
    }
  }
  producer.join();
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(checksum, kCount * (kCount - 1) / 2);
}

// --- arena ----------------------------------------------------------------

TEST(Arena, AlignedAllocationAcrossChunkBoundaries) {
  Arena arena(/*chunk_bytes=*/128);
  for (int i = 0; i < 100; ++i) {
    void* p8 = arena.allocate(24, 8);
    void* p64 = arena.allocate(40, 64);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p8) % 8, 0u);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p64) % 64, 0u);
  }
  EXPECT_GT(arena.chunk_count(), 1u);
}

TEST(Arena, OversizedRequestGetsItsOwnChunk) {
  Arena arena(/*chunk_bytes=*/64);
  void* big = arena.allocate(4096, 16);
  ASSERT_NE(big, nullptr);
  EXPECT_GE(arena.bytes_reserved(), 4096u);
}

struct CountedDtor {
  explicit CountedDtor(int* counter) : counter_(counter) {}
  ~CountedDtor() { ++*counter_; }
  int* counter_;
  char payload[24] = {};
};

TEST(Arena, ResetRunsDestructorsAndReusesMemory) {
  int destroyed = 0;
  Arena arena(/*chunk_bytes=*/256);
  for (int i = 0; i < 32; ++i) (void)arena.make<CountedDtor>(&destroyed);
  const std::size_t reserved = arena.bytes_reserved();
  const std::size_t chunks = arena.chunk_count();
  arena.reset();
  EXPECT_EQ(destroyed, 32);
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  // Steady state: the refill allocates no new chunks.
  for (int i = 0; i < 32; ++i) (void)arena.make<CountedDtor>(&destroyed);
  EXPECT_EQ(arena.bytes_reserved(), reserved);
  EXPECT_EQ(arena.chunk_count(), chunks);
}

TEST(Arena, TrivialTypesSkipFinalizers) {
  Arena arena;
  int* n = arena.make<int>(7);
  EXPECT_EQ(*n, 7);
  arena.reset();  // must not touch *n's (nonexistent) destructor
}

TEST(Arena, DestructorRunsFinalizersOnScopeExit) {
  int destroyed = 0;
  {
    Arena arena;
    (void)arena.make<CountedDtor>(&destroyed);
    (void)arena.make<CountedDtor>(&destroyed);
  }
  EXPECT_EQ(destroyed, 2);
}

// --- timing wheel ---------------------------------------------------------

std::vector<WheelTimer::TimerId> fired_ids(WheelTimer& wheel,
                                           std::uint64_t to_tick) {
  std::vector<WheelTimer::TimerId> ids;
  wheel.advance(to_tick,
                [&ids](WheelTimer::TimerId id, std::uint64_t) {
                  ids.push_back(id);
                });
  return ids;
}

TEST(WheelTimer, FiresAtDeadlineNotBefore) {
  WheelTimer wheel(100);
  const auto id = wheel.schedule(110);
  EXPECT_TRUE(fired_ids(wheel, 109).empty());
  const auto fired = fired_ids(wheel, 110);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], id);
  EXPECT_EQ(wheel.armed(), 0u);
}

TEST(WheelTimer, PastDeadlineFiresOnNextAdvance) {
  WheelTimer wheel(50);
  (void)wheel.schedule(10);  // already in the past
  EXPECT_EQ(fired_ids(wheel, 51).size(), 1u);
}

TEST(WheelTimer, CancelSuppressesFiring) {
  WheelTimer wheel;
  const auto a = wheel.schedule(5);
  const auto b = wheel.schedule(5);
  wheel.cancel(a);
  const auto fired = fired_ids(wheel, 10);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], b);
}

TEST(WheelTimer, OverflowBeyondOneRevolutionStillFires) {
  WheelTimer wheel(0, /*slots=*/16);
  const auto far = wheel.schedule(1000);   // 62 revolutions out
  const auto near = wheel.schedule(3);
  auto fired = fired_ids(wheel, 500);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], near);
  fired = fired_ids(wheel, 2000);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], far);
}

TEST(WheelTimer, SameSlotDifferentRevolutionsDoNotCollide) {
  WheelTimer wheel(0, /*slots=*/16);
  const auto late = wheel.schedule(4 + 16);  // same slot as `early`
  const auto early = wheel.schedule(4);
  auto fired = fired_ids(wheel, 4);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], early);
  fired = fired_ids(wheel, 20);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], late);
}

TEST(WheelTimer, IdleGapFastForwardsWithoutSpinning) {
  WheelTimer wheel;
  // A multi-billion-tick jump with nothing armed must return immediately
  // (the advance loop short-circuits); this test hangs if it does not.
  EXPECT_EQ(fired_ids(wheel, 10'000'000'000ULL).size(), 0u);
  EXPECT_EQ(wheel.now(), 10'000'000'000ULL);
  const auto id = wheel.schedule(10'000'000'005ULL);
  const auto fired = fired_ids(wheel, 10'000'000'010ULL);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], id);
}

// --- latency histogram ----------------------------------------------------

TEST(LatencyHistogram, QuantilesBracketTheSamples) {
  LatencyHistogram hist;
  // 1µs and 1ms populations, 90/10.
  for (int i = 0; i < 900; ++i) hist.record(1'000);
  for (int i = 0; i < 100; ++i) hist.record(1'000'000);
  EXPECT_EQ(hist.count(), 1000u);
  const double p50 = hist.quantile_ms(0.50);
  const double p99 = hist.quantile_ms(0.99);
  EXPECT_GT(p50, 0.0005);
  EXPECT_LT(p50, 0.005);
  EXPECT_GT(p99, 0.5);
  EXPECT_LT(p99, 3.0);
  EXPECT_LE(p50, p99);
}

TEST(LatencyHistogram, EmptyHistogramReportsZero) {
  const LatencyHistogram hist;
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_EQ(hist.quantile_ms(0.5), 0.0);
}

}  // namespace
}  // namespace icecube
