// Chaos coverage for the decentralised commitment layer: hostile seed
// sweeps where every committed action must also become irrevocable, a
// 50+-site partition storm, the vote-withholding fault knobs, and replay
// determinism of commitment traffic.
#include <gtest/gtest.h>

#include <string>

#include "simnet/chaos.hpp"

namespace icecube {
namespace {

std::string failure_detail(const ChaosReport& report) {
  std::string out = "seed " + std::to_string(report.seed) + ": converged=" +
                    (report.converged ? "yes" : "no") +
                    " steps=" + std::to_string(report.steps) +
                    " stable=" + std::to_string(report.stable_actions) + "/" +
                    std::to_string(report.total_actions);
  for (const Violation& v : report.violations) {
    out += "\n  " + v.message();
  }
  out += "\n  replay: tools/chaos --seed " + std::to_string(report.seed);
  return out;
}

ChaosSpec hostile_commit_spec(std::uint64_t seed) {
  ChaosSpec spec;
  spec.seed = seed;
  spec.sites = 4 + seed % 4;  // 4..7 sites
  spec.actions_per_site = 3;
  spec.fault_horizon = 250;
  spec.step_budget = 80000;
  spec.faults.lose = 0.08;
  spec.faults.corrupt = 0.05;
  spec.faults.truncate = 0.04;
  spec.faults.duplicate = 0.08;
  spec.faults.reorder = 0.10;
  spec.faults.delay_max = 3;
  spec.faults.partition = 0.04;
  spec.faults.site_down = 0.04;
  spec.faults.drop_vote = 0.10;
  spec.faults.stale_vote = 0.10;
  spec.deep_replay = false;
  spec.keep_trace = false;
  return spec;
}

TEST(CommitChaos, HostileSweepStabilisesEveryAction) {
  // The big 200-seed sweep (chaos_test.cpp) already runs commitment by
  // default; this one adds the vote-withholding faults and asserts the
  // stronger postcondition explicitly: every workload action ends
  // irrevocable at every site, with at least one election decided.
  for (std::uint64_t seed = 1000; seed < 1030; ++seed) {
    const ChaosReport report = run_chaos(hostile_commit_spec(seed));
    ASSERT_TRUE(report.ok()) << failure_detail(report);
    EXPECT_EQ(report.stable_actions, report.total_actions)
        << failure_detail(report);
    EXPECT_GE(report.commit_totals.decisions, 1u);
    EXPECT_GE(report.stable_height, 1u);
  }
}

TEST(CommitChaos, FiftySitePartitionStorm) {
  // 54 sites, cleaved into three blocks of 18 for a long stretch while
  // two sites crash, then healed. Each block keeps gossiping and
  // campaigning internally; no block is a majority, so nothing may be
  // decided before the heal — and everything must be decided after it.
  ChaosSpec spec;
  spec.seed = 4242;
  spec.sites = 54;
  spec.actions_per_site = 2;
  spec.fault_horizon = 0;  // scheduled faults only
  spec.step_budget = 400000;
  spec.deep_replay = false;
  spec.keep_trace = false;
  const std::size_t block = spec.sites / 3;
  for (std::size_t i = 0; i < spec.sites; ++i) {
    for (std::size_t j = i + 1; j < spec.sites; ++j) {
      if (i / block != j / block) {
        spec.partitions.push_back(
            {chaos_site_name(i), chaos_site_name(j), 5, 160});
      }
    }
  }
  spec.crashes.push_back({chaos_site_name(0), 20, 200});
  spec.crashes.push_back({chaos_site_name(30), 40, 180});

  const ChaosReport report = run_chaos(spec);
  ASSERT_TRUE(report.ok()) << failure_detail(report);
  // No block of 18 could dominate 36 unheard voters: every decision
  // post-dates the heal, and still every action became stable everywhere.
  EXPECT_GE(report.converged_at, 160u);
  EXPECT_EQ(report.stable_actions, report.total_actions);
  EXPECT_EQ(report.total_actions, 54u * 2u);
  EXPECT_GT(report.net.dropped_partition, 0u);
  EXPECT_GE(report.commit_totals.decisions, spec.sites);  // >=1 per engine
}

TEST(CommitChaos, VoteWithholdingKnobsStillLive) {
  // Even with a third of commitment frames withheld and a third sent
  // stale, elections terminate once the faults stop — progress only needs
  // the network to eventually deliver knowledge.
  for (std::uint64_t seed = 2000; seed < 2010; ++seed) {
    ChaosSpec spec;
    spec.seed = seed;
    spec.sites = 5;
    spec.actions_per_site = 3;
    spec.fault_horizon = 200;
    spec.faults.drop_vote = 0.33;
    spec.faults.stale_vote = 0.33;
    spec.deep_replay = false;
    spec.keep_trace = false;
    const ChaosReport report = run_chaos(spec);
    ASSERT_TRUE(report.ok()) << failure_detail(report);
    EXPECT_EQ(report.stable_actions, report.total_actions);
  }
}

TEST(CommitChaos, CommitmentTrafficReplaysDeterministically) {
  ChaosSpec spec = hostile_commit_spec(77);
  spec.keep_trace = true;
  const ChaosReport first = run_chaos(spec);
  const ChaosReport second = run_chaos(spec);
  EXPECT_EQ(first.trace_crc, second.trace_crc);
  EXPECT_EQ(first.trace, second.trace);
  EXPECT_EQ(first.to_json(), second.to_json());
  ASSERT_FALSE(first.trace.empty());
}

TEST(CommitChaos, OptOutRunsGossipOnly) {
  ChaosSpec spec = hostile_commit_spec(5);
  spec.commitment = false;
  const ChaosReport report = run_chaos(spec);
  ASSERT_TRUE(report.ok()) << failure_detail(report);
  EXPECT_EQ(report.commit_totals.frames_received, 0u);
  EXPECT_EQ(report.stable_actions, 0u);
}

}  // namespace
}  // namespace icecube
