// Tests for the sys-admin substrate and the paper's first motivating
// example (§2): IceCube must find A3, B1, B2, A1, A2 (or a statically
// equivalent permutation) where fixed-order merges fail.
#include <gtest/gtest.h>

#include <memory>

#include "baseline/temporal_merge.hpp"
#include "core/reconciler.hpp"
#include "objects/sysadmin.hpp"

namespace icecube {
namespace {

// Flattened action ids in the example: A1=0, A2=1, A3=2, B1=3, B2=4.
constexpr ActionId kA1{0}, kA2{1}, kA3{2}, kB1{3}, kB2{4};

TEST(OsSystem, UpgradeBumpsVersionAndDrivers) {
  OsSystem os(4);
  os.buy(1);
  os.install_driver(1, 4);
  os.upgrade(5);
  EXPECT_EQ(os.version(), 5);
  EXPECT_EQ(os.driver_version(1), 5);  // drivers auto-upgraded
}

TEST(OsSystem, InstallRequiresOwnershipAndMatchingVersion) {
  Universe u;
  const ObjectId os = u.add(std::make_unique<OsSystem>(4));
  EXPECT_FALSE(InstallDriverAction(os, 7, 4).precondition(u));  // not owned
  u.as<OsSystem>(os).buy(7);
  EXPECT_TRUE(InstallDriverAction(os, 7, 4).precondition(u));
  EXPECT_FALSE(InstallDriverAction(os, 7, 5).precondition(u));  // wrong v
  u.as<OsSystem>(os).upgrade(5);
  EXPECT_FALSE(InstallDriverAction(os, 7, 4).precondition(u));
}

TEST(SysBudget, SpendGuardsBalance) {
  SysBudget budget(100);
  EXPECT_FALSE(budget.spend(101));
  EXPECT_EQ(budget.balance(), 100);
  EXPECT_TRUE(budget.spend(100));
  EXPECT_EQ(budget.balance(), 0);
  budget.fund(50);
  EXPECT_EQ(budget.balance(), 50);
}

TEST(SysAdminOrder, InstallBeforeUpgradeConstraints) {
  Universe u;
  const ObjectId os_id = u.add(std::make_unique<OsSystem>(4));
  const auto& os = u.as<OsSystem>(os_id);
  const InstallDriverAction install_v4(os_id, 2, 4);
  const InstallDriverAction install_v5(os_id, 2, 5);
  const UpgradeOsAction upgrade(os_id, 4, 5);
  // A v4 driver install must happen before the upgrade...
  EXPECT_EQ(os.order(install_v4, upgrade, LogRelation::kAcrossLogs),
            Constraint::kSafe);
  EXPECT_EQ(os.order(upgrade, install_v4, LogRelation::kAcrossLogs),
            Constraint::kUnsafe);
  // ...and a v5 driver install only after it.
  EXPECT_EQ(os.order(install_v5, upgrade, LogRelation::kAcrossLogs),
            Constraint::kUnsafe);
  EXPECT_EQ(os.order(upgrade, install_v5, LogRelation::kAcrossLogs),
            Constraint::kSafe);
}

TEST(SysAdminOrder, PurchaseBeforeInstallOfSameDevice) {
  Universe u;
  const ObjectId os_id = u.add(std::make_unique<OsSystem>(4));
  const ObjectId budget = u.add(std::make_unique<SysBudget>(1000));
  const auto& os = u.as<OsSystem>(os_id);
  const BuyDeviceAction buy(os_id, budget, 2, 400);
  const InstallDriverAction install(os_id, 2, 4);
  EXPECT_EQ(os.order(buy, install, LogRelation::kAcrossLogs),
            Constraint::kSafe);
  EXPECT_EQ(os.order(install, buy, LogRelation::kAcrossLogs),
            Constraint::kUnsafe);
}

TEST(SysAdminOrder, BudgetOrdersFundingBeforeSpending) {
  Universe u;
  const ObjectId os_id = u.add(std::make_unique<OsSystem>(4));
  const ObjectId budget_id = u.add(std::make_unique<SysBudget>(1000));
  const auto& budget = u.as<SysBudget>(budget_id);
  const FundBudgetAction fund(budget_id, 1500);
  const BuyDeviceAction buy(os_id, budget_id, 1, 800);
  EXPECT_EQ(budget.order(fund, buy, LogRelation::kAcrossLogs),
            Constraint::kSafe);
  EXPECT_EQ(budget.order(buy, fund, LogRelation::kAcrossLogs),
            Constraint::kMaybe);
  // Within a log, pulling a purchase before a funding step is disallowed.
  EXPECT_EQ(budget.order(buy, fund, LogRelation::kSameLog),
            Constraint::kUnsafe);
  EXPECT_EQ(budget.order(fund, buy, LogRelation::kSameLog), Constraint::kSafe);
}

// Regression for the witness the constraint soundness auditor found
// (UNSOUND_SAFE): two purchases that each fit the balance alone can jointly
// overdraw it, so buy/buy across logs must not claim `safe`. Witness:
// balance=1000 — buy(400) alone succeeds, but buy(800) immediately followed
// by buy(400) fails.
TEST(SysAdminOrder, BuyBuyAcrossLogsIsNotSafe) {
  Universe u;
  const ObjectId os_id = u.add(std::make_unique<OsSystem>(4));
  const ObjectId budget_id = u.add(std::make_unique<SysBudget>(1000));
  const BuyDeviceAction a(os_id, budget_id, 1, 800);
  const BuyDeviceAction b(os_id, budget_id, 2, 400);
  EXPECT_TRUE(b.precondition(u));  // b alone succeeds from the witness state
  Universe chain = u;
  ASSERT_TRUE(a.precondition(chain));
  ASSERT_TRUE(a.execute(chain));
  EXPECT_FALSE(b.precondition(chain));  // the chain a-then-b fails
  EXPECT_EQ(u.as<SysBudget>(budget_id).order(a, b, LogRelation::kAcrossLogs),
            Constraint::kMaybe);
}

// ---------------------------------------------------------------------------
// The full motivating example.

TEST(SysAdminExampleTest, CrossLogDependencyIsDiscovered) {
  SysAdminExample ex = make_sysadmin_example();
  Reconciler r(ex.initial, ex.logs);
  // "B2 must run before A1" — discovered although the actions are causally
  // independent.
  EXPECT_TRUE(r.relations().depends(kB2, kA1));
  // "A3 may run before A1 and A2" — in-log order relaxed.
  EXPECT_FALSE(r.relations().depends(kA2, kA3));
  EXPECT_TRUE(r.relations().independent(kA3, kA2));
}

TEST(SysAdminExampleTest, ReconcilerFindsCompleteSolution) {
  SysAdminExample ex = make_sysadmin_example();
  ReconcilerOptions opts;
  opts.heuristic = Heuristic::kAll;
  Reconciler r(ex.initial, ex.logs, opts);
  const auto result = r.run();
  ASSERT_TRUE(result.found_any());
  const Outcome& best = result.best();
  ASSERT_TRUE(best.complete);
  EXPECT_EQ(best.schedule.size(), 5u);

  const auto& os = best.final_state.as<OsSystem>(ex.os);
  const auto& budget = best.final_state.as<SysBudget>(ex.budget);
  EXPECT_EQ(os.version(), 5);
  EXPECT_TRUE(os.owns(SysAdminExample::kTapeDrive));
  EXPECT_TRUE(os.owns(SysAdminExample::kPrinter));
  EXPECT_EQ(os.driver_version(SysAdminExample::kPrinter), 5);  // upgraded
  EXPECT_EQ(budget.balance(), 1000 + 1500 - 800 - 400);
}

TEST(SysAdminExampleTest, PaperSolutionIsAmongCompleteSchedules) {
  SysAdminExample ex = make_sysadmin_example();
  ReconcilerOptions opts;
  opts.heuristic = Heuristic::kAll;
  opts.keep_outcomes = 128;
  Reconciler r(ex.initial, ex.logs, opts);
  const auto result = r.run();
  // The paper's proposed solution: A3, B1, B2, A1, A2.
  const std::vector<ActionId> paper{kA3, kB1, kB2, kA1, kA2};
  bool found = false;
  for (const auto& o : result.outcomes) found = found || o.schedule == paper;
  EXPECT_TRUE(found) << "paper's schedule not among retained outcomes";
}

TEST(SysAdminExampleTest, EveryCompleteScheduleRunsB2BeforeA1) {
  SysAdminExample ex = make_sysadmin_example();
  ReconcilerOptions opts;
  opts.heuristic = Heuristic::kAll;
  opts.keep_outcomes = 256;
  Reconciler r(ex.initial, ex.logs, opts);
  const auto result = r.run();
  int complete = 0;
  for (const auto& o : result.outcomes) {
    if (!o.complete) continue;
    ++complete;
    const auto pos = [&o](ActionId a) {
      return std::find(o.schedule.begin(), o.schedule.end(), a) -
             o.schedule.begin();
    };
    EXPECT_LT(pos(kB2), pos(kA1));
    EXPECT_LT(pos(kB1), pos(kB2));
  }
  EXPECT_GT(complete, 0);
}

TEST(SysAdminExampleTest, FixedOrderMergesFailAsThePaperArgues) {
  // "Running log A before log B will fail because action B2 will find the
  // OS in the wrong version."
  SysAdminExample ex = make_sysadmin_example();
  const MergeReport ab =
      temporal_merge(ex.initial, ex.logs, MergeOrder::kConcatenate);
  EXPECT_GT(ab.conflicts, 0u);
  EXPECT_FALSE(
      ab.final_state.as<OsSystem>(ex.os).driver_installed(
          SysAdminExample::kPrinter));

  // "Running B before A will fail because the budget goes negative" (the
  // tape purchase is refused).
  std::vector<Log> reversed{ex.logs[1], ex.logs[0]};
  const MergeReport ba =
      temporal_merge(ex.initial, reversed, MergeOrder::kConcatenate);
  EXPECT_GT(ba.conflicts, 0u);

  // "Interleaving log A and B fails similarly."
  const MergeReport rr =
      temporal_merge(ex.initial, ex.logs, MergeOrder::kRoundRobin);
  EXPECT_GT(rr.conflicts, 0u);

  // IceCube, in contrast, finds a conflict-free schedule.
  Reconciler r(ex.initial, ex.logs);
  const auto result = r.run();
  ASSERT_TRUE(result.found_any());
  EXPECT_TRUE(result.best().complete);
}

}  // namespace
}  // namespace icecube
