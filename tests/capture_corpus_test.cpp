// Replays the checked-in incident corpus (tests/captures/*.icap) and
// requires every capture to reproduce bit-for-bit. This is the regression
// net for the wire format itself: if an encoder, the simulator's event
// ordering, or the trace CRC ever drifts, these fixed files stop
// replaying faithfully — which is exactly the signal we want, since old
// incident captures in the field would stop replaying too. Regenerate the
// corpus (see tests/captures/README.md) only for a deliberate,
// version-bumped format change.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "capture/replay_engine.hpp"

namespace icecube {
namespace {

std::vector<std::string> corpus_files() {
  std::vector<std::string> files;
  const std::filesystem::path dir = ICECUBE_CAPTURE_CORPUS_DIR;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".icap") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(CaptureCorpus, CorpusIsPresent) {
  EXPECT_GE(corpus_files().size(), 2u)
      << "corpus directory " << ICECUBE_CAPTURE_CORPUS_DIR
      << " lost its .icap files";
}

TEST(CaptureCorpus, EveryCaptureReplaysBitExact) {
  for (const std::string& file : corpus_files()) {
    const ReplayResult replay = replay_capture_file(file);
    ASSERT_TRUE(replay.error.ok())
        << file << ": " << replay.error.message();
    EXPECT_FALSE(replay.capture_recovered)
        << file << " is torn; corpus files must be clean";
    ASSERT_TRUE(replay.faithful()) << file << ": " << replay.to_json();
    ASSERT_TRUE(replay.crc_checked)
        << file << " has no summary frame; corpus files must be complete";
    EXPECT_TRUE(replay.crc_match) << file;
    EXPECT_GT(replay.frames_compared, 0u) << file;
  }
}

}  // namespace
}  // namespace icecube
