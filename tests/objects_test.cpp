// Tests for the register and counter substrates: state transitions, dynamic
// constraints, and the order tables of Figures 2–5 (as interpreted in
// DESIGN.md §5.1).
#include <gtest/gtest.h>

#include <memory>

#include "objects/counter.hpp"
#include "objects/rw_register.hpp"

namespace icecube {
namespace {

// ---------------------------------------------------------------------------
// RwRegister state and actions.

TEST(RwRegister, WriteUpdatesValue) {
  Universe u;
  const ObjectId reg = u.add(std::make_unique<RwRegister>(1));
  const WriteAction write(reg, 9);
  EXPECT_TRUE(write.precondition(u));
  EXPECT_TRUE(write.execute(u));
  EXPECT_EQ(u.as<RwRegister>(reg).value(), 9);
}

TEST(RwRegister, CloneIsDeep) {
  RwRegister reg(5);
  auto copy = reg.clone();
  reg.write(6);
  EXPECT_EQ(dynamic_cast<RwRegister&>(*copy).value(), 5);
}

TEST(RwRegister, ExpectedReadChecksValue) {
  Universe u;
  const ObjectId reg = u.add(std::make_unique<RwRegister>(10));
  EXPECT_TRUE(ReadAction(reg, 10).precondition(u));
  EXPECT_FALSE(ReadAction(reg, 11).precondition(u));
  EXPECT_TRUE(ReadAction(reg).precondition(u));  // unconditional read
}

// Figure 2 — read/write order across logs. order(a, b): may a precede b?
struct RegisterOrderCase {
  const char* a;
  const char* b;
  LogRelation rel;
  Constraint expected;
};

class RegisterOrderTest
    : public ::testing::TestWithParam<RegisterOrderCase> {};

TEST_P(RegisterOrderTest, MatchesFigure) {
  const auto& p = GetParam();
  Universe u;
  const ObjectId reg_id = u.add(std::make_unique<RwRegister>(0));
  const RwRegister& reg = u.as<RwRegister>(reg_id);

  auto make = [&](const char* kind) -> std::shared_ptr<Action> {
    if (std::string(kind) == "write")
      return std::make_shared<WriteAction>(reg_id, 1);
    return std::make_shared<ReadAction>(reg_id);
  };
  EXPECT_EQ(reg.order(*make(p.a), *make(p.b), p.rel), p.expected);
}

INSTANTIATE_TEST_SUITE_P(
    Figure2AcrossLogs, RegisterOrderTest,
    ::testing::Values(
        RegisterOrderCase{"read", "read", LogRelation::kAcrossLogs,
                          Constraint::kSafe},
        // "allow a read to be ordered before an unrelated write"
        RegisterOrderCase{"read", "write", LogRelation::kAcrossLogs,
                          Constraint::kSafe},
        // a foreign write must not slip before a concurrent read
        RegisterOrderCase{"write", "read", LogRelation::kAcrossLogs,
                          Constraint::kUnsafe},
        // two concurrent writes: order matters, dynamic conflict
        RegisterOrderCase{"write", "write", LogRelation::kAcrossLogs,
                          Constraint::kMaybe}));

INSTANTIATE_TEST_SUITE_P(
    Figure4WithinLog, RegisterOrderTest,
    ::testing::Values(
        RegisterOrderCase{"read", "read", LogRelation::kSameLog,
                          Constraint::kSafe},
        RegisterOrderCase{"write", "write", LogRelation::kSameLog,
                          Constraint::kSafe},
        // swapping a read past a write changes the value returned
        RegisterOrderCase{"read", "write", LogRelation::kSameLog,
                          Constraint::kUnsafe},
        RegisterOrderCase{"write", "read", LogRelation::kSameLog,
                          Constraint::kUnsafe}));

// ---------------------------------------------------------------------------
// Counter state and actions.

TEST(Counter, ApplyRespectsNonNegativity) {
  Counter c(5);
  EXPECT_TRUE(c.apply(-5));
  EXPECT_EQ(c.value(), 0);
  EXPECT_FALSE(c.apply(-1));
  EXPECT_EQ(c.value(), 0);  // unchanged after the refused update
  EXPECT_TRUE(c.apply(3));
  EXPECT_EQ(c.value(), 3);
}

TEST(Counter, DecrementPreconditionGuardsInvariant) {
  Universe u;
  const ObjectId c = u.add(std::make_unique<Counter>(2));
  EXPECT_TRUE(DecrementAction(c, 2).precondition(u));
  EXPECT_FALSE(DecrementAction(c, 3).precondition(u));
}

TEST(Counter, IncrementThenDecrementRoundTrips) {
  Universe u;
  const ObjectId c = u.add(std::make_unique<Counter>(0));
  EXPECT_TRUE(IncrementAction(c, 7).execute(u));
  EXPECT_TRUE(DecrementAction(c, 7).execute(u));
  EXPECT_EQ(u.as<Counter>(c).value(), 0);
}

struct CounterOrderCase {
  const char* a;
  const char* b;
  LogRelation rel;
  Constraint expected;
};

class CounterOrderTest : public ::testing::TestWithParam<CounterOrderCase> {};

TEST_P(CounterOrderTest, MatchesFigure) {
  const auto& p = GetParam();
  Universe u;
  const ObjectId c_id = u.add(std::make_unique<Counter>(0));
  const Counter& c = u.as<Counter>(c_id);

  auto make = [&](const char* kind) -> std::shared_ptr<Action> {
    if (std::string(kind) == "inc")
      return std::make_shared<IncrementAction>(c_id, 1);
    return std::make_shared<DecrementAction>(c_id, 1);
  };
  EXPECT_EQ(c.order(*make(p.a), *make(p.b), p.rel), p.expected);
}

INSTANTIATE_TEST_SUITE_P(
    Figure3AcrossLogs, CounterOrderTest,
    ::testing::Values(
        // "increments commute with one another"
        CounterOrderCase{"inc", "inc", LogRelation::kAcrossLogs,
                         Constraint::kSafe},
        // "orders increments before decrements"
        CounterOrderCase{"inc", "dec", LogRelation::kAcrossLogs,
                         Constraint::kSafe},
        // a decrement may precede an increment modulo the dynamic check
        CounterOrderCase{"dec", "inc", LogRelation::kAcrossLogs,
                         Constraint::kMaybe},
        // "decrements commute ... subject to the dynamic constraint" — the
        // dynamic check means `maybe`, not `safe`: two decrements that each
        // fit the balance alone can jointly overdraw it (see
        // DecDecAcrossLogsIsNotSafe below for the witness the auditor found)
        CounterOrderCase{"dec", "dec", LogRelation::kAcrossLogs,
                         Constraint::kMaybe}));

INSTANTIATE_TEST_SUITE_P(
    Figure5WithinLog, CounterOrderTest,
    ::testing::Values(
        CounterOrderCase{"inc", "inc", LogRelation::kSameLog,
                         Constraint::kSafe},
        CounterOrderCase{"inc", "dec", LogRelation::kSameLog,
                         Constraint::kSafe},
        // pulling a decrement earlier could break an intermediate state
        CounterOrderCase{"dec", "inc", LogRelation::kSameLog,
                         Constraint::kUnsafe},
        CounterOrderCase{"dec", "dec", LogRelation::kSameLog,
                         Constraint::kSafe}));

// Regression for the witness the constraint soundness auditor found
// (UNSOUND_SAFE): decrements that each fit the value alone can jointly
// overdraw it, so dec/dec across logs must not claim `safe`. Witness:
// value=5 — dec(5) alone succeeds, but dec(3) immediately followed by
// dec(5) fails.
TEST(Counter, DecDecAcrossLogsIsNotSafe) {
  Universe u;
  const ObjectId c = u.add(std::make_unique<Counter>(5));
  const DecrementAction a(c, 3);
  const DecrementAction b(c, 5);
  EXPECT_TRUE(b.precondition(u));  // b alone succeeds from the witness state
  Universe chain = u;
  ASSERT_TRUE(a.precondition(chain));
  ASSERT_TRUE(a.execute(chain));
  EXPECT_FALSE(b.precondition(chain));  // the chain a-then-b fails
  EXPECT_EQ(u.as<Counter>(c).order(a, b, LogRelation::kAcrossLogs),
            Constraint::kMaybe);
}

TEST(Counter, CloneIsDeep) {
  Counter c(4);
  auto copy = c.clone();
  ASSERT_TRUE(c.apply(-4));
  EXPECT_EQ(dynamic_cast<Counter&>(*copy).value(), 4);
}

TEST(UniverseTest, CopyClonesObjects) {
  Universe u;
  const ObjectId c = u.add(std::make_unique<Counter>(1));
  Universe copy = u;
  ASSERT_TRUE(u.as<Counter>(c).apply(10));
  EXPECT_EQ(copy.as<Counter>(c).value(), 1);
  EXPECT_EQ(u.as<Counter>(c).value(), 11);
}

TEST(UniverseTest, FingerprintDistinguishesStates) {
  Universe a, b;
  const ObjectId ca = a.add(std::make_unique<Counter>(1));
  (void)b.add(std::make_unique<Counter>(1));
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  ASSERT_TRUE(a.as<Counter>(ca).apply(1));
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

}  // namespace
}  // namespace icecube
