// Cross-module integration: multi-object universes, mixed substrates in one
// reconciliation, log cleaning feeding the reconciler, pipeline stages
// working together.
#include <gtest/gtest.h>

#include <memory>

#include "baseline/temporal_merge.hpp"
#include "core/reconciler.hpp"
#include "logclean/cleaner.hpp"
#include "objects/calendar.hpp"
#include "objects/counter.hpp"
#include "objects/file_system.hpp"
#include "objects/rw_register.hpp"
#include "objects/sysadmin.hpp"
#include "test_helpers.hpp"

namespace icecube {
namespace {

using testing::make_log;

/// A mixed workload: two users share a budget counter, a file system and a
/// register. User A funds the budget after spending; user B's actions
/// interleave. Mirrors the structure of the paper's first motivating
/// example across unrelated object types.
struct MixedFixture {
  Universe universe;
  ObjectId budget, fs, reg;
  std::vector<Log> logs;

  MixedFixture() {
    budget = universe.add(std::make_unique<Counter>(100));
    fs = universe.add(std::make_unique<FileSystem>());
    reg = universe.add(std::make_unique<RwRegister>(0));
    auto& fsys = universe.as<FileSystem>(fs);
    EXPECT_TRUE(fsys.mkdir("/shared"));

    logs.push_back(make_log(
        "A", {std::make_shared<DecrementAction>(budget, 150),
              std::make_shared<IncrementAction>(budget, 200),
              std::make_shared<WriteFileAction>(fs, "/shared/a", "A")}));
    logs.push_back(make_log(
        "B", {std::make_shared<WriteFileAction>(fs, "/shared/b", "B"),
              std::make_shared<DecrementAction>(budget, 100),
              std::make_shared<WriteAction>(reg, 7)}));
  }
};

TEST(Integration, MixedWorkloadReconcilesCompletely) {
  MixedFixture fx;
  ReconcilerOptions opts;
  opts.heuristic = Heuristic::kAll;
  Reconciler r(fx.universe, fx.logs, opts);
  const auto result = r.run();
  ASSERT_TRUE(result.found_any());
  const Outcome& best = result.best();
  // A's decrement of 150 exceeds the initial 100, so a complete schedule
  // must hoist A's own increment before it (in-log reordering, Figure 5) —
  // and B's decrement fits either way.
  ASSERT_TRUE(best.complete);
  EXPECT_EQ(best.final_state.as<Counter>(fx.budget).value(), 50);
  EXPECT_EQ(best.final_state.as<FileSystem>(fx.fs).read("/shared/a"), "A");
  EXPECT_EQ(best.final_state.as<FileSystem>(fx.fs).read("/shared/b"), "B");
  EXPECT_EQ(best.final_state.as<RwRegister>(fx.reg).value(), 7);
}

TEST(Integration, FixedOrderMergeConflictsOnMixedWorkload) {
  MixedFixture fx;
  // Log A replayed as-recorded immediately overdraws the budget.
  const MergeReport report =
      temporal_merge(fx.universe, fx.logs, MergeOrder::kConcatenate);
  EXPECT_GT(report.conflicts, 0u);
}

TEST(Integration, DisjointObjectsDontConstrainEachOther) {
  MixedFixture fx;
  Reconciler r(fx.universe, fx.logs, {});
  // The register write (B2, id 5) and A's file write (id 2) share nothing:
  // independent both ways.
  EXPECT_TRUE(r.relations().independent(ActionId(2), ActionId(5)));
  EXPECT_TRUE(r.relations().independent(ActionId(5), ActionId(2)));
}

TEST(Integration, SysadminPlusCalendarInOneUniverse) {
  // Two independent applications reconciled in a single pass: the engine
  // must solve both ordering puzzles simultaneously.
  SysAdminExample sys = make_sysadmin_example();
  Universe u = sys.initial;
  const ObjectId cal_a = u.add(std::make_unique<Calendar>("A"));
  const ObjectId cal_b = u.add(std::make_unique<Calendar>("B"));
  u.as<Calendar>(cal_b).book(9, "busy");

  std::vector<Log> logs = sys.logs;
  // The calendar actions ride along in the existing logs.
  Log extra("C");
  extra.append(std::make_shared<CancelAppointmentAction>(cal_b, 9));
  logs.push_back(std::move(extra));
  logs[0].append(std::make_shared<RequestAppointmentAction>(cal_a, cal_b, 9,
                                                            9, "meet"));

  ReconcilerOptions opts;
  opts.heuristic = Heuristic::kAll;
  Reconciler r(u, logs, opts);
  const auto result = r.run();
  ASSERT_TRUE(result.found_any());
  const Outcome& best = result.best();
  ASSERT_TRUE(best.complete);
  EXPECT_EQ(best.final_state.as<OsSystem>(sys.os).version(), 5);
  EXPECT_EQ(best.final_state.as<Calendar>(cal_b).appointment_at(9), "meet");
}

TEST(Integration, CleaningThenReconcilingPreservesResults) {
  // Clean both logs, reconcile, and verify the final state matches the
  // reconciliation of the dirty logs (cleaning only removes redundancy).
  Universe u;
  const ObjectId fs = u.add(std::make_unique<FileSystem>());
  ASSERT_TRUE(u.as<FileSystem>(fs).mkdir("/d"));

  std::vector<Log> dirty;
  dirty.push_back(make_log(
      "A", {std::make_shared<WriteFileAction>(fs, "/d/a", "v1"),
            std::make_shared<WriteFileAction>(fs, "/d/a", "v2")}));
  dirty.push_back(make_log(
      "B", {std::make_shared<WriteFileAction>(fs, "/d/b", "x"),
            std::make_shared<DeleteAction>(fs, "/d/b")}));

  std::vector<Log> cleaned;
  std::size_t removed = 0;
  for (const Log& log : dirty) {
    CleanReport report = clean_fs_log(u, log);
    removed += report.removed;
    cleaned.push_back(std::move(report.cleaned));
  }
  EXPECT_GE(removed, 2u);

  ReconcilerOptions opts;
  opts.heuristic = Heuristic::kAll;
  Reconciler r_dirty(u, dirty, opts);
  Reconciler r_clean(u, cleaned, opts);
  const auto dirty_result = r_dirty.run();
  const auto clean_result = r_clean.run();
  ASSERT_TRUE(dirty_result.found_any());
  ASSERT_TRUE(clean_result.found_any());
  EXPECT_EQ(dirty_result.best().final_state.fingerprint(),
            clean_result.best().final_state.fingerprint());
  // Cleaning shrinks the search.
  EXPECT_LE(clean_result.stats.schedules_explored(),
            dirty_result.stats.schedules_explored());
}

TEST(Integration, ManyLogsReconcile) {
  // Five replicas each incrementing the shared counter; the reconciler
  // merges all logs in one pass (the paper reconciles "two or more").
  Universe u;
  const ObjectId c = u.add(std::make_unique<Counter>(0));
  std::vector<Log> logs;
  for (int i = 0; i < 5; ++i) {
    logs.push_back(make_log("r" + std::to_string(i),
                            {std::make_shared<IncrementAction>(c, 1 << i)}));
  }
  Reconciler r(u, logs, {});
  const auto result = r.run();
  ASSERT_TRUE(result.found_any());
  EXPECT_TRUE(result.best().complete);
  EXPECT_EQ(result.best().final_state.as<Counter>(c).value(), 31);
}

TEST(Integration, LargeUniverseCloneIsConsistent) {
  // Shadow-copy discipline across a universe with many objects.
  Universe u;
  std::vector<ObjectId> counters;
  for (int i = 0; i < 50; ++i) {
    counters.push_back(u.add(std::make_unique<Counter>(i)));
  }
  std::vector<Log> logs;
  logs.push_back(make_log(
      "a", {std::make_shared<IncrementAction>(counters[10], 5),
            std::make_shared<DecrementAction>(counters[20], 20)}));
  Reconciler r(u, logs, {});
  const auto result = r.run();
  ASSERT_TRUE(result.found_any());
  const auto& fin = result.best().final_state;
  EXPECT_EQ(fin.as<Counter>(counters[10]).value(), 15);
  EXPECT_EQ(fin.as<Counter>(counters[20]).value(), 0);
  EXPECT_EQ(fin.as<Counter>(counters[30]).value(), 30);  // untouched
  // The original universe is unchanged (simulation never mutates it).
  EXPECT_EQ(u.as<Counter>(counters[10]).value(), 10);
}

}  // namespace
}  // namespace icecube
