// Tests for the D/I relations (§3.1): constraint mapping, transitive
// closure, restriction under cutsets.
#include <gtest/gtest.h>

#include "core/relations.hpp"

namespace icecube {
namespace {

TEST(Relations, FromConstraintsMapsSafeToIndependence) {
  ConstraintMatrix m(2);
  m.set(ActionId(0), ActionId(1), Constraint::kSafe);
  m.set(ActionId(1), ActionId(0), Constraint::kMaybe);
  const Relations rel = Relations::from_constraints(m);
  EXPECT_TRUE(rel.independent(ActionId(0), ActionId(1)));
  EXPECT_FALSE(rel.independent(ActionId(1), ActionId(0)));
  EXPECT_EQ(rel.dependence_edge_count(), 0u);
}

TEST(Relations, FromConstraintsMapsUnsafeToReversedDependence) {
  // constraint(a, b) = unsafe ⇒ b must precede a.
  ConstraintMatrix m(2);
  m.set(ActionId(0), ActionId(1), Constraint::kUnsafe);
  m.set(ActionId(1), ActionId(0), Constraint::kMaybe);
  const Relations rel = Relations::from_constraints(m);
  EXPECT_TRUE(rel.depends(ActionId(1), ActionId(0)));
  EXPECT_FALSE(rel.depends(ActionId(0), ActionId(1)));
}

TEST(Relations, MaybeContributesNothing) {
  ConstraintMatrix m(2);  // all cells default to safe; set both to maybe
  m.set(ActionId(0), ActionId(1), Constraint::kMaybe);
  m.set(ActionId(1), ActionId(0), Constraint::kMaybe);
  const Relations rel = Relations::from_constraints(m);
  EXPECT_EQ(rel.dependence_edge_count(), 0u);
  EXPECT_EQ(rel.independence_pair_count(), 0u);
}

TEST(Relations, ClosureIsTransitive) {
  Relations rel(4);
  rel.add_dependence(ActionId(0), ActionId(1));
  rel.add_dependence(ActionId(1), ActionId(2));
  rel.add_dependence(ActionId(2), ActionId(3));
  rel.close();
  EXPECT_TRUE(rel.depends(ActionId(0), ActionId(3)));
  EXPECT_TRUE(rel.depends(ActionId(0), ActionId(2)));
  EXPECT_TRUE(rel.depends(ActionId(1), ActionId(3)));
  EXPECT_FALSE(rel.depends(ActionId(3), ActionId(0)));
  // Raw edges are untouched by closure.
  EXPECT_TRUE(rel.depends_raw(ActionId(0), ActionId(1)));
  EXPECT_FALSE(rel.depends_raw(ActionId(0), ActionId(3)));
}

TEST(Relations, PredecessorsMatchClosure) {
  Relations rel(3);
  rel.add_dependence(ActionId(0), ActionId(1));
  rel.add_dependence(ActionId(1), ActionId(2));
  rel.close();
  const Bitset& preds = rel.predecessors(ActionId(2));
  EXPECT_TRUE(preds.test(0));
  EXPECT_TRUE(preds.test(1));
  EXPECT_FALSE(preds.test(2));
}

TEST(Relations, CycleClosureMakesMembersMutuallyDependent) {
  Relations rel(3);
  rel.add_dependence(ActionId(0), ActionId(1));
  rel.add_dependence(ActionId(1), ActionId(0));
  rel.close();
  EXPECT_TRUE(rel.depends(ActionId(0), ActionId(1)));
  EXPECT_TRUE(rel.depends(ActionId(1), ActionId(0)));
  EXPECT_TRUE(rel.depends(ActionId(0), ActionId(0)));  // via the cycle
  EXPECT_FALSE(rel.depends(ActionId(2), ActionId(0)));
}

TEST(Relations, RestrictedDropsEdgesOfRemovedVertices) {
  Relations rel(3);
  rel.add_dependence(ActionId(0), ActionId(1));
  rel.add_dependence(ActionId(1), ActionId(0));  // cycle {0,1}
  rel.add_dependence(ActionId(1), ActionId(2));
  rel.add_independence(ActionId(0), ActionId(2));
  rel.close();

  Bitset removed(3);
  removed.set(1);
  const Relations restricted = rel.restricted(removed);
  // The cycle is broken: 0 no longer depends on anything.
  EXPECT_FALSE(restricted.depends(ActionId(0), ActionId(1)));
  EXPECT_FALSE(restricted.depends(ActionId(1), ActionId(0)));
  EXPECT_FALSE(restricted.depends(ActionId(1), ActionId(2)));
  EXPECT_TRUE(restricted.predecessors(ActionId(2)).none());
  // Independence survives restriction.
  EXPECT_TRUE(restricted.independent(ActionId(0), ActionId(2)));
}

TEST(Relations, RestrictedKeepsTransitiveChainsAmongSurvivors) {
  // 0 → 1 → 2 plus direct 0 → 2; removing 1 must keep 0 → 2 (direct edge).
  Relations rel(3);
  rel.add_dependence(ActionId(0), ActionId(1));
  rel.add_dependence(ActionId(1), ActionId(2));
  rel.add_dependence(ActionId(0), ActionId(2));
  rel.close();

  Bitset removed(3);
  removed.set(1);
  const Relations restricted = rel.restricted(removed);
  EXPECT_TRUE(restricted.depends(ActionId(0), ActionId(2)));
}

TEST(Relations, IndependencePredecessorsAreTransposed) {
  Relations rel(3);
  rel.add_independence(ActionId(0), ActionId(2));
  rel.add_independence(ActionId(1), ActionId(2));
  EXPECT_TRUE(rel.independent_predecessors_of(ActionId(2)).test(0));
  EXPECT_TRUE(rel.independent_predecessors_of(ActionId(2)).test(1));
  EXPECT_TRUE(rel.independents_of(ActionId(0)).test(2));
  EXPECT_EQ(rel.independence_pair_count(), 2u);
}

TEST(Relations, EdgeAndPairCounts) {
  Relations rel(4);
  rel.add_dependence(ActionId(0), ActionId(1));
  rel.add_dependence(ActionId(2), ActionId(3));
  rel.add_independence(ActionId(0), ActionId(3));
  rel.close();
  EXPECT_EQ(rel.dependence_edge_count(), 2u);
  EXPECT_EQ(rel.independence_pair_count(), 1u);
}

}  // namespace
}  // namespace icecube
