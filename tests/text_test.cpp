// Tests for the OT text substrate (§5): the inclusion-transform kernel
// (including the TP1 convergence property, seed-swept), the buffer, and
// end-to-end reconciliation of concurrent editing sessions.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>

#include "core/reconciler.hpp"
#include "objects/text.hpp"
#include "replica/site.hpp"
#include "replica/sync.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace icecube {
namespace {

using testing::make_log;

std::string apply_raw(std::string text, const TransformedEdit& e) {
  if (e.kind == TextEdit::Kind::kInsert) {
    text.insert(e.pos, e.text);
    return text;
  }
  auto ranges = e.ranges;
  std::sort(ranges.begin(), ranges.end(),
            [](auto a, auto b) { return a.first > b.first; });
  for (auto [s, t] : ranges) text.erase(s, t - s);
  return text;
}

// ---------------------------------------------------------------------------
// Transform kernel.

TEST(Transform, InsertShiftsAcrossEarlierInsert) {
  TransformedEdit e = lift(TextEdit::insert(1, 5, "xy"));
  include_transform(e, TextEdit::insert(2, 2, "abc"));
  EXPECT_EQ(e.pos, 8u);
}

TEST(Transform, InsertUnaffectedByLaterInsert) {
  TransformedEdit e = lift(TextEdit::insert(1, 2, "xy"));
  include_transform(e, TextEdit::insert(2, 5, "abc"));
  EXPECT_EQ(e.pos, 2u);
}

TEST(Transform, InsertTieBrokenBySite) {
  TransformedEdit low = lift(TextEdit::insert(1, 4, "a"));
  include_transform(low, TextEdit::insert(2, 4, "b"));
  EXPECT_EQ(low.pos, 4u);  // lower site id keeps the earlier slot

  TransformedEdit high = lift(TextEdit::insert(3, 4, "a"));
  include_transform(high, TextEdit::insert(2, 4, "b"));
  EXPECT_EQ(high.pos, 5u);
}

TEST(Transform, InsertShiftsLeftAcrossDelete) {
  TransformedEdit e = lift(TextEdit::insert(1, 10, "x"));
  include_transform(e, TextEdit::remove(2, 2, 3));
  EXPECT_EQ(e.pos, 7u);
}

TEST(Transform, InsertInsideDeletedRegionCollapses) {
  TransformedEdit e = lift(TextEdit::insert(1, 4, "x"));
  include_transform(e, TextEdit::remove(2, 2, 5));
  EXPECT_EQ(e.pos, 2u);
}

TEST(Transform, DeleteSplitsAroundConcurrentInsert) {
  // Delete [2, 8) while someone inserts 3 chars at 5: the inserted text
  // must survive.
  TransformedEdit e = lift(TextEdit::remove(1, 2, 6));
  include_transform(e, TextEdit::insert(2, 5, "new"));
  ASSERT_EQ(e.ranges.size(), 2u);
  EXPECT_EQ(e.ranges[0], (std::pair<std::size_t, std::size_t>{2, 5}));
  EXPECT_EQ(e.ranges[1], (std::pair<std::size_t, std::size_t>{8, 11}));
}

TEST(Transform, DeleteShrinksAcrossOverlappingDelete) {
  // Delete [2, 8) after [4, 10) was deleted: only [2, 4) remains.
  TransformedEdit e = lift(TextEdit::remove(1, 2, 6));
  include_transform(e, TextEdit::remove(2, 4, 6));
  ASSERT_EQ(e.ranges.size(), 1u);
  EXPECT_EQ(e.ranges[0], (std::pair<std::size_t, std::size_t>{2, 4}));
}

TEST(Transform, DeleteFullyCoveredBecomesNoOp) {
  TransformedEdit e = lift(TextEdit::remove(1, 3, 2));
  include_transform(e, TextEdit::remove(2, 0, 10));
  EXPECT_TRUE(e.ranges.empty());
}

/// TP1, the convergence property: for concurrent edits a and b on the same
/// text, apply(a) then apply(IT(b, a)) equals apply(b) then apply(IT(a, b)).
class Tp1Sweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Tp1Sweep, BothOrdersConverge) {
  Rng rng(GetParam());
  const std::string base = "abcdefghijklmnopqrst";
  auto random_edit = [&rng, &base](int site) {
    if (rng.chance(0.5)) {
      const auto pos = rng.below(base.size() + 1);
      return TextEdit::insert(site, pos,
                              std::string(1 + rng.below(3), 'a' + site));
    }
    const auto pos = rng.below(base.size());
    const auto len = 1 + rng.below(base.size() - pos);
    return TextEdit::remove(site, pos, len);
  };
  for (int trial = 0; trial < 50; ++trial) {
    const TextEdit a = random_edit(1);
    const TextEdit b = random_edit(2);

    TransformedEdit b_after_a = lift(b);
    include_transform(b_after_a, a);
    const std::string ab = apply_raw(apply_raw(base, lift(a)), b_after_a);

    TransformedEdit a_after_b = lift(a);
    include_transform(a_after_b, b);
    const std::string ba = apply_raw(apply_raw(base, lift(b)), a_after_b);

    EXPECT_EQ(ab, ba) << "seed " << GetParam() << " trial " << trial
                      << ": a=(" << (a.kind == TextEdit::Kind::kInsert
                                         ? "ins"
                                         : "del")
                      << "@" << a.pos << ") b=("
                      << (b.kind == TextEdit::Kind::kInsert ? "ins" : "del")
                      << "@" << b.pos << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Tp1Sweep,
                         ::testing::Range<std::uint64_t>(1, 11));

// ---------------------------------------------------------------------------
// TextBuffer.

TEST(TextBuffer, AppliesLiteralEditsFromOneSite) {
  TextBuffer buf("hello world");
  EXPECT_TRUE(buf.apply(TextEdit::insert(1, 5, ",")));
  EXPECT_EQ(buf.text(), "hello, world");
  EXPECT_TRUE(buf.apply(TextEdit::remove(1, 7, 5)));
  EXPECT_EQ(buf.text(), "hello, ");
}

TEST(TextBuffer, TransformsForeignEdits) {
  TextBuffer buf("hello world");
  // Site 1 inserts at the front; site 2's edit was made against the
  // original text and must shift.
  EXPECT_TRUE(buf.apply(TextEdit::insert(1, 0, ">> ")));
  EXPECT_TRUE(buf.apply(TextEdit::insert(2, 5, ",")));  // after "hello"
  EXPECT_EQ(buf.text(), ">> hello, world");
}

TEST(TextBuffer, OutOfBoundsInsertFails) {
  TextBuffer buf("ab");
  EXPECT_FALSE(buf.apply(TextEdit::insert(1, 10, "x")));
  EXPECT_EQ(buf.text(), "ab");
}

TEST(TextBuffer, FullyShadowedDeleteIsSatisfiedNoOp) {
  TextBuffer buf("abcdef");
  EXPECT_TRUE(buf.apply(TextEdit::remove(1, 0, 6)));
  EXPECT_TRUE(buf.apply(TextEdit::remove(2, 2, 2)));  // already gone
  EXPECT_EQ(buf.text(), "");
}

TEST(TextBuffer, FingerprintIsTheText) {
  TextBuffer a("same"), b("same");
  EXPECT_TRUE(a.apply(TextEdit::insert(1, 0, "x")));
  EXPECT_TRUE(b.apply(TextEdit::insert(2, 0, "x")));
  EXPECT_EQ(a.fingerprint(), b.fingerprint());  // histories differ, text same
}

// ---------------------------------------------------------------------------
// End-to-end reconciliation of editing sessions.

TEST(TextReconcile, ConcurrentSessionsMergeWithoutLoss) {
  Universe u;
  const ObjectId buf = u.add(std::make_unique<TextBuffer>("the cat sat"));

  // Site 1 prepends and appends; site 2 replaces "cat" with "dog".
  std::vector<Log> logs;
  logs.push_back(make_log(
      "alice", {std::make_shared<InsertTextAction>(buf, 1, 0, "look: "),
                std::make_shared<InsertTextAction>(buf, 1, 17, " down")}));
  logs.push_back(make_log(
      "bob", {std::make_shared<DeleteTextAction>(buf, 2, 4, 3),
              std::make_shared<InsertTextAction>(buf, 2, 4, "dog")}));

  ReconcilerOptions opts;
  opts.heuristic = Heuristic::kAll;
  Reconciler r(u, logs, opts);
  const auto result = r.run();
  ASSERT_TRUE(result.found_any());
  ASSERT_TRUE(result.best().complete);
  EXPECT_EQ(result.best().final_state.as<TextBuffer>(buf).text(),
            "look: the dog sat down");
}

TEST(TextReconcile, CrossLogEditsAreIndependent) {
  Universe u;
  const ObjectId buf = u.add(std::make_unique<TextBuffer>("x"));
  std::vector<Log> logs;
  logs.push_back(make_log(
      "a", {std::make_shared<InsertTextAction>(buf, 1, 0, "a")}));
  logs.push_back(make_log(
      "b", {std::make_shared<InsertTextAction>(buf, 2, 1, "b")}));
  Reconciler r(u, logs, {});
  EXPECT_TRUE(r.relations().independent(ActionId(0), ActionId(1)));
  EXPECT_TRUE(r.relations().independent(ActionId(1), ActionId(0)));
}

// Regression for the witness the constraint soundness auditor found
// (UNSOUND_SAFE): the OT commutation argument only covers *concurrent* —
// different-site — edits; same-site edits are never transformed against
// each other (they are each other's generation context), so pairing them
// across logs must not claim `safe`. Witness: "hel world" — the insert at
// position 8 succeeds alone, but fails after a same-site delete shrinks the
// buffer beneath its coordinates.
TEST(TextOrder, SameSiteEditsAcrossLogsAreNotSafe) {
  Universe u;
  const ObjectId buf = u.add(std::make_unique<TextBuffer>("hel world"));
  const DeleteTextAction a(buf, 2, 1, 2);
  const InsertTextAction b(buf, 2, 8, "bb");
  Universe alone = u;
  EXPECT_TRUE(b.execute(alone));  // b alone succeeds from the witness state
  Universe chain = u;
  ASSERT_TRUE(a.execute(chain));
  EXPECT_FALSE(b.execute(chain));  // the chain a-then-b fails
  EXPECT_EQ(u.as<TextBuffer>(buf).order(a, b, LogRelation::kAcrossLogs),
            Constraint::kMaybe);
  // Different sites keep the transformed guarantee.
  const InsertTextAction other_site(buf, 1, 8, "bb");
  EXPECT_EQ(
      u.as<TextBuffer>(buf).order(a, other_site, LogRelation::kAcrossLogs),
      Constraint::kSafe);
}

TEST(TextReconcile, BothChainOrdersYieldSameTextOnDisjointRegions) {
  // When the two sessions edit disjoint regions, whole-log chains commute
  // exactly; verify on the reconciler outcomes. (Overlapping-region chains
  // commute only approximately — the TP2-class limitation documented in
  // objects/text.hpp.)
  auto run_chained = [](bool alice_first) {
    Universe u;
    const ObjectId buf = u.add(std::make_unique<TextBuffer>("123456"));
    Log alice("alice"), bob("bob");
    alice.append(std::make_shared<InsertTextAction>(buf, 1, 3, "A"));
    alice.append(std::make_shared<DeleteTextAction>(buf, 1, 0, 1));
    bob.append(std::make_shared<InsertTextAction>(buf, 2, 6, "B"));
    std::vector<Log> logs;
    if (alice_first) {
      logs = {alice, bob};
    } else {
      logs = {bob, alice};
    }
    ReconcilerOptions opts;
    opts.heuristic = Heuristic::kSafe;  // chains one log then the other
    opts.stop_at_first_complete = true;
    Reconciler r(u, logs, opts);
    const auto result = r.run();
    return result.best().final_state.as<TextBuffer>(buf).text();
  };
  EXPECT_EQ(run_chained(true), run_chained(false));
}

/// Randomized two-site editing sessions: whatever both users did, a sync
/// round converges and no site's *surviving* text is lost silently — every
/// divergence shows up as a dropped action, not a mangled merge.
class RandomEditingSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomEditingSweep, TwoSitesConvergeAfterSync) {
  Rng rng(GetParam());
  Universe initial;
  (void)initial.add(
      std::make_unique<TextBuffer>("the quick brown fox jumps"));
  const ObjectId doc{0};

  Site a("a", initial), b("b", initial);
  auto random_edit = [&rng, doc](Site& site, int site_id) {
    const auto& text = site.tentative().as<TextBuffer>(doc).text();
    if (rng.chance(0.6) || text.size() < 2) {
      const auto pos = rng.below(text.size() + 1);
      (void)site.perform(std::make_shared<InsertTextAction>(
          doc, site_id, pos, std::string(1 + rng.below(3), 'a' + site_id)));
    } else {
      const auto pos = rng.below(text.size() - 1);
      const auto len = 1 + rng.below(std::min<std::uint64_t>(
                               4, text.size() - pos));
      (void)site.perform(
          std::make_shared<DeleteTextAction>(doc, site_id, pos, len));
    }
  };
  for (int i = 0; i < 5; ++i) {
    random_edit(a, 1);
    random_edit(b, 2);
  }

  ReconcilerOptions opts;
  opts.failure_mode = FailureMode::kSkipAction;
  opts.limits.max_schedules = 10000;
  const SyncResult result = synchronise({&a, &b}, opts);
  ASSERT_TRUE(result.adopted) << "seed " << GetParam() << ": "
                              << result.error;
  EXPECT_TRUE(converged({&a, &b})) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomEditingSweep,
                         ::testing::Range<std::uint64_t>(1, 13));

TEST(TextReconcile, SitesConvergeOnSharedDocument) {
  Universe initial;
  (void)initial.add(std::make_unique<TextBuffer>("shared doc"));
  const ObjectId buf{0};

  Site alice("alice", initial), bob("bob", initial);
  ASSERT_TRUE(alice.perform(
      std::make_shared<InsertTextAction>(buf, 1, 0, "ALICE: ")));
  ASSERT_TRUE(bob.perform(
      std::make_shared<InsertTextAction>(buf, 2, 10, " (reviewed)")));

  const SyncResult result = synchronise({&alice, &bob});
  ASSERT_TRUE(result.adopted) << result.error;
  EXPECT_TRUE(converged({&alice, &bob}));
  EXPECT_EQ(alice.tentative().as<TextBuffer>(buf).text(),
            "ALICE: shared doc (reviewed)");
}

}  // namespace
}  // namespace icecube
