// Exhaustive corruption sweep over the commitment and gossip decoders.
//
// The chaos harness corrupts payloads probabilistically; this test is the
// systematic version: for a valid wire frame, flip one (seeded) bit at
// EVERY byte position and truncate at EVERY prefix length, and require the
// decoder to reject each damaged frame with a structured DecodeError —
// never crash, never silently accept. CRC-32 detects all single-bit
// errors, so a single flip that decodes successfully is a codec bug by
// construction (some byte escaped the digest's coverage).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "objects/counter.hpp"
#include "serialize/commit_codec.hpp"
#include "serialize/gossip_codec.hpp"
#include "serialize/log_codec.hpp"

namespace icecube {
namespace {

// Deterministic seeded generator (splitmix64) — the "which bit" and
// "which garbage byte" choices replay identically across runs.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}
  std::uint64_t next() {
    state_ += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

std::string sample_commit_wire() {
  Log log("history");
  log.append(std::make_shared<IncrementAction>(ObjectId(0), 5));
  CommitProposal p;
  p.election = 0;
  p.proposer = "site a";
  p.fingerprint = "fingerprint\nwith newline";
  p.uids = {"a:0"};
  p.log_bytes = encode_log(log);
  p.hash = commit_proposal_hash(p);
  CommitFrame frame;
  frame.site = "site a";
  frame.members = 3;
  frame.stable_height = 0;
  frame.proposals = {p};
  frame.votes = {{0, 0, "site a", p.id()}, {0, 0, "b", p.id()}};
  return encode_commit_frame(frame, 42);
}

std::string sample_gossip_wire() {
  GossipFrame frame;
  frame.site = "site b";
  frame.epoch = 3;
  frame.history_uids = {"a:0", "b:1"};
  frame.pending_uids = {"c:2"};
  frame.history_bytes = "history\npayload";
  frame.pending_bytes = "pending";
  frame.universe_bytes = "universe bytes\n";
  return encode_gossip_frame(frame);
}

// Decodes one damaged payload and requires a structured rejection.
template <typename DecodeFn>
void expect_structured_reject(const std::string& damaged, DecodeFn decode,
                              const std::string& what, std::size_t pos) {
  const auto decoded = decode(damaged);
  ASSERT_FALSE(decoded.ok())
      << what << " at byte " << pos << " was silently accepted";
  EXPECT_NE(decoded.error.kind, DecodeErrorKind::kNone);
  EXPECT_FALSE(to_string(decoded.error.kind).empty());
}

template <typename DecodeFn>
void sweep(const std::string& wire, DecodeFn decode, std::uint64_t seed) {
  ASSERT_TRUE(decode(wire).ok());

  // One flipped bit at every byte position.
  Rng rng(seed);
  for (std::size_t pos = 0; pos < wire.size(); ++pos) {
    std::string damaged = wire;
    damaged[pos] = static_cast<char>(
        static_cast<unsigned char>(damaged[pos]) ^ (1u << (rng.next() % 8)));
    expect_structured_reject(damaged, decode, "bit flip", pos);
  }

  // Every strict prefix (including the empty payload).
  for (std::size_t len = 0; len < wire.size(); ++len) {
    expect_structured_reject(wire.substr(0, len), decode, "truncation", len);
  }

  // Seeded random substitutions, several per position on average — the
  // unstructured-garbage case (multi-bit damage, embedded NULs, ...).
  for (std::size_t i = 0; i < 4 * wire.size(); ++i) {
    std::string damaged = wire;
    const std::size_t pos = rng.next() % wire.size();
    const char garbage = static_cast<char>(rng.next() % 256);
    if (garbage == damaged[pos]) continue;
    damaged[pos] = garbage;
    expect_structured_reject(damaged, decode, "substitution", pos);
  }
}

TEST(CommitFuzz, CommitFrameRejectsAllSingleByteDamage) {
  sweep(sample_commit_wire(),
        [](const std::string& text) { return decode_commit_frame(text, 42); },
        0xc0117);
}

TEST(CommitFuzz, GossipFrameRejectsAllSingleByteDamage) {
  sweep(sample_gossip_wire(),
        [](const std::string& text) { return decode_gossip_frame(text); },
        0x90551);
}

TEST(CommitFuzz, CommitFrameRejectsAuthReassembly) {
  // Re-encoding the same records under another seed is not damage a CRC
  // can see — the auth layer must reject it at every seed but the right
  // one we try.
  Rng rng(7);
  const std::string wire = sample_commit_wire();
  const auto decoded = decode_commit_frame(wire, 42);
  ASSERT_TRUE(decoded.ok());
  for (int i = 0; i < 64; ++i) {
    const std::uint64_t seed = rng.next();
    if (seed == 42) continue;
    const std::string reassembled = encode_commit_frame(*decoded.frame, seed);
    const auto rejected = decode_commit_frame(reassembled, 42);
    ASSERT_FALSE(rejected.ok());
    EXPECT_EQ(rejected.error.kind, DecodeErrorKind::kCorrupted);
  }
}

}  // namespace
}  // namespace icecube
