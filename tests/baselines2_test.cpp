// Tests for the §5 related-work baselines: greedy insertion
// (Phatak & Badrinath style) and the algebraic file synchroniser
// (Ramsey & Csirmaz style), including the comparisons the paper draws.
#include <gtest/gtest.h>

#include <memory>

#include "baseline/algebraic_sync.hpp"
#include "baseline/greedy_insertion.hpp"
#include "core/reconciler.hpp"
#include "objects/counter.hpp"
#include "objects/file_system.hpp"
#include "objects/sysadmin.hpp"
#include "test_helpers.hpp"

namespace icecube {
namespace {

using testing::make_log;

// ---------------------------------------------------------------------------
// Greedy insertion.

TEST(GreedyInsertion, InsertsCompatibleActionsInOrder) {
  Universe u;
  const ObjectId c = u.add(std::make_unique<Counter>(0));
  std::vector<Log> logs;
  logs.push_back(make_log("a", {std::make_shared<IncrementAction>(c, 1),
                                std::make_shared<IncrementAction>(c, 2)}));
  logs.push_back(make_log("b", {std::make_shared<IncrementAction>(c, 4)}));
  const GreedyReport report = greedy_insertion_merge(u, logs);
  EXPECT_EQ(report.dropped, 0u);
  EXPECT_EQ(report.schedule.size(), 3u);
  EXPECT_EQ(report.final_state.as<Counter>(c).value(), 7);
}

TEST(GreedyInsertion, FindsInsertionPointRequiringReorder) {
  // Incoming decrement only fits *between* the primary's increment and
  // decrement; greedy insertion scans positions and finds it.
  Universe u;
  const ObjectId c = u.add(std::make_unique<Counter>(0));
  std::vector<Log> logs;
  logs.push_back(make_log("a", {std::make_shared<IncrementAction>(c, 10),
                                std::make_shared<DecrementAction>(c, 7)}));
  logs.push_back(make_log("b", {std::make_shared<DecrementAction>(c, 3)}));
  const GreedyReport report = greedy_insertion_merge(u, logs);
  EXPECT_EQ(report.dropped, 0u);
  EXPECT_EQ(report.final_state.as<Counter>(c).value(), 0);
}

TEST(GreedyInsertion, DropsActionWithNoWorkingPosition) {
  Universe u;
  const ObjectId c = u.add(std::make_unique<Counter>(1));
  std::vector<Log> logs;
  logs.push_back(make_log("a", {std::make_shared<DecrementAction>(c, 1)}));
  logs.push_back(make_log("b", {std::make_shared<DecrementAction>(c, 1)}));
  const GreedyReport report = greedy_insertion_merge(u, logs);
  EXPECT_EQ(report.dropped, 1u);
  EXPECT_EQ(report.final_state.as<Counter>(c).value(), 0);
}

TEST(GreedyInsertion, FailsTheSysadminExampleWhereIceCubeSucceeds) {
  // §5: "[their] algorithm lacks a scheduling phase, which we found
  // essential". Greedy insertion places B1 (buy printer) after A3 — the
  // only budget-feasible slot — and then no position for B2 (install
  // driver, needs v4 *and* an owned printer) exists: before A1 the printer
  // is not yet owned, after A1 the OS version is wrong. IceCube reorders
  // and solves it.
  SysAdminExample ex = make_sysadmin_example();
  const GreedyReport report = greedy_insertion_merge(ex.initial, ex.logs);
  EXPECT_EQ(report.dropped, 1u);
  EXPECT_FALSE(
      report.final_state.as<OsSystem>(ex.os).driver_installed(
          SysAdminExample::kPrinter));

  Reconciler r(ex.initial, ex.logs, {});
  const auto ice = r.run();
  ASSERT_TRUE(ice.found_any());
  EXPECT_TRUE(ice.best().complete);
  EXPECT_TRUE(ice.best().final_state.as<OsSystem>(ex.os).driver_installed(
      SysAdminExample::kPrinter));
}

TEST(GreedyInsertion, LacksSchedulingPhaseWhereIceCubeReorders) {
  // The incoming log's own order is never revisited: when ITS prefix is the
  // problem (a decrement that needs the incoming log's later increment
  // hoisted), greedy insertion drops the action while IceCube reorders.
  Universe u;
  const ObjectId c = u.add(std::make_unique<Counter>(0));
  std::vector<Log> logs;
  logs.push_back(make_log("primary", {std::make_shared<IncrementAction>(c, 1)}));
  // Isolated execution of log b: inc 10 first, then dec 5 — but recorded
  // here with the dec *after* an inc the greedy pass has already placed...
  // construct the failing shape directly: dec 5 before inc 10 cannot
  // replay as-recorded and no single insertion point fixes a prefix.
  Log b("b");
  {
    // Build a log whose recorded order is [dec 5, inc 10]: legal in
    // isolation only if the replica had funds — craft initial 5 at site b
    // is impossible here, so this models a log from a site whose committed
    // state diverged... for the baseline comparison we accept a
    // hand-crafted "incorrect" log; IceCube's counter order method hoists
    // the increment, greedy insertion cannot.
    b.append(std::make_shared<DecrementAction>(c, 5));
    b.append(std::make_shared<IncrementAction>(c, 10));
  }
  logs.push_back(std::move(b));

  const GreedyReport greedy = greedy_insertion_merge(u, logs);
  EXPECT_EQ(greedy.dropped, 1u);  // the dec never fits

  ReconcilerOptions opts;
  opts.heuristic = Heuristic::kAll;
  Reconciler r(u, logs, opts);
  const auto ice = r.run();
  ASSERT_TRUE(ice.found_any());
  EXPECT_TRUE(ice.best().complete);  // inc 10 hoisted before dec 5
  EXPECT_EQ(ice.best().final_state.as<Counter>(c).value(), 6);
}

TEST(GreedyInsertion, ReplayCountGrowsQuadratically) {
  // Cost shape: inserting k actions into a schedule of length n costs
  // O(n·k) full replays — the price of having no scheduling phase.
  Universe u;
  const ObjectId c = u.add(std::make_unique<Counter>(0));
  std::vector<Log> logs;
  Log a("a"), b("b");
  for (int i = 0; i < 10; ++i) {
    a.append(std::make_shared<IncrementAction>(c, 1));
    b.append(std::make_shared<IncrementAction>(c, 1));
  }
  logs = {std::move(a), std::move(b)};
  const GreedyReport report = greedy_insertion_merge(u, logs);
  EXPECT_EQ(report.dropped, 0u);
  EXPECT_GE(report.replays, 10u);  // one per inserted action at minimum
}

// ---------------------------------------------------------------------------
// Algebraic file synchronisation.

struct FsFixture {
  Universe universe;
  ObjectId fs;
  FsFixture() {
    auto tree = std::make_unique<FileSystem>();
    EXPECT_TRUE(tree->mkdir("/shared"));
    fs = ObjectId(0);
    (void)universe.add(std::move(tree));
  }
};

TEST(AlgebraicSync, MergesIndependentWork) {
  FsFixture fx;
  std::vector<Log> logs;
  logs.push_back(make_log(
      "a", {std::make_shared<MkdirAction>(fx.fs, "/a"),
            std::make_shared<WriteFileAction>(fx.fs, "/a/file", "1")}));
  logs.push_back(make_log(
      "b", {std::make_shared<WriteFileAction>(fx.fs, "/shared/b", "2")}));
  const AlgebraicSyncReport report =
      algebraic_fs_sync(fx.universe, logs, fx.fs);
  EXPECT_TRUE(report.clean);
  EXPECT_TRUE(report.conflicts.empty());
  EXPECT_EQ(report.applied.size(), 3u);
  const auto& tree = report.final_state.as<FileSystem>(fx.fs);
  EXPECT_EQ(tree.read("/a/file"), "1");
  EXPECT_EQ(tree.read("/shared/b"), "2");
}

TEST(AlgebraicSync, CanonicalOrderPutsParentsBeforeChildren) {
  // Log b's write lands under log a's new directory: the canonical order
  // (creations parents-first) makes it work without any search.
  FsFixture fx;
  std::vector<Log> logs;
  logs.push_back(make_log(
      "a", {std::make_shared<WriteFileAction>(fx.fs, "/shared/d", "x")}));
  logs.push_back(make_log(
      "b", {std::make_shared<MkdirAction>(fx.fs, "/deep"),
            std::make_shared<MkdirAction>(fx.fs, "/deep/er")}));
  const AlgebraicSyncReport report =
      algebraic_fs_sync(fx.universe, logs, fx.fs);
  EXPECT_TRUE(report.conflicts.empty());
  EXPECT_TRUE(report.final_state.as<FileSystem>(fx.fs).is_dir("/deep/er"));
}

TEST(AlgebraicSync, DivergentWritesConflictAndAreExcluded) {
  FsFixture fx;
  std::vector<Log> logs;
  logs.push_back(make_log(
      "a", {std::make_shared<WriteFileAction>(fx.fs, "/shared/f", "A")}));
  logs.push_back(make_log(
      "b", {std::make_shared<WriteFileAction>(fx.fs, "/shared/f", "B")}));
  const AlgebraicSyncReport report =
      algebraic_fs_sync(fx.universe, logs, fx.fs);
  EXPECT_EQ(report.conflicts.size(), 1u);
  EXPECT_FALSE(report.final_state.as<FileSystem>(fx.fs).exists("/shared/f"));
}

TEST(AlgebraicSync, IdenticalWritesAreIdempotent) {
  FsFixture fx;
  std::vector<Log> logs;
  logs.push_back(make_log(
      "a", {std::make_shared<WriteFileAction>(fx.fs, "/shared/f", "same")}));
  logs.push_back(make_log(
      "b", {std::make_shared<WriteFileAction>(fx.fs, "/shared/f", "same")}));
  const AlgebraicSyncReport report =
      algebraic_fs_sync(fx.universe, logs, fx.fs);
  EXPECT_TRUE(report.conflicts.empty());
  EXPECT_EQ(report.duplicates.size(), 1u);
  EXPECT_EQ(report.applied.size(), 1u);
  EXPECT_EQ(report.final_state.as<FileSystem>(fx.fs).read("/shared/f"),
            "same");
}

TEST(AlgebraicSync, DeleteVersusConcurrentWorkBelowConflicts) {
  // The paper's write/delete example: flagged statically, both excluded.
  FsFixture fx;
  std::vector<Log> logs;
  logs.push_back(make_log(
      "writer",
      {std::make_shared<WriteFileAction>(fx.fs, "/shared/new", "w")}));
  logs.push_back(
      make_log("deleter", {std::make_shared<DeleteAction>(fx.fs, "/shared")}));
  const AlgebraicSyncReport report =
      algebraic_fs_sync(fx.universe, logs, fx.fs);
  EXPECT_EQ(report.conflicts.size(), 1u);
  // Conservative exclusion: the tree keeps /shared untouched.
  EXPECT_TRUE(report.final_state.as<FileSystem>(fx.fs).is_dir("/shared"));
}

TEST(AlgebraicSync, DirtyLogIsDetected) {
  FsFixture fx;
  std::vector<Log> logs;
  logs.push_back(make_log(
      "a", {std::make_shared<WriteFileAction>(fx.fs, "/shared/f", "1"),
            std::make_shared<WriteFileAction>(fx.fs, "/shared/f", "2")}));
  const AlgebraicSyncReport report =
      algebraic_fs_sync(fx.universe, logs, fx.fs);
  EXPECT_FALSE(report.clean);
}

TEST(AlgebraicSync, DeletesApplyChildrenFirst) {
  FsFixture fx;
  {
    auto& tree = fx.universe.as<FileSystem>(fx.fs);
    ASSERT_TRUE(tree.mkdir("/shared/sub"));
    ASSERT_TRUE(tree.write("/shared/sub/f", "x"));
  }
  std::vector<Log> logs;
  logs.push_back(make_log(
      "a", {std::make_shared<DeleteAction>(fx.fs, "/shared/sub/f")}));
  logs.push_back(
      make_log("b", {std::make_shared<DeleteAction>(fx.fs, "/shared/sub")}));
  const AlgebraicSyncReport report =
      algebraic_fs_sync(fx.universe, logs, fx.fs);
  EXPECT_TRUE(report.conflicts.empty());
  EXPECT_FALSE(report.final_state.as<FileSystem>(fx.fs).exists("/shared/sub"));
  EXPECT_TRUE(report.final_state.as<FileSystem>(fx.fs).is_dir("/shared"));
}

TEST(AlgebraicSync, IceCubeResolvesWhatAlgebraExcludes) {
  // Divergent writes: the algebraic scheme excludes both; IceCube's dynamic
  // stage can at least apply one (skip mode) and report the other.
  FsFixture fx;
  std::vector<Log> logs;
  logs.push_back(make_log(
      "a", {std::make_shared<WriteFileAction>(fx.fs, "/shared/f", "A")}));
  logs.push_back(make_log(
      "b", {std::make_shared<WriteFileAction>(fx.fs, "/shared/f", "B")}));

  const AlgebraicSyncReport algebra =
      algebraic_fs_sync(fx.universe, logs, fx.fs);
  EXPECT_FALSE(
      algebra.final_state.as<FileSystem>(fx.fs).exists("/shared/f"));

  ReconcilerOptions opts;
  opts.heuristic = Heuristic::kAll;
  Reconciler r(fx.universe, logs, opts);
  const auto ice = r.run();
  ASSERT_TRUE(ice.found_any());
  EXPECT_TRUE(
      ice.best().final_state.as<FileSystem>(fx.fs).exists("/shared/f"));
}

}  // namespace
}  // namespace icecube
