// End-to-end reconciliation tests over the jigsaw workload, asserting the
// qualitative results of §4.3 (the benches print the full tables; these
// tests pin the shape on small, fast instances).
#include <gtest/gtest.h>

#include "jigsaw/experiment.hpp"

namespace icecube::jigsaw {
namespace {

using K = PlayerSpec::Kind;

ReconcilerOptions options(Heuristic h, FailureMode fm,
                          std::uint64_t cap = 100000) {
  ReconcilerOptions opts;
  opts.heuristic = h;
  opts.failure_mode = fm;
  opts.limits.max_schedules = cap;
  return opts;
}

// ---------------------------------------------------------------------------
// Case 1 — semantic constraints (E1). A clean non-overlapping 16-action
// game: immediate convergence to the full board.

TEST(Case1Semantic, CleanGameConvergesImmediatelyToOptimal) {
  const Problem p = make_problem(4, 4, Board::OrderCase::kSemantic,
                                 {{K::kU1, 8}, {K::kU2, 8}});
  const auto r = run_experiment(
      p, options(Heuristic::kSafe, FailureMode::kAbortBranch));
  EXPECT_TRUE(r.best_complete);
  EXPECT_EQ(r.best.correct, 16);
  EXPECT_EQ(r.best.pieces, 16);
  EXPECT_EQ(r.best.actions, 16);
  // "Semantic constraints ensure immediate convergence": the first explored
  // schedule is already optimal.
  EXPECT_EQ(r.stats.schedules_to_best, 1u);
  // And the search space is tiny compared to the 12,870 possible
  // interleavings.
  EXPECT_LT(r.stats.schedules_explored(), 1000u);
}

TEST(Case1Semantic, OverlappingGameStillFindsOptimalImmediately) {
  // The paper's 20-action game necessarily overlaps on a 4x4 board; the
  // overlap becomes static conflicts (cutsets), and the best reachable
  // state still fills the board.
  const Problem p = make_problem(4, 4, Board::OrderCase::kSemantic,
                                 {{K::kU1, 8}, {K::kU2, 12}});
  auto opts = options(Heuristic::kSafe, FailureMode::kAbortBranch, 5000);
  const auto r = run_experiment(p, opts);
  EXPECT_EQ(r.best.correct, 16);
  EXPECT_EQ(r.best.pieces, 16);
  EXPECT_EQ(r.stats.schedules_to_best, 1u);  // immediate convergence
  // Concurrent duplicate placements are flagged as static conflicts (§4.4's
  // "spurious conflicts" discussion): at least one proper cutset exists.
  EXPECT_GE(r.stats.cutset_count, 1u);
}

// ---------------------------------------------------------------------------
// Case 2 — keep-log-order policy with the paper's 7-piece U1 vs 12-piece U2
// game (E2).

class Case2Heuristics : public ::testing::Test {
 protected:
  Problem make(bool strict_insert) const {
    ScenarioOptions so;
    so.strict_insert = strict_insert;
    return make_problem(4, 4, Board::OrderCase::kKeepLogOrder,
                        {{K::kU1, 7}, {K::kU2, 12}}, so);
  }
};

TEST_F(Case2Heuristics, SafeExploresExactlyTwoSequences) {
  // "When H = Safe the result is the same": the heuristic chains each log
  // and produces exactly two maximal sequences.
  const auto r = run_experiment(
      make(false), options(Heuristic::kSafe, FailureMode::kAbortBranch));
  EXPECT_EQ(r.stats.schedules_explored(), 2u);
}

TEST_F(Case2Heuristics, StrictExploresExactlyTwoSequences) {
  const auto r = run_experiment(
      make(false), options(Heuristic::kStrict, FailureMode::kAbortBranch));
  EXPECT_EQ(r.stats.schedules_explored(), 2u);
}

TEST_F(Case2Heuristics, StrictInsertReproducesLogAloneSolutions) {
  // With the strict "board must be empty" insert, the two solutions are
  // *equivalent to log 1 and log 2 alone* (7 and 12 pieces): the second
  // log's insert fails and its chain dies. The best of the two is log 2.
  const auto r = run_experiment(
      make(true), options(Heuristic::kStrict, FailureMode::kAbortBranch));
  EXPECT_EQ(r.stats.schedules_explored(), 2u);
  EXPECT_EQ(r.best.pieces, 12);   // log 2 alone
  EXPECT_EQ(r.best.correct, 12);
  EXPECT_FALSE(r.best_complete);
}

TEST_F(Case2Heuristics, AllFindsOptimalSolutionEarly) {
  // "When H = All the reconciler finds the optimal solution, i.e., where
  // all 16 pieces are correctly placed ... after two sequences", and then
  // keeps running through tens of thousands of schedules.
  const auto r = run_experiment(
      make(false), options(Heuristic::kAll, FailureMode::kAbortBranch));
  EXPECT_EQ(r.best.correct, 16);
  EXPECT_EQ(r.best.pieces, 16);
  EXPECT_LE(r.stats.schedules_to_best, 2u);
  // The total enumeration is the same order of magnitude as the paper's
  // 38,102 schedules (exact counts depend on unrecorded details of the
  // 2001 prototype's action encoding).
  EXPECT_GT(r.stats.schedules_explored(), 10000u);
  EXPECT_LT(r.stats.schedules_explored(), 60000u);
  EXPECT_FALSE(r.stats.hit_limit);
}

TEST_F(Case2Heuristics, SkipModeProducesCompleteScheduleWithDrops) {
  // Under drop-failed-actions semantics even the heuristic search reaches a
  // complete schedule placing all 16 pieces (3 duplicate joins dropped).
  const auto r = run_experiment(
      make(false), options(Heuristic::kSafe, FailureMode::kSkipAction));
  EXPECT_TRUE(r.best_complete);
  EXPECT_EQ(r.best.correct, 16);
  EXPECT_EQ(r.best.actions, 16);  // 19 input actions, 3 dropped
}

TEST_F(Case2Heuristics, HeuristicsShrinkSearchByOrdersOfMagnitude) {
  const auto all = run_experiment(
      make(false), options(Heuristic::kAll, FailureMode::kAbortBranch));
  const auto safe = run_experiment(
      make(false), options(Heuristic::kSafe, FailureMode::kAbortBranch));
  EXPECT_GT(all.stats.schedules_explored(),
            1000 * safe.stats.schedules_explored());
}

// ---------------------------------------------------------------------------
// Cases 3 and 4 with a U3 player (E3): occasional reorderings beat Case 2.

TEST(Cases34WithU3, ReorderingOccasionallyBeatsCase2) {
  // Seeds are fixed; the probe sweep found seeds where freeing removes
  // (Case 3) or preferring adjacent joins (Case 4) improves on Case 2.
  // "Occasional" is the paper's own word — most seeds tie.
  int wins = 0, ties = 0, losses = 0;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    int correct[5] = {};
    for (int c = 2; c <= 4; ++c) {
      const Problem p =
          make_problem(4, 4, static_cast<Board::OrderCase>(c),
                       {{K::kU1, 7}, {K::kU3, 12, seed}});
      const auto r = run_experiment(
          p, options(Heuristic::kAll, FailureMode::kSkipAction, 30000));
      correct[c] = r.best.correct;
    }
    const int best34 = std::max(correct[3], correct[4]);
    if (best34 > correct[2]) {
      ++wins;
    } else if (best34 == correct[2]) {
      ++ties;
    } else {
      ++losses;
    }
  }
  EXPECT_GE(wins, 1) << "no seed showed a reordering win";
  EXPECT_GT(ties, wins) << "wins should be occasional, not dominant";
}

// ---------------------------------------------------------------------------
// Scaling behaviour (E4).

TEST(Scaling, WeakPoliciesHitTheSimulationCap) {
  // "The weaker policies do not terminate within the (arbitrary) limit of
  // 100,000 simulations" — reproduced here with a smaller cap for speed.
  const Problem p = make_problem(4, 4, Board::OrderCase::kUnconstrained,
                                 {{K::kU1, 7}, {K::kU2, 12}});
  const auto r = run_experiment(
      p, options(Heuristic::kAll, FailureMode::kAbortBranch, 20000));
  EXPECT_TRUE(r.stats.hit_limit);
  EXPECT_EQ(r.stats.schedules_explored(), 20000u);
}

TEST(Scaling, StrongPolicyOnNonOverlappingLogsCompletesInstantly) {
  const Problem p = make_problem(6, 6, Board::OrderCase::kKeepLogOrder,
                                 {{K::kU1, 18}, {K::kU2, 18}});
  const auto r = run_experiment(
      p, options(Heuristic::kSafe, FailureMode::kAbortBranch));
  EXPECT_TRUE(r.best_complete);
  EXPECT_EQ(r.best.correct, 36);
  EXPECT_EQ(r.stats.schedules_explored(), 2u);
}

TEST(Scaling, StrongPolicyOnOverlappingLogsFindsNoCompleteSchedule) {
  // "The stronger policies tend to over-constrain the system and no
  // solution is found": with overlap and abort-on-failure semantics, no
  // complete schedule exists under Case 2.
  const Problem p = make_problem(4, 4, Board::OrderCase::kKeepLogOrder,
                                 {{K::kU1, 7}, {K::kU2, 12}});
  const auto r = run_experiment(
      p, options(Heuristic::kSafe, FailureMode::kAbortBranch));
  EXPECT_FALSE(r.best_complete);
  EXPECT_EQ(r.stats.schedules_completed, 0u);
}

// ---------------------------------------------------------------------------
// Determinism: the whole pipeline is reproducible run to run.

TEST(JigsawReconcile, ExperimentIsDeterministic) {
  const Problem p = make_problem(4, 4, Board::OrderCase::kKeepLogOrder,
                                 {{K::kU1, 7}, {K::kU3, 9, 5}});
  const auto a = run_experiment(
      p, options(Heuristic::kAll, FailureMode::kSkipAction, 10000));
  const auto b = run_experiment(
      p, options(Heuristic::kAll, FailureMode::kSkipAction, 10000));
  EXPECT_EQ(a.best, b.best);
  EXPECT_EQ(a.stats.schedules_explored(), b.stats.schedules_explored());
  EXPECT_EQ(a.stats.sim_steps, b.stats.sim_steps);
}

TEST(JigsawReconcile, FailureMemoizationIsNeutralOnSingleObjectGames) {
  // With a single shared board every action overlaps every other, so the
  // causal key degenerates to the whole prefix: no cache hits, identical
  // results. (The multi-object case where memoization pays is covered in
  // simulator_test.cpp.)
  const Problem p = make_problem(4, 4, Board::OrderCase::kKeepLogOrder,
                                 {{K::kU1, 7}, {K::kU2, 12}});
  auto run_with = [&p](bool memoize) {
    auto opts = options(Heuristic::kAll, FailureMode::kAbortBranch);
    opts.memoize_failures = memoize;
    return run_experiment(p, opts);
  };
  const auto plain = run_with(false);
  const auto memo = run_with(true);
  EXPECT_EQ(memo.best, plain.best);
  EXPECT_EQ(memo.stats.schedules_explored(), plain.stats.schedules_explored());
  EXPECT_EQ(memo.stats.memoized_failures, 0u);
}

TEST(JigsawReconcile, FailureMemoizationIsSoundOnRandomGames) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Problem p = make_problem(3, 3, Board::OrderCase::kKeepJoinOrder,
                                   {{K::kU1, 5}, {K::kU3, 7, seed}});
    auto run_with = [&p](bool memoize) {
      auto opts = options(Heuristic::kAll, FailureMode::kSkipAction, 20000);
      opts.memoize_failures = memoize;
      return run_experiment(p, opts);
    };
    const auto plain = run_with(false);
    const auto memo = run_with(true);
    EXPECT_EQ(memo.best, plain.best) << "seed " << seed;
    EXPECT_EQ(memo.stats.schedules_explored(),
              plain.stats.schedules_explored())
        << "seed " << seed;
  }
}

TEST(JigsawReconcile, BestOutcomeNeverExceedsBoardCapacity) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Problem p = make_problem(3, 3, Board::OrderCase::kKeepJoinOrder,
                                   {{K::kU1, 5}, {K::kU3, 7, seed}});
    const auto r = run_experiment(
        p, options(Heuristic::kAll, FailureMode::kSkipAction, 20000));
    EXPECT_LE(r.best.correct, 9);
    EXPECT_LE(r.best.pieces, 9);
    EXPECT_GE(r.best.correct, 0);
    EXPECT_LE(r.best.correct, r.best.pieces);
  }
}

}  // namespace
}  // namespace icecube::jigsaw
