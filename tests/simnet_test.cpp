// SimNet: deterministic discrete-event network semantics.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "simnet/simnet.hpp"

namespace icecube {
namespace {

std::vector<SimEvent> drain(SimNet& net, std::size_t cap = 10000) {
  std::vector<SimEvent> out;
  while (out.size() < cap) {
    auto event = net.step();
    if (!event) break;
    out.push_back(std::move(*event));
  }
  return out;
}

TEST(SimNet, DeliversInTimeOrderWithFifoTieBreak) {
  SimNet net(1, {});
  net.add_site("a");
  net.add_site("b");
  net.schedule_timer("a", 5);
  net.schedule_timer("b", 2);
  net.schedule_timer("a", 2);  // same time as b's: FIFO by submission

  auto events = drain(net);
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].site, "b");
  EXPECT_EQ(events[0].time, 2u);
  EXPECT_EQ(events[1].site, "a");
  EXPECT_EQ(events[1].time, 2u);
  EXPECT_EQ(events[2].time, 5u);
}

TEST(SimNet, MessageArrivesAfterBaseLatency) {
  SimNet net(1, {});
  net.add_site("a");
  net.add_site("b");
  net.send("a", "b", "hello");
  auto events = drain(net);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, SimEvent::Kind::kDeliver);
  EXPECT_EQ(events[0].site, "b");
  EXPECT_EQ(events[0].from, "a");
  EXPECT_EQ(events[0].payload, "hello");
  EXPECT_EQ(events[0].time, 1u);
  EXPECT_EQ(net.counters().delivered, 1u);
}

TEST(SimNet, SameSeedSameTrace) {
  FaultSpec spec;
  spec.lose = 0.2;
  spec.duplicate = 0.2;
  spec.delay_max = 5;
  spec.reorder = 0.2;

  const auto run = [&spec] {
    SimNet net(42, spec);
    net.add_site("a");
    net.add_site("b");
    net.add_site("c");
    for (std::size_t i = 0; i < 30; ++i) {
      net.send("a", "b", "m" + std::to_string(i));
      net.send("b", "c", "n" + std::to_string(i));
    }
    drain(net);
    return net.trace_crc();
  };
  EXPECT_EQ(run(), run());
}

TEST(SimNet, DifferentSeedsDiverge) {
  FaultSpec spec;
  spec.lose = 0.3;
  spec.delay_max = 6;
  const auto run = [&spec](std::uint64_t seed) {
    SimNet net(seed, spec);
    net.add_site("a");
    net.add_site("b");
    for (std::size_t i = 0; i < 40; ++i) {
      net.send("a", "b", "m" + std::to_string(i));
    }
    drain(net);
    return net.trace_crc();
  };
  EXPECT_NE(run(1), run(2));
}

TEST(SimNet, ScheduledPartitionBlocksUntilHeal) {
  SimNet net(1, {});
  net.add_site("a");
  net.add_site("b");
  net.schedule_partition("a", "b", 0, 100);
  // Force the control events to apply by advancing past t=0.
  net.schedule_timer("a", 1);
  auto first = net.step();  // timer at t=1; the cut applied on the way
  ASSERT_TRUE(first.has_value());

  net.send("a", "b", "blocked");
  EXPECT_EQ(net.counters().dropped_partition, 1u);
  EXPECT_FALSE(net.link_open("a", "b"));
  EXPECT_FALSE(net.link_open("b", "a"));  // undirected

  // After the heal the same link carries traffic again.
  net.schedule_timer("a", 101);
  ASSERT_TRUE(net.step().has_value());  // heal applied, timer returned
  EXPECT_TRUE(net.link_open("a", "b"));
  net.send("a", "b", "through");
  auto events = drain(net);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].payload, "through");
}

TEST(SimNet, PartitionCutsInFlightMessages) {
  SimNet net(1, {});
  net.add_site("a");
  net.add_site("b");
  net.send("a", "b", "in-flight");  // would deliver at t=1
  net.schedule_partition("a", "b", 0, 50);
  // The cut (t=0) is applied before the delivery (t=1), so the message
  // dies on the wire.
  auto events = drain(net);
  EXPECT_TRUE(events.empty());
  EXPECT_EQ(net.counters().dropped_partition, 1u);
}

TEST(SimNet, CrashDropsDeliveriesButTimersSurvive) {
  SimNet net(1, {});
  net.add_site("a");
  net.add_site("b");
  net.schedule_crash("b", 0);
  net.schedule_restart("b", 10);
  net.schedule_timer("b", 5);   // fires while down — runner sees it
  net.send("a", "b", "lost-to-crash");

  auto first = net.step();
  ASSERT_TRUE(first.has_value());  // the timer; the delivery was dropped
  EXPECT_EQ(first->kind, SimEvent::Kind::kTimer);
  EXPECT_FALSE(net.is_up("b"));
  EXPECT_EQ(net.counters().dropped_down, 1u);

  // After restart, messages flow again.
  net.schedule_timer("a", 11);
  ASSERT_TRUE(net.step().has_value());
  EXPECT_TRUE(net.is_up("b"));
  net.send("a", "b", "after-restart");
  auto events = drain(net);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].payload, "after-restart");
}

TEST(SimNet, DuplicateDeliversTwice) {
  FaultSpec spec;
  spec.duplicate = 1.0;
  SimNet net(7, spec);
  net.add_site("a");
  net.add_site("b");
  net.send("a", "b", "twice");
  auto events = drain(net);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].payload, "twice");
  EXPECT_EQ(events[1].payload, "twice");
  EXPECT_EQ(events[0].id, events[1].id);
  EXPECT_EQ(net.counters().duplicated, 1u);
  EXPECT_EQ(net.counters().delivered, 2u);
}

TEST(SimNet, LossAccountedAndRecorded) {
  FaultSpec spec;
  spec.lose = 1.0;
  SimNet net(7, spec);
  net.add_site("a");
  net.add_site("b");
  net.send("a", "b", "gone");
  EXPECT_TRUE(drain(net).empty());
  EXPECT_EQ(net.counters().lost, 1u);
  ASSERT_FALSE(net.faults().injected().empty());
  EXPECT_EQ(net.faults().injected().front().kind, "lose");
}

TEST(SimNet, DelayBoundedBySpec) {
  FaultSpec spec;
  spec.delay_max = 4;
  SimNet net(11, spec);
  net.add_site("a");
  net.add_site("b");
  for (std::size_t i = 0; i < 50; ++i) net.send("a", "b", "x");
  auto events = drain(net);
  ASSERT_EQ(events.size(), 50u);
  for (const SimEvent& e : events) {
    EXPECT_GE(e.time, 1u);
    EXPECT_LE(e.time, 1u + spec.delay_max);
  }
}

TEST(SimNet, FaultHorizonSilencesRandomFaults) {
  FaultSpec spec;
  spec.lose = 1.0;
  SimNet net(3, spec);
  net.add_site("a");
  net.add_site("b");
  net.set_fault_horizon(5);
  // Advance the clock past the horizon.
  net.schedule_timer("a", 10);
  ASSERT_TRUE(net.step().has_value());
  net.send("a", "b", "safe-now");
  auto events = drain(net);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(net.counters().lost, 0u);
}

TEST(SimNet, ReorderLetsLaterMessageOvertake) {
  // With a deterministic seed sweep, some seed must produce an overtake;
  // assert the mechanism rather than one magic seed.
  FaultSpec spec;
  spec.reorder = 0.5;
  spec.reorder_max = 10;
  bool overtaken = false;
  for (std::uint64_t seed = 0; seed < 20 && !overtaken; ++seed) {
    SimNet net(seed, spec);
    net.add_site("a");
    net.add_site("b");
    for (std::size_t i = 0; i < 10; ++i) {
      net.send("a", "b", std::to_string(i));
    }
    auto events = drain(net);
    for (std::size_t i = 1; i < events.size(); ++i) {
      if (events[i].payload < events[i - 1].payload) overtaken = true;
    }
  }
  EXPECT_TRUE(overtaken);
}

TEST(SimNet, TraceRetentionOffStillUpdatesCrc) {
  SimNet a(5, {});
  SimNet b(5, {});
  b.set_trace_retention(false);
  for (SimNet* net : {&a, &b}) {
    net->add_site("x");
    net->add_site("y");
    net->send("x", "y", "payload");
    drain(*net);
  }
  EXPECT_FALSE(a.trace().empty());
  EXPECT_TRUE(b.trace().empty());
  EXPECT_EQ(a.trace_crc(), b.trace_crc());
}

}  // namespace
}  // namespace icecube
