// Deterministic fault-injection scenarios for the sync protocol: seeded
// sweeps assert that damaged payloads are never silently mis-decoded, that
// the healthy subset of a group still converges, and that budget-exhausted
// searches degrade to valid (replayable) schedules.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/reconciler.hpp"
#include "fault/fault_plan.hpp"
#include "objects/counter.hpp"
#include "replica/site.hpp"
#include "replica/sync.hpp"
#include "serialize/log_codec.hpp"
#include "util/rng.hpp"

namespace icecube {
namespace {

constexpr ObjectId kCounter{0};

Universe counter_universe(std::int64_t initial) {
  Universe u;
  u.add(std::make_unique<Counter>(initial));
  return u;
}

Log sample_log() {
  Log log("sample");
  log.append(std::make_shared<IncrementAction>(kCounter, 100));
  log.append(std::make_shared<DecrementAction>(kCounter, 30));
  log.append(std::make_shared<IncrementAction>(kCounter, 7));
  return log;
}

/// Seeds some random counter work at every site in `group`.
void perform_random_work(const std::vector<Site*>& group, std::uint64_t seed) {
  Rng rng(seed);
  for (Site* site : group) {
    const std::size_t n = 1 + rng.below(4);
    for (std::size_t i = 0; i < n; ++i) {
      const auto amount = static_cast<std::int64_t>(rng.below(9)) + 1;
      if (rng.chance(0.7)) {
        (void)site->perform(std::make_shared<IncrementAction>(kCounter,
                                                              amount));
      } else {
        (void)site->perform(std::make_shared<DecrementAction>(kCounter,
                                                              amount));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// FaultPlan: the oracle itself.

TEST(FaultPlan, IdenticalSeedsGiveIdenticalDecisions) {
  FaultSpec spec;
  spec.corrupt = 0.3;
  spec.truncate = 0.2;
  spec.site_down = 0.25;
  spec.lose = 0.15;
  FaultPlan a(99, spec), b(99, spec);
  const std::string payload = encode_log(sample_log());
  for (std::size_t round = 0; round < 6; ++round) {
    for (const char* site : {"alpha", "beta", "gamma"}) {
      EXPECT_EQ(a.site_down(site, round), b.site_down(site, round));
      EXPECT_EQ(a.delivery_fails(site, round), b.delivery_fails(site, round));
      EXPECT_EQ(a.ship(FaultPoint::kShipLog, site, round, payload),
                b.ship(FaultPoint::kShipLog, site, round, payload));
    }
  }
  ASSERT_EQ(a.injected().size(), b.injected().size());
  for (std::size_t i = 0; i < a.injected().size(); ++i) {
    EXPECT_EQ(a.injected()[i].kind, b.injected()[i].kind);
    EXPECT_EQ(a.injected()[i].subject, b.injected()[i].subject);
    EXPECT_EQ(a.injected()[i].round, b.injected()[i].round);
  }
}

TEST(FaultPlan, DecisionsAreCallOrderIndependent) {
  FaultSpec spec;
  spec.site_down = 0.4;
  FaultPlan forward(7, spec), backward(7, spec);
  std::vector<bool> fwd, bwd;
  for (std::size_t r = 0; r < 16; ++r) {
    fwd.push_back(forward.site_down("s", r));
  }
  for (std::size_t r = 16; r-- > 0;) {
    bwd.push_back(backward.site_down("s", r));
  }
  std::reverse(bwd.begin(), bwd.end());
  EXPECT_EQ(fwd, bwd);
}

TEST(FaultPlan, DifferentSeedsGiveDifferentStreams) {
  FaultSpec spec;
  spec.site_down = 0.5;
  FaultPlan a(1, spec), b(2, spec);
  std::size_t same = 0;
  for (std::size_t r = 0; r < 64; ++r) {
    if (a.site_down("s", r) == b.site_down("s", r)) ++same;
  }
  EXPECT_LT(same, 64u);  // identical streams would mean the seed is ignored
}

TEST(FaultPlan, DefaultSpecNeverInjects) {
  FaultPlan plan(123, FaultSpec{});
  const std::string payload = encode_log(sample_log());
  for (std::size_t round = 0; round < 8; ++round) {
    EXPECT_FALSE(plan.site_down("a", round));
    EXPECT_FALSE(plan.delivery_fails("a", round));
    EXPECT_EQ(plan.ship(FaultPoint::kShipLog, "a", round, payload), payload);
  }
  EXPECT_TRUE(plan.injected().empty());
}

TEST(FaultPlan, TruncationAlwaysShortens) {
  FaultSpec spec;
  spec.truncate = 1.0;
  const std::string payload = encode_log(sample_log());
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    FaultPlan plan(seed, spec);
    const std::string out =
        plan.ship(FaultPoint::kShipLog, "p", 0, payload);
    EXPECT_LT(out.size(), payload.size()) << "seed " << seed;
    EXPECT_EQ(out, payload.substr(0, out.size())) << "seed " << seed;
    ASSERT_EQ(plan.injected().size(), 1u);
    EXPECT_EQ(plan.injected().front().kind, "truncate");
  }
}

// ---------------------------------------------------------------------------
// Codec under fire: a seeded sweep across the faulty channel. The safety
// property is "no wrong decode": a damaged payload either fails decode with
// a structured error or — in the rare case the damage was semantically
// harmless (e.g. the trailing newline cut off) — decodes to exactly the
// original log.

TEST(FaultSweep, DamagedShipmentsNeverDecodeWrong) {
  const Log log = sample_log();
  const std::string clean = encode_log(log);
  const ActionRegistry registry = ActionRegistry::with_builtins();

  FaultSpec spec;
  spec.corrupt = 0.45;
  spec.truncate = 0.35;

  std::size_t damaged = 0, detected = 0;
  for (std::uint64_t seed = 0; seed < 160; ++seed) {
    FaultPlan plan(seed, spec);
    const std::string arrived =
        plan.ship(FaultPoint::kShipLog, "payload", seed % 5, clean);
    const DecodedLog decoded = decode_log(arrived, registry);
    if (arrived == clean) {
      EXPECT_TRUE(decoded.ok()) << "seed " << seed << ": " << decoded.error;
      continue;
    }
    ++damaged;
    if (decoded.ok()) {
      // Accepted damage must be byte-identical on re-encode.
      EXPECT_EQ(encode_log(*decoded.log), clean) << "seed " << seed;
    } else {
      ++detected;
      EXPECT_NE(decoded.error.kind, DecodeErrorKind::kNone);
    }
  }
  // The sweep must actually have exercised the failure paths.
  EXPECT_GT(damaged, 60u);
  EXPECT_GT(detected, 50u);
}

// ---------------------------------------------------------------------------
// The multi-round protocol under a lossy, corrupting network: a >= 100-seed
// sweep. Invariants per seed:
//   - no crash (the sweep itself);
//   - sites reported synced all share one committed state and have empty
//     logs;
//   - unsynced sites keep their committed state and pending log untouched;
//   - the report's bookkeeping is consistent with the sites' actual state.

TEST(FaultSweep, HundredSeedSyncScenariosFailSafe) {
  FaultSpec spec;
  spec.corrupt = 0.2;
  spec.truncate = 0.1;
  spec.site_down = 0.2;
  spec.lose = 0.1;

  std::size_t fully_synced = 0, faulted = 0, recovered = 0;
  for (std::uint64_t seed = 0; seed < 120; ++seed) {
    const Universe initial = counter_universe(50);
    Site a("a", initial), b("b", initial), c("c", initial), d("d", initial);
    const std::vector<Site*> group{&a, &b, &c, &d};
    perform_random_work(group, seed * 0x9E3779B97F4A7C15ULL + 1);
    const std::string entry_fingerprint = initial.fingerprint();

    FaultPlan plan(seed, spec);
    SyncConfig config;
    config.max_rounds = 12;
    const SyncReport report =
        synchronise_resilient(group, {}, nullptr, &plan, config);

    if (!plan.injected().empty()) ++faulted;

    ASSERT_EQ(report.sites.size(), group.size()) << "seed " << seed;
    std::string adopted_fingerprint;
    bool saw_unsynced = false;
    for (Site* site : group) {
      const SiteReport* sr = report.site_report(site->name());
      ASSERT_NE(sr, nullptr) << "seed " << seed;
      if (sr->synced) {
        // Synced sites agree on one merged state and start a fresh log.
        if (adopted_fingerprint.empty()) {
          adopted_fingerprint = site->committed().fingerprint();
        }
        EXPECT_EQ(site->committed().fingerprint(), adopted_fingerprint)
            << "seed " << seed << " site " << site->name();
        EXPECT_FALSE(site->has_local_updates())
            << "seed " << seed << " site " << site->name();
        if (sr->quarantines > 0) ++recovered;
      } else {
        // Unsynced sites are untouched: same committed state, log intact.
        saw_unsynced = true;
        EXPECT_EQ(site->committed().fingerprint(), entry_fingerprint)
            << "seed " << seed << " site " << site->name();
        EXPECT_NE(sr->last_error.kind, SyncErrorKind::kNone)
            << "seed " << seed << " site " << site->name();
      }
    }
    EXPECT_EQ(report.all_synced, !saw_unsynced) << "seed " << seed;
    EXPECT_EQ(report.adopted, !adopted_fingerprint.empty())
        << "seed " << seed;
    if (report.all_synced) {
      ++fully_synced;
      EXPECT_TRUE(converged(group)) << "seed " << seed;
    }

    // Loss bookkeeping is exact: every crash/loss the plan injected is a
    // recorded error of the matching kind, one to one.
    const auto count_injected = [&plan](const char* kind) {
      return std::count_if(
          plan.injected().begin(), plan.injected().end(),
          [kind](const InjectedFault& f) { return f.kind == kind; });
    };
    const auto count_errors = [&report](SyncErrorKind kind) {
      return std::count_if(
          report.errors.begin(), report.errors.end(),
          [kind](const SyncError& e) { return e.kind == kind; });
    };
    EXPECT_EQ(count_injected("drop"),
              count_errors(SyncErrorKind::kUnreachable))
        << "seed " << seed;
    EXPECT_EQ(count_injected("lose"),
              count_errors(SyncErrorKind::kDeliveryFailed))
        << "seed " << seed;
  }
  // The sweep must cover the interesting regions of the space.
  EXPECT_GT(fully_synced, 20u);  // many groups still converge
  EXPECT_GT(faulted, 100u);      // nearly every seed injected something
  EXPECT_GT(recovered, 10u);     // quarantined sites do come back
}

// ---------------------------------------------------------------------------
// Targeted protocol scenarios.

TEST(ResilientSync, PerfectNetworkMatchesLegacySynchronise) {
  const Universe initial = counter_universe(10);
  Site a1("a", initial), b1("b", initial);
  Site a2("a", initial), b2("b", initial);
  for (Site* site : {&a1, &a2}) {
    ASSERT_TRUE(site->perform(std::make_shared<IncrementAction>(kCounter, 5)));
  }
  for (Site* site : {&b1, &b2}) {
    ASSERT_TRUE(site->perform(std::make_shared<DecrementAction>(kCounter, 3)));
  }

  const SyncResult legacy = synchronise({&a1, &b1});
  ASSERT_TRUE(legacy.adopted) << legacy.error;
  const SyncReport resilient = synchronise_resilient({&a2, &b2});
  ASSERT_TRUE(resilient.adopted);
  EXPECT_TRUE(resilient.all_synced);
  EXPECT_EQ(resilient.rounds, 1u);
  EXPECT_TRUE(resilient.errors.empty());
  EXPECT_EQ(a2.committed().fingerprint(), a1.committed().fingerprint());
}

TEST(ResilientSync, DivergentSiteQuarantinedHealthyRestConverges) {
  const Universe initial = counter_universe(10);
  Site a("a", initial), b("b", initial);
  Site rogue("rogue", counter_universe(999));
  ASSERT_TRUE(a.perform(std::make_shared<IncrementAction>(kCounter, 5)));
  ASSERT_TRUE(b.perform(std::make_shared<DecrementAction>(kCounter, 2)));
  ASSERT_TRUE(
      rogue.perform(std::make_shared<IncrementAction>(kCounter, 1)));

  const SyncReport report = synchronise_resilient({&a, &b, &rogue});
  EXPECT_TRUE(report.adopted);
  EXPECT_FALSE(report.all_synced);
  EXPECT_TRUE(converged({&a, &b}));
  EXPECT_EQ(a.committed().as<Counter>(kCounter).value(), 10 + 5 - 2);

  const SiteReport* rr = report.site_report("rogue");
  ASSERT_NE(rr, nullptr);
  EXPECT_FALSE(rr->synced);
  EXPECT_EQ(rr->last_error.kind, SyncErrorKind::kDivergentState);
  // The rogue site is untouched: its state and pending log survive.
  EXPECT_EQ(rogue.committed().as<Counter>(kCounter).value(), 999);
  EXPECT_TRUE(rogue.has_local_updates());
}

TEST(ResilientSync, TotalOutageFailsSafeWithoutCrash) {
  FaultSpec spec;
  spec.site_down = 1.0;
  FaultPlan plan(5, spec);

  const Universe initial = counter_universe(0);
  Site a("a", initial), b("b", initial);
  ASSERT_TRUE(a.perform(std::make_shared<IncrementAction>(kCounter, 1)));
  ASSERT_TRUE(b.perform(std::make_shared<IncrementAction>(kCounter, 2)));

  SyncConfig config;
  config.max_rounds = 4;
  const SyncReport report =
      synchronise_resilient({&a, &b}, {}, nullptr, &plan, config);
  EXPECT_FALSE(report.adopted);
  EXPECT_FALSE(report.all_synced);
  EXPECT_EQ(report.rounds, 4u);
  for (const SiteReport& sr : report.sites) {
    EXPECT_FALSE(sr.synced);
    EXPECT_GE(sr.quarantines, 1u);
    EXPECT_EQ(sr.last_error.kind, SyncErrorKind::kRoundsExhausted);
  }
  // Both sites keep their pending work for a later attempt.
  EXPECT_TRUE(a.has_local_updates());
  EXPECT_TRUE(b.has_local_updates());
}

TEST(ResilientSync, EmptyGroupReportsNoSites) {
  const SyncReport report = synchronise_resilient({});
  EXPECT_FALSE(report.adopted);
  EXPECT_FALSE(report.all_synced);
  ASSERT_EQ(report.errors.size(), 1u);
  EXPECT_EQ(report.errors.front().kind, SyncErrorKind::kNoSites);
}

TEST(ResilientSync, BackoffDelaysRetriesExponentially) {
  // With the network fully down, a site is quarantined in round 0 and must
  // wait out its backoff: with base 1 and 4 rounds it gets exactly two
  // attempts (rounds 0 and 2), not four.
  FaultSpec spec;
  spec.site_down = 1.0;
  FaultPlan plan(9, spec);
  const Universe initial = counter_universe(0);
  Site a("a", initial), b("b", initial);
  ASSERT_TRUE(a.perform(std::make_shared<IncrementAction>(kCounter, 1)));

  SyncConfig config;
  config.max_rounds = 4;
  const SyncReport report =
      synchronise_resilient({&a, &b}, {}, nullptr, &plan, config);
  for (const SiteReport& sr : report.sites) {
    EXPECT_EQ(sr.attempts, 2u) << sr.site;
  }
}

// ---------------------------------------------------------------------------
// Deadline-bounded degradation: exhausting the search budget yields a
// valid, replayable schedule marked degraded — never an empty hand.

/// Replays `outcome.schedule` from `initial` and checks it reaches
/// `outcome.final_state`.
void expect_replayable(const Universe& initial, const Outcome& outcome,
                       const std::vector<ActionRecord>& records) {
  Universe replay = initial;
  for (ActionId id : outcome.schedule) {
    const auto& action = records[id.index()].action;
    ASSERT_TRUE(action->precondition(replay)) << action->describe();
    ASSERT_TRUE(action->execute(replay)) << action->describe();
  }
  EXPECT_EQ(replay.fingerprint(), outcome.final_state.fingerprint());
}

TEST(Degradation, ExhaustedSearchFallsBackToValidSchedule) {
  Log a("a"), b("b");
  a.append(std::make_shared<IncrementAction>(kCounter, 5));
  a.append(std::make_shared<DecrementAction>(kCounter, 3));
  b.append(std::make_shared<DecrementAction>(kCounter, 8));
  b.append(std::make_shared<IncrementAction>(kCounter, 2));

  ReconcilerOptions options;
  options.limits.max_steps = 1;  // exhaust before anything completes
  Reconciler reconciler(counter_universe(10), {a, b}, options);
  const ReconcileResult result = reconciler.run();

  ASSERT_TRUE(result.found_any());
  EXPECT_TRUE(result.stats.hit_limit);
  ASSERT_TRUE(result.degraded);

  const auto it = std::find_if(result.outcomes.begin(), result.outcomes.end(),
                               [](const Outcome& o) { return o.degraded; });
  ASSERT_NE(it, result.outcomes.end());
  // Every action is accounted for: scheduled or reported dropped.
  EXPECT_EQ(it->schedule.size() + it->skipped.size(),
            reconciler.records().size());
  EXPECT_EQ(it->skipped, result.degraded_dropped);
  expect_replayable(reconciler.initial_state(), *it, reconciler.records());
}

TEST(Degradation, DisabledFlagLeavesOnlySearchOutcomes) {
  Log a("a");
  a.append(std::make_shared<IncrementAction>(kCounter, 5));
  a.append(std::make_shared<DecrementAction>(kCounter, 3));

  ReconcilerOptions options;
  options.limits.max_steps = 1;
  options.degrade_on_exhaustion = false;
  Reconciler reconciler(counter_universe(10), {a}, options);
  const ReconcileResult result = reconciler.run();
  EXPECT_FALSE(result.degraded);
  for (const Outcome& outcome : result.outcomes) {
    EXPECT_FALSE(outcome.degraded);
  }
}

TEST(Degradation, NotTriggeredWhenSearchCompletes) {
  Log a("a");
  a.append(std::make_shared<IncrementAction>(kCounter, 5));
  Reconciler reconciler(counter_universe(10), {a}, {});
  const ReconcileResult result = reconciler.run();
  ASSERT_TRUE(result.found_any());
  EXPECT_FALSE(result.degraded);
  EXPECT_TRUE(result.best().complete);
  EXPECT_FALSE(result.best().degraded);
}

TEST(Degradation, SeededSweepYieldsValidDegradedSchedules) {
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    Rng rng(seed + 17);
    std::vector<Log> logs;
    for (int l = 0; l < 3; ++l) {
      Log log("log" + std::to_string(l));
      const std::size_t n = 2 + rng.below(3);
      for (std::size_t i = 0; i < n; ++i) {
        const auto amount = static_cast<std::int64_t>(rng.below(20)) + 1;
        if (rng.chance(0.5)) {
          log.append(std::make_shared<IncrementAction>(kCounter, amount));
        } else {
          log.append(std::make_shared<DecrementAction>(kCounter, amount));
        }
      }
      logs.push_back(std::move(log));
    }

    ReconcilerOptions options;
    options.limits.max_steps = 2;
    Reconciler reconciler(counter_universe(5), logs, options);
    const ReconcileResult result = reconciler.run();
    ASSERT_TRUE(result.found_any()) << "seed " << seed;
    if (!result.degraded) continue;  // search finished within two steps
    const auto it =
        std::find_if(result.outcomes.begin(), result.outcomes.end(),
                     [](const Outcome& o) { return o.degraded; });
    ASSERT_NE(it, result.outcomes.end()) << "seed " << seed;
    expect_replayable(reconciler.initial_state(), *it, reconciler.records());
  }
}

// ---------------------------------------------------------------------------
// Degenerate groups: empty and single-site rounds are structured errors,
// never silent successes.

TEST(SyncEdgeCases, EmptyGroupSynchroniseIsNoSites) {
  const SyncResult result = synchronise({});
  EXPECT_FALSE(result.adopted);
  EXPECT_EQ(result.error.kind, SyncErrorKind::kNoSites);
}

TEST(SyncEdgeCases, SingleSiteSynchroniseIsNoSitesNotSilentSuccess) {
  Site a("a", counter_universe(10));
  ASSERT_TRUE(a.perform(std::make_shared<IncrementAction>(kCounter, 5)));
  const SyncResult result = synchronise({&a});
  EXPECT_FALSE(result.adopted);
  EXPECT_EQ(result.error.kind, SyncErrorKind::kNoSites);
  EXPECT_EQ(result.error.site, "a");
  // The site is untouched: nothing committed, log intact.
  EXPECT_TRUE(a.has_local_updates());
  EXPECT_EQ(a.committed().as<Counter>(kCounter).value(), 10);
}

TEST(SyncEdgeCases, SingleSiteResilientReportsNoSitesWithSiteRow) {
  Site a("a", counter_universe(10));
  const SyncReport report = synchronise_resilient({&a});
  EXPECT_FALSE(report.adopted);
  EXPECT_FALSE(report.all_synced);
  ASSERT_EQ(report.errors.size(), 1u);
  EXPECT_EQ(report.errors.front().kind, SyncErrorKind::kNoSites);
  // The accounting still carries a row for the site that showed up.
  const SiteReport* sr = report.site_report("a");
  ASSERT_NE(sr, nullptr);
  EXPECT_FALSE(sr->synced);
  EXPECT_EQ(sr->attempts, 0u);
  EXPECT_EQ(sr->last_error.kind, SyncErrorKind::kNoSites);
}

TEST(SyncEdgeCases, ConvergedIsVacuousForDegenerateGroups) {
  // Documented footgun: converged() answers "do these tentative states
  // agree", which is vacuously yes for zero or one site. Callers needing
  // "the group synchronised" must consult SyncReport::all_synced.
  Site a("a", counter_universe(10));
  EXPECT_TRUE(converged({}));
  EXPECT_TRUE(converged({&a}));
}

TEST(SyncEdgeCases, AllSitesCrashedEveryRoundIsRoundsExhausted) {
  FaultSpec spec;
  spec.site_down = 1.0;
  FaultPlan plan(31, spec);
  const Universe initial = counter_universe(5);
  Site a("a", initial), b("b", initial), c("c", initial);
  ASSERT_TRUE(a.perform(std::make_shared<IncrementAction>(kCounter, 1)));

  SyncConfig config;
  config.max_rounds = 3;
  const SyncReport report =
      synchronise_resilient({&a, &b, &c}, {}, nullptr, &plan, config);
  EXPECT_FALSE(report.adopted);
  EXPECT_FALSE(report.all_synced);
  ASSERT_FALSE(report.errors.empty());
  // The tail of the error list is exactly one kRoundsExhausted per site,
  // in group order; everything before it is the per-round quarantines.
  ASSERT_GE(report.errors.size(), 3u);
  const std::size_t tail = report.errors.size() - 3;
  for (std::size_t i = 0; i < tail; ++i) {
    EXPECT_EQ(report.errors[i].kind, SyncErrorKind::kUnreachable) << i;
  }
  const char* expected_order[] = {"a", "b", "c"};
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(report.errors[tail + i].kind, SyncErrorKind::kRoundsExhausted);
    EXPECT_EQ(report.errors[tail + i].site, expected_order[i]);
  }
}

// ---------------------------------------------------------------------------
// SyncReport accounting under a wide seeded sweep: the counters must be
// arithmetically consistent with the error list and the round count, for
// every seed, not just the happy path.

TEST(FaultSweep, HundredSeedReportAccountingIsConsistent) {
  FaultSpec spec;
  spec.corrupt = 0.25;
  spec.truncate = 0.1;
  spec.site_down = 0.25;
  spec.lose = 0.15;

  const auto is_quarantine = [](SyncErrorKind kind) {
    return kind == SyncErrorKind::kUnreachable ||
           kind == SyncErrorKind::kDeliveryFailed ||
           kind == SyncErrorKind::kDecodeFailed ||
           kind == SyncErrorKind::kNoOutcome;
  };

  for (std::uint64_t seed = 0; seed < 110; ++seed) {
    const Universe initial = counter_universe(40);
    Site a("a", initial), b("b", initial), c("c", initial);
    const std::vector<Site*> group{&a, &b, &c};
    perform_random_work(group, seed ^ 0xC0FFEE);

    FaultPlan plan(seed, spec);
    SyncConfig config;
    config.max_rounds = 10;
    const SyncReport report =
        synchronise_resilient(group, {}, nullptr, &plan, config);

    EXPECT_LE(report.rounds, config.max_rounds) << "seed " << seed;
    ASSERT_EQ(report.sites.size(), group.size()) << "seed " << seed;

    std::size_t total_quarantines = 0;
    for (std::size_t i = 0; i < group.size(); ++i) {
      // Rows come back in group order and are addressable by name.
      EXPECT_EQ(report.sites[i].site, group[i]->name()) << "seed " << seed;
      const SiteReport* sr = report.site_report(group[i]->name());
      ASSERT_EQ(sr, &report.sites[i]) << "seed " << seed;

      // A site is attempted at most once per round, and each quarantine
      // consumed one attempt.
      EXPECT_LE(sr->attempts, report.rounds) << "seed " << seed;
      EXPECT_LE(sr->quarantines, sr->attempts) << "seed " << seed;
      if (sr->synced) {
        EXPECT_GE(sr->attempts, 1u) << "seed " << seed;
      } else {
        EXPECT_EQ(sr->last_error.kind, SyncErrorKind::kRoundsExhausted)
            << "seed " << seed << " site " << sr->site;
      }
      total_quarantines += sr->quarantines;
    }
    EXPECT_EQ(report.site_report("no-such-site"), nullptr);

    // Every quarantine produced exactly one error record, and once the
    // first kRoundsExhausted appears the rest of the list is exhaustion
    // verdicts only (they are emitted after the retry loop ends).
    std::size_t quarantine_errors = 0, exhausted_errors = 0;
    bool saw_exhausted = false;
    for (const SyncError& error : report.errors) {
      if (is_quarantine(error.kind)) {
        ++quarantine_errors;
        EXPECT_FALSE(saw_exhausted) << "seed " << seed;
      } else if (error.kind == SyncErrorKind::kRoundsExhausted) {
        ++exhausted_errors;
        saw_exhausted = true;
      }
    }
    EXPECT_EQ(quarantine_errors, total_quarantines) << "seed " << seed;
    const std::size_t unsynced = static_cast<std::size_t>(std::count_if(
        report.sites.begin(), report.sites.end(),
        [](const SiteReport& sr) { return !sr.synced; }));
    EXPECT_EQ(exhausted_errors, unsynced) << "seed " << seed;
    EXPECT_EQ(report.all_synced, unsynced == 0) << "seed " << seed;
  }
}

// End to end: faults, retries and degradation in one protocol run.
TEST(ResilientSync, DegradedRoundStillConvergesTheGroup) {
  const Universe initial = counter_universe(100);
  Site a("a", initial), b("b", initial);
  ASSERT_TRUE(a.perform(std::make_shared<IncrementAction>(kCounter, 5)));
  ASSERT_TRUE(a.perform(std::make_shared<DecrementAction>(kCounter, 30)));
  ASSERT_TRUE(b.perform(std::make_shared<DecrementAction>(kCounter, 20)));

  ReconcilerOptions options;
  options.limits.max_steps = 1;  // force every round into the fallback
  const SyncReport report = synchronise_resilient({&a, &b}, options);
  ASSERT_TRUE(report.adopted);
  EXPECT_TRUE(report.all_synced);
  EXPECT_TRUE(report.degraded);
  EXPECT_TRUE(converged({&a, &b}));
}

}  // namespace
}  // namespace icecube
