// Shared fixtures for the IceCube test suite.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/action.hpp"
#include "core/log.hpp"
#include "core/universe.hpp"

namespace icecube::testing {

/// Shared object whose `order` method is a std::function — lets tests script
/// arbitrary static-constraint tables without defining new types.
class ScriptedObject final : public SharedObject {
 public:
  using OrderFn =
      std::function<Constraint(const Action&, const Action&, LogRelation)>;

  explicit ScriptedObject(OrderFn fn = nullptr) : fn_(std::move(fn)) {}

  [[nodiscard]] std::unique_ptr<SharedObject> clone() const override {
    return std::make_unique<ScriptedObject>(*this);
  }
  [[nodiscard]] Constraint order(const Action& a, const Action& b,
                                 LogRelation rel) const override {
    return fn_ ? fn_(a, b, rel) : Constraint::kMaybe;
  }
  [[nodiscard]] std::string describe() const override { return "scripted"; }

 private:
  OrderFn fn_;
};

/// Action that always succeeds and does nothing; identified by its tag op.
class NopAction final : public SimpleAction {
 public:
  NopAction(std::string op, std::vector<ObjectId> targets)
      : SimpleAction(Tag(std::move(op)), std::move(targets)) {}

  [[nodiscard]] bool precondition(const Universe&) const override {
    return true;
  }
  bool execute(Universe&) const override { return true; }
};

/// Builds a log from a list of actions.
inline Log make_log(std::string name, std::vector<ActionPtr> actions) {
  Log log(std::move(name));
  for (auto& a : actions) log.append(std::move(a));
  return log;
}

}  // namespace icecube::testing
