// Tests for successor-candidate computation (§3.3): the S, C and B sets and
// the All/Safe/Strict heuristics.
#include <gtest/gtest.h>

#include "core/scheduler.hpp"

namespace icecube {
namespace {

std::vector<std::uint32_t> values(const std::vector<ActionId>& ids) {
  std::vector<std::uint32_t> out;
  for (ActionId a : ids) out.push_back(a.value());
  return out;
}

class SchedulerTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kN = 4;

  Bitset none() const { return Bitset(kN); }

  CandidateScheduler make(const Relations& rel, Heuristic h,
                          BRule b = BRule::kLookahead,
                          Bitset excluded = {}) const {
    if (excluded.size() == 0) excluded = Bitset(kN);
    return CandidateScheduler(rel, h, b, std::move(excluded));
  }
};

TEST_F(SchedulerTest, EligibleRespectsDependences) {
  Relations rel(kN);
  rel.add_dependence(ActionId(0), ActionId(1));  // 0 before 1
  rel.add_dependence(ActionId(1), ActionId(2));  // 1 before 2
  rel.close();
  const auto sched = make(rel, Heuristic::kAll);

  // Nothing done: only 0 and 3 are eligible.
  Bitset done = none();
  EXPECT_EQ(values(sched.successors(done, ActionId(), {}, nullptr)),
            (std::vector<std::uint32_t>{0, 3}));

  // After 0: 1 unlocks (2 still blocked transitively).
  done.set(0);
  EXPECT_EQ(values(sched.successors(done, ActionId(0), {}, nullptr)),
            (std::vector<std::uint32_t>{1, 3}));
}

TEST_F(SchedulerTest, EligibleTreatsExcludedPredecessorsAsSatisfied) {
  Relations rel(kN);
  rel.add_dependence(ActionId(0), ActionId(1));
  rel.close();
  Bitset excluded(kN);
  excluded.set(0);  // 0 is in the cutset
  const auto sched = make(rel, Heuristic::kAll, BRule::kLookahead, excluded);

  Bitset done = excluded;  // the simulator seeds done with the cutset
  const auto succ = sched.successors(done, ActionId(), {}, nullptr);
  // 1 is free (its predecessor is cut); 0 itself is never a candidate.
  EXPECT_EQ(values(succ), (std::vector<std::uint32_t>{1, 2, 3}));
}

TEST_F(SchedulerTest, ExtraDependenciesBlockCandidates) {
  Relations rel(kN);
  rel.close();
  const auto sched = make(rel, Heuristic::kAll);
  const std::vector<std::pair<ActionId, ActionId>> extra{
      {ActionId(2), ActionId(0)}};  // 2 must precede 0
  const auto succ = sched.successors(none(), ActionId(), extra, nullptr);
  EXPECT_EQ(values(succ), (std::vector<std::uint32_t>{1, 2, 3}));
}

TEST_F(SchedulerTest, AllIgnoresIndependence) {
  Relations rel(kN);
  rel.add_independence(ActionId(0), ActionId(1));
  rel.close();
  const auto sched = make(rel, Heuristic::kAll);
  Bitset done = none();
  done.set(0);
  EXPECT_EQ(values(sched.successors(done, ActionId(0), {}, nullptr)),
            (std::vector<std::uint32_t>{1, 2, 3}));
}

TEST_F(SchedulerTest, SafePrefersIndependentSuccessors) {
  Relations rel(kN);
  rel.add_independence(ActionId(0), ActionId(1));
  rel.add_independence(ActionId(0), ActionId(3));
  rel.close();
  const auto sched = make(rel, Heuristic::kSafe);
  Bitset done = none();
  done.set(0);
  // C = {1, 3}: only those are tried.
  EXPECT_EQ(values(sched.successors(done, ActionId(0), {}, nullptr)),
            (std::vector<std::uint32_t>{1, 3}));
}

TEST_F(SchedulerTest, SafeFallsBackToAllWhenNoIndependentSuccessor) {
  Relations rel(kN);
  rel.close();
  const auto sched = make(rel, Heuristic::kSafe);
  Bitset done = none();
  done.set(0);
  EXPECT_EQ(values(sched.successors(done, ActionId(0), {}, nullptr)),
            (std::vector<std::uint32_t>{1, 2, 3}));
}

TEST_F(SchedulerTest, SafeAtRootTriesEverything) {
  Relations rel(kN);
  rel.add_independence(ActionId(0), ActionId(1));
  rel.close();
  const auto sched = make(rel, Heuristic::kSafe);
  // No last action ⇒ C is empty ⇒ all of S.
  EXPECT_EQ(values(sched.successors(none(), ActionId(), {}, nullptr)),
            (std::vector<std::uint32_t>{0, 1, 2, 3}));
}

TEST_F(SchedulerTest, StrictPicksExactlyOneFromC) {
  Relations rel(kN);
  rel.add_independence(ActionId(0), ActionId(1));
  rel.add_independence(ActionId(0), ActionId(2));
  rel.close();
  const auto sched = make(rel, Heuristic::kStrict);
  Bitset done = none();
  done.set(0);
  const auto succ = sched.successors(done, ActionId(0), {}, nullptr);
  ASSERT_EQ(succ.size(), 1u);
  // Deterministic pick (no RNG): the first member of C.
  EXPECT_EQ(succ[0], ActionId(1));
}

TEST_F(SchedulerTest, StrictRandomPickStaysInsideC) {
  Relations rel(kN);
  rel.add_independence(ActionId(0), ActionId(1));
  rel.add_independence(ActionId(0), ActionId(2));
  rel.close();
  const auto sched = make(rel, Heuristic::kStrict);
  Bitset done = none();
  done.set(0);
  Rng rng(99);
  for (int i = 0; i < 20; ++i) {
    const auto succ = sched.successors(done, ActionId(0), {}, &rng);
    ASSERT_EQ(succ.size(), 1u);
    EXPECT_TRUE(succ[0] == ActionId(1) || succ[0] == ActionId(2));
  }
}

TEST_F(SchedulerTest, StrictWithEmptyCExcludesActionsWithSafePredecessors) {
  // I: 1 I 2. After scheduling 0 (no I-successors), C = ∅.
  // B (lookahead) = {2} because 1 ∈ S and 1 I 2: prefer scheduling 1 or 3
  // now so that the safe edge 1→2 can still be used later.
  Relations rel(kN);
  rel.add_independence(ActionId(1), ActionId(2));
  rel.close();
  const auto sched = make(rel, Heuristic::kStrict);
  Bitset done = none();
  done.set(0);
  EXPECT_EQ(values(sched.successors(done, ActionId(0), {}, nullptr)),
            (std::vector<std::uint32_t>{1, 3}));
}

TEST_F(SchedulerTest, StrictPaperLiteralBRuleRemovesNothing) {
  Relations rel(kN);
  rel.add_independence(ActionId(1), ActionId(2));
  rel.close();
  const auto sched = make(rel, Heuristic::kStrict, BRule::kPaperLiteral);
  Bitset done = none();
  done.set(0);
  // Literal reading: B quantifies over the (empty) C, so S is untouched.
  EXPECT_EQ(values(sched.successors(done, ActionId(0), {}, nullptr)),
            (std::vector<std::uint32_t>{1, 2, 3}));
}

TEST_F(SchedulerTest, StrictNeverPrunesSToEmpty) {
  // Every eligible action has an I-predecessor in S: the B rule would erase
  // all of S; the scheduler must fall back to S instead of dead-ending.
  Relations rel(kN);
  rel.add_independence(ActionId(1), ActionId(2));
  rel.add_independence(ActionId(2), ActionId(3));
  rel.add_independence(ActionId(3), ActionId(1));
  Bitset excluded(kN);
  excluded.set(0);
  rel.close();
  const auto sched = make(rel, Heuristic::kStrict, BRule::kLookahead, excluded);
  Bitset done = excluded;
  const auto succ = sched.successors(done, ActionId(), {}, nullptr);
  EXPECT_EQ(values(succ), (std::vector<std::uint32_t>{1, 2, 3}));
}

TEST_F(SchedulerTest, EquivalencePruningDropsCommutingInversions) {
  Relations rel(kN);
  // 0 and 2 fully commute; 1 only one-directionally safe with 2.
  rel.add_independence(ActionId(0), ActionId(2));
  rel.add_independence(ActionId(2), ActionId(0));
  rel.add_independence(ActionId(1), ActionId(2));
  rel.close();
  const CandidateScheduler sched(rel, Heuristic::kAll, BRule::kLookahead,
                                 Bitset(kN), /*prune_equivalent=*/true);
  Bitset done = none();
  done.set(2);
  // After scheduling 2: candidate 0 < 2 fully commutes → pruned; 1 < 2 but
  // commutes only one way → kept; 3 > 2 → kept.
  EXPECT_EQ(values(sched.successors(done, ActionId(2), {}, nullptr)),
            (std::vector<std::uint32_t>{1, 3}));
}

TEST_F(SchedulerTest, EquivalencePruningDisabledByDefault) {
  Relations rel(kN);
  rel.add_independence(ActionId(0), ActionId(2));
  rel.add_independence(ActionId(2), ActionId(0));
  rel.close();
  const CandidateScheduler sched(rel, Heuristic::kAll, BRule::kLookahead,
                                 Bitset(kN));
  Bitset done = none();
  done.set(2);
  EXPECT_EQ(values(sched.successors(done, ActionId(2), {}, nullptr)),
            (std::vector<std::uint32_t>{0, 1, 3}));
}

TEST_F(SchedulerTest, EquivalencePruningSuppressedUnderExtraDependencies) {
  Relations rel(kN);
  rel.add_independence(ActionId(0), ActionId(2));
  rel.add_independence(ActionId(2), ActionId(0));
  rel.close();
  const CandidateScheduler sched(rel, Heuristic::kAll, BRule::kLookahead,
                                 Bitset(kN), /*prune_equivalent=*/true);
  Bitset done = none();
  done.set(2);
  const std::vector<std::pair<ActionId, ActionId>> extra{
      {ActionId(2), ActionId(3)}};  // any active extra dep disables pruning
  EXPECT_EQ(values(sched.successors(done, ActionId(2), extra, nullptr)),
            (std::vector<std::uint32_t>{0, 1, 3}));
}

TEST_F(SchedulerTest, DoneActionsAreNeverCandidates) {
  Relations rel(kN);
  rel.close();
  const auto sched = make(rel, Heuristic::kAll);
  Bitset done = none();
  done.set(1);
  done.set(2);
  EXPECT_EQ(values(sched.successors(done, ActionId(2), {}, nullptr)),
            (std::vector<std::uint32_t>{0, 3}));
}

}  // namespace
}  // namespace icecube
