// Tests for the interleaved scheduling/simulation stage (§3.4) and the
// policy hooks (§3.5), driven through the Reconciler facade.
#include <gtest/gtest.h>

#include <memory>

#include "core/reconciler.hpp"
#include "objects/counter.hpp"
#include "test_helpers.hpp"

namespace icecube {
namespace {

using testing::make_log;
using testing::NopAction;
using testing::ScriptedObject;

/// Universe with one counter at `initial`.
struct CounterFixture {
  Universe universe;
  ObjectId counter;

  explicit CounterFixture(std::int64_t initial) {
    counter = universe.add(std::make_unique<Counter>(initial));
  }
};

TEST(Simulator, SingleActionCompletes) {
  CounterFixture fx(0);
  std::vector<Log> logs;
  logs.push_back(make_log(
      "a", {std::make_shared<IncrementAction>(fx.counter, 5)}));
  Reconciler r(fx.universe, logs);
  const auto result = r.run();
  ASSERT_TRUE(result.found_any());
  EXPECT_TRUE(result.best().complete);
  EXPECT_EQ(result.best().schedule.size(), 1u);
  EXPECT_EQ(result.best().final_state.as<Counter>(fx.counter).value(), 5);
  EXPECT_EQ(result.stats.schedules_completed, 1u);
}

TEST(Simulator, PreconditionFailureAbortsBranch) {
  // dec 3 on an empty counter can only run after the inc.
  CounterFixture fx(0);
  std::vector<Log> logs;
  logs.push_back(
      make_log("a", {std::make_shared<IncrementAction>(fx.counter, 5)}));
  logs.push_back(
      make_log("b", {std::make_shared<DecrementAction>(fx.counter, 3)}));
  ReconcilerOptions opts;
  opts.heuristic = Heuristic::kAll;
  Reconciler r(fx.universe, logs, opts);
  const auto result = r.run();
  EXPECT_EQ(result.stats.schedules_completed, 1u);
  EXPECT_GE(result.stats.precondition_failures, 1u);
  EXPECT_TRUE(result.best().complete);
  EXPECT_EQ(result.best().final_state.as<Counter>(fx.counter).value(), 2);
}

TEST(Simulator, DeadEndRecordsPartialOutcome) {
  CounterFixture fx(0);
  std::vector<Log> logs;
  logs.push_back(
      make_log("a", {std::make_shared<DecrementAction>(fx.counter, 3)}));
  Reconciler r(fx.universe, logs);
  const auto result = r.run();
  ASSERT_TRUE(result.found_any());
  EXPECT_FALSE(result.best().complete);
  EXPECT_TRUE(result.best().schedule.empty());
  EXPECT_EQ(result.stats.dead_ends, 1u);
  EXPECT_EQ(result.stats.schedules_completed, 0u);
}

TEST(Simulator, SkipActionModeDropsFailingAction) {
  CounterFixture fx(0);
  std::vector<Log> logs;
  logs.push_back(
      make_log("a", {std::make_shared<DecrementAction>(fx.counter, 3),
                     std::make_shared<IncrementAction>(fx.counter, 1)}));
  ReconcilerOptions opts;
  opts.failure_mode = FailureMode::kSkipAction;
  Reconciler r(fx.universe, logs, opts);
  const auto result = r.run();
  ASSERT_TRUE(result.found_any());
  const Outcome& best = result.best();
  EXPECT_TRUE(best.complete);
  ASSERT_EQ(best.skipped.size(), 1u);
  EXPECT_EQ(best.skipped[0], ActionId(0));
  EXPECT_EQ(best.schedule, std::vector<ActionId>{ActionId(1)});
  EXPECT_EQ(best.final_state.as<Counter>(fx.counter).value(), 1);
}

TEST(Simulator, SkipUnlocksDependentActions) {
  // 1 depends on 0 (scripted unsafe(1,0) ⇒ 0 D 1... we need 0 before 1);
  // 0 always fails; in skip mode 1 must still run.
  Universe u;
  const ObjectId obj = u.add(std::make_unique<ScriptedObject>(
      [](const Action& a, const Action& b, LogRelation) {
        // Force "first before second": second-before-first is unsafe.
        if (a.tag().op == "second" && b.tag().op == "first")
          return Constraint::kUnsafe;
        return Constraint::kMaybe;
      }));
  const ObjectId counter = u.add(std::make_unique<Counter>(0));

  /// Failing action: decrement below zero, but with the scripted target for
  /// ordering purposes.
  class FailingAction final : public SimpleAction {
   public:
    FailingAction(ObjectId scripted, ObjectId counter)
        : SimpleAction(Tag("first"), {scripted}), counter_(counter) {}
    [[nodiscard]] bool precondition(const Universe& uu) const override {
      return uu.as<Counter>(counter_).value() >= 1;  // never true here
    }
    bool execute(Universe&) const override { return true; }

   private:
    ObjectId counter_;
  };

  std::vector<Log> logs;
  Log l0("x");
  l0.append(std::make_shared<FailingAction>(obj, counter));
  std::vector<Log> two;
  Log l1("y");
  l1.append(std::make_shared<NopAction>("second", std::vector{obj}));
  two.push_back(std::move(l0));
  two.push_back(std::move(l1));

  ReconcilerOptions opts;
  opts.failure_mode = FailureMode::kSkipAction;
  Reconciler r(u, two, opts);
  ASSERT_TRUE(r.relations().depends(ActionId(0), ActionId(1)));
  const auto result = r.run();
  ASSERT_TRUE(result.found_any());
  EXPECT_TRUE(result.best().complete);
  EXPECT_EQ(result.best().schedule, std::vector<ActionId>{ActionId(1)});
  EXPECT_EQ(result.best().skipped, std::vector<ActionId>{ActionId(0)});
}

TEST(Simulator, MaxSchedulesLimitStopsSearch) {
  // Three independent increments: 3! = 6 interleavings under H=All.
  CounterFixture fx(0);
  std::vector<Log> logs;
  for (int i = 0; i < 3; ++i) {
    logs.push_back(make_log(
        "l" + std::to_string(i),
        {std::make_shared<IncrementAction>(fx.counter, i + 1)}));
  }
  ReconcilerOptions opts;
  opts.heuristic = Heuristic::kAll;
  opts.limits.max_schedules = 2;
  Reconciler r(fx.universe, logs, opts);
  const auto result = r.run();
  EXPECT_TRUE(result.stats.hit_limit);
  EXPECT_EQ(result.stats.schedules_explored(), 2u);
}

TEST(Simulator, AllHeuristicEnumeratesAllInterleavings) {
  CounterFixture fx(0);
  std::vector<Log> logs;
  for (int i = 0; i < 3; ++i) {
    logs.push_back(make_log(
        "l" + std::to_string(i),
        {std::make_shared<IncrementAction>(fx.counter, 1)}));
  }
  ReconcilerOptions opts;
  opts.heuristic = Heuristic::kAll;
  Reconciler r(fx.universe, logs, opts);
  const auto result = r.run();
  EXPECT_EQ(result.stats.schedules_completed, 6u);  // 3!
}

TEST(Simulator, StopAtFirstCompleteShortCircuits) {
  CounterFixture fx(0);
  std::vector<Log> logs;
  for (int i = 0; i < 3; ++i) {
    logs.push_back(make_log(
        "l" + std::to_string(i),
        {std::make_shared<IncrementAction>(fx.counter, 1)}));
  }
  ReconcilerOptions opts;
  opts.heuristic = Heuristic::kAll;
  opts.stop_at_first_complete = true;
  Reconciler r(fx.universe, logs, opts);
  const auto result = r.run();
  EXPECT_EQ(result.stats.schedules_completed, 1u);
}

TEST(Simulator, TimeToBestIsRecorded) {
  CounterFixture fx(0);
  std::vector<Log> logs;
  logs.push_back(
      make_log("a", {std::make_shared<IncrementAction>(fx.counter, 5)}));
  Reconciler r(fx.universe, logs);
  const auto result = r.run();
  ASSERT_TRUE(result.stats.time_to_best.has_value());
  EXPECT_GE(*result.stats.time_to_best, 0.0);
  EXPECT_GE(result.stats.schedules_to_best, 1u);
}

TEST(Simulator, FailureMemoizationSavesWorkOnMultiObjectWorkloads) {
  // §6: an action's dynamic outcome depends only on its targets' causal
  // context. With several independent counters, a doomed decrement is
  // re-attempted after many interleavings of *unrelated* actions — all with
  // the same causal key, so one failure answers them all.
  Universe u;
  std::vector<ObjectId> counters;
  for (int i = 0; i < 4; ++i) {
    counters.push_back(u.add(std::make_unique<Counter>(0)));
  }
  std::vector<Log> logs;
  // Log a: increments on counters 1..3 (all independent of counter 0).
  logs.push_back(
      make_log("a", {std::make_shared<IncrementAction>(counters[1], 1),
                     std::make_shared<IncrementAction>(counters[2], 1),
                     std::make_shared<IncrementAction>(counters[3], 1)}));
  // Log b: a decrement on counter 0 that can never succeed.
  logs.push_back(
      make_log("b", {std::make_shared<DecrementAction>(counters[0], 5)}));

  auto run_with = [&](bool memoize) {
    ReconcilerOptions opts;
    opts.heuristic = Heuristic::kAll;
    opts.memoize_failures = memoize;
    Reconciler r(u, logs, opts);
    return r.run();
  };
  const auto plain = run_with(false);
  const auto memo = run_with(true);

  // Identical search shape and outcome...
  EXPECT_EQ(memo.stats.schedules_explored(), plain.stats.schedules_explored());
  EXPECT_EQ(memo.best().schedule, plain.best().schedule);
  // ...but only the first doomed attempt is actually simulated.
  EXPECT_GT(memo.stats.memoized_failures, 0u);
  EXPECT_EQ(memo.stats.precondition_failures, 1u);
  EXPECT_EQ(memo.stats.memoized_failures + memo.stats.precondition_failures,
            plain.stats.precondition_failures);
}

TEST(Simulator, FailureMemoizationDistinguishesCausalContexts) {
  // dec 1 on a counter fails with an empty context but succeeds after the
  // inc: the causal key must separate the two.
  Universe u;
  const ObjectId c = u.add(std::make_unique<Counter>(0));
  const ObjectId other = u.add(std::make_unique<Counter>(0));
  std::vector<Log> logs;
  logs.push_back(make_log("a", {std::make_shared<IncrementAction>(c, 1)}));
  logs.push_back(make_log("b", {std::make_shared<DecrementAction>(c, 1)}));
  logs.push_back(
      make_log("x", {std::make_shared<IncrementAction>(other, 1)}));

  ReconcilerOptions opts;
  opts.heuristic = Heuristic::kAll;
  opts.memoize_failures = true;
  Reconciler r(u, logs, opts);
  const auto result = r.run();
  // Complete schedules exist (inc before dec) and were found despite the
  // memoized failures of dec-with-empty-context.
  EXPECT_GT(result.stats.schedules_completed, 0u);
  EXPECT_TRUE(result.best().complete);
  EXPECT_EQ(result.best().final_state.as<Counter>(c).value(), 0);
}

// ---------------------------------------------------------------------------
// Policy hooks.

TEST(PolicyHooks, OrderCandidatesControlsExplorationOrder) {
  CounterFixture fx(0);
  std::vector<Log> logs;
  logs.push_back(
      make_log("a", {std::make_shared<IncrementAction>(fx.counter, 1)}));
  logs.push_back(
      make_log("b", {std::make_shared<IncrementAction>(fx.counter, 2)}));

  /// Explores descending-id first and stops at the first complete schedule.
  class ReversePolicy final : public Policy {
   public:
    void order_candidates(const PrefixView&,
                          std::vector<ActionId>& c) override {
      std::reverse(c.begin(), c.end());
    }
  };
  ReversePolicy policy;
  ReconcilerOptions opts;
  opts.heuristic = Heuristic::kAll;
  opts.stop_at_first_complete = true;
  Reconciler r(fx.universe, logs, opts, &policy);
  const auto result = r.run();
  ASSERT_TRUE(result.best().complete);
  EXPECT_EQ(result.best().schedule,
            (std::vector<ActionId>{ActionId(1), ActionId(0)}));
}

TEST(PolicyHooks, KeepPrefixPrunesSubtrees) {
  CounterFixture fx(0);
  std::vector<Log> logs;
  logs.push_back(
      make_log("a", {std::make_shared<IncrementAction>(fx.counter, 1)}));
  logs.push_back(
      make_log("b", {std::make_shared<IncrementAction>(fx.counter, 2)}));

  /// Rejects every prefix starting with action 0.
  class PrunePolicy final : public Policy {
   public:
    bool keep_prefix(const PrefixView& prefix, const Universe&) override {
      return prefix.actions.empty() || prefix.actions.front() != ActionId(0);
    }
  };
  PrunePolicy policy;
  ReconcilerOptions opts;
  opts.heuristic = Heuristic::kAll;
  Reconciler r(fx.universe, logs, opts, &policy);
  const auto result = r.run();
  EXPECT_EQ(result.stats.schedules_completed, 1u);  // only [1, 0]
  EXPECT_GE(result.stats.prefix_prunes, 1u);
  EXPECT_EQ(result.best().schedule.front(), ActionId(1));
}

TEST(PolicyHooks, ExtraDependenciesConstrainOrder) {
  CounterFixture fx(0);
  std::vector<Log> logs;
  logs.push_back(
      make_log("a", {std::make_shared<IncrementAction>(fx.counter, 1)}));
  logs.push_back(
      make_log("b", {std::make_shared<IncrementAction>(fx.counter, 2)}));

  /// Requires action 1 to precede action 0, unconditionally.
  class DepPolicy final : public Policy {
   public:
    void extra_dependencies(
        const PrefixView&,
        std::vector<std::pair<ActionId, ActionId>>& out) override {
      out.emplace_back(ActionId(1), ActionId(0));
    }
  };
  DepPolicy policy;
  ReconcilerOptions opts;
  opts.heuristic = Heuristic::kAll;
  Reconciler r(fx.universe, logs, opts, &policy);
  const auto result = r.run();
  EXPECT_EQ(result.stats.schedules_completed, 1u);
  EXPECT_EQ(result.best().schedule,
            (std::vector<ActionId>{ActionId(1), ActionId(0)}));
}

TEST(PolicyHooks, OnFailureReceivesFailingAction) {
  CounterFixture fx(0);
  std::vector<Log> logs;
  logs.push_back(
      make_log("a", {std::make_shared<DecrementAction>(fx.counter, 3)}));

  class FailureWatcher final : public Policy {
   public:
    void on_failure(const PrefixView&, const Universe&, ActionId failed,
                    FailureKind kind) override {
      ++failures;
      last_failed = failed;
      last_kind = kind;
    }
    int failures = 0;
    ActionId last_failed;
    FailureKind last_kind = FailureKind::kExecution;
  };
  FailureWatcher policy;
  Reconciler r(fx.universe, logs, {}, &policy);
  (void)r.run();
  EXPECT_EQ(policy.failures, 1);
  EXPECT_EQ(policy.last_failed, ActionId(0));
  EXPECT_EQ(policy.last_kind, FailureKind::kPrecondition);
}

TEST(PolicyHooks, OnOutcomeFalseStopsSearch) {
  CounterFixture fx(0);
  std::vector<Log> logs;
  for (int i = 0; i < 3; ++i) {
    logs.push_back(make_log(
        "l" + std::to_string(i),
        {std::make_shared<IncrementAction>(fx.counter, 1)}));
  }
  class OneShot final : public Policy {
   public:
    bool on_outcome(const Outcome&) override { return false; }
  };
  OneShot policy;
  ReconcilerOptions opts;
  opts.heuristic = Heuristic::kAll;
  Reconciler r(fx.universe, logs, opts, &policy);
  const auto result = r.run();
  EXPECT_EQ(result.stats.schedules_explored(), 1u);
}

TEST(PolicyHooks, CustomCostRanksOutcomes) {
  CounterFixture fx(0);
  std::vector<Log> logs;
  logs.push_back(
      make_log("a", {std::make_shared<IncrementAction>(fx.counter, 1)}));
  logs.push_back(
      make_log("b", {std::make_shared<IncrementAction>(fx.counter, 2)}));

  /// Prefers schedules that run action 1 first.
  class PickyPolicy final : public Policy {
   public:
    double cost(const Outcome& o) override {
      if (!o.schedule.empty() && o.schedule.front() == ActionId(1)) return -1;
      return 0;
    }
  };
  PickyPolicy policy;
  ReconcilerOptions opts;
  opts.heuristic = Heuristic::kAll;
  Reconciler r(fx.universe, logs, opts, &policy);
  const auto result = r.run();
  ASSERT_GE(result.outcomes.size(), 2u);
  EXPECT_EQ(result.best().schedule.front(), ActionId(1));
  EXPECT_EQ(result.best().cost, -1);
}

TEST(PolicyHooks, KeepOutcomesBoundsRetention) {
  CounterFixture fx(0);
  std::vector<Log> logs;
  for (int i = 0; i < 4; ++i) {
    logs.push_back(make_log(
        "l" + std::to_string(i),
        {std::make_shared<IncrementAction>(fx.counter, 1)}));
  }
  ReconcilerOptions opts;
  opts.heuristic = Heuristic::kAll;
  opts.keep_outcomes = 3;
  Reconciler r(fx.universe, logs, opts);
  const auto result = r.run();
  EXPECT_EQ(result.stats.schedules_completed, 24u);  // 4!
  EXPECT_EQ(result.outcomes.size(), 3u);
}

}  // namespace
}  // namespace icecube
