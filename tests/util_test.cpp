// Unit tests for the utility layer: strong ids, bitsets, RNG, CRC,
// stopwatch.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <unordered_set>

#include "util/bitset.hpp"
#include "util/crc32.hpp"
#include "util/ids.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace icecube {
namespace {

TEST(StrongId, DefaultIsInvalid) {
  ActionId id;
  EXPECT_FALSE(id.valid());
}

TEST(StrongId, ConstructedIsValid) {
  ActionId id(3);
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(id.value(), 3u);
  EXPECT_EQ(id.index(), 3u);
}

TEST(StrongId, ComparesByValue) {
  EXPECT_EQ(ActionId(2), ActionId(2));
  EXPECT_NE(ActionId(2), ActionId(3));
  EXPECT_LT(ActionId(2), ActionId(3));
}

TEST(StrongId, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<ActionId, ObjectId>);
  static_assert(!std::is_same_v<ActionId, LogId>);
  SUCCEED();
}

TEST(StrongId, Hashable) {
  std::unordered_set<ActionId> set;
  set.insert(ActionId(1));
  set.insert(ActionId(1));
  set.insert(ActionId(2));
  EXPECT_EQ(set.size(), 2u);
}

TEST(Bitset, StartsEmpty) {
  Bitset bs(100);
  EXPECT_EQ(bs.count(), 0u);
  EXPECT_TRUE(bs.none());
  EXPECT_FALSE(bs.any());
}

TEST(Bitset, SetResetTest) {
  Bitset bs(130);  // crosses word boundaries
  bs.set(0);
  bs.set(63);
  bs.set(64);
  bs.set(129);
  EXPECT_TRUE(bs.test(0));
  EXPECT_TRUE(bs.test(63));
  EXPECT_TRUE(bs.test(64));
  EXPECT_TRUE(bs.test(129));
  EXPECT_FALSE(bs.test(1));
  EXPECT_EQ(bs.count(), 4u);
  bs.reset(63);
  EXPECT_FALSE(bs.test(63));
  EXPECT_EQ(bs.count(), 3u);
}

TEST(Bitset, SetOperations) {
  Bitset a(70), b(70);
  a.set(1);
  a.set(65);
  b.set(65);
  b.set(2);

  Bitset u = a | b;
  EXPECT_TRUE(u.test(1));
  EXPECT_TRUE(u.test(2));
  EXPECT_TRUE(u.test(65));

  Bitset i = a & b;
  EXPECT_EQ(i.count(), 1u);
  EXPECT_TRUE(i.test(65));

  Bitset d = a - b;
  EXPECT_EQ(d.count(), 1u);
  EXPECT_TRUE(d.test(1));
}

TEST(Bitset, DisjointAndSubset) {
  Bitset a(64), b(64), c(64);
  a.set(3);
  b.set(4);
  c.set(3);
  c.set(4);
  EXPECT_TRUE(a.disjoint(b));
  EXPECT_FALSE(a.disjoint(c));
  EXPECT_TRUE(a.subset_of(c));
  EXPECT_FALSE(c.subset_of(a));
  EXPECT_TRUE(a.subset_of(a));
}

TEST(Bitset, ForEachVisitsAscending) {
  Bitset bs(200);
  const std::set<std::size_t> expected{0, 5, 64, 127, 128, 199};
  for (std::size_t i : expected) bs.set(i);
  std::vector<std::size_t> seen;
  bs.for_each([&seen](std::size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, std::vector<std::size_t>(expected.begin(), expected.end()));
  EXPECT_EQ(bs.to_vector(), seen);
}

TEST(Bitset, ClearEmptiesAll) {
  Bitset bs(128);
  bs.set(0);
  bs.set(127);
  bs.clear();
  EXPECT_TRUE(bs.none());
}

TEST(Bitset, EqualityIsStructural) {
  Bitset a(10), b(10);
  EXPECT_EQ(a, b);
  a.set(9);
  EXPECT_NE(a, b);
  b.set(9);
  EXPECT_EQ(a, b);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(13), 13u);
  }
}

TEST(Rng, BelowCoversRange) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UnitInHalfOpenInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Crc32, MatchesIeeeCheckValue) {
  // The standard check value for CRC-32/ISO-HDLC.
  EXPECT_EQ(Crc32::of("123456789"), 0xCBF43926u);
}

TEST(Crc32, EmptyInputIsZero) { EXPECT_EQ(Crc32::of(""), 0u); }

TEST(Crc32, IncrementalEqualsOneShot) {
  const std::string text = "icecube-log 2 bank\nincrement | 0 | 100 |\n";
  Crc32 crc;
  for (std::size_t i = 0; i < text.size(); i += 7) {
    crc.update(std::string_view(text).substr(i, 7));
  }
  EXPECT_EQ(crc.value(), Crc32::of(text));
}

TEST(Crc32, SensitiveToSingleBitFlips) {
  std::string text = "the quick brown fox";
  const std::uint32_t clean = Crc32::of(text);
  for (std::size_t i = 0; i < text.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string damaged = text;
      damaged[i] = static_cast<char>(damaged[i] ^ (1 << bit));
      EXPECT_NE(Crc32::of(damaged), clean) << "byte " << i << " bit " << bit;
    }
  }
}

TEST(Crc32, UsableAtCompileTime) {
  static_assert(Crc32::of("123456789") == 0xCBF43926u);
  static_assert(Crc32::of("") == 0u);
  SUCCEED();
}

TEST(Stopwatch, MeasuresNonNegativeElapsed) {
  Stopwatch sw;
  EXPECT_GE(sw.seconds(), 0.0);
  const double first = sw.seconds();
  EXPECT_GE(sw.seconds(), first);
  sw.restart();
  EXPECT_GE(sw.seconds(), 0.0);
}

}  // namespace
}  // namespace icecube
