// Tests for proper-cutset enumeration (§3.2): minimal hitting sets of the
// elementary-cycle family.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/cutset.hpp"

namespace icecube {
namespace {

std::set<std::set<std::uint32_t>> as_sets(const std::vector<Cutset>& cutsets) {
  std::set<std::set<std::uint32_t>> out;
  for (const auto& cs : cutsets) {
    std::set<std::uint32_t> s;
    for (ActionId a : cs.actions) s.insert(a.value());
    out.insert(std::move(s));
  }
  return out;
}

TEST(Cutsets, AcyclicGraphYieldsSingleEmptyCutset) {
  Relations rel(3);
  rel.add_dependence(ActionId(0), ActionId(1));
  rel.close();
  const CutsetAnalysis analysis = find_proper_cutsets(rel);
  ASSERT_EQ(analysis.cutsets.size(), 1u);
  EXPECT_TRUE(analysis.cutsets[0].empty());
  EXPECT_FALSE(analysis.truncated);
}

TEST(Cutsets, TwoCycleYieldsBothSingletons) {
  Relations rel(2);
  rel.add_dependence(ActionId(0), ActionId(1));
  rel.add_dependence(ActionId(1), ActionId(0));
  rel.close();
  const CutsetAnalysis analysis = find_proper_cutsets(rel);
  EXPECT_EQ(as_sets(analysis.cutsets),
            (std::set<std::set<std::uint32_t>>{{0}, {1}}));
}

TEST(Cutsets, TriangleYieldsThreeSingletons) {
  Relations rel(3);
  rel.add_dependence(ActionId(0), ActionId(1));
  rel.add_dependence(ActionId(1), ActionId(2));
  rel.add_dependence(ActionId(2), ActionId(0));
  rel.close();
  const CutsetAnalysis analysis = find_proper_cutsets(rel);
  EXPECT_EQ(as_sets(analysis.cutsets),
            (std::set<std::set<std::uint32_t>>{{0}, {1}, {2}}));
}

TEST(Cutsets, DisjointCyclesRequireOneVertexEach) {
  Relations rel(4);
  rel.add_dependence(ActionId(0), ActionId(1));
  rel.add_dependence(ActionId(1), ActionId(0));
  rel.add_dependence(ActionId(2), ActionId(3));
  rel.add_dependence(ActionId(3), ActionId(2));
  rel.close();
  const CutsetAnalysis analysis = find_proper_cutsets(rel);
  EXPECT_EQ(as_sets(analysis.cutsets), (std::set<std::set<std::uint32_t>>{
                                           {0, 2}, {0, 3}, {1, 2}, {1, 3}}));
}

TEST(Cutsets, SharedVertexCoversBothCycles) {
  // Cycles {0,1} and {1,2}: {1} hits both; {0,2} is the other minimal set.
  Relations rel(3);
  rel.add_dependence(ActionId(0), ActionId(1));
  rel.add_dependence(ActionId(1), ActionId(0));
  rel.add_dependence(ActionId(1), ActionId(2));
  rel.add_dependence(ActionId(2), ActionId(1));
  rel.close();
  const CutsetAnalysis analysis = find_proper_cutsets(rel);
  EXPECT_EQ(as_sets(analysis.cutsets),
            (std::set<std::set<std::uint32_t>>{{1}, {0, 2}}));
}

TEST(Cutsets, AllCutsetsAreActualCutsets) {
  // Property: removing any reported cutset leaves no cycles.
  Relations rel(5);
  rel.add_dependence(ActionId(0), ActionId(1));
  rel.add_dependence(ActionId(1), ActionId(2));
  rel.add_dependence(ActionId(2), ActionId(0));
  rel.add_dependence(ActionId(2), ActionId(3));
  rel.add_dependence(ActionId(3), ActionId(4));
  rel.add_dependence(ActionId(4), ActionId(2));
  rel.close();
  const CutsetAnalysis analysis = find_proper_cutsets(rel);
  ASSERT_FALSE(analysis.cutsets.empty());
  for (const auto& cutset : analysis.cutsets) {
    Bitset removed(5);
    for (ActionId a : cutset.actions) removed.set(a.index());
    const Relations rest = rel.restricted(removed);
    EXPECT_TRUE(find_cycles(rest).cycles.empty());
  }
}

TEST(Cutsets, AllCutsetsAreMinimal) {
  Relations rel(5);
  rel.add_dependence(ActionId(0), ActionId(1));
  rel.add_dependence(ActionId(1), ActionId(2));
  rel.add_dependence(ActionId(2), ActionId(0));
  rel.add_dependence(ActionId(2), ActionId(3));
  rel.add_dependence(ActionId(3), ActionId(4));
  rel.add_dependence(ActionId(4), ActionId(2));
  rel.close();
  const CutsetAnalysis analysis = find_proper_cutsets(rel);
  for (const auto& cutset : analysis.cutsets) {
    // Dropping any single member must leave some cycle uncovered.
    for (std::size_t skip = 0; skip < cutset.actions.size(); ++skip) {
      Bitset removed(5);
      for (std::size_t i = 0; i < cutset.actions.size(); ++i) {
        if (i != skip) removed.set(cutset.actions[i].index());
      }
      const Relations rest = rel.restricted(removed);
      EXPECT_FALSE(find_cycles(rest).cycles.empty())
          << "cutset is not minimal";
    }
  }
}

TEST(Cutsets, SortedBySizeThenLexicographic) {
  Relations rel(3);
  rel.add_dependence(ActionId(0), ActionId(1));
  rel.add_dependence(ActionId(1), ActionId(0));
  rel.add_dependence(ActionId(1), ActionId(2));
  rel.add_dependence(ActionId(2), ActionId(1));
  rel.close();
  const CutsetAnalysis analysis = find_proper_cutsets(rel);
  ASSERT_EQ(analysis.cutsets.size(), 2u);
  EXPECT_LE(analysis.cutsets[0].size(), analysis.cutsets[1].size());
  EXPECT_EQ(analysis.cutsets[0].actions, std::vector<ActionId>{ActionId(1)});
}

TEST(Cutsets, RespectsMaxCutsetsCap) {
  // Many disjoint 2-cycles → 2^k minimal cutsets; cap at 4.
  const std::size_t k = 5;
  Relations rel(2 * k);
  for (std::size_t i = 0; i < k; ++i) {
    rel.add_dependence(ActionId(2 * i), ActionId(2 * i + 1));
    rel.add_dependence(ActionId(2 * i + 1), ActionId(2 * i));
  }
  rel.close();
  const CutsetAnalysis analysis = find_proper_cutsets(rel, 10000, 4);
  EXPECT_EQ(analysis.cutsets.size(), 4u);
  EXPECT_TRUE(analysis.truncated);
}

TEST(MinimalHittingSets, DirectInvocation) {
  const std::vector<Cycle> cycles{{ActionId(0), ActionId(1)},
                                  {ActionId(1), ActionId(2)},
                                  {ActionId(0), ActionId(2)}};
  const CutsetAnalysis analysis = minimal_hitting_sets(cycles, 3);
  // Hitting sets of {01, 12, 02}: any two vertices.
  EXPECT_EQ(as_sets(analysis.cutsets),
            (std::set<std::set<std::uint32_t>>{{0, 1}, {0, 2}, {1, 2}}));
}

TEST(MinimalHittingSets, EmptyFamilyGivesEmptySet) {
  const CutsetAnalysis analysis = minimal_hitting_sets({}, 4);
  ASSERT_EQ(analysis.cutsets.size(), 1u);
  EXPECT_TRUE(analysis.cutsets[0].empty());
}

}  // namespace
}  // namespace icecube
