// Tests for SCC decomposition and Johnson elementary-cycle enumeration
// (§3.2's dependence cycle analysis).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/cycles.hpp"

namespace icecube {
namespace {

Relations chain(std::size_t n) {
  Relations rel(n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    rel.add_dependence(ActionId(i), ActionId(i + 1));
  }
  rel.close();
  return rel;
}

/// Canonicalise a cycle: rotate so the smallest id comes first.
std::vector<std::uint32_t> canonical(const Cycle& cycle) {
  std::vector<std::uint32_t> ids;
  for (ActionId a : cycle) ids.push_back(a.value());
  const auto min_it = std::min_element(ids.begin(), ids.end());
  std::rotate(ids.begin(), ids.begin() + (min_it - ids.begin()), ids.end());
  return ids;
}

TEST(Scc, SingletonComponentsForAcyclicGraph) {
  const Relations rel = chain(4);
  const auto sccs = strongly_connected_components(rel);
  EXPECT_EQ(sccs.size(), 4u);
  for (const auto& scc : sccs) EXPECT_EQ(scc.size(), 1u);
}

TEST(Scc, DetectsTwoCycle) {
  Relations rel(3);
  rel.add_dependence(ActionId(0), ActionId(1));
  rel.add_dependence(ActionId(1), ActionId(0));
  rel.close();
  const auto sccs = strongly_connected_components(rel);
  std::size_t big = 0;
  for (const auto& scc : sccs) {
    if (scc.size() > 1) {
      ++big;
      EXPECT_EQ(scc.size(), 2u);
    }
  }
  EXPECT_EQ(big, 1u);
}

TEST(Scc, SeparatesIndependentComponents) {
  Relations rel(5);
  rel.add_dependence(ActionId(0), ActionId(1));
  rel.add_dependence(ActionId(1), ActionId(0));
  rel.add_dependence(ActionId(2), ActionId(3));
  rel.add_dependence(ActionId(3), ActionId(2));
  rel.close();
  const auto sccs = strongly_connected_components(rel);
  std::multiset<std::size_t> sizes;
  for (const auto& scc : sccs) sizes.insert(scc.size());
  EXPECT_EQ(sizes, (std::multiset<std::size_t>{1, 2, 2}));
}

TEST(Cycles, NoneInAcyclicGraph) {
  const Relations rel = chain(6);
  const CycleAnalysis analysis = find_cycles(rel);
  EXPECT_TRUE(analysis.cycles.empty());
  EXPECT_FALSE(analysis.truncated);
}

TEST(Cycles, FindsSingleTwoCycle) {
  Relations rel(2);
  rel.add_dependence(ActionId(0), ActionId(1));
  rel.add_dependence(ActionId(1), ActionId(0));
  rel.close();
  const CycleAnalysis analysis = find_cycles(rel);
  ASSERT_EQ(analysis.cycles.size(), 1u);
  EXPECT_EQ(canonical(analysis.cycles[0]), (std::vector<std::uint32_t>{0, 1}));
}

TEST(Cycles, FindsAllCyclesOfTriangleWithChords) {
  // 0→1, 1→2, 2→0 plus 1→0: cycles {0,1,2} and {0,1}.
  Relations rel(3);
  rel.add_dependence(ActionId(0), ActionId(1));
  rel.add_dependence(ActionId(1), ActionId(2));
  rel.add_dependence(ActionId(2), ActionId(0));
  rel.add_dependence(ActionId(1), ActionId(0));
  rel.close();
  const CycleAnalysis analysis = find_cycles(rel);
  std::set<std::vector<std::uint32_t>> found;
  for (const auto& c : analysis.cycles) found.insert(canonical(c));
  EXPECT_EQ(found, (std::set<std::vector<std::uint32_t>>{{0, 1}, {0, 1, 2}}));
}

TEST(Cycles, CompleteDigraphK4HasTwentyElementaryCycles) {
  // K4 (all ordered pairs): C(4,2)=6 2-cycles + 8 3-cycles + 6 4-cycles.
  Relations rel(4);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      if (i != j) rel.add_dependence(ActionId(i), ActionId(j));
    }
  }
  rel.close();
  const CycleAnalysis analysis = find_cycles(rel);
  EXPECT_EQ(analysis.cycles.size(), 20u);
  EXPECT_FALSE(analysis.truncated);
}

TEST(Cycles, RespectsCap) {
  Relations rel(4);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      if (i != j) rel.add_dependence(ActionId(i), ActionId(j));
    }
  }
  rel.close();
  const CycleAnalysis analysis = find_cycles(rel, 5);
  EXPECT_LE(analysis.cycles.size(), 5u + 1);  // may finish the inner emit
  EXPECT_TRUE(analysis.truncated);
}

TEST(Cycles, SelfLoopsAreIgnored) {
  Relations rel(2);
  rel.add_dependence(ActionId(0), ActionId(0));
  rel.close();
  const CycleAnalysis analysis = find_cycles(rel);
  EXPECT_TRUE(analysis.cycles.empty());
}

TEST(Cycles, EveryReportedCycleIsClosedInRawEdges) {
  Relations rel(5);
  rel.add_dependence(ActionId(0), ActionId(1));
  rel.add_dependence(ActionId(1), ActionId(2));
  rel.add_dependence(ActionId(2), ActionId(0));
  rel.add_dependence(ActionId(2), ActionId(3));
  rel.add_dependence(ActionId(3), ActionId(4));
  rel.add_dependence(ActionId(4), ActionId(2));
  rel.close();
  const CycleAnalysis analysis = find_cycles(rel);
  ASSERT_FALSE(analysis.cycles.empty());
  for (const auto& cycle : analysis.cycles) {
    for (std::size_t i = 0; i < cycle.size(); ++i) {
      const ActionId from = cycle[i];
      const ActionId to = cycle[(i + 1) % cycle.size()];
      EXPECT_TRUE(rel.depends_raw(from, to))
          << "edge " << from << "->" << to << " missing";
    }
  }
}

}  // namespace
}  // namespace icecube
