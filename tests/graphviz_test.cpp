// Tests for the DOT export of constraints and relations.
#include <gtest/gtest.h>

#include <memory>

#include "core/graphviz.hpp"
#include "core/reconciler.hpp"
#include "objects/counter.hpp"
#include "objects/sysadmin.hpp"
#include "test_helpers.hpp"

namespace icecube {
namespace {

using testing::make_log;

TEST(Graphviz, RelationsExportContainsNodesAndEdges) {
  SysAdminExample ex = make_sysadmin_example();
  Reconciler r(ex.initial, ex.logs);
  const std::string dot = to_dot(r.records(), r.relations());

  EXPECT_NE(dot.find("digraph icecube_relations"), std::string::npos);
  // One node per action with its log provenance.
  EXPECT_NE(dot.find("L0:0"), std::string::npos);
  EXPECT_NE(dot.find("L1:1"), std::string::npos);
  EXPECT_NE(dot.find("upgrade(4,5)"), std::string::npos);
  // The discovered D edge B2 -> A1 (flattened ids 4 -> 0).
  EXPECT_NE(dot.find("a4 -> a0;"), std::string::npos);
  // Independences are dashed.
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
  EXPECT_EQ(dot.find("fillcolor"), std::string::npos);  // no cutset marked
}

TEST(Graphviz, CutsetMembersAreFilled) {
  SysAdminExample ex = make_sysadmin_example();
  Reconciler r(ex.initial, ex.logs);
  Cutset cutset;
  cutset.actions = {ActionId(2)};
  const std::string dot = to_dot(r.records(), r.relations(), cutset);
  EXPECT_NE(dot.find("a2 [label=\"L0:2"), std::string::npos);
  EXPECT_NE(dot.find("fillcolor=lightgray"), std::string::npos);
}

TEST(Graphviz, ConstraintExportColoursEdges) {
  Universe u;
  const ObjectId c = u.add(std::make_unique<Counter>(0));
  std::vector<Log> logs;
  logs.push_back(make_log("a", {std::make_shared<IncrementAction>(c, 1)}));
  logs.push_back(make_log("b", {std::make_shared<DecrementAction>(c, 1)}));
  Reconciler r(u, logs);
  const std::string dot = to_dot(r.records(), r.constraints());
  EXPECT_NE(dot.find("digraph icecube_constraints"), std::string::npos);
  // inc before dec is safe (green); dec before inc is maybe (omitted).
  EXPECT_NE(dot.find("a0 -> a1 [color=green];"), std::string::npos);
  EXPECT_EQ(dot.find("a1 -> a0"), std::string::npos);
}

TEST(Graphviz, QuotesAreEscaped) {
  Universe u;
  const ObjectId c = u.add(std::make_unique<Counter>(0));
  std::vector<Log> logs;
  logs.push_back(make_log("a", {std::make_shared<IncrementAction>(c, 1)}));
  Reconciler r(u, logs);
  const std::string dot = to_dot(r.records(), r.relations());
  // Every label is well-formed: no stray unescaped quote sequences.
  EXPECT_EQ(dot.find("\"\""), std::string::npos);
}

}  // namespace
}  // namespace icecube
