// Tests for the static-constraint machinery: the three-valued lattice, tags,
// and the pairwise constraint builder's three rules (§2.3).
#include <gtest/gtest.h>

#include <memory>

#include "core/constraint.hpp"
#include "core/constraint_builder.hpp"
#include "core/log.hpp"
#include "core/tag.hpp"
#include "test_helpers.hpp"

namespace icecube {
namespace {

using testing::NopAction;
using testing::ScriptedObject;

TEST(Constraint, MostConstrainingIsMax) {
  EXPECT_EQ(most_constraining(Constraint::kSafe, Constraint::kSafe),
            Constraint::kSafe);
  EXPECT_EQ(most_constraining(Constraint::kSafe, Constraint::kMaybe),
            Constraint::kMaybe);
  EXPECT_EQ(most_constraining(Constraint::kMaybe, Constraint::kSafe),
            Constraint::kMaybe);
  EXPECT_EQ(most_constraining(Constraint::kMaybe, Constraint::kUnsafe),
            Constraint::kUnsafe);
  EXPECT_EQ(most_constraining(Constraint::kUnsafe, Constraint::kSafe),
            Constraint::kUnsafe);
}

TEST(Constraint, ToStringNames) {
  EXPECT_EQ(to_string(Constraint::kSafe), "safe");
  EXPECT_EQ(to_string(Constraint::kMaybe), "maybe");
  EXPECT_EQ(to_string(Constraint::kUnsafe), "unsafe");
}

TEST(Tag, DescribeFormatsParams) {
  EXPECT_EQ(Tag("join", {1, 2}).describe(), "join(1,2)");
  EXPECT_EQ(Tag("noop").describe(), "noop()");
  EXPECT_EQ(Tag("fswrite", {}, {"/a/b"}).describe(), "fswrite(/a/b)");
  EXPECT_EQ(Tag("mixed", {7}, {"x"}).describe(), "mixed(7,x)");
}

TEST(Tag, EqualityIsStructural) {
  EXPECT_EQ(Tag("op", {1}), Tag("op", {1}));
  EXPECT_NE(Tag("op", {1}), Tag("op", {2}));
  EXPECT_NE(Tag("op", {1}), Tag("po", {1}));
}

class ConstraintBuilderTest : public ::testing::Test {
 protected:
  /// Universe with two scripted objects whose order method is recorded.
  void SetUp() override {
    auto script = [this](const Action& a, const Action& b,
                         LogRelation rel) -> Constraint {
      ++order_calls_;
      last_rel_ = rel;
      if (a.tag().op == "u" && b.tag().op == "v") return Constraint::kUnsafe;
      if (a.tag().op == "s") return Constraint::kSafe;
      return Constraint::kMaybe;
    };
    x_ = universe_.add(std::make_unique<ScriptedObject>(script));
    y_ = universe_.add(std::make_unique<ScriptedObject>(script));
  }

  Universe universe_;
  ObjectId x_, y_;
  int order_calls_ = 0;
  LogRelation last_rel_ = LogRelation::kSameLog;
};

TEST_F(ConstraintBuilderTest, DisjointTargetsAreSafeWithoutConsultingOrder) {
  const ActionRecord a{std::make_shared<NopAction>("u", std::vector{x_}),
                       LogId(0), 0};
  const ActionRecord b{std::make_shared<NopAction>("v", std::vector{y_}),
                       LogId(1), 0};
  EXPECT_EQ(evaluate_constraint(universe_, a, b), Constraint::kSafe);
  EXPECT_EQ(order_calls_, 0);
}

TEST_F(ConstraintBuilderTest, SameLogForwardOrderIsSafeByDefault) {
  const ActionRecord a{std::make_shared<NopAction>("u", std::vector{x_}),
                       LogId(0), 0};
  const ActionRecord b{std::make_shared<NopAction>("v", std::vector{x_}),
                       LogId(0), 1};
  // a precedes b in the same log: safe, order not consulted.
  EXPECT_EQ(evaluate_constraint(universe_, a, b), Constraint::kSafe);
  EXPECT_EQ(order_calls_, 0);
  // The reversing direction consults the order method (kSameLog).
  EXPECT_EQ(evaluate_constraint(universe_, b, a), Constraint::kMaybe);
  EXPECT_EQ(order_calls_, 1);
  EXPECT_EQ(last_rel_, LogRelation::kSameLog);
}

TEST_F(ConstraintBuilderTest, AcrossLogsConsultsOrderWithAcrossRelation) {
  const ActionRecord a{std::make_shared<NopAction>("u", std::vector{x_}),
                       LogId(0), 0};
  const ActionRecord b{std::make_shared<NopAction>("v", std::vector{x_}),
                       LogId(1), 0};
  EXPECT_EQ(evaluate_constraint(universe_, a, b), Constraint::kUnsafe);
  EXPECT_EQ(last_rel_, LogRelation::kAcrossLogs);
}

TEST_F(ConstraintBuilderTest, MultiTargetTakesMostConstrainingValue) {
  // Object x says safe (op "s"); object y's script also runs — both return
  // the same value for this pair, so craft objects with different scripts.
  Universe u;
  const ObjectId safe_obj = u.add(std::make_unique<ScriptedObject>(
      [](const Action&, const Action&, LogRelation) {
        return Constraint::kSafe;
      }));
  const ObjectId unsafe_obj = u.add(std::make_unique<ScriptedObject>(
      [](const Action&, const Action&, LogRelation) {
        return Constraint::kUnsafe;
      }));
  const ActionRecord a{
      std::make_shared<NopAction>("a", std::vector{safe_obj, unsafe_obj}),
      LogId(0), 0};
  const ActionRecord b{
      std::make_shared<NopAction>("b", std::vector{safe_obj, unsafe_obj}),
      LogId(1), 0};
  EXPECT_EQ(evaluate_constraint(u, a, b), Constraint::kUnsafe);
}

TEST_F(ConstraintBuilderTest, OnlyCommonTargetsAreConsulted) {
  // a targets {x}, b targets {x, y}: only x's order runs.
  int x_calls = 0, y_calls = 0;
  Universe u;
  const ObjectId xo = u.add(std::make_unique<ScriptedObject>(
      [&x_calls](const Action&, const Action&, LogRelation) {
        ++x_calls;
        return Constraint::kMaybe;
      }));
  const ObjectId yo = u.add(std::make_unique<ScriptedObject>(
      [&y_calls](const Action&, const Action&, LogRelation) {
        ++y_calls;
        return Constraint::kUnsafe;
      }));
  const ActionRecord a{std::make_shared<NopAction>("a", std::vector{xo}),
                       LogId(0), 0};
  const ActionRecord b{std::make_shared<NopAction>("b", std::vector{xo, yo}),
                       LogId(1), 0};
  EXPECT_EQ(evaluate_constraint(u, a, b), Constraint::kMaybe);
  EXPECT_EQ(x_calls, 1);
  EXPECT_EQ(y_calls, 0);
}

TEST_F(ConstraintBuilderTest, BuildsFullMatrix) {
  Log l0("l0");
  l0.append(std::make_shared<NopAction>("u", std::vector{x_}));
  l0.append(std::make_shared<NopAction>("v", std::vector{x_}));
  Log l1("l1");
  l1.append(std::make_shared<NopAction>("v", std::vector{x_}));

  const auto records = flatten({l0, l1});
  ASSERT_EQ(records.size(), 3u);
  const ConstraintMatrix m = build_constraints(universe_, records);
  EXPECT_EQ(m.size(), 3u);
  // In-log forward: safe.
  EXPECT_EQ(m.at(ActionId(0), ActionId(1)), Constraint::kSafe);
  // u before v across logs: unsafe per script.
  EXPECT_EQ(m.at(ActionId(0), ActionId(2)), Constraint::kUnsafe);
  // v before v across logs: maybe per script.
  EXPECT_EQ(m.at(ActionId(1), ActionId(2)), Constraint::kMaybe);
}

TEST(FlattenTest, PreservesLogOrderAndProvenance) {
  Universe u;
  const ObjectId x = u.add(std::make_unique<ScriptedObject>());
  Log a("a");
  a.append(std::make_shared<NopAction>("p", std::vector{x}));
  a.append(std::make_shared<NopAction>("q", std::vector{x}));
  Log b("b");
  b.append(std::make_shared<NopAction>("r", std::vector{x}));

  const auto records = flatten({a, b});
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].log, LogId(0));
  EXPECT_EQ(records[0].position, 0u);
  EXPECT_EQ(records[1].log, LogId(0));
  EXPECT_EQ(records[1].position, 1u);
  EXPECT_EQ(records[2].log, LogId(1));
  EXPECT_TRUE(records[0].before_in_log(records[1]));
  EXPECT_FALSE(records[1].before_in_log(records[0]));
  EXPECT_FALSE(records[0].before_in_log(records[2]));
  EXPECT_TRUE(records[0].same_log(records[1]));
  EXPECT_FALSE(records[0].same_log(records[2]));
}

TEST(RenderMatrixTest, ContainsLabelsAndValues) {
  ConstraintMatrix m(2);
  m.set(ActionId(0), ActionId(1), Constraint::kUnsafe);
  m.set(ActionId(1), ActionId(0), Constraint::kSafe);
  const std::string rendered = render_matrix(m, {"alpha", "beta"});
  EXPECT_NE(rendered.find("alpha"), std::string::npos);
  EXPECT_NE(rendered.find("beta"), std::string::npos);
  EXPECT_NE(rendered.find("unsafe"), std::string::npos);
  EXPECT_NE(rendered.find("safe"), std::string::npos);
}

}  // namespace
}  // namespace icecube
