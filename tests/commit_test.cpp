// Decentralised commitment: frame codec, election protocol semantics,
// negative fixtures for every commitment invariant, and the empty-vs-
// all-aborted schedule distinction in gossip and sync.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "objects/counter.hpp"
#include "replica/commit.hpp"
#include "replica/gossip.hpp"
#include "replica/sync.hpp"
#include "serialize/commit_codec.hpp"
#include "serialize/gossip_codec.hpp"
#include "serialize/log_codec.hpp"
#include "serialize/universe_codec.hpp"
#include "simnet/invariants.hpp"

namespace icecube {
namespace {

Universe counter_genesis(std::int64_t initial = 100) {
  Universe u;
  u.add(std::make_unique<Counter>(initial));
  return u;
}

ActionPtr inc(std::int64_t amount) {
  return std::make_shared<IncrementAction>(ObjectId(0), amount);
}
ActionPtr dec(std::int64_t amount) {
  return std::make_shared<DecrementAction>(ObjectId(0), amount);
}

CommitProposal sample_proposal(const std::string& proposer,
                               std::uint64_t election = 0) {
  Log log("history");
  log.append(inc(5));
  log.append(dec(3));
  CommitProposal p;
  p.election = election;
  p.proposer = proposer;
  p.fingerprint = "fp of " + proposer;
  p.uids = {proposer + ":0", proposer + ":1"};
  p.log_bytes = encode_log(log);
  p.hash = commit_proposal_hash(p);
  return p;
}

CommitFrame sample_commit_frame() {
  CommitFrame frame;
  frame.site = "site with spaces";
  frame.members = 3;
  frame.stable_height = 1;
  frame.proposals = {sample_proposal("a"), sample_proposal("b", 1)};
  frame.votes = {{0, 0, "a", frame.proposals[0].id()},
                 {0, 1, "b votes", frame.proposals[1].id()}};
  return frame;
}

// --- frame codec ---

TEST(CommitCodec, RoundTrip) {
  const CommitFrame frame = sample_commit_frame();
  const auto decoded = decode_commit_frame(encode_commit_frame(frame, 7), 7);
  ASSERT_TRUE(decoded.ok()) << decoded.error.message();
  EXPECT_EQ(decoded.frame->site, frame.site);
  EXPECT_EQ(decoded.frame->members, frame.members);
  EXPECT_EQ(decoded.frame->stable_height, frame.stable_height);
  ASSERT_EQ(decoded.frame->proposals.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(decoded.frame->proposals[i].id(), frame.proposals[i].id());
    EXPECT_EQ(decoded.frame->proposals[i].uids, frame.proposals[i].uids);
    EXPECT_EQ(decoded.frame->proposals[i].log_bytes,
              frame.proposals[i].log_bytes);
    EXPECT_EQ(decoded.frame->proposals[i].fingerprint,
              frame.proposals[i].fingerprint);
  }
  EXPECT_EQ(decoded.frame->votes, frame.votes);
}

TEST(CommitCodec, IsCommitFrameDispatch) {
  EXPECT_TRUE(is_commit_frame(encode_commit_frame(sample_commit_frame(), 0)));
  GossipFrame gossip;
  gossip.site = "s";
  EXPECT_FALSE(is_commit_frame(encode_gossip_frame(gossip)));
  EXPECT_FALSE(is_commit_frame(""));
  EXPECT_FALSE(is_commit_frame("icecube-log 2 x\n"));
}

TEST(CommitCodec, WrongAuthSeedRejectedWhole) {
  const std::string wire = encode_commit_frame(sample_commit_frame(), 7);
  const auto decoded = decode_commit_frame(wire, 8);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error.kind, DecodeErrorKind::kCorrupted);
}

TEST(CommitCodec, TamperedProposalHashRejected) {
  // The hash field lies about the content: CRC and auth both pass (they
  // cover the bytes as written), the content-address layer must catch it.
  CommitFrame frame = sample_commit_frame();
  frame.proposals[0].hash ^= 0xdeadbeef;
  const auto decoded = decode_commit_frame(encode_commit_frame(frame, 7), 7);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error.kind, DecodeErrorKind::kBadOperands);
}

TEST(CommitCodec, TruncationAndBitFlipRejected) {
  const std::string wire = encode_commit_frame(sample_commit_frame(), 7);
  const auto truncated =
      decode_commit_frame(wire.substr(0, wire.size() - 5), 7);
  ASSERT_FALSE(truncated.ok());
  std::string flipped = wire;
  flipped[flipped.size() / 2] ^= 0x20;
  const auto corrupted = decode_commit_frame(flipped, 7);
  ASSERT_FALSE(corrupted.ok());
}

// --- protocol semantics (in-memory frame exchange, no simulated net) ---

std::vector<GossipNode> make_nodes(std::size_t n) {
  std::vector<GossipNode> nodes;
  nodes.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    nodes.emplace_back("s" + std::to_string(i), counter_genesis());
  }
  return nodes;
}

std::vector<CommitEngine> make_engines(std::vector<GossipNode>& nodes) {
  std::vector<CommitEngine> engines;
  engines.reserve(nodes.size());
  for (GossipNode& node : nodes) {
    engines.emplace_back(node, nodes.size());
  }
  return engines;
}

// All-pairs gossip within `group` (indices), one round.
void gossip_round(std::vector<GossipNode>& nodes,
                  const std::vector<std::size_t>& group) {
  for (std::size_t i : group) {
    for (std::size_t j : group) {
      if (i != j) nodes[j].receive(nodes[i].make_message());
    }
  }
}

// All-pairs commitment exchange within `group`, observing invariants.
void commit_round(std::vector<CommitEngine>& engines,
                  const std::vector<std::size_t>& group,
                  CommitInvariantChecker& checker) {
  for (std::size_t i : group) {
    for (std::size_t j : group) {
      if (i != j) engines[j].receive(engines[i].make_message());
      checker.observe(engines[j], 0);
    }
  }
}

[[nodiscard]] bool fully_stable(const std::vector<CommitEngine>& engines) {
  if (!commit_converged(engines)) return false;
  for (const CommitEngine& e : engines) {
    if (e.stable_uids().size() != e.node().history().size()) return false;
    if (e.node().pending().size() != 0) return false;
  }
  return true;
}

// Interleaves gossip and commitment rounds until every action everywhere
// is stable; asserts it happens within `limit` rounds.
void pump_until_stable(std::vector<GossipNode>& nodes,
                       std::vector<CommitEngine>& engines,
                       CommitInvariantChecker& checker,
                       std::size_t limit = 50) {
  std::vector<std::size_t> all;
  for (std::size_t i = 0; i < nodes.size(); ++i) all.push_back(i);
  for (std::size_t round = 0; round < limit; ++round) {
    gossip_round(nodes, all);
    commit_round(engines, all, checker);
    if (fully_stable(engines)) return;
  }
  FAIL() << "group never became fully stable";
}

TEST(CommitEngine, ThreeSitesCommitEverything) {
  std::vector<GossipNode> nodes = make_nodes(3);
  std::vector<CommitEngine> engines = make_engines(nodes);
  for (std::size_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(nodes[i].perform(inc(static_cast<std::int64_t>(i) + 1)));
  }
  CommitInvariantChecker checker;
  pump_until_stable(nodes, engines, checker);
  checker.check_commit_converged(engines, 0);
  EXPECT_TRUE(checker.ok()) << checker.violations().front().message();

  EXPECT_GE(engines[0].stable_height(), 1u);
  for (const CommitEngine& e : engines) {
    EXPECT_EQ(e.decided(), engines[0].decided());
    EXPECT_EQ(e.stable_uids().size(), 3u);
    EXPECT_EQ(e.node().stable_length(), 3u);
    EXPECT_GE(e.stats().decisions, 1u);
    EXPECT_GE(e.stats().votes_cast, 1u);
  }
}

TEST(CommitEngine, MinorityCannotDecideMajorityCan) {
  std::vector<GossipNode> nodes = make_nodes(3);
  std::vector<CommitEngine> engines = make_engines(nodes);
  ASSERT_TRUE(nodes[0].perform(inc(1)));
  // Commit s0's action via one gossip exchange with s1 only.
  nodes[1].receive(nodes[0].make_message());
  nodes[0].receive(nodes[1].make_message());
  ASSERT_GE(nodes[0].history().size(), 1u);

  // Alone, s0 proposes and votes for itself: one vote among three members
  // never dominates the two unheard votes.
  engines[0].tick();
  (void)engines[0].make_message();
  engines[0].tick();
  EXPECT_EQ(engines[0].stable_height(), 0u);
  EXPECT_GE(engines[0].stats().proposals_made, 1u);
  EXPECT_GE(engines[0].stats().votes_cast, 1u);

  // Two of three are a strict majority: s1 hears s0's vote, adds its own,
  // and 2 > 1 unheard decides no matter how s2 voted.
  engines[1].receive(engines[0].make_message());
  EXPECT_EQ(engines[1].stable_height(), 1u);
  EXPECT_EQ(engines[0].stable_height(), 0u);  // s0 has not heard back yet

  engines[0].receive(engines[1].make_message());
  EXPECT_EQ(engines[0].stable_height(), 1u);
  EXPECT_EQ(engines[0].decided(), engines[1].decided());
}

TEST(CommitEngine, PartitionedHalvesHealViaRunoff) {
  std::vector<GossipNode> nodes = make_nodes(4);
  std::vector<CommitEngine> engines = make_engines(nodes);
  for (std::size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(nodes[i].perform(inc(static_cast<std::int64_t>(i) + 1)));
  }
  CommitInvariantChecker checker;

  // Partition {s0,s1} | {s2,s3}: each half commits its own pair of
  // actions and campaigns for it, but two votes among four members can
  // never dominate the two unheard — nothing is decided mid-partition.
  const std::vector<std::size_t> left{0, 1}, right{2, 3};
  for (int round = 0; round < 4; ++round) {
    gossip_round(nodes, left);
    gossip_round(nodes, right);
    commit_round(engines, left, checker);
    commit_round(engines, right, checker);
  }
  ASSERT_TRUE(checker.ok()) << checker.violations().front().message();
  for (const CommitEngine& e : engines) {
    EXPECT_EQ(e.stable_height(), 0u);
    EXPECT_GE(e.stats().votes_cast, 1u);
  }

  // Heal, commitment traffic first (before any anti-entropy unifies the
  // histories): the complete runoff-0 tally is a permanent 2-2 tie, so
  // every site derives stuckness, casts the identical deterministic
  // runoff-1 vote, and the losing half — whose nodes still hold the
  // divergent lineage — must rebase onto the winner, not be dropped.
  const std::vector<std::size_t> all{0, 1, 2, 3};
  for (int round = 0; round < 3; ++round) {
    commit_round(engines, all, checker);
  }
  pump_until_stable(nodes, engines, checker);
  checker.check_commit_converged(engines, 1);
  EXPECT_TRUE(checker.ok()) << checker.violations().front().message();

  std::size_t runoff_votes = 0, rebases = 0;
  for (const CommitEngine& e : engines) {
    EXPECT_EQ(e.decided(), engines[0].decided());
    EXPECT_EQ(e.stable_uids().size(), 4u);
    runoff_votes += e.stats().runoff_votes;
    rebases += e.stats().rebases;
  }
  EXPECT_GE(runoff_votes, 1u) << "a 2-2 tie must resolve via a runoff";
  EXPECT_GE(rebases, 1u) << "the losing half must rebase, not be dropped";
}

TEST(CommitEngine, DecisionsRederivableFromKnowledgeAfterCrash) {
  std::vector<GossipNode> nodes = make_nodes(3);
  std::vector<CommitEngine> engines = make_engines(nodes);
  for (std::size_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(nodes[i].perform(inc(static_cast<std::int64_t>(i) + 1)));
  }
  CommitInvariantChecker checker;
  pump_until_stable(nodes, engines, checker);
  ASSERT_GE(engines[0].stable_height(), 1u);

  // s0 crashes and loses its replica state but not the cluster's
  // knowledge: a re-announced frame from any peer lets a fresh engine
  // re-derive the identical decision sequence and rebase its empty node
  // onto the stable prefix. Decisions are a function of knowledge alone.
  GossipNode reborn("s0", counter_genesis());
  CommitEngine revived(reborn, 3);
  const CommitReceipt receipt = revived.receive(engines[1].make_message());
  EXPECT_FALSE(receipt.quarantined);
  EXPECT_EQ(revived.decided(), engines[1].decided());
  EXPECT_EQ(revived.stable_uids(), engines[1].stable_uids());
  EXPECT_EQ(reborn.history_uids().size(), revived.stable_uids().size());
  EXPECT_GE(revived.stats().rebases, 1u);
}

TEST(CommitEngine, MemberCountMismatchQuarantined) {
  std::vector<GossipNode> nodes = make_nodes(2);
  std::vector<CommitEngine> engines = make_engines(nodes);
  GossipNode other("s9", counter_genesis());
  CommitEngine stranger(other, 5);  // believes in a 5-member cluster
  const CommitReceipt receipt = engines[0].receive(stranger.make_message());
  EXPECT_TRUE(receipt.quarantined);
  EXPECT_EQ(engines[0].stats().quarantines, 1u);
  EXPECT_FALSE(receipt.learned());
}

// --- negative fixtures: each commitment invariant must actually fire ---

[[nodiscard]] bool has_violation(const CommitInvariantChecker& checker,
                                 const std::string& kind) {
  for (const Violation& v : checker.violations()) {
    if (v.kind == kind) return true;
  }
  return false;
}

TEST(CommitInvariants, DoubleVoteFlagged) {
  std::vector<GossipNode> nodes = make_nodes(2);
  std::vector<CommitEngine> engines = make_engines(nodes);

  // A forged (but correctly signed) frame in which "evil" fills one
  // (election, runoff) slot twice. The engine unions it — knowledge is
  // grow-only — and the vote-uniqueness invariant reports the equivocation.
  CommitFrame forged;
  forged.site = "evil";
  forged.members = 2;
  forged.votes = {{0, 0, "evil", "proposal-one"},
                  {0, 0, "evil", "proposal-two"}};
  const CommitReceipt receipt =
      engines[0].receive(encode_commit_frame(forged, 0));
  EXPECT_FALSE(receipt.quarantined);
  EXPECT_EQ(receipt.new_votes, 2u);

  CommitInvariantChecker checker;
  checker.observe(engines[0], 3);
  EXPECT_TRUE(has_violation(checker, "vote-unique"));
}

// Builds a single-member engine that has decided its own one-action
// history (a one-member election is its own quorum), by committing the
// action through a throwaway gossip peer first.
void decide_alone(GossipNode& node, CommitEngine& engine, ActionPtr action) {
  ASSERT_TRUE(node.perform(std::move(action)));
  GossipNode peer("peer-" + node.name(), counter_genesis());
  node.receive(peer.make_message());  // commits the pending action
  ASSERT_GE(node.history().size(), 1u);
  engine.tick();
  ASSERT_EQ(engine.stable_height(), 1u);
}

TEST(CommitInvariants, DivergentCommittedPrefixesFlagged) {
  std::vector<GossipNode> nodes = make_nodes(2);
  std::vector<CommitEngine> engines;
  engines.reserve(2);
  engines.emplace_back(nodes[0], 1);
  engines.emplace_back(nodes[1], 1);
  decide_alone(nodes[0], engines[0], inc(1));
  decide_alone(nodes[1], engines[1], inc(2));

  // Two "clusters of one" each decided a different prefix. A checker
  // watching both must reject the pair: decided sequences anywhere in a
  // group have to be prefix-ordered.
  CommitInvariantChecker checker;
  checker.observe(engines[0], 1);
  checker.observe(engines[1], 2);
  EXPECT_TRUE(has_violation(checker, "commit-divergence"));

  CommitInvariantChecker convergence;
  convergence.check_commit_converged(engines, 3);
  EXPECT_TRUE(has_violation(convergence, "commit-convergence"));
}

TEST(CommitInvariants, RevokedCommitFlagged) {
  // Two engines impersonating the same site with different decisions: to
  // the checker this is one site whose decided sequence changed without
  // extending — a revoked commitment.
  std::vector<GossipNode> nodes;
  nodes.reserve(2);
  nodes.emplace_back("s", counter_genesis());
  nodes.emplace_back("s", counter_genesis());
  std::vector<CommitEngine> engines;
  engines.reserve(2);
  engines.emplace_back(nodes[0], 1);
  engines.emplace_back(nodes[1], 1);
  decide_alone(nodes[0], engines[0], inc(1));
  decide_alone(nodes[1], engines[1], inc(2));

  CommitInvariantChecker checker;
  checker.observe(engines[0], 1);
  checker.observe(engines[1], 2);
  EXPECT_TRUE(has_violation(checker, "commit-irrevocable"));
}

TEST(CommitInvariants, StablePrefixRewriteFlagged) {
  std::vector<GossipNode> nodes;
  nodes.reserve(1);
  nodes.emplace_back("s", counter_genesis());
  std::vector<CommitEngine> engines;
  engines.reserve(1);
  engines.emplace_back(nodes[0], 1);
  decide_alone(nodes[0], engines[0], inc(1));

  CommitInvariantChecker checker;
  checker.observe(engines[0], 1);
  ASSERT_TRUE(checker.ok());

  // Something rewrites the node's history underneath the engine (here: a
  // forced rebase onto a different prefix). The decided prefix is no
  // longer what the node executes — the stable-prefix invariant fires.
  ASSERT_TRUE(nodes[0].rebase({inc(9)}, {"z:0"}));
  checker.observe(engines[0], 2);
  EXPECT_TRUE(has_violation(checker, "stable-prefix"));
}

// --- empty vs all-aborted schedules (gossip + sync reporting) ---

TEST(GossipAllAborted, IdleExchangeIsNothingToMerge) {
  std::vector<GossipNode> nodes = make_nodes(2);
  const GossipReceipt receipt = nodes[0].receive(nodes[1].make_message());
  EXPECT_EQ(receipt.reject, GossipReject::kNothingToMerge);
  EXPECT_FALSE(receipt.quarantined);
  EXPECT_EQ(nodes[0].stats().merge_noops, 1u);
  EXPECT_EQ(nodes[0].stats().merge_aborted, 0u);
}

TEST(GossipAllAborted, SemanticStallIsAllAborted) {
  // The peer offers an action that cannot replay from the shared committed
  // state (a decrement below zero): actions were offered, every candidate
  // schedule aborted all of them. That must be distinguishable from the
  // idle exchange above — and it is not a quarantine either.
  GossipNode node("a", counter_genesis(2));
  const ObjectRegistry registry = ObjectRegistry::with_builtins();

  Log offered("b");
  offered.append(dec(5));
  GossipFrame frame;
  frame.site = "b";
  frame.epoch = 0;
  frame.history_bytes = encode_log(Log("b"));
  frame.pending_uids = {"b:0"};
  frame.pending_bytes = encode_log(offered);
  frame.universe_bytes = *encode_universe(node.committed(), registry);

  const GossipReceipt receipt = node.receive(encode_gossip_frame(frame));
  EXPECT_EQ(receipt.reject, GossipReject::kAllAborted);
  EXPECT_FALSE(receipt.quarantined);
  EXPECT_FALSE(receipt.merged);
  EXPECT_EQ(node.stats().merge_aborted, 1u);
  EXPECT_EQ(node.stats().merge_noops, 0u);
  EXPECT_TRUE(node.history().empty());
}

/// Valid while the shared valve is open (during local perform), aborts on
/// every later replay — the honest way to make a reconciliation commit
/// nothing although actions were offered.
class ValveAction final : public SimpleAction {
 public:
  explicit ValveAction(std::shared_ptr<bool> open)
      : SimpleAction(Tag("valve"), {}), open_(std::move(open)) {}

  [[nodiscard]] bool precondition(const Universe&) const override {
    return *open_;
  }
  bool execute(Universe&) const override { return *open_; }

 private:
  std::shared_ptr<bool> open_;
};

TEST(SyncAllAborted, SingleRoundReportsAllAborted) {
  auto open = std::make_shared<bool>(true);
  Site a("a", counter_genesis()), b("b", counter_genesis());
  ASSERT_TRUE(a.perform(std::make_shared<ValveAction>(open)));
  ASSERT_TRUE(b.perform(std::make_shared<ValveAction>(open)));
  *open = false;

  const SyncResult result = synchronise({&a, &b});
  EXPECT_TRUE(result.adopted);
  EXPECT_TRUE(result.all_aborted);
  EXPECT_TRUE(result.reconcile.best().schedule.empty());
}

TEST(SyncAllAborted, IdleRoundIsNotAllAborted) {
  Site a("a", counter_genesis()), b("b", counter_genesis());
  ASSERT_TRUE(a.perform(inc(1)));
  const SyncResult result = synchronise({&a, &b});
  EXPECT_TRUE(result.adopted);
  EXPECT_FALSE(result.all_aborted);
}

TEST(SyncAllAborted, ResilientprotocolRecordsStall) {
  auto open = std::make_shared<bool>(true);
  Site a("a", counter_genesis()), b("b", counter_genesis());
  ASSERT_TRUE(a.perform(std::make_shared<ValveAction>(open)));
  ASSERT_TRUE(b.perform(std::make_shared<ValveAction>(open)));
  *open = false;

  SyncConfig config;
  config.ship_logs = false;  // ValveAction is not registered for shipping
  const SyncReport report =
      synchronise_resilient({&a, &b}, {}, nullptr, nullptr, config);
  EXPECT_TRUE(report.all_aborted);
  bool recorded = false;
  for (const SyncError& error : report.errors) {
    if (error.kind == SyncErrorKind::kAllAborted) recorded = true;
  }
  EXPECT_TRUE(recorded);
  const SyncError stall{SyncErrorKind::kAllAborted, {}, {}};
  EXPECT_FALSE(stall.transient());  // a retry will not fix a semantic stall
}

}  // namespace
}  // namespace icecube
