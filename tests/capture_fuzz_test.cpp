// Exhaustive corruption sweep over the capture-log reader, in the style of
// commit_fuzz_test.cpp: for a real recorded capture, flip one (seeded) bit
// at EVERY byte position and truncate at EVERY prefix length, and require
// the reader to either recover at a frame boundary — returning a strict
// prefix of the original record stream — or fail with a structured
// DecodeError. Never crash, never return frames the original did not hold
// (run it under the sanitize presets; the acceptance bar is zero
// ASan/UBSan reports). A subsampled set of the damaged files is then fed
// through the full replay engine, which must stay structured too.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "capture/capture_sink.hpp"
#include "capture/replay_engine.hpp"
#include "capture/wire_log_format.hpp"
#include "capture/wire_log_reader.hpp"
#include "simnet/chaos.hpp"

namespace icecube {
namespace {

// Deterministic seeded generator (splitmix64) — which bit gets flipped at
// each position replays identically across runs.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}
  std::uint64_t next() {
    state_ += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// A tiny but real capture: spec frame, trace, gossip frames, summary. The
/// sweeps below are O(bytes^2), so the scenario is the smallest one the
/// harness runs — the size guard keeps a future workload change from
/// silently turning this test quadratic-slow.
std::string sample_capture() {
  ChaosSpec spec;
  spec.seed = 23;
  spec.sites = 2;
  spec.actions_per_site = 1;
  spec.fault_horizon = 16;
  spec.keep_trace = false;
  spec.commitment = false;
  MemoryCaptureSink sink;
  (void)run_chaos_captured(spec, sink);
  std::string bytes = encode_capture_header();
  for (const CaptureRecord& record : sink.records()) {
    append_capture_frame(bytes, record);
  }
  return bytes;
}

/// Requires `file` to hold a (possibly complete) prefix of `original` —
/// damage may only ever cost trailing frames, never invent or alter one.
void expect_strict_prefix(const CaptureFile& file,
                          const std::vector<CaptureRecord>& original,
                          const std::string& what, std::size_t pos) {
  ASSERT_LE(file.records.size(), original.size())
      << what << " at byte " << pos << " grew the record stream";
  for (std::size_t i = 0; i < file.records.size(); ++i) {
    ASSERT_EQ(file.records[i], original[i])
        << what << " at byte " << pos << " altered intact frame " << i;
  }
}

TEST(CaptureFuzz, EveryByteBitFlipIsStructurallyContained) {
  const std::string wire = sample_capture();
  ASSERT_LT(wire.size(), 32768u) << "scenario too big for the O(n^2) sweep";
  const CaptureFile original = read_capture(wire);
  ASSERT_TRUE(original.ok()) << original.error.message();

  Rng rng(0xf11b);
  for (std::size_t pos = 0; pos < wire.size(); ++pos) {
    std::string damaged = wire;
    damaged[pos] = static_cast<char>(
        static_cast<unsigned char>(damaged[pos]) ^ (1u << (rng.next() % 8)));
    const CaptureFile file = read_capture(damaged);
    // CRC-32 detects every single-bit error inside its coverage, the sync
    // marker and header magic are checked byte-for-byte, and a damaged
    // length field moves the CRC trailer out from under itself — so a
    // single flip that still reads clean is a format bug by construction.
    ASSERT_FALSE(file.ok()) << "bit flip at byte " << pos
                            << " was silently accepted";
    ASSERT_NE(file.error.kind, DecodeErrorKind::kNone);
    EXPECT_FALSE(to_string(file.error.kind).empty());
    expect_strict_prefix(file, original.records, "bit flip", pos);
    if (file.recovered()) {
      EXPECT_GE(file.intact_bytes, kCaptureHeaderSize);
      EXPECT_EQ(file.intact_bytes + file.quarantined_bytes, damaged.size());
    }
  }
}

TEST(CaptureFuzz, EveryPrefixTruncationRecoversAtFrameBoundary) {
  const std::string wire = sample_capture();
  ASSERT_LT(wire.size(), 32768u) << "scenario too big for the O(n^2) sweep";
  const CaptureFile original = read_capture(wire);
  ASSERT_TRUE(original.ok()) << original.error.message();

  for (std::size_t len = 0; len < wire.size(); ++len) {
    const CaptureFile file = read_capture(wire.substr(0, len));
    expect_strict_prefix(file, original.records, "truncation", len);
    if (len < kCaptureHeaderSize) {
      // No complete header: a structured refusal, nothing recovered.
      ASSERT_FALSE(file.ok()) << "short header accepted at len " << len;
      ASSERT_TRUE(file.error.kind == DecodeErrorKind::kEmptyInput ||
                  file.error.kind == DecodeErrorKind::kTruncated)
          << "len " << len << ": " << file.error.message();
      continue;
    }
    if (file.ok()) {
      // Only a cut exactly on a frame boundary reads clean.
      EXPECT_EQ(file.intact_bytes, len) << "clean read off-boundary";
    } else {
      ASSERT_TRUE(file.recovered()) << "len " << len << ": "
                                    << file.error.message();
      ASSERT_EQ(file.error.kind, DecodeErrorKind::kTruncated)
          << "len " << len << ": " << file.error.message();
      // The quarantined tail is exactly the bytes past the last intact
      // frame — recovery happened on a frame boundary.
      EXPECT_EQ(file.intact_bytes + file.quarantined_bytes, len);
    }
  }
}

TEST(CaptureFuzz, DamagedCapturesReplayStructurally) {
  const std::string wire = sample_capture();
  const std::size_t stride = wire.size() / 12 + 1;

  // Truncations through the full replay engine: each one must either be a
  // structured refusal (no usable spec frame yet) or a faithful replay of
  // the intact prefix — never a crash, never a false divergence.
  for (std::size_t len = 0; len < wire.size(); len += stride) {
    const ReplayResult replay = replay_capture(wire.substr(0, len));
    if (replay.error.ok()) {
      EXPECT_TRUE(replay.faithful())
          << "len " << len << ": " << replay.to_json();
    } else {
      EXPECT_NE(replay.error.kind, DecodeErrorKind::kNone);
    }
  }

  // Bit flips likewise; a flip behind the spec frame quarantines the tail
  // (faithful prefix replay), a flip inside it is a structured refusal.
  Rng rng(0x5eed);
  for (std::size_t pos = 0; pos < wire.size(); pos += stride) {
    std::string damaged = wire;
    damaged[pos] = static_cast<char>(
        static_cast<unsigned char>(damaged[pos]) ^ (1u << (rng.next() % 8)));
    const ReplayResult replay = replay_capture(damaged);
    if (replay.error.ok()) {
      EXPECT_TRUE(replay.faithful())
          << "flip at " << pos << ": " << replay.to_json();
    } else {
      EXPECT_NE(replay.error.kind, DecodeErrorKind::kNone);
    }
  }
}

}  // namespace
}  // namespace icecube
