// Tests for the CVS-style line file (§1.1) and the three-way merge
// baseline, including the IceCube-subsumes-CVS comparison.
#include <gtest/gtest.h>

#include <memory>

#include "baseline/cvs_merge.hpp"
#include "core/reconciler.hpp"
#include "objects/line_file.hpp"
#include "test_helpers.hpp"

namespace icecube {
namespace {

using testing::make_log;

Universe make_file(std::vector<std::string> lines, ObjectId& id) {
  Universe u;
  id = u.add(std::make_unique<LineFile>(std::move(lines)));
  return u;
}

TEST(LineFile, SetLineRespectsBounds) {
  LineFile f({"a", "b"});
  EXPECT_TRUE(f.set_line(1, "B"));
  EXPECT_EQ(f.line(1), "B");
  EXPECT_FALSE(f.set_line(2, "C"));
}

TEST(LineFile, FingerprintJoinsLines) {
  LineFile f({"x", "y"});
  EXPECT_EQ(f.fingerprint(), "x\ny\n");
}

TEST(LineFile, PreconditionPinsObservedContent) {
  ObjectId id;
  Universe u = make_file({"old"}, id);
  const SetLineAction good(id, 0, "old", "new");
  const SetLineAction stale(id, 0, "other", "new");
  EXPECT_TRUE(good.precondition(u));
  EXPECT_FALSE(stale.precondition(u));
}

TEST(LineFileOrder, CvsRule) {
  ObjectId id;
  Universe u = make_file({"a", "b"}, id);
  const auto& f = u.as<LineFile>(id);
  const SetLineAction same1(id, 0, "a", "x");
  const SetLineAction same2(id, 0, "a", "y");
  const SetLineAction other(id, 1, "b", "z");
  // "non-overlapping writes conflict if and only if they occur in the same
  // line": different lines safe, same line left to the dynamic stage.
  EXPECT_EQ(f.order(same1, other, LogRelation::kAcrossLogs),
            Constraint::kSafe);
  EXPECT_EQ(f.order(same1, same2, LogRelation::kAcrossLogs),
            Constraint::kMaybe);
  EXPECT_EQ(f.order(same1, same2, LogRelation::kSameLog),
            Constraint::kUnsafe);
  EXPECT_EQ(f.order(same1, other, LogRelation::kSameLog), Constraint::kSafe);
}

TEST(LineFileReconcile, NonOverlappingEditsMergeCompletely) {
  ObjectId id;
  Universe u = make_file({"l0", "l1", "l2"}, id);
  std::vector<Log> logs;
  logs.push_back(make_log(
      "a", {std::make_shared<SetLineAction>(id, 0, "l0", "A0")}));
  logs.push_back(make_log(
      "b", {std::make_shared<SetLineAction>(id, 2, "l2", "B2")}));
  Reconciler r(u, logs);
  const auto result = r.run();
  ASSERT_TRUE(result.best().complete);
  EXPECT_EQ(result.best().final_state.as<LineFile>(id).fingerprint(),
            "A0\nl1\nB2\n");
}

TEST(LineFileReconcile, SameLineConflictIsSurfacedNotClobbered) {
  ObjectId id;
  Universe u = make_file({"base"}, id);
  std::vector<Log> logs;
  logs.push_back(make_log(
      "a", {std::make_shared<SetLineAction>(id, 0, "base", "from-a")}));
  logs.push_back(make_log(
      "b", {std::make_shared<SetLineAction>(id, 0, "base", "from-b")}));
  ReconcilerOptions opts;
  opts.heuristic = Heuristic::kAll;
  opts.failure_mode = FailureMode::kSkipAction;
  Reconciler r(u, logs, opts);
  const auto result = r.run();
  ASSERT_TRUE(result.found_any());
  // One edit wins, the other is in the skipped (conflict) list — never
  // silently overwritten by a later replay.
  EXPECT_EQ(result.best().schedule.size(), 1u);
  EXPECT_EQ(result.best().skipped.size(), 1u);
  const auto& line = result.best().final_state.as<LineFile>(id).line(0);
  EXPECT_TRUE(line == "from-a" || line == "from-b");
}

TEST(LineFileReconcile, ChainedEditsAcrossSessions) {
  // Session b's edit was made *after seeing* a hypothetical state; in the
  // log model its precondition pins session b's own observation. Here b
  // edits line 1 twice (a chain) while a edits line 0: all merge.
  ObjectId id;
  Universe u = make_file({"x", "y"}, id);
  std::vector<Log> logs;
  logs.push_back(make_log(
      "a", {std::make_shared<SetLineAction>(id, 0, "x", "x2")}));
  logs.push_back(make_log(
      "b", {std::make_shared<SetLineAction>(id, 1, "y", "y2"),
            std::make_shared<SetLineAction>(id, 1, "y2", "y3")}));
  Reconciler r(u, logs);
  const auto result = r.run();
  ASSERT_TRUE(result.best().complete);
  EXPECT_EQ(result.best().final_state.as<LineFile>(id).fingerprint(),
            "x2\ny3\n");
}

// ---------------------------------------------------------------------------
// The diff3 baseline.

TEST(CvsMerge, MergesNonOverlappingEdits) {
  ObjectId id;
  Universe u = make_file({"l0", "l1", "l2"}, id);
  std::vector<Log> logs;
  logs.push_back(make_log(
      "a", {std::make_shared<SetLineAction>(id, 0, "l0", "A0")}));
  logs.push_back(make_log(
      "b", {std::make_shared<SetLineAction>(id, 2, "l2", "B2")}));
  const CvsMergeReport report = cvs_merge(u, logs, id);
  EXPECT_EQ(report.applied, 2u);
  EXPECT_TRUE(report.conflicts.empty());
  EXPECT_EQ(report.final_state.as<LineFile>(id).fingerprint(), "A0\nl1\nB2\n");
}

TEST(CvsMerge, SameLineDivergenceConflicts) {
  ObjectId id;
  Universe u = make_file({"base"}, id);
  std::vector<Log> logs;
  logs.push_back(make_log(
      "a", {std::make_shared<SetLineAction>(id, 0, "base", "from-a")}));
  logs.push_back(make_log(
      "b", {std::make_shared<SetLineAction>(id, 0, "base", "from-b")}));
  const CvsMergeReport report = cvs_merge(u, logs, id);
  EXPECT_EQ(report.conflicts, std::vector<std::size_t>{0});
  // The conflicted line keeps its base content.
  EXPECT_EQ(report.final_state.as<LineFile>(id).line(0), "base");
}

TEST(CvsMerge, ConvergentEditsAreNotConflicts) {
  ObjectId id;
  Universe u = make_file({"base"}, id);
  std::vector<Log> logs;
  logs.push_back(make_log(
      "a", {std::make_shared<SetLineAction>(id, 0, "base", "same")}));
  logs.push_back(make_log(
      "b", {std::make_shared<SetLineAction>(id, 0, "base", "same")}));
  const CvsMergeReport report = cvs_merge(u, logs, id);
  EXPECT_TRUE(report.conflicts.empty());
  EXPECT_EQ(report.final_state.as<LineFile>(id).line(0), "same");
}

TEST(CvsMerge, SessionsLastEditWins) {
  ObjectId id;
  Universe u = make_file({"v0"}, id);
  std::vector<Log> logs;
  logs.push_back(make_log(
      "a", {std::make_shared<SetLineAction>(id, 0, "v0", "v1"),
            std::make_shared<SetLineAction>(id, 0, "v1", "v2")}));
  const CvsMergeReport report = cvs_merge(u, logs, id);
  EXPECT_EQ(report.applied, 1u);
  EXPECT_EQ(report.final_state.as<LineFile>(id).line(0), "v2");
}

TEST(CvsMerge, IceCubeAgreesOnCleanMerges) {
  // On conflict-free inputs the search-based reconciler reproduces exactly
  // the static three-way merge (generality without regression).
  ObjectId id;
  Universe u = make_file({"a", "b", "c", "d"}, id);
  std::vector<Log> logs;
  logs.push_back(make_log(
      "one", {std::make_shared<SetLineAction>(id, 0, "a", "A"),
              std::make_shared<SetLineAction>(id, 2, "c", "C")}));
  logs.push_back(make_log(
      "two", {std::make_shared<SetLineAction>(id, 1, "b", "B"),
              std::make_shared<SetLineAction>(id, 3, "d", "D")}));

  const CvsMergeReport cvs = cvs_merge(u, logs, id);
  Reconciler r(u, logs);
  const auto ice = r.run();
  ASSERT_TRUE(ice.best().complete);
  EXPECT_EQ(ice.best().final_state.as<LineFile>(id).fingerprint(),
            cvs.final_state.as<LineFile>(id).fingerprint());
}

}  // namespace
}  // namespace icecube
