// Tests for log cleaning (§4.4): redundant same-object actions are combined
// away while the replayed final state is preserved.
#include <gtest/gtest.h>

#include <memory>

#include "core/reconciler.hpp"
#include "jigsaw/actions.hpp"
#include "jigsaw/board.hpp"
#include "logclean/cleaner.hpp"
#include "objects/file_system.hpp"
#include "test_helpers.hpp"

namespace icecube {
namespace {

using jigsaw::Board;
using jigsaw::Edge;
using jigsaw::InsertAction;
using jigsaw::JoinAction;
using jigsaw::RemoveAction;
using testing::make_log;

Universe board_universe(ObjectId& id, int rows = 4, int cols = 4) {
  Universe u;
  id = u.add(std::make_unique<Board>(rows, cols));
  return u;
}

std::string replay(const Universe& initial, const Log& log) {
  Universe state = initial;
  for (const auto& a : log) {
    EXPECT_TRUE(a->precondition(state));
    EXPECT_TRUE(a->execute(state));
  }
  return state.fingerprint();
}

TEST(JigsawClean, PapersExampleReducesToSingleJoin) {
  // join(P1,top,P2,bottom), remove(P2), join(P1,top,P2,bottom)
  // → join(P1,top,P2,bottom).   (§4.4, with our piece numbering: joining
  // piece 2 below piece 1 makes no geometric sense on a 4x4 board, so we
  // use the equivalent right/left pair.)
  ObjectId id;
  Universe u = board_universe(id);
  const Log log = make_log(
      "p", {std::make_shared<InsertAction>(id, 1),
            std::make_shared<JoinAction>(id, 1, Edge::kRight, 2, Edge::kLeft),
            std::make_shared<RemoveAction>(id, 2),
            std::make_shared<JoinAction>(id, 1, Edge::kRight, 2,
                                         Edge::kLeft)});
  const CleanReport report = clean_jigsaw_log(u, log);
  EXPECT_EQ(report.removed, 2u);
  EXPECT_EQ(report.cleaned.size(), 2u);
  EXPECT_EQ(replay(u, report.cleaned), replay(u, log));
}

TEST(JigsawClean, KeepsActionsThatOthersDependOn) {
  // P2 is joined, P3 is joined onto P2, then P2 removed: the P2 join cannot
  // be cancelled against the remove because P3's join anchored on it.
  ObjectId id;
  Universe u = board_universe(id);
  const Log log = make_log(
      "p", {std::make_shared<InsertAction>(id, 1),
            std::make_shared<JoinAction>(id, 1, Edge::kRight, 2, Edge::kLeft),
            std::make_shared<JoinAction>(id, 2, Edge::kRight, 3, Edge::kLeft),
            std::make_shared<RemoveAction>(id, 2)});
  const CleanReport report = clean_jigsaw_log(u, log);
  // Nothing can be dropped without changing the final state (P3 placed,
  // P2 absent).
  EXPECT_EQ(report.removed, 0u);
  EXPECT_EQ(replay(u, report.cleaned), replay(u, log));
}

TEST(JigsawClean, CleanLogIsUntouched) {
  ObjectId id;
  Universe u = board_universe(id);
  const Log log = make_log(
      "p", {std::make_shared<InsertAction>(id, 0),
            std::make_shared<JoinAction>(id, 0, Edge::kRight, 1,
                                         Edge::kLeft)});
  const CleanReport report = clean_jigsaw_log(u, log);
  EXPECT_EQ(report.removed, 0u);
  EXPECT_EQ(report.cleaned.size(), 2u);
}

TEST(JigsawClean, InsertRemovePairCancels) {
  ObjectId id;
  Universe u = board_universe(id);
  const Log log = make_log(
      "p", {std::make_shared<InsertAction>(id, 0),
            std::make_shared<InsertAction>(id, 5),
            std::make_shared<RemoveAction>(id, 5)});
  const CleanReport report = clean_jigsaw_log(u, log);
  EXPECT_EQ(report.removed, 2u);
  EXPECT_EQ(report.cleaned.size(), 1u);
  EXPECT_EQ(replay(u, report.cleaned), replay(u, log));
}

TEST(JigsawClean, IteratesToFixedPoint) {
  // Two nested place/remove pairs; both must disappear.
  ObjectId id;
  Universe u = board_universe(id);
  const Log log = make_log(
      "p", {std::make_shared<InsertAction>(id, 0),
            std::make_shared<JoinAction>(id, 0, Edge::kRight, 1, Edge::kLeft),
            std::make_shared<JoinAction>(id, 1, Edge::kRight, 2, Edge::kLeft),
            std::make_shared<RemoveAction>(id, 2),
            std::make_shared<RemoveAction>(id, 1)});
  const CleanReport report = clean_jigsaw_log(u, log);
  EXPECT_EQ(report.removed, 4u);
  EXPECT_EQ(report.cleaned.size(), 1u);
  EXPECT_EQ(replay(u, report.cleaned), replay(u, log));
}

TEST(JigsawClean, CleaningEnablesConflictFreeSemanticReconciliation) {
  // §4.4: an add-then-remove in one log spuriously conflicts with a
  // concurrent placement of the same piece under semantic constraints;
  // cleaning removes the conflict.
  ObjectId id;
  Universe u;
  id = u.add(std::make_unique<Board>(4, 4, Board::OrderCase::kSemantic));

  const Log dirty = make_log(
      "dirty",
      {std::make_shared<InsertAction>(id, 0),
       std::make_shared<JoinAction>(id, 0, Edge::kRight, 1, Edge::kLeft),
       std::make_shared<RemoveAction>(id, 1)});
  const Log other = make_log(
      "other", {std::make_shared<InsertAction>(id, 5),
                std::make_shared<JoinAction>(id, 5, Edge::kLeft, 4,
                                             Edge::kRight)});

  // Dirty logs: remove(1) vs the concurrent join... here the conflicting
  // pair is remove(1)/join(0,1) in one log and nothing concurrent, so use a
  // second log joining piece 1.
  const Log rival = make_log(
      "rival", {std::make_shared<InsertAction>(id, 2),
                std::make_shared<JoinAction>(id, 2, Edge::kLeft, 1,
                                             Edge::kRight)});
  {
    Reconciler r(u, {dirty, rival});
    const auto cuts = find_proper_cutsets(r.relations());
    EXPECT_GT(cuts.cutsets.front().size(), 0u)
        << "expected a static conflict before cleaning";
  }
  const CleanReport cleaned = clean_jigsaw_log(u, dirty);
  EXPECT_EQ(cleaned.removed, 2u);
  {
    Reconciler r(u, {cleaned.cleaned, rival});
    const auto cuts = find_proper_cutsets(r.relations());
    EXPECT_TRUE(cuts.cutsets.front().empty())
        << "cleaning should dissolve the spurious conflict";
  }
  (void)other;
}

// ---------------------------------------------------------------------------
// File-system cleaning.

TEST(FsClean, SupersededWriteIsDropped) {
  Universe u;
  const ObjectId fs = u.add(std::make_unique<FileSystem>());
  const Log log = make_log(
      "p", {std::make_shared<WriteFileAction>(fs, "/f", "v1"),
            std::make_shared<WriteFileAction>(fs, "/f", "v2")});
  const CleanReport report = clean_fs_log(u, log);
  EXPECT_EQ(report.removed, 1u);
  EXPECT_EQ(report.cleaned.size(), 1u);
  EXPECT_EQ(replay(u, report.cleaned), replay(u, log));
}

TEST(FsClean, CreateDeletePairCancels) {
  Universe u;
  const ObjectId fs = u.add(std::make_unique<FileSystem>());
  const Log log = make_log(
      "p", {std::make_shared<MkdirAction>(fs, "/d"),
            std::make_shared<WriteFileAction>(fs, "/keep", "x"),
            std::make_shared<DeleteAction>(fs, "/d")});
  const CleanReport report = clean_fs_log(u, log);
  EXPECT_EQ(report.removed, 2u);
  EXPECT_EQ(report.cleaned.size(), 1u);
  EXPECT_EQ(replay(u, report.cleaned), replay(u, log));
}

TEST(FsClean, DependentActionsBlockDrops) {
  // The mkdir cannot be cancelled against the delete because a surviving
  // write depends on the directory... and the write itself is deleted with
  // the subtree, so actually all three can go. Use a sibling write to pin
  // the mkdir.
  Universe u;
  const ObjectId fs = u.add(std::make_unique<FileSystem>());
  const Log log = make_log(
      "p", {std::make_shared<MkdirAction>(fs, "/d"),
            std::make_shared<WriteFileAction>(fs, "/d/f", "x"),
            std::make_shared<DeleteAction>(fs, "/d/f")});
  const CleanReport report = clean_fs_log(u, log);
  // /d must survive; the write/delete pair inside it may cancel.
  EXPECT_EQ(replay(u, report.cleaned), replay(u, log));
  ASSERT_GE(report.cleaned.size(), 1u);
  EXPECT_EQ(report.cleaned.at(0).tag().op, "mkdir");
}

TEST(FsClean, UnreplayableLogIsReturnedUnchanged) {
  Universe u;
  const ObjectId fs = u.add(std::make_unique<FileSystem>());
  const Log log = make_log(
      "p", {std::make_shared<WriteFileAction>(fs, "/missing/f", "x")});
  const CleanReport report = clean_fs_log(u, log);
  EXPECT_EQ(report.removed, 0u);
  EXPECT_EQ(report.cleaned.size(), 1u);
}

}  // namespace
}  // namespace icecube
