// Tests for the log codec: escaping, round-trips across every substrate,
// replay equivalence, malformed-input handling.
#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "jigsaw/actions.hpp"
#include "jigsaw/scenario.hpp"
#include "objects/calendar.hpp"
#include "objects/counter.hpp"
#include "objects/file_system.hpp"
#include "objects/line_file.hpp"
#include "objects/rw_register.hpp"
#include "objects/sysadmin.hpp"
#include "objects/text.hpp"
#include "serialize/log_codec.hpp"
#include "test_helpers.hpp"
#include "util/crc32.hpp"
#include "workload/generators.hpp"

namespace icecube {
namespace {

using testing::make_log;

/// Round-trips `log` and verifies structural identity (op, targets, params,
/// strings) action by action.
void expect_round_trip(const Log& log) {
  const ActionRegistry registry = ActionRegistry::with_builtins();
  const std::string encoded = encode_log(log);
  const DecodedLog decoded = decode_log(encoded, registry);
  ASSERT_TRUE(decoded.ok()) << decoded.error << "\n" << encoded;
  ASSERT_EQ(decoded.log->size(), log.size());
  EXPECT_EQ(decoded.log->name(), log.name());
  for (std::size_t i = 0; i < log.size(); ++i) {
    EXPECT_EQ(decoded.log->at(i).tag(), log.at(i).tag()) << "action " << i;
    EXPECT_EQ(decoded.log->at(i).targets(), log.at(i).targets())
        << "action " << i;
  }
}

TEST(Escaping, RoundTripsSpecials) {
  const std::vector<std::string> cases{
      "plain", "with space", "pipes|and|percents%", "tab\tnl\n", ""};
  for (const std::string& raw : cases) {
    const auto back = unescape_field(escape_field(raw));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, raw);
  }
}

TEST(Escaping, RejectsTruncatedAndBadHex) {
  EXPECT_FALSE(unescape_field("%").has_value());
  EXPECT_FALSE(unescape_field("%2").has_value());
  EXPECT_FALSE(unescape_field("%zz").has_value());
  EXPECT_TRUE(unescape_field("%20").has_value());
}

TEST(LogCodec, CounterAndRegisterRoundTrip) {
  const ObjectId c{0}, r{1};
  expect_round_trip(make_log(
      "bank", {std::make_shared<IncrementAction>(c, 100),
               std::make_shared<DecrementAction>(c, 30),
               std::make_shared<WriteAction>(r, -7),
               std::make_shared<ReadAction>(r),
               std::make_shared<ReadAction>(r, 42)}));
}

TEST(LogCodec, FileSystemRoundTrip) {
  const ObjectId fs{0};
  expect_round_trip(make_log(
      "files",
      {std::make_shared<MkdirAction>(fs, "/dir with space"),
       std::make_shared<WriteFileAction>(fs, "/dir with space/f",
                                         "content | with %pipes%"),
       std::make_shared<DeleteAction>(fs, "/dir with space")}));
}

TEST(LogCodec, CalendarRoundTrip) {
  expect_round_trip(make_log(
      "meetings",
      {std::make_shared<RequestAppointmentAction>(ObjectId(0), ObjectId(2), 9,
                                                  11, "weekly sync"),
       std::make_shared<CancelAppointmentAction>(ObjectId(1), 10)}));
}

TEST(LogCodec, SysAdminRoundTrip) {
  SysAdminExample ex = make_sysadmin_example();
  for (const Log& log : ex.logs) expect_round_trip(log);
}

TEST(LogCodec, JigsawScenarioRoundTrip) {
  const jigsaw::Board board(4, 4);
  expect_round_trip(jigsaw::scenario_u1(board, ObjectId(0), 7));
  expect_round_trip(jigsaw::scenario_u3(board, ObjectId(0), 10, 3));
}

TEST(LogCodec, TextAndLineFileRoundTrip) {
  expect_round_trip(make_log(
      "edits",
      {std::make_shared<InsertTextAction>(ObjectId(0), 1, 5, "hello world"),
       std::make_shared<DeleteTextAction>(ObjectId(0), 2, 0, 3),
       std::make_shared<SetLineAction>(ObjectId(1), 7, "old line",
                                       "new | line")}));
}

TEST(LogCodec, DecodedLogReplaysIdentically) {
  // The decoded log must drive the universe to the same state.
  workload::FsSpec spec;
  spec.seed = 3;
  const auto g = workload::fs_workload(spec);
  const ActionRegistry registry = ActionRegistry::with_builtins();
  for (const Log& log : g.logs) {
    const DecodedLog decoded = decode_log(encode_log(log), registry);
    ASSERT_TRUE(decoded.ok()) << decoded.error;
    Universe original = g.initial;
    Universe reloaded = g.initial;
    for (const auto& a : log) {
      ASSERT_TRUE(a->precondition(original) && a->execute(original));
    }
    for (const auto& a : *decoded.log) {
      ASSERT_TRUE(a->precondition(reloaded) && a->execute(reloaded));
    }
    EXPECT_EQ(original.fingerprint(), reloaded.fingerprint());
  }
}

TEST(LogCodec, EmptyLogRoundTrips) {
  expect_round_trip(Log("empty but named"));
}

TEST(LogCodec, RejectsBadHeader) {
  const ActionRegistry registry = ActionRegistry::with_builtins();
  EXPECT_EQ(decode_log("", registry).error.kind,
            DecodeErrorKind::kEmptyInput);
  EXPECT_EQ(decode_log("not-a-log 1 x\n", registry).error.kind,
            DecodeErrorKind::kBadHeader);
  EXPECT_EQ(decode_log("icecube-log 99 x\n", registry).error.kind,
            DecodeErrorKind::kUnsupportedVersion);
}

TEST(LogCodec, RejectsUnknownOp) {
  const ActionRegistry registry = ActionRegistry::with_builtins();
  const DecodedLog decoded =
      decode_log("icecube-log 1 x\nfrobnicate | 0 | 1 |\n", registry);
  EXPECT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error.kind, DecodeErrorKind::kUnknownOp);
  EXPECT_EQ(decoded.error.line, 2u);
  EXPECT_NE(decoded.error.message().find("frobnicate"), std::string::npos);
}

TEST(LogCodec, RejectsMalformedLines) {
  const ActionRegistry registry = ActionRegistry::with_builtins();
  // Too few fields.
  EXPECT_EQ(decode_log("icecube-log 1 x\nincrement | 0 | 1\n", registry)
                .error.kind,
            DecodeErrorKind::kBadSyntax);
  // Bad number.
  EXPECT_EQ(
      decode_log("icecube-log 1 x\nincrement | zero | 1 |\n", registry)
          .error.kind,
      DecodeErrorKind::kBadNumber);
  // Missing params for the op.
  EXPECT_EQ(decode_log("icecube-log 1 x\nincrement | 0 | |\n", registry)
                .error.kind,
            DecodeErrorKind::kBadOperands);
}

TEST(LogCodec, StrictNumbersRejectTrailingGarbageAndSigns) {
  // std::stoul-style prefix parsing would silently accept these; the
  // hardened decoder must not.
  const ActionRegistry registry = ActionRegistry::with_builtins();
  EXPECT_EQ(decode_log("icecube-log 1 x\nincrement | 0x | 1 |\n", registry)
                .error.kind,
            DecodeErrorKind::kBadNumber);
  EXPECT_EQ(decode_log("icecube-log 1 x\nincrement | -1 | 1 |\n", registry)
                .error.kind,
            DecodeErrorKind::kBadNumber);
  EXPECT_EQ(decode_log("icecube-log 1 x\nincrement | 0 | 1z |\n", registry)
                .error.kind,
            DecodeErrorKind::kBadNumber);
}

// ---------------------------------------------------------------------------
// CRC framing (format v2).

TEST(LogCodecCrc, EncodeCarriesVerifiableTrailer) {
  const Log log = make_log(
      "bank", {std::make_shared<IncrementAction>(ObjectId(0), 100)});
  const std::string encoded = encode_log(log);
  ASSERT_TRUE(encoded.starts_with("icecube-log 2 "));
  const auto trailer = encoded.rfind("#crc32 ");
  ASSERT_NE(trailer, std::string::npos);
  EXPECT_EQ(Crc32::of(std::string_view(encoded).substr(0, trailer)),
            std::stoul(encoded.substr(trailer + 7, 8), nullptr, 16));
}

TEST(LogCodecCrc, DetectsSingleFlippedByteAsCorruption) {
  const Log log = make_log(
      "bank", {std::make_shared<IncrementAction>(ObjectId(0), 100),
               std::make_shared<DecrementAction>(ObjectId(0), 30)});
  const ActionRegistry registry = ActionRegistry::with_builtins();
  const std::string encoded = encode_log(log);
  // Flip every byte above the trailer in turn: all must be caught, and as
  // transport faults, never as content errors.
  const std::size_t trailer = encoded.rfind("#crc32 ");
  for (std::size_t i = 0; i < trailer; ++i) {
    std::string damaged = encoded;
    damaged[i] = static_cast<char>(damaged[i] ^ 0x20);
    const DecodedLog decoded = decode_log(damaged, registry);
    ASSERT_FALSE(decoded.ok()) << "byte " << i;
    ASSERT_TRUE(decoded.error.transient() ||
                decoded.error.kind == DecodeErrorKind::kBadHeader ||
                decoded.error.kind == DecodeErrorKind::kUnsupportedVersion)
        << "byte " << i << ": " << decoded.error;
  }
}

TEST(LogCodecCrc, DetectsTruncation) {
  const Log log = make_log(
      "bank", {std::make_shared<IncrementAction>(ObjectId(0), 100),
               std::make_shared<DecrementAction>(ObjectId(0), 30)});
  const ActionRegistry registry = ActionRegistry::with_builtins();
  const std::string encoded = encode_log(log);
  // Cut at every length: never a crash, never a *wrong* decode. A cut that
  // only loses the final newline leaves the trailer verifiable — it may
  // decode, but only to exactly the original log; any other cut must fail
  // as transport damage (or an unusable frame), never as a content error.
  for (std::size_t len = 0; len < encoded.size(); ++len) {
    const DecodedLog decoded = decode_log(encoded.substr(0, len), registry);
    if (decoded.ok()) {
      EXPECT_EQ(encode_log(*decoded.log), encoded) << "length " << len;
      continue;
    }
    ASSERT_TRUE(decoded.error.transient() ||
                decoded.error.kind == DecodeErrorKind::kBadHeader)
        << "length " << len << ": " << decoded.error;
  }
}

TEST(LogCodecCrc, LegacyV1StillDecodesWithoutTrailer) {
  const ActionRegistry registry = ActionRegistry::with_builtins();
  const DecodedLog decoded =
      decode_log("icecube-log 1 old\nincrement | 0 | 5 |\n", registry);
  ASSERT_TRUE(decoded.ok()) << decoded.error;
  EXPECT_EQ(decoded.log->size(), 1u);
}

TEST(LogCodecCrc, V2WithoutTrailerIsTruncated) {
  const ActionRegistry registry = ActionRegistry::with_builtins();
  const DecodedLog decoded =
      decode_log("icecube-log 2 x\nincrement | 0 | 5 |\n", registry);
  EXPECT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error.kind, DecodeErrorKind::kTruncated);
}

// ---------------------------------------------------------------------------
// Malformed-input coverage for every builtin factory: wrong arity (missing
// targets), missing/bad int params, missing string params. Each case must
// decode to a structured kBadOperands (never crash, never nullptr-deref).

struct FactoryCase {
  const char* name;
  const char* line;  // malformed action line (4 '|' groups)
};

class BuiltinFactoryMalformed : public ::testing::TestWithParam<FactoryCase> {
};

TEST_P(BuiltinFactoryMalformed, RejectsStructurally) {
  const ActionRegistry registry = ActionRegistry::with_builtins();
  const std::string text =
      std::string("icecube-log 1 x\n") + GetParam().line + "\n";
  const DecodedLog decoded = decode_log(text, registry);
  ASSERT_FALSE(decoded.ok()) << GetParam().line;
  EXPECT_EQ(decoded.error.kind, DecodeErrorKind::kBadOperands)
      << GetParam().line << " -> " << decoded.error;
  EXPECT_EQ(decoded.error.line, 2u);
}

INSTANTIATE_TEST_SUITE_P(
    AllBuiltins, BuiltinFactoryMalformed,
    ::testing::Values(
        // Counter: empty targets / missing amount.
        FactoryCase{"increment_no_target", "increment | | 1 |"},
        FactoryCase{"increment_no_amount", "increment | 0 | |"},
        FactoryCase{"decrement_no_target", "decrement | | 1 |"},
        FactoryCase{"decrement_no_amount", "decrement | 0 | |"},
        // Register.
        FactoryCase{"write_no_target", "write | | 1 |"},
        FactoryCase{"write_no_value", "write | 0 | |"},
        FactoryCase{"read_no_target", "read | | |"},
        // File system: missing path / content.
        FactoryCase{"mkdir_no_target", "mkdir | | | /d"},
        FactoryCase{"mkdir_no_path", "mkdir | 0 | |"},
        FactoryCase{"fswrite_no_content", "fswrite | 0 | | /f"},
        FactoryCase{"fsdelete_no_path", "fsdelete | 0 | |"},
        // Calendar: 'request' needs two targets, two ints, one string.
        FactoryCase{"request_one_target", "request | 0 | 9 11 | label"},
        FactoryCase{"request_no_hours", "request | 0 1 | | label"},
        FactoryCase{"request_no_label", "request | 0 1 | 9 11 |"},
        FactoryCase{"cancel_no_hour", "cancel | 0 | |"},
        // Sys-admin.
        FactoryCase{"upgrade_one_param", "upgrade | 0 | 1 |"},
        FactoryCase{"buy_one_target", "buy | 0 | 1 2 |"},
        FactoryCase{"buy_no_params", "buy | 0 1 | |"},
        FactoryCase{"install_one_param", "install | 0 | 1 |"},
        FactoryCase{"fund_no_amount", "fund | 0 | |"},
        // Jigsaw.
        FactoryCase{"insert_no_piece", "insert | 0 | |"},
        FactoryCase{"insert_strict_no_piece", "insert! | 0 | |"},
        FactoryCase{"join_three_params", "join | 0 | 1 2 3 |"},
        FactoryCase{"remove_no_piece", "remove | 0 | |"},
        // OT text.
        FactoryCase{"tins_no_text", "tins | 0 | 1 5 |"},
        FactoryCase{"tins_one_param", "tins | 0 | 1 | hi"},
        FactoryCase{"tdel_two_params", "tdel | 0 | 1 5 |"},
        // Line file: needs a position and two strings.
        FactoryCase{"setline_one_string", "setline | 0 | 7 | old"},
        FactoryCase{"setline_no_pos", "setline | 0 | | old new"}),
    [](const ::testing::TestParamInfo<FactoryCase>& info) {
      return info.param.name;
    });

TEST(LogCodec, CustomOpsCanBeRegistered) {
  ActionRegistry registry;  // empty: even built-ins are unknown
  EXPECT_FALSE(registry.knows("increment"));
  registry.register_op("increment",
                       [](const std::vector<ObjectId>& t, const Tag& tag) {
                         return std::make_shared<IncrementAction>(
                             t.at(0), tag.param(0));
                       });
  const DecodedLog decoded =
      decode_log("icecube-log 1 x\nincrement | 0 | 5 |\n", registry);
  ASSERT_TRUE(decoded.ok()) << decoded.error;
  EXPECT_EQ(decoded.log->at(0).tag(), Tag("increment", {5}));
}

TEST(LogCodec, BlankLinesAreIgnored) {
  const ActionRegistry registry = ActionRegistry::with_builtins();
  const DecodedLog decoded = decode_log(
      "icecube-log 1 x\n\nincrement | 0 | 5 |\n\n", registry);
  ASSERT_TRUE(decoded.ok()) << decoded.error;
  EXPECT_EQ(decoded.log->size(), 1u);
}

}  // namespace
}  // namespace icecube
