// Tests for the log codec: escaping, round-trips across every substrate,
// replay equivalence, malformed-input handling.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "jigsaw/actions.hpp"
#include "jigsaw/scenario.hpp"
#include "objects/calendar.hpp"
#include "objects/counter.hpp"
#include "objects/file_system.hpp"
#include "objects/line_file.hpp"
#include "objects/rw_register.hpp"
#include "objects/sysadmin.hpp"
#include "objects/text.hpp"
#include "serialize/log_codec.hpp"
#include "test_helpers.hpp"
#include "workload/generators.hpp"

namespace icecube {
namespace {

using testing::make_log;

/// Round-trips `log` and verifies structural identity (op, targets, params,
/// strings) action by action.
void expect_round_trip(const Log& log) {
  const ActionRegistry registry = ActionRegistry::with_builtins();
  const std::string encoded = encode_log(log);
  const DecodedLog decoded = decode_log(encoded, registry);
  ASSERT_TRUE(decoded.ok()) << decoded.error << "\n" << encoded;
  ASSERT_EQ(decoded.log->size(), log.size());
  EXPECT_EQ(decoded.log->name(), log.name());
  for (std::size_t i = 0; i < log.size(); ++i) {
    EXPECT_EQ(decoded.log->at(i).tag(), log.at(i).tag()) << "action " << i;
    EXPECT_EQ(decoded.log->at(i).targets(), log.at(i).targets())
        << "action " << i;
  }
}

TEST(Escaping, RoundTripsSpecials) {
  const std::vector<std::string> cases{
      "plain", "with space", "pipes|and|percents%", "tab\tnl\n", ""};
  for (const std::string& raw : cases) {
    const auto back = unescape_field(escape_field(raw));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, raw);
  }
}

TEST(Escaping, RejectsTruncatedAndBadHex) {
  EXPECT_FALSE(unescape_field("%").has_value());
  EXPECT_FALSE(unescape_field("%2").has_value());
  EXPECT_FALSE(unescape_field("%zz").has_value());
  EXPECT_TRUE(unescape_field("%20").has_value());
}

TEST(LogCodec, CounterAndRegisterRoundTrip) {
  const ObjectId c{0}, r{1};
  expect_round_trip(make_log(
      "bank", {std::make_shared<IncrementAction>(c, 100),
               std::make_shared<DecrementAction>(c, 30),
               std::make_shared<WriteAction>(r, -7),
               std::make_shared<ReadAction>(r),
               std::make_shared<ReadAction>(r, 42)}));
}

TEST(LogCodec, FileSystemRoundTrip) {
  const ObjectId fs{0};
  expect_round_trip(make_log(
      "files",
      {std::make_shared<MkdirAction>(fs, "/dir with space"),
       std::make_shared<WriteFileAction>(fs, "/dir with space/f",
                                         "content | with %pipes%"),
       std::make_shared<DeleteAction>(fs, "/dir with space")}));
}

TEST(LogCodec, CalendarRoundTrip) {
  expect_round_trip(make_log(
      "meetings",
      {std::make_shared<RequestAppointmentAction>(ObjectId(0), ObjectId(2), 9,
                                                  11, "weekly sync"),
       std::make_shared<CancelAppointmentAction>(ObjectId(1), 10)}));
}

TEST(LogCodec, SysAdminRoundTrip) {
  SysAdminExample ex = make_sysadmin_example();
  for (const Log& log : ex.logs) expect_round_trip(log);
}

TEST(LogCodec, JigsawScenarioRoundTrip) {
  const jigsaw::Board board(4, 4);
  expect_round_trip(jigsaw::scenario_u1(board, ObjectId(0), 7));
  expect_round_trip(jigsaw::scenario_u3(board, ObjectId(0), 10, 3));
}

TEST(LogCodec, TextAndLineFileRoundTrip) {
  expect_round_trip(make_log(
      "edits",
      {std::make_shared<InsertTextAction>(ObjectId(0), 1, 5, "hello world"),
       std::make_shared<DeleteTextAction>(ObjectId(0), 2, 0, 3),
       std::make_shared<SetLineAction>(ObjectId(1), 7, "old line",
                                       "new | line")}));
}

TEST(LogCodec, DecodedLogReplaysIdentically) {
  // The decoded log must drive the universe to the same state.
  workload::FsSpec spec;
  spec.seed = 3;
  const auto g = workload::fs_workload(spec);
  const ActionRegistry registry = ActionRegistry::with_builtins();
  for (const Log& log : g.logs) {
    const DecodedLog decoded = decode_log(encode_log(log), registry);
    ASSERT_TRUE(decoded.ok()) << decoded.error;
    Universe original = g.initial;
    Universe reloaded = g.initial;
    for (const auto& a : log) {
      ASSERT_TRUE(a->precondition(original) && a->execute(original));
    }
    for (const auto& a : *decoded.log) {
      ASSERT_TRUE(a->precondition(reloaded) && a->execute(reloaded));
    }
    EXPECT_EQ(original.fingerprint(), reloaded.fingerprint());
  }
}

TEST(LogCodec, EmptyLogRoundTrips) {
  expect_round_trip(Log("empty but named"));
}

TEST(LogCodec, RejectsBadHeader) {
  const ActionRegistry registry = ActionRegistry::with_builtins();
  EXPECT_FALSE(decode_log("", registry).ok());
  EXPECT_FALSE(decode_log("not-a-log 1 x\n", registry).ok());
  EXPECT_FALSE(decode_log("icecube-log 99 x\n", registry).ok());
}

TEST(LogCodec, RejectsUnknownOp) {
  const ActionRegistry registry = ActionRegistry::with_builtins();
  const DecodedLog decoded =
      decode_log("icecube-log 1 x\nfrobnicate | 0 | 1 |\n", registry);
  EXPECT_FALSE(decoded.ok());
  EXPECT_NE(decoded.error.find("frobnicate"), std::string::npos);
}

TEST(LogCodec, RejectsMalformedLines) {
  const ActionRegistry registry = ActionRegistry::with_builtins();
  // Too few fields.
  EXPECT_FALSE(decode_log("icecube-log 1 x\nincrement | 0 | 1\n", registry)
                   .ok());
  // Bad number.
  EXPECT_FALSE(
      decode_log("icecube-log 1 x\nincrement | zero | 1 |\n", registry).ok());
  // Missing params for the op.
  EXPECT_FALSE(
      decode_log("icecube-log 1 x\nincrement | 0 | |\n", registry).ok());
}

TEST(LogCodec, CustomOpsCanBeRegistered) {
  ActionRegistry registry;  // empty: even built-ins are unknown
  EXPECT_FALSE(registry.knows("increment"));
  registry.register_op("increment",
                       [](const std::vector<ObjectId>& t, const Tag& tag) {
                         return std::make_shared<IncrementAction>(
                             t.at(0), tag.param(0));
                       });
  const DecodedLog decoded =
      decode_log("icecube-log 1 x\nincrement | 0 | 5 |\n", registry);
  ASSERT_TRUE(decoded.ok()) << decoded.error;
  EXPECT_EQ(decoded.log->at(0).tag(), Tag("increment", {5}));
}

TEST(LogCodec, BlankLinesAreIgnored) {
  const ActionRegistry registry = ActionRegistry::with_builtins();
  const DecodedLog decoded = decode_log(
      "icecube-log 1 x\n\nincrement | 0 | 5 |\n\n", registry);
  ASSERT_TRUE(decoded.ok()) << decoded.error;
  EXPECT_EQ(decoded.log->size(), 1u);
}

}  // namespace
}  // namespace icecube
