// Tests for universe (replica state) serialization: round-trips for every
// substrate, fingerprint equivalence, error handling, and the full
// save/restore-a-site workflow.
#include <gtest/gtest.h>

#include <memory>

#include "jigsaw/board.hpp"
#include "objects/calendar.hpp"
#include "objects/counter.hpp"
#include "objects/file_system.hpp"
#include "objects/line_file.hpp"
#include "objects/rw_register.hpp"
#include "objects/sysadmin.hpp"
#include "objects/text.hpp"
#include "replica/site.hpp"
#include "replica/sync.hpp"
#include "serialize/log_codec.hpp"
#include "serialize/universe_codec.hpp"

namespace icecube {
namespace {

void expect_round_trip(const Universe& universe) {
  const ObjectRegistry registry = ObjectRegistry::with_builtins();
  const auto encoded = encode_universe(universe, registry);
  ASSERT_TRUE(encoded.has_value());
  const DecodedUniverse decoded = decode_universe(*encoded, registry);
  ASSERT_TRUE(decoded.ok()) << decoded.error << "\n" << *encoded;
  EXPECT_EQ(decoded.universe->fingerprint(), universe.fingerprint())
      << *encoded;
}

TEST(UniverseCodec, CounterAndRegister) {
  Universe u;
  (void)u.add(std::make_unique<Counter>(123));
  (void)u.add(std::make_unique<RwRegister>(-45));
  expect_round_trip(u);
}

TEST(UniverseCodec, FileSystemTree) {
  Universe u;
  auto fs = std::make_unique<FileSystem>();
  ASSERT_TRUE(fs->mkdir("/projects"));
  ASSERT_TRUE(fs->mkdir("/projects/ice cube"));
  ASSERT_TRUE(fs->write("/projects/ice cube/notes", "line one | two"));
  ASSERT_TRUE(fs->write("/empty", ""));
  (void)u.add(std::move(fs));
  expect_round_trip(u);
}

TEST(UniverseCodec, CalendarWithBookings) {
  Universe u;
  auto cal = std::make_unique<Calendar>("Anne Marie");
  cal->book(9, "standup meeting");
  cal->book(14, "1:1");
  (void)u.add(std::move(cal));
  expect_round_trip(u);
}

TEST(UniverseCodec, SysAdminState) {
  Universe u;
  auto os = std::make_unique<OsSystem>(5);
  os->buy(1);
  os->buy(2);
  os->install_driver(2, 5);
  (void)u.add(std::move(os));
  (void)u.add(std::make_unique<SysBudget>(1300));
  expect_round_trip(u);
}

TEST(UniverseCodec, JigsawBoardWithStrayPieces) {
  Universe u;
  auto board =
      std::make_unique<jigsaw::Board>(4, 4, jigsaw::Board::OrderCase::kAdjacency);
  board->place(0, board->home(0));
  board->place(7, jigsaw::Cell{-1, 2});  // off-frame placement survives
  (void)u.add(std::move(board));
  expect_round_trip(u);

  // Order case survives too (not part of the fingerprint).
  const ObjectRegistry registry = ObjectRegistry::with_builtins();
  const auto encoded = encode_universe(u, registry);
  const auto decoded = decode_universe(*encoded, registry);
  EXPECT_EQ(decoded.universe->as<jigsaw::Board>(ObjectId(0)).order_case(),
            jigsaw::Board::OrderCase::kAdjacency);
}

TEST(UniverseCodec, TextBufferWithHistory) {
  Universe u;
  auto buf = std::make_unique<TextBuffer>("hello world");
  ASSERT_TRUE(buf->apply(TextEdit::insert(1, 5, ", there")));
  ASSERT_TRUE(buf->apply(TextEdit::remove(2, 0, 2)));
  (void)u.add(std::move(buf));
  expect_round_trip(u);

  // The history must survive so later foreign edits still transform.
  const ObjectRegistry registry = ObjectRegistry::with_builtins();
  const auto decoded =
      decode_universe(*encode_universe(u, registry), registry);
  EXPECT_EQ(decoded.universe->as<TextBuffer>(ObjectId(0)).history().size(),
            2u);
}

TEST(UniverseCodec, LineFileIncludingEmptyLines) {
  Universe u;
  (void)u.add(std::make_unique<LineFile>(
      std::vector<std::string>{"first", "", "third | %"}));
  expect_round_trip(u);
}

TEST(UniverseCodec, MixedUniverse) {
  Universe u;
  (void)u.add(std::make_unique<Counter>(7));
  auto fs = std::make_unique<FileSystem>();
  ASSERT_TRUE(fs->mkdir("/x"));
  (void)u.add(std::move(fs));
  (void)u.add(std::make_unique<Calendar>("C"));
  (void)u.add(std::make_unique<jigsaw::Board>(2, 2));
  expect_round_trip(u);
}

TEST(UniverseCodec, EmptyUniverse) {
  expect_round_trip(Universe{});
}

TEST(UniverseCodec, UnknownObjectTypeFailsEncoding) {
  class Exotic final : public SharedObject {
   public:
    std::unique_ptr<SharedObject> clone() const override {
      return std::make_unique<Exotic>(*this);
    }
    Constraint order(const Action&, const Action&,
                     LogRelation) const override {
      return Constraint::kMaybe;
    }
    std::string describe() const override { return "exotic"; }
  };
  Universe u;
  (void)u.add(std::make_unique<Exotic>());
  const ObjectRegistry registry = ObjectRegistry::with_builtins();
  EXPECT_FALSE(encode_universe(u, registry).has_value());
}

TEST(UniverseCodec, RejectsCorruptInput) {
  const ObjectRegistry registry = ObjectRegistry::with_builtins();
  EXPECT_FALSE(decode_universe("", registry).ok());
  EXPECT_FALSE(decode_universe("wrong-header 1\n", registry).ok());
  EXPECT_FALSE(
      decode_universe("icecube-universe 1\nmystery 42\n", registry).ok());
  EXPECT_FALSE(
      decode_universe("icecube-universe 1\ncounter not-a-number\n", registry)
          .ok());
  EXPECT_FALSE(
      decode_universe("icecube-universe 1\nfs d\n", registry).ok());
}

TEST(UniverseCodec, SiteSurvivesRestart) {
  // The full persistence workflow: a site saves its committed state and
  // pending log, "restarts", and the reconciliation proceeds as if it had
  // never stopped.
  Universe initial;
  (void)initial.add(std::make_unique<Counter>(100));
  const ObjectId c{0};

  Site alice("alice", initial), bob("bob", initial);
  ASSERT_TRUE(alice.perform(std::make_shared<IncrementAction>(c, 50)));
  ASSERT_TRUE(bob.perform(std::make_shared<DecrementAction>(c, 30)));

  // Save alice.
  const ObjectRegistry objects = ObjectRegistry::with_builtins();
  const ActionRegistry actions = ActionRegistry::with_builtins();
  const std::string saved_state = *encode_universe(alice.committed(), objects);
  const std::string saved_log = encode_log(alice.log());

  // Restart alice from disk.
  const auto restored_state = decode_universe(saved_state, objects);
  ASSERT_TRUE(restored_state.ok());
  Site alice2("alice", *restored_state.universe);
  const auto restored_log = decode_log(saved_log, actions);
  ASSERT_TRUE(restored_log.ok());
  for (const auto& action : *restored_log.log) {
    ASSERT_TRUE(alice2.perform(action));
  }

  const SyncResult result = synchronise({&alice2, &bob});
  ASSERT_TRUE(result.adopted) << result.error;
  EXPECT_EQ(alice2.tentative().as<Counter>(c).value(), 120);
  EXPECT_TRUE(converged({&alice2, &bob}));
}

}  // namespace
}  // namespace icecube
