// Tests for the wire-capture subsystem: frame format round-trips, the
// durable writer under every durability policy, torn-write recovery and
// resume-append, spec codec stability, bit-exact replay across seeds,
// divergence witnesses, audit-diff, and the injected capture-write faults.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "capture/audit_diff.hpp"
#include "capture/capture_sink.hpp"
#include "capture/chaos_spec_codec.hpp"
#include "capture/replay_engine.hpp"
#include "capture/wire_log_format.hpp"
#include "capture/wire_log_reader.hpp"
#include "capture/wire_log_writer.hpp"
#include "simnet/chaos.hpp"

namespace icecube {
namespace {

class CaptureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("icecube-capture-test-" + std::to_string(::getpid()) + "-" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  std::string slurp(const std::string& file_path) const {
    std::string bytes;
    EXPECT_TRUE(read_file_bytes(file_path, bytes)) << file_path;
    return bytes;
  }

  void spill(const std::string& file_path, const std::string& bytes) const {
    std::ofstream out(file_path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  std::filesystem::path dir_;
};

std::vector<CaptureRecord> sample_records() {
  return {
      {CaptureRecordKind::kTrace, 0, "t=0 boot"},
      {CaptureRecordKind::kAction, 3, "s0 0 increment balance by 5"},
      {CaptureRecordKind::kGossipFrame, 7,
       std::string("s0>s1\ngossip 2\x00 binary\xff payload", 31)},
      {CaptureRecordKind::kViolation, 9, "t=9 fingerprint mismatch"},
      {CaptureRecordKind::kSummary, 12, "crc deadbeef\nsteps 4\n"},
  };
}

std::string encode_capture(const std::vector<CaptureRecord>& records) {
  std::string bytes = encode_capture_header();
  for (const CaptureRecord& record : records) {
    append_capture_frame(bytes, record);
  }
  return bytes;
}

/// A small scenario that converges in well under a second — the unit the
/// replay sweeps below re-run a few hundred times.
ChaosSpec small_spec(std::uint64_t seed, bool commitment) {
  ChaosSpec spec;
  spec.seed = seed;
  spec.sites = 3;
  spec.actions_per_site = 2;
  spec.fault_horizon = 60;
  spec.keep_trace = false;
  spec.commitment = commitment;
  spec.faults.lose = 0.02;
  spec.faults.delay_max = 2;
  spec.faults.duplicate = 0.02;
  return spec;
}

// --- format ---------------------------------------------------------------

TEST_F(CaptureTest, HeaderRoundTrips) {
  const std::string header = encode_capture_header();
  ASSERT_EQ(header.size(), kCaptureHeaderSize);
  int version = 0;
  EXPECT_TRUE(decode_capture_header(header, version).ok());
  EXPECT_EQ(version, kCaptureVersion);
}

TEST_F(CaptureTest, HeaderRejectsDamage) {
  int version = 0;
  EXPECT_EQ(decode_capture_header("", version).kind,
            DecodeErrorKind::kEmptyInput);
  EXPECT_EQ(decode_capture_header("\x89ICE", version).kind,
            DecodeErrorKind::kTruncated);

  std::string bad_magic = encode_capture_header();
  bad_magic[0] = 'P';
  EXPECT_EQ(decode_capture_header(bad_magic, version).kind,
            DecodeErrorKind::kBadHeader);

  std::string bad_crc = encode_capture_header();
  bad_crc[9] ^= 0x01;  // damage the version field; header CRC must notice
  EXPECT_EQ(decode_capture_header(bad_crc, version).kind,
            DecodeErrorKind::kCorrupted);

  // A plausible future version with a correct CRC is refused, not guessed.
  std::string future{kCaptureMagic};
  capture_detail::put_u16(future, kCaptureVersion + 1);
  capture_detail::put_u16(future, 0);
  capture_detail::put_u32(future, Crc32::of(future));
  EXPECT_EQ(decode_capture_header(future, version).kind,
            DecodeErrorKind::kUnsupportedVersion);
}

TEST_F(CaptureTest, FrameRoundTripsBinaryPayloads) {
  for (const CaptureRecord& record : sample_records()) {
    const std::string wire = encode_capture_frame(record);
    ASSERT_EQ(wire.size(), kCaptureFrameOverhead + record.payload.size());
    const CaptureFrameDecode decoded = decode_capture_frame(wire, 0, 1);
    ASSERT_TRUE(decoded.ok()) << decoded.error.message();
    EXPECT_EQ(decoded.record, record);
    EXPECT_EQ(decoded.consumed, wire.size());
  }
}

TEST_F(CaptureTest, FrameDecodeClassifiesDamage) {
  const std::string wire =
      encode_capture_frame({CaptureRecordKind::kTrace, 5, "payload"});

  EXPECT_EQ(decode_capture_frame(wire, wire.size(), 2).error.kind,
            DecodeErrorKind::kEmptyInput);  // exactly at EOF: clean end
  EXPECT_EQ(decode_capture_frame(wire.substr(0, 10), 0, 1).error.kind,
            DecodeErrorKind::kTruncated);
  EXPECT_EQ(decode_capture_frame(wire.substr(0, wire.size() - 6), 0, 1)
                .error.kind,
            DecodeErrorKind::kTruncated);

  std::string bad_sync = wire;
  bad_sync[1] ^= 0x10;
  EXPECT_EQ(decode_capture_frame(bad_sync, 0, 1).error.kind,
            DecodeErrorKind::kCorrupted);

  std::string bad_body = wire;
  bad_body[18] ^= 0x10;  // payload byte: CRC must notice
  EXPECT_EQ(decode_capture_frame(bad_body, 0, 1).error.kind,
            DecodeErrorKind::kCorrupted);

  // A huge length field must be refused before any allocation happens.
  std::string bad_len = wire;
  bad_len[16] = '\x7f';
  EXPECT_EQ(decode_capture_frame(bad_len, 0, 1).error.kind,
            DecodeErrorKind::kCorrupted);

  // Unknown kind with a *valid* CRC: a future record type, not damage.
  const std::string unknown = encode_capture_frame(
      {static_cast<CaptureRecordKind>(99), 5, "payload"});
  EXPECT_EQ(decode_capture_frame(unknown, 0, 1).error.kind,
            DecodeErrorKind::kUnknownOp);
}

// --- reader recovery ------------------------------------------------------

TEST_F(CaptureTest, ReaderReturnsCleanCapture) {
  const std::vector<CaptureRecord> records = sample_records();
  const CaptureFile file = read_capture(encode_capture(records));
  ASSERT_TRUE(file.ok()) << file.error.message();
  EXPECT_EQ(file.version, kCaptureVersion);
  EXPECT_EQ(file.records, records);
  EXPECT_EQ(file.quarantined_bytes, 0u);
}

TEST_F(CaptureTest, ReaderQuarantinesTornTail) {
  const std::vector<CaptureRecord> records = sample_records();
  const std::string bytes = encode_capture(records);
  // Cut mid-way through the final frame: the first four frames survive.
  const std::string torn = bytes.substr(0, bytes.size() - 10);
  const CaptureFile file = read_capture(torn);
  EXPECT_FALSE(file.ok());
  ASSERT_TRUE(file.recovered());
  EXPECT_EQ(file.error.kind, DecodeErrorKind::kTruncated);
  ASSERT_EQ(file.records.size(), records.size() - 1);
  for (std::size_t i = 0; i + 1 < records.size(); ++i) {
    EXPECT_EQ(file.records[i], records[i]);
  }
  EXPECT_EQ(file.intact_bytes + file.quarantined_bytes, torn.size());
  EXPECT_GT(file.quarantined_bytes, 0u);
}

TEST_F(CaptureTest, ReaderRefusesDamagedHeader) {
  std::string bytes = encode_capture(sample_records());
  bytes[2] ^= 0x01;
  const CaptureFile file = read_capture(bytes);
  EXPECT_FALSE(file.ok());
  EXPECT_FALSE(file.recovered());  // nothing usable before the header
  EXPECT_TRUE(file.records.empty());
}

TEST_F(CaptureTest, MissingFileIsStructuredError) {
  const CaptureFile file = read_capture_file(path("absent.icap"));
  EXPECT_FALSE(file.ok());
  EXPECT_EQ(file.error.kind, DecodeErrorKind::kEmptyInput);
  EXPECT_NE(file.error.context.find("absent.icap"), std::string::npos);
}

// --- writer ---------------------------------------------------------------

TEST_F(CaptureTest, WriterRoundTripsUnderEveryDurabilityPolicy) {
  const std::vector<CaptureRecord> records = sample_records();
  for (const CaptureDurability durability :
       {CaptureDurability::kNone, CaptureDurability::kInterval,
        CaptureDurability::kPerFrame}) {
    const std::string file_path =
        path("policy-" +
             std::to_string(static_cast<int>(durability)) + ".icap");
    CaptureWriterOptions options;
    options.durability = durability;
    options.flush_interval = 2;
    {
      WireLogWriter writer(file_path, options);
      ASSERT_TRUE(writer.ok()) << writer.error().message();
      for (const CaptureRecord& record : records) writer.record(record);
      writer.close();
      EXPECT_EQ(writer.stats().frames, records.size());
    }
    const CaptureFile file = read_capture_file(file_path);
    ASSERT_TRUE(file.ok()) << file.error.message();
    EXPECT_EQ(file.records, records);
  }
}

TEST_F(CaptureTest, TinyRingForcesDrainsAndStillRoundTrips) {
  CaptureWriterOptions options;
  options.durability = CaptureDurability::kNone;
  options.ring_capacity = 32;  // smaller than a single frame
  const std::vector<CaptureRecord> records = sample_records();
  WireLogWriter writer(path("tiny.icap"), options);
  for (const CaptureRecord& record : records) writer.record(record);
  writer.close();
  EXPECT_GT(writer.stats().flushes, 1u);
  const CaptureFile file = read_capture_file(path("tiny.icap"));
  ASSERT_TRUE(file.ok()) << file.error.message();
  EXPECT_EQ(file.records, records);
}

TEST_F(CaptureTest, ResumeAppendsAfterTornWrite) {
  const std::vector<CaptureRecord> records = sample_records();
  {
    WireLogWriter writer(path("resume.icap"));
    for (const CaptureRecord& record : records) writer.record(record);
    writer.close();
  }
  // Tear the file mid-final-frame, as a crashed flush would.
  const std::string bytes = slurp(path("resume.icap"));
  spill(path("resume.icap"), bytes.substr(0, bytes.size() - 7));

  const CaptureRecord extra{CaptureRecordKind::kTrace, 99, "after restart"};
  {
    WireLogWriter writer(path("resume.icap"), {}, WireLogWriter::Mode::kResume);
    ASSERT_TRUE(writer.ok()) << writer.error().message();
    EXPECT_GT(writer.stats().resumed_bytes, 0u);
    writer.record(extra);
    writer.close();
  }
  const CaptureFile file = read_capture_file(path("resume.icap"));
  ASSERT_TRUE(file.ok()) << file.error.message();
  ASSERT_EQ(file.records.size(), records.size());
  EXPECT_EQ(file.records.back(), extra);  // quarantined frame replaced
}

TEST_F(CaptureTest, ResumeRefusesForeignFile) {
  spill(path("foreign.icap"), "definitely not a capture file");
  WireLogWriter writer(path("foreign.icap"), {}, WireLogWriter::Mode::kResume);
  EXPECT_FALSE(writer.ok());
  writer.record({CaptureRecordKind::kTrace, 0, "dropped"});
  writer.close();
  // The foreign bytes were not clobbered by the failed resume.
  EXPECT_EQ(slurp(path("foreign.icap")), "definitely not a capture file");
}

// --- capture-write fault injection ---------------------------------------

TEST_F(CaptureTest, CrashFaultTearsFileAndKillsWriter) {
  FaultSpec fault_spec;
  fault_spec.capture_crash = 1.0;  // first flush dies
  FaultPlan faults(7, fault_spec);
  CaptureWriterOptions options;
  options.durability = CaptureDurability::kPerFrame;
  options.faults = &faults;

  WireLogWriter writer(path("crash.icap"), options);
  for (const CaptureRecord& record : sample_records()) writer.record(record);
  writer.close();
  EXPECT_TRUE(writer.crashed());
  EXPECT_FALSE(writer.ok());
  EXPECT_EQ(writer.stats().torn_flushes, 1u);
  ASSERT_FALSE(faults.injected().empty());
  EXPECT_EQ(faults.injected().front().kind, "crash-write");

  // Whatever landed is a recoverable prefix, never a reader crash.
  const CaptureFile file = read_capture_file(path("crash.icap"));
  EXPECT_TRUE(file.ok() || file.recovered() ||
              file.error.kind == DecodeErrorKind::kTruncated)
      << file.error.message();
}

TEST_F(CaptureTest, ShortWriteFaultLosesTailButKeepsWriterAlive) {
  FaultSpec fault_spec;
  fault_spec.capture_short = 1.0;
  FaultPlan faults(11, fault_spec);
  CaptureWriterOptions options;
  options.durability = CaptureDurability::kPerFrame;
  options.faults = &faults;

  WireLogWriter writer(path("short.icap"), options);
  for (const CaptureRecord& record : sample_records()) writer.record(record);
  writer.close();
  EXPECT_FALSE(writer.crashed());  // a lying disk, not a dead process
  EXPECT_GT(writer.stats().torn_flushes, 0u);

  const CaptureFile file = read_capture_file(path("short.icap"));
  EXPECT_FALSE(file.ok());  // every flush lost bytes somewhere
  EXPECT_TRUE(file.recovered() || file.records.empty());
}

TEST_F(CaptureTest, BitFlipFaultIsDetectedByFrameCrc) {
  FaultSpec fault_spec;
  fault_spec.capture_flip = 1.0;
  FaultPlan faults(13, fault_spec);
  CaptureWriterOptions options;
  options.durability = CaptureDurability::kPerFrame;
  options.faults = &faults;

  WireLogWriter writer(path("flip.icap"), options);
  for (const CaptureRecord& record : sample_records()) writer.record(record);
  writer.close();
  EXPECT_GT(writer.stats().torn_flushes, 0u);

  const CaptureFile file = read_capture_file(path("flip.icap"));
  EXPECT_FALSE(file.ok());
  EXPECT_NE(file.error.kind, DecodeErrorKind::kNone);
}

TEST_F(CaptureTest, CaptureFaultsAreDeterministic) {
  const auto run_once = [&](const std::string& name) {
    FaultSpec fault_spec;
    fault_spec.capture_crash = 0.2;
    fault_spec.capture_short = 0.2;
    FaultPlan faults(21, fault_spec);
    CaptureWriterOptions options;
    options.durability = CaptureDurability::kPerFrame;
    options.faults = &faults;
    WireLogWriter writer(path(name), options);
    for (int i = 0; i < 32; ++i) {
      writer.record({CaptureRecordKind::kTrace,
                     static_cast<std::uint64_t>(i),
                     "line " + std::to_string(i)});
    }
    writer.close();
    return slurp(path(name));
  };
  EXPECT_EQ(run_once("det-a.icap"), run_once("det-b.icap"));
}

// --- spec codec -----------------------------------------------------------

TEST_F(CaptureTest, SpecCodecRoundTripsByteForByte) {
  ChaosSpec spec;
  spec.seed = 0xdeadbeefcafeull;
  spec.sites = 5;
  spec.actions_per_site = 9;
  spec.gossip_interval = 3;
  spec.step_budget = 12345;
  spec.fault_horizon = 777;
  spec.partition_window = 8;
  spec.crash_length = 31;
  spec.deep_replay = false;
  spec.commitment = true;
  spec.faults.lose = 0.1;
  spec.faults.corrupt = 1.0 / 3.0;  // needs all 17 digits
  spec.faults.truncate = 0.015625;
  spec.faults.site_down = 0.02;
  spec.faults.max_corrupt_bytes = 7;
  spec.faults.delay_max = 5;
  spec.faults.reorder = 0.3;
  spec.faults.reorder_max = 11;
  spec.faults.duplicate = 0.25;
  spec.faults.partition = 0.05;
  spec.faults.drop_vote = 0.07;
  spec.faults.stale_vote = 0.09;
  spec.faults.capture_crash = 0.001;
  spec.faults.capture_short = 0.002;
  spec.faults.capture_flip = 0.003;
  spec.partitions = {{"s0", "s1", 10, 120}, {"s2", "s4", 30, 60}};
  spec.crashes = {{"s3", 40, 90}};

  const std::string wire = encode_chaos_spec(spec);
  const ChaosSpecDecode decoded = decode_chaos_spec(wire);
  ASSERT_TRUE(decoded.ok()) << decoded.error.message();
  // Byte-stable: re-encoding the decoded spec reproduces the wire exactly.
  EXPECT_EQ(encode_chaos_spec(decoded.spec), wire);
  EXPECT_EQ(decoded.spec.seed, spec.seed);
  EXPECT_EQ(decoded.spec.partitions.size(), 2u);
  EXPECT_EQ(decoded.spec.crashes.size(), 1u);
  EXPECT_DOUBLE_EQ(decoded.spec.faults.corrupt, spec.faults.corrupt);
}

TEST_F(CaptureTest, SpecCodecRejectsDamage) {
  EXPECT_EQ(decode_chaos_spec("").error.kind, DecodeErrorKind::kEmptyInput);
  EXPECT_EQ(decode_chaos_spec("not-a-spec 1\n").error.kind,
            DecodeErrorKind::kBadHeader);
  EXPECT_EQ(decode_chaos_spec("chaos-spec 2\n").error.kind,
            DecodeErrorKind::kUnsupportedVersion);
  EXPECT_EQ(decode_chaos_spec("chaos-spec 1\nfrobnicate 3\n").error.kind,
            DecodeErrorKind::kUnknownOp);
  EXPECT_EQ(decode_chaos_spec("chaos-spec 1\nseed banana\n").error.kind,
            DecodeErrorKind::kBadNumber);
  EXPECT_EQ(decode_chaos_spec("chaos-spec 1\ncut s0 s1 10\n").error.kind,
            DecodeErrorKind::kBadSyntax);
}

// --- replay ---------------------------------------------------------------

TEST_F(CaptureTest, CaptureObserverDoesNotChangeTheRun) {
  const ChaosSpec bare = small_spec(5, true);
  const ChaosReport without = run_chaos(bare);
  MemoryCaptureSink sink;
  const ChaosReport with = run_chaos_captured(bare, sink);
  EXPECT_EQ(without.trace_crc, with.trace_crc);
  EXPECT_EQ(without.steps, with.steps);
  ASSERT_FALSE(sink.records().empty());
  EXPECT_EQ(sink.records().front().kind, CaptureRecordKind::kSpec);
  EXPECT_EQ(sink.records().back().kind, CaptureRecordKind::kSummary);
}

TEST_F(CaptureTest, ReplayIsBitExactAcrossSeeds) {
  // The bulk of the acceptance sweep: gossip-only runs for speed...
  for (std::uint64_t seed = 1; seed <= 88; ++seed) {
    MemoryCaptureSink sink;
    (void)run_chaos_captured(small_spec(seed, false), sink);
    const ReplayResult replay = replay_capture(encode_capture(sink.records()));
    ASSERT_TRUE(replay.error.ok())
        << "seed " << seed << ": " << replay.error.message();
    ASSERT_TRUE(replay.faithful())
        << "seed " << seed << " diverged at frame "
        << (replay.divergence ? replay.divergence->frame : 0);
    EXPECT_TRUE(replay.crc_checked);
    EXPECT_EQ(replay.frames_compared, replay.recorded_frames);
  }
  // ...plus commitment runs under the full fault menu, the expensive shape.
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    ChaosSpec spec = small_spec(seed, true);
    spec.faults.corrupt = 0.02;
    spec.faults.reorder = 0.05;
    spec.faults.drop_vote = 0.05;
    spec.partitions = {{"s0", "s1", 10, 30}};
    spec.crashes = {{"s2", 20, 40}};
    MemoryCaptureSink sink;
    (void)run_chaos_captured(spec, sink);
    const ReplayResult replay = replay_capture(encode_capture(sink.records()));
    ASSERT_TRUE(replay.faithful())
        << "commit seed " << seed << ": " << replay.to_json();
  }
}

TEST_F(CaptureTest, ReplayDetectsTamperedFrame) {
  MemoryCaptureSink sink;
  (void)run_chaos_captured(small_spec(3, false), sink);
  std::vector<CaptureRecord> records = sink.take();
  // Re-encode with one event frame's payload altered: a validly framed
  // capture whose *content* lies. Replay must pinpoint exactly that frame.
  const std::size_t victim = records.size() / 2;
  records[victim].payload += " [tampered]";
  const ReplayResult replay = replay_capture(encode_capture(records));
  ASSERT_TRUE(replay.error.ok()) << replay.error.message();
  EXPECT_FALSE(replay.faithful());
  ASSERT_TRUE(replay.divergence.has_value());
  EXPECT_EQ(replay.divergence->frame, victim - 1);  // spec frame excluded
  EXPECT_NE(replay.divergence->recorded.payload.find("[tampered]"),
            std::string::npos);
}

TEST_F(CaptureTest, ReplayStopAfterLimitsComparison) {
  MemoryCaptureSink sink;
  (void)run_chaos_captured(small_spec(4, false), sink);
  const std::string bytes = encode_capture(sink.records());
  ReplayOptions options;
  options.stop_after = 10;
  const ReplayResult replay = replay_capture(bytes, options);
  ASSERT_TRUE(replay.error.ok()) << replay.error.message();
  EXPECT_EQ(replay.frames_compared, 10u);
  EXPECT_LT(replay.frames_compared, replay.recorded_frames);
  EXPECT_TRUE(replay.faithful());
}

TEST_F(CaptureTest, ReplayOfTornCaptureCoversIntactPrefix) {
  MemoryCaptureSink sink;
  (void)run_chaos_captured(small_spec(6, false), sink);
  const std::string bytes = encode_capture(sink.records());
  const ReplayResult replay =
      replay_capture(bytes.substr(0, bytes.size() - 30));
  ASSERT_TRUE(replay.error.ok()) << replay.error.message();
  EXPECT_TRUE(replay.capture_recovered);
  EXPECT_GT(replay.quarantined_bytes, 0u);
  EXPECT_FALSE(replay.crc_checked);  // summary frame was in the torn tail
  EXPECT_TRUE(replay.faithful());
}

TEST_F(CaptureTest, ReplayRejectsCaptureWithoutSpecFrame) {
  const ReplayResult replay = replay_capture(encode_capture(sample_records()));
  EXPECT_FALSE(replay.error.ok());
}

TEST_F(CaptureTest, ReplayOfMissingFileIsStructuredError) {
  const ReplayResult replay = replay_capture_file(path("absent.icap"));
  EXPECT_FALSE(replay.error.ok());
  EXPECT_EQ(replay.error.kind, DecodeErrorKind::kEmptyInput);
  EXPECT_FALSE(replay.faithful());
}

// --- audit diff -----------------------------------------------------------

TEST_F(CaptureTest, AuditDiffIdenticalCaptures) {
  const std::string bytes = encode_capture(sample_records());
  const AuditDiff diff = audit_diff(bytes, bytes);
  ASSERT_TRUE(diff.readable());
  EXPECT_TRUE(diff.identical);
}

TEST_F(CaptureTest, AuditDiffPinpointsFirstDivergentFrame) {
  std::vector<CaptureRecord> a = sample_records();
  std::vector<CaptureRecord> b = a;
  b[2].payload = "different bytes";
  const AuditDiff diff = audit_diff(encode_capture(a), encode_capture(b));
  ASSERT_TRUE(diff.readable());
  EXPECT_FALSE(diff.identical);
  EXPECT_EQ(diff.first_divergent, 2u);
  EXPECT_EQ(diff.a_frame, a[2]);
  EXPECT_EQ(diff.b_frame, b[2]);
  EXPECT_NE(diff.to_json().find("\"first_divergent\":2"), std::string::npos);
}

TEST_F(CaptureTest, AuditDiffPrefixEndedStream) {
  std::vector<CaptureRecord> a = sample_records();
  std::vector<CaptureRecord> b(a.begin(), a.begin() + 3);
  const AuditDiff diff = audit_diff(encode_capture(a), encode_capture(b));
  ASSERT_TRUE(diff.readable());
  EXPECT_FALSE(diff.identical);
  EXPECT_EQ(diff.first_divergent, 3u);
  EXPECT_EQ(diff.b_frame.payload, "<no frame: stream ended>");
}

TEST_F(CaptureTest, AuditDiffReportsUnreadableSide) {
  const std::string good = path("good.icap");
  spill(good, encode_capture(sample_records()));
  const AuditDiff diff = audit_diff_files(good, path("absent.icap"));
  EXPECT_FALSE(diff.readable());
  EXPECT_TRUE(diff.a.error.ok());
  EXPECT_EQ(diff.b.error.kind, DecodeErrorKind::kEmptyInput);
}

// --- end to end through the durable writer --------------------------------

TEST_F(CaptureTest, DiskCaptureReplaysBitExact) {
  const std::string file_path = path("run.icap");
  {
    WireLogWriter writer(file_path);
    ASSERT_TRUE(writer.ok()) << writer.error().message();
    (void)run_chaos_captured(small_spec(17, true), writer);
    writer.close();
  }
  const ReplayResult replay = replay_capture_file(file_path);
  ASSERT_TRUE(replay.error.ok()) << replay.error.message();
  EXPECT_TRUE(replay.faithful()) << replay.to_json();
  EXPECT_TRUE(replay.crc_checked);
  EXPECT_TRUE(replay.crc_match);
}

}  // namespace
}  // namespace icecube
