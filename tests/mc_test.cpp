// Tests for the exhaustive protocol model checker (src/mc/): the SimNet
// choice-point seam, world forking and the state digest, the spec codec,
// sleep-set/transposition reduction, the seeded historical-bug mutants
// (each must be found, minimized, and replay bit-exactly through the
// capture pipeline), and the convergent witness schedule.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "capture/replay_engine.hpp"
#include "capture/wire_log_writer.hpp"
#include "core/mutation.hpp"
#include "fault/fault_plan.hpp"
#include "mc/explorer.hpp"
#include "mc/mc_spec_codec.hpp"
#include "mc/minimize.hpp"
#include "mc/schedule.hpp"
#include "simnet/simnet.hpp"

namespace icecube {
namespace {

using mc::Choice;
using mc::ChoiceKind;
using mc::McConfig;

McConfig small_config(std::size_t sites, std::size_t actions,
                      std::uint64_t seed = 1) {
  McConfig config;
  config.sites = sites;
  config.actions = actions;
  config.seed = seed;
  return config;
}

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() /
          ("icecube-mc-test-" + std::to_string(::getpid()) + "-" + name))
      .string();
}

// --- SimNet choice-point seam -------------------------------------------

TEST(McSeam, PendingDeliveriesEnumerateInSendOrder) {
  SimNet net(1, FaultSpec{});
  net.add_site("s0");
  net.add_site("s1");
  net.send("s0", "s1", "a");
  net.send("s0", "s1", "b");

  const std::vector<PendingDelivery> pending = net.pending_deliveries();
  ASSERT_EQ(pending.size(), 2u);
  EXPECT_LT(pending[0].seq, pending[1].seq);
  EXPECT_EQ(pending[0].payload, "a");
  EXPECT_EQ(pending[1].payload, "b");
  EXPECT_EQ(pending[0].from, "s0");
  EXPECT_EQ(pending[0].to, "s1");
}

TEST(McSeam, TakeDeliveryConsumesChosenMessage) {
  SimNet net(1, FaultSpec{});
  net.add_site("s0");
  net.add_site("s1");
  net.send("s0", "s1", "a");
  net.send("s0", "s1", "b");

  // Take out of order: the second message first.
  const auto pending = net.pending_deliveries();
  const auto event = net.take_delivery(pending[1].seq);
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->kind, SimEvent::Kind::kDeliver);
  EXPECT_EQ(event->payload, "b");
  ASSERT_EQ(net.pending_deliveries().size(), 1u);
  EXPECT_EQ(net.pending_deliveries()[0].payload, "a");

  // A stale handle is a miss, not a crash.
  EXPECT_FALSE(net.take_delivery(pending[1].seq).has_value());
}

TEST(McSeam, DropAndDuplicateAreCountedAndKeepHandlesStable) {
  SimNet net(1, FaultSpec{});
  net.add_site("s0");
  net.add_site("s1");
  net.send("s0", "s1", "a");
  net.send("s0", "s1", "b");

  const auto pending = net.pending_deliveries();
  EXPECT_TRUE(net.drop_delivery(pending[0].seq));
  EXPECT_EQ(net.counters().lost, 1u);
  EXPECT_FALSE(net.drop_delivery(pending[0].seq));

  const auto copy = net.duplicate_delivery(pending[1].seq);
  ASSERT_TRUE(copy.has_value());
  EXPECT_EQ(net.counters().duplicated, 1u);
  const auto after = net.pending_deliveries();
  ASSERT_EQ(after.size(), 2u);
  EXPECT_EQ(after[0].id, after[1].id);  // fault-plan duplicate semantics
  EXPECT_EQ(after[0].payload, "b");
  EXPECT_EQ(after[1].payload, "b");
}

TEST(McSeam, ForceCrashDropsDeliveriesUntilRestart) {
  SimNet net(1, FaultSpec{});
  net.add_site("s0");
  net.add_site("s1");
  net.send("s0", "s1", "a");

  net.force_crash("s1");
  EXPECT_FALSE(net.is_up("s1"));
  const auto pending = net.pending_deliveries();
  ASSERT_EQ(pending.size(), 1u);
  EXPECT_FALSE(net.take_delivery(pending[0].seq).has_value());
  EXPECT_EQ(net.counters().dropped_down, 1u);

  net.force_restart("s1");
  EXPECT_TRUE(net.is_up("s1"));
  net.send("s0", "s1", "b");
  const auto event = net.take_delivery(net.pending_deliveries()[0].seq);
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->payload, "b");
}

TEST(McSeam, ForceCutBlocksLinkUntilHeal) {
  SimNet net(1, FaultSpec{});
  net.add_site("s0");
  net.add_site("s1");

  // A message already in flight when the cut lands is dropped at its
  // delivery instant (cut-at-send never queues anything at all).
  net.send("s0", "s1", "a");
  net.force_cut("s0", "s1");
  EXPECT_FALSE(net.link_open("s0", "s1"));
  const auto pending = net.pending_deliveries();
  ASSERT_EQ(pending.size(), 1u);
  EXPECT_FALSE(net.take_delivery(pending[0].seq).has_value());
  EXPECT_EQ(net.counters().dropped_partition, 1u);

  net.force_heal("s0", "s1");
  EXPECT_TRUE(net.link_open("s0", "s1"));
  net.send("s0", "s1", "b");
  const auto event = net.take_delivery(net.pending_deliveries()[0].seq);
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->payload, "b");
}

// --- world fork + digest ------------------------------------------------

TEST(McWorld, GenesisOffersOnlySteps) {
  mc::McWorld world(small_config(3, 3));
  for (const Choice& c : world.enabled()) {
    EXPECT_EQ(c.kind, ChoiceKind::kStep) << c.describe();
  }
  // 3 sites x 2 peers each.
  EXPECT_EQ(world.enabled().size(), 6u);
}

TEST(McWorld, FaultChoicesAppearOnlyWithBudget) {
  McConfig config = small_config(2, 1);
  config.max_crashes = 1;
  mc::McWorld world(config);
  std::size_t crashes = 0;
  for (const Choice& c : world.enabled()) {
    if (c.kind == ChoiceKind::kCrash) ++crashes;
  }
  EXPECT_EQ(crashes, 2u);  // either site may crash

  ASSERT_TRUE(world.apply({ChoiceKind::kCrash, 0, 0, 0}));
  std::size_t more_crashes = 0;
  std::size_t restarts = 0;
  for (const Choice& c : world.enabled()) {
    if (c.kind == ChoiceKind::kCrash) ++more_crashes;
    if (c.kind == ChoiceKind::kRestart) ++restarts;
  }
  EXPECT_EQ(more_crashes, 0u);  // budget spent
  EXPECT_EQ(restarts, 1u);      // recovery stays enabled (fairness)
}

TEST(McWorld, ForkEvolvesIndependentlyAndDeterministically) {
  mc::McWorld a(small_config(2, 2));
  ASSERT_TRUE(a.apply({ChoiceKind::kStep, 0, 1, 0}));

  mc::McWorld b(a);  // fork
  EXPECT_EQ(a.digest(), b.digest());

  // The same choice applied to both forks produces the same digest...
  ASSERT_TRUE(a.apply({ChoiceKind::kDeliver, 0, 1, 0}));
  const std::uint64_t before = b.digest();
  ASSERT_TRUE(b.apply({ChoiceKind::kDeliver, 0, 1, 0}));
  EXPECT_EQ(a.digest(), b.digest());
  // ...and the fork really did move (copy was deep, not aliased).
  EXPECT_NE(b.digest(), before);
}

TEST(McWorld, IndependentChoicesCommuteInTheDigest) {
  // Steps at different sites are independent: both orders must land on
  // the same digest (this is what makes the transposition table merge
  // the interleavings the sleep sets don't prune).
  const McConfig config = small_config(3, 3);
  mc::McWorld ab(config);
  mc::McWorld ba(config);
  const Choice step0{ChoiceKind::kStep, 0, 1, 0};
  const Choice step1{ChoiceKind::kStep, 1, 2, 0};
  ASSERT_TRUE(mc::independent(step0, step1));

  ASSERT_TRUE(ab.apply(step0));
  ASSERT_TRUE(ab.apply(step1));
  ASSERT_TRUE(ba.apply(step1));
  ASSERT_TRUE(ba.apply(step0));
  EXPECT_EQ(ab.digest(), ba.digest());

  // Dependent choices (same mutated site) must NOT be treated as
  // independent by the relation.
  const Choice also0{ChoiceKind::kStep, 0, 2, 0};
  EXPECT_FALSE(mc::independent(step0, also0));
  EXPECT_FALSE(
      mc::independent(step1, Choice{ChoiceKind::kDeliver, 0, 1, 0}));
}

TEST(McWorld, InapplicableChoicesAreRejected) {
  mc::McWorld world(small_config(2, 1));
  EXPECT_FALSE(world.apply({ChoiceKind::kDeliver, 0, 1, 0}));  // nothing sent
  EXPECT_FALSE(world.apply({ChoiceKind::kStep, 0, 0, 0}));     // self peer
  EXPECT_FALSE(world.apply({ChoiceKind::kStep, 5, 0, 0}));     // no such site
  EXPECT_FALSE(world.apply({ChoiceKind::kCrash, 0, 0, 0}));    // no budget
  EXPECT_FALSE(world.apply({ChoiceKind::kDrop, 0, 1, 0}));     // no budget
}

// --- spec codec ---------------------------------------------------------

TEST(McSpecCodec, RoundTripsBytesExactly) {
  McConfig config = small_config(3, 4, 7);
  config.commitment = false;
  config.withhold = true;
  config.max_drops = 2;
  config.max_cuts = 1;
  config.mutant = ProtocolMutant::kTransferDropDemoted;
  const std::vector<Choice> schedule = {
      {ChoiceKind::kStep, 0, 1, 0},
      {ChoiceKind::kDeliver, 0, 1, 0},
      {ChoiceKind::kDrop, 1, 0, 0},
      {ChoiceKind::kCut, 0, 2, 0},
  };

  const std::string wire = mc::encode_mc_spec(config, schedule);
  const mc::McSpecDecode decoded = mc::decode_mc_spec(wire);
  ASSERT_TRUE(decoded.ok()) << decoded.error.message();
  EXPECT_EQ(decoded.config.sites, config.sites);
  EXPECT_EQ(decoded.config.actions, config.actions);
  EXPECT_EQ(decoded.config.seed, config.seed);
  EXPECT_EQ(decoded.config.commitment, config.commitment);
  EXPECT_EQ(decoded.config.withhold, config.withhold);
  EXPECT_EQ(decoded.config.max_drops, config.max_drops);
  EXPECT_EQ(decoded.config.max_cuts, config.max_cuts);
  EXPECT_EQ(decoded.config.mutant, config.mutant);
  ASSERT_EQ(decoded.schedule.size(), schedule.size());
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    EXPECT_EQ(decoded.schedule[i], schedule[i]) << i;
  }
  EXPECT_EQ(mc::encode_mc_spec(decoded.config, decoded.schedule), wire);
}

TEST(McSpecCodec, RejectsMalformedSpecs) {
  EXPECT_EQ(mc::decode_mc_spec("").error.kind, DecodeErrorKind::kEmptyInput);
  EXPECT_EQ(mc::decode_mc_spec("chaos-spec 1\n").error.kind,
            DecodeErrorKind::kBadHeader);
  EXPECT_EQ(mc::decode_mc_spec("mc-spec 9\n").error.kind,
            DecodeErrorKind::kUnsupportedVersion);
  EXPECT_EQ(mc::decode_mc_spec("mc-spec 1\nsites many\n").error.kind,
            DecodeErrorKind::kBadNumber);
  EXPECT_EQ(mc::decode_mc_spec("mc-spec 1\nmutant 99\n").error.kind,
            DecodeErrorKind::kBadNumber);
  EXPECT_EQ(mc::decode_mc_spec("mc-spec 1\nchoice warp 0 1 0\n").error.kind,
            DecodeErrorKind::kBadSyntax);
  EXPECT_EQ(mc::decode_mc_spec("mc-spec 1\nfrobnicate 3\n").error.kind,
            DecodeErrorKind::kUnknownOp);
}

// --- exploration --------------------------------------------------------

TEST(McExplore, ShippedProtocolExploresCleanAndComplete) {
  mc::ExploreOptions options;
  options.depth = 8;
  options.states_budget = 2'000'000;
  const mc::McReport report = mc::explore(small_config(2, 2), options);
  EXPECT_TRUE(report.complete);
  EXPECT_TRUE(report.clean());
  EXPECT_FALSE(report.budget_exhausted);
  EXPECT_GT(report.transitions, 0u);
  EXPECT_GT(report.distinct_states, 0u);
  EXPECT_GT(report.tt_hits, 0u);
  EXPECT_GT(report.sleep_skips, 0u);
}

TEST(McExplore, ThreeSiteConfigExploresCleanAndComplete) {
  mc::ExploreOptions options;
  options.depth = 5;
  options.states_budget = 2'000'000;
  const mc::McReport report = mc::explore(small_config(3, 3), options);
  EXPECT_TRUE(report.complete);
  EXPECT_TRUE(report.clean());
}

TEST(McExplore, ReductionPrunesWithoutChangingTheVerdict) {
  mc::ExploreOptions options;
  options.depth = 6;
  options.states_budget = 2'000'000;

  options.reduction = false;
  const mc::McReport full = mc::explore(small_config(2, 2), options);
  options.reduction = true;
  const mc::McReport reduced = mc::explore(small_config(2, 2), options);

  EXPECT_TRUE(full.complete);
  EXPECT_TRUE(reduced.complete);
  EXPECT_TRUE(full.clean());
  EXPECT_TRUE(reduced.clean());
  EXPECT_LT(reduced.transitions, full.transitions);
  EXPECT_EQ(full.tt_hits, 0u);
  EXPECT_EQ(full.sleep_skips, 0u);
}

TEST(McExplore, BudgetExhaustionIsReportedNotSilent) {
  mc::ExploreOptions options;
  options.depth = 12;
  options.states_budget = 500;
  const mc::McReport report = mc::explore(small_config(3, 3), options);
  EXPECT_TRUE(report.budget_exhausted);
  EXPECT_FALSE(report.complete);
  EXPECT_LE(report.transitions, 500u);
}

TEST(McExplore, ReportJsonCarriesTheCoreFields) {
  mc::ExploreOptions options;
  options.depth = 4;
  const mc::McReport report = mc::explore(small_config(2, 1), options);
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"transitions\""), std::string::npos);
  EXPECT_NE(json.find("\"distinct_states\""), std::string::npos);
  EXPECT_NE(json.find("\"complete\""), std::string::npos);
  EXPECT_NE(json.find("\"counterexample\""), std::string::npos);
}

// --- seeded historical bugs (mutants) -----------------------------------

struct MutantCase {
  ProtocolMutant mutant;
  std::size_t sites;
  std::size_t actions;
  std::uint64_t seed;
  std::size_t depth;
};

class McMutant : public ::testing::TestWithParam<MutantCase> {};

// Each seeded bug must be found by the checker, survive delta-debugging
// minimization, and round-trip through the capture pipeline bit-exactly.
TEST_P(McMutant, IsFoundMinimizedAndReplaysBitExact) {
  const MutantCase& param = GetParam();
  McConfig config = small_config(param.sites, param.actions, param.seed);
  config.mutant = param.mutant;

  mc::ExploreOptions options;
  options.depth = param.depth;
  options.states_budget = 2'000'000;
  const mc::McReport report = mc::explore(config, options);
  ASSERT_TRUE(report.counterexample.has_value())
      << to_string(param.mutant) << " was not detected";
  ASSERT_FALSE(report.counterexample->violations.empty());

  // The raw trace reproduces, and its ddmin shrink still reproduces.
  const std::vector<Choice>& raw = report.counterexample->trace;
  EXPECT_TRUE(mc::schedule_reproduces(config, raw));
  const std::vector<Choice> minimized = mc::minimize_trace(config, raw);
  EXPECT_LE(minimized.size(), raw.size());
  ASSERT_TRUE(mc::schedule_reproduces(config, minimized));

  // 1-minimal: removing any single choice loses the violation.
  for (std::size_t skip = 0; skip < minimized.size(); ++skip) {
    std::vector<Choice> shorter;
    for (std::size_t i = 0; i < minimized.size(); ++i) {
      if (i != skip) shorter.push_back(minimized[i]);
    }
    EXPECT_FALSE(mc::schedule_reproduces(config, shorter))
        << "removable choice " << minimized[skip].describe();
  }

  // The minimized counterexample replays bit-exactly through the PR 8
  // capture pipeline.
  const std::string path =
      temp_path(std::string(to_string(param.mutant)) + ".icap");
  std::string error;
  ASSERT_TRUE(write_mc_capture_file(path, config, minimized, &error))
      << error;
  const ReplayResult replay = replay_capture_file(path);
  EXPECT_TRUE(replay.faithful()) << replay.to_json();
  EXPECT_TRUE(replay.crc_checked);
  EXPECT_TRUE(replay.crc_match);
  std::filesystem::remove(path);

  // The scoped mutant did not leak into the process state.
  EXPECT_EQ(active_protocol_mutant(), ProtocolMutant::kNone);
}

// The same configurations explore clean when the bug is not seeded: the
// detections above are properties of the seeded defect, not noise. The
// deep configs are capped by a transition budget to keep CI fast; the
// budget exceeds what every mutant needed to be found.
TEST_P(McMutant, ShippedProtocolIsCleanOnTheSameConfig) {
  const MutantCase& param = GetParam();
  const McConfig config =
      small_config(param.sites, param.actions, param.seed);
  mc::ExploreOptions options;
  options.depth = param.depth;
  options.states_budget = 60'000;
  const mc::McReport report = mc::explore(config, options);
  EXPECT_TRUE(report.clean()) << report.to_json();
}

INSTANTIATE_TEST_SUITE_P(
    SeededBugs, McMutant,
    ::testing::Values(
        MutantCase{ProtocolMutant::kPluralityIgnoreUnheard, 2, 2, 1, 8},
        MutantCase{ProtocolMutant::kMergeEpochNoBump, 2, 2, 2, 8},
        MutantCase{ProtocolMutant::kTransferDropDemoted, 2, 3, 4, 10},
        MutantCase{ProtocolMutant::kRebaseDropDemoted, 2, 3, 1, 10},
        MutantCase{ProtocolMutant::kStablePrefixRewrite, 2, 3, 1, 10}),
    [](const ::testing::TestParamInfo<MutantCase>& info) {
      std::string name{to_string(info.param.mutant)};
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// --- schedules, witnesses and replay ------------------------------------

TEST(McSchedule, WitnessDrivesTheConfigToFullConvergence) {
  const McConfig config = small_config(3, 3);
  const std::vector<Choice> schedule = mc::witness_schedule(config);
  ASSERT_FALSE(schedule.empty());

  const mc::McRunResult result = mc::run_mc_schedule(config, schedule);
  EXPECT_TRUE(result.applied_all);
  EXPECT_EQ(result.applied, schedule.size());
  EXPECT_TRUE(result.settled);
  EXPECT_FALSE(result.violated());
}

TEST(McSchedule, RunsAreDeterministic) {
  const McConfig config = small_config(3, 3);
  const std::vector<Choice> schedule = mc::witness_schedule(config);
  ASSERT_FALSE(schedule.empty());
  const mc::McRunResult a = mc::run_mc_schedule(config, schedule);
  const mc::McRunResult b = mc::run_mc_schedule(config, schedule);
  EXPECT_EQ(a.trace_crc, b.trace_crc);
  EXPECT_EQ(a.final_digest, b.final_digest);
}

TEST(McSchedule, WitnessCaptureReplaysBitExact) {
  const McConfig config = small_config(3, 3);
  const std::vector<Choice> schedule = mc::witness_schedule(config);
  ASSERT_FALSE(schedule.empty());

  const std::string path = temp_path("witness.icap");
  std::string error;
  ASSERT_TRUE(write_mc_capture_file(path, config, schedule, &error))
      << error;
  const ReplayResult replay = replay_capture_file(path);
  EXPECT_TRUE(replay.faithful()) << replay.to_json();
  EXPECT_TRUE(replay.crc_checked);
  EXPECT_GT(replay.frames_compared, 0u);
  std::filesystem::remove(path);
}

TEST(McSchedule, TamperedCaptureIsReportedAsDivergent) {
  const McConfig config = small_config(2, 2);
  std::vector<Choice> schedule = mc::witness_schedule(config);
  ASSERT_FALSE(schedule.empty());

  // Record with one schedule, then claim another in the spec frame: the
  // replay must notice the frames do not reproduce.
  MemoryCaptureSink sink;
  (void)mc::run_mc_schedule_captured(config, schedule, sink);
  std::vector<CaptureRecord> records = sink.records();
  ASSERT_FALSE(records.empty());
  std::vector<Choice> other = schedule;
  other.pop_back();
  records.front().payload = mc::encode_mc_spec(config, other);

  const std::string path = temp_path("tampered.icap");
  WireLogWriter writer(path);
  for (const CaptureRecord& record : records) writer.record(record);
  writer.close();
  ASSERT_TRUE(writer.error().ok());

  const ReplayResult replay = replay_capture_file(path);
  EXPECT_TRUE(replay.error.ok());
  EXPECT_FALSE(replay.faithful());
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace icecube
