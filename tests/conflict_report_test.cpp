// Tests for conflict explanation: static exclusions name their partners,
// dynamic drops carry failure details, the reporter delegates to an inner
// policy.
#include <gtest/gtest.h>

#include <memory>

#include "core/conflict_report.hpp"
#include "jigsaw/experiment.hpp"
#include "objects/counter.hpp"
#include "objects/file_system.hpp"
#include "test_helpers.hpp"

namespace icecube {
namespace {

using testing::make_log;
using testing::NopAction;
using testing::ScriptedObject;

TEST(ConflictReport, CleanOutcomeSaysSo) {
  Universe u;
  const ObjectId c = u.add(std::make_unique<Counter>(0));
  std::vector<Log> logs;
  logs.push_back(make_log("a", {std::make_shared<IncrementAction>(c, 1)}));
  Reconciler r(u, logs);
  const auto result = r.run();
  EXPECT_NE(explain_conflicts(r, result.best()).find("no conflicts"),
            std::string::npos);
}

TEST(ConflictReport, StaticExclusionNamesMutuallyUnsafePartner) {
  Universe u;
  const ObjectId obj = u.add(std::make_unique<ScriptedObject>(
      [](const Action&, const Action&, LogRelation) {
        return Constraint::kUnsafe;
      }));
  std::vector<Log> logs;
  logs.push_back(make_log("a", {std::make_shared<NopAction>(
                                   "alpha", std::vector{obj})}));
  logs.push_back(make_log("b", {std::make_shared<NopAction>(
                                   "beta", std::vector{obj})}));
  Reconciler r(u, logs);
  const auto result = r.run();
  ASSERT_EQ(result.best().cutset.size(), 1u);
  const std::string report = explain_conflicts(r, result.best());
  EXPECT_NE(report.find("static conflict"), std::string::npos);
  EXPECT_NE(report.find("mutually unsafe"), std::string::npos);
  // Both actions' descriptions appear: the excluded one and its partner.
  EXPECT_NE(report.find("alpha()"), std::string::npos);
  EXPECT_NE(report.find("beta()"), std::string::npos);
}

TEST(ConflictReport, DroppedActionCarriesFailureDetails) {
  Universe u;
  const ObjectId c = u.add(std::make_unique<Counter>(0));
  std::vector<Log> logs;
  logs.push_back(make_log("a", {std::make_shared<IncrementAction>(c, 1)}));
  logs.push_back(make_log("b", {std::make_shared<DecrementAction>(c, 99)}));

  ConflictReporter reporter;
  ReconcilerOptions opts;
  opts.heuristic = Heuristic::kAll;
  opts.failure_mode = FailureMode::kSkipAction;
  Reconciler r(u, logs, opts, &reporter);
  const auto result = r.run();
  ASSERT_EQ(result.best().skipped.size(), 1u);

  const std::string report =
      explain_conflicts(r, result.best(), &reporter);
  EXPECT_NE(report.find("decrement(99)"), std::string::npos);
  EXPECT_NE(report.find("precondition"), std::string::npos);
  EXPECT_NE(report.find("failure(s) overall"), std::string::npos);
}

TEST(ConflictReport, ReporterDelegatesToInnerPolicy) {
  Universe u;
  const ObjectId c = u.add(std::make_unique<Counter>(0));
  std::vector<Log> logs;
  logs.push_back(make_log("a", {std::make_shared<IncrementAction>(c, 1)}));
  logs.push_back(make_log("b", {std::make_shared<IncrementAction>(c, 2)}));

  /// Prefers schedules starting with action 1 — via the inner cost hook.
  class Inner final : public Policy {
   public:
    double cost(const Outcome& o) override {
      return o.schedule.empty() || o.schedule.front() != ActionId(1) ? 0 : -1;
    }
    bool on_outcome(const Outcome&) override {
      ++outcomes;
      return true;
    }
    int outcomes = 0;
  };
  Inner inner;
  ConflictReporter reporter(&inner);
  ReconcilerOptions opts;
  opts.heuristic = Heuristic::kAll;
  Reconciler r(u, logs, opts, &reporter);
  const auto result = r.run();
  EXPECT_EQ(result.best().schedule.front(), ActionId(1));  // inner cost used
  EXPECT_EQ(inner.outcomes, 2);                            // hook delegated
}

TEST(ConflictReport, JigsawDuplicateJoinsExplained) {
  using K = jigsaw::PlayerSpec::Kind;
  const jigsaw::Problem p =
      jigsaw::make_problem(4, 4, jigsaw::Board::OrderCase::kKeepLogOrder,
                           {{K::kU1, 7}, {K::kU2, 12}});
  jigsaw::JigsawPolicy policy(p.board_id);
  ConflictReporter reporter(&policy);
  ReconcilerOptions opts;
  opts.heuristic = Heuristic::kSafe;
  opts.failure_mode = FailureMode::kSkipAction;
  Reconciler r(p.initial, p.logs, opts, &reporter);
  const auto result = r.run();
  ASSERT_EQ(result.best().skipped.size(), 3u);  // the overlap duplicates
  const std::string report =
      explain_conflicts(r, result.best(), &reporter);
  EXPECT_NE(report.find("was dropped"), std::string::npos);
  EXPECT_NE(report.find("precondition"), std::string::npos);
}

TEST(ConflictReport, EarliestFailurePrefixIsKept) {
  // The same action fails at several depths; the note records the earliest.
  Universe u;
  const ObjectId c = u.add(std::make_unique<Counter>(0));
  std::vector<Log> logs;
  logs.push_back(make_log("a", {std::make_shared<IncrementAction>(c, 1)}));
  logs.push_back(make_log("b", {std::make_shared<IncrementAction>(c, 2)}));
  logs.push_back(make_log("c", {std::make_shared<DecrementAction>(c, 99)}));

  ConflictReporter reporter;
  ReconcilerOptions opts;
  opts.heuristic = Heuristic::kAll;
  Reconciler r(u, logs, opts, &reporter);
  (void)r.run();
  const auto it = reporter.failures().find(ActionId(2));
  ASSERT_NE(it, reporter.failures().end());
  EXPECT_EQ(it->second.prefix_length, 0u);   // fails at the very root too
  EXPECT_GT(it->second.occurrences, 1u);     // and at deeper prefixes
}

}  // namespace
}  // namespace icecube
