// Sparse constraint construction vs the dense all-pairs oracle.
//
// `build_constraints` walks a target→actions inverted index and evaluates
// only pairs that share a target (everything else is safe by §2.3 rule 1),
// computing each unordered pair's shared-target set once. These tests check
// it against `build_constraints_dense` — identical matrices, strictly less
// work — over the library workload generators and randomized scripted
// universes, sequentially and sharded across a thread pool.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "core/constraint_builder.hpp"
#include "core/log.hpp"
#include "core/universe.hpp"
#include "test_helpers.hpp"
#include "util/thread_pool.hpp"
#include "workload/generators.hpp"

namespace icecube {
namespace {

using testing::ScriptedObject;
using testing::make_log;

void expect_same_matrix(const ConstraintMatrix& want,
                        const ConstraintMatrix& got) {
  ASSERT_EQ(want.size(), got.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    for (std::size_t j = 0; j < want.size(); ++j) {
      EXPECT_EQ(want.at(ActionId(i), ActionId(j)), got.at(ActionId(i), ActionId(j)))
          << "cell (" << i << ", " << j << ")";
    }
  }
}

/// Builds both ways (plus the pool-sharded sparse variant) and checks
/// equality and the work-counter relations.
void check_equivalence(const Universe& universe,
                       const std::vector<Log>& logs) {
  const std::vector<ActionRecord> records = flatten(logs);
  const std::size_t n = records.size();

  ConstraintBuildStats dense_stats;
  const ConstraintMatrix dense =
      build_constraints_dense(universe, records, &dense_stats);

  ConstraintBuildStats sparse_stats;
  const ConstraintMatrix sparse =
      build_constraints(universe, records, {nullptr, &sparse_stats});
  expect_same_matrix(dense, sparse);

  ThreadPool pool(3);
  ConstraintBuildStats pooled_stats;
  const ConstraintMatrix pooled =
      build_constraints(universe, records, {&pool, &pooled_stats});
  expect_same_matrix(dense, pooled);

  // The dense oracle does all n(n-1) ordered pairs and builds the shared
  // set for each; the sparse builder touches only sharing pairs, once.
  EXPECT_EQ(dense_stats.pairs_evaluated, n * (n - 1));
  EXPECT_EQ(dense_stats.target_set_builds, n * (n - 1));
  EXPECT_LE(sparse_stats.pairs_evaluated, dense_stats.pairs_evaluated);
  if (n >= 2) {
    EXPECT_LT(sparse_stats.target_set_builds, dense_stats.target_set_builds);
  }

  // Sharding must not change what work is done, only where.
  EXPECT_EQ(sparse_stats.pairs_evaluated, pooled_stats.pairs_evaluated);
  EXPECT_EQ(sparse_stats.target_set_builds, pooled_stats.target_set_builds);
  EXPECT_EQ(sparse_stats.order_calls, pooled_stats.order_calls);
}

TEST(SparseConstraints, EmptyAndSingleton) {
  Universe u;
  (void)u.add(std::make_unique<ScriptedObject>());
  check_equivalence(u, {});

  std::vector<ActionPtr> one;
  one.push_back(std::make_shared<testing::NopAction>(
      "solo", std::vector<ObjectId>{ObjectId(0)}));
  std::vector<Log> logs;
  logs.push_back(make_log("a", std::move(one)));
  check_equivalence(u, logs);
}

TEST(SparseConstraints, CounterWorkloads) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto g = workload::counter_workload(
        {.replicas = 3, .actions_per_replica = 6, .seed = seed});
    check_equivalence(g.initial, g.logs);
  }
}

TEST(SparseConstraints, FileSystemWorkloads) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto g = workload::fs_workload(
        {.replicas = 3, .actions_per_replica = 6, .seed = seed});
    check_equivalence(g.initial, g.logs);
  }
}

TEST(SparseConstraints, CalendarWorkloads) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto g = workload::calendar_workload(
        {.users = 4, .actions_per_user = 4, .seed = seed});
    check_equivalence(g.initial, g.logs);
  }
}

TEST(SparseConstraints, TextWorkloads) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const auto g = workload::text_workload(
        {.replicas = 2, .actions_per_replica = 5, .seed = seed});
    check_equivalence(g.initial, g.logs);
  }
}

/// Randomized universes with many objects, scripted pseudo-random order
/// tables, and actions targeting random object subsets — so the matrix has
/// a real mix of disjoint, single-shared and multi-shared pairs.
TEST(SparseConstraints, RandomScriptedUniverses) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    std::mt19937_64 rng(seed);

    // Deterministic pseudo-random order table keyed on the two tags.
    const ScriptedObject::OrderFn table = [](const Action& a, const Action& b,
                                             LogRelation rel) {
      const std::uint64_t h = std::hash<std::string>{}(a.tag().op) * 3 +
                              std::hash<std::string>{}(b.tag().op) +
                              (rel == LogRelation::kSameLog ? 17 : 0);
      switch (h % 3) {
        case 0:
          return Constraint::kSafe;
        case 1:
          return Constraint::kMaybe;
        default:
          return Constraint::kUnsafe;
      }
    };

    Universe u;
    const std::size_t n_objects = 2 + rng() % 7;
    std::vector<ObjectId> objects;
    for (std::size_t i = 0; i < n_objects; ++i) {
      objects.push_back(u.add(std::make_unique<ScriptedObject>(table)));
    }

    std::vector<Log> logs;
    const std::size_t n_logs = 2 + rng() % 3;
    std::int64_t serial = 0;
    for (std::size_t l = 0; l < n_logs; ++l) {
      std::vector<ActionPtr> actions;
      const std::size_t n_actions = 2 + rng() % 8;
      for (std::size_t k = 0; k < n_actions; ++k) {
        std::vector<ObjectId> targets{objects[rng() % n_objects]};
        if (rng() % 3 == 0) {
          const ObjectId extra = objects[rng() % n_objects];
          if (extra.value() != targets[0].value()) targets.push_back(extra);
        }
        actions.push_back(std::make_shared<testing::NopAction>(
            "op" + std::to_string(++serial), std::move(targets)));
      }
      logs.push_back(make_log("log" + std::to_string(l), std::move(actions)));
    }
    SCOPED_TRACE("seed=" + std::to_string(seed));
    check_equivalence(u, logs);

    // With several objects some pairs are disjoint, so the sparse builder
    // must also evaluate strictly fewer ordered pairs, not just tie.
    const std::vector<ActionRecord> records = flatten(logs);
    const auto disjoint = [](const ActionRecord& x, const ActionRecord& y) {
      for (ObjectId tx : x.action->targets()) {
        for (ObjectId ty : y.action->targets()) {
          if (tx == ty) return false;
        }
      }
      return true;
    };
    bool any_disjoint = false;
    for (std::size_t i = 0; i < records.size() && !any_disjoint; ++i) {
      for (std::size_t j = 0; j < records.size(); ++j) {
        if (i != j && disjoint(records[i], records[j])) {
          any_disjoint = true;
          break;
        }
      }
    }
    if (any_disjoint) {
      ConstraintBuildStats dense_stats, sparse_stats;
      (void)build_constraints_dense(u, records, &dense_stats);
      (void)build_constraints(u, records, {nullptr, &sparse_stats});
      EXPECT_LT(sparse_stats.pairs_evaluated, dense_stats.pairs_evaluated);
    }
  }
}

}  // namespace
}  // namespace icecube
