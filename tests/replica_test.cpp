// Tests for the replica layer: isolated execution at sites, group
// synchronisation, convergence.
#include <gtest/gtest.h>

#include <memory>

#include "objects/counter.hpp"
#include "objects/file_system.hpp"
#include "objects/rw_register.hpp"
#include "replica/site.hpp"
#include "replica/sync.hpp"
#include "util/rng.hpp"

namespace icecube {
namespace {

Universe counter_universe(std::int64_t initial) {
  Universe u;
  u.add(std::make_unique<Counter>(initial));
  return u;
}
constexpr ObjectId kCounter{0};

TEST(Site, PerformUpdatesTentativeOnly) {
  Site site("a", counter_universe(10));
  EXPECT_TRUE(site.perform(std::make_shared<IncrementAction>(kCounter, 5)));
  EXPECT_EQ(site.tentative().as<Counter>(kCounter).value(), 15);
  EXPECT_EQ(site.committed().as<Counter>(kCounter).value(), 10);
  EXPECT_EQ(site.log().size(), 1u);
}

TEST(Site, FailedActionIsNotLogged) {
  Site site("a", counter_universe(1));
  EXPECT_FALSE(site.perform(std::make_shared<DecrementAction>(kCounter, 5)));
  EXPECT_EQ(site.log().size(), 0u);
  EXPECT_EQ(site.tentative().as<Counter>(kCounter).value(), 1);
}

TEST(Site, LogIsCorrectByConstruction) {
  // Whatever sequence of attempts, the recorded log replays in full
  // against the committed state.
  Site site("a", counter_universe(0));
  Rng rng(11);
  for (int i = 0; i < 40; ++i) {
    const auto amount = static_cast<std::int64_t>(rng.below(5)) + 1;
    if (rng.chance(0.5)) {
      (void)site.perform(std::make_shared<IncrementAction>(kCounter, amount));
    } else {
      (void)site.perform(std::make_shared<DecrementAction>(kCounter, amount));
    }
  }
  Universe replay = site.committed();
  for (const auto& action : site.log()) {
    ASSERT_TRUE(action->precondition(replay));
    ASSERT_TRUE(action->execute(replay));
  }
  EXPECT_EQ(replay.fingerprint(), site.tentative().fingerprint());
}

TEST(Site, AdoptInstallsStateAndClearsLog) {
  Site site("a", counter_universe(0));
  ASSERT_TRUE(site.perform(std::make_shared<IncrementAction>(kCounter, 3)));
  site.adopt(counter_universe(42));
  EXPECT_EQ(site.committed().as<Counter>(kCounter).value(), 42);
  EXPECT_EQ(site.tentative().as<Counter>(kCounter).value(), 42);
  EXPECT_FALSE(site.has_local_updates());
}

TEST(Sync, TwoSitesConverge) {
  const Universe initial = counter_universe(100);
  Site a("a", initial), b("b", initial);
  ASSERT_TRUE(a.perform(std::make_shared<IncrementAction>(kCounter, 50)));
  ASSERT_TRUE(a.perform(std::make_shared<DecrementAction>(kCounter, 120)));
  ASSERT_TRUE(b.perform(std::make_shared<DecrementAction>(kCounter, 20)));

  ASSERT_FALSE(converged({&a, &b}));
  const SyncResult result = synchronise({&a, &b});
  EXPECT_TRUE(result.adopted) << result.error;
  EXPECT_TRUE(converged({&a, &b}));
  // All three actions fit when the increment is scheduled early enough.
  EXPECT_EQ(a.tentative().as<Counter>(kCounter).value(), 100 + 50 - 120 - 20);
}

TEST(Sync, DivergentCommittedStatesAreRejected) {
  Site a("a", counter_universe(1));
  Site b("b", counter_universe(2));
  const SyncResult result = synchronise({&a, &b});
  EXPECT_FALSE(result.adopted);
  EXPECT_FALSE(result.error.empty());
  EXPECT_EQ(a.committed().as<Counter>(kCounter).value(), 1);  // untouched
}

TEST(Sync, IdleSitesAdoptOthersWork) {
  const Universe initial = counter_universe(0);
  Site a("a", initial), b("b", initial), c("c", initial);
  ASSERT_TRUE(a.perform(std::make_shared<IncrementAction>(kCounter, 7)));
  const SyncResult result = synchronise({&a, &b, &c});
  ASSERT_TRUE(result.adopted);
  EXPECT_EQ(c.tentative().as<Counter>(kCounter).value(), 7);
  EXPECT_TRUE(converged({&a, &b, &c}));
}

TEST(Sync, RepeatedRoundsKeepConverging) {
  const Universe initial = counter_universe(10);
  Site a("a", initial), b("b", initial), c("c", initial);
  std::vector<Site*> group{&a, &b, &c};
  Rng rng(5);
  for (int round = 0; round < 5; ++round) {
    for (Site* site : group) {
      for (int i = 0; i < 4; ++i) {
        const auto amount = static_cast<std::int64_t>(rng.below(4)) + 1;
        if (rng.chance(0.6)) {
          (void)site->perform(
              std::make_shared<IncrementAction>(kCounter, amount));
        } else {
          (void)site->perform(
              std::make_shared<DecrementAction>(kCounter, amount));
        }
      }
    }
    const SyncResult result = synchronise(group);
    ASSERT_TRUE(result.adopted) << "round " << round << ": " << result.error;
    ASSERT_TRUE(converged(group)) << "round " << round;
    ASSERT_GE(a.tentative().as<Counter>(kCounter).value(), 0);
  }
}

TEST(Sync, MixedObjectsAcrossSites) {
  Universe initial;
  initial.add(std::make_unique<Counter>(5));
  const ObjectId fs{1};
  {
    auto fsys = std::make_unique<FileSystem>();
    ASSERT_TRUE(fsys->mkdir("/inbox"));
    initial.add(std::move(fsys));
  }
  Site a("a", initial), b("b", initial);
  ASSERT_TRUE(a.perform(
      std::make_shared<WriteFileAction>(fs, "/inbox/from-a", "hello")));
  ASSERT_TRUE(b.perform(std::make_shared<IncrementAction>(kCounter, 1)));
  ASSERT_TRUE(b.perform(
      std::make_shared<WriteFileAction>(fs, "/inbox/from-b", "hi")));

  const SyncResult result = synchronise({&a, &b});
  ASSERT_TRUE(result.adopted) << result.error;
  const auto& merged_fs = a.tentative().as<FileSystem>(fs);
  EXPECT_TRUE(merged_fs.is_file("/inbox/from-a"));
  EXPECT_TRUE(merged_fs.is_file("/inbox/from-b"));
  EXPECT_EQ(a.tentative().as<Counter>(kCounter).value(), 6);
}

TEST(Sync, ConflictingWorkStillConvergesWithDrops) {
  // Both sites write the same file: a dynamic conflict; skip mode drops one
  // write and the group still converges.
  Universe initial;
  initial.add(std::make_unique<Counter>(0));
  const ObjectId fs{1};
  initial.add(std::make_unique<FileSystem>());

  Site a("a", initial), b("b", initial);
  ASSERT_TRUE(a.perform(std::make_shared<WriteFileAction>(fs, "/f", "A")));
  ASSERT_TRUE(b.perform(std::make_shared<WriteFileAction>(fs, "/f", "B")));

  ReconcilerOptions opts;
  opts.heuristic = Heuristic::kAll;
  const SyncResult result = synchronise({&a, &b}, opts);
  ASSERT_TRUE(result.adopted) << result.error;
  EXPECT_TRUE(converged({&a, &b}));
  const auto content = a.tentative().as<FileSystem>(fs).read("/f");
  ASSERT_TRUE(content.has_value());
  EXPECT_TRUE(*content == "A" || *content == "B");
}

}  // namespace
}  // namespace icecube
