// Gossip frame codec + asynchronous anti-entropy protocol semantics.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "fault/fault_plan.hpp"
#include "objects/counter.hpp"
#include "replica/gossip.hpp"
#include "serialize/gossip_codec.hpp"
#include "simnet/invariants.hpp"

namespace icecube {
namespace {

Universe counter_genesis(std::int64_t initial = 100) {
  Universe u;
  u.add(std::make_unique<Counter>(initial));
  return u;
}

ActionPtr inc(std::int64_t amount) {
  return std::make_shared<IncrementAction>(ObjectId(0), amount);
}
ActionPtr dec(std::int64_t amount) {
  return std::make_shared<DecrementAction>(ObjectId(0), amount);
}

// --- frame codec ---

GossipFrame sample_frame() {
  GossipFrame frame;
  frame.site = "site with spaces";
  frame.epoch = 42;
  frame.history_uids = {"a:0", "b:1"};
  frame.pending_uids = {"c:2"};
  frame.history_bytes = "history\npayload\n";
  frame.pending_bytes = "pending bytes";
  frame.universe_bytes = "universe\n#crc32 etc\n";
  return frame;
}

TEST(GossipCodec, RoundTrip) {
  const GossipFrame frame = sample_frame();
  const auto decoded = decode_gossip_frame(encode_gossip_frame(frame));
  ASSERT_TRUE(decoded.ok()) << decoded.error.message();
  EXPECT_EQ(decoded.frame->site, frame.site);
  EXPECT_EQ(decoded.frame->epoch, frame.epoch);
  EXPECT_EQ(decoded.frame->history_uids, frame.history_uids);
  EXPECT_EQ(decoded.frame->pending_uids, frame.pending_uids);
  EXPECT_EQ(decoded.frame->history_bytes, frame.history_bytes);
  EXPECT_EQ(decoded.frame->pending_bytes, frame.pending_bytes);
  EXPECT_EQ(decoded.frame->universe_bytes, frame.universe_bytes);
}

TEST(GossipCodec, RoundTripEmptySections) {
  GossipFrame frame;
  frame.site = "s";
  const auto decoded = decode_gossip_frame(encode_gossip_frame(frame));
  ASSERT_TRUE(decoded.ok()) << decoded.error.message();
  EXPECT_TRUE(decoded.frame->history_uids.empty());
  EXPECT_TRUE(decoded.frame->universe_bytes.empty());
}

TEST(GossipCodec, EmptyInput) {
  EXPECT_EQ(decode_gossip_frame("").error.kind,
            DecodeErrorKind::kEmptyInput);
}

TEST(GossipCodec, BadMagicIsBadHeader) {
  EXPECT_EQ(decode_gossip_frame("not-a-frame 1 s 0 0 0\n").error.kind,
            DecodeErrorKind::kBadHeader);
}

TEST(GossipCodec, FutureVersionIsUnsupported) {
  EXPECT_EQ(decode_gossip_frame("icecube-gossip 9 s 0 0 0\n").error.kind,
            DecodeErrorKind::kUnsupportedVersion);
}

TEST(GossipCodec, EveryTruncationDetected) {
  const std::string whole = encode_gossip_frame(sample_frame());
  for (std::size_t cut = 0; cut < whole.size(); ++cut) {
    const auto decoded = decode_gossip_frame(whole.substr(0, cut));
    EXPECT_FALSE(decoded.ok()) << "prefix of " << cut << " bytes accepted";
  }
}

TEST(GossipCodec, AbsurdUidCountRejected) {
  // A corrupted count must not trigger a giant allocation.
  const auto decoded =
      decode_gossip_frame("icecube-gossip 1 s 0 99999999999 0\n");
  EXPECT_EQ(decoded.error.kind, DecodeErrorKind::kBadNumber);
}

// --- protocol: merge path ---

TEST(Gossip, PairwiseExchangeConverges) {
  GossipNode a("a", counter_genesis());
  GossipNode b("b", counter_genesis());
  ASSERT_TRUE(a.perform(inc(5)));
  ASSERT_TRUE(b.perform(inc(7)));

  const GossipReceipt at_b = b.receive(a.make_message());
  EXPECT_TRUE(at_b.merged);
  EXPECT_EQ(at_b.merged_actions, 2u);
  EXPECT_TRUE(at_b.reply_advised());
  EXPECT_EQ(b.epoch(), 1u);
  EXPECT_TRUE(b.pending().empty());
  EXPECT_EQ(b.history().size(), 2u);

  const GossipReceipt at_a = a.receive(b.make_message());
  EXPECT_TRUE(at_a.state_transfer);
  EXPECT_EQ(at_a.demoted, 0u);
  EXPECT_EQ(a.committed_fingerprint(), b.committed_fingerprint());
  EXPECT_TRUE(a.pending().empty());
  EXPECT_EQ(a.committed().as<Counter>(ObjectId(0)).value(), 112);
}

TEST(Gossip, CrossingMergesProduceIdenticalStates) {
  GossipNode a("a", counter_genesis());
  GossipNode b("b", counter_genesis());
  ASSERT_TRUE(a.perform(inc(3)));
  ASSERT_TRUE(a.perform(dec(1)));
  ASSERT_TRUE(b.perform(inc(9)));

  // Both messages are built from the pre-exchange state — they cross on
  // the wire — and each side merges the other's.
  const std::string from_a = a.make_message();
  const std::string from_b = b.make_message();
  EXPECT_TRUE(b.receive(from_a).merged);
  EXPECT_TRUE(a.receive(from_b).merged);

  // The canonicalised merge problem is identical on both sides, so the
  // results are bit-identical: same epoch, same fingerprint — converged
  // with no further traffic.
  EXPECT_EQ(a.epoch(), b.epoch());
  EXPECT_EQ(a.committed_fingerprint(), b.committed_fingerprint());
}

TEST(Gossip, DuplicateDeliveryIsIdempotent) {
  GossipNode a("a", counter_genesis());
  GossipNode b("b", counter_genesis());
  ASSERT_TRUE(a.perform(inc(5)));

  const std::string message = a.make_message();
  EXPECT_TRUE(b.receive(message).merged);
  const std::string fp = b.committed_fingerprint();

  // The copy arrives after the merge: the sender is now behind, nothing
  // is applied twice.
  const GossipReceipt again = b.receive(message);
  EXPECT_FALSE(again.adopted());
  EXPECT_TRUE(again.sender_stale);
  EXPECT_EQ(b.committed_fingerprint(), fp);
  EXPECT_EQ(b.committed().as<Counter>(ObjectId(0)).value(), 105);
}

TEST(Gossip, EmptyExchangeIsNoop) {
  GossipNode a("a", counter_genesis());
  GossipNode b("b", counter_genesis());
  const GossipReceipt receipt = b.receive(a.make_message());
  EXPECT_FALSE(receipt.adopted());
  EXPECT_FALSE(receipt.quarantined);
  EXPECT_FALSE(receipt.reply_advised());
  EXPECT_EQ(b.epoch(), 0u);
}

// --- protocol: divergence and state transfer ---

TEST(Gossip, DominatedSiteAdoptsAndDemotes) {
  // a+b commit {a1, b1} at epoch 1; c+d race ahead to epoch 2 with
  // {c1, c2}. When a hears d, it must adopt d's lineage and demote its
  // own committed actions — not lose them.
  GossipNode a("a", counter_genesis());
  GossipNode b("b", counter_genesis());
  GossipNode c("c", counter_genesis());
  GossipNode d("d", counter_genesis());

  ASSERT_TRUE(a.perform(inc(1)));
  ASSERT_TRUE(b.perform(inc(2)));
  ASSERT_TRUE(b.receive(a.make_message()).merged);    // b: epoch 1
  ASSERT_TRUE(a.receive(b.make_message()).adopted()); // a: epoch 1

  ASSERT_TRUE(c.perform(inc(10)));
  ASSERT_TRUE(d.receive(c.make_message()).merged);    // d: epoch 1
  ASSERT_TRUE(c.receive(d.make_message()).adopted());
  ASSERT_TRUE(c.perform(inc(20)));
  ASSERT_TRUE(d.receive(c.make_message()).merged);    // d: epoch 2

  const std::size_t before = a.history().size();
  ASSERT_EQ(before, 2u);
  const GossipReceipt receipt = a.receive(d.make_message());
  EXPECT_TRUE(receipt.state_transfer);
  EXPECT_EQ(receipt.demoted, 2u);
  EXPECT_EQ(a.epoch(), d.epoch());
  EXPECT_EQ(a.committed_fingerprint(), d.committed_fingerprint());
  // Conservation: a's actions are pending again, not gone.
  EXPECT_EQ(a.pending().size(), 2u);
  // And the next exchange merges them back in on top of the new lineage.
  GossipNode& winner = d;
  ASSERT_TRUE(winner.receive(a.make_message()).merged);
  EXPECT_EQ(winner.committed().as<Counter>(ObjectId(0)).value(),
            100 + 1 + 2 + 10 + 20);
}

TEST(Gossip, StaleSenderTriggersAdvisedReplyOnly) {
  GossipNode a("a", counter_genesis());
  GossipNode b("b", counter_genesis());
  ASSERT_TRUE(a.perform(inc(4)));
  const std::string old_message = a.make_message();
  ASSERT_TRUE(b.receive(old_message).merged);

  // b replays a's old message to itself-as-receiver again — a's state in
  // that frame is now strictly behind b's.
  const GossipReceipt receipt = b.receive(old_message);
  EXPECT_TRUE(receipt.sender_stale);
  EXPECT_TRUE(receipt.reply_advised());
  EXPECT_FALSE(receipt.adopted());
  EXPECT_EQ(b.stats().stale_heard, 1u);
}

// --- quarantine: damaged payloads are detected, never adopted ---

TEST(Gossip, CorruptUniverseSectionQuarantined) {
  GossipNode a("a", counter_genesis());
  GossipNode b("b", counter_genesis());
  ASSERT_TRUE(a.perform(inc(5)));

  auto decoded = decode_gossip_frame(a.make_message());
  ASSERT_TRUE(decoded.ok());
  // Damage the state-transfer payload only; the envelope stays valid.
  ASSERT_GT(decoded.frame->universe_bytes.size(), 10u);
  decoded.frame->universe_bytes[10] =
      static_cast<char>(decoded.frame->universe_bytes[10] ^ 0x5A);

  const std::string fp_before = b.committed_fingerprint();
  const GossipReceipt receipt =
      b.receive(encode_gossip_frame(*decoded.frame));
  EXPECT_TRUE(receipt.quarantined);
  EXPECT_EQ(receipt.reject, GossipReject::kUniverseError);
  EXPECT_NE(receipt.error.kind, DecodeErrorKind::kNone);
  // Untouched: nothing adopted, nothing merged.
  EXPECT_EQ(b.committed_fingerprint(), fp_before);
  EXPECT_EQ(b.epoch(), 0u);
  EXPECT_EQ(b.stats().quarantines, 1u);
}

TEST(Gossip, ShipUniverseFaultChannelUsedAndDetected) {
  // The state-transfer payload travels through FaultPoint::kShipUniverse:
  // a plan that corrupts everything must record a ship-universe fault and
  // the receiver must quarantine the message.
  FaultSpec spec;
  spec.corrupt = 1.0;
  FaultPlan plan(9, spec);

  GossipNode a("a", counter_genesis());
  GossipNode b("b", counter_genesis());
  ASSERT_TRUE(a.perform(inc(5)));

  const GossipReceipt receipt = b.receive(a.make_message(&plan, 3));
  EXPECT_TRUE(receipt.quarantined);
  EXPECT_EQ(b.epoch(), 0u);

  bool universe_fault = false;
  for (const InjectedFault& fault : plan.injected()) {
    if (fault.point == FaultPoint::kShipUniverse) {
      universe_fault = true;
      EXPECT_EQ(fault.subject, "a/state");
      EXPECT_EQ(fault.round, 3u);
    }
  }
  EXPECT_TRUE(universe_fault);
}

TEST(Gossip, TruncatedHistorySectionQuarantined) {
  FaultSpec spec;
  spec.truncate = 1.0;
  FaultPlan plan(4, spec);

  GossipNode a("a", counter_genesis());
  GossipNode b("b", counter_genesis());
  ASSERT_TRUE(a.perform(inc(5)));

  const GossipReceipt receipt = b.receive(a.make_message(&plan, 0));
  EXPECT_TRUE(receipt.quarantined);
  EXPECT_FALSE(receipt.adopted());
  EXPECT_EQ(b.stats().quarantines, 1u);
}

TEST(Gossip, UidCountMismatchQuarantined) {
  GossipNode a("a", counter_genesis());
  GossipNode b("b", counter_genesis());
  ASSERT_TRUE(a.perform(inc(5)));

  auto decoded = decode_gossip_frame(a.make_message());
  ASSERT_TRUE(decoded.ok());
  decoded.frame->pending_uids.push_back("ghost:9");
  const GossipReceipt receipt =
      b.receive(encode_gossip_frame(*decoded.frame));
  EXPECT_TRUE(receipt.quarantined);
  EXPECT_EQ(receipt.reject, GossipReject::kUidMismatch);
}

TEST(Gossip, ForeignUniverseShapeQuarantined) {
  Universe bigger;
  bigger.add(std::make_unique<Counter>(100));
  bigger.add(std::make_unique<Counter>(50));
  GossipNode alien("alien", std::move(bigger));
  ASSERT_TRUE(alien.perform(
      std::make_shared<IncrementAction>(ObjectId(1), 5)));

  GossipNode b("b", counter_genesis());
  const GossipReceipt receipt = b.receive(alien.make_message());
  EXPECT_TRUE(receipt.quarantined);
  EXPECT_EQ(receipt.reject, GossipReject::kBadTarget);
  EXPECT_EQ(b.epoch(), 0u);
}

TEST(Gossip, ForgedStateFailsReplayVerification) {
  // A frame whose history does not replay to its shipped universe must be
  // rejected even though every CRC is intact.
  GossipNode a("a", counter_genesis());
  GossipNode b("b", counter_genesis());
  ASSERT_TRUE(a.perform(inc(5)));
  GossipNode helper("h", counter_genesis());
  ASSERT_TRUE(helper.receive(a.make_message()).merged);  // helper: epoch 1

  auto decoded = decode_gossip_frame(helper.make_message());
  ASSERT_TRUE(decoded.ok());
  // Swap in a perfectly valid encoding of the WRONG state.
  const Universe forged = counter_genesis(999);
  const ObjectRegistry registry = ObjectRegistry::with_builtins();
  decoded.frame->universe_bytes = *encode_universe(forged, registry);

  const GossipReceipt receipt =
      b.receive(encode_gossip_frame(*decoded.frame));
  EXPECT_TRUE(receipt.quarantined);
  EXPECT_EQ(receipt.reject, GossipReject::kReplayMismatch);
  EXPECT_EQ(b.epoch(), 0u);
}

// --- invariant checker sanity: it actually catches violations ---

TEST(Invariants, CleanExchangeProducesNoViolations) {
  GossipNode a("a", counter_genesis());
  GossipNode b("b", counter_genesis());
  InvariantChecker checker(/*deep_replay=*/true);
  checker.observe(a, 0);
  checker.observe(b, 0);
  ASSERT_TRUE(a.perform(inc(5)));
  checker.observe(a, 1);
  ASSERT_TRUE(b.receive(a.make_message()).merged);
  checker.observe(b, 2);
  ASSERT_TRUE(a.receive(b.make_message()).adopted());
  checker.observe(a, 3);
  EXPECT_TRUE(checker.ok()) << checker.violations().front().message();
}

TEST(Invariants, DetectsEpochRollbackAndLostActions) {
  GossipNode advanced("x", counter_genesis());
  GossipNode partner("p", counter_genesis());
  ASSERT_TRUE(advanced.perform(inc(5)));
  ASSERT_TRUE(partner.receive(advanced.make_message()).merged);
  ASSERT_TRUE(advanced.receive(partner.make_message()).adopted());

  InvariantChecker checker;
  checker.observe(advanced, 0);
  // A fresh node under the same name looks like a site that rolled back
  // its epoch and dropped its committed action.
  GossipNode impostor("x", counter_genesis());
  checker.observe(impostor, 1);

  ASSERT_FALSE(checker.ok());
  bool epoch_violation = false;
  bool conservation_violation = false;
  for (const Violation& v : checker.violations()) {
    if (v.kind == "epoch-monotone") epoch_violation = true;
    if (v.kind == "conservation") conservation_violation = true;
  }
  EXPECT_TRUE(epoch_violation);
  EXPECT_TRUE(conservation_violation);
}

}  // namespace
}  // namespace icecube
