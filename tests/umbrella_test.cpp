// Compilation test for the umbrella header: one translation unit including
// the whole public API, exercising a cross-cutting smoke scenario.
#include <gtest/gtest.h>

#include <memory>

#include "icecube.hpp"

namespace icecube {
namespace {

TEST(Umbrella, EndToEndSmoke) {
  Universe u;
  const ObjectId c = u.add(std::make_unique<Counter>(10));
  Site site("s", u);
  ASSERT_TRUE(site.perform(std::make_shared<IncrementAction>(c, 5)));

  Reconciler r(site.committed(), {site.log()});
  const auto result = r.run();
  ASSERT_TRUE(result.found_any());
  EXPECT_TRUE(result.best().complete);
  EXPECT_EQ(result.best().final_state.as<Counter>(c).value(), 15);

  const auto encoded = encode_log(site.log());
  EXPECT_TRUE(decode_log(encoded, ActionRegistry::with_builtins()).ok());
}

}  // namespace
}  // namespace icecube
