// Tests for the pipelined/anytime reconciler (§2's pipeline with feedback
// loops): sliced exploration, incumbent access, early stop, equivalence
// with the one-shot reconciler.
#include <gtest/gtest.h>

#include <memory>

#include "core/incremental.hpp"
#include "core/reconciler.hpp"
#include "jigsaw/experiment.hpp"
#include "objects/counter.hpp"
#include "test_helpers.hpp"

namespace icecube {
namespace {

using testing::make_log;

/// Three independent one-increment logs: 3! = 6 schedules under H=All.
struct SmallProblem {
  Universe universe;
  ObjectId counter;
  std::vector<Log> logs;

  SmallProblem() {
    counter = universe.add(std::make_unique<Counter>(0));
    for (int i = 0; i < 3; ++i) {
      logs.push_back(make_log(
          "l" + std::to_string(i),
          {std::make_shared<IncrementAction>(counter, 1 << i)}));
    }
  }
};

ReconcilerOptions all_options() {
  ReconcilerOptions opts;
  opts.heuristic = Heuristic::kAll;
  return opts;
}

TEST(Incremental, SlicedSearchMatchesOneShot) {
  SmallProblem p;
  Reconciler one_shot(p.universe, p.logs, all_options());
  const auto reference = one_shot.run();

  IncrementalReconciler inc(p.universe, p.logs, all_options());
  int slices = 0;
  while (!inc.finished()) {
    (void)inc.step(1);
    ++slices;
  }
  const auto result = inc.take_result();
  EXPECT_EQ(result.stats.schedules_completed,
            reference.stats.schedules_completed);
  EXPECT_EQ(result.best().schedule, reference.best().schedule);
  EXPECT_GE(slices, 6);  // at least one slice per schedule
}

TEST(Incremental, StepRespectsBudget) {
  SmallProblem p;
  IncrementalReconciler inc(p.universe, p.logs, all_options());
  const auto progress = inc.step(2);
  EXPECT_EQ(progress.schedules_explored, 2u);
  EXPECT_FALSE(progress.finished);
  const auto more = inc.step(100);
  EXPECT_EQ(more.schedules_explored, 6u);
  EXPECT_TRUE(more.finished);
}

TEST(Incremental, IncumbentAvailableBetweenSlices) {
  SmallProblem p;
  IncrementalReconciler inc(p.universe, p.logs, all_options());
  const auto progress = inc.step(1);
  ASSERT_TRUE(progress.has_best);
  EXPECT_TRUE(inc.best().complete);
  EXPECT_EQ(inc.best().final_state.as<Counter>(p.counter).value(), 7);
}

TEST(Incremental, EarlyStopKeepsIncumbent) {
  SmallProblem p;
  IncrementalReconciler inc(p.universe, p.logs, all_options());
  (void)inc.step(1);
  const auto result = inc.take_result();  // abandon the rest of the search
  ASSERT_TRUE(result.found_any());
  EXPECT_TRUE(result.best().complete);
  EXPECT_EQ(result.stats.schedules_explored(), 1u);
}

TEST(Incremental, StepAfterCompletionIsNoOp) {
  SmallProblem p;
  IncrementalReconciler inc(p.universe, p.logs, all_options());
  (void)inc.step(1000);
  const auto again = inc.step(1000);
  EXPECT_TRUE(again.finished);
  EXPECT_EQ(again.schedules_explored, 6u);
}

TEST(Incremental, CrossesCutsetBoundaries) {
  // Two mutually-unsafe actions → 2 cutsets, each a 1-action search; the
  // sliced run must traverse both.
  Universe u;
  const ObjectId obj = u.add(std::make_unique<testing::ScriptedObject>(
      [](const Action&, const Action&, LogRelation) {
        return Constraint::kUnsafe;
      }));
  std::vector<Log> logs;
  logs.push_back(make_log("a", {std::make_shared<testing::NopAction>(
                                   "p", std::vector{obj})}));
  logs.push_back(make_log("b", {std::make_shared<testing::NopAction>(
                                   "q", std::vector{obj})}));
  IncrementalReconciler inc(u, logs, {});
  auto progress = inc.step(1);
  EXPECT_FALSE(progress.finished);
  EXPECT_EQ(progress.cutsets_remaining + 1, 2u);  // one still queued/open
  progress = inc.step(10);
  EXPECT_TRUE(progress.finished);
  const auto result = inc.take_result();
  EXPECT_EQ(result.stats.schedules_completed, 2u);
  EXPECT_EQ(result.cutsets.size(), 2u);
}

TEST(Incremental, InteractiveJigsawFindsOptimumInFirstSlices) {
  // The paper's interactive-feedback scenario: the E2 game under H=All
  // finds the 16-piece optimum within the first couple of schedules; an
  // interactive application can show it long before the sweep finishes.
  using K = jigsaw::PlayerSpec::Kind;
  const jigsaw::Problem p =
      jigsaw::make_problem(4, 4, jigsaw::Board::OrderCase::kKeepLogOrder,
                           {{K::kU1, 7}, {K::kU2, 12}});
  jigsaw::JigsawPolicy policy(p.board_id);
  IncrementalReconciler inc(p.initial, p.logs, all_options(), &policy);
  const auto progress = inc.step(2);
  ASSERT_TRUE(progress.has_best);
  EXPECT_FALSE(progress.finished);
  const auto& board = inc.best().final_state.as<jigsaw::Board>(p.board_id);
  EXPECT_EQ(board.correct_pieces(), 16);
  // ... and the application may simply stop here.
  const auto result = inc.take_result();
  EXPECT_LE(result.stats.schedules_explored(), 2u);
}

TEST(Incremental, BestCostNeverWorsens) {
  using K = jigsaw::PlayerSpec::Kind;
  const jigsaw::Problem p =
      jigsaw::make_problem(3, 3, jigsaw::Board::OrderCase::kKeepJoinOrder,
                           {{K::kU1, 5}, {K::kU3, 6, 3}});
  jigsaw::JigsawPolicy policy(p.board_id);
  ReconcilerOptions opts = all_options();
  opts.failure_mode = FailureMode::kSkipAction;
  opts.limits.max_schedules = 5000;
  IncrementalReconciler inc(p.initial, p.logs, opts, &policy);
  double last_cost = std::numeric_limits<double>::infinity();
  while (!inc.finished()) {
    const auto progress = inc.step(50);
    if (progress.has_best) {
      EXPECT_LE(progress.best_cost, last_cost);
      last_cost = progress.best_cost;
    }
  }
}

}  // namespace
}  // namespace icecube
