// Tests for the constraint soundness auditor (src/analysis).
//
// Strategy: feed the auditor deliberately-broken toy types — one whose
// order() lies `safe` over a real dynamic conflict, one that declares
// spurious mutual conflicts, one that only ever says `maybe`, one that
// flickers between verdicts — and assert each audit rule fires with the
// right witness. Then the other direction: the shipped object types, after
// this PR's fixes, must produce zero error-level findings (the same gate CI
// runs through tools/analyze).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>

#include "analysis/analyzer.hpp"
#include "analysis/graph_lint.hpp"
#include "analysis/relation_audit.hpp"
#include "test_helpers.hpp"

namespace icecube {
namespace {

using analysis::AnalysisReport;
using analysis::Rule;
using analysis::Severity;
using testing::NopAction;
using testing::ScriptedObject;
using testing::make_log;

// ---------------------------------------------------------------------------
// Toy fixtures.

/// A token pool whose order() always claims `safe` — the canonical
/// unsound-safe fixture: two takes that each fit the pool alone can jointly
/// overdraw it, which `safe` promises cannot happen.
class LyingPool final : public SharedObject {
 public:
  explicit LyingPool(std::int64_t tokens) : tokens_(tokens) {}

  [[nodiscard]] std::unique_ptr<SharedObject> clone() const override {
    return std::make_unique<LyingPool>(*this);
  }
  [[nodiscard]] Constraint order(const Action&, const Action&,
                                 LogRelation) const override {
    return Constraint::kSafe;
  }
  [[nodiscard]] std::string describe() const override {
    return "pool=" + std::to_string(tokens_);
  }

  [[nodiscard]] std::int64_t tokens() const { return tokens_; }
  bool take(std::int64_t n) {
    if (tokens_ < n) return false;
    tokens_ -= n;
    return true;
  }

 private:
  std::int64_t tokens_;
};

class TakeAction final : public SimpleAction {
 public:
  TakeAction(ObjectId pool, std::int64_t n)
      : SimpleAction(Tag("take", {n}), {pool}), pool_(pool), n_(n) {}

  [[nodiscard]] bool precondition(const Universe& u) const override {
    return u.as<LyingPool>(pool_).tokens() >= n_;
  }
  bool execute(Universe& u) const override {
    return u.as<LyingPool>(pool_).take(n_);
  }

 private:
  ObjectId pool_;
  std::int64_t n_;
};

/// Audit subject around a ScriptedObject with always-succeeding actions:
/// the dynamic layer is totally permissive, so whatever the scripted
/// order() claims is judged purely on its own merits.
AuditSubject scripted_subject(std::string name, ScriptedObject::OrderFn fn) {
  AuditSubject s;
  s.name = std::move(name);
  s.make_universe = [fn] {
    Universe u;
    (void)u.add(std::make_unique<ScriptedObject>(fn));
    return u;
  };
  s.sample_action = [](const Universe&, Rng& rng) -> ActionPtr {
    return std::make_shared<NopAction>("nop" + std::to_string(rng.below(8)),
                                       std::vector<ObjectId>{ObjectId(0)});
  };
  return s;
}

bool has_rule(const AnalysisReport& report, Rule rule) {
  return std::any_of(
      report.diagnostics.begin(), report.diagnostics.end(),
      [rule](const analysis::Diagnostic& d) { return d.rule == rule; });
}

const analysis::Diagnostic& first_with_rule(const AnalysisReport& report,
                                            Rule rule) {
  for (const auto& d : report.diagnostics) {
    if (d.rule == rule) return d;
  }
  ADD_FAILURE() << "no diagnostic with rule " << analysis::to_string(rule);
  static const analysis::Diagnostic kEmpty{};
  return kEmpty;
}

// ---------------------------------------------------------------------------
// Relation auditor: each rule fires on its fixture, with the right witness.

TEST(RelationAudit, UnsoundSafeFiresOnLyingPool) {
  AuditSubject s;
  s.name = "lying_pool";
  s.make_universe = [] {
    Universe u;
    (void)u.add(std::make_unique<LyingPool>(5));
    return u;
  };
  s.sample_action = [](const Universe&, Rng& rng) -> ActionPtr {
    return std::make_shared<TakeAction>(
        ObjectId(0), static_cast<std::int64_t>(1 + rng.below(5)));
  };

  const AnalysisReport report = analysis::audit_subject(s);
  ASSERT_TRUE(has_rule(report, Rule::kUnsoundSafe)) << report.render(
      Severity::kInfo);
  const auto& d = first_with_rule(report, Rule::kUnsoundSafe);
  EXPECT_EQ(d.severity, Severity::kError);
  EXPECT_EQ(d.pass, "relation_audit");
  EXPECT_EQ(d.subject, "lying_pool");
  // The witness is a pair of takes plus the state they jointly overdraw.
  ASSERT_EQ(d.witness_actions.size(), 2u);
  EXPECT_TRUE(d.witness_actions[0].starts_with("take("));
  EXPECT_TRUE(d.witness_actions[1].starts_with("take("));
  EXPECT_FALSE(d.witness_state.empty());
  EXPECT_EQ(report.worst_severity(), Severity::kError);
}

TEST(RelationAudit, AsymmetryFiresOnSpuriousMutualConflict) {
  // Everything mutually unsafe, yet every action always succeeds: the
  // §4.4 spurious-conflict class.
  const AnalysisReport report = analysis::audit_subject(scripted_subject(
      "always_unsafe",
      [](const Action&, const Action&, LogRelation) {
        return Constraint::kUnsafe;
      }));
  ASSERT_TRUE(has_rule(report, Rule::kAsymmetry)) << report.render(
      Severity::kInfo);
  const auto& d = first_with_rule(report, Rule::kAsymmetry);
  EXPECT_EQ(d.severity, Severity::kWarning);
  EXPECT_EQ(d.witness_actions.size(), 2u);
  // Spurious conflicts also read as overconservative, but never as unsound.
  EXPECT_TRUE(has_rule(report, Rule::kOverconservativeUnsafe));
  EXPECT_FALSE(has_rule(report, Rule::kUnsoundSafe));
  EXPECT_EQ(report.worst_severity(), Severity::kWarning);
}

TEST(RelationAudit, MaybeDegenerateFiresOnAllMaybe) {
  const AnalysisReport report = analysis::audit_subject(scripted_subject(
      "all_maybe", [](const Action&, const Action&, LogRelation) {
        return Constraint::kMaybe;
      }));
  ASSERT_TRUE(has_rule(report, Rule::kMaybeDegenerate)) << report.render(
      Severity::kInfo);
  EXPECT_EQ(first_with_rule(report, Rule::kMaybeDegenerate).severity,
            Severity::kWarning);
  // `maybe` makes no static promise, so nothing else can fire.
  EXPECT_EQ(report.diagnostics.size(), 1u);
}

TEST(RelationAudit, NondeterminismFiresOnFlickeringOrder) {
  // Mutable call counter smuggled in via shared state: identical inputs,
  // alternating verdicts.
  auto counter = std::make_shared<int>(0);
  const AnalysisReport report = analysis::audit_subject(scripted_subject(
      "flicker",
      [counter](const Action&, const Action&, LogRelation) {
        return (++*counter % 2 == 0) ? Constraint::kSafe : Constraint::kMaybe;
      }));
  ASSERT_TRUE(has_rule(report, Rule::kNondeterminism)) << report.render(
      Severity::kInfo);
  const auto& d = first_with_rule(report, Rule::kNondeterminism);
  EXPECT_EQ(d.severity, Severity::kError);
  EXPECT_EQ(d.witness_actions.size(), 2u);
}

TEST(RelationAudit, CleanTypeProducesNoFindings) {
  // An honest relation over always-succeeding actions: `maybe` everywhere
  // would be degenerate, so script the true verdict — everything commutes.
  const AnalysisReport report = analysis::audit_subject(scripted_subject(
      "all_safe", [](const Action&, const Action&, LogRelation) {
        return Constraint::kSafe;
      }));
  EXPECT_TRUE(report.diagnostics.empty()) << report.render(Severity::kInfo);
  EXPECT_GT(report.stats.pairs_checked, 0u);
  EXPECT_GT(report.stats.executions, 0u);
}

// ---------------------------------------------------------------------------
// Graph linter.

TEST(GraphLint, DCycleFiresWithMinimalWitness) {
  // constraint(a, b) = unsafe means b must precede a; scripting everything
  // unsafe makes every pair mutually dependent — one SCC, minimal cycle 2.
  const AnalysisReport report = analysis::lint_subject(scripted_subject(
      "all_unsafe", [](const Action&, const Action&, LogRelation) {
        return Constraint::kUnsafe;
      }));
  ASSERT_TRUE(has_rule(report, Rule::kDCycle)) << report.render(
      Severity::kInfo);
  const auto& d = first_with_rule(report, Rule::kDCycle);
  EXPECT_EQ(d.pass, "graph_lint");
  EXPECT_EQ(d.witness_actions.size(), 2u);  // minimal cycle through the SCC
}

TEST(GraphLint, RedundantDEdgeFiresOnTransitiveChain) {
  // Want raw D edges 1→2, 2→3 and the redundant 1→3. Edge x→y ("x must
  // precede y") comes from constraint(y, x) = unsafe.
  Universe u;
  const ObjectId obj = u.add(std::make_unique<ScriptedObject>(
      [](const Action& a, const Action& b, LogRelation) {
        const std::string& pa = a.tag().op;
        const std::string& pb = b.tag().op;
        const bool unsafe = (pa == "n2" && pb == "n1") ||
                            (pa == "n3" && pb == "n2") ||
                            (pa == "n3" && pb == "n1");
        return unsafe ? Constraint::kUnsafe : Constraint::kMaybe;
      }));
  std::vector<Log> logs;
  logs.push_back(make_log("l1", {std::make_shared<NopAction>(
                                    "n1", std::vector<ObjectId>{obj})}));
  logs.push_back(make_log("l2", {std::make_shared<NopAction>(
                                    "n2", std::vector<ObjectId>{obj})}));
  logs.push_back(make_log("l3", {std::make_shared<NopAction>(
                                    "n3", std::vector<ObjectId>{obj})}));

  const AnalysisReport report = analysis::lint_problem(u, logs, "chain");
  ASSERT_TRUE(has_rule(report, Rule::kRedundantDEdge)) << report.render(
      Severity::kInfo);
  const auto& d = first_with_rule(report, Rule::kRedundantDEdge);
  EXPECT_EQ(d.severity, Severity::kInfo);
  // Witness: the redundant edge (n1 → n3) and the third action proving it.
  ASSERT_EQ(d.witness_actions.size(), 3u);
  EXPECT_EQ(d.witness_actions[0], "n1()");
  EXPECT_EQ(d.witness_actions[1], "n3()");
  EXPECT_EQ(d.witness_actions[2], "n2()");
  EXPECT_FALSE(has_rule(report, Rule::kDCycle));
}

TEST(GraphLint, DeadActionFiresOnUnsatisfiablePrecondition) {
  // A take larger than the pool can ever hold (no action adds tokens).
  Universe u;
  const ObjectId pool = u.add(std::make_unique<LyingPool>(5));
  std::vector<Log> logs;
  logs.push_back(
      make_log("l1", {std::make_shared<TakeAction>(pool, 2),
                      std::make_shared<TakeAction>(pool, 100)}));

  const AnalysisReport report = analysis::lint_problem(u, logs, "dead");
  ASSERT_TRUE(has_rule(report, Rule::kDeadAction)) << report.render(
      Severity::kInfo);
  const auto& d = first_with_rule(report, Rule::kDeadAction);
  ASSERT_EQ(d.witness_actions.size(), 1u);
  EXPECT_EQ(d.witness_actions[0], "take(100)");
}

TEST(GraphLint, MaybeDegenerateFiresOnInformationFreeGraph) {
  const AnalysisReport report = analysis::lint_subject(scripted_subject(
      "all_maybe", [](const Action&, const Action&, LogRelation) {
        return Constraint::kMaybe;
      }));
  ASSERT_TRUE(has_rule(report, Rule::kMaybeDegenerate)) << report.render(
      Severity::kInfo);
}

// ---------------------------------------------------------------------------
// Reporting plumbing.

TEST(Diagnostics, SeverityAccounting) {
  const AnalysisReport report = analysis::audit_subject(scripted_subject(
      "always_unsafe", [](const Action&, const Action&, LogRelation) {
        return Constraint::kUnsafe;
      }));
  ASSERT_FALSE(report.diagnostics.empty());
  EXPECT_EQ(report.count_at_least(Severity::kError), 0u);
  EXPECT_GT(report.count_at_least(Severity::kWarning), 0u);
  EXPECT_EQ(report.count_at_least(Severity::kInfo),
            report.diagnostics.size());
  // The text report honours the threshold.
  EXPECT_EQ(report.render(Severity::kError).find("ASYMMETRY"),
            std::string::npos);
  EXPECT_NE(report.render(Severity::kWarning).find("ASYMMETRY"),
            std::string::npos);
}

TEST(Diagnostics, JsonReportCarriesFindingsAndStats) {
  const AnalysisReport report = analysis::audit_subject(scripted_subject(
      "all_maybe", [](const Action&, const Action&, LogRelation) {
        return Constraint::kMaybe;
      }));
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"findings\""), std::string::npos);
  EXPECT_NE(json.find("\"MAYBE_DEGENERATE\""), std::string::npos);
  EXPECT_NE(json.find("\"stats\""), std::string::npos);
  EXPECT_NE(json.find("\"pairs_checked\""), std::string::npos);
}

TEST(Diagnostics, JsonEscapesControlCharacters) {
  EXPECT_EQ(analysis::json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(analysis::json_escape(std::string(1, '\x01')), "\\u0001");
}

// ---------------------------------------------------------------------------
// The gate: shipped types are clean at error level.

TEST(ShippedTypes, AuditorFindsNoErrorLevelFindings) {
  const AnalysisReport report = analysis::analyze_shipped();
  EXPECT_EQ(report.count_at_least(Severity::kError), 0u)
      << report.render(Severity::kError);
  // Every shipped subject was actually exercised.
  EXPECT_GT(report.stats.pairs_checked, 1000u);
  EXPECT_GT(report.stats.executions, 10000u);
}

TEST(ShippedTypes, SubjectRosterIsComplete) {
  const auto subjects = analysis::shipped_audit_subjects();
  std::vector<std::string> names;
  names.reserve(subjects.size());
  for (const auto& s : subjects) names.push_back(s.name);
  for (const char* expected :
       {"counter", "rw_register", "calendar", "line_file", "file_system",
        "text", "sysadmin", "jigsaw_semantic", "fages"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << "missing audit subject: " << expected;
  }
}

}  // namespace
}  // namespace icecube
