// Edge-case coverage across the engine: empty inputs, degenerate options,
// limit boundaries, multi-target actions, tie-breaking.
#include <gtest/gtest.h>

#include <memory>

#include "core/incremental.hpp"
#include "core/reconciler.hpp"
#include "objects/counter.hpp"
#include "objects/rw_register.hpp"
#include "test_helpers.hpp"

namespace icecube {
namespace {

using testing::make_log;
using testing::NopAction;
using testing::ScriptedObject;

TEST(EdgeCases, SingleEmptyLog) {
  Universe u;
  (void)u.add(std::make_unique<Counter>(0));
  std::vector<Log> logs;
  logs.emplace_back("empty");
  Reconciler r(u, logs);
  const auto result = r.run();
  ASSERT_TRUE(result.found_any());
  EXPECT_TRUE(result.best().complete);
  EXPECT_TRUE(result.best().schedule.empty());
}

TEST(EdgeCases, ManyEmptyLogs) {
  Universe u;
  (void)u.add(std::make_unique<Counter>(0));
  std::vector<Log> logs(5);
  Reconciler r(u, logs);
  EXPECT_TRUE(r.run().best().complete);
}

TEST(EdgeCases, SingleLogReconciliationReplaysIt) {
  Universe u;
  const ObjectId c = u.add(std::make_unique<Counter>(3));
  std::vector<Log> logs;
  logs.push_back(make_log("only", {std::make_shared<DecrementAction>(c, 1),
                                   std::make_shared<DecrementAction>(c, 2)}));
  Reconciler r(u, logs);
  const auto result = r.run();
  EXPECT_TRUE(result.best().complete);
  EXPECT_EQ(result.best().final_state.as<Counter>(c).value(), 0);
}

TEST(EdgeCases, ActionWithNoTargetsIsUniversallySafe) {
  Universe u;
  const ObjectId obj = u.add(std::make_unique<ScriptedObject>(
      [](const Action&, const Action&, LogRelation) {
        return Constraint::kUnsafe;
      }));
  std::vector<Log> logs;
  logs.push_back(make_log(
      "a", {std::make_shared<NopAction>("targetless", std::vector<ObjectId>{}),
            std::make_shared<NopAction>("targeted", std::vector{obj})}));
  Reconciler r(u, logs);
  // No common targets ⇒ safe both ways, despite the hostile order method.
  EXPECT_TRUE(r.relations().independent(ActionId(0), ActionId(1)));
  EXPECT_TRUE(r.relations().independent(ActionId(1), ActionId(0)));
}

TEST(EdgeCases, MaxStepsLimitStopsSearch) {
  Universe u;
  const ObjectId c = u.add(std::make_unique<Counter>(0));
  std::vector<Log> logs;
  for (int i = 0; i < 4; ++i) {
    logs.push_back(make_log("l" + std::to_string(i),
                            {std::make_shared<IncrementAction>(c, 1)}));
  }
  ReconcilerOptions opts;
  opts.heuristic = Heuristic::kAll;
  opts.limits.max_steps = 5;
  Reconciler r(u, logs, opts);
  const auto result = r.run();
  EXPECT_TRUE(result.stats.hit_limit);
  EXPECT_LE(result.stats.sim_steps, 6u);
}

TEST(EdgeCases, WallClockLimitStopsSearch) {
  Universe u;
  const ObjectId c = u.add(std::make_unique<Counter>(0));
  std::vector<Log> logs;
  for (int i = 0; i < 10; ++i) {
    logs.push_back(make_log("l" + std::to_string(i),
                            {std::make_shared<IncrementAction>(c, 1)}));
  }
  ReconcilerOptions opts;
  opts.heuristic = Heuristic::kAll;       // 10! schedules — far too many
  opts.limits.max_schedules = UINT64_MAX; // only the clock can stop it
  opts.limits.max_seconds = 0.05;
  Reconciler r(u, logs, opts);
  const auto result = r.run();
  EXPECT_TRUE(result.stats.hit_limit);
  EXPECT_LT(result.stats.elapsed_seconds, 5.0);  // stopped promptly
}

TEST(EdgeCases, KeepOutcomesZeroIsClampedToOne) {
  Universe u;
  const ObjectId c = u.add(std::make_unique<Counter>(0));
  std::vector<Log> logs;
  logs.push_back(make_log("a", {std::make_shared<IncrementAction>(c, 1)}));
  ReconcilerOptions opts;
  opts.keep_outcomes = 0;
  Reconciler r(u, logs, opts);
  const auto result = r.run();
  EXPECT_EQ(result.outcomes.size(), 1u);
}

TEST(EdgeCases, PartialOutcomesCanBeSuppressed) {
  Universe u;
  const ObjectId c = u.add(std::make_unique<Counter>(0));
  std::vector<Log> logs;
  logs.push_back(make_log("a", {std::make_shared<DecrementAction>(c, 1)}));
  ReconcilerOptions opts;
  opts.record_partial_outcomes = false;
  Reconciler r(u, logs, opts);
  const auto result = r.run();
  // The only branch dead-ends; with partial recording off, no outcome.
  EXPECT_FALSE(result.found_any());
  EXPECT_EQ(result.stats.dead_ends, 1u);
}

TEST(EdgeCases, StrictRandomSeedChangesPicksNotCorrectness) {
  Universe u;
  const ObjectId c = u.add(std::make_unique<Counter>(0));
  std::vector<Log> logs;
  for (int i = 0; i < 3; ++i) {
    logs.push_back(make_log("l" + std::to_string(i),
                            {std::make_shared<IncrementAction>(c, 1 << i)}));
  }
  for (const std::uint64_t seed : {0ull, 1ull, 2ull, 99ull}) {
    ReconcilerOptions opts;
    opts.heuristic = Heuristic::kStrict;
    opts.strict_pick_seed = seed;
    Reconciler r(u, logs, opts);
    const auto result = r.run();
    ASSERT_TRUE(result.found_any()) << "seed " << seed;
    EXPECT_TRUE(result.best().complete) << "seed " << seed;
    EXPECT_EQ(result.best().final_state.as<Counter>(c).value(), 7)
        << "seed " << seed;
  }
}

TEST(EdgeCases, MultiTargetActionBridgesObjects) {
  // An action targeting two registers is ordered by both order methods.
  Universe u;
  const ObjectId r1 = u.add(std::make_unique<RwRegister>(0));
  const ObjectId r2 = u.add(std::make_unique<RwRegister>(0));

  /// Writes both registers.
  class DoubleWrite final : public SimpleAction {
   public:
    DoubleWrite(ObjectId a, ObjectId b)
        : SimpleAction(Tag("write", {1}), {a, b}), a_(a), b_(b) {}
    [[nodiscard]] bool precondition(const Universe&) const override {
      return true;
    }
    bool execute(Universe& uu) const override {
      uu.as<RwRegister>(a_).write(1);
      uu.as<RwRegister>(b_).write(1);
      return true;
    }

   private:
    ObjectId a_, b_;
  };

  std::vector<Log> logs;
  logs.push_back(make_log("w", {std::make_shared<DoubleWrite>(r1, r2)}));
  logs.push_back(make_log("r", {std::make_shared<ReadAction>(r2)}));
  Reconciler r(u, logs);
  // write-before-read unsafe via the *common* target r2.
  EXPECT_TRUE(r.relations().depends(ActionId(1), ActionId(0)));
}

TEST(EdgeCases, SelectionPrefersCompleteOnEqualCost) {
  Universe u;
  const ObjectId c = u.add(std::make_unique<Counter>(0));
  std::vector<Log> logs;
  logs.push_back(make_log("a", {std::make_shared<IncrementAction>(c, 1)}));
  logs.push_back(make_log("b", {std::make_shared<DecrementAction>(c, 9)}));

  /// Flat cost: everything ties; completeness must break the tie.
  class FlatCost final : public Policy {
   public:
    double cost(const Outcome&) override { return 0; }
  };
  FlatCost policy;
  ReconcilerOptions opts;
  opts.heuristic = Heuristic::kAll;
  opts.failure_mode = FailureMode::kSkipAction;
  Reconciler r(u, logs, opts, &policy);
  const auto result = r.run();
  ASSERT_TRUE(result.found_any());
  EXPECT_TRUE(result.best().complete);
}

TEST(EdgeCases, IncrementalOnEmptyProblemFinishesImmediately) {
  Universe u;
  IncrementalReconciler inc(u, {}, {});
  const auto progress = inc.step(10);
  EXPECT_TRUE(progress.finished);
  EXPECT_TRUE(progress.has_best);  // the empty complete schedule
  const auto result = inc.take_result();
  EXPECT_TRUE(result.best().complete);
}

TEST(EdgeCases, DescribeEmptySchedule) {
  Universe u;
  Reconciler r(u, {});
  EXPECT_EQ(r.describe_schedule({}), "");
}

TEST(EdgeCases, UnnamedLogGetsNumericLabel) {
  Universe u;
  const ObjectId c = u.add(std::make_unique<Counter>(0));
  Log anonymous;  // no name
  anonymous.append(std::make_shared<IncrementAction>(c, 1));
  std::vector<Log> logs{anonymous};
  Reconciler r(u, logs);
  const auto result = r.run();
  const std::string text = r.describe_schedule(result.best().schedule);
  EXPECT_NE(text.find("log0:0"), std::string::npos);
}

}  // namespace
}  // namespace icecube
