// COW vs eager oracle equivalence (ReconcilerOptions::eager_state_copies).
//
// The copy-on-write universe must be a pure performance change: for the
// same problem, every reconciliation result — schedules, skipped and cut
// sets, costs, final-state fingerprints, search counters, best-so-far
// bookkeeping — is bit-for-bit identical whether shadow copies share slots
// or deep-clone every object. The sweep crosses generated workloads with
// thread counts {1, 8} and both failure modes; only the clone counters (the
// whole point of the change) are allowed to differ, and the COW side must
// actually avoid clones.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/reconciler.hpp"
#include "workload/generators.hpp"

namespace icecube {
namespace {

std::vector<std::size_t> indices(const std::vector<ActionId>& ids) {
  std::vector<std::size_t> out;
  out.reserve(ids.size());
  for (ActionId id : ids) out.push_back(id.index());
  return out;
}

ReconcileResult run(const workload::Generated& problem,
                    ReconcilerOptions options, bool eager) {
  options.eager_state_copies = eager;
  Reconciler reconciler(problem.initial, problem.logs, options);
  return reconciler.run();
}

/// Everything except wall-clock fields and the clone counters must match.
void expect_equivalent(const ReconcileResult& cow,
                       const ReconcileResult& eager,
                       const std::string& label) {
  SCOPED_TRACE(label);
  ASSERT_EQ(cow.outcomes.size(), eager.outcomes.size());
  for (std::size_t i = 0; i < cow.outcomes.size(); ++i) {
    SCOPED_TRACE("outcome " + std::to_string(i));
    const Outcome& a = cow.outcomes[i];
    const Outcome& b = eager.outcomes[i];
    EXPECT_EQ(indices(a.schedule), indices(b.schedule));
    EXPECT_EQ(indices(a.skipped), indices(b.skipped));
    EXPECT_EQ(indices(a.cutset), indices(b.cutset));
    EXPECT_EQ(a.complete, b.complete);
    EXPECT_EQ(a.cost, b.cost);
    EXPECT_EQ(a.degraded, b.degraded);
    EXPECT_EQ(a.final_state.fingerprint(), b.final_state.fingerprint());
    EXPECT_EQ(a.final_state.fingerprint_hash(),
              b.final_state.fingerprint_hash());
  }
  EXPECT_EQ(cow.degraded, eager.degraded);
  EXPECT_EQ(cow.stats.schedules_explored(), eager.stats.schedules_explored());
  EXPECT_EQ(cow.stats.schedules_completed, eager.stats.schedules_completed);
  EXPECT_EQ(cow.stats.dead_ends, eager.stats.dead_ends);
  EXPECT_EQ(cow.stats.sim_steps, eager.stats.sim_steps);
  EXPECT_EQ(cow.stats.state_clones, eager.stats.state_clones);
  EXPECT_EQ(cow.stats.precondition_failures,
            eager.stats.precondition_failures);
  EXPECT_EQ(cow.stats.execution_failures, eager.stats.execution_failures);
  EXPECT_EQ(cow.stats.memoized_failures, eager.stats.memoized_failures);
  EXPECT_EQ(cow.stats.prefix_prunes, eager.stats.prefix_prunes);
  EXPECT_EQ(cow.stats.hit_limit, eager.stats.hit_limit);
  EXPECT_EQ(cow.stats.schedules_to_best, eager.stats.schedules_to_best);
  EXPECT_EQ(cow.stats.cutset_count, eager.stats.cutset_count);
}

/// One problem through the whole grid: failure modes × thread counts, COW
/// against the eager oracle each time, plus COW thread-invariance.
void sweep(const workload::Generated& problem, const std::string& name,
           bool expect_sharing = true) {
  for (const FailureMode mode :
       {FailureMode::kAbortBranch, FailureMode::kSkipAction}) {
    ReconcilerOptions options;
    options.failure_mode = mode;
    options.limits.max_schedules = 3000;

    options.threads = 1;
    const ReconcileResult cow1 = run(problem, options, /*eager=*/false);
    const ReconcileResult eager1 = run(problem, options, /*eager=*/true);
    expect_equivalent(cow1, eager1,
                      name + "/" + std::string(to_string(mode)) + "/t1");

    options.threads = 8;
    const ReconcileResult cow8 = run(problem, options, /*eager=*/false);
    const ReconcileResult eager8 = run(problem, options, /*eager=*/true);
    expect_equivalent(cow8, eager8,
                      name + "/" + std::string(to_string(mode)) + "/t8");
    expect_equivalent(cow1, cow8,
                      name + "/" + std::string(to_string(mode)) + "/t1-vs-t8");

    if (expect_sharing) {
      // The COW run must actually share. Both modes take the same universe
      // copies, so every deep slot clone the eager oracle pays at copy time
      // is a pointer-shared slot on the COW side — exactly clones_avoided.
      // COW then re-clones only the slots writes actually detach, which is
      // strictly less than cloning everything up front.
      EXPECT_GT(cow1.stats.clones_avoided, 0u) << name;
      EXPECT_EQ(cow1.stats.clones_avoided, eager1.stats.object_clones) << name;
      EXPECT_LT(cow1.stats.object_clones, eager1.stats.object_clones) << name;
    }
  }
}

TEST(CowEquivalence, CounterWorkload) {
  workload::CounterSpec spec;
  spec.replicas = 3;
  spec.actions_per_replica = 4;
  spec.seed = 11;
  sweep(workload::counter_workload(spec), "counter");
}

TEST(CowEquivalence, FsWorkload) {
  workload::FsSpec spec;
  spec.replicas = 2;
  spec.actions_per_replica = 5;
  spec.seed = 7;
  sweep(workload::fs_workload(spec), "fs");
}

TEST(CowEquivalence, CalendarWorkload) {
  workload::CalendarSpec spec;
  spec.users = 3;
  spec.actions_per_user = 3;
  spec.seed = 3;
  sweep(workload::calendar_workload(spec), "calendar");
}

TEST(CowEquivalence, TextWorkload) {
  workload::TextSpec spec;
  spec.replicas = 2;
  spec.actions_per_replica = 4;
  spec.seed = 5;
  sweep(workload::text_workload(spec), "text");
}

TEST(CowEquivalence, LineWorkloadWithMemoization) {
  workload::LineSpec spec;
  spec.replicas = 2;
  spec.actions_per_replica = 4;
  spec.seed = 9;
  workload::Generated problem = workload::line_workload(spec);
  for (const bool memoize : {false, true}) {
    ReconcilerOptions options;
    options.memoize_failures = memoize;
    options.limits.max_schedules = 3000;
    const ReconcileResult cow = run(problem, options, /*eager=*/false);
    const ReconcileResult eager = run(problem, options, /*eager=*/true);
    expect_equivalent(cow, eager,
                      memoize ? "line/memoize" : "line/plain");
  }
}

// Tight budgets exercise the degrade fallback and limit bookkeeping under
// both modes.
TEST(CowEquivalence, BudgetExhaustionAndDegrade) {
  workload::CounterSpec spec;
  spec.replicas = 3;
  spec.actions_per_replica = 5;
  spec.seed = 21;
  const workload::Generated problem = workload::counter_workload(spec);
  ReconcilerOptions options;
  options.limits.max_schedules = 10;
  options.degrade_on_exhaustion = true;
  const ReconcileResult cow = run(problem, options, /*eager=*/false);
  const ReconcileResult eager = run(problem, options, /*eager=*/true);
  expect_equivalent(cow, eager, "degrade");
}

}  // namespace
}  // namespace icecube
