// Tests for the command-line tool: demo generation, file inspection,
// end-to-end reconciliation with options, error paths.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>

#include "cli/cli.hpp"
#include "objects/counter.hpp"
#include "serialize/log_codec.hpp"
#include "test_helpers.hpp"

namespace icecube {
namespace {

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("icecube-cli-test-" + std::to_string(::getpid()) + "-" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }
  void write(const std::string& name, const std::string& content) const {
    std::ofstream out(path(name));
    out << content;
  }

  int run(std::vector<std::string> args) {
    out_.str("");
    err_.str("");
    return cli::run(args, out_, err_);
  }

  std::filesystem::path dir_;
  std::ostringstream out_, err_;
};

TEST_F(CliTest, NoArgsPrintsUsage) {
  EXPECT_NE(run({}), 0);
  EXPECT_NE(err_.str().find("usage"), std::string::npos);
}

TEST_F(CliTest, UnknownCommandFails) {
  EXPECT_NE(run({"frobnicate"}), 0);
  EXPECT_NE(err_.str().find("unknown command"), std::string::npos);
}

TEST_F(CliTest, DemoBankEmitsUniverse) {
  ASSERT_EQ(run({"demo", "bank"}), 0);
  EXPECT_NE(out_.str().find("icecube-universe 2"), std::string::npos);
  EXPECT_NE(out_.str().find("counter 100"), std::string::npos);
}

TEST_F(CliTest, DemoUnknownNameFails) {
  EXPECT_NE(run({"demo", "nonsense"}), 0);
}

TEST_F(CliTest, ShowUniverseAndLog) {
  ASSERT_EQ(run({"demo", "sysadmin"}), 0);
  write("u.txt", out_.str());
  ASSERT_EQ(run({"show", path("u.txt")}), 0);
  EXPECT_NE(out_.str().find("budget=1000"), std::string::npos);

  const Log log = testing::make_log(
      "alice", {std::make_shared<IncrementAction>(ObjectId(1), 5)});
  write("l.txt", encode_log(log));
  ASSERT_EQ(run({"show", path("l.txt")}), 0);
  EXPECT_NE(out_.str().find("alice"), std::string::npos);
  EXPECT_NE(out_.str().find("increment(5)"), std::string::npos);
}

TEST_F(CliTest, ShowRejectsGarbage) {
  write("junk.txt", "not an icecube file\n");
  EXPECT_NE(run({"show", path("junk.txt")}), 0);
}

TEST_F(CliTest, ShowMissingFileFails) {
  EXPECT_NE(run({"show", path("absent.txt")}), 0);
  EXPECT_NE(err_.str().find("cannot open"), std::string::npos);
}

TEST_F(CliTest, ReconcileEndToEnd) {
  // Bank universe; two logs whose naive order overdrafts.
  ASSERT_EQ(run({"demo", "bank"}), 0);
  write("u.txt", out_.str());
  write("a.txt",
        "icecube-log 1 a\ndecrement | 0 | 120 |\nincrement | 0 | 200 |\n");
  write("b.txt", "icecube-log 1 b\ndecrement | 0 | 150 |\n");

  ASSERT_EQ(run({"reconcile", path("u.txt"), path("a.txt"), path("b.txt"),
                 "--heuristic", "all", "--save", path("merged.txt")}),
            0)
      << err_.str();
  // 100 + 200 - 120 - 150 = 30, all four actions placed.
  EXPECT_NE(out_.str().find("complete"), std::string::npos);
  EXPECT_NE(out_.str().find("counter=30"), std::string::npos);
  EXPECT_NE(out_.str().find("merged universe written"), std::string::npos);

  // The saved universe loads back.
  ASSERT_EQ(run({"show", path("merged.txt")}), 0);
  EXPECT_NE(out_.str().find("counter=30"), std::string::npos);
}

TEST_F(CliTest, ReconcileSkipFailedDropsDoomedActions) {
  ASSERT_EQ(run({"demo", "bank"}), 0);
  write("u.txt", out_.str());
  write("a.txt", "icecube-log 1 a\ndecrement | 0 | 500 |\n");
  ASSERT_EQ(run({"reconcile", path("u.txt"), path("a.txt"), "--skip-failed"}),
            0)
      << err_.str();
  EXPECT_NE(out_.str().find("1 dropped"), std::string::npos);
  EXPECT_NE(out_.str().find("counter=100"), std::string::npos);
}

TEST_F(CliTest, ReconcileDotPrintsGraph) {
  ASSERT_EQ(run({"demo", "bank"}), 0);
  write("u.txt", out_.str());
  write("a.txt", "icecube-log 1 a\nincrement | 0 | 5 |\n");
  write("b.txt", "icecube-log 1 b\ndecrement | 0 | 5 |\n");
  ASSERT_EQ(
      run({"reconcile", path("u.txt"), path("a.txt"), path("b.txt"), "--dot"}),
      0);
  EXPECT_NE(out_.str().find("digraph icecube_relations"), std::string::npos);
}

TEST_F(CliTest, ReconcileRejectsBadOption) {
  ASSERT_EQ(run({"demo", "bank"}), 0);
  write("u.txt", out_.str());
  write("a.txt", "icecube-log 1 a\nincrement | 0 | 5 |\n");
  EXPECT_NE(
      run({"reconcile", path("u.txt"), path("a.txt"), "--frobnicate"}), 0);
  EXPECT_NE(
      run({"reconcile", path("u.txt"), path("a.txt"), "--heuristic", "x"}),
      0);
}

TEST_F(CliTest, ReconcileRejectsCorruptLog) {
  ASSERT_EQ(run({"demo", "bank"}), 0);
  write("u.txt", out_.str());
  write("bad.txt", "icecube-log 1 a\nwat | | |\n");
  EXPECT_NE(run({"reconcile", path("u.txt"), path("bad.txt")}), 0);
  EXPECT_NE(err_.str().find("wat"), std::string::npos);
}

TEST_F(CliTest, ReconcileRejectsOutOfRangeTarget) {
  // A well-formed log aimed at an object the universe does not have must
  // fail cleanly, not crash inside the constraint builder.
  ASSERT_EQ(run({"demo", "bank"}), 0);
  write("u.txt", out_.str());
  write("a.txt", "icecube-log 1 a\nincrement | 7 | 5 |\n");
  EXPECT_NE(run({"reconcile", path("u.txt"), path("a.txt")}), 0);
  EXPECT_NE(err_.str().find("targets object 7"), std::string::npos);
}

TEST_F(CliTest, ReconcileRejectsMalformedLimitFlags) {
  ASSERT_EQ(run({"demo", "bank"}), 0);
  write("u.txt", out_.str());
  write("a.txt", "icecube-log 1 a\nincrement | 0 | 5 |\n");
  EXPECT_NE(run({"reconcile", path("u.txt"), path("a.txt"), "--deadline",
                 "abc"}),
            0);
  EXPECT_NE(err_.str().find("--deadline"), std::string::npos);
  EXPECT_NE(run({"reconcile", path("u.txt"), path("a.txt"),
                 "--max-schedules", "10x"}),
            0);
  EXPECT_NE(err_.str().find("--max-schedules"), std::string::npos);
}

TEST_F(CliTest, ReconcileMaxSchedulesIsHonoured) {
  ASSERT_EQ(run({"demo", "bank"}), 0);
  write("u.txt", out_.str());
  std::string log = "icecube-log 1 a\n";
  for (int i = 0; i < 6; ++i) log += "increment | 0 | 1 |\n";
  write("a.txt", log);
  // Six separate logs would explode; one log chains — use --heuristic all
  // with a single log and a tiny cap to exercise the limit path.
  ASSERT_EQ(run({"reconcile", path("u.txt"), path("a.txt"),
                 "--max-schedules", "1", "--heuristic", "all"}),
            0)
      << err_.str();
  EXPECT_NE(out_.str().find("1 schedules explored"), std::string::npos);
}

}  // namespace
}  // namespace icecube
