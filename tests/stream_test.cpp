// Streaming reconciler daemon (DESIGN.md §15).
//
// The contract under test: a StreamReconciler fed the same logs as a batch
// `Reconciler::run()` — in ANY per-log-order-preserving interleaving, with
// ANY epoch batch size, under either backend — finishes with the identical
// merged schedule, statuses and final state. Plus the commit discipline
// (greedy + replica-at-a-time arrival never violates a commitment), the
// incremental constraint graph's element-for-element equality with the
// batch builder, the threaded daemon, and streaming-capture replay.
#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "capture/capture_sink.hpp"
#include "capture/replay_engine.hpp"
#include "capture/wire_log_format.hpp"
#include "core/reconciler.hpp"
#include "solver/components.hpp"
#include "solver/graph.hpp"
#include "solver/local_search.hpp"
#include "stream/daemon.hpp"
#include "stream/stream_spec_codec.hpp"
#include "util/rng.hpp"
#include "workload/generators.hpp"

namespace icecube {
namespace {

using workload::FagesSpec;
using workload::Generated;
using workload::fages_workload;

struct Arrival {
  LogId log;
  ActionPtr action;
};

/// Interleaves the generated logs into one ingest stream. Per-log order is
/// always preserved; the cross-log order is the adversarial knob.
std::vector<Arrival> make_arrivals(const Generated& gen, StreamArrival mode,
                                   std::uint64_t seed = 42) {
  std::vector<Arrival> out;
  std::vector<std::size_t> next(gen.logs.size(), 0);
  std::size_t total = 0;
  for (const Log& log : gen.logs) total += log.size();
  out.reserve(total);
  switch (mode) {
    case StreamArrival::kFlatten:
      for (std::size_t l = 0; l < gen.logs.size(); ++l) {
        for (std::size_t p = 0; p < gen.logs[l].size(); ++p) {
          out.push_back({LogId(static_cast<std::uint32_t>(l)),
                         gen.logs[l].ptr(p)});
        }
      }
      break;
    case StreamArrival::kRoundRobin:
      for (std::size_t taken = 0; taken < total;) {
        for (std::size_t l = 0; l < gen.logs.size(); ++l) {
          if (next[l] >= gen.logs[l].size()) continue;
          out.push_back({LogId(static_cast<std::uint32_t>(l)),
                         gen.logs[l].ptr(next[l]++)});
          ++taken;
        }
      }
      break;
    case StreamArrival::kShuffled: {
      Rng rng(seed);
      for (std::size_t taken = 0; taken < total; ++taken) {
        std::uint64_t pick = rng.below(total - taken);
        for (std::size_t l = 0; l < gen.logs.size(); ++l) {
          const std::size_t remaining = gen.logs[l].size() - next[l];
          if (pick < remaining) {
            out.push_back({LogId(static_cast<std::uint32_t>(l)),
                           gen.logs[l].ptr(next[l]++)});
            break;
          }
          pick -= remaining;
        }
      }
      break;
    }
  }
  return out;
}

/// A run reduced to canonical, id-space-free form: executed actions as
/// stream-priority keys in schedule order, everything else as a sorted key
/// set, and the final-state digest.
struct CanonicalRun {
  std::vector<std::uint64_t> executed;
  std::vector<std::uint64_t> not_executed;
  std::uint64_t state_digest = 0;
};

CanonicalRun run_batch(const Generated& gen, SolverKind backend) {
  ReconcilerOptions options;
  options.backend = backend;
  // Force the sparse component-decomposed path regardless of problem size;
  // that is the construction the daemon's equivalence contract names.
  options.dense_graph_limit = 0;
  Reconciler reconciler(gen.initial, gen.logs, options);
  const ReconcileResult result = reconciler.run();
  EXPECT_FALSE(result.outcomes.empty());
  const Outcome& best = result.outcomes.front();
  const std::vector<ActionRecord>& records = reconciler.records();
  CanonicalRun run;
  for (ActionId id : best.schedule) {
    run.executed.push_back(stream_priority(records[id.index()]));
  }
  for (ActionId id : best.skipped) {
    run.not_executed.push_back(stream_priority(records[id.index()]));
  }
  for (ActionId id : best.cutset) {
    run.not_executed.push_back(stream_priority(records[id.index()]));
  }
  std::sort(run.not_executed.begin(), run.not_executed.end());
  run.state_digest = universe_state_digest(best.final_state);
  return run;
}

CanonicalRun canonical(const StreamResult& result,
                       const std::vector<ActionRecord>& records) {
  CanonicalRun run;
  for (std::size_t i = 0; i < result.sequence.size(); ++i) {
    const std::uint64_t key =
        stream_priority(records[result.sequence[i].index()]);
    if (result.status[i] == RunStatus::kExecuted) {
      run.executed.push_back(key);
    } else {
      run.not_executed.push_back(key);
    }
  }
  std::sort(run.not_executed.begin(), run.not_executed.end());
  run.state_digest = universe_state_digest(result.outcome.final_state);
  return run;
}

struct CoreRun {
  CanonicalRun canon;
  StreamCounters counters;
  std::vector<CommitEntry> committed;
  std::vector<std::uint64_t> keys;  ///< daemon id -> stream priority
  std::vector<RunStatus> final_status;  ///< daemon id -> merged status
  std::uint64_t latency_count = 0;
};

CoreRun run_core(const Generated& gen, const std::vector<Arrival>& arrivals,
                 SolverKind backend, std::size_t batch) {
  StreamOptions options;
  options.backend = backend;
  StreamReconciler core(gen.initial, options);
  std::size_t since_epoch = 0;
  for (const Arrival& a : arrivals) {
    core.ingest(a.log, a.action);
    if (batch > 0 && ++since_epoch >= batch) {
      core.run_epoch();
      since_epoch = 0;
    }
  }
  if (batch > 0) core.run_epoch();
  const StreamResult result = core.finish();
  CoreRun run;
  run.canon = canonical(result, core.graph().records());
  run.counters = core.counters();
  run.committed = core.committed();
  run.latency_count = core.commit_latency().count();
  for (const ActionRecord& rec : core.graph().records()) {
    run.keys.push_back(stream_priority(rec));
  }
  run.final_status.resize(result.sequence.size(), RunStatus::kDropped);
  for (std::size_t i = 0; i < result.sequence.size(); ++i) {
    run.final_status[result.sequence[i].index()] = result.status[i];
  }
  return run;
}

// --- equivalence with batch reconciliation --------------------------------

TEST(StreamEquivalence, AnyArrivalAnyBatchAnyBackendMatchesBatch) {
  FagesSpec spec;
  spec.seed = 7;
  const Generated gen = fages_workload(spec);
  const StreamArrival kModes[] = {StreamArrival::kFlatten,
                                  StreamArrival::kRoundRobin,
                                  StreamArrival::kShuffled};
  const std::size_t kBatches[] = {1, 7, 64, 0};
  for (SolverKind backend : {SolverKind::kGreedy, SolverKind::kLocalSearch}) {
    const CanonicalRun batch = run_batch(gen, backend);
    EXPECT_FALSE(batch.executed.empty());
    for (StreamArrival mode : kModes) {
      for (std::size_t epoch_batch : kBatches) {
        SCOPED_TRACE(std::string(to_string(backend)) + "/" +
                     std::string(to_string(mode)) + "/batch=" +
                     std::to_string(epoch_batch));
        const CoreRun stream =
            run_core(gen, make_arrivals(gen, mode), backend, epoch_batch);
        EXPECT_EQ(stream.canon.executed, batch.executed);
        EXPECT_EQ(stream.canon.not_executed, batch.not_executed);
        EXPECT_EQ(stream.canon.state_digest, batch.state_digest);
        EXPECT_EQ(stream.counters.ingested, stream.keys.size());
      }
    }
  }
}

TEST(StreamEquivalence, MultipleSeedsAndShapes) {
  for (std::uint64_t seed : {1ULL, 3ULL, 11ULL}) {
    FagesSpec spec;
    spec.seed = seed;
    spec.replicas = 4;
    spec.tasks_per_replica = 25;
    spec.conflict_ratio = 0.4;
    const Generated gen = fages_workload(spec);
    const CanonicalRun batch = run_batch(gen, SolverKind::kGreedy);
    const CoreRun stream = run_core(
        gen, make_arrivals(gen, StreamArrival::kShuffled, seed * 77 + 1),
        SolverKind::kGreedy, 5);
    SCOPED_TRACE("seed=" + std::to_string(seed));
    EXPECT_EQ(stream.canon.executed, batch.executed);
    EXPECT_EQ(stream.canon.not_executed, batch.not_executed);
    EXPECT_EQ(stream.canon.state_digest, batch.state_digest);
  }
}

// --- commit discipline ----------------------------------------------------

TEST(StreamCommit, GreedyFlattenNeverViolatesACommitment) {
  FagesSpec spec;
  spec.seed = 5;
  const Generated gen = fages_workload(spec);
  const CoreRun run = run_core(gen, make_arrivals(gen, StreamArrival::kFlatten),
                               SolverKind::kGreedy, 1);
  EXPECT_EQ(run.counters.commit_violations, 0u);
  // Replica-at-a-time arrival keeps priorities ascending, so every arrival
  // takes the O(1) append path; the full-resolve counter stays at zero.
  EXPECT_EQ(run.counters.full_resolves, 0u);
  EXPECT_EQ(run.counters.fast_appends, run.counters.ingested);
  // Everything commits (at the latest in finish), exactly once.
  EXPECT_EQ(run.committed.size(), run.counters.ingested);
  EXPECT_EQ(run.counters.committed, run.counters.ingested);
  EXPECT_EQ(run.latency_count, run.counters.ingested);
}

TEST(StreamCommit, CommittedLogEqualsFinalMergeUnderGreedyFlatten) {
  FagesSpec spec;
  spec.seed = 9;
  const Generated gen = fages_workload(spec);
  const CoreRun run = run_core(gen, make_arrivals(gen, StreamArrival::kFlatten),
                               SolverKind::kGreedy, 4);
  // The committed prefix, replayed in commitment order, is the final merged
  // sequence — same actions, same order, same statuses.
  ASSERT_EQ(run.committed.size(), run.canon.executed.size() +
                                      run.canon.not_executed.size());
  std::vector<std::uint64_t> committed_executed;
  for (const CommitEntry& entry : run.committed) {
    EXPECT_EQ(entry.status, run.final_status[entry.id.index()]);
    if (entry.status == RunStatus::kExecuted) {
      committed_executed.push_back(run.keys[entry.id.index()]);
    }
  }
  EXPECT_EQ(committed_executed, run.canon.executed);
}

TEST(StreamCommit, ViolationsAreCountedNotHidden) {
  // Adversarial arrival (shuffled, tiny batches) may flip statuses after
  // commitment; the daemon must count those flips, never crash, and still
  // converge to the batch answer (checked by the equivalence suite). Here:
  // every ingested action ends up committed exactly once.
  FagesSpec spec;
  spec.seed = 13;
  const Generated gen = fages_workload(spec);
  const CoreRun run =
      run_core(gen, make_arrivals(gen, StreamArrival::kShuffled, 99),
               SolverKind::kGreedy, 1);
  EXPECT_EQ(run.committed.size(), run.counters.ingested);
  EXPECT_EQ(run.counters.committed, run.counters.ingested);
  // Each action commits exactly once; a commitment the final merge
  // contradicts must be accounted as a violation (a promise may be broken,
  // but never silently).
  std::vector<int> seen(run.keys.size(), 0);
  std::uint64_t broken = 0;
  for (const CommitEntry& entry : run.committed) {
    EXPECT_EQ(++seen[entry.id.index()], 1);
    if (entry.status != run.final_status[entry.id.index()]) ++broken;
  }
  EXPECT_LE(broken, run.counters.commit_violations);
}

// --- incremental constraint graph ----------------------------------------

TEST(IncrementalGraph, MatchesBatchBuilderUnderInterleavedArrival) {
  FagesSpec spec;
  spec.seed = 21;
  const Generated gen = fages_workload(spec);
  for (StreamArrival mode :
       {StreamArrival::kRoundRobin, StreamArrival::kShuffled}) {
    SCOPED_TRACE(std::string(to_string(mode)));
    const std::vector<Arrival> arrivals = make_arrivals(gen, mode, 17);
    IncrementalConstraintGraph incremental(gen.initial);
    std::vector<ActionRecord> records;
    std::vector<std::size_t> next(gen.logs.size(), 0);
    for (const Arrival& a : arrivals) {
      const std::size_t pos = next[a.log.index()]++;
      incremental.add_action(a.action, a.log, pos);
      records.push_back({a.action, a.log, pos});
    }
    ConstraintBuildStats batch_stats;
    const SolverGraph batch =
        build_solver_graph(gen.initial, records, &batch_stats);
    const SolverGraph& inc = incremental.graph();
    ASSERT_EQ(inc.n, batch.n);
    for (std::size_t i = 0; i < batch.n; ++i) {
      EXPECT_EQ(inc.preds[i], batch.preds[i]) << "preds of " << i;
      EXPECT_EQ(inc.succs[i], batch.succs[i]) << "succs of " << i;
      EXPECT_EQ(inc.overlap_lists[i], batch.overlap_lists[i])
          << "overlap of " << i;
    }
    // Same pair evaluations as the batch builder — the O(overlap) claim.
    EXPECT_EQ(incremental.build_stats().pairs_evaluated,
              batch_stats.pairs_evaluated);
    EXPECT_EQ(incremental.build_stats().target_set_builds,
              batch_stats.target_set_builds);
  }
}

TEST(IncrementalGraph, DirtyRootsCoverExactlyTheTouchedComponents) {
  FagesSpec spec;
  spec.seed = 2;
  spec.replicas = 2;
  spec.tasks_per_replica = 10;
  const Generated gen = fages_workload(spec);
  IncrementalConstraintGraph graph(gen.initial);
  std::vector<std::size_t> next(gen.logs.size(), 0);
  const std::vector<Arrival> arrivals =
      make_arrivals(gen, StreamArrival::kFlatten);
  std::size_t added = 0;
  for (const Arrival& a : arrivals) {
    graph.add_action(a.action, a.log, next[a.log.index()]++);
    ++added;
    if (added % 5 == 0) {
      const std::vector<ActionId> dirty = graph.take_dirty_roots();
      EXPECT_FALSE(dirty.empty());
      for (ActionId root : dirty) {
        EXPECT_EQ(graph.component_root(root), root);
      }
      // Drained: nothing dirty until the next arrival.
      EXPECT_TRUE(graph.take_dirty_roots().empty());
    }
  }
}

// --- the threaded daemon --------------------------------------------------

TEST(StreamDaemon, ThreadedIngestMatchesBatch) {
  FagesSpec spec;
  spec.seed = 31;
  const Generated gen = fages_workload(spec);
  const CanonicalRun batch = run_batch(gen, SolverKind::kGreedy);
  StreamOptions options;
  StreamDaemon daemon(gen.initial, options, /*max_batch=*/32);
  for (const Arrival& a : make_arrivals(gen, StreamArrival::kFlatten)) {
    daemon.submit(a.log, a.action);
  }
  const StreamResult result = daemon.finish();
  const CanonicalRun streamed =
      canonical(result, daemon.reconciler().graph().records());
  EXPECT_EQ(streamed.executed, batch.executed);
  EXPECT_EQ(streamed.not_executed, batch.not_executed);
  EXPECT_EQ(streamed.state_digest, batch.state_digest);
  EXPECT_GT(daemon.reconciler().counters().epochs, 0u);
}

// --- spec codec and capture replay ---------------------------------------

TEST(StreamCodec, SpecRoundTripsThroughWireText) {
  StreamSpec spec;
  spec.workload.replicas = 5;
  spec.workload.tasks_per_replica = 17;
  spec.workload.dependency_density = 2.25;
  spec.workload.conflict_ratio = 0.375;
  spec.workload.shared_resources = 3;
  spec.workload.resource_capacity = 2;
  spec.workload.seed = 77;
  spec.backend = SolverKind::kLocalSearch;
  spec.arrival = StreamArrival::kShuffled;
  spec.arrival_seed = 123;
  spec.batch = 9;
  spec.commit_quiescence = 3;
  const StreamSpecDecode decoded = decode_stream_spec(encode_stream_spec(spec));
  ASSERT_TRUE(decoded.ok()) << decoded.error.message();
  EXPECT_EQ(encode_stream_spec(decoded.spec), encode_stream_spec(spec));
  EXPECT_EQ(decoded.spec.backend, SolverKind::kLocalSearch);
  EXPECT_EQ(decoded.spec.arrival, StreamArrival::kShuffled);
  EXPECT_EQ(decoded.spec.batch, 9u);
}

TEST(StreamCodec, RejectsGarbage) {
  EXPECT_FALSE(decode_stream_spec("").ok());
  EXPECT_FALSE(decode_stream_spec("chaos-spec 1\n").ok());
  EXPECT_FALSE(decode_stream_spec("stream-spec 2\n").ok());
  EXPECT_FALSE(decode_stream_spec("stream-spec 1\nbackend dfs9\n").ok());
}

std::string capture_bytes(const std::vector<CaptureRecord>& records) {
  std::string bytes = encode_capture_header();
  for (const CaptureRecord& record : records) {
    append_capture_frame(bytes, record);
  }
  return bytes;
}

TEST(StreamCapture, CapturedRunReplaysFaithfully) {
  StreamSpec spec;
  spec.workload.tasks_per_replica = 15;
  spec.arrival = StreamArrival::kShuffled;
  spec.batch = 8;
  MemoryCaptureSink sink;
  const StreamRunReport report = run_stream_captured(spec, sink);
  ASSERT_FALSE(sink.records().empty());
  EXPECT_EQ(sink.records().front().kind, CaptureRecordKind::kSpec);
  EXPECT_EQ(sink.records().back().kind, CaptureRecordKind::kSummary);
  const ReplayResult replay = replay_capture(capture_bytes(sink.records()), {});
  EXPECT_TRUE(replay.error.ok()) << replay.error.message();
  EXPECT_TRUE(replay.faithful())
      << (replay.divergence ? replay.divergence->to_json() : "crc mismatch");
  EXPECT_EQ(replay.frames_compared, replay.recorded_frames);
  EXPECT_TRUE(replay.crc_checked);
  EXPECT_TRUE(replay.crc_match);
  EXPECT_EQ(replay.report.trace_crc, report.trace_crc);
}

TEST(StreamCapture, TamperedFrameIsFlaggedAsDivergent) {
  StreamSpec spec;
  spec.workload.tasks_per_replica = 10;
  MemoryCaptureSink sink;
  (void)run_stream_captured(spec, sink);
  std::vector<CaptureRecord> records = sink.take();
  // Flip one recorded ingest payload; the re-run regenerates the true one.
  bool tampered = false;
  for (CaptureRecord& record : records) {
    if (record.kind == CaptureRecordKind::kAction) {
      record.payload += " tampered";
      tampered = true;
      break;
    }
  }
  ASSERT_TRUE(tampered);
  const ReplayResult replay = replay_capture(capture_bytes(records), {});
  EXPECT_TRUE(replay.error.ok()) << replay.error.message();
  EXPECT_FALSE(replay.faithful());
  ASSERT_TRUE(replay.divergence.has_value());
}

TEST(StreamCapture, LocalSearchBackendReplaysFaithfully) {
  StreamSpec spec;
  spec.workload.tasks_per_replica = 12;
  spec.backend = SolverKind::kLocalSearch;
  spec.arrival = StreamArrival::kRoundRobin;
  spec.batch = 16;
  MemoryCaptureSink sink;
  (void)run_stream_captured(spec, sink);
  const ReplayResult replay = replay_capture(capture_bytes(sink.records()), {});
  EXPECT_TRUE(replay.faithful())
      << (replay.divergence ? replay.divergence->to_json() : "crc mismatch");
}

}  // namespace
}  // namespace icecube
