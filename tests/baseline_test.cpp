// Tests for the predetermined-order merge baseline (Bayou-style, §1.1/§5):
// order construction, conflict counting, and the comparisons the paper
// draws against it.
#include <gtest/gtest.h>

#include <memory>

#include "baseline/temporal_merge.hpp"
#include "core/reconciler.hpp"
#include "jigsaw/experiment.hpp"
#include "objects/counter.hpp"
#include "test_helpers.hpp"

namespace icecube {
namespace {

using testing::make_log;

TEST(TemporalMerge, ConcatenateRunsLogsInOrder) {
  Universe u;
  const ObjectId c = u.add(std::make_unique<Counter>(0));
  std::vector<Log> logs;
  logs.push_back(make_log("a", {std::make_shared<IncrementAction>(c, 1),
                                std::make_shared<IncrementAction>(c, 2)}));
  logs.push_back(make_log("b", {std::make_shared<IncrementAction>(c, 4)}));
  const MergeReport report = temporal_merge(u, logs, MergeOrder::kConcatenate);
  EXPECT_EQ(report.applied, 3u);
  EXPECT_EQ(report.conflicts, 0u);
  EXPECT_EQ(report.attempted,
            (std::vector<ActionId>{ActionId(0), ActionId(1), ActionId(2)}));
  EXPECT_EQ(report.final_state.as<Counter>(c).value(), 7);
}

TEST(TemporalMerge, RoundRobinAlternatesPositions) {
  Universe u;
  const ObjectId c = u.add(std::make_unique<Counter>(0));
  std::vector<Log> logs;
  logs.push_back(make_log("a", {std::make_shared<IncrementAction>(c, 1),
                                std::make_shared<IncrementAction>(c, 2)}));
  logs.push_back(make_log("b", {std::make_shared<IncrementAction>(c, 4),
                                std::make_shared<IncrementAction>(c, 8),
                                std::make_shared<IncrementAction>(c, 16)}));
  const MergeReport report = temporal_merge(u, logs, MergeOrder::kRoundRobin);
  // a0 b0 a1 b1 b2 (flattened ids: a=0,1; b=2,3,4).
  EXPECT_EQ(report.attempted,
            (std::vector<ActionId>{ActionId(0), ActionId(2), ActionId(1),
                                   ActionId(3), ActionId(4)}));
  EXPECT_EQ(report.applied, 5u);
}

TEST(TemporalMerge, CountsConflictsAndContinues) {
  // Bayou-style: a failed action is dropped (mergeproc would fire), the
  // rest still replay.
  Universe u;
  const ObjectId c = u.add(std::make_unique<Counter>(0));
  std::vector<Log> logs;
  logs.push_back(make_log("a", {std::make_shared<DecrementAction>(c, 5),
                                std::make_shared<IncrementAction>(c, 2)}));
  const MergeReport report = temporal_merge(u, logs, MergeOrder::kConcatenate);
  EXPECT_EQ(report.conflicts, 1u);
  EXPECT_EQ(report.applied, 1u);
  EXPECT_EQ(report.final_state.as<Counter>(c).value(), 2);
}

TEST(TemporalMerge, FailedExecutionLeavesStateUntouched) {
  // A failing operation must not half-apply (shadow-copy discipline).
  Universe u;
  const ObjectId c = u.add(std::make_unique<Counter>(3));
  std::vector<Log> logs;
  // Precondition passes at merge time for both, but after the first runs,
  // the second's precondition fails cleanly.
  logs.push_back(make_log("a", {std::make_shared<DecrementAction>(c, 3)}));
  logs.push_back(make_log("b", {std::make_shared<DecrementAction>(c, 3)}));
  const MergeReport report = temporal_merge(u, logs, MergeOrder::kConcatenate);
  EXPECT_EQ(report.applied, 1u);
  EXPECT_EQ(report.conflicts, 1u);
  EXPECT_EQ(report.final_state.as<Counter>(c).value(), 0);
}

TEST(TemporalMerge, EmptyInputYieldsInitialState) {
  Universe u;
  const ObjectId c = u.add(std::make_unique<Counter>(42));
  const MergeReport report = temporal_merge(u, {}, MergeOrder::kConcatenate);
  EXPECT_EQ(report.applied, 0u);
  EXPECT_EQ(report.final_state.as<Counter>(c).value(), 42);
}

// ---------------------------------------------------------------------------
// IceCube vs the baseline on the jigsaw workload: the fixed order conflicts
// on the overlap, the search does not.

TEST(BaselineComparison, IceCubeBeatsFixedOrderOnJigsawOverlap) {
  using K = jigsaw::PlayerSpec::Kind;
  const jigsaw::Problem p =
      jigsaw::make_problem(4, 4, jigsaw::Board::OrderCase::kKeepLogOrder,
                           {{K::kU1, 7}, {K::kU2, 12}});

  const MergeReport concat =
      temporal_merge(p.initial, p.logs, MergeOrder::kConcatenate);
  const MergeReport rr =
      temporal_merge(p.initial, p.logs, MergeOrder::kRoundRobin);
  EXPECT_GT(concat.conflicts, 0u);
  EXPECT_GT(rr.conflicts, 0u);

  ReconcilerOptions opts;
  opts.heuristic = Heuristic::kSafe;
  opts.failure_mode = FailureMode::kSkipAction;
  const auto ice = jigsaw::run_experiment(p, opts);
  EXPECT_TRUE(ice.best_complete);
  EXPECT_EQ(ice.best.correct, 16);

  // The fixed orders lose at least the overlap; the reconciled schedule
  // drops exactly the 3 doomed duplicates and nothing else.
  EXPECT_GE(rr.conflicts, 19u - 16u);
  EXPECT_GE(concat.conflicts, 19u - 16u);
}

TEST(BaselineComparison, RoundRobinInterleavingIsWorseThanConcatenate) {
  // Alternating two growth chains breaks the second chain's joins early; a
  // sanity check that the baseline orders differ meaningfully.
  using K = jigsaw::PlayerSpec::Kind;
  const jigsaw::Problem p =
      jigsaw::make_problem(4, 4, jigsaw::Board::OrderCase::kKeepLogOrder,
                           {{K::kU1, 7}, {K::kU2, 12}});
  const MergeReport concat =
      temporal_merge(p.initial, p.logs, MergeOrder::kConcatenate);
  const MergeReport rr =
      temporal_merge(p.initial, p.logs, MergeOrder::kRoundRobin);
  const auto& cb = concat.final_state.as<jigsaw::Board>(p.board_id);
  const auto& rb = rr.final_state.as<jigsaw::Board>(p.board_id);
  EXPECT_GE(cb.correct_pieces(), rb.correct_pieces());
}

}  // namespace
}  // namespace icecube
