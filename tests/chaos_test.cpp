// End-to-end chaos: multi-site gossip over the simulated network under
// loss, duplication, reordering, partitions, crash-recovery, and payload
// corruption. The acceptance bar is the seed sweep: every run must
// converge with zero invariant violations.
#include <gtest/gtest.h>

#include <string>

#include "simnet/chaos.hpp"

namespace icecube {
namespace {

ChaosSpec hostile_spec(std::uint64_t seed) {
  ChaosSpec spec;
  spec.seed = seed;
  spec.sites = 4 + seed % 5;  // 4..8 sites
  spec.actions_per_site = 4;
  spec.gossip_interval = 4;
  spec.fault_horizon = 300;
  spec.step_budget = 60000;
  spec.faults.lose = 0.10;
  spec.faults.corrupt = 0.05;
  spec.faults.truncate = 0.05;
  spec.faults.duplicate = 0.10;
  spec.faults.reorder = 0.15;
  spec.faults.reorder_max = 4;
  spec.faults.delay_max = 3;
  spec.faults.partition = 0.05;
  spec.faults.site_down = 0.05;
  spec.partition_window = 16;
  spec.crash_length = 24;
  return spec;
}

std::string failure_detail(const ChaosReport& report) {
  std::string out = "seed " + std::to_string(report.seed) + ": converged=" +
                    (report.converged ? "yes" : "no") +
                    " steps=" + std::to_string(report.steps);
  for (const Violation& v : report.violations) {
    out += "\n  " + v.message();
  }
  out += "\n  replay: tools/chaos --seed " + std::to_string(report.seed) +
         " --trace";
  return out;
}

TEST(Chaos, TwoHundredSeedHostileSweep) {
  // Speed: the deep replay invariant re-executes every history from
  // genesis on each commit; the sweep keeps it off and a dedicated
  // deep-replay sweep below turns it on for a smaller seed range.
  std::size_t converged = 0;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    ChaosSpec spec = hostile_spec(seed);
    spec.deep_replay = false;
    spec.keep_trace = false;
    const ChaosReport report = run_chaos(spec);
    ASSERT_TRUE(report.ok()) << failure_detail(report);
    ++converged;
  }
  EXPECT_EQ(converged, 200u);
}

TEST(Chaos, DeepReplaySweep) {
  for (std::uint64_t seed = 500; seed < 530; ++seed) {
    ChaosSpec spec = hostile_spec(seed);
    spec.deep_replay = true;
    spec.keep_trace = false;
    const ChaosReport report = run_chaos(spec);
    ASSERT_TRUE(report.ok()) << failure_detail(report);
  }
}

TEST(Chaos, SameSeedReplaysIdenticalEventSequence) {
  // A failing seed must be debuggable: the whole run — every delivery,
  // drop, crash, and decision — replays bit-identically.
  const ChaosReport first = run_chaos(hostile_spec(77));
  const ChaosReport second = run_chaos(hostile_spec(77));
  EXPECT_EQ(first.trace_crc, second.trace_crc);
  EXPECT_EQ(first.steps, second.steps);
  EXPECT_EQ(first.final_fingerprint, second.final_fingerprint);
  EXPECT_EQ(first.trace, second.trace);
  ASSERT_FALSE(first.trace.empty());
}

TEST(Chaos, DifferentSeedsTakeDifferentPaths) {
  EXPECT_NE(run_chaos(hostile_spec(1)).trace_crc,
            run_chaos(hostile_spec(2)).trace_crc);
}

TEST(Chaos, ScheduledPartitionHealsAndConverges) {
  // Split {s0,s1} | {s2,s3} for a long stretch, then heal: both halves
  // keep committing locally and must still converge globally afterwards.
  ChaosSpec spec;
  spec.seed = 9;
  spec.sites = 4;
  spec.actions_per_site = 5;
  spec.fault_horizon = 0;  // only the scheduled faults below
  spec.partitions.push_back({"s0", "s2", 2, 120});
  spec.partitions.push_back({"s0", "s3", 2, 120});
  spec.partitions.push_back({"s1", "s2", 2, 120});
  spec.partitions.push_back({"s1", "s3", 2, 120});
  const ChaosReport report = run_chaos(spec);
  ASSERT_TRUE(report.ok()) << failure_detail(report);
  EXPECT_GE(report.converged_at, 120u);  // cannot converge before the heal
  EXPECT_GT(report.net.dropped_partition, 0u);
  EXPECT_FALSE(report.final_fingerprint.empty());
}

TEST(Chaos, CrashedSiteRecoversAndCatchesUp) {
  ChaosSpec spec;
  spec.seed = 13;
  spec.sites = 4;
  spec.actions_per_site = 5;
  spec.fault_horizon = 0;
  spec.crashes.push_back({"s2", 5, 90});
  const ChaosReport report = run_chaos(spec);
  ASSERT_TRUE(report.ok()) << failure_detail(report);
  EXPECT_GE(report.converged_at, 90u);
  EXPECT_GT(report.net.dropped_down, 0u);
}

TEST(Chaos, CleanNetworkConvergesQuickly) {
  ChaosSpec spec;
  spec.seed = 3;
  spec.sites = 6;
  spec.actions_per_site = 4;
  spec.fault_horizon = 0;
  const ChaosReport report = run_chaos(spec);
  ASSERT_TRUE(report.ok()) << failure_detail(report);
  EXPECT_EQ(report.violations.size(), 0u);
  EXPECT_EQ(report.net.lost, 0u);
  EXPECT_EQ(report.totals.quarantines, 0u);
  EXPECT_EQ(report.total_actions, 24u);
}

TEST(Chaos, CorruptionQuarantinesButStillConverges) {
  ChaosSpec spec;
  spec.seed = 21;
  spec.sites = 4;
  spec.actions_per_site = 4;
  spec.fault_horizon = 200;
  spec.faults.corrupt = 0.4;
  const ChaosReport report = run_chaos(spec);
  ASSERT_TRUE(report.ok()) << failure_detail(report);
  EXPECT_GT(report.totals.quarantines, 0u);
  EXPECT_GT(report.injected_faults, 0u);
}

TEST(Chaos, ReportJsonCarriesTheVerdict) {
  ChaosSpec spec;
  spec.seed = 5;
  spec.sites = 4;
  spec.actions_per_site = 2;
  spec.fault_horizon = 0;
  const ChaosReport report = run_chaos(spec);
  ASSERT_TRUE(report.ok());
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"seed\":5"), std::string::npos);
  EXPECT_NE(json.find("\"converged\":true"), std::string::npos);
  EXPECT_NE(json.find("\"violations\":[]"), std::string::npos);
  ASSERT_FALSE(report.final_fingerprint.empty());
  EXPECT_NE(json.find("\"final_fingerprint\":\""), std::string::npos);
}

TEST(Chaos, BudgetExhaustionReportsNonConvergence) {
  // An impossible budget must come back as a structured non-verdict, not
  // hang or crash.
  ChaosSpec spec;
  spec.seed = 2;
  spec.sites = 4;
  spec.actions_per_site = 4;
  spec.step_budget = 10;
  const ChaosReport report = run_chaos(spec);
  EXPECT_FALSE(report.converged);
  EXPECT_FALSE(report.ok());
}

}  // namespace
}  // namespace icecube
