// Slot-level semantics of the copy-on-write universe (see
// core/universe.hpp): copies alias, mutable access detaches exactly the
// touched slot, versions count writes, and the cached fingerprint hash is
// dropped on detach without disturbing other universes' caches.
#include <gtest/gtest.h>

#include <cstdint>

#include "core/universe.hpp"
#include "objects/counter.hpp"

namespace icecube {
namespace {

Universe two_counters(std::int64_t a, std::int64_t b) {
  Universe u;
  (void)u.add(std::make_unique<Counter>(a));
  (void)u.add(std::make_unique<Counter>(b));
  return u;
}

TEST(CowUniverse, CopyAliasesEverySlotAndCountsAvoidedClones) {
  const Universe original = two_counters(1, 2);
  const Universe::CloneCounters before = Universe::thread_counters();

  const Universe copy = original;

  const Universe::CloneCounters after = Universe::thread_counters();
  EXPECT_EQ(after.object_clones, before.object_clones);
  EXPECT_EQ(after.clones_avoided, before.clones_avoided + 2);
  EXPECT_EQ(copy.object_address(ObjectId(0)),
            original.object_address(ObjectId(0)));
  EXPECT_EQ(copy.object_address(ObjectId(1)),
            original.object_address(ObjectId(1)));
}

TEST(CowUniverse, MutableAccessDetachesOnlyTheTouchedSlot) {
  Universe original = two_counters(10, 20);
  Universe copy = original;

  const Universe::CloneCounters before = Universe::thread_counters();
  ASSERT_TRUE(copy.as<Counter>(ObjectId(0)).apply(5));
  const Universe::CloneCounters after = Universe::thread_counters();

  // Exactly one deep clone: the written slot. The untouched slot still
  // aliases the original.
  EXPECT_EQ(after.object_clones, before.object_clones + 1);
  EXPECT_GE(after.bytes_cloned, before.bytes_cloned + sizeof(Counter));
  EXPECT_NE(copy.object_address(ObjectId(0)),
            original.object_address(ObjectId(0)));
  EXPECT_EQ(copy.object_address(ObjectId(1)),
            original.object_address(ObjectId(1)));

  // The write is invisible through the original.
  EXPECT_EQ(copy.as<Counter>(ObjectId(0)).value(), 15);
  const Universe& const_original = original;
  EXPECT_EQ(const_original.as<Counter>(ObjectId(0)).value(), 10);
}

TEST(CowUniverse, ConstAccessNeverDetaches) {
  Universe original = two_counters(1, 2);
  const Universe copy = original;

  const std::uint64_t version = copy.slot_version(ObjectId(0));
  EXPECT_EQ(copy.as<Counter>(ObjectId(0)).value(), 1);  // const path
  EXPECT_EQ(copy.slot_version(ObjectId(0)), version);
  EXPECT_EQ(copy.object_address(ObjectId(0)),
            original.object_address(ObjectId(0)));
}

TEST(CowUniverse, UnsharedMutableAccessBumpsVersionWithoutCloning) {
  Universe solo = two_counters(1, 2);
  const std::uint64_t version = solo.slot_version(ObjectId(0));
  const Universe::CloneCounters before = Universe::thread_counters();

  ASSERT_TRUE(solo.as<Counter>(ObjectId(0)).apply(1));

  const Universe::CloneCounters after = Universe::thread_counters();
  EXPECT_EQ(after.object_clones, before.object_clones);
  EXPECT_EQ(solo.slot_version(ObjectId(0)), version + 1);
}

TEST(CowUniverse, EagerModeDeepCopiesEverySlot) {
  Universe original = two_counters(1, 2);
  original.set_copy_mode(Universe::CopyMode::kEager);

  const Universe::CloneCounters before = Universe::thread_counters();
  const Universe copy = original;
  const Universe::CloneCounters after = Universe::thread_counters();

  EXPECT_EQ(after.object_clones, before.object_clones + 2);
  EXPECT_EQ(after.clones_avoided, before.clones_avoided);
  EXPECT_NE(copy.object_address(ObjectId(0)),
            original.object_address(ObjectId(0)));
  EXPECT_NE(copy.object_address(ObjectId(1)),
            original.object_address(ObjectId(1)));
  // The mode is inherited by copies.
  EXPECT_EQ(copy.copy_mode(), Universe::CopyMode::kEager);
  // Contents and canonical rendering are unaffected by the mode.
  EXPECT_EQ(copy.fingerprint(), original.fingerprint());
  EXPECT_EQ(copy.fingerprint_hash(), original.fingerprint_hash());
}

TEST(CowUniverse, SnapshotAliasesWithoutCounterAttribution) {
  Universe original = two_counters(7, 8);
  const Universe::CloneCounters before = Universe::thread_counters();
  const Universe view = original.snapshot();
  const Universe::CloneCounters after = Universe::thread_counters();

  EXPECT_EQ(after.object_clones, before.object_clones);
  EXPECT_EQ(after.clones_avoided, before.clones_avoided);
  EXPECT_EQ(view.object_address(ObjectId(0)),
            original.object_address(ObjectId(0)));
  EXPECT_EQ(view.fingerprint(), original.fingerprint());
}

TEST(CowUniverse, FingerprintHashTracksStateNotIdentity) {
  const Universe a = two_counters(10, 20);
  const Universe b = two_counters(10, 20);  // independent, same state
  const Universe c = two_counters(10, 21);

  EXPECT_EQ(a.fingerprint_hash(), b.fingerprint_hash());
  EXPECT_NE(a.fingerprint_hash(), c.fingerprint_hash());
  // The digest really stands in for the canonical rendering.
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_NE(a.fingerprint(), c.fingerprint());
}

TEST(CowUniverse, DetachInvalidatesOnlyTheWritersCachedHash) {
  Universe original = two_counters(10, 20);
  Universe copy = original;

  // Prime both caches (they share the per-slot cache cells at this point).
  const std::uint64_t before = original.fingerprint_hash();
  ASSERT_EQ(copy.fingerprint_hash(), before);

  // Write through the copy: its slot cache is dropped and recomputed; the
  // original's cached hash must remain intact and correct.
  ASSERT_TRUE(copy.as<Counter>(ObjectId(0)).apply(5));
  EXPECT_NE(copy.fingerprint_hash(), before);
  EXPECT_EQ(original.fingerprint_hash(), before);

  // And the recomputed digest matches a from-scratch universe in the same
  // state.
  EXPECT_EQ(copy.fingerprint_hash(), two_counters(15, 20).fingerprint_hash());
}

TEST(CowUniverse, VersionCountsEveryMutableAccess) {
  Universe u = two_counters(0, 0);
  const std::uint64_t v0 = u.slot_version(ObjectId(0));
  (void)u.at(ObjectId(0));
  (void)u.at(ObjectId(0));
  EXPECT_EQ(u.slot_version(ObjectId(0)), v0 + 2);
  EXPECT_EQ(u.slot_version(ObjectId(1)), 0u);
}

}  // namespace
}  // namespace icecube
