// Tests for the jigsaw substrate: board mechanics, action preconditions
// (§4.1 verbatim), the semantic order method (Figures 7–8), the policy
// cases (§4.2), and the scenario generators.
#include <gtest/gtest.h>

#include <memory>

#include "jigsaw/actions.hpp"
#include "jigsaw/board.hpp"
#include "jigsaw/order.hpp"
#include "jigsaw/scenario.hpp"

namespace icecube::jigsaw {
namespace {

TEST(Edge, OppositesArePaired) {
  EXPECT_EQ(opposite(Edge::kTop), Edge::kBottom);
  EXPECT_EQ(opposite(Edge::kBottom), Edge::kTop);
  EXPECT_EQ(opposite(Edge::kLeft), Edge::kRight);
  EXPECT_EQ(opposite(Edge::kRight), Edge::kLeft);
}

TEST(Edge, NeighbourArithmetic) {
  const Cell c{1, 1};
  EXPECT_EQ(neighbour(c, Edge::kTop), (Cell{0, 1}));
  EXPECT_EQ(neighbour(c, Edge::kBottom), (Cell{2, 1}));
  EXPECT_EQ(neighbour(c, Edge::kLeft), (Cell{1, 0}));
  EXPECT_EQ(neighbour(c, Edge::kRight), (Cell{1, 2}));
}

TEST(Board, HomeCellsAreRowMajor) {
  const Board board(4, 4);
  EXPECT_EQ(board.home(0), (Cell{0, 0}));
  EXPECT_EQ(board.home(3), (Cell{0, 3}));
  EXPECT_EQ(board.home(4), (Cell{1, 0}));
  EXPECT_EQ(board.home(15), (Cell{3, 3}));
}

TEST(Board, PlaceAndRemove) {
  Board board(3, 3);
  EXPECT_TRUE(board.board_empty());
  board.place(4, board.home(4));
  EXPECT_FALSE(board.board_empty());
  EXPECT_TRUE(board.on_board(4));
  EXPECT_EQ(board.piece_at(Cell{1, 1}), 4);
  EXPECT_EQ(board.pieces_on_board(), 1);
  EXPECT_EQ(board.correct_pieces(), 1);
  board.take_off(4);
  EXPECT_TRUE(board.available(4));
  EXPECT_TRUE(board.board_empty());
}

TEST(Board, MisplacedPieceIsNotCorrect) {
  Board board(3, 3);
  board.place(4, Cell{0, 0});  // home of piece 0
  EXPECT_EQ(board.pieces_on_board(), 1);
  EXPECT_EQ(board.correct_pieces(), 0);
}

TEST(Board, EdgeTakenTracksOccupancy) {
  Board board(3, 3);
  board.place(0, board.home(0));
  board.place(1, board.home(1));  // right of 0
  EXPECT_TRUE(board.edge_taken(0, Edge::kRight));
  EXPECT_TRUE(board.edge_taken(1, Edge::kLeft));
  EXPECT_FALSE(board.edge_taken(0, Edge::kBottom));
  EXPECT_FALSE(board.edge_taken(2, Edge::kLeft));  // available piece
}

TEST(Board, CloneIsDeep) {
  Board board(2, 2);
  board.place(0, board.home(0));
  auto copy = board.clone();
  board.place(1, board.home(1));
  EXPECT_EQ(dynamic_cast<Board&>(*copy).pieces_on_board(), 1);
}

// ---------------------------------------------------------------------------
// Actions, §4.1 preconditions verbatim.

class JigsawActionsTest : public ::testing::Test {
 protected:
  JigsawActionsTest() { board_id_ = universe_.add(std::make_unique<Board>(4, 4)); }

  Board& board() { return universe_.as<Board>(board_id_); }

  Universe universe_;
  ObjectId board_id_;
};

TEST_F(JigsawActionsTest, InsertPlacesAtHome) {
  InsertAction insert(board_id_, 5);
  ASSERT_TRUE(insert.precondition(universe_));
  ASSERT_TRUE(insert.execute(universe_));
  EXPECT_EQ(board().position(5), board().home(5));
  // Same piece again: unavailable.
  EXPECT_FALSE(InsertAction(board_id_, 5).precondition(universe_));
}

TEST_F(JigsawActionsTest, InsertFailsWhenHomeCellOccupied) {
  board().place(1, board().home(5));  // wrong piece parked on 5's home
  EXPECT_FALSE(InsertAction(board_id_, 5).precondition(universe_));
}

TEST_F(JigsawActionsTest, StrictInsertRequiresEmptyBoard) {
  ASSERT_TRUE(InsertAction(board_id_, 0).execute(universe_));
  EXPECT_FALSE(InsertAction(board_id_, 5, /*strict=*/true)
                   .precondition(universe_));
  EXPECT_TRUE(InsertAction(board_id_, 5, /*strict=*/false)
                  .precondition(universe_));
}

TEST_F(JigsawActionsTest, JoinRequiresNonEmptyBoard) {
  const JoinAction join(board_id_, 0, Edge::kRight, 1, Edge::kLeft);
  EXPECT_FALSE(join.precondition(universe_));  // (i) board empty
}

TEST_F(JigsawActionsTest, JoinRequiresExactlyOneAvailable) {
  ASSERT_TRUE(InsertAction(board_id_, 0).execute(universe_));
  ASSERT_TRUE(InsertAction(board_id_, 1).execute(universe_));
  // Both on board:
  EXPECT_FALSE(JoinAction(board_id_, 0, Edge::kRight, 1, Edge::kLeft)
                   .precondition(universe_));
  // Both available:
  EXPECT_FALSE(JoinAction(board_id_, 5, Edge::kRight, 6, Edge::kLeft)
                   .precondition(universe_));
  // Exactly one available:
  EXPECT_TRUE(JoinAction(board_id_, 1, Edge::kRight, 2, Edge::kLeft)
                  .precondition(universe_));
}

TEST_F(JigsawActionsTest, JoinRequiresFreeEdges) {
  ASSERT_TRUE(InsertAction(board_id_, 0).execute(universe_));
  ASSERT_TRUE(JoinAction(board_id_, 0, Edge::kRight, 1, Edge::kLeft)
                  .execute(universe_));
  // Piece 0's right edge is now taken: joining 2 there must fail (iii).
  EXPECT_FALSE(JoinAction(board_id_, 0, Edge::kRight, 2, Edge::kLeft)
                   .precondition(universe_));
}

TEST_F(JigsawActionsTest, JoinPlacesPieceAdjacent) {
  ASSERT_TRUE(InsertAction(board_id_, 5).execute(universe_));
  const JoinAction join(board_id_, 5, Edge::kBottom, 9, Edge::kTop);
  ASSERT_TRUE(join.precondition(universe_));
  ASSERT_TRUE(join.execute(universe_));
  EXPECT_EQ(board().position(9), neighbour(board().home(5), Edge::kBottom));
  EXPECT_EQ(board().correct_pieces(), 2);  // 9 is directly below 5 on 4x4
}

TEST_F(JigsawActionsTest, JoinWithNonOppositeEdgesFailsExecution) {
  ASSERT_TRUE(InsertAction(board_id_, 5).execute(universe_));
  JoinAction bad(board_id_, 5, Edge::kBottom, 9, Edge::kBottom);
  EXPECT_TRUE(bad.precondition(universe_));  // statically plausible
  EXPECT_FALSE(bad.execute(universe_));      // physically impossible
}

TEST_F(JigsawActionsTest, JoinIntoOccupiedCellFailsPrecondition) {
  // The destination cell of a join is exactly the anchor's edge-adjacent
  // cell, so an occupied destination is caught by precondition (iii).
  ASSERT_TRUE(InsertAction(board_id_, 5).execute(universe_));
  ASSERT_TRUE(InsertAction(board_id_, 9).execute(universe_));  // below 5
  JoinAction join(board_id_, 5, Edge::kBottom, 10, Edge::kTop);
  EXPECT_FALSE(join.precondition(universe_));
}

TEST_F(JigsawActionsTest, JoinAnchorsOnWhicheverPieceIsPlaced) {
  ASSERT_TRUE(InsertAction(board_id_, 5).execute(universe_));
  // Pi available, Pj on board: the available piece (4) moves next to 5.
  const JoinAction join(board_id_, 4, Edge::kRight, 5, Edge::kLeft);
  ASSERT_TRUE(join.precondition(universe_));
  ASSERT_TRUE(join.execute(universe_));
  EXPECT_EQ(board().position(4), neighbour(board().home(5), Edge::kLeft));
}

TEST_F(JigsawActionsTest, RemoveRequiresPieceOnBoard) {
  EXPECT_FALSE(RemoveAction(board_id_, 3).precondition(universe_));
  ASSERT_TRUE(InsertAction(board_id_, 3).execute(universe_));
  ASSERT_TRUE(RemoveAction(board_id_, 3).precondition(universe_));
  ASSERT_TRUE(RemoveAction(board_id_, 3).execute(universe_));
  EXPECT_TRUE(board().available(3));
}

TEST_F(JigsawActionsTest, CorrectJoinHelperBuildsAdjacentJoin) {
  const JoinAction join = correct_join(board(), board_id_, 5, 6);
  EXPECT_EQ(join.pi(), 5);
  EXPECT_EQ(join.ei(), Edge::kRight);
  EXPECT_EQ(join.pj(), 6);
  EXPECT_EQ(join.ej(), Edge::kLeft);
}

// ---------------------------------------------------------------------------
// Order methods.

class JigsawOrderTest : public ::testing::Test {
 protected:
  JigsawOrderTest() : board_(4, 4) {
    board_id_ = ObjectId(0);
  }
  Board board_;
  ObjectId board_id_;
};

TEST_F(JigsawOrderTest, SemanticJoinJoinCompatibleIsMaybe) {
  // Figure 7/8: "maybe if physically possible".
  const JoinAction j1(board_id_, 0, Edge::kRight, 1, Edge::kLeft);
  const JoinAction j2(board_id_, 1, Edge::kRight, 2, Edge::kLeft);
  EXPECT_EQ(semantic_order(j1, j2, LogRelation::kAcrossLogs),
            Constraint::kMaybe);
  EXPECT_EQ(semantic_order(j2, j1, LogRelation::kAcrossLogs),
            Constraint::kMaybe);
}

TEST_F(JigsawOrderTest, SemanticJoinJoinSameEdgeConflictIsUnsafe) {
  // "two different pieces can't join the same edge of the same other piece"
  const JoinAction j1(board_id_, 0, Edge::kRight, 1, Edge::kLeft);
  const JoinAction j2(board_id_, 0, Edge::kRight, 2, Edge::kLeft);
  EXPECT_EQ(semantic_order(j1, j2, LogRelation::kAcrossLogs),
            Constraint::kUnsafe);
  EXPECT_EQ(semantic_order(j2, j1, LogRelation::kAcrossLogs),
            Constraint::kUnsafe);
}

TEST_F(JigsawOrderTest, SemanticJoinBeforeRemoveOfJoinedPieceIsUnsafe) {
  // Figure entry: join(..Pi..Pj..) before remove(Pf) unsafe if f ∈ {i, j}.
  const JoinAction join(board_id_, 0, Edge::kRight, 1, Edge::kLeft);
  const RemoveAction remove_joined(board_id_, 1);
  const RemoveAction remove_other(board_id_, 7);
  EXPECT_EQ(semantic_order(join, remove_joined, LogRelation::kAcrossLogs),
            Constraint::kUnsafe);
  EXPECT_EQ(semantic_order(join, remove_other, LogRelation::kAcrossLogs),
            Constraint::kMaybe);
}

TEST_F(JigsawOrderTest, SemanticRemoveBeforeJoinOfSamePieceIsUnsafe) {
  const RemoveAction remove(board_id_, 1);
  const JoinAction join(board_id_, 0, Edge::kRight, 1, Edge::kLeft);
  EXPECT_EQ(semantic_order(remove, join, LogRelation::kAcrossLogs),
            Constraint::kUnsafe);
  const JoinAction other(board_id_, 5, Edge::kRight, 6, Edge::kLeft);
  EXPECT_EQ(semantic_order(remove, other, LogRelation::kAcrossLogs),
            Constraint::kMaybe);
}

TEST_F(JigsawOrderTest, SemanticRemoveRemoveSamePieceIsUnsafe) {
  const RemoveAction r1(board_id_, 3);
  const RemoveAction r2(board_id_, 3);
  const RemoveAction r3(board_id_, 4);
  EXPECT_EQ(semantic_order(r1, r2, LogRelation::kAcrossLogs),
            Constraint::kUnsafe);
  EXPECT_EQ(semantic_order(r1, r3, LogRelation::kAcrossLogs),
            Constraint::kMaybe);
}

TEST_F(JigsawOrderTest, Case2KeepsWholeLogOrder) {
  const JoinAction join(board_id_, 0, Edge::kRight, 1, Edge::kLeft);
  const RemoveAction remove(board_id_, 9);
  // Any same-log pair (the engine asks only the reversing direction).
  EXPECT_EQ(keep_log_order(join, remove, LogRelation::kSameLog),
            Constraint::kUnsafe);
  EXPECT_EQ(keep_log_order(remove, join, LogRelation::kSameLog),
            Constraint::kUnsafe);
  // No static information across logs.
  EXPECT_EQ(keep_log_order(join, remove, LogRelation::kAcrossLogs),
            Constraint::kMaybe);
}

TEST_F(JigsawOrderTest, Case3FreesRemoves) {
  const JoinAction j1(board_id_, 0, Edge::kRight, 1, Edge::kLeft);
  const JoinAction j2(board_id_, 1, Edge::kRight, 2, Edge::kLeft);
  const RemoveAction remove(board_id_, 9);
  EXPECT_EQ(keep_join_order(j1, j2, LogRelation::kSameLog),
            Constraint::kUnsafe);
  EXPECT_EQ(keep_join_order(remove, j1, LogRelation::kSameLog),
            Constraint::kMaybe);
  EXPECT_EQ(keep_join_order(j1, remove, LogRelation::kSameLog),
            Constraint::kMaybe);
}

TEST_F(JigsawOrderTest, Case4PrefersAdjacentJoins) {
  const JoinAction j1(board_id_, 0, Edge::kRight, 1, Edge::kLeft);
  const JoinAction j2(board_id_, 1, Edge::kRight, 2, Edge::kLeft);  // shares 1
  const JoinAction j3(board_id_, 8, Edge::kRight, 9, Edge::kLeft);  // disjoint
  EXPECT_EQ(adjacency_order(j1, j2, LogRelation::kAcrossLogs),
            Constraint::kSafe);
  EXPECT_EQ(adjacency_order(j1, j3, LogRelation::kAcrossLogs),
            Constraint::kMaybe);
  // Same-log joins without a shared piece still keep log order (Case 3).
  EXPECT_EQ(adjacency_order(j1, j3, LogRelation::kSameLog),
            Constraint::kUnsafe);
}

TEST_F(JigsawOrderTest, BoardDispatchesOnOrderCase) {
  const JoinAction j1(ObjectId(0), 0, Edge::kRight, 1, Edge::kLeft);
  const RemoveAction remove(ObjectId(0), 1);
  Board semantic(4, 4, Board::OrderCase::kSemantic);
  Board case2(4, 4, Board::OrderCase::kKeepLogOrder);
  EXPECT_EQ(semantic.order(j1, remove, LogRelation::kAcrossLogs),
            Constraint::kUnsafe);
  EXPECT_EQ(case2.order(j1, remove, LogRelation::kAcrossLogs),
            Constraint::kMaybe);
}

// ---------------------------------------------------------------------------
// Scenario generators.

TEST(Scenario, U1PlacesRequestedPieceCountCorrectly) {
  const Board board(4, 4);
  const Log log = scenario_u1(board, ObjectId(0), 7);
  EXPECT_EQ(log.size(), 7u);  // 1 insert + 6 joins
  EXPECT_EQ(replay_count(board, log), 7);

  // Replaying yields pieces 0..6 at their homes.
  Universe u;
  const ObjectId id = u.add(board.clone());
  for (const auto& a : log) {
    ASSERT_TRUE(a->precondition(u) && a->execute(u));
  }
  const auto& replayed = u.as<Board>(id);
  EXPECT_EQ(replayed.correct_pieces(), 7);
  for (int p = 0; p < 7; ++p) EXPECT_TRUE(replayed.on_board(p));
  for (int p = 7; p < 16; ++p) EXPECT_TRUE(replayed.available(p));
}

TEST(Scenario, U2PlacesFromLastSquareBackwards) {
  const Board board(4, 4);
  const Log log = scenario_u2(board, ObjectId(0), 12);
  EXPECT_EQ(log.size(), 12u);
  Universe u;
  const ObjectId id = u.add(board.clone());
  for (const auto& a : log) {
    ASSERT_TRUE(a->precondition(u) && a->execute(u));
  }
  const auto& replayed = u.as<Board>(id);
  EXPECT_EQ(replayed.correct_pieces(), 12);
  for (int p = 4; p < 16; ++p) EXPECT_TRUE(replayed.on_board(p));
  for (int p = 0; p < 4; ++p) EXPECT_TRUE(replayed.available(p));
}

TEST(Scenario, U3LogsAreCorrectByConstruction) {
  const Board board(4, 4);
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    const Log log = scenario_u3(board, ObjectId(0), 12, seed);
    EXPECT_EQ(log.size(), 12u) << "seed " << seed;
    EXPECT_EQ(replay_count(board, log), 12) << "seed " << seed;
  }
}

TEST(Scenario, U3IsDeterministicPerSeed) {
  const Board board(4, 4);
  const Log a = scenario_u3(board, ObjectId(0), 10, 77);
  const Log b = scenario_u3(board, ObjectId(0), 10, 77);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.at(i).tag(), b.at(i).tag());
  }
}

TEST(Scenario, U3ContainsImperfectMoves) {
  // With enough actions, some seed must produce a remove or incorrect join.
  const Board board(4, 4);
  bool saw_remove = false;
  for (std::uint64_t seed = 1; seed <= 10 && !saw_remove; ++seed) {
    const Log log = scenario_u3(board, ObjectId(0), 14, seed);
    for (const auto& a : log) saw_remove = saw_remove || a->tag().op == "remove";
  }
  EXPECT_TRUE(saw_remove);
}

TEST(Board, RenderShowsPlacedPieces) {
  Board board(2, 2);
  board.place(0, board.home(0));
  board.place(3, Cell{0, 1});  // misplaced (home of 1)
  const std::string art = board.render();
  EXPECT_NE(art.find(" 0 "), std::string::npos);
  EXPECT_NE(art.find("!3"), std::string::npos);
}

}  // namespace
}  // namespace icecube::jigsaw
