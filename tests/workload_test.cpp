// Tests for the workload generators: determinism, log correctness, spec
// compliance — plus randomized cross-substrate reconciliation properties
// they enable.
#include <gtest/gtest.h>

#include "baseline/temporal_merge.hpp"
#include "core/reconciler.hpp"
#include "objects/calendar.hpp"
#include "objects/counter.hpp"
#include "objects/file_system.hpp"
#include "workload/generators.hpp"

namespace icecube {
namespace {

using workload::calendar_workload;
using workload::CalendarSpec;
using workload::counter_workload;
using workload::CounterSpec;
using workload::fs_workload;
using workload::FsSpec;
using workload::Generated;

/// Replays every log of `g` against the initial state; all actions must
/// succeed (the §2.1 correctness invariant).
void expect_logs_correct(const Generated& g) {
  for (const Log& log : g.logs) {
    Universe state = g.initial;
    for (const auto& action : log) {
      ASSERT_TRUE(action->precondition(state)) << log.name();
      ASSERT_TRUE(action->execute(state)) << log.name();
    }
  }
}

std::vector<std::string> tags_of(const Generated& g) {
  std::vector<std::string> out;
  for (const Log& log : g.logs) {
    for (const auto& a : log) out.push_back(a->tag().describe());
  }
  return out;
}

TEST(CounterWorkload, DeterministicPerSeed) {
  CounterSpec spec;
  spec.seed = 7;
  EXPECT_EQ(tags_of(counter_workload(spec)), tags_of(counter_workload(spec)));
  CounterSpec other = spec;
  other.seed = 8;
  EXPECT_NE(tags_of(counter_workload(spec)), tags_of(counter_workload(other)));
}

TEST(CounterWorkload, MatchesSpecAndIsCorrect) {
  CounterSpec spec;
  spec.replicas = 4;
  spec.actions_per_replica = 6;
  const Generated g = counter_workload(spec);
  ASSERT_EQ(g.logs.size(), 4u);
  for (const Log& log : g.logs) EXPECT_EQ(log.size(), 6u);
  expect_logs_correct(g);
}

TEST(FsWorkload, MatchesSpecAndIsCorrect) {
  FsSpec spec;
  spec.replicas = 3;
  spec.actions_per_replica = 5;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    FsSpec s = spec;
    s.seed = seed;
    const Generated g = fs_workload(s);
    ASSERT_EQ(g.logs.size(), 3u);
    for (const Log& log : g.logs) EXPECT_EQ(log.size(), 5u) << "seed " << seed;
    expect_logs_correct(g);
  }
}

TEST(FsWorkload, ProducesAllThreeOperationKinds) {
  FsSpec spec;
  spec.replicas = 2;
  spec.actions_per_replica = 20;
  bool saw_mkdir = false, saw_write = false, saw_delete = false;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    FsSpec s = spec;
    s.seed = seed;
    for (const std::string& tag : tags_of(fs_workload(s))) {
      saw_mkdir = saw_mkdir || tag.starts_with("mkdir");
      saw_write = saw_write || tag.starts_with("fswrite");
      saw_delete = saw_delete || tag.starts_with("fsdelete");
    }
  }
  EXPECT_TRUE(saw_mkdir);
  EXPECT_TRUE(saw_write);
  EXPECT_TRUE(saw_delete);
}

TEST(CalendarWorkload, MatchesSpecAndIsCorrect) {
  CalendarSpec spec;
  spec.users = 4;
  spec.actions_per_user = 3;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    CalendarSpec s = spec;
    s.seed = seed;
    const Generated g = calendar_workload(s);
    ASSERT_EQ(g.logs.size(), 4u);
    EXPECT_EQ(g.initial.size(), 4u);
    expect_logs_correct(g);
  }
}

TEST(TextWorkload, MatchesSpecAndIsCorrect) {
  workload::TextSpec spec;
  spec.replicas = 3;
  spec.actions_per_replica = 4;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    workload::TextSpec s = spec;
    s.seed = seed;
    const Generated g = workload::text_workload(s);
    ASSERT_EQ(g.logs.size(), 3u);
    for (const Log& log : g.logs) EXPECT_EQ(log.size(), 4u) << "seed " << seed;
    expect_logs_correct(g);
  }
}

TEST(LineWorkload, MatchesSpecAndIsCorrect) {
  workload::LineSpec spec;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    workload::LineSpec s = spec;
    s.seed = seed;
    const Generated g = workload::line_workload(s);
    ASSERT_EQ(g.logs.size(), 2u);
    expect_logs_correct(g);
  }
}

// ---------------------------------------------------------------------------
// Randomized reconciliation properties across substrates.

class WorkloadSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WorkloadSweep, CounterReconciliationBeatsOrMatchesFixedOrder) {
  CounterSpec spec;
  spec.seed = GetParam();
  spec.replicas = 3;
  spec.actions_per_replica = 4;
  const Generated g = counter_workload(spec);

  const MergeReport fixed =
      temporal_merge(g.initial, g.logs, MergeOrder::kConcatenate);

  ReconcilerOptions opts;
  opts.heuristic = Heuristic::kAll;
  opts.failure_mode = FailureMode::kSkipAction;
  opts.limits.max_schedules = 20000;
  Reconciler r(g.initial, g.logs, opts);
  const auto ice = r.run();
  ASSERT_TRUE(ice.found_any()) << "seed " << GetParam();
  // The default cost maximises applied actions: the search can only do at
  // least as well as one fixed order.
  EXPECT_GE(ice.best().schedule.size(), fixed.applied) << "seed "
                                                       << GetParam();
  // Invariant held everywhere.
  EXPECT_GE(ice.best().final_state.as<Counter>(ObjectId(0)).value(), 0);
}

TEST_P(WorkloadSweep, FsReconciliationRespectsInvariants) {
  FsSpec spec;
  spec.seed = GetParam();
  const Generated g = fs_workload(spec);
  ReconcilerOptions opts;
  opts.failure_mode = FailureMode::kSkipAction;
  opts.limits.max_schedules = 20000;
  Reconciler r(g.initial, g.logs, opts);
  const auto ice = r.run();
  ASSERT_TRUE(ice.found_any()) << "seed " << GetParam();
  // Replay check: schedule reproduces the final state.
  Universe replay = r.initial_state();
  for (ActionId id : ice.best().schedule) {
    const Action& a = *r.records()[id.index()].action;
    ASSERT_TRUE(a.precondition(replay)) << "seed " << GetParam();
    ASSERT_TRUE(a.execute(replay)) << "seed " << GetParam();
  }
  EXPECT_EQ(replay.fingerprint(), ice.best().final_state.fingerprint());
}

TEST_P(WorkloadSweep, CalendarReconciliationDropsNothingItCouldKeep) {
  CalendarSpec spec;
  spec.seed = GetParam();
  spec.users = 3;
  spec.actions_per_user = 2;
  const Generated g = calendar_workload(spec);
  ReconcilerOptions opts;
  opts.heuristic = Heuristic::kAll;
  opts.failure_mode = FailureMode::kSkipAction;
  opts.limits.max_schedules = 20000;
  Reconciler r(g.initial, g.logs, opts);
  const auto ice = r.run();
  ASSERT_TRUE(ice.found_any()) << "seed " << GetParam();
  const MergeReport fixed =
      temporal_merge(g.initial, g.logs, MergeOrder::kRoundRobin);
  EXPECT_GE(ice.best().schedule.size(), fixed.applied)
      << "seed " << GetParam();
}

TEST_P(WorkloadSweep, TextReconciliationCompletesAndReplays) {
  // Whole-log OT chains are declared safe as a *heuristic* (the TP2-class
  // puzzle of exact multi-edit convergence is documented out of scope, as
  // in the paper); what must always hold is that the merge completes, no
  // edit is silently half-applied, and the outcome replays exactly.
  workload::TextSpec spec;
  spec.seed = GetParam();
  const Generated g = workload::text_workload(spec);

  ReconcilerOptions opts;
  opts.failure_mode = FailureMode::kSkipAction;
  opts.stop_at_first_complete = true;
  opts.limits.max_schedules = 10000;
  Reconciler r(g.initial, g.logs, opts);
  const auto result = r.run();
  ASSERT_TRUE(result.found_any()) << "seed " << GetParam();
  EXPECT_TRUE(result.best().complete) << "seed " << GetParam();

  Universe replay = r.initial_state();
  for (ActionId id : result.best().schedule) {
    const Action& a = *r.records()[id.index()].action;
    ASSERT_TRUE(a.precondition(replay) && a.execute(replay))
        << "seed " << GetParam();
  }
  EXPECT_EQ(replay.fingerprint(), result.best().final_state.fingerprint())
      << "seed " << GetParam();
}

TEST_P(WorkloadSweep, LineWorkloadSurfacesExactlyTheOverlaps) {
  workload::LineSpec spec;
  spec.seed = GetParam();
  const Generated g = workload::line_workload(spec);
  ReconcilerOptions opts;
  opts.heuristic = Heuristic::kAll;
  opts.failure_mode = FailureMode::kSkipAction;
  opts.limits.max_schedules = 20000;
  Reconciler r(g.initial, g.logs, opts);
  const auto result = r.run();
  ASSERT_TRUE(result.found_any()) << "seed " << GetParam();
  // Dropped actions are exactly dynamic same-line conflicts: every drop's
  // line was touched by the other session too.
  for (ActionId dropped : result.best().skipped) {
    const auto line = r.records()[dropped.index()].action->tag().param(0);
    const LogId log = r.records()[dropped.index()].log;
    bool other_session_touched = false;
    for (const auto& rec : r.records()) {
      other_session_touched =
          other_session_touched ||
          (rec.log != log && rec.action->tag().param(0) == line);
    }
    EXPECT_TRUE(other_session_touched)
        << "seed " << GetParam() << ": drop without overlap";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WorkloadSweep,
                         ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace icecube
