// Parameterized sweeps over the jigsaw experiment space: board sizes,
// scenario mixes, order cases, heuristics — checking structural invariants
// everywhere rather than exact values.
#include <gtest/gtest.h>

#include <tuple>

#include "jigsaw/experiment.hpp"

namespace icecube::jigsaw {
namespace {

using K = PlayerSpec::Kind;

// ---------------------------------------------------------------------------
// Sweep 1: board sizes x order cases, clean two-player games.

using SizeCaseParam = std::tuple<int, Board::OrderCase>;

class BoardSizeSweep : public ::testing::TestWithParam<SizeCaseParam> {};

TEST_P(BoardSizeSweep, CleanSplitGamesReconcileToFullBoard) {
  const auto [side, order_case] = GetParam();
  const int pieces = side * side;
  // Non-overlapping halves: U1 takes the top, U2 the bottom.
  const Problem p = make_problem(side, side, order_case,
                                 {{K::kU1, pieces / 2}, {K::kU2, pieces / 2}});
  ReconcilerOptions opts;
  opts.heuristic = Heuristic::kSafe;
  opts.failure_mode = FailureMode::kAbortBranch;
  opts.limits.max_schedules = 20000;
  const auto r = run_experiment(p, opts);
  EXPECT_EQ(r.best.correct, pieces) << "side " << side;
  EXPECT_EQ(r.best.pieces, pieces);
  EXPECT_LE(r.best.actions, pieces);
  EXPECT_EQ(r.stats.schedules_to_best, 1u);  // first schedule optimal
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndCases, BoardSizeSweep,
    ::testing::Combine(::testing::Values(2, 4, 6),
                       ::testing::Values(Board::OrderCase::kSemantic,
                                         Board::OrderCase::kKeepLogOrder,
                                         Board::OrderCase::kKeepJoinOrder,
                                         Board::OrderCase::kAdjacency)));

// ---------------------------------------------------------------------------
// Sweep 2: heuristics x failure modes on the paper's overlapping game.

using EngineParam = std::tuple<Heuristic, FailureMode>;

class EngineSweep : public ::testing::TestWithParam<EngineParam> {};

TEST_P(EngineSweep, OverlappingGameInvariants) {
  const auto [heuristic, failure_mode] = GetParam();
  const Problem p = make_problem(4, 4, Board::OrderCase::kKeepLogOrder,
                                 {{K::kU1, 7}, {K::kU2, 12}});
  ReconcilerOptions opts;
  opts.heuristic = heuristic;
  opts.failure_mode = failure_mode;
  opts.limits.max_schedules = 60000;
  const auto r = run_experiment(p, opts);

  // Regardless of configuration: the board never exceeds 16 pieces, the
  // best is at least one whole log (12 pieces), and every placed piece in
  // the incumbent is correct (both scenarios only place correct pieces).
  EXPECT_LE(r.best.pieces, 16);
  EXPECT_GE(r.best.pieces, 12);
  EXPECT_EQ(r.best.correct, r.best.pieces);
  // The heuristics explore no more than All does (within this cap).
  if (heuristic != Heuristic::kAll) {
    EXPECT_LE(r.stats.schedules_explored(), 100u);
  }
  // Complete schedules only exist when failures may be dropped.
  if (failure_mode == FailureMode::kAbortBranch) {
    EXPECT_EQ(r.stats.schedules_completed, 0u);
  } else {
    EXPECT_TRUE(r.best_complete);
    EXPECT_EQ(r.best.pieces, 16);
  }
}

INSTANTIATE_TEST_SUITE_P(
    HeuristicsAndFailureModes, EngineSweep,
    ::testing::Combine(::testing::Values(Heuristic::kAll, Heuristic::kSafe,
                                         Heuristic::kStrict),
                       ::testing::Values(FailureMode::kAbortBranch,
                                         FailureMode::kSkipAction)));

// ---------------------------------------------------------------------------
// Sweep 3: action-count growth ("we varied ... the number of actions in
// each scenario, up to the maximum number of pieces").

class ActionCountSweep : public ::testing::TestWithParam<int> {};

TEST_P(ActionCountSweep, SafeHeuristicStaysFlatAsLogsGrow) {
  const int per_player = GetParam();
  const Problem p = make_problem(6, 6, Board::OrderCase::kKeepLogOrder,
                                 {{K::kU1, per_player}, {K::kU2, per_player}});
  ReconcilerOptions opts;
  opts.heuristic = Heuristic::kSafe;
  opts.failure_mode = FailureMode::kSkipAction;
  const auto r = run_experiment(p, opts);
  // The Safe heuristic chains logs: schedule count is constant in log size.
  EXPECT_LE(r.stats.schedules_explored(), 4u) << per_player << " per player";
  // Work scales linearly, never combinatorially.
  EXPECT_LE(r.stats.sim_steps,
            16u * static_cast<std::uint64_t>(per_player) + 64u);
  EXPECT_TRUE(r.best_complete);
}

INSTANTIATE_TEST_SUITE_P(Growth, ActionCountSweep,
                         ::testing::Values(6, 12, 18, 24, 30, 36));

// ---------------------------------------------------------------------------
// Sweep 4: U3 randomness never breaks engine invariants.

class U3Robustness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(U3Robustness, TwoRandomPlayersReconcileWithinBudget) {
  const Problem p = make_problem(
      4, 4, Board::OrderCase::kKeepJoinOrder,
      {{K::kU3, 10, GetParam()}, {K::kU3, 10, GetParam() + 500}});
  ReconcilerOptions opts;
  opts.heuristic = Heuristic::kAll;
  opts.failure_mode = FailureMode::kSkipAction;
  opts.limits.max_schedules = 10000;
  const auto r = run_experiment(p, opts);
  EXPECT_GE(r.best.pieces, 0);
  EXPECT_LE(r.best.pieces, 16);
  EXPECT_LE(r.best.correct, r.best.pieces);
  EXPECT_GE(r.outcome_count, 1u);
  EXPECT_LE(r.stats.schedules_explored(), 10000u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, U3Robustness,
                         ::testing::Range<std::uint64_t>(1, 16));

}  // namespace
}  // namespace icecube::jigsaw
