// End-to-end tests of the Reconciler facade: constraint wiring, cutset
// handling, schedule validity, selection.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "core/reconciler.hpp"
#include "objects/counter.hpp"
#include "objects/rw_register.hpp"
#include "test_helpers.hpp"

namespace icecube {
namespace {

using testing::make_log;
using testing::NopAction;
using testing::ScriptedObject;

TEST(Reconciler, EmptyInputYieldsEmptyCompleteSchedule) {
  Universe u;
  Reconciler r(u, {});
  const auto result = r.run();
  ASSERT_TRUE(result.found_any());
  EXPECT_TRUE(result.best().complete);
  EXPECT_TRUE(result.best().schedule.empty());
}

TEST(Reconciler, RegisterWriteReadAcrossLogsOrdersReadFirst) {
  // Figure 2: write before read is unsafe ⇒ the read must precede the
  // concurrent write in every schedule.
  Universe u;
  const ObjectId reg = u.add(std::make_unique<RwRegister>(10));
  std::vector<Log> logs;
  logs.push_back(make_log("w", {std::make_shared<WriteAction>(reg, 42)}));
  logs.push_back(make_log("r", {std::make_shared<ReadAction>(reg, 10)}));

  ReconcilerOptions opts;
  opts.heuristic = Heuristic::kAll;
  Reconciler r(u, logs, opts);
  EXPECT_TRUE(r.relations().depends(ActionId(1), ActionId(0)));
  const auto result = r.run();
  ASSERT_TRUE(result.best().complete);
  EXPECT_EQ(result.best().schedule,
            (std::vector<ActionId>{ActionId(1), ActionId(0)}));
  EXPECT_EQ(result.stats.schedules_completed, 1u);
}

TEST(Reconciler, CounterIncrementsCommuteAcrossLogs) {
  Universe u;
  const ObjectId c = u.add(std::make_unique<Counter>(0));
  std::vector<Log> logs;
  logs.push_back(make_log("a", {std::make_shared<IncrementAction>(c, 1)}));
  logs.push_back(make_log("b", {std::make_shared<IncrementAction>(c, 2)}));
  ReconcilerOptions opts;
  opts.heuristic = Heuristic::kAll;
  Reconciler r(u, logs, opts);
  // Both orders are independent (safe), neither is dependent.
  EXPECT_TRUE(r.relations().independent(ActionId(0), ActionId(1)));
  EXPECT_TRUE(r.relations().independent(ActionId(1), ActionId(0)));
  const auto result = r.run();
  EXPECT_EQ(result.stats.schedules_completed, 2u);
  EXPECT_EQ(result.best().final_state.as<Counter>(c).value(), 3);
}

TEST(Reconciler, StaticConflictProducesCutsets) {
  // Two actions mutually unsafe: a 2-cycle in D; each proper cutset drops
  // one of them, and outcomes record the exclusion.
  Universe u;
  const ObjectId obj = u.add(std::make_unique<ScriptedObject>(
      [](const Action&, const Action&, LogRelation) {
        return Constraint::kUnsafe;
      }));
  std::vector<Log> logs;
  logs.push_back(make_log("a", {std::make_shared<NopAction>(
                                   "p", std::vector{obj})}));
  logs.push_back(make_log("b", {std::make_shared<NopAction>(
                                   "q", std::vector{obj})}));
  Reconciler r(u, logs);
  const auto result = r.run();
  EXPECT_EQ(result.cutsets.size(), 2u);
  EXPECT_EQ(result.stats.cutset_count, 2u);
  ASSERT_TRUE(result.found_any());
  const Outcome& best = result.best();
  EXPECT_TRUE(best.complete);
  EXPECT_EQ(best.schedule.size(), 1u);
  EXPECT_EQ(best.cutset.size(), 1u);
}

TEST(Reconciler, PolicyCanRejectCutsets) {
  Universe u;
  const ObjectId obj = u.add(std::make_unique<ScriptedObject>(
      [](const Action&, const Action&, LogRelation) {
        return Constraint::kUnsafe;
      }));
  std::vector<Log> logs;
  logs.push_back(make_log("a", {std::make_shared<NopAction>(
                                   "p", std::vector{obj})}));
  logs.push_back(make_log("b", {std::make_shared<NopAction>(
                                   "q", std::vector{obj})}));

  /// Accepts only cutsets that exclude action 0 (prioritising action 1, as
  /// §3.5 describes: "prioritise an action by not allowing it to be
  /// excluded").
  class CutsetPolicy final : public Policy {
   public:
    void select_cutsets(std::vector<Cutset>& cutsets) override {
      std::erase_if(cutsets, [](const Cutset& cs) {
        return std::find(cs.actions.begin(), cs.actions.end(), ActionId(0)) ==
               cs.actions.end();
      });
    }
  };
  CutsetPolicy policy;
  Reconciler r(u, logs, {}, &policy);
  const auto result = r.run();
  EXPECT_EQ(result.cutsets.size(), 1u);
  ASSERT_TRUE(result.found_any());
  EXPECT_EQ(result.best().schedule, std::vector<ActionId>{ActionId(1)});
  EXPECT_EQ(result.best().cutset, std::vector<ActionId>{ActionId(0)});
}

TEST(Reconciler, InLogOrderIsPreservedWhenReverseIsUnsafe) {
  // Register read/write in one log: Figure 4 makes the swap unsafe, so the
  // log order is the only valid order.
  Universe u;
  const ObjectId reg = u.add(std::make_unique<RwRegister>(0));
  std::vector<Log> logs;
  logs.push_back(make_log("a", {std::make_shared<WriteAction>(reg, 1),
                                std::make_shared<ReadAction>(reg, 1)}));
  ReconcilerOptions opts;
  opts.heuristic = Heuristic::kAll;
  Reconciler r(u, logs, opts);
  const auto result = r.run();
  EXPECT_EQ(result.stats.schedules_completed, 1u);
  EXPECT_EQ(result.best().schedule,
            (std::vector<ActionId>{ActionId(0), ActionId(1)}));
}

TEST(Reconciler, InLogCommutingActionsMayReorder) {
  // Two writes in one log commute (Figure 4): both orders are explored.
  Universe u;
  const ObjectId reg = u.add(std::make_unique<RwRegister>(0));
  std::vector<Log> logs;
  logs.push_back(make_log("a", {std::make_shared<WriteAction>(reg, 1),
                                std::make_shared<WriteAction>(reg, 2)}));
  ReconcilerOptions opts;
  opts.heuristic = Heuristic::kAll;
  Reconciler r(u, logs, opts);
  const auto result = r.run();
  EXPECT_EQ(result.stats.schedules_completed, 2u);
}

TEST(Reconciler, EveryScheduleSatisfiesDependences) {
  // Mixed counter workload under H=All; validate all retained outcomes.
  Universe u;
  const ObjectId c = u.add(std::make_unique<Counter>(1));
  std::vector<Log> logs;
  logs.push_back(make_log("a", {std::make_shared<IncrementAction>(c, 2),
                                std::make_shared<DecrementAction>(c, 1)}));
  logs.push_back(make_log("b", {std::make_shared<DecrementAction>(c, 1),
                                std::make_shared<IncrementAction>(c, 3)}));
  ReconcilerOptions opts;
  opts.heuristic = Heuristic::kAll;
  opts.keep_outcomes = 64;
  Reconciler r(u, logs, opts);
  const auto result = r.run();
  const Relations& rel = r.relations();
  ASSERT_FALSE(result.outcomes.empty());
  for (const Outcome& o : result.outcomes) {
    for (std::size_t i = 0; i < o.schedule.size(); ++i) {
      for (std::size_t j = i + 1; j < o.schedule.size(); ++j) {
        // If the later action must precede the earlier one, D is violated.
        EXPECT_FALSE(rel.depends(o.schedule[j], o.schedule[i]))
            << "schedule violates D at positions " << i << "," << j;
      }
    }
  }
}

TEST(Reconciler, ReplayingBestScheduleReproducesFinalState) {
  Universe u;
  const ObjectId c = u.add(std::make_unique<Counter>(1));
  std::vector<Log> logs;
  logs.push_back(make_log("a", {std::make_shared<IncrementAction>(c, 2),
                                std::make_shared<DecrementAction>(c, 1)}));
  logs.push_back(make_log("b", {std::make_shared<DecrementAction>(c, 1)}));
  Reconciler r(u, logs);
  const auto result = r.run();
  ASSERT_TRUE(result.found_any());
  const Outcome& best = result.best();

  Universe replay = r.initial_state();
  for (ActionId id : best.schedule) {
    const Action& a = *r.records()[id.index()].action;
    ASSERT_TRUE(a.precondition(replay));
    ASSERT_TRUE(a.execute(replay));
  }
  EXPECT_EQ(replay.fingerprint(), best.final_state.fingerprint());
}

TEST(Reconciler, DescribeScheduleMentionsLogAndOp) {
  Universe u;
  const ObjectId c = u.add(std::make_unique<Counter>(0));
  std::vector<Log> logs;
  logs.push_back(make_log("alice", {std::make_shared<IncrementAction>(c, 7)}));
  Reconciler r(u, logs);
  const auto result = r.run();
  const std::string text = r.describe_schedule(result.best().schedule);
  EXPECT_NE(text.find("alice"), std::string::npos);
  EXPECT_NE(text.find("increment(7)"), std::string::npos);
}

TEST(Reconciler, RunIsRepeatable) {
  Universe u;
  const ObjectId c = u.add(std::make_unique<Counter>(0));
  std::vector<Log> logs;
  logs.push_back(make_log("a", {std::make_shared<IncrementAction>(c, 1)}));
  logs.push_back(make_log("b", {std::make_shared<IncrementAction>(c, 2)}));
  ReconcilerOptions opts;
  opts.heuristic = Heuristic::kAll;
  Reconciler r(u, logs, opts);
  const auto first = r.run();
  const auto second = r.run();
  EXPECT_EQ(first.stats.schedules_completed, second.stats.schedules_completed);
  EXPECT_EQ(first.best().schedule, second.best().schedule);
}

}  // namespace
}  // namespace icecube
