// Solver backends (DESIGN.md §13): determinism of the seeded local search,
// quality ordering (ls >= greedy, == DFS optimum on small problems), and
// the suffix-resimulation oracle — the incremental cost bookkeeping must
// equal a full fresh replay after every single move.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <set>
#include <vector>

#include "core/reconciler.hpp"
#include "objects/counter.hpp"
#include "solver/graph.hpp"
#include "solver/local_search.hpp"
#include "util/timer.hpp"
#include "workload/fages.hpp"
#include "workload/generators.hpp"

namespace icecube {
namespace {

using workload::FagesSpec;
using workload::Generated;

ReconcilerOptions solver_options(SolverKind kind, std::uint64_t moves = 4000) {
  ReconcilerOptions opts;
  opts.backend = kind;
  opts.failure_mode = FailureMode::kSkipAction;
  opts.heuristic = Heuristic::kAll;
  opts.local_search.max_moves = moves;
  opts.local_search.stall_moves = moves;
  return opts;
}

Generated small_fages(std::uint64_t seed) {
  FagesSpec spec;
  spec.replicas = 3;
  spec.tasks_per_replica = 12;
  spec.dependency_density = 1.2;
  spec.conflict_ratio = 0.4;
  spec.shared_resources = 3;
  spec.seed = seed;
  return workload::fages_workload(spec);
}

/// The schedule must be a permutation-with-drops that respects every raw D
/// edge and replays failure-free (kSkipAction puts failures in `skipped`,
/// so every action in `schedule` executed).
void expect_valid(const ReconcileResult& result,
                  const std::vector<ActionRecord>& records,
                  const SolverGraph& graph) {
  const Outcome& best = result.best();
  EXPECT_TRUE(best.complete);
  EXPECT_EQ(best.schedule.size() + best.skipped.size() + best.cutset.size(),
            records.size());
  std::vector<std::size_t> pos(records.size(), SIZE_MAX);
  for (std::size_t i = 0; i < best.schedule.size(); ++i) {
    pos[best.schedule[i].index()] = i;
  }
  for (std::size_t b = 0; b < graph.n; ++b) {
    if (pos[b] == SIZE_MAX) continue;
    for (ActionId a : graph.preds[b]) {
      if (pos[a.index()] == SIZE_MAX) continue;
      EXPECT_LT(pos[a.index()], pos[b])
          << "D edge " << a.value() << " -> " << b << " violated";
    }
  }
}

TEST(SolverBackends, LocalSearchIsDeterministicAcrossRunsAndThreads) {
  const Generated g = small_fages(21);
  std::vector<ActionId> reference;
  double reference_cost = 0.0;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    for (int rep = 0; rep < 2; ++rep) {
      ReconcilerOptions opts = solver_options(SolverKind::kLocalSearch);
      opts.threads = threads;
      Reconciler r(g.initial, g.logs, opts);
      const ReconcileResult result = r.run();
      ASSERT_TRUE(result.found_any());
      EXPECT_EQ(result.stats.backend, "ls");
      EXPECT_GT(result.stats.moves_proposed, 0u);
      if (reference.empty()) {
        reference = result.best().schedule;
        reference_cost = result.best().cost;
        EXPECT_FALSE(reference.empty());
      } else {
        EXPECT_EQ(result.best().schedule, reference)
            << "threads=" << threads << " rep=" << rep;
        EXPECT_DOUBLE_EQ(result.best().cost, reference_cost);
      }
    }
  }
}

TEST(SolverBackends, DifferentSeedsMayDifferButStayValid) {
  const Generated g = small_fages(22);
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    ReconcilerOptions opts = solver_options(SolverKind::kLocalSearch);
    opts.local_search.seed = seed;
    Reconciler r(g.initial, g.logs, opts);
    const ReconcileResult result = r.run();
    ASSERT_TRUE(result.found_any());
    expect_valid(result, r.records(), r.solver_graph());
  }
}

TEST(SolverBackends, GreedyIsValidAndLocalSearchNeverWorse) {
  for (const std::uint64_t seed : {5ULL, 6ULL, 7ULL, 8ULL}) {
    const Generated g = small_fages(seed);
    Reconciler greedy(g.initial, g.logs, solver_options(SolverKind::kGreedy));
    const ReconcileResult gres = greedy.run();
    ASSERT_TRUE(gres.found_any());
    EXPECT_EQ(gres.stats.backend, "greedy");
    EXPECT_EQ(gres.stats.moves_proposed, 0u);
    expect_valid(gres, greedy.records(), greedy.solver_graph());

    Reconciler ls(g.initial, g.logs,
                  solver_options(SolverKind::kLocalSearch));
    const ReconcileResult lres = ls.run();
    ASSERT_TRUE(lres.found_any());
    expect_valid(lres, ls.records(), ls.solver_graph());
    // ls starts from the greedy configuration, so it can never end worse.
    EXPECT_LE(lres.best().cost, gres.best().cost + 1e-9);
  }
}

TEST(SolverBackends, LocalSearchMatchesDfsOptimumOnSmallProblems) {
  // Small enough that the capped DFS is exhaustive — its best cost is the
  // true optimum under the shared objective (skip-on-failure, default
  // policy). ls must land exactly on it.
  for (const std::uint64_t seed : {31ULL, 32ULL, 33ULL}) {
    FagesSpec spec;
    spec.replicas = 2;
    spec.tasks_per_replica = 4;
    spec.dependency_density = 1.0;
    spec.conflict_ratio = 0.5;
    spec.shared_resources = 2;
    spec.seed = seed;
    const Generated g = workload::fages_workload(spec);

    Reconciler dfs(g.initial, g.logs, solver_options(SolverKind::kDfs));
    const ReconcileResult dres = dfs.run();
    ASSERT_TRUE(dres.found_any());
    ASSERT_FALSE(dres.stats.hit_limit);

    Reconciler ls(g.initial, g.logs,
                  solver_options(SolverKind::kLocalSearch, 8000));
    const ReconcileResult lres = ls.run();
    ASSERT_TRUE(lres.found_any());
    EXPECT_NEAR(lres.best().cost, dres.best().cost, 1e-9)
        << "seed=" << seed;
  }
}

TEST(SolverBackends, CounterWorkloadQualityOrdering) {
  workload::CounterSpec spec;
  spec.replicas = 2;
  spec.actions_per_replica = 4;
  spec.initial_balance = 20;
  spec.max_amount = 15;
  spec.increment_probability = 0.3;
  spec.seed = 9;
  const Generated g = workload::counter_workload(spec);

  ReconcilerOptions dfs_opts = solver_options(SolverKind::kDfs);
  dfs_opts.limits.max_schedules = 2'000'000;  // skip-mode branching is wide
  Reconciler dfs(g.initial, g.logs, dfs_opts);
  const ReconcileResult dres = dfs.run();
  ASSERT_FALSE(dres.stats.hit_limit);
  Reconciler greedy(g.initial, g.logs, solver_options(SolverKind::kGreedy));
  const ReconcileResult gres = greedy.run();
  Reconciler ls(g.initial, g.logs,
                solver_options(SolverKind::kLocalSearch, 8000));
  const ReconcileResult lres = ls.run();

  EXPECT_LE(lres.best().cost, gres.best().cost + 1e-9);
  EXPECT_NEAR(lres.best().cost, dres.best().cost, 1e-9);
}

TEST(SolverBackends, AutoResolvesByProblemSize) {
  const Generated g = small_fages(41);
  {
    ReconcilerOptions opts = solver_options(SolverKind::kAuto);
    Reconciler r(g.initial, g.logs, opts);
    EXPECT_EQ(r.resolved_backend(), SolverKind::kAuto);
    const ReconcileResult result = r.run();
    EXPECT_EQ(result.stats.backend, "auto");
    ASSERT_TRUE(result.found_any());
  }
  {
    ReconcilerOptions opts = solver_options(SolverKind::kAuto);
    opts.dense_graph_limit = 8;  // force the oversized branch
    Reconciler r(g.initial, g.logs, opts);
    EXPECT_EQ(r.resolved_backend(), SolverKind::kLocalSearch);
    const ReconcileResult result = r.run();
    EXPECT_EQ(result.stats.backend, "ls");
    ASSERT_TRUE(result.found_any());
  }
}

TEST(SolverBackends, AutoMatchesDfsOnSmallProblems) {
  // Within dense_graph_limit with one cutset-free sub-problem small enough
  // for the oracle (<= auto_dfs_max_actions), auto is exactly DFS.
  FagesSpec spec;
  spec.replicas = 2;
  spec.tasks_per_replica = 10;
  spec.conflict_ratio = 0.4;
  spec.shared_resources = 2;
  spec.seed = 42;
  const Generated g = workload::fages_workload(spec);
  Reconciler dfs(g.initial, g.logs, solver_options(SolverKind::kDfs));
  const ReconcileResult dres = dfs.run();
  Reconciler auto_r(g.initial, g.logs, solver_options(SolverKind::kAuto));
  const ReconcileResult ares = auto_r.run();
  ASSERT_TRUE(dres.found_any());
  ASSERT_TRUE(ares.found_any());
  EXPECT_EQ(ares.best().schedule, dres.best().schedule);
  EXPECT_DOUBLE_EQ(ares.best().cost, dres.best().cost);
}

TEST(SolverOracle, IncrementalCostEqualsFullReplayOn500Moves) {
  // The heart of the incremental machinery: after every proposed move —
  // accepted or rejected, across all four move kinds — the maintained cost
  // must equal a from-scratch replay of the current configuration.
  const Generated g = small_fages(77);
  const std::vector<ActionRecord> records = flatten(g.logs);
  Universe initial = g.initial;
  initial.set_copy_mode(Universe::CopyMode::kCopyOnWrite);
  const SolverGraph graph = build_solver_graph(initial, records, nullptr);

  LocalSearchOptions opts;
  opts.seed = 1234;
  opts.checkpoint_interval = 8;  // small interval: many boundary crossings
  opts.tabu_tenure = 4;
  LocalSearchEngine engine(records, graph, initial, Bitset(records.size()),
                           opts);
  ASSERT_DOUBLE_EQ(engine.current_cost(), engine.full_replay_cost());
  for (int move = 0; move < 500; ++move) {
    if (!engine.step()) break;
    ASSERT_DOUBLE_EQ(engine.current_cost(), engine.full_replay_cost())
        << "divergence after move " << move;
  }
  EXPECT_GE(engine.proposals(), 500u);
  EXPECT_GT(engine.accepted(), 0u);
  EXPECT_LE(engine.best_cost(), engine.current_cost() + 1e-12);
}

TEST(SolverOracle, OracleHoldsOnContestedCounterWorkload) {
  // Execution failures (not just precondition failures) exercise the
  // taint-recovery path: a counter decrement can pass its precondition
  // against a stale view and then fail in execute.
  workload::CounterSpec spec;
  spec.replicas = 3;
  spec.actions_per_replica = 8;
  spec.initial_balance = 25;
  spec.max_amount = 20;
  spec.increment_probability = 0.35;
  spec.seed = 5;
  const Generated g = workload::counter_workload(spec);
  const std::vector<ActionRecord> records = flatten(g.logs);
  Universe initial = g.initial;
  initial.set_copy_mode(Universe::CopyMode::kCopyOnWrite);
  const SolverGraph graph = build_solver_graph(initial, records, nullptr);

  LocalSearchOptions opts;
  opts.seed = 99;
  opts.checkpoint_interval = 4;
  LocalSearchEngine engine(records, graph, initial, Bitset(records.size()),
                           opts);
  for (int move = 0; move < 300; ++move) {
    if (!engine.step()) break;
    ASSERT_DOUBLE_EQ(engine.current_cost(), engine.full_replay_cost())
        << "divergence after move " << move;
  }
}

TEST(SolverGraphTest, EdgesMatchDenseRelationsOnFages) {
  // The sparse builder must agree with the dense matrix + relations
  // pipeline on which raw D edges exist.
  const Generated g = small_fages(55);
  Reconciler dense(g.initial, g.logs, solver_options(SolverKind::kDfs));
  Reconciler sparse(g.initial, g.logs, solver_options(SolverKind::kGreedy));
  const SolverGraph& graph = sparse.solver_graph();
  const Relations& relations = dense.relations();
  for (std::size_t a = 0; a < graph.n; ++a) {
    std::set<std::uint32_t> sparse_succs;
    for (ActionId b : graph.succs[a]) sparse_succs.insert(b.value());
    std::set<std::uint32_t> dense_succs;
    relations.raw_successors(ActionId(static_cast<std::uint32_t>(a)))
        .for_each([&](std::size_t b) {
          dense_succs.insert(static_cast<std::uint32_t>(b));
        });
    EXPECT_EQ(sparse_succs, dense_succs) << "action " << a;
  }
}

TEST(FagesWorkloadTest, DeterministicAndReplaysInIsolation) {
  const FagesSpec spec;
  const Generated a = workload::fages_workload(spec);
  const Generated b = workload::fages_workload(spec);
  ASSERT_EQ(a.logs.size(), b.logs.size());
  for (std::size_t i = 0; i < a.logs.size(); ++i) {
    ASSERT_EQ(a.logs[i].size(), b.logs[i].size());
    for (std::size_t j = 0; j < a.logs[i].size(); ++j) {
      EXPECT_EQ(a.logs[i].at(j).tag(), b.logs[i].at(j).tag());
    }
  }
  // §2.1's log-correctness invariant: each log replays in full against the
  // common initial state.
  for (const Log& log : a.logs) {
    Universe state = a.initial.snapshot();
    for (std::size_t j = 0; j < log.size(); ++j) {
      ASSERT_TRUE(log.at(j).precondition(state)) << "log pos " << j;
      ASSERT_TRUE(log.at(j).execute(state)) << "log pos " << j;
    }
  }
}

TEST(FagesWorkloadTest, ConflictsForceSkipsAcrossReplicas) {
  // With capacity-1 claim cells contended by every replica, the merged
  // problem cannot execute everything — the losers must be skipped.
  FagesSpec spec;
  spec.replicas = 4;
  spec.tasks_per_replica = 10;
  spec.conflict_ratio = 0.8;
  spec.shared_resources = 2;
  spec.seed = 3;
  const Generated g = workload::fages_workload(spec);
  Reconciler r(g.initial, g.logs, solver_options(SolverKind::kLocalSearch));
  const ReconcileResult result = r.run();
  ASSERT_TRUE(result.found_any());
  EXPECT_TRUE(result.best().complete);
  EXPECT_FALSE(result.best().skipped.empty());
  EXPECT_FALSE(result.best().schedule.empty());
}

}  // namespace
}  // namespace icecube
