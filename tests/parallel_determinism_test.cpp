// Determinism of the parallel engine (--threads / ReconcilerOptions::threads).
//
// The contract (DESIGN.md §8): for every thread count, reconciliation
// returns bit-for-bit the same outcomes — same schedules, same skipped and
// cut sets, same costs, same final states, same non-timing statistics — as
// the sequential engine. These tests run identical problems at threads ∈
// {1, 2, 8} and compare everything except wall-clock fields.
//
// The multi-cutset scenarios use a scripted order table that manufactures C
// independent two-action dependence cycles (2^C proper cutsets), because
// cutset-level parallelism — and the budget carving in the merge — only
// engages with more than one cutset.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/reconciler.hpp"
#include "jigsaw/experiment.hpp"
#include "test_helpers.hpp"
#include "workload/generators.hpp"

namespace icecube {
namespace {

using testing::ScriptedObject;
using testing::make_log;

/// Always-succeeding action with a fully parameterised tag (NopAction only
/// carries an op name; the lockstep order table needs params).
class TaggedNop final : public SimpleAction {
 public:
  TaggedNop(Tag tag, ObjectId target)
      : SimpleAction(std::move(tag), {target}) {}
  [[nodiscard]] bool precondition(const Universe&) const override {
    return true;
  }
  bool execute(Universe&) const override { return true; }
};

std::vector<std::size_t> indices(const std::vector<ActionId>& ids) {
  std::vector<std::size_t> out;
  out.reserve(ids.size());
  for (ActionId id : ids) out.push_back(id.index());
  return out;
}

/// Full structural comparison of two reconcile results; `label` names the
/// thread count under test in failure messages.
void expect_identical(const ReconcileResult& want, const ReconcileResult& got,
                      const std::string& label) {
  SCOPED_TRACE(label);
  ASSERT_EQ(want.outcomes.size(), got.outcomes.size());
  for (std::size_t i = 0; i < want.outcomes.size(); ++i) {
    SCOPED_TRACE("outcome " + std::to_string(i));
    const Outcome& a = want.outcomes[i];
    const Outcome& b = got.outcomes[i];
    EXPECT_EQ(indices(a.schedule), indices(b.schedule));
    EXPECT_EQ(indices(a.skipped), indices(b.skipped));
    EXPECT_EQ(indices(a.cutset), indices(b.cutset));
    EXPECT_EQ(a.complete, b.complete);
    EXPECT_EQ(a.degraded, b.degraded);
    EXPECT_EQ(a.cost, b.cost);
    EXPECT_EQ(a.final_state.fingerprint(), b.final_state.fingerprint());
  }

  ASSERT_EQ(want.cutsets.size(), got.cutsets.size());
  for (std::size_t i = 0; i < want.cutsets.size(); ++i) {
    EXPECT_EQ(indices(want.cutsets[i].actions), indices(got.cutsets[i].actions))
        << "cutset " << i;
  }
  EXPECT_EQ(want.degraded, got.degraded);
  EXPECT_EQ(indices(want.degraded_dropped), indices(got.degraded_dropped));

  // Every statistic except the wall-clock ones must match exactly.
  const SearchStats& s = want.stats;
  const SearchStats& t = got.stats;
  EXPECT_EQ(s.schedules_completed, t.schedules_completed);
  EXPECT_EQ(s.dead_ends, t.dead_ends);
  EXPECT_EQ(s.sim_steps, t.sim_steps);
  EXPECT_EQ(s.precondition_failures, t.precondition_failures);
  EXPECT_EQ(s.execution_failures, t.execution_failures);
  EXPECT_EQ(s.memoized_failures, t.memoized_failures);
  EXPECT_EQ(s.prefix_prunes, t.prefix_prunes);
  EXPECT_EQ(s.state_clones, t.state_clones);
  EXPECT_EQ(s.hit_limit, t.hit_limit);
  EXPECT_EQ(s.cutsets_truncated, t.cutsets_truncated);
  EXPECT_EQ(s.cutset_count, t.cutset_count);
  EXPECT_EQ(s.constraint_pairs_evaluated, t.constraint_pairs_evaluated);
  EXPECT_EQ(s.constraint_order_calls, t.constraint_order_calls);
  EXPECT_EQ(s.schedules_to_best, t.schedules_to_best);
}

/// Runs the same problem at threads 1, 2 and 8 and checks the results are
/// indistinguishable.
void expect_thread_invariant(const Universe& initial,
                             const std::vector<Log>& logs,
                             ReconcilerOptions options,
                             const std::string& label) {
  options.threads = 1;
  Reconciler sequential(initial, logs, options);
  const ReconcileResult reference = sequential.run();
  for (const std::size_t threads : {2u, 8u}) {
    options.threads = threads;
    Reconciler parallel(initial, logs, options);
    expect_identical(reference, parallel.run(),
                     label + " threads=" + std::to_string(threads));
  }
}

/// Order table that manufactures `cycles` independent 2-cycles out of
/// cyc(i, side) pairs, keeps each log's free(log, pos) actions in order
/// (reversal unsafe, cross-log maybe), and pins all cycle survivors after
/// the frees in ascending cycle order. Same table as bench_parallel.
ScriptedObject::OrderFn lockstep_table() {
  return [](const Action& a, const Action& b, LogRelation rel) {
    const Tag& ta = a.tag();
    const Tag& tb = b.tag();
    const bool a_cyc = ta.op == "cyc";
    const bool b_cyc = tb.op == "cyc";
    if (a_cyc && b_cyc) {
      if (ta.param(0) == tb.param(0)) return Constraint::kUnsafe;
      return ta.param(0) < tb.param(0) ? Constraint::kSafe
                                       : Constraint::kUnsafe;
    }
    if (a_cyc != b_cyc) {
      return b_cyc ? Constraint::kSafe : Constraint::kUnsafe;
    }
    if (rel == LogRelation::kSameLog) return Constraint::kUnsafe;
    return Constraint::kMaybe;
  };
}

struct Lockstep {
  Universe initial;
  std::vector<Log> logs;
};

Lockstep make_lockstep(int cycles, int frees_per_log) {
  Lockstep w;
  const ObjectId obj =
      w.initial.add(std::make_unique<ScriptedObject>(lockstep_table()));
  std::vector<ActionPtr> a, b;
  for (int f = 0; f < frees_per_log; ++f) {
    a.push_back(std::make_shared<TaggedNop>(Tag("free", {0, f}), obj));
    b.push_back(std::make_shared<TaggedNop>(Tag("free", {1, f}), obj));
  }
  for (int c = 0; c < cycles; ++c) {
    a.push_back(std::make_shared<TaggedNop>(Tag("cyc", {c, 0}), obj));
    b.push_back(std::make_shared<TaggedNop>(Tag("cyc", {c, 1}), obj));
  }
  w.logs.push_back(make_log("site-a", std::move(a)));
  w.logs.push_back(make_log("site-b", std::move(b)));
  return w;
}

TEST(ParallelDeterminism, MultiCutsetUnlimitedBudget) {
  const Lockstep w = make_lockstep(/*cycles=*/4, /*frees_per_log=*/4);
  ReconcilerOptions options;
  options.heuristic = Heuristic::kAll;
  options.limits.max_schedules = 10'000'000;  // never binding
  expect_thread_invariant(w.initial, w.logs, options, "lockstep-unlimited");
}

// Tight schedule budgets make workers overshoot their (unknowable up front)
// share of the global cap, forcing the merge to carve per-cutset budgets
// and re-run — the code path where determinism is hardest.
TEST(ParallelDeterminism, MultiCutsetTightScheduleBudget) {
  const Lockstep w = make_lockstep(/*cycles=*/4, /*frees_per_log=*/3);
  for (const std::uint64_t cap : {1, 7, 19, 20, 21, 150, 400}) {
    ReconcilerOptions options;
    options.heuristic = Heuristic::kAll;
    options.limits.max_schedules = cap;
    expect_thread_invariant(w.initial, w.logs, options,
                            "cap=" + std::to_string(cap));
  }
}

TEST(ParallelDeterminism, MultiCutsetTightStepBudget) {
  const Lockstep w = make_lockstep(/*cycles=*/4, /*frees_per_log=*/3);
  for (const std::uint64_t steps : {1, 50, 137, 1000}) {
    ReconcilerOptions options;
    options.heuristic = Heuristic::kAll;
    options.limits.max_schedules = 1'000'000;
    options.limits.max_steps = steps;
    expect_thread_invariant(w.initial, w.logs, options,
                            "steps=" + std::to_string(steps));
  }
}

// stop_at_first_complete halts the whole search mid-sequence: later cutsets
// must contribute nothing even if their workers already ran.
TEST(ParallelDeterminism, MultiCutsetStopAtFirstComplete) {
  const Lockstep w = make_lockstep(/*cycles=*/3, /*frees_per_log=*/4);
  ReconcilerOptions options;
  options.heuristic = Heuristic::kAll;
  options.stop_at_first_complete = true;
  expect_thread_invariant(w.initial, w.logs, options, "first-complete");
}

TEST(ParallelDeterminism, MultiCutsetSmallKeepK) {
  const Lockstep w = make_lockstep(/*cycles=*/4, /*frees_per_log=*/3);
  ReconcilerOptions options;
  options.heuristic = Heuristic::kAll;
  options.keep_outcomes = 2;  // keep-K merge must reproduce sequential ties
  expect_thread_invariant(w.initial, w.logs, options, "keep-2");
}

TEST(ParallelDeterminism, JigsawExperimentMatchesSequential) {
  using jigsaw::Problem;
  using K = jigsaw::PlayerSpec::Kind;
  const Problem problem =
      jigsaw::make_problem(4, 4, jigsaw::Board::OrderCase::kKeepLogOrder,
                           {{K::kU1, 8}, {K::kU2, 8}});
  ReconcilerOptions options;
  options.heuristic = Heuristic::kSafe;
  options.limits.max_schedules = 20000;
  expect_thread_invariant(problem.initial, problem.logs, options, "jigsaw");
}

TEST(ParallelDeterminism, CalendarWorkload) {
  const auto generated = workload::calendar_workload(
      {.users = 4, .actions_per_user = 4, .seed = 11});
  ReconcilerOptions options;
  options.heuristic = Heuristic::kAll;
  options.failure_mode = FailureMode::kSkipAction;
  options.limits.max_schedules = 5000;
  expect_thread_invariant(generated.initial, generated.logs, options,
                          "calendar");
}

TEST(ParallelDeterminism, FileSystemWorkload) {
  const auto generated = workload::fs_workload(
      {.replicas = 3, .actions_per_replica = 5, .seed = 7});
  ReconcilerOptions options;
  options.heuristic = Heuristic::kAll;
  options.limits.max_schedules = 5000;
  expect_thread_invariant(generated.initial, generated.logs, options, "fs");
}

// Randomized sweep: seeds × substrates × option shapes. Everything must be
// thread-count invariant, including runs that hit their limits and degrade.
TEST(ParallelDeterminism, SeededWorkloadSweep) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const bool odd = (seed % 2) != 0;
    ReconcilerOptions options;
    options.heuristic = odd ? Heuristic::kAll : Heuristic::kSafe;
    options.failure_mode =
        odd ? FailureMode::kSkipAction : FailureMode::kAbortBranch;
    options.limits.max_schedules = odd ? 300 : 4000;
    options.memoize_failures = odd;
    options.prune_equivalent = !odd;

    const auto counter = workload::counter_workload(
        {.replicas = 3, .actions_per_replica = 4, .seed = seed});
    expect_thread_invariant(counter.initial, counter.logs, options,
                            "counter seed=" + std::to_string(seed));

    const auto fs = workload::fs_workload(
        {.replicas = 2, .actions_per_replica = 5, .seed = seed});
    expect_thread_invariant(fs.initial, fs.logs, options,
                            "fs seed=" + std::to_string(seed));

    const auto cal = workload::calendar_workload(
        {.users = 3, .actions_per_user = 3, .seed = seed});
    expect_thread_invariant(cal.initial, cal.logs, options,
                            "calendar seed=" + std::to_string(seed));
  }
}

// threads=0 resolves to the hardware lane count — whatever that is on the
// host, results must still match the sequential engine.
TEST(ParallelDeterminism, HardwareThreadCountAlsoMatches) {
  const Lockstep w = make_lockstep(/*cycles=*/3, /*frees_per_log=*/3);
  ReconcilerOptions options;
  options.heuristic = Heuristic::kAll;
  options.threads = 1;
  Reconciler sequential(w.initial, w.logs, options);
  const ReconcileResult reference = sequential.run();
  options.threads = 0;
  Reconciler parallel(w.initial, w.logs, options);
  expect_identical(reference, parallel.run(), "threads=hardware");
}

}  // namespace
}  // namespace icecube
