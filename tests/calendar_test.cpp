// Tests for the calendar substrate and the paper's second motivating
// example: the unique successful ordering freeC, appBC, appAB.
#include <gtest/gtest.h>

#include <memory>

#include "core/reconciler.hpp"
#include "objects/calendar.hpp"
#include "test_helpers.hpp"

namespace icecube {
namespace {

using testing::make_log;

TEST(Calendar, BookAndCancel) {
  Calendar cal("A");
  EXPECT_TRUE(cal.free_at(9));
  cal.book(9, "standup");
  EXPECT_FALSE(cal.free_at(9));
  EXPECT_EQ(cal.appointment_at(9), "standup");
  EXPECT_TRUE(cal.cancel(9));
  EXPECT_TRUE(cal.free_at(9));
  EXPECT_FALSE(cal.cancel(9));  // nothing to cancel
}

TEST(Calendar, CloneIsDeep) {
  Calendar cal("A");
  cal.book(9, "x");
  auto copy = cal.clone();
  cal.cancel(9);
  EXPECT_FALSE(dynamic_cast<Calendar&>(*copy).free_at(9));
}

TEST(Calendar, RequestBooksEarliestCommonFreeSlot) {
  Universe u;
  const ObjectId a = u.add(std::make_unique<Calendar>("A"));
  const ObjectId b = u.add(std::make_unique<Calendar>("B"));
  u.as<Calendar>(a).book(9, "busy");  // A busy at 9, B free all morning

  const RequestAppointmentAction req(a, b, 9, 11, "AB");
  ASSERT_TRUE(req.precondition(u));
  ASSERT_TRUE(req.execute(u));
  // Earliest common slot is 10.
  EXPECT_EQ(u.as<Calendar>(a).appointment_at(10), "AB");
  EXPECT_EQ(u.as<Calendar>(b).appointment_at(10), "AB");
  EXPECT_TRUE(u.as<Calendar>(b).free_at(9));
}

TEST(Calendar, RequestFailsWhenNoCommonSlot) {
  Universe u;
  const ObjectId a = u.add(std::make_unique<Calendar>("A"));
  const ObjectId b = u.add(std::make_unique<Calendar>("B"));
  u.as<Calendar>(a).book(9, "x");
  u.as<Calendar>(b).book(10, "y");
  const RequestAppointmentAction req(a, b, 9, 10, "AB");
  EXPECT_FALSE(req.precondition(u));
}

TEST(CalendarOrder, CancelBeforeRequestIsSafe) {
  Universe u;
  const ObjectId a = u.add(std::make_unique<Calendar>("A"));
  const ObjectId b = u.add(std::make_unique<Calendar>("B"));
  const auto& cal = u.as<Calendar>(a);
  const CancelAppointmentAction cancel(a, 9);
  const RequestAppointmentAction req(a, b, 9, 11, "AB");
  EXPECT_EQ(cal.order(cancel, req, LogRelation::kAcrossLogs),
            Constraint::kSafe);
  EXPECT_EQ(cal.order(req, cancel, LogRelation::kAcrossLogs),
            Constraint::kMaybe);
}

// Regression for the witness the constraint soundness auditor found
// (UNSOUND_SAFE, same-log): a log recording [request, cancel] may have
// cancelled the very slot the request booked — the swapped order
// [cancel, request] then fails on the empty slot, so the same-log swap must
// not claim `safe`.
TEST(CalendarOrder, CancelBeforeRequestWithinLogIsNotSafe) {
  Universe u;
  const ObjectId a = u.add(std::make_unique<Calendar>("A"));
  const ObjectId b = u.add(std::make_unique<Calendar>("B"));
  const auto& cal = u.as<Calendar>(a);
  const RequestAppointmentAction req(a, b, 9, 9, "AB");
  const CancelAppointmentAction cancel(a, 9);
  // The log order [request, cancel] succeeds from the empty calendars...
  Universe log_order = u;
  ASSERT_TRUE(req.precondition(log_order));
  ASSERT_TRUE(req.execute(log_order));
  ASSERT_TRUE(cancel.precondition(log_order));
  ASSERT_TRUE(cancel.execute(log_order));
  // ...but the swapped order fails immediately.
  Universe swapped = u;
  EXPECT_FALSE(cancel.precondition(swapped));
  EXPECT_EQ(cal.order(cancel, req, LogRelation::kSameLog),
            Constraint::kMaybe);
}

TEST(CalendarOrder, ConcurrentRequestsAreMaybe) {
  Universe u;
  const ObjectId a = u.add(std::make_unique<Calendar>("A"));
  const ObjectId b = u.add(std::make_unique<Calendar>("B"));
  const ObjectId c = u.add(std::make_unique<Calendar>("C"));
  const auto& cal = u.as<Calendar>(b);
  const RequestAppointmentAction ab(a, b, 9, 11, "AB");
  const RequestAppointmentAction bc(b, c, 9, 11, "BC");
  EXPECT_EQ(cal.order(ab, bc, LogRelation::kAcrossLogs), Constraint::kMaybe);
  EXPECT_EQ(cal.order(bc, ab, LogRelation::kAcrossLogs), Constraint::kMaybe);
}

TEST(CalendarOrder, SameSlotCancelsConflict) {
  Universe u;
  const ObjectId a = u.add(std::make_unique<Calendar>("A"));
  const auto& cal = u.as<Calendar>(a);
  const CancelAppointmentAction c1(a, 9);
  const CancelAppointmentAction c2(a, 9);
  const CancelAppointmentAction c3(a, 10);
  EXPECT_EQ(cal.order(c1, c2, LogRelation::kAcrossLogs), Constraint::kUnsafe);
  EXPECT_EQ(cal.order(c1, c3, LogRelation::kAcrossLogs), Constraint::kSafe);
}

// ---------------------------------------------------------------------------
// The paper's example. Monday morning = hours 9..11. As of Friday: A free
// all morning; B has free slots at 9 and 10 only; C fully booked. Offline:
// appAB (A–B, closest to 9), appBC (B–C, closest to 9), freeC (C cancels
// 9:00). Unique success order: freeC, appBC, appAB.

struct CalendarExample {
  Universe universe;
  ObjectId a, b, c;
  std::vector<Log> logs;
};

CalendarExample make_calendar_example() {
  CalendarExample ex;
  ex.a = ex.universe.add(std::make_unique<Calendar>("A"));
  ex.b = ex.universe.add(std::make_unique<Calendar>("B"));
  ex.c = ex.universe.add(std::make_unique<Calendar>("C"));
  // B busy at 11, C busy all morning.
  ex.universe.as<Calendar>(ex.b).book(11, "B-own");
  auto& cal_c = ex.universe.as<Calendar>(ex.c);
  cal_c.book(9, "C-9");
  cal_c.book(10, "C-10");
  cal_c.book(11, "C-11");

  ex.logs.push_back(make_log(
      "A", {std::make_shared<RequestAppointmentAction>(ex.a, ex.b, 9, 11,
                                                       "appAB")}));
  ex.logs.push_back(make_log(
      "B", {std::make_shared<RequestAppointmentAction>(ex.b, ex.c, 9, 11,
                                                       "appBC")}));
  ex.logs.push_back(make_log(
      "C", {std::make_shared<CancelAppointmentAction>(ex.c, 9)}));
  return ex;
}

TEST(CalendarExampleTest, UniqueSuccessfulOrderIsFound) {
  CalendarExample ex = make_calendar_example();
  ReconcilerOptions opts;
  opts.heuristic = Heuristic::kAll;
  Reconciler r(ex.universe, ex.logs, opts);
  const auto result = r.run();

  // Exactly one complete schedule: freeC (2), appBC (1), appAB (0).
  EXPECT_EQ(result.stats.schedules_completed, 1u);
  ASSERT_TRUE(result.best().complete);
  EXPECT_EQ(result.best().schedule,
            (std::vector<ActionId>{ActionId(2), ActionId(1), ActionId(0)}));

  // All appointments placed: B-C at 9, A-B at 10.
  const auto& final_b = result.best().final_state.as<Calendar>(ex.b);
  const auto& final_c = result.best().final_state.as<Calendar>(ex.c);
  EXPECT_EQ(final_b.appointment_at(9), "appBC");
  EXPECT_EQ(final_c.appointment_at(9), "appBC");
  EXPECT_EQ(final_b.appointment_at(10), "appAB");
}

TEST(CalendarExampleTest, NoRejectedAppointmentsInBestOutcome) {
  CalendarExample ex = make_calendar_example();
  ReconcilerOptions opts;
  opts.heuristic = Heuristic::kAll;
  Reconciler r(ex.universe, ex.logs, opts);
  const auto result = r.run();
  EXPECT_TRUE(result.best().skipped.empty());
  EXPECT_TRUE(result.best().cutset.empty());
  EXPECT_EQ(result.best().schedule.size(), 3u);
}

TEST(CalendarExampleTest, IndependenceGuidesSafeHeuristic) {
  CalendarExample ex = make_calendar_example();
  // freeC I appBC (cancel before request on C's calendar is safe).
  Reconciler r(ex.universe, ex.logs, {});
  EXPECT_TRUE(r.relations().independent(ActionId(2), ActionId(1)));
  const auto result = r.run();  // default heuristic: Safe
  ASSERT_TRUE(result.found_any());
  EXPECT_TRUE(result.best().complete);
}

}  // namespace
}  // namespace icecube
