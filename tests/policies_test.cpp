// Tests for the reusable policies (branch-and-bound pruning, cutset
// protection) built on the §3.5 hooks.
#include <gtest/gtest.h>

#include <limits>
#include <memory>

#include "core/policies.hpp"
#include "core/reconciler.hpp"
#include "jigsaw/experiment.hpp"
#include "objects/counter.hpp"
#include "test_helpers.hpp"

namespace icecube {
namespace {

using testing::make_log;
using testing::NopAction;
using testing::ScriptedObject;

TEST(MaxActionsPolicy, FindsTheSameBestWithFewerSchedules) {
  using K = jigsaw::PlayerSpec::Kind;
  const jigsaw::Problem p =
      jigsaw::make_problem(4, 4, jigsaw::Board::OrderCase::kKeepLogOrder,
                           {{K::kU1, 7}, {K::kU3, 10, 4}});
  ReconcilerOptions opts;
  opts.heuristic = Heuristic::kAll;
  opts.failure_mode = FailureMode::kSkipAction;
  opts.limits.max_schedules = 50000;

  Policy exhaustive;
  Reconciler full(p.initial, p.logs, opts, &exhaustive);
  const auto full_result = full.run();

  MaxActionsPolicy bounded(full.records().size());
  Reconciler pruned(p.initial, p.logs, opts, &bounded);
  const auto pruned_result = pruned.run();

  ASSERT_TRUE(full_result.found_any());
  ASSERT_TRUE(pruned_result.found_any());
  EXPECT_EQ(pruned_result.best().schedule.size(),
            full_result.best().schedule.size());
  EXPECT_LE(pruned_result.stats.schedules_explored(),
            full_result.stats.schedules_explored());
  EXPECT_GT(pruned_result.stats.prefix_prunes, 0u);
  EXPECT_EQ(bounded.incumbent(), pruned_result.best().schedule.size());
}

TEST(MaxActionsPolicy, IncumbentTracksBestOutcome) {
  Universe u;
  const ObjectId c = u.add(std::make_unique<Counter>(0));
  std::vector<Log> logs;
  logs.push_back(make_log("a", {std::make_shared<IncrementAction>(c, 1)}));
  logs.push_back(make_log("b", {std::make_shared<DecrementAction>(c, 5)}));
  ReconcilerOptions opts;
  opts.failure_mode = FailureMode::kSkipAction;
  MaxActionsPolicy policy(2);
  Reconciler r(u, logs, opts, &policy);
  const auto result = r.run();
  ASSERT_TRUE(result.found_any());
  EXPECT_EQ(policy.incumbent(), 1u);  // the decrement can never run
  EXPECT_EQ(result.best().schedule.size(), 1u);
}

TEST(ProtectActionsPolicy, KeepsProtectedActionOutOfCutsets) {
  Universe u;
  const ObjectId obj = u.add(std::make_unique<ScriptedObject>(
      [](const Action&, const Action&, LogRelation) {
        return Constraint::kUnsafe;  // every cross pair conflicts
      }));
  std::vector<Log> logs;
  logs.push_back(make_log("a", {std::make_shared<NopAction>(
                                   "p", std::vector{obj})}));
  logs.push_back(make_log("b", {std::make_shared<NopAction>(
                                   "q", std::vector{obj})}));

  ProtectActionsPolicy policy({ActionId(0)});
  Reconciler r(u, logs, {}, &policy);
  const auto result = r.run();
  EXPECT_FALSE(policy.rejected_all());
  ASSERT_TRUE(result.found_any());
  // Action 0 survives; the cutset excluded action 1.
  EXPECT_EQ(result.best().schedule, std::vector<ActionId>{ActionId(0)});
  EXPECT_EQ(result.best().cutset, std::vector<ActionId>{ActionId(1)});
}

TEST(ProtectActionsPolicy, ReportsUnresolvableProtection) {
  Universe u;
  const ObjectId obj = u.add(std::make_unique<ScriptedObject>(
      [](const Action&, const Action&, LogRelation) {
        return Constraint::kUnsafe;
      }));
  std::vector<Log> logs;
  logs.push_back(make_log("a", {std::make_shared<NopAction>(
                                   "p", std::vector{obj})}));
  logs.push_back(make_log("b", {std::make_shared<NopAction>(
                                   "q", std::vector{obj})}));

  // Protecting both sides of a static conflict is unsatisfiable.
  ProtectActionsPolicy policy({ActionId(0), ActionId(1)});
  Reconciler r(u, logs, {}, &policy);
  const auto result = r.run();
  EXPECT_TRUE(policy.rejected_all());
  EXPECT_TRUE(result.outcomes.empty());
}

TEST(ParcelPolicy, AtomicGroupExecutesFullyOrNotAtAll) {
  // Parcel {dec 30, inc 100} on a counter at 10: the dec can only run after
  // the inc of its own parcel... both executable; plus a lone dec 5.
  Universe u;
  const ObjectId c = u.add(std::make_unique<Counter>(10));
  std::vector<Log> logs;
  logs.push_back(make_log("a", {std::make_shared<IncrementAction>(c, 100),
                                std::make_shared<DecrementAction>(c, 30)}));
  logs.push_back(make_log("b", {std::make_shared<DecrementAction>(c, 5)}));

  ParcelPolicy policy({{ActionId(0), ActionId(1)}});
  ReconcilerOptions opts;
  opts.heuristic = Heuristic::kAll;
  opts.failure_mode = FailureMode::kSkipAction;
  Reconciler r(u, logs, opts, &policy);
  const auto result = r.run();
  ASSERT_TRUE(result.found_any());
  EXPECT_TRUE(policy.satisfied(result.best()));
  EXPECT_EQ(result.best().schedule.size(), 3u);
  EXPECT_EQ(result.best().final_state.as<Counter>(c).value(), 75);
}

TEST(ParcelPolicy, UnsatisfiableParcelIsFlaggedForCompensation) {
  // The parcel's decrement can never run; the engine only drops failing
  // actions, so every outcome splits the parcel. The policy must flag that
  // (infinite cost, satisfied() false) so the caller can compensate — here
  // by re-running with the parcel removed.
  Universe u;
  const ObjectId c = u.add(std::make_unique<Counter>(0));
  std::vector<Log> logs;
  logs.push_back(make_log("a", {std::make_shared<IncrementAction>(c, 1),
                                std::make_shared<DecrementAction>(c, 50)}));
  logs.push_back(make_log("b", {std::make_shared<IncrementAction>(c, 2)}));

  ParcelPolicy policy({{ActionId(0), ActionId(1)}});
  ReconcilerOptions opts;
  opts.heuristic = Heuristic::kAll;
  opts.failure_mode = FailureMode::kSkipAction;
  Reconciler r(u, logs, opts, &policy);
  const auto result = r.run();
  ASSERT_TRUE(result.found_any());
  EXPECT_FALSE(policy.satisfied(result.best()));
  EXPECT_EQ(result.best().cost, std::numeric_limits<double>::infinity());

  // Compensation: drop the whole parcel and re-run; the rest reconciles.
  std::vector<Log> without_parcel;
  without_parcel.push_back(Log("a"));
  without_parcel.push_back(logs[1]);
  Reconciler retry(u, without_parcel, opts);
  const auto fixed = retry.run();
  ASSERT_TRUE(fixed.found_any());
  EXPECT_TRUE(fixed.best().complete);
  EXPECT_EQ(fixed.best().final_state.as<Counter>(c).value(), 2);
}

TEST(ParcelPolicy, PrunesUnrecoverablePrefixes) {
  Universe u;
  const ObjectId c = u.add(std::make_unique<Counter>(0));
  std::vector<Log> logs;
  logs.push_back(make_log("a", {std::make_shared<IncrementAction>(c, 1),
                                std::make_shared<DecrementAction>(c, 50)}));
  logs.push_back(make_log("b", {std::make_shared<IncrementAction>(c, 2)}));
  ParcelPolicy policy({{ActionId(0), ActionId(1)}});
  ReconcilerOptions opts;
  opts.heuristic = Heuristic::kAll;
  opts.failure_mode = FailureMode::kSkipAction;
  Reconciler r(u, logs, opts, &policy);
  const auto result = r.run();
  EXPECT_GT(result.stats.prefix_prunes, 0u);
}

TEST(TracePolicy, RecordsFailuresAndOutcomes) {
  Universe u;
  const ObjectId c = u.add(std::make_unique<Counter>(0));
  std::vector<Log> logs;
  logs.push_back(make_log("a", {std::make_shared<IncrementAction>(c, 1)}));
  logs.push_back(make_log("b", {std::make_shared<DecrementAction>(c, 5)}));

  TracePolicy policy;
  ReconcilerOptions opts;
  opts.heuristic = Heuristic::kAll;
  Reconciler r(u, logs, opts, &policy);
  (void)r.run();
  const std::string dump = policy.dump();
  EXPECT_NE(dump.find("precondition failed"), std::string::npos);
  EXPECT_NE(dump.find("outcome"), std::string::npos);
  EXPECT_EQ(policy.dropped_events(), 0u);
}

TEST(TracePolicy, BoundsItsBuffer) {
  Universe u;
  const ObjectId c = u.add(std::make_unique<Counter>(0));
  std::vector<Log> logs;
  for (int i = 0; i < 5; ++i) {
    logs.push_back(make_log("l" + std::to_string(i),
                            {std::make_shared<IncrementAction>(c, 1)}));
  }
  TracePolicy policy(8);  // 5! = 120 outcomes won't fit
  ReconcilerOptions opts;
  opts.heuristic = Heuristic::kAll;
  Reconciler r(u, logs, opts, &policy);
  (void)r.run();
  EXPECT_EQ(policy.events().size(), 8u);
  EXPECT_GT(policy.dropped_events(), 0u);
}

}  // namespace
}  // namespace icecube
