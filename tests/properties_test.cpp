// Property-based suites: invariants checked over randomized inputs
// (seed-parameterized so failures are reproducible).
//
//  - H=All enumerates exactly the linear extensions of D when no dynamic
//    constraint can fail;
//  - every retained schedule satisfies D;
//  - Safe/Strict explore no more schedules than All;
//  - cutsets on random graphs are sound (acyclic after removal) and minimal;
//  - replay of any retained schedule reproduces its final state;
//  - the engine is deterministic.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <numeric>
#include <set>
#include <string>

#include "core/reconciler.hpp"
#include "jigsaw/experiment.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace icecube {
namespace {

using testing::NopAction;
using testing::ScriptedObject;

/// Builds a reconciliation problem of `n` always-succeeding actions, one per
/// log (so the in-log safety rule never fires), with a seeded random
/// constraint between every ordered pair. Returns the reconciler inputs.
struct RandomProblem {
  Universe universe;
  std::vector<Log> logs;
};

RandomProblem make_random_problem(std::size_t n, std::uint64_t seed,
                                  int unsafe_percent, int safe_percent) {
  RandomProblem problem;
  // The constraint table is keyed by tag-op pairs; captured by value in the
  // scripted order function.
  auto table = std::make_shared<std::map<std::pair<std::string, std::string>,
                                         Constraint>>();
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const int roll = static_cast<int>(rng.below(100));
      Constraint c = Constraint::kMaybe;
      if (roll < unsafe_percent) {
        c = Constraint::kUnsafe;
      } else if (roll < unsafe_percent + safe_percent) {
        c = Constraint::kSafe;
      }
      (*table)[{"a" + std::to_string(i), "a" + std::to_string(j)}] = c;
    }
  }
  const ObjectId obj = problem.universe.add(std::make_unique<ScriptedObject>(
      [table](const Action& a, const Action& b, LogRelation) {
        return table->at({a.tag().op, b.tag().op});
      }));
  for (std::size_t i = 0; i < n; ++i) {
    Log log("l" + std::to_string(i));
    log.append(
        std::make_shared<NopAction>("a" + std::to_string(i), std::vector{obj}));
    problem.logs.push_back(std::move(log));
  }
  return problem;
}

/// Brute-force count of linear extensions of the closed D relation,
/// excluding actions in `excluded`.
std::uint64_t linear_extensions(const Relations& rel, const Bitset& excluded) {
  std::vector<std::size_t> members;
  for (std::size_t i = 0; i < rel.size(); ++i) {
    if (!excluded.test(i)) members.push_back(i);
  }
  std::sort(members.begin(), members.end());
  std::uint64_t count = 0;
  do {
    bool ok = true;
    for (std::size_t i = 0; i < members.size() && ok; ++i) {
      for (std::size_t j = i + 1; j < members.size() && ok; ++j) {
        // members[j] placed after members[i]: violated if j must precede i.
        if (rel.depends(ActionId(members[j]), ActionId(members[i])) &&
            !rel.depends(ActionId(members[i]), ActionId(members[j]))) {
          ok = false;
        }
      }
    }
    if (ok) ++count;
  } while (std::next_permutation(members.begin(), members.end()));
  return count;
}

class RandomConstraintSweep : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(RandomConstraintSweep, AllEnumeratesExactlyTheLinearExtensions) {
  const std::uint64_t seed = GetParam();
  RandomProblem problem = make_random_problem(5, seed, 25, 25);
  ReconcilerOptions opts;
  opts.heuristic = Heuristic::kAll;
  opts.keep_outcomes = 1;
  Reconciler r(problem.universe, problem.logs, opts);

  const auto cuts = find_proper_cutsets(r.relations());
  const auto result = r.run();

  // Sum linear extensions over all searched cutsets (the engine explores
  // one search per proper cutset).
  std::uint64_t expected = 0;
  for (const Cutset& cs : result.cutsets) {
    Bitset removed(r.relations().size());
    for (ActionId a : cs.actions) removed.set(a.index());
    const Relations rest = r.relations().restricted(removed);
    expected += linear_extensions(rest, removed);
  }
  EXPECT_EQ(result.stats.schedules_completed, expected)
      << "seed " << seed << " (cutsets: " << cuts.cutsets.size() << ")";
  EXPECT_EQ(result.stats.dead_ends, 0u);  // no dynamic failures possible
}

TEST_P(RandomConstraintSweep, SafeAndStrictExploreNoMoreThanAll) {
  const std::uint64_t seed = GetParam();
  RandomProblem problem = make_random_problem(6, seed, 20, 30);
  auto run_with = [&problem](Heuristic h) {
    ReconcilerOptions opts;
    opts.heuristic = h;
    Reconciler r(problem.universe, problem.logs, opts);
    return r.run().stats.schedules_explored();
  };
  const auto all = run_with(Heuristic::kAll);
  const auto safe = run_with(Heuristic::kSafe);
  const auto strict = run_with(Heuristic::kStrict);
  EXPECT_LE(safe, all) << "seed " << seed;
  EXPECT_LE(strict, safe) << "seed " << seed;
  EXPECT_GE(strict, 1u);
}

TEST_P(RandomConstraintSweep, RetainedSchedulesSatisfyD) {
  const std::uint64_t seed = GetParam();
  RandomProblem problem = make_random_problem(6, seed, 30, 20);
  ReconcilerOptions opts;
  opts.heuristic = Heuristic::kAll;
  opts.keep_outcomes = 32;
  Reconciler r(problem.universe, problem.logs, opts);
  const auto result = r.run();
  for (const Outcome& o : result.outcomes) {
    // An outcome found under a cutset is constrained by the *restricted*
    // relation: §3.2 removes the cut actions *and their associated edges*
    // from D before scheduling.
    Bitset removed(r.relations().size());
    for (ActionId a : o.cutset) removed.set(a.index());
    const Relations rel = r.relations().restricted(removed);
    for (std::size_t i = 0; i < o.schedule.size(); ++i) {
      for (std::size_t j = i + 1; j < o.schedule.size(); ++j) {
        const bool j_before_i = rel.depends(o.schedule[j], o.schedule[i]);
        const bool i_before_j = rel.depends(o.schedule[i], o.schedule[j]);
        EXPECT_FALSE(j_before_i && !i_before_j) << "seed " << seed;
      }
    }
  }
}

TEST_P(RandomConstraintSweep, CutsetsAreSoundAndMinimalOnRandomGraphs) {
  const std::uint64_t seed = GetParam();
  RandomProblem problem = make_random_problem(7, seed, 35, 10);
  Reconciler r(problem.universe, problem.logs, {});
  const Relations& rel = r.relations();
  const auto analysis = find_proper_cutsets(rel);
  ASSERT_FALSE(analysis.cutsets.empty());
  for (const Cutset& cs : analysis.cutsets) {
    Bitset removed(rel.size());
    for (ActionId a : cs.actions) removed.set(a.index());
    EXPECT_TRUE(find_cycles(rel.restricted(removed)).cycles.empty())
        << "seed " << seed << ": cutset does not break all cycles";
    for (std::size_t skip = 0; skip < cs.actions.size(); ++skip) {
      Bitset partial(rel.size());
      for (std::size_t i = 0; i < cs.actions.size(); ++i) {
        if (i != skip) partial.set(cs.actions[i].index());
      }
      EXPECT_FALSE(find_cycles(rel.restricted(partial)).cycles.empty())
          << "seed " << seed << ": cutset not minimal";
    }
  }
}

TEST_P(RandomConstraintSweep, EquivalencePruningPreservesReachableStates) {
  // With failure-free actions and H=All, pruning adjacent commuting
  // inversions must not lose any *distinct final state*, only duplicate
  // routes to them.
  const std::uint64_t seed = GetParam();
  RandomProblem problem = make_random_problem(6, seed, 15, 45);

  /// Collects the fingerprints of all complete outcomes.
  class Collector final : public Policy {
   public:
    bool on_outcome(const Outcome& o) override {
      if (o.complete) fingerprints.insert(o.final_state.fingerprint());
      return true;
    }
    std::set<std::string> fingerprints;
  };

  auto run_with = [&problem](bool prune, Collector& collector) {
    ReconcilerOptions opts;
    opts.heuristic = Heuristic::kAll;
    opts.prune_equivalent = prune;
    opts.keep_outcomes = 1;
    Reconciler r(problem.universe, problem.logs, opts, &collector);
    return r.run().stats.schedules_completed;
  };
  Collector full, pruned;
  const auto full_count = run_with(false, full);
  const auto pruned_count = run_with(true, pruned);
  EXPECT_EQ(full.fingerprints, pruned.fingerprints) << "seed " << seed;
  EXPECT_LE(pruned_count, full_count) << "seed " << seed;
  // NopActions all produce the same state, so with any commuting pair at
  // all, pruning must actually remove something.
  if (full_count > 1 && problem.logs.size() == 6) {
    EXPECT_GE(full_count, pruned_count);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomConstraintSweep,
                         ::testing::Range<std::uint64_t>(1, 21));

// ---------------------------------------------------------------------------
// Jigsaw-workload properties over random U3 games.

class RandomJigsawSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomJigsawSweep, ReplayingBestScheduleReproducesFinalBoard) {
  const std::uint64_t seed = GetParam();
  using K = jigsaw::PlayerSpec::Kind;
  const jigsaw::Problem p =
      jigsaw::make_problem(3, 3, jigsaw::Board::OrderCase::kKeepJoinOrder,
                           {{K::kU3, 6, seed}, {K::kU3, 6, seed + 1000}});
  ReconcilerOptions opts;
  opts.heuristic = Heuristic::kAll;
  opts.failure_mode = FailureMode::kSkipAction;
  opts.limits.max_schedules = 20000;
  jigsaw::JigsawPolicy policy(p.board_id);
  Reconciler r(p.initial, p.logs, opts, &policy);
  const auto result = r.run();
  ASSERT_TRUE(result.found_any()) << "seed " << seed;

  Universe replay = r.initial_state();
  for (ActionId id : result.best().schedule) {
    const Action& a = *r.records()[id.index()].action;
    ASSERT_TRUE(a.precondition(replay)) << "seed " << seed;
    ASSERT_TRUE(a.execute(replay)) << "seed " << seed;
  }
  EXPECT_EQ(replay.fingerprint(), result.best().final_state.fingerprint())
      << "seed " << seed;
}

TEST_P(RandomJigsawSweep, CompleteOutcomesAccountForEveryAction) {
  const std::uint64_t seed = GetParam();
  using K = jigsaw::PlayerSpec::Kind;
  const jigsaw::Problem p =
      jigsaw::make_problem(3, 3, jigsaw::Board::OrderCase::kKeepLogOrder,
                           {{K::kU1, 4}, {K::kU3, 7, seed}});
  ReconcilerOptions opts;
  opts.failure_mode = FailureMode::kSkipAction;
  opts.keep_outcomes = 16;
  jigsaw::JigsawPolicy policy(p.board_id);
  Reconciler r(p.initial, p.logs, opts, &policy);
  const auto result = r.run();
  const std::size_t total = r.records().size();
  for (const Outcome& o : result.outcomes) {
    if (!o.complete) continue;
    EXPECT_EQ(o.schedule.size() + o.skipped.size() + o.cutset.size(), total)
        << "seed " << seed;
    // No action appears twice across the three groups.
    Bitset seen(total);
    for (const auto& group : {o.schedule, o.skipped, o.cutset}) {
      for (ActionId a : group) {
        EXPECT_FALSE(seen.test(a.index())) << "seed " << seed;
        seen.set(a.index());
      }
    }
  }
}

TEST_P(RandomJigsawSweep, SkipModeNeverLosesToAbortMode) {
  // Dropping doomed actions only widens the reachable outcomes, so the best
  // correct-piece count under skip semantics is >= the abort-mode best.
  const std::uint64_t seed = GetParam();
  using K = jigsaw::PlayerSpec::Kind;
  const jigsaw::Problem p =
      jigsaw::make_problem(3, 3, jigsaw::Board::OrderCase::kKeepLogOrder,
                           {{K::kU1, 4}, {K::kU3, 6, seed}});
  auto best_with = [&p](FailureMode fm) {
    ReconcilerOptions opts;
    opts.heuristic = Heuristic::kAll;
    opts.failure_mode = fm;
    opts.limits.max_schedules = 20000;
    return jigsaw::run_experiment(p, opts).best.correct;
  };
  EXPECT_GE(best_with(FailureMode::kSkipAction),
            best_with(FailureMode::kAbortBranch))
      << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomJigsawSweep,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace icecube
