// Quickstart: reconcile two divergent replicas of a shared counter and
// register in ~60 lines.
//
//   $ ./quickstart
//
// Walks through the whole public API: build a universe, record per-replica
// logs, run the reconciler, inspect the best outcome.
#include <cstdio>
#include <memory>

#include "core/reconciler.hpp"
#include "objects/counter.hpp"
#include "objects/rw_register.hpp"

using namespace icecube;

int main() {
  // 1. The shared state both replicas started from: a budget of 100 and a
  //    config register holding 7.
  Universe initial;
  const ObjectId budget = initial.add(std::make_unique<Counter>(100));
  const ObjectId config = initial.add(std::make_unique<RwRegister>(7));

  // 2. Each replica worked in isolation and recorded a log.
  //    Alice spent 150 — valid for her only because she first noted the
  //    boss's promised top-up of 100.
  Log alice("alice");
  alice.append(std::make_shared<IncrementAction>(budget, 100));
  alice.append(std::make_shared<DecrementAction>(budget, 150));
  //    Bob spent 40 and read the config (he saw 7; the read's precondition
  //    records that expectation).
  Log bob("bob");
  bob.append(std::make_shared<DecrementAction>(budget, 40));
  bob.append(std::make_shared<ReadAction>(config, 7));

  // 3. Reconcile. The counter's order method (paper Figure 3) tells the
  //    scheduler to try increments before decrements, so Alice's top-up
  //    lands before either purchase and every action fits.
  Reconciler reconciler(initial, {alice, bob});
  const ReconcileResult result = reconciler.run();

  const Outcome& best = result.best();
  std::printf("complete: %s, %zu actions scheduled, %zu dropped\n",
              best.complete ? "yes" : "no", best.schedule.size(),
              best.skipped.size());
  std::printf("schedule:\n%s",
              reconciler.describe_schedule(best.schedule).c_str());
  std::printf("reconciled state:\n%s", best.final_state.describe().c_str());
  std::printf("search: %llu schedules explored in %.4fs\n",
              static_cast<unsigned long long>(
                  result.stats.schedules_explored()),
              result.stats.elapsed_seconds);
  return 0;
}
