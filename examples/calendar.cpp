// The paper's second motivating example (§2): three users book appointments
// off-line over the weekend; only one replay order satisfies everyone.
//
//   $ ./calendar
//
// A wants an hour with B as close to 9:00 as possible; B wants an hour with
// C likewise; C cancels their 9:00 slot. IceCube finds the unique order
// freeC, appBC, appAB and applies all updates "without generating any
// rejected appointments".
#include <cstdio>
#include <memory>

#include "baseline/temporal_merge.hpp"
#include "core/reconciler.hpp"
#include "objects/calendar.hpp"

using namespace icecube;

int main() {
  // Friday evening: A free all Monday morning; B free at 9 and 10; C full.
  Universe initial;
  const ObjectId a = initial.add(std::make_unique<Calendar>("A"));
  const ObjectId b = initial.add(std::make_unique<Calendar>("B"));
  const ObjectId c = initial.add(std::make_unique<Calendar>("C"));
  initial.as<Calendar>(b).book(11, "own-meeting");
  initial.as<Calendar>(c).book(9, "standup");
  initial.as<Calendar>(c).book(10, "review");
  initial.as<Calendar>(c).book(11, "planning");
  std::printf("Friday evening:\n%s\n", initial.describe().c_str());

  // The weekend's isolated updates, one log per user.
  Log log_a("A"), log_b("B"), log_c("C");
  log_a.append(
      std::make_shared<RequestAppointmentAction>(a, b, 9, 11, "appAB"));
  log_b.append(
      std::make_shared<RequestAppointmentAction>(b, c, 9, 11, "appBC"));
  log_c.append(std::make_shared<CancelAppointmentAction>(c, 9));

  ReconcilerOptions opts;
  opts.heuristic = Heuristic::kAll;  // exhaustive: provably unique solution
  Reconciler reconciler(initial, {log_a, log_b, log_c}, opts);
  const ReconcileResult result = reconciler.run();

  std::printf("complete orderings that satisfy everyone: %llu\n",
              static_cast<unsigned long long>(
                  result.stats.schedules_completed));
  std::printf("%s", reconciler.describe_schedule(result.best().schedule).c_str());
  std::printf("\nMonday morning after reconciliation:\n%s\n",
              result.best().final_state.describe().c_str());

  // Arrival-order replay (a Bayou-like committed order) rejects a request.
  const auto fixed = temporal_merge(initial, {log_a, log_b, log_c},
                                    MergeOrder::kConcatenate);
  std::printf("arrival-order replay rejects %zu appointment(s)\n",
              fixed.conflicts);
  return 0;
}
