// File synchronisation with semantics (§2.4 and the related-work
// discussion): two users diverge on a shared tree; IceCube merges them,
// surfacing — not silently losing — the write-under-deleted-directory
// conflict. Also demonstrates log cleaning (§4.4).
//
//   $ ./file_sync
#include <cstdio>
#include <memory>

#include "core/reconciler.hpp"
#include "logclean/cleaner.hpp"
#include "objects/file_system.hpp"

using namespace icecube;

int main() {
  // The shared tree both laptops started from.
  Universe initial;
  const ObjectId fs = initial.add(std::make_unique<FileSystem>());
  {
    auto& t = initial.as<FileSystem>(fs);
    (void)t.mkdir("/project");
    (void)t.write("/project/notes.txt", "v1");
    (void)t.mkdir("/scratch");
  }

  // Alice edits her notes twice (a dirty log: the first write is
  // redundant), and drafts a report.
  Log alice("alice");
  alice.append(
      std::make_shared<WriteFileAction>(fs, "/project/notes.txt", "v2"));
  alice.append(
      std::make_shared<WriteFileAction>(fs, "/project/notes.txt", "v3"));
  alice.append(
      std::make_shared<WriteFileAction>(fs, "/project/report.txt", "draft"));

  // Bob cleans up: he deletes /scratch — and, concurrently with Alice,
  // writes a file inside it.
  Log bob("bob");
  bob.append(std::make_shared<WriteFileAction>(fs, "/scratch/tmp.txt", "x"));
  bob.append(std::make_shared<DeleteAction>(fs, "/scratch"));

  // Carol writes into the directory Bob is deleting — the paper's
  // write/delete example across logs.
  Log carol("carol");
  carol.append(
      std::make_shared<WriteFileAction>(fs, "/scratch/keep.txt", "mine!"));

  // Log cleaning first (§4.4): Alice's superseded write disappears.
  const CleanReport cleaned = clean_fs_log(initial, alice);
  std::printf("log cleaning: alice %zu -> %zu actions (%zu removed)\n\n",
              alice.size(), cleaned.cleaned.size(), cleaned.removed);

  ReconcilerOptions opts;
  opts.heuristic = Heuristic::kAll;
  opts.failure_mode = FailureMode::kSkipAction;
  Reconciler reconciler(initial, {cleaned.cleaned, bob, carol}, opts);
  const ReconcileResult result = reconciler.run();

  const Outcome& best = result.best();
  std::printf("schedule (%zu applied, %zu dropped):\n%s\n",
              best.schedule.size(), best.skipped.size(),
              reconciler.describe_schedule(best.schedule).c_str());
  std::printf("merged tree:\n");
  for (const auto& path : best.final_state.as<FileSystem>(fs).list()) {
    std::printf("  %s\n", path.c_str());
  }
  std::printf(
      "\nCarol's write into /scratch was dropped *visibly* (it is in the\n"
      "skipped list), because the file system's order method forbids\n"
      "ordering it before Bob's delete — the paper's 'contrary to\n"
      "mathematical intuition' rule that avoids silent data loss.\n");
  std::printf("dropped actions: %zu; conflicts surfaced to the user.\n",
              best.skipped.size());
  return 0;
}
