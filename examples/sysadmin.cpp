// The paper's first motivating example (§2) as a runnable walkthrough: two
// administrators collaboratively manage an OS and an expense budget.
//
//   $ ./sysadmin
//
// Shows how IceCube discovers a cross-log dependency (install the v4
// printer driver before the OS upgrade) and an in-log independency (the
// budget increase may move ahead of the purchases), then finds a
// conflict-free schedule where every fixed-order replay fails.
#include <cstdio>

#include "baseline/temporal_merge.hpp"
#include "core/reconciler.hpp"
#include "objects/sysadmin.hpp"

using namespace icecube;

int main() {
  SysAdminExample ex = make_sysadmin_example();
  std::printf("initial state:\n%s\n", ex.initial.describe().c_str());
  std::printf("log A: upgrade OS v4->v5; buy tape drive 800; fund 1500\n");
  std::printf("log B: buy printer 400; install printer driver (v4)\n\n");

  // What the static analysis sees before any simulation.
  Reconciler reconciler(ex.initial, ex.logs);
  const auto& rel = reconciler.relations();
  std::printf("static analysis:\n");
  std::printf("  B2 (install driver) must precede A1 (upgrade): %s\n",
              rel.depends(ActionId(4), ActionId(0)) ? "yes" : "no");
  std::printf("  A3 (funding) free to move before A2 (tape purchase): %s\n",
              !rel.depends(ActionId(1), ActionId(2)) ? "yes" : "no");

  const ReconcileResult result = reconciler.run();
  std::printf("\nIceCube's schedule (%s):\n%s",
              result.best().complete ? "complete" : "partial",
              reconciler.describe_schedule(result.best().schedule).c_str());
  std::printf("reconciled state:\n%s\n",
              result.best().final_state.describe().c_str());

  // Every predetermined order conflicts somewhere.
  const auto ab = temporal_merge(ex.initial, ex.logs, MergeOrder::kConcatenate);
  std::vector<Log> ba_logs{ex.logs[1], ex.logs[0]};
  const auto ba = temporal_merge(ex.initial, ba_logs, MergeOrder::kConcatenate);
  std::printf("fixed-order baselines: A++B drops %zu action(s), "
              "B++A drops %zu action(s)\n",
              ab.conflicts, ba.conflicts);
  return 0;
}
