// The full replica lifecycle (§2.1): several sites alternate between
// isolated execution and reconciliation rounds, converging after each
// round.
//
//   $ ./multisite [sites rounds]
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "objects/counter.hpp"
#include "objects/file_system.hpp"
#include "replica/site.hpp"
#include "replica/sync.hpp"
#include "util/rng.hpp"

using namespace icecube;

int main(int argc, char** argv) {
  const int site_count = argc > 1 ? std::atoi(argv[1]) : 4;
  const int rounds = argc > 2 ? std::atoi(argv[2]) : 3;

  Universe initial;
  (void)initial.add(std::make_unique<Counter>(50));
  const ObjectId budget{0};
  {
    auto fs = std::make_unique<FileSystem>();
    (void)fs->mkdir("/wiki");
    (void)initial.add(std::move(fs));
  }
  const ObjectId wiki{1};

  std::vector<Site> sites;
  std::vector<Site*> group;
  sites.reserve(static_cast<std::size_t>(site_count));
  for (int i = 0; i < site_count; ++i) {
    sites.emplace_back("site" + std::to_string(i), initial);
  }
  for (auto& s : sites) group.push_back(&s);

  Rng rng(2026);
  for (int round = 0; round < rounds; ++round) {
    std::printf("--- round %d: isolated execution ---\n", round);
    for (int i = 0; i < site_count; ++i) {
      Site& site = sites[static_cast<std::size_t>(i)];
      // Each site does a little budget work and edits its wiki page.
      const auto amount = static_cast<std::int64_t>(rng.below(20)) + 1;
      if (rng.chance(0.5)) {
        (void)site.perform(std::make_shared<IncrementAction>(budget, amount));
      } else {
        (void)site.perform(std::make_shared<DecrementAction>(budget, amount));
      }
      (void)site.perform(std::make_shared<WriteFileAction>(
          wiki, "/wiki/" + site.name(),
          "round " + std::to_string(round)));
      std::printf("  %s logged %zu action(s)\n", site.name().c_str(),
                  site.log().size());
    }

    ReconcilerOptions opts;
    opts.failure_mode = FailureMode::kSkipAction;
    const SyncResult result = synchronise(group, opts);
    if (!result.adopted) {
      std::printf("  sync failed: %s\n", result.error.message().c_str());
      return 1;
    }
    std::printf(
        "  reconciled: %zu applied, %zu dropped, %llu schedules — "
        "converged: %s\n",
        result.reconcile.best().schedule.size(),
        result.reconcile.best().skipped.size(),
        static_cast<unsigned long long>(
            result.reconcile.stats.schedules_explored()),
        converged(group) ? "yes" : "NO");
  }

  std::printf("\nfinal shared state:\n%s",
              sites.front().tentative().describe().c_str());
  return 0;
}
