// Collaborative text editing with operational transformation (§5): two
// writers edit a shared document off-line; reconciliation remaps character
// positions so both sets of edits land where their authors meant them.
//
//   $ ./collab_editor
#include <cstdio>
#include <memory>

#include "objects/text.hpp"
#include "replica/site.hpp"
#include "replica/sync.hpp"

using namespace icecube;

int main() {
  Universe initial;
  (void)initial.add(
      std::make_unique<TextBuffer>("The IceCube approach to reconciliation"));
  const ObjectId doc{0};

  Site alice("alice", initial), bob("bob", initial);
  std::printf("base document: \"%s\"\n\n",
              initial.as<TextBuffer>(doc).text().c_str());

  // Alice works on the front of the sentence.
  (void)alice.perform(std::make_shared<InsertTextAction>(doc, 1, 0, "PODC'01: "));
  (void)alice.perform(std::make_shared<DeleteTextAction>(doc, 1, 13, 8));
  // -> "PODC'01: The approach to reconciliation" in Alice's view
  std::printf("alice sees:    \"%s\"\n",
              alice.tentative().as<TextBuffer>(doc).text().c_str());

  // Bob, concurrently, works on the tail — using the *original* positions.
  (void)bob.perform(std::make_shared<InsertTextAction>(
      doc, 2, 38, " of divergent replicas"));
  (void)bob.perform(std::make_shared<InsertTextAction>(doc, 2, 3, "!"));
  std::printf("bob sees:      \"%s\"\n\n",
              bob.tentative().as<TextBuffer>(doc).text().c_str());

  const SyncResult result = synchronise({&alice, &bob});
  if (!result.adopted) {
    std::printf("sync failed: %s\n", result.error.message().c_str());
    return 1;
  }
  std::printf("merged:        \"%s\"\n",
              alice.tentative().as<TextBuffer>(doc).text().c_str());
  std::printf("converged: %s; schedules explored: %llu\n",
              converged({&alice, &bob}) ? "yes" : "no",
              static_cast<unsigned long long>(
                  result.reconcile.stats.schedules_explored()));
  std::printf(
      "\nBob's insertions were remapped across Alice's concurrent edits —\n"
      "the argument translation the paper calls Operational Transformation\n"
      "('surprisingly complex', #5) — so neither author's intent was lost.\n");
  return 0;
}
