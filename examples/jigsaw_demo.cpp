// The collaborative jigsaw of §4 (the paper's Figure 6, in ASCII): two
// players assemble a 4x4 puzzle from opposite corners, overlap in the
// middle, and IceCube merges their sessions.
//
//   $ ./jigsaw_demo [rows cols p1 p2]
//
// Renders each player's isolated board, then the reconciled board, and
// prints the search statistics under the semantic (Case 1) constraints.
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "core/reconciler.hpp"
#include "jigsaw/experiment.hpp"

using namespace icecube;
using namespace icecube::jigsaw;

namespace {

void show_isolated(const Board& prototype, const Log& log, const char* who) {
  Universe u;
  const ObjectId id = u.add(prototype.clone());
  for (const auto& action : log) {
    if (action->precondition(u)) (void)action->execute(u);
  }
  std::printf("%s's board after isolated play (%zu actions):\n%s\n", who,
              log.size(), u.as<Board>(id).render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const int rows = argc > 1 ? std::atoi(argv[1]) : 4;
  const int cols = argc > 2 ? std::atoi(argv[2]) : 4;
  const int p1 = argc > 3 ? std::atoi(argv[3]) : rows * cols / 2;
  const int p2 = argc > 4 ? std::atoi(argv[4]) : (3 * rows * cols) / 4;

  using K = PlayerSpec::Kind;
  const Problem problem =
      make_problem(rows, cols, Board::OrderCase::kSemantic,
                   {{K::kU1, p1}, {K::kU2, p2}});
  const Board& prototype = problem.initial.as<Board>(problem.board_id);

  std::printf("=== Collaborative jigsaw, %dx%d ===\n\n", rows, cols);
  show_isolated(prototype, problem.logs[0], "Player 1 (U1, top-left)");
  show_isolated(prototype, problem.logs[1], "Player 2 (U2, bottom-right)");

  ReconcilerOptions opts;
  opts.failure_mode = FailureMode::kSkipAction;
  JigsawPolicy policy(problem.board_id);
  Reconciler reconciler(problem.initial, problem.logs, opts, &policy);
  const ReconcileResult result = reconciler.run();

  const Outcome& best = result.best();
  const auto& merged = best.final_state.as<Board>(problem.board_id);
  std::printf("reconciled board (%zu scheduled, %zu dropped, %zu cut):\n%s\n",
              best.schedule.size(), best.skipped.size(), best.cutset.size(),
              merged.render().c_str());
  std::printf("%d of %d pieces placed correctly\n", merged.correct_pieces(),
              prototype.piece_count());
  std::printf("search: %llu schedules, %llu action simulations, %.4fs\n",
              static_cast<unsigned long long>(
                  result.stats.schedules_explored()),
              static_cast<unsigned long long>(result.stats.sim_steps),
              result.stats.elapsed_seconds);
  return 0;
}
