// Exports the static-analysis graphs of the paper's motivating examples as
// Graphviz DOT, for inspection or documentation:
//
//   $ ./constraint_viewer > sysadmin.dot && dot -Tsvg sysadmin.dot -o g.svg
//
// Solid edges: D (must-precede). Dashed: I (safe immediate succession).
#include <cstdio>

#include "core/graphviz.hpp"
#include "core/reconciler.hpp"
#include "objects/sysadmin.hpp"

using namespace icecube;

int main() {
  SysAdminExample ex = make_sysadmin_example();
  Reconciler r(ex.initial, ex.logs);
  std::printf("%s", to_dot(r.records(), r.relations()).c_str());
  std::fprintf(stderr,
               "(relations graph for the sys-admin example written to "
               "stdout; %zu actions, %zu D edges, %zu I pairs)\n",
               r.records().size(), r.relations().dependence_edge_count(),
               r.relations().independence_pair_count());
  return 0;
}
