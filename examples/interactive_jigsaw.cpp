// Interactive reconciliation (§2's pipeline / §4.3's "immediate interactive
// feedback"): the search runs in slices; after every slice the incumbent
// best board is shown, exactly as an interactive application would display
// it while the sweep continues in the background.
//
//   $ ./interactive_jigsaw [slice_budget]
#include <cstdio>
#include <cstdlib>

#include "core/incremental.hpp"
#include "jigsaw/experiment.hpp"

using namespace icecube;
using namespace icecube::jigsaw;

int main(int argc, char** argv) {
  const std::uint64_t slice =
      argc > 1 ? static_cast<std::uint64_t>(std::atoll(argv[1])) : 4000;

  using K = PlayerSpec::Kind;
  const Problem problem =
      make_problem(4, 4, Board::OrderCase::kKeepLogOrder,
                   {{K::kU1, 7}, {K::kU2, 12}});

  ReconcilerOptions opts;
  opts.heuristic = Heuristic::kAll;  // the paper's 38k-schedule sweep
  JigsawPolicy policy(problem.board_id);
  IncrementalReconciler reconciler(problem.initial, problem.logs, opts,
                                   &policy);

  std::printf("=== interactive jigsaw reconciliation (slice = %llu) ===\n\n",
              static_cast<unsigned long long>(slice));
  int slice_no = 0;
  for (;;) {
    const auto progress = reconciler.step(slice);
    const auto& board =
        reconciler.best().final_state.as<Board>(problem.board_id);
    std::printf("slice %2d: %7llu schedules explored, incumbent %2d/%d "
                "correct pieces%s\n",
                ++slice_no,
                static_cast<unsigned long long>(progress.schedules_explored),
                board.correct_pieces(),
                board.rows() * board.cols(),
                progress.finished ? "  [search exhausted]" : "");
    if (progress.finished) break;
  }

  const auto result = reconciler.take_result();
  std::printf("\nfinal board:\n%s",
              result.best()
                  .final_state.as<Board>(problem.board_id)
                  .render()
                  .c_str());
  std::printf(
      "\nNote the incumbent was already optimal after the first slice —\n"
      "the paper's observation that H=All finds the best solution 'after\n"
      "two sequences' and only then sweeps the remaining tens of thousands\n"
      "(interactive applications simply stop early).\n");
  return 0;
}
