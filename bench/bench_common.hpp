// Shared helpers for the experiment benches.
#pragma once

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/outcome.hpp"
#include "jigsaw/experiment.hpp"

namespace bench {

/// Machine-readable sink for bench results. Every bench accepts
/// `--json <path>`; when present, one record per measured run is collected
/// and the whole batch is written as a JSON array when the sink goes out of
/// scope. Without the flag the sink is inert, so benches stay plain
/// table-printing binaries by default.
class JsonSink {
 public:
  JsonSink(int argc, char** argv) {
    for (int i = 1; i + 1 < argc; ++i) {
      if (std::string(argv[i]) == "--json") path_ = argv[i + 1];
    }
  }

  JsonSink(const JsonSink&) = delete;
  JsonSink& operator=(const JsonSink&) = delete;

  ~JsonSink() { flush(); }

  [[nodiscard]] bool active() const { return !path_.empty(); }

  void record(std::string workload, std::size_t n_actions,
              std::size_t threads, double wall_seconds,
              std::uint64_t schedules_explored) {
    if (!active()) return;
    Record r;
    r.workload = std::move(workload);
    r.n_actions = n_actions;
    r.threads = threads;
    r.wall_seconds = wall_seconds;
    r.schedules_explored = schedules_explored;
    records_.push_back(std::move(r));
  }

  /// Overload carrying the state-management clone counters (see
  /// SearchStats::object_clones); benches that exercise the copy-on-write
  /// universe report them, the older benches keep the short form (their
  /// rows emit zeros for the three fields).
  void record(std::string workload, std::size_t n_actions,
              std::size_t threads, double wall_seconds,
              std::uint64_t schedules_explored, std::uint64_t object_clones,
              std::uint64_t clones_avoided, std::uint64_t bytes_cloned) {
    if (!active()) return;
    Record r;
    r.workload = std::move(workload);
    r.n_actions = n_actions;
    r.threads = threads;
    r.wall_seconds = wall_seconds;
    r.schedules_explored = schedules_explored;
    r.object_clones = object_clones;
    r.clones_avoided = clones_avoided;
    r.bytes_cloned = bytes_cloned;
    records_.push_back(std::move(r));
  }

  /// Overload taking a whole SearchStats: tags the row with the backend
  /// name and the local-search move counters, so every bench that runs a
  /// Reconciler reports which solver produced its numbers. `best_cost` is
  /// the policy cost of the best outcome; `dfs_gap` is the relative cost
  /// gap versus the DFS optimum on the same problem (negative = DFS
  /// reference unavailable); `finished = false` marks a run killed by its
  /// wall budget (its other numbers describe the partial run).
  void record(std::string workload, std::size_t n_actions,
              std::size_t threads, double wall_seconds,
              const icecube::SearchStats& stats, double best_cost = 0.0,
              double dfs_gap = -1.0, bool finished = true) {
    if (!active()) return;
    Record r;
    r.workload = std::move(workload);
    r.n_actions = n_actions;
    r.threads = threads;
    r.wall_seconds = wall_seconds;
    r.schedules_explored = stats.schedules_explored();
    r.object_clones = stats.object_clones;
    r.clones_avoided = stats.clones_avoided;
    r.bytes_cloned = stats.bytes_cloned;
    r.backend = stats.backend;
    r.moves_proposed = stats.moves_proposed;
    r.moves_accepted = stats.moves_accepted;
    r.best_cost = best_cost;
    r.dfs_gap = dfs_gap;
    r.finished = finished;
    records_.push_back(std::move(r));
  }

  /// Overload for the streaming daemon benches: rates and commit-latency
  /// quantiles plus the incremental-graph work counters SearchStats
  /// carries for streamed runs. Other benches leave these fields zero.
  void record_stream(std::string workload, std::size_t n_actions,
                     double wall_seconds, double ingest_rate, double p50_ms,
                     double p99_ms, std::uint64_t fast_appends,
                     std::uint64_t full_resolves,
                     const icecube::SearchStats& stats) {
    if (!active()) return;
    Record r;
    r.workload = std::move(workload);
    r.n_actions = n_actions;
    r.wall_seconds = wall_seconds;
    r.backend = stats.backend;
    r.ingest_rate = ingest_rate;
    r.p50_commit_ms = p50_ms;
    r.p99_commit_ms = p99_ms;
    r.fast_appends = fast_appends;
    r.full_resolves = full_resolves;
    r.pairs_evaluated = stats.constraint_pairs_evaluated;
    r.stream_epochs = stats.stream_epochs;
    r.commit_violations = stats.commit_violations;
    r.max_commit_lag = stats.max_commit_lag;
    records_.push_back(std::move(r));
  }

  /// Writes the collected records; called automatically on destruction.
  void flush() {
    if (!active() || records_.empty()) return;
    std::ofstream out(path_);
    if (!out) {
      std::fprintf(stderr, "warning: cannot write JSON to '%s'\n",
                   path_.c_str());
      return;
    }
    out << "[\n";
    for (std::size_t i = 0; i < records_.size(); ++i) {
      const Record& r = records_[i];
      out << "  {\"workload\": \"" << escaped(r.workload)
          << "\", \"n_actions\": " << r.n_actions
          << ", \"threads\": " << r.threads
          << ", \"wall_seconds\": " << r.wall_seconds
          << ", \"schedules_explored\": " << r.schedules_explored
          << ", \"object_clones\": " << r.object_clones
          << ", \"clones_avoided\": " << r.clones_avoided
          << ", \"bytes_cloned\": " << r.bytes_cloned
          << ", \"backend\": \"" << escaped(r.backend)
          << "\", \"moves_proposed\": " << r.moves_proposed
          << ", \"moves_accepted\": " << r.moves_accepted
          << ", \"best_cost\": " << r.best_cost
          << ", \"dfs_gap\": " << r.dfs_gap
          << ", \"ingest_rate\": " << r.ingest_rate
          << ", \"p50_commit_ms\": " << r.p50_commit_ms
          << ", \"p99_commit_ms\": " << r.p99_commit_ms
          << ", \"fast_appends\": " << r.fast_appends
          << ", \"full_resolves\": " << r.full_resolves
          << ", \"pairs_evaluated\": " << r.pairs_evaluated
          << ", \"stream_epochs\": " << r.stream_epochs
          << ", \"commit_violations\": " << r.commit_violations
          << ", \"max_commit_lag\": " << r.max_commit_lag
          << ", \"finished\": " << (r.finished ? "true" : "false") << "}"
          << (i + 1 < records_.size() ? "," : "") << "\n";
    }
    out << "]\n";
    records_.clear();
  }

 private:
  struct Record {
    std::string workload;
    std::size_t n_actions = 0;
    std::size_t threads = 1;
    double wall_seconds = 0.0;
    std::uint64_t schedules_explored = 0;
    std::uint64_t object_clones = 0;
    std::uint64_t clones_avoided = 0;
    std::uint64_t bytes_cloned = 0;
    std::string backend = "dfs";
    std::uint64_t moves_proposed = 0;
    std::uint64_t moves_accepted = 0;
    double best_cost = 0.0;
    double dfs_gap = -1.0;  ///< negative: no DFS reference for this row
    double ingest_rate = 0.0;   ///< streaming rows: sustained actions/sec
    double p50_commit_ms = 0.0;
    double p99_commit_ms = 0.0;
    std::uint64_t fast_appends = 0;
    std::uint64_t full_resolves = 0;
    std::uint64_t pairs_evaluated = 0;
    std::uint64_t stream_epochs = 0;
    std::uint64_t commit_violations = 0;
    std::uint64_t max_commit_lag = 0;
    bool finished = true;
  };

  static std::string escaped(const std::string& s) {
    std::string out;
    for (const char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

  std::string path_;
  std::vector<Record> records_;
};

inline void print_header() {
  std::printf("%-52s %8s %7s %7s %9s %10s %11s %9s %6s\n", "configuration",
              "actions", "pieces", "correct", "complete", "schedules",
              "sched2best", "time(s)", "cap?");
}

inline void print_row(const char* name,
                      const icecube::jigsaw::ExperimentResult& r) {
  std::printf("%-52s %8d %7d %7d %9s %10llu %11llu %9.3f %6s\n", name,
              r.best.actions, r.best.pieces, r.best.correct,
              r.best_complete ? "yes" : "no",
              static_cast<unsigned long long>(r.stats.schedules_explored()),
              static_cast<unsigned long long>(r.stats.schedules_to_best),
              r.stats.elapsed_seconds, r.stats.hit_limit ? "HIT" : "-");
}

inline icecube::ReconcilerOptions options(icecube::Heuristic h,
                                          icecube::FailureMode fm,
                                          std::uint64_t cap = 100000) {
  icecube::ReconcilerOptions opts;
  opts.heuristic = h;
  opts.failure_mode = fm;
  opts.limits.max_schedules = cap;
  return opts;
}

}  // namespace bench
