// Shared helpers for the experiment benches.
#pragma once

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "jigsaw/experiment.hpp"

namespace bench {

/// Machine-readable sink for bench results. Every bench accepts
/// `--json <path>`; when present, one record per measured run is collected
/// and the whole batch is written as a JSON array when the sink goes out of
/// scope. Without the flag the sink is inert, so benches stay plain
/// table-printing binaries by default.
class JsonSink {
 public:
  JsonSink(int argc, char** argv) {
    for (int i = 1; i + 1 < argc; ++i) {
      if (std::string(argv[i]) == "--json") path_ = argv[i + 1];
    }
  }

  JsonSink(const JsonSink&) = delete;
  JsonSink& operator=(const JsonSink&) = delete;

  ~JsonSink() { flush(); }

  [[nodiscard]] bool active() const { return !path_.empty(); }

  void record(std::string workload, std::size_t n_actions,
              std::size_t threads, double wall_seconds,
              std::uint64_t schedules_explored) {
    if (!active()) return;
    records_.push_back(Record{std::move(workload), n_actions, threads,
                              wall_seconds, schedules_explored, 0, 0, 0});
  }

  /// Overload carrying the state-management clone counters (see
  /// SearchStats::object_clones); benches that exercise the copy-on-write
  /// universe report them, the older benches keep the short form (their
  /// rows emit zeros for the three fields).
  void record(std::string workload, std::size_t n_actions,
              std::size_t threads, double wall_seconds,
              std::uint64_t schedules_explored, std::uint64_t object_clones,
              std::uint64_t clones_avoided, std::uint64_t bytes_cloned) {
    if (!active()) return;
    records_.push_back(Record{std::move(workload), n_actions, threads,
                              wall_seconds, schedules_explored, object_clones,
                              clones_avoided, bytes_cloned});
  }

  /// Writes the collected records; called automatically on destruction.
  void flush() {
    if (!active() || records_.empty()) return;
    std::ofstream out(path_);
    if (!out) {
      std::fprintf(stderr, "warning: cannot write JSON to '%s'\n",
                   path_.c_str());
      return;
    }
    out << "[\n";
    for (std::size_t i = 0; i < records_.size(); ++i) {
      const Record& r = records_[i];
      out << "  {\"workload\": \"" << escaped(r.workload)
          << "\", \"n_actions\": " << r.n_actions
          << ", \"threads\": " << r.threads
          << ", \"wall_seconds\": " << r.wall_seconds
          << ", \"schedules_explored\": " << r.schedules_explored
          << ", \"object_clones\": " << r.object_clones
          << ", \"clones_avoided\": " << r.clones_avoided
          << ", \"bytes_cloned\": " << r.bytes_cloned << "}"
          << (i + 1 < records_.size() ? "," : "") << "\n";
    }
    out << "]\n";
    records_.clear();
  }

 private:
  struct Record {
    std::string workload;
    std::size_t n_actions;
    std::size_t threads;
    double wall_seconds;
    std::uint64_t schedules_explored;
    std::uint64_t object_clones;
    std::uint64_t clones_avoided;
    std::uint64_t bytes_cloned;
  };

  static std::string escaped(const std::string& s) {
    std::string out;
    for (const char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

  std::string path_;
  std::vector<Record> records_;
};

inline void print_header() {
  std::printf("%-52s %8s %7s %7s %9s %10s %11s %9s %6s\n", "configuration",
              "actions", "pieces", "correct", "complete", "schedules",
              "sched2best", "time(s)", "cap?");
}

inline void print_row(const char* name,
                      const icecube::jigsaw::ExperimentResult& r) {
  std::printf("%-52s %8d %7d %7d %9s %10llu %11llu %9.3f %6s\n", name,
              r.best.actions, r.best.pieces, r.best.correct,
              r.best_complete ? "yes" : "no",
              static_cast<unsigned long long>(r.stats.schedules_explored()),
              static_cast<unsigned long long>(r.stats.schedules_to_best),
              r.stats.elapsed_seconds, r.stats.hit_limit ? "HIT" : "-");
}

inline icecube::ReconcilerOptions options(icecube::Heuristic h,
                                          icecube::FailureMode fm,
                                          std::uint64_t cap = 100000) {
  icecube::ReconcilerOptions opts;
  opts.heuristic = h;
  opts.failure_mode = fm;
  opts.limits.max_schedules = cap;
  return opts;
}

}  // namespace bench
