// Shared helpers for the experiment benches.
#pragma once

#include <cstdio>

#include "jigsaw/experiment.hpp"

namespace bench {

inline void print_header() {
  std::printf("%-52s %8s %7s %7s %9s %10s %11s %9s %6s\n", "configuration",
              "actions", "pieces", "correct", "complete", "schedules",
              "sched2best", "time(s)", "cap?");
}

inline void print_row(const char* name,
                      const icecube::jigsaw::ExperimentResult& r) {
  std::printf("%-52s %8d %7d %7d %9s %10llu %11llu %9.3f %6s\n", name,
              r.best.actions, r.best.pieces, r.best.correct,
              r.best_complete ? "yes" : "no",
              static_cast<unsigned long long>(r.stats.schedules_explored()),
              static_cast<unsigned long long>(r.stats.schedules_to_best),
              r.stats.elapsed_seconds, r.stats.hit_limit ? "HIT" : "-");
}

inline icecube::ReconcilerOptions options(icecube::Heuristic h,
                                          icecube::FailureMode fm,
                                          std::uint64_t cap = 100000) {
  icecube::ReconcilerOptions opts;
  opts.heuristic = h;
  opts.failure_mode = fm;
  opts.limits.max_schedules = cap;
  return opts;
}

}  // namespace bench
