// Experiment E2 (§4.3, "Cases 2 to 4"): the keep-log-order policy on the
// paper's game — first player places 7 pieces (U1), second places 12 (U2),
// on a 4x4 board.
//
// Paper:
//  - H=Strict: "two solutions, which are equivalent to log 1 and log 2
//    alone"; H=Safe: same; Cases 3 and 4: same, independently of H.
//  - H=All: "the reconciler finds the optimal solution, i.e., where all 16
//    pieces are correctly placed ... the simulator finds the optimal
//    solution after two sequences, in 0.11 s, after which it continues to
//    run through all possible 38,102 schedules."
//
// The insert precondition is underspecified in the paper (DESIGN.md §5.4);
// both variants are shown. strict insert reproduces the "log alone"
// observation exactly; the lenient insert lets H=All reach the complete
// 16-piece optimum. Hardware scaled ~100x since 2001, so compare schedule
// counts and time-per-schedule shape, not absolute seconds.
#include <cstdio>

#include "bench_common.hpp"
#include "baseline/temporal_merge.hpp"

using namespace icecube;
using namespace icecube::jigsaw;
using K = PlayerSpec::Kind;

namespace {

Problem game(Board::OrderCase oc, bool strict_insert) {
  ScenarioOptions so;
  so.strict_insert = strict_insert;
  return make_problem(4, 4, oc, {{K::kU1, 7}, {K::kU2, 12}}, so);
}

}  // namespace

int main() {
  std::printf(
      "=== E2: Case 2 (keep log order), U1-7 vs U2-12, 4x4 board ===\n\n");
  bench::print_header();

  for (const bool strict_insert : {true, false}) {
    for (const Heuristic h :
         {Heuristic::kStrict, Heuristic::kSafe, Heuristic::kAll}) {
      char name[96];
      std::snprintf(name, sizeof name, "Case 2, H=%-6s insert=%s",
                    std::string(to_string(h)).c_str(),
                    strict_insert ? "strict " : "lenient");
      bench::print_row(
          name, run_experiment(game(Board::OrderCase::kKeepLogOrder,
                                    strict_insert),
                               bench::options(h, FailureMode::kAbortBranch)));
    }
  }

  // Cases 3 and 4 on the same clean game: "the same result, independently
  // of the value of H" (clean logs leave removes nothing to re-order).
  for (const int c : {3, 4}) {
    for (const Heuristic h :
         {Heuristic::kStrict, Heuristic::kSafe, Heuristic::kAll}) {
      char name[96];
      std::snprintf(name, sizeof name, "Case %d, H=%-6s insert=lenient", c,
                    std::string(to_string(h)).c_str());
      bench::print_row(
          name,
          run_experiment(game(static_cast<Board::OrderCase>(c), false),
                         bench::options(h, FailureMode::kAbortBranch)));
    }
  }

  // Drop-failed-actions semantics: the heuristics reach a complete schedule
  // with the 3 doomed duplicate joins dropped.
  bench::print_row(
      "Case 2, H=Safe, skip-failed-actions",
      run_experiment(game(Board::OrderCase::kKeepLogOrder, false),
                     bench::options(Heuristic::kSafe,
                                    FailureMode::kSkipAction)));

  // Baseline: predetermined-order merges of the same logs.
  {
    const Problem p = game(Board::OrderCase::kKeepLogOrder, false);
    const auto concat =
        temporal_merge(p.initial, p.logs, MergeOrder::kConcatenate);
    const auto rr = temporal_merge(p.initial, p.logs, MergeOrder::kRoundRobin);
    const auto& cb = concat.final_state.as<Board>(p.board_id);
    const auto& rb = rr.final_state.as<Board>(p.board_id);
    std::printf(
        "\nBaseline fixed-order merges (Bayou-style, failed actions "
        "dropped):\n"
        "  concatenate: %zu applied, %zu conflicts, %d correct pieces\n"
        "  round-robin: %zu applied, %zu conflicts, %d correct pieces\n",
        concat.applied, concat.conflicts, cb.correct_pieces(), rr.applied,
        rr.conflicts, rb.correct_pieces());
  }

  std::printf(
      "\nPaper-vs-measured: Strict/Safe explore exactly 2 sequences (the two\n"
      "'solutions'); with the strict insert they are equivalent to log 1\n"
      "(7 pieces) and log 2 (12 pieces) alone, as reported. H=All finds the\n"
      "16-piece optimum within the first 2 sequences and then sweeps tens of\n"
      "thousands of schedules (paper: 38,102; exact counts differ with the\n"
      "2001 prototype's unrecorded action encoding).\n");
  return 0;
}
