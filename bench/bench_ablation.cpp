// Ablation bench: how much does each engine design choice buy?
//
// DESIGN.md calls out three choices worth isolating:
//  1. static-equivalence pruning (§2's "statically equivalent [schedules]
//     do not need to be evaluated", §6 future work) — on/off;
//  2. the B-rule interpretation for H=Strict (DESIGN.md §5.2) —
//     paper-literal vs lookahead;
//  3. failure handling (DESIGN.md §5.3) — abort-branch vs skip-action.
//
// Workloads: the E2 jigsaw game and a commuting-heavy counter workload
// where equivalence pruning shines.
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "core/reconciler.hpp"
#include "objects/counter.hpp"

using namespace icecube;
using namespace icecube::jigsaw;
using K = PlayerSpec::Kind;

namespace {

void jigsaw_rows() {
  std::printf("--- jigsaw E2 game (U1-7 vs U2-12, 4x4) ---\n");
  bench::print_header();
  for (const bool prune : {false, true}) {
    // Case 4's adjacency preferences create the safe (commuting) pairs the
    // pruning exploits; Case 2 has none, so it is unaffected there.
    const Problem p = make_problem(4, 4, Board::OrderCase::kAdjacency,
                                   {{K::kU1, 7}, {K::kU2, 12}});
    auto opts = bench::options(Heuristic::kAll, FailureMode::kAbortBranch);
    opts.prune_equivalent = prune;
    char name[96];
    std::snprintf(name, sizeof name, "Case4 H=All, equivalence pruning %s",
                  prune ? "ON " : "OFF");
    bench::print_row(name, run_experiment(p, opts));
  }
  for (const BRule rule : {BRule::kPaperLiteral, BRule::kLookahead}) {
    const Problem p = make_problem(4, 4, Board::OrderCase::kAdjacency,
                                   {{K::kU1, 7}, {K::kU2, 12}});
    auto opts = bench::options(Heuristic::kStrict, FailureMode::kAbortBranch);
    opts.b_rule = rule;
    char name[96];
    std::snprintf(name, sizeof name, "Case4 H=Strict, B-rule %s",
                  rule == BRule::kPaperLiteral ? "paper-literal" : "lookahead");
    bench::print_row(name, run_experiment(p, opts));
  }
  for (const FailureMode fm :
       {FailureMode::kAbortBranch, FailureMode::kSkipAction}) {
    const Problem p = make_problem(4, 4, Board::OrderCase::kKeepLogOrder,
                                   {{K::kU1, 7}, {K::kU2, 12}});
    const auto opts = bench::options(Heuristic::kSafe, fm);
    char name[96];
    std::snprintf(name, sizeof name, "Case2 H=Safe, failures: %s",
                  fm == FailureMode::kAbortBranch ? "abort-branch"
                                                  : "skip-action");
    bench::print_row(name, run_experiment(p, opts));
  }
  std::printf("\n");
}

void memoization_rows() {
  // §6 failure memoization pays on multi-object universes, where the
  // causal key of a doomed action repeats across interleavings of
  // unrelated work.
  std::printf(
      "--- failure memoization: 5 counters, 1 doomed decrement ---\n"
      "%-52s %12s %12s %14s\n",
      "configuration", "schedules", "failures", "memoized");
  for (const bool memoize : {false, true}) {
    Universe u;
    std::vector<ObjectId> counters;
    for (int i = 0; i < 5; ++i) {
      counters.push_back(u.add(std::make_unique<Counter>(0)));
    }
    std::vector<Log> logs;
    Log busy("busy");
    for (int i = 1; i < 5; ++i) {
      busy.append(std::make_shared<IncrementAction>(counters[
          static_cast<std::size_t>(i)], 1));
    }
    logs.push_back(std::move(busy));
    Log doomed("doomed");
    doomed.append(std::make_shared<DecrementAction>(counters[0], 9));
    logs.push_back(std::move(doomed));

    ReconcilerOptions opts;
    opts.heuristic = Heuristic::kAll;
    opts.memoize_failures = memoize;
    opts.limits.max_schedules = 100000;
    Reconciler r(u, logs, opts);
    const auto result = r.run();
    char name[96];
    std::snprintf(name, sizeof name, "H=All, failure memoization %s",
                  memoize ? "ON " : "OFF");
    std::printf("%-52s %12llu %12llu %14llu\n", name,
                static_cast<unsigned long long>(
                    result.stats.schedules_explored()),
                static_cast<unsigned long long>(
                    result.stats.precondition_failures +
                    result.stats.execution_failures),
                static_cast<unsigned long long>(
                    result.stats.memoized_failures));
  }
  std::printf("\n");
}

void counter_rows() {
  std::printf(
      "--- commuting-heavy workload: 8 one-increment logs, shared counter "
      "---\n%-52s %12s %12s\n",
      "configuration", "schedules", "time(s)");
  for (const bool prune : {false, true}) {
    Universe u;
    const ObjectId c = u.add(std::make_unique<Counter>(0));
    std::vector<Log> logs;
    for (int i = 0; i < 8; ++i) {
      Log log("r" + std::to_string(i));
      log.append(std::make_shared<IncrementAction>(c, 1 << i));
      logs.push_back(std::move(log));
    }
    ReconcilerOptions opts;
    opts.heuristic = Heuristic::kAll;
    opts.prune_equivalent = prune;
    opts.limits.max_schedules = 100000;
    Reconciler r(u, logs, opts);
    const auto result = r.run();
    char name[96];
    std::snprintf(name, sizeof name, "8 commuting increments, pruning %s",
                  prune ? "ON " : "OFF");
    std::printf("%-52s %12llu %12.4f\n", name,
                static_cast<unsigned long long>(
                    result.stats.schedules_explored()),
                result.stats.elapsed_seconds);
  }
  std::printf(
      "\nAll 8! = 40,320 increment orders reach the same state; pruning\n"
      "keeps one complete canonical representative (plus the short stuck\n"
      "prefixes the adjacent-pair rule cannot avoid — still a ~300x cut).\n");
}

}  // namespace

int main() {
  std::printf("=== Ablations: engine design choices ===\n\n");
  jigsaw_rows();
  memoization_rows();
  counter_rows();
  return 0;
}
