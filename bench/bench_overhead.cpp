// Experiment E5 (§4.3): the overhead of static constraints.
//
// Paper: "In the absence of static constraints, a simulation of 10,000
// schedules is 0.781 s. In Case 2 the same number of schedules is simulated
// in 2.294 s, three times longer. Simulation times are proportional to the
// number of simulated schedules. For instance 100,000 simulations without
// static constraints terminate in 7.7 s."
//
// Two parts:
//  1. a proportionality table (time vs schedule count, both modes), printed
//     directly;
//  2. google-benchmark timings of the same runs for statistically robust
//     per-schedule costs.
//
// Expect absolute times ~100x faster than 2001 hardware. Note our
// architecture pays the constraint cost once up front (matrix + relations +
// closure) rather than per schedule, so the per-schedule ratio is near 1x
// rather than the paper's 3x; the table separates setup from search time to
// make that visible.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hpp"
#include "util/timer.hpp"

using namespace icecube;
using namespace icecube::jigsaw;
using K = PlayerSpec::Kind;

namespace {

Problem game(bool constrained) {
  // A workload whose unconstrained search is effectively unbounded: the
  // 7+12 game of E2.
  return make_problem(4, 4,
                      constrained ? Board::OrderCase::kKeepLogOrder
                                  : Board::OrderCase::kUnconstrained,
                      {{K::kU1, 7}, {K::kU2, 12}});
}

ExperimentResult run_capped(const Problem& p, std::uint64_t cap) {
  auto opts = bench::options(Heuristic::kAll, FailureMode::kAbortBranch, cap);
  opts.record_partial_outcomes = false;  // measure raw search, not retention
  return run_experiment(p, opts);
}

void proportionality_table() {
  std::printf("%-34s %12s %12s %14s\n", "mode", "schedules", "time(s)",
              "us/schedule");
  for (const bool constrained : {false, true}) {
    const Problem p = game(constrained);
    for (const std::uint64_t cap : {10000u, 25000u, 50000u, 100000u}) {
      const auto r = run_capped(p, cap);
      const auto n = r.stats.schedules_explored();
      char name[64];
      std::snprintf(name, sizeof name, "%s cap=%llu",
                    constrained ? "Case 2 static constraints"
                                : "no static constraints",
                    static_cast<unsigned long long>(cap));
      std::printf("%-34s %12llu %12.4f %14.3f\n", name,
                  static_cast<unsigned long long>(n),
                  r.stats.elapsed_seconds,
                  n ? 1e6 * r.stats.elapsed_seconds / static_cast<double>(n)
                    : 0.0);
    }
  }
}

void degraded_mode_table() {
  // Deadline-bounded degradation: when the budget dies before any complete
  // schedule is found, the reconciler answers with the greedy-insertion
  // fallback instead of nothing. This prices that answer: the fallback's
  // latency against the full search it replaces.
  const Problem p = game(true);
  JigsawPolicy policy(p.board_id);
  std::printf("\n%-34s %12s %12s %10s %9s\n", "degraded mode", "schedules",
              "time(s)", "degraded", "dropped");
  for (const bool exhausted : {false, true}) {
    auto opts =
        bench::options(Heuristic::kAll, FailureMode::kAbortBranch, 100000);
    opts.record_partial_outcomes = false;
    if (exhausted) opts.limits.max_steps = 1;  // budget gone: pure fallback
    Reconciler r(p.initial, p.logs, opts, &policy);
    const ReconcileResult result = r.run();
    std::printf("%-34s %12llu %12.4f %10s %9zu\n",
                exhausted ? "greedy fallback (budget=1 step)"
                          : "full search (cap=100000)",
                static_cast<unsigned long long>(
                    result.stats.schedules_explored()),
                result.stats.elapsed_seconds,
                result.degraded ? "yes" : "no",
                result.degraded_dropped.size());
  }
}

void degraded_fallback(benchmark::State& state) {
  // Cost of a budget-exhausted run: constraint setup plus one greedy
  // insertion pass — the floor a `--deadline` caller pays when the search
  // contributes nothing.
  const Problem p = game(true);
  JigsawPolicy policy(p.board_id);
  auto opts =
      bench::options(Heuristic::kAll, FailureMode::kAbortBranch, 100000);
  opts.record_partial_outcomes = false;
  opts.limits.max_steps = 1;
  for (auto _ : state) {
    Reconciler r(p.initial, p.logs, opts, &policy);
    const ReconcileResult result = r.run();
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(degraded_fallback)->Unit(benchmark::kMillisecond);

void search_10k(benchmark::State& state) {
  const bool constrained = state.range(0) != 0;
  const Problem p = game(constrained);
  std::uint64_t schedules = 0;
  for (auto _ : state) {
    const auto r = run_capped(p, 10000);
    schedules += r.stats.schedules_explored();
    benchmark::DoNotOptimize(r);
  }
  state.counters["schedules/s"] = benchmark::Counter(
      static_cast<double>(schedules), benchmark::Counter::kIsRate);
}
BENCHMARK(search_10k)->Arg(0)->Arg(1)->ArgNames({"static_constraints"})
    ->Unit(benchmark::kMillisecond);

void constraint_setup(benchmark::State& state) {
  // The one-time cost our architecture pays instead of a per-schedule tax:
  // constraint matrix + D/I relations + transitive closure + cutsets.
  const Problem p = game(true);
  JigsawPolicy policy(p.board_id);
  for (auto _ : state) {
    Reconciler r(p.initial, p.logs, {}, &policy);
    benchmark::DoNotOptimize(r.relations());
  }
}
BENCHMARK(constraint_setup)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== E5: overhead of static constraints ===\n\n");
  proportionality_table();
  degraded_mode_table();
  std::printf(
      "\nShape: time is proportional to the number of simulated schedules in\n"
      "both modes (us/schedule roughly constant down each column), matching\n"
      "the paper. The paper's 3x per-schedule constrained-vs-unconstrained\n"
      "ratio does not reappear because this implementation evaluates the\n"
      "constraint relation once up front (see constraint_setup below) and\n"
      "consults bitsets during search.\n\n");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
