// Experiment E3 (§4.3): "In a game where the second player follows scenario
// U3, we observe in Cases 3 and 4 occasional reorderings that provide
// better solutions than in Case 2 (which disallows reorderings)."
//
// Sweep of 12 seeded U3 games (first player U1 with 7 pieces, second player
// U3 with 12 actions, 4x4 board) under Cases 2, 3 and 4 with
// drop-failed-actions semantics. A "win" is a seed where freeing removes
// (Case 3) or preferring adjacent joins (Case 4) improves the correct-piece
// count over Case 2.
#include <cstdio>

#include "bench_common.hpp"

using namespace icecube;
using namespace icecube::jigsaw;
using K = PlayerSpec::Kind;

int main() {
  std::printf("=== E3: U1 vs U3, Cases 2-4, drop-failed-actions ===\n\n");
  std::printf("%-8s %18s %18s %18s %s\n", "seed", "case2 corr(sched)",
              "case3 corr(sched)", "case4 corr(sched)", "reorder wins?");

  int wins = 0;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    int correct[5] = {};
    unsigned long long schedules[5] = {};
    for (int c = 2; c <= 4; ++c) {
      const Problem p = make_problem(4, 4, static_cast<Board::OrderCase>(c),
                                     {{K::kU1, 7}, {K::kU3, 12, seed}});
      const auto r = run_experiment(
          p, bench::options(Heuristic::kAll, FailureMode::kSkipAction,
                            30000));
      correct[c] = r.best.correct;
      schedules[c] = r.stats.schedules_explored();
    }
    const bool win = correct[3] > correct[2] || correct[4] > correct[2];
    wins += win ? 1 : 0;
    std::printf("%-8llu %10d(%6llu) %10d(%6llu) %10d(%6llu) %s\n",
                static_cast<unsigned long long>(seed), correct[2],
                schedules[2], correct[3], schedules[3], correct[4],
                schedules[4], win ? "YES" : "no");
  }

  std::printf(
      "\n%d of 12 seeds show a reordering win — 'occasional', as the paper\n"
      "puts it. Note the weaker policies' larger schedule counts: freeing\n"
      "removes (Case 3) and adding adjacency preferences (Case 4) enlarge\n"
      "the search space, foreshadowing E4's cap-outs on bigger games.\n",
      wins);
  return 0;
}
