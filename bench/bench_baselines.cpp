// Baseline comparison (B1, §1.1/§5): IceCube versus every reconciliation
// strategy the paper positions itself against, on generated divergent
// workloads.
//
//  - temporal merge (Bayou-style): fixed order, failures dropped;
//  - greedy insertion (Phatak & Badrinath style): per-action optimal
//    insertion point, no scheduling phase;
//  - algebraic sync (Ramsey & Csirmaz style, file system only): canonical
//    static order, conflicts excluded;
//  - IceCube: constraint-guided search (Safe heuristic, drop-failed).
//
// Metric: actions applied out of the total logged (higher is better — every
// dropped action is a user's work lost or a conflict escalated), plus each
// strategy's cost proxy.
#include <cstdio>

#include "baseline/algebraic_sync.hpp"
#include "baseline/greedy_insertion.hpp"
#include "baseline/temporal_merge.hpp"
#include "core/reconciler.hpp"
#include "objects/file_system.hpp"
#include "workload/generators.hpp"

using namespace icecube;

namespace {

struct Tally {
  std::size_t applied = 0;
  std::size_t total = 0;
  void add(std::size_t a, std::size_t t) {
    applied += a;
    total += t;
  }
  [[nodiscard]] double percent() const {
    return total == 0 ? 100.0
                      : 100.0 * static_cast<double>(applied) /
                            static_cast<double>(total);
  }
};

std::size_t total_actions(const std::vector<Log>& logs) {
  std::size_t n = 0;
  for (const auto& log : logs) n += log.size();
  return n;
}

std::size_t icecube_applied(const Universe& initial,
                            const std::vector<Log>& logs) {
  ReconcilerOptions opts;
  opts.heuristic = Heuristic::kSafe;
  opts.failure_mode = FailureMode::kSkipAction;
  opts.limits.max_schedules = 20000;
  Reconciler r(initial, logs, opts);
  const auto result = r.run();
  return result.found_any() ? result.best().schedule.size() : 0;
}

Universe icecube_final(const Universe& initial, const std::vector<Log>& logs) {
  ReconcilerOptions opts;
  opts.heuristic = Heuristic::kSafe;
  opts.failure_mode = FailureMode::kSkipAction;
  opts.limits.max_schedules = 20000;
  Reconciler r(initial, logs, opts);
  const auto result = r.run();
  return result.found_any() ? result.best().final_state : initial;
}

/// Counting "applied" actions flatters fixed orders: a write that executes
/// and is then wiped by a concurrent delete counts as applied but the work
/// is still lost. For file systems we therefore count *visible effects*:
/// logged intentions that hold in the final tree.
std::size_t fs_effects_preserved(const Universe& final_state,
                                 const std::vector<Log>& logs) {
  const auto& tree = final_state.as<FileSystem>(ObjectId(0));
  std::size_t preserved = 0;
  for (const Log& log : logs) {
    for (const auto& action : log) {
      const Tag& tag = action->tag();
      if (tag.op == "mkdir") {
        preserved += tree.is_dir(tag.str_param(0)) ? 1 : 0;
      } else if (tag.op == "fswrite") {
        preserved += tree.read(tag.str_param(0)) == tag.str_param(1) ? 1 : 0;
      } else if (tag.op == "fsdelete") {
        preserved += tree.exists(tag.str_param(0)) ? 0 : 1;
      }
    }
  }
  return preserved;
}

void counter_comparison() {
  std::printf("--- tight shared budget: 3 replicas x 5 actions, 10 seeds ---\n");
  Tally concat, rr, greedy, ice;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    workload::CounterSpec spec;
    spec.seed = seed;
    spec.initial_balance = 20;  // tight budget: ordering matters
    spec.max_amount = 25;
    const auto g = workload::counter_workload(spec);
    const std::size_t total = total_actions(g.logs);

    concat.add(temporal_merge(g.initial, g.logs, MergeOrder::kConcatenate)
                   .applied,
               total);
    rr.add(temporal_merge(g.initial, g.logs, MergeOrder::kRoundRobin).applied,
           total);
    greedy.add(greedy_insertion_merge(g.initial, g.logs).schedule.size(),
               total);
    ice.add(icecube_applied(g.initial, g.logs), total);
  }
  std::printf("%-38s %8.1f%%\n", "temporal merge (concatenate)",
              concat.percent());
  std::printf("%-38s %8.1f%%\n", "temporal merge (round-robin)",
              rr.percent());
  std::printf("%-38s %8.1f%%\n", "greedy insertion", greedy.percent());
  std::printf("%-38s %8.1f%%\n\n", "IceCube (Safe, drop-failed)",
              ice.percent());
}

void fs_comparison() {
  std::printf(
      "--- divergent file trees: 2 replicas x 6 actions, 10 seeds ---\n"
      "(metric: logged intentions visible in the final tree — a write that\n"
      " executes but is wiped by a concurrent delete preserved nothing)\n");
  Tally concat, rr, greedy, algebra, ice;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    workload::FsSpec spec;
    spec.seed = seed;
    const auto g = workload::fs_workload(spec);
    const std::size_t total = total_actions(g.logs);

    concat.add(
        fs_effects_preserved(
            temporal_merge(g.initial, g.logs, MergeOrder::kConcatenate)
                .final_state,
            g.logs),
        total);
    rr.add(fs_effects_preserved(
               temporal_merge(g.initial, g.logs, MergeOrder::kRoundRobin)
                   .final_state,
               g.logs),
           total);
    greedy.add(
        fs_effects_preserved(greedy_insertion_merge(g.initial, g.logs)
                                 .final_state,
                             g.logs),
        total);
    algebra.add(
        fs_effects_preserved(
            algebraic_fs_sync(g.initial, g.logs, ObjectId(0)).final_state,
            g.logs),
        total);
    ice.add(fs_effects_preserved(icecube_final(g.initial, g.logs), g.logs),
            total);
  }
  std::printf("%-38s %8.1f%%\n", "temporal merge (concatenate)",
              concat.percent());
  std::printf("%-38s %8.1f%%\n", "temporal merge (round-robin)",
              rr.percent());
  std::printf("%-38s %8.1f%%\n", "greedy insertion", greedy.percent());
  std::printf("%-38s %8.1f%%\n", "algebraic sync (static canonical)",
              algebra.percent());
  std::printf("%-38s %8.1f%%\n\n", "IceCube (Safe, drop-failed)",
              ice.percent());
}

}  // namespace

int main() {
  std::printf("=== Reconciler comparison: actions preserved ===\n\n");
  counter_comparison();
  fs_comparison();
  std::printf(
      "Shape: search-based reconciliation preserves at least as much work\n"
      "as every fixed-order or static scheme, and strictly more whenever\n"
      "ordering matters (budget-style invariants, cross-log dependencies).\n"
      "The algebraic scheme is competitive only while its clean-log,\n"
      "mostly-commutative assumptions hold.\n");
  return 0;
}
