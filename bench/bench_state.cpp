// State-management bench: copy-on-write universe vs the eager deep-copy
// oracle (ReconcilerOptions::eager_state_copies) over a universe-size ×
// action-locality grid.
//
// Each cell reconciles two divergent logs of counter increments over a
// universe of `objects` counters, with every action targeting one object
// drawn from a window of `touched` objects — the locality knob. The search
// is identical in both modes (asserted per cell via best-outcome
// fingerprints and the schedules-explored counter); what changes is what a
// shadow copy costs: the eager oracle deep-clones all `objects` slots per
// copy, the COW universe clones only the slots writes actually detach
// (~1 per simulated action here). The headline row — 64 actions over 32
// objects — must show at least a 5x reduction in cloned objects, and the
// binary exits non-zero if equivalence or that floor is violated, so the CI
// bench smoke enforces both.
//
// `--json <path>` writes the grid machine-readably (see JsonSink), clone
// counters included.
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/reconciler.hpp"
#include "objects/counter.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace icecube;

struct Cell {
  std::size_t objects;  ///< universe size
  std::size_t touched;  ///< distinct objects the actions target (locality)
  std::size_t actions;  ///< total actions across the two logs
};

/// Two divergent increment logs over `objects` counters; targets cycle
/// pseudo-randomly through the first `touched` objects.
struct Problem {
  Universe initial;
  std::vector<Log> logs;
};

Problem make_problem(const Cell& cell, std::uint64_t seed) {
  Problem p;
  for (std::size_t i = 0; i < cell.objects; ++i) {
    (void)p.initial.add(std::make_unique<Counter>(0));
  }
  std::uint64_t state = seed;
  for (int replica = 0; replica < 2; ++replica) {
    Log log(replica == 0 ? "a" : "b");
    for (std::size_t i = 0; i < cell.actions / 2; ++i) {
      const ObjectId target(splitmix64(state) % cell.touched);
      const auto amount =
          static_cast<std::int64_t>(1 + splitmix64(state) % 9);
      log.append(std::make_shared<IncrementAction>(target, amount));
    }
    p.logs.push_back(std::move(log));
  }
  return p;
}

struct Run {
  SearchStats stats;
  std::string best_fingerprint;
  double wall = 0.0;
};

Run run(const Problem& problem, bool eager, std::uint64_t cap) {
  ReconcilerOptions options;
  options.limits.max_schedules = cap;
  options.eager_state_copies = eager;
  Stopwatch clock;
  Reconciler reconciler(problem.initial, problem.logs, options);
  const ReconcileResult result = reconciler.run();
  Run out;
  out.wall = clock.seconds();
  out.stats = result.stats;
  if (result.found_any()) {
    out.best_fingerprint = result.best().final_state.fingerprint();
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonSink json(argc, argv);
  constexpr std::uint64_t kCap = 2000;
  constexpr std::uint64_t kSeed = 42;

  const std::vector<Cell> grid = {
      {8, 8, 16},    {8, 2, 16},     // small universe, full/narrow locality
      {32, 32, 64},  {32, 8, 64},    // the headline 64-action/32-object row
      {128, 128, 64}, {128, 16, 64},  // copies dominated by universe size
  };

  std::printf("%-26s %10s %13s %13s %13s %12s %9s %7s\n", "configuration",
              "schedules", "clones(cow)", "clones(eager)", "avoided(cow)",
              "bytes(cow)", "reduction", "equiv");
  bool ok = true;
  double headline_reduction = 0.0;
  for (const Cell& cell : grid) {
    const Problem problem = make_problem(cell, kSeed);
    const Run cow = run(problem, /*eager=*/false, kCap);
    const Run eager = run(problem, /*eager=*/true, kCap);

    const bool equivalent =
        cow.best_fingerprint == eager.best_fingerprint &&
        cow.stats.schedules_explored() == eager.stats.schedules_explored() &&
        cow.stats.state_clones == eager.stats.state_clones;
    ok = ok && equivalent;

    const double reduction =
        cow.stats.object_clones == 0
            ? 0.0
            : static_cast<double>(eager.stats.object_clones) /
                  static_cast<double>(cow.stats.object_clones);
    if (cell.objects == 32 && cell.touched == 32 && cell.actions == 64) {
      headline_reduction = reduction;
    }

    char name[64];
    std::snprintf(name, sizeof name, "n%zu/touch%zu/a%zu", cell.objects,
                  cell.touched, cell.actions);
    std::printf("%-26s %10llu %13llu %13llu %13llu %12llu %8.1fx %7s\n", name,
                static_cast<unsigned long long>(
                    cow.stats.schedules_explored()),
                static_cast<unsigned long long>(cow.stats.object_clones),
                static_cast<unsigned long long>(eager.stats.object_clones),
                static_cast<unsigned long long>(cow.stats.clones_avoided),
                static_cast<unsigned long long>(cow.stats.bytes_cloned),
                reduction, equivalent ? "ok" : "FAIL");

    json.record(std::string("state/") + name + "/cow", cell.actions, 1,
                cow.wall, cow.stats);
    json.record(std::string("state/") + name + "/eager", cell.actions, 1,
                eager.wall, eager.stats);
  }

  std::printf("\nheadline (64 actions / 32 objects): %.1fx fewer cloned "
              "objects under copy-on-write\n", headline_reduction);
  if (!ok) {
    std::fprintf(stderr, "FAIL: COW and eager runs diverged\n");
    return 1;
  }
  if (headline_reduction < 5.0) {
    std::fprintf(stderr, "FAIL: headline reduction %.1fx below the 5x floor\n",
                 headline_reduction);
    return 1;
  }
  return 0;
}
