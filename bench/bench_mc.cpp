// bench_mc — measure the model checker's partial-order reduction.
//
// Explores the same tiny configurations twice — plain bounded DFS vs
// sleep sets + transposition table — and reports explored transitions,
// distinct states, wall time and the reduction factor. Both runs are
// given a budget large enough to exhaust the space, so the factor is a
// true like-for-like count of work avoided, not a budget artifact.
//
// Hard gate: the flagship row must show at least a 5x reduction — the
// property that makes exhaustive protocol checking affordable in CI.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "mc/explorer.hpp"
#include "util/timer.hpp"

namespace {

using namespace icecube;

struct Row {
  const char* name;
  mc::McConfig config;
  std::size_t depth;
  bool gated;  ///< the >=5x requirement applies to this row
};

}  // namespace

int main(int argc, char** argv) {
  bench::JsonSink json(argc, argv);

  const auto config = [](std::size_t sites, std::size_t actions) {
    mc::McConfig c;
    c.sites = sites;
    c.actions = actions;
    return c;
  };

  std::vector<Row> rows;
  rows.push_back({"2s2a-d6", config(2, 2), 6, false});
  rows.push_back({"2s2a-d7", config(2, 2), 7, true});  // flagship gate
  rows.push_back({"2s3a-d6", config(2, 3), 6, false});
  rows.push_back({"3s3a-d5", config(3, 3), 5, false});

  std::printf("%-10s %6s %12s %12s %9s %9s %8s\n", "config", "depth",
              "full-trans", "reduced", "tt-hits", "sleep", "factor");

  bool gate_ok = true;
  for (const Row& row : rows) {
    mc::ExploreOptions options;
    options.depth = row.depth;
    options.states_budget = 20'000'000;  // large enough to exhaust

    options.reduction = false;
    Stopwatch full_timer;
    const mc::McReport full = mc::explore(row.config, options);
    const double full_wall = full_timer.seconds();

    options.reduction = true;
    Stopwatch reduced_timer;
    const mc::McReport reduced = mc::explore(row.config, options);
    const double reduced_wall = reduced_timer.seconds();

    if (!full.complete || !reduced.complete || !full.clean() ||
        !reduced.clean()) {
      std::fprintf(stderr,
                   "FATAL: %s did not explore cleanly to depth %zu "
                   "(full complete=%d clean=%d, reduced complete=%d "
                   "clean=%d)\n",
                   row.name, row.depth, full.complete ? 1 : 0,
                   full.clean() ? 1 : 0, reduced.complete ? 1 : 0,
                   reduced.clean() ? 1 : 0);
      return 1;
    }

    const double factor =
        reduced.transitions > 0
            ? static_cast<double>(full.transitions) /
                  static_cast<double>(reduced.transitions)
            : 0.0;
    std::printf("%-10s %6zu %12zu %12zu %9zu %9zu %7.2fx\n", row.name,
                row.depth, full.transitions, reduced.transitions,
                reduced.tt_hits, reduced.sleep_skips, factor);

    json.record(std::string("mc/full/") + row.name, row.config.actions,
                row.config.sites, full_wall, full.transitions);
    json.record(std::string("mc/reduced/") + row.name, row.config.actions,
                row.config.sites, reduced_wall, reduced.transitions);

    if (row.gated && reduced.transitions * 5 > full.transitions) {
      gate_ok = false;
      std::fprintf(stderr,
                   "FATAL: %s reduction factor %.2fx is below the 5x "
                   "budget\n",
                   row.name, factor);
    }
  }
  return gate_ok ? 0 : 1;
}
