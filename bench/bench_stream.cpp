// Streaming daemon throughput and commit latency (DESIGN.md §15): the
// threaded StreamDaemon — a producer thread feeding the SPSC ring while the
// consumer maintains the incremental constraint graph and emits committed
// prefixes — on the Fages-style workload family from bench_solvers, at
// sizes up to ~1M actions.
//
// Per row it reports sustained ingest (actions/sec, measured from the first
// submit through finish()), p50/p99 commit latency, and the daemon's work
// counters: fast appends vs full re-solves, pairs evaluated by the
// incremental graph, epochs, commit violations, peak commit lag. The
// comparable batch numbers live in BENCH_solvers.json (greedy rows); the
// daemon's rate can be read directly against them.
//
// The binary doubles as a gate: under greedy + in-log-order arrival every
// Fages static edge is intra-log, so each row must place every action on
// the fast path with zero full re-solves and zero commit violations — a
// violation exits non-zero, which the CI stream smoke enforces. The
// shuffled-arrival row exercises full re-solves on purpose and only gates
// on completion.
//
// `--json <path>` writes one record per row (see JsonSink::record_stream);
// `--max-n <n>` skips larger families (the smoke run uses 100,000);
// `--min-ingest <r>` optionally gates the flatten rows' rate.
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "stream/daemon.hpp"
#include "util/rng.hpp"
#include "workload/generators.hpp"

using namespace icecube;

namespace {

enum class Arrival { kFlatten, kShuffled };

struct Row {
  const char* label;
  int tasks_per_replica;
  Arrival arrival;
  SolverKind backend;
  bool gate_all_fast;  ///< require 100% fast appends, zero violations
};

struct RowNumbers {
  std::size_t actions = 0;
  double wall = 0.0;
  double rate = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  StreamCounters counters;
  SearchStats stats;
};

/// The tool's arrival materialisation, reduced to the two orders the bench
/// sweeps: submit everything up front so the timed loop measures the ring
/// and the daemon, not the workload generator.
std::vector<std::pair<LogId, ActionPtr>> materialize(
    const workload::Generated& gen, Arrival arrival) {
  std::vector<std::size_t> next(gen.logs.size(), 0);
  std::size_t total = 0;
  for (const Log& log : gen.logs) total += log.size();
  std::vector<std::pair<LogId, ActionPtr>> arrivals;
  arrivals.reserve(total);
  Rng rng(7);
  for (std::size_t taken = 0; taken < total; ++taken) {
    std::size_t pick_log = 0;
    if (arrival == Arrival::kFlatten) {
      while (next[pick_log] >= gen.logs[pick_log].size()) ++pick_log;
    } else {
      std::uint64_t pick = rng.below(total - taken);
      for (pick_log = 0;; ++pick_log) {
        const std::size_t rem = gen.logs[pick_log].size() - next[pick_log];
        if (pick < rem) break;
        pick -= rem;
      }
    }
    arrivals.emplace_back(LogId(static_cast<std::uint32_t>(pick_log)),
                          gen.logs[pick_log].ptr(next[pick_log]++));
  }
  return arrivals;
}

RowNumbers run_row(const Row& row) {
  workload::FagesSpec spec;
  spec.replicas = 3;
  spec.tasks_per_replica = row.tasks_per_replica;
  // Scale the resource pool with n so conflict density per resource stays
  // roughly constant across sizes (as bench_solvers does).
  spec.shared_resources = std::max(8, row.tasks_per_replica / 25);
  spec.seed = 1;
  const workload::Generated gen = workload::fages_workload(spec);

  StreamOptions options;
  options.backend = row.backend;
  options.commit_quiescence = 1;

  std::vector<std::pair<LogId, ActionPtr>> arrivals =
      materialize(gen, row.arrival);

  RowNumbers out;
  out.actions = arrivals.size();
  StreamDaemon daemon(gen.initial, options, /*max_batch=*/4096);
  const std::uint64_t t0 = stream_now_ns();
  for (auto& [log, action] : arrivals) {
    daemon.submit(log, std::move(action));
  }
  const StreamResult result = daemon.finish();
  out.wall = static_cast<double>(stream_now_ns() - t0) * 1e-9;
  (void)result;
  out.counters = daemon.reconciler().counters();
  out.stats = daemon.reconciler().stats();
  out.p50_ms = daemon.reconciler().commit_latency().quantile_ms(0.50);
  out.p99_ms = daemon.reconciler().commit_latency().quantile_ms(0.99);
  if (out.wall > 0.0) {
    out.rate = static_cast<double>(out.counters.ingested) / out.wall;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonSink json(argc, argv);
  std::size_t max_n = 1'000'000;
  double min_ingest = 0.0;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--max-n") == 0) {
      max_n = static_cast<std::size_t>(std::strtoull(argv[i + 1], nullptr, 10));
    } else if (std::strcmp(argv[i], "--min-ingest") == 0) {
      min_ingest = std::strtod(argv[i + 1], nullptr);
    }
  }

  const Row rows[] = {
      {"stream/greedy/flatten", 10'000, Arrival::kFlatten, SolverKind::kGreedy,
       true},
      {"stream/greedy/flatten", 100'000, Arrival::kFlatten,
       SolverKind::kGreedy, true},
      {"stream/greedy/flatten", 333'333, Arrival::kFlatten,
       SolverKind::kGreedy, true},
      {"stream/greedy/shuffled", 10'000, Arrival::kShuffled,
       SolverKind::kGreedy, false},
      // Streamed local search re-solves every dirty component each epoch —
      // orders of magnitude more work than the greedy fast path by design —
      // so its row stays small; it is here to show the cost, not to race.
      {"stream/ls/flatten", 2'000, Arrival::kFlatten,
       SolverKind::kLocalSearch, false},
  };

  std::printf("%-26s %9s %12s %9s %9s %7s %10s %7s %5s %8s %12s\n",
              "configuration", "actions", "rate(a/s)", "p50(ms)", "p99(ms)",
              "epochs", "fast", "full", "viol", "max-lag", "pairs");
  bool ok = true;
  for (const Row& row : rows) {
    const std::size_t n =
        static_cast<std::size_t>(row.tasks_per_replica) * 3;
    if (n > max_n) continue;
    const RowNumbers r = run_row(row);
    std::printf(
        "%-26s %9zu %12.0f %9.3f %9.3f %7" PRIu64 " %10" PRIu64 " %7" PRIu64
        " %5" PRIu64 " %8" PRIu64 " %12" PRIu64 "\n",
        row.label, r.actions, r.rate, r.p50_ms, r.p99_ms, r.counters.epochs,
        r.counters.fast_appends, r.counters.full_resolves,
        r.counters.commit_violations, r.counters.max_commit_lag,
        r.stats.constraint_pairs_evaluated);
    json.record_stream(std::string(row.label), r.actions, r.wall, r.rate,
                       r.p50_ms, r.p99_ms, r.counters.fast_appends,
                       r.counters.full_resolves, r.stats);
    if (r.counters.committed != r.counters.ingested) {
      std::fprintf(stderr, "GATE: %s committed %" PRIu64 " of %" PRIu64 "\n",
                   row.label, r.counters.committed, r.counters.ingested);
      ok = false;
    }
    if (row.gate_all_fast &&
        (r.counters.full_resolves != 0 || r.counters.commit_violations != 0 ||
         r.counters.fast_appends != r.counters.ingested)) {
      std::fprintf(stderr,
                   "GATE: %s expected all-fast-append (fast %" PRIu64
                   ", full %" PRIu64 ", violations %" PRIu64 ")\n",
                   row.label, r.counters.fast_appends,
                   r.counters.full_resolves, r.counters.commit_violations);
      ok = false;
    }
    if (row.gate_all_fast && min_ingest > 0.0 && r.rate < min_ingest) {
      std::fprintf(stderr, "GATE: %s rate %.0f below --min-ingest %.0f\n",
                   row.label, r.rate, min_ingest);
      ok = false;
    }
  }
  return ok ? 0 : 1;
}
