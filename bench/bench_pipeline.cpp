// X3 — the pipeline/interactivity claim (§2, §4.3).
//
// Paper: the stages "run in a pipeline with various feedback loops, in
// order to provide better interactivity and faster response"; and for Case
// 2 H=All "the simulator finds the optimal solution after two sequences, in
// 0.11 s, after which it continues to run through all possible 38,102
// schedules. This would be appropriate if the user has immediate
// interactive feedback."
//
// Measured: time/schedules to the incumbent optimum via the sliced
// IncrementalReconciler versus the cost of the full sweep — the ratio is
// the interactivity win.
#include <cstdio>

#include "core/incremental.hpp"
#include "jigsaw/experiment.hpp"
#include "util/timer.hpp"

using namespace icecube;
using namespace icecube::jigsaw;
using K = PlayerSpec::Kind;

int main() {
  std::printf("=== X3: interactive pipeline vs full sweep (E2 game) ===\n\n");

  const Problem p = make_problem(4, 4, Board::OrderCase::kKeepLogOrder,
                                 {{K::kU1, 7}, {K::kU2, 12}});
  ReconcilerOptions opts;
  opts.heuristic = Heuristic::kAll;

  // Interactive: slice until the incumbent reaches the known optimum.
  {
    JigsawPolicy policy(p.board_id);
    IncrementalReconciler inc(p.initial, p.logs, opts, &policy);
    Stopwatch clock;
    std::uint64_t schedules = 0;
    int correct = 0;
    while (correct < 16) {
      const auto progress = inc.step(1);
      schedules = progress.schedules_explored;
      correct = inc.best()
                    .final_state.as<Board>(p.board_id)
                    .correct_pieces();
      if (progress.finished) break;
    }
    std::printf("time to optimum (16 correct): %llu schedule(s), %.4fs\n",
                static_cast<unsigned long long>(schedules), clock.seconds());
  }

  // Full sweep.
  {
    JigsawPolicy policy(p.board_id);
    Reconciler r(p.initial, p.logs, opts, &policy);
    const auto result = r.run();
    std::printf("full sweep:                   %llu schedules, %.4fs\n",
                static_cast<unsigned long long>(
                    result.stats.schedules_explored()),
                result.stats.elapsed_seconds);
  }

  std::printf(
      "\nPaper: optimum after 2 sequences (0.11 s on 2001 hardware), full\n"
      "sweep 38,102 schedules. Same shape here: the interactive mode hands\n"
      "the user the optimal board after a single-digit number of schedules,\n"
      "four orders of magnitude before the exhaustive sweep finishes.\n");
  return 0;
}
