// M4: chaos convergence — epidemic reconciliation cost under faults.
//
// Measures, for growing group sizes and fault intensities, how long the
// asynchronous gossip protocol takes to reach byte-identical committed
// states on the simulated network: wall-clock per run, simulated steps to
// convergence, and the protocol work done (merges, state transfers,
// quarantines). Every run also executes the full invariant suite; a
// violation or non-convergence fails the bench loudly, so this doubles as
// a smoke-level chaos gate in CI bench runs.
//
// JsonSink schema note: the sink's fixed record is
// (workload, n_actions, threads, wall_seconds, schedules_explored); this
// bench maps group size into `threads` and simulated steps-to-convergence
// into `schedules_explored` — the closest "work performed" analogue.
#include <cstdio>
#include <cstdlib>

#include "bench_common.hpp"
#include "simnet/chaos.hpp"
#include "util/timer.hpp"

namespace {

using namespace icecube;

struct Scenario {
  const char* name;
  double lose;
  double corrupt;
  double duplicate;
  double partition;
  double site_down;
};

constexpr Scenario kScenarios[] = {
    {"clean", 0.0, 0.0, 0.0, 0.0, 0.0},
    {"lossy", 0.10, 0.0, 0.05, 0.0, 0.0},
    {"hostile", 0.08, 0.08, 0.05, 0.05, 0.05},
};

}  // namespace

int main(int argc, char** argv) {
  bench::JsonSink json(argc, argv);
  const std::size_t seeds_per_cell = 5;

  std::printf("%-10s %6s %6s %8s %8s %8s %8s %9s %9s\n", "scenario",
              "sites", "seeds", "steps", "time", "merges", "xfers",
              "quarant.", "wall(s)");

  for (const Scenario& scenario : kScenarios) {
    for (const std::size_t sites : {4u, 6u, 8u}) {
      ChaosSpec spec;
      spec.sites = sites;
      spec.actions_per_site = 6;
      spec.faults.lose = scenario.lose;
      spec.faults.corrupt = scenario.corrupt;
      spec.faults.duplicate = scenario.duplicate;
      spec.faults.partition = scenario.partition;
      spec.faults.site_down = scenario.site_down;
      spec.faults.delay_max = 3;
      spec.faults.reorder = scenario.lose > 0 ? 0.05 : 0.0;
      spec.deep_replay = false;  // measured runs: protocol cost only
      spec.keep_trace = false;

      std::size_t total_steps = 0;
      std::size_t total_time = 0;
      std::size_t total_merges = 0;
      std::size_t total_transfers = 0;
      std::size_t total_quarantines = 0;
      Stopwatch timer;
      for (std::size_t s = 0; s < seeds_per_cell; ++s) {
        spec.seed = 1000 + s;
        const ChaosReport report = run_chaos(spec);
        if (!report.ok()) {
          std::fprintf(stderr,
                       "FATAL: scenario %s sites=%zu seed %llu failed "
                       "(converged=%d, %zu violations)\n",
                       scenario.name, sites,
                       static_cast<unsigned long long>(report.seed),
                       report.converged ? 1 : 0, report.violations.size());
          return 1;
        }
        total_steps += report.steps;
        total_time += report.converged_at;
        total_merges += report.totals.merges;
        total_transfers += report.totals.transfers;
        total_quarantines += report.totals.quarantines;
      }
      const double wall = timer.seconds();

      std::printf("%-10s %6zu %6zu %8zu %8zu %8zu %8zu %9zu %9.3f\n",
                  scenario.name, sites, seeds_per_cell,
                  total_steps / seeds_per_cell,
                  total_time / seeds_per_cell,
                  total_merges / seeds_per_cell,
                  total_transfers / seeds_per_cell,
                  total_quarantines / seeds_per_cell, wall);
      json.record(std::string("chaos/") + scenario.name,
                  sites * 6 /* workload actions */, sites, wall,
                  total_steps / seeds_per_cell);
    }
  }
  return 0;
}
