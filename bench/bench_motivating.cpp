// M1 and M2: the two motivating examples of §2, reconciled end to end, with
// the fixed-order baseline (B1) alongside.
//
//  M1 (sys-admin): logs A = [upgrade OS v4->v5, buy tape drive 800, obtain
//  1500 budget increase], B = [buy printer 400, install printer driver v4],
//  budget initially 1000. The paper's solution: A3, B1, B2, A1, A2; other
//  orders are statically equivalent. Fixed-order merges fail in both
//  directions and interleaved.
//
//  M2 (calendar): appAB, appBC, freeC with the Monday-morning calendars of
//  §2. The only successful ordering is freeC, appBC, appAB.
#include <cstdio>

#include "baseline/temporal_merge.hpp"
#include "core/reconciler.hpp"
#include "objects/calendar.hpp"
#include "objects/sysadmin.hpp"

using namespace icecube;

namespace {

void sysadmin_example() {
  std::printf("--- M1: collaborative system administration ---\n");
  SysAdminExample ex = make_sysadmin_example();

  ReconcilerOptions opts;
  opts.heuristic = Heuristic::kAll;
  Reconciler r(ex.initial, ex.logs, opts);
  std::printf("discovered cross-log dependency: B2 before A1: %s\n",
              r.relations().depends(ActionId(4), ActionId(0)) ? "yes" : "no");
  std::printf("discovered in-log independency: A3 may precede A2: %s\n",
              !r.relations().depends(ActionId(1), ActionId(2)) ? "yes" : "no");

  const auto result = r.run();
  std::printf("IceCube: %llu complete schedules; best:\n",
              static_cast<unsigned long long>(
                  result.stats.schedules_completed));
  std::printf("%s", r.describe_schedule(result.best().schedule).c_str());
  std::printf("final state:\n%s",
              result.best().final_state.describe().c_str());

  const auto ab = temporal_merge(ex.initial, ex.logs, MergeOrder::kConcatenate);
  std::vector<Log> reversed{ex.logs[1], ex.logs[0]};
  const auto ba = temporal_merge(ex.initial, reversed, MergeOrder::kConcatenate);
  const auto rr = temporal_merge(ex.initial, ex.logs, MergeOrder::kRoundRobin);
  std::printf(
      "baseline conflicts: A-then-B=%zu  B-then-A=%zu  interleaved=%zu "
      "(IceCube: 0)\n\n",
      ab.conflicts, ba.conflicts, rr.conflicts);
}

void calendar_example() {
  std::printf("--- M2: off-line calendar appointments ---\n");
  Universe u;
  const ObjectId a = u.add(std::make_unique<Calendar>("A"));
  const ObjectId b = u.add(std::make_unique<Calendar>("B"));
  const ObjectId c = u.add(std::make_unique<Calendar>("C"));
  u.as<Calendar>(b).book(11, "B-own");
  u.as<Calendar>(c).book(9, "C-9");
  u.as<Calendar>(c).book(10, "C-10");
  u.as<Calendar>(c).book(11, "C-11");

  std::vector<Log> logs;
  Log la("A"), lb("B"), lc("C");
  la.append(std::make_shared<RequestAppointmentAction>(a, b, 9, 11, "appAB"));
  lb.append(std::make_shared<RequestAppointmentAction>(b, c, 9, 11, "appBC"));
  lc.append(std::make_shared<CancelAppointmentAction>(c, 9));
  logs = {std::move(la), std::move(lb), std::move(lc)};

  ReconcilerOptions opts;
  opts.heuristic = Heuristic::kAll;
  Reconciler r(u, logs, opts);
  const auto result = r.run();
  std::printf("complete schedules found: %llu (expected: exactly 1)\n",
              static_cast<unsigned long long>(
                  result.stats.schedules_completed));
  std::printf("the unique order:\n%s",
              r.describe_schedule(result.best().schedule).c_str());
  std::printf("final calendars:\n%s",
              result.best().final_state.describe().c_str());

  const auto fixed = temporal_merge(u, logs, MergeOrder::kConcatenate);
  std::printf(
      "baseline (logs in arrival order A,B,C): %zu rejected "
      "appointment(s); IceCube: none\n\n",
      fixed.conflicts);
}

}  // namespace

int main() {
  std::printf("=== Motivating examples (paper §2) ===\n\n");
  sysadmin_example();
  calendar_example();
  return 0;
}
