// Solver backend head-to-head (DESIGN.md §13): DFS cutset search vs the
// greedy topological baseline vs seeded SA/tabu local search, on the
// Fages-style problem family (cs/0109033 §5) at n = 100 … 50,000 actions
// plus one dense counter workload.
//
// DFS is Θ(n²) in constraint construction alone, so past 1,000 actions it
// runs in a forked child that is killed at a wall budget (`--dfs-budget`,
// default 20 s) and reported `finished = false` — that a budgeted DFS has
// no answer at 50k while local search returns one is the headline this
// bench exists to show. At small n the (capped) DFS result serves as the
// reference optimum: each row's `dfs_gap` is (cost − dfs_cost) /
// max(1, |dfs_cost|), negative when no DFS reference exists.
//
// The binary doubles as a gate: local search starts from the greedy
// schedule, so `ls cost <= greedy cost` must hold on every row (and every
// non-DFS row must finish); a violation exits non-zero, which the CI bench
// smoke enforces.
//
// `--json <path>` writes one record per row (see JsonSink; backend +
// move-counter fields carry the per-backend data). `--max-n <n>` skips the
// larger families (the smoke run uses 1,000).
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cinttypes>
#include <cmath>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/reconciler.hpp"
#include "util/timer.hpp"
#include "workload/generators.hpp"

using namespace icecube;
using icecube::workload::Generated;

namespace {

struct RowResult {
  double wall = 0.0;
  double cost = 0.0;
  std::size_t executed = 0;
  std::size_t skipped = 0;
  bool finished = true;  ///< false: killed at the wall budget, no answer
  SearchStats stats;
};

/// Fixed-size wire format the forked DFS child writes back over a pipe.
struct ChildReport {
  double wall;
  double cost;
  std::uint64_t executed;
  std::uint64_t skipped;
  std::uint64_t schedules;
  std::uint64_t sim_steps;
};

ReconcilerOptions backend_options(SolverKind kind, std::uint64_t ls_moves,
                                  double max_seconds) {
  ReconcilerOptions opts;
  opts.backend = kind;
  // Skip-on-failure for every backend: Fages conflicts make loss-free
  // schedules impossible, and all three solvers must optimise the same
  // objective (default policy cost) for the gap numbers to mean anything.
  opts.failure_mode = FailureMode::kSkipAction;
  opts.heuristic = Heuristic::kAll;
  opts.limits.max_seconds = max_seconds;
  opts.limits.max_schedules = std::max<std::uint64_t>(100000, ls_moves);
  opts.local_search.max_moves = ls_moves;
  opts.local_search.stall_moves = ls_moves;  // run the full move budget
  return opts;
}

RowResult run_inprocess(const Generated& g, SolverKind kind,
                        std::uint64_t ls_moves, double max_seconds) {
  const ReconcilerOptions opts = backend_options(kind, ls_moves, max_seconds);
  const Stopwatch wall;
  Reconciler r(g.initial, g.logs, opts);
  const ReconcileResult result = r.run();
  RowResult out;
  out.wall = wall.seconds();
  out.stats = result.stats;
  out.cost = result.best().cost;
  out.executed = result.best().schedule.size();
  out.skipped = result.best().skipped.size();
  return out;
}

/// Runs DFS in a forked child and kills it once `budget_seconds` of wall
/// clock have passed — the Θ(n²)/Θ(n³) constraint phases ignore deadlines,
/// so an in-process budget cannot bound them.
RowResult run_dfs_forked(const Generated& g, double budget_seconds) {
  int fds[2];
  RowResult out;
  out.finished = false;
  out.wall = budget_seconds;
  out.stats.backend = "dfs";
  if (pipe(fds) != 0) return out;
  const pid_t pid = fork();
  if (pid < 0) {
    close(fds[0]);
    close(fds[1]);
    return out;
  }
  if (pid == 0) {
    close(fds[0]);
    const RowResult r =
        run_inprocess(g, SolverKind::kDfs, 0, budget_seconds);
    const ChildReport report{r.wall,
                             r.cost,
                             r.executed,
                             r.skipped,
                             r.stats.schedules_explored(),
                             r.stats.sim_steps};
    const ssize_t written = write(fds[1], &report, sizeof(report));
    (void)written;
    close(fds[1]);
    _exit(0);
  }
  close(fds[1]);
  struct pollfd pfd = {fds[0], POLLIN, 0};
  const int ready = poll(&pfd, 1, static_cast<int>(budget_seconds * 1000.0));
  if (ready > 0 && (pfd.revents & POLLIN) != 0) {
    ChildReport report{};
    if (read(fds[0], &report, sizeof(report)) ==
        static_cast<ssize_t>(sizeof(report))) {
      out.finished = true;
      out.wall = report.wall;
      out.cost = report.cost;
      out.executed = static_cast<std::size_t>(report.executed);
      out.skipped = static_cast<std::size_t>(report.skipped);
      out.stats.schedules_completed = report.schedules;
      out.stats.sim_steps = report.sim_steps;
    }
  } else {
    kill(pid, SIGKILL);
  }
  close(fds[0]);
  int status = 0;
  waitpid(pid, &status, 0);
  return out;
}

void print_row(const std::string& name, std::size_t n, const RowResult& r) {
  std::printf("%-18s %8zu %9.3f %10.1f %9zu %8zu %11" PRIu64 " %10" PRIu64
              " %5s\n",
              name.c_str(), n, r.wall, r.cost, r.executed, r.skipped,
              r.stats.moves_proposed, r.stats.moves_accepted,
              r.finished ? "yes" : "NO");
}

double gap_vs(double cost, double reference, bool have_reference) {
  if (!have_reference) return -1.0;
  return (cost - reference) / std::max(1.0, std::fabs(reference));
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonSink json(argc, argv);
  std::size_t max_n = 50000;
  double dfs_budget = 20.0;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--max-n") {
      max_n = static_cast<std::size_t>(std::strtoull(argv[i + 1], nullptr, 10));
    }
    if (std::string(argv[i]) == "--dfs-budget") {
      dfs_budget = std::strtod(argv[i + 1], nullptr);
    }
  }

  std::printf("=== solver backends: DFS vs greedy vs local search ===\n\n");
  std::printf("%-18s %8s %9s %10s %9s %8s %11s %10s %5s\n", "workload",
              "actions", "time(s)", "cost", "executed", "skipped", "proposed",
              "accepted", "fin?");

  bool gate_ok = true;
  const auto check_row = [&gate_ok](const RowResult& greedy,
                                    const RowResult& ls) {
    if (!greedy.finished || !ls.finished) gate_ok = false;
    // LS is seeded with the greedy schedule, so it can never be worse.
    if (ls.cost > greedy.cost + 1e-9) gate_ok = false;
  };

  for (const std::size_t n : {std::size_t{100}, std::size_t{1000},
                              std::size_t{10000}, std::size_t{50000}}) {
    if (n > max_n) continue;
    workload::FagesSpec spec;
    spec.replicas = 4;
    spec.tasks_per_replica = static_cast<int>(n / 4);
    spec.dependency_density = 1.5;
    spec.conflict_ratio = 0.25;
    spec.shared_resources = static_cast<int>(std::max<std::size_t>(8, n / 256));
    spec.seed = 7 + n;
    const Generated g = workload::fages_workload(spec);
    const std::string family = "fages/n" + std::to_string(n);

    // Small rows run a fixed move budget (cheap, and the row is then
    // deterministic). At 10k+ the binding limit becomes wall clock — a
    // rescue hop re-simulates the whole suffix past the conflict winner —
    // so the walk gets dfs_budget/20 of wall time (an order of magnitude
    // under the DFS budget it is judged against) and as many moves as fit.
    const bool wall_bound = n > 1000;
    const std::uint64_t moves = wall_bound ? 1000000 : 20000;
    const double ls_seconds = wall_bound ? dfs_budget / 20.0 : 120.0;

    RowResult dfs;
    if (n <= 1000) {
      dfs = run_inprocess(g, SolverKind::kDfs, 0, dfs_budget);
    } else {
      dfs = run_dfs_forked(g, dfs_budget);
    }
    const bool have_dfs = dfs.finished;
    print_row(family + "/dfs", n, dfs);
    json.record(family + "/dfs", n, 1, dfs.wall, dfs.stats, dfs.cost, -1.0,
                dfs.finished);

    const RowResult greedy =
        run_inprocess(g, SolverKind::kGreedy, 0, /*max_seconds=*/120.0);
    print_row(family + "/greedy", n, greedy);
    json.record(family + "/greedy", n, 1, greedy.wall, greedy.stats,
                greedy.cost, gap_vs(greedy.cost, dfs.cost, have_dfs));

    const RowResult ls =
        run_inprocess(g, SolverKind::kLocalSearch, moves, ls_seconds);
    print_row(family + "/ls", n, ls);
    json.record(family + "/ls", n, 1, ls.wall, ls.stats, ls.cost,
                gap_vs(ls.cost, dfs.cost, have_dfs));
    check_row(greedy, ls);
    std::printf("\n");
  }

  {
    // One dense, genuinely contended workload: a single shared counter. Its
    // constraint graph is quadratic by nature, which is exactly why it
    // stays small — the sparse backends must match DFS-grade quality here,
    // not outscale it.
    workload::CounterSpec spec;
    spec.replicas = 3;
    spec.actions_per_replica = 15;
    spec.initial_balance = 40;
    spec.max_amount = 25;
    spec.increment_probability = 0.35;
    spec.seed = 11;
    const Generated g = workload::counter_workload(spec);
    std::size_t n = 0;
    for (const auto& log : g.logs) n += log.size();

    const RowResult dfs = run_inprocess(g, SolverKind::kDfs, 0, dfs_budget);
    print_row("counter/dfs", n, dfs);
    json.record("counter/dfs", n, 1, dfs.wall, dfs.stats, dfs.cost, -1.0,
                dfs.finished);
    const RowResult greedy =
        run_inprocess(g, SolverKind::kGreedy, 0, /*max_seconds=*/60.0);
    print_row("counter/greedy", n, greedy);
    json.record("counter/greedy", n, 1, greedy.wall, greedy.stats, greedy.cost,
                gap_vs(greedy.cost, dfs.cost, dfs.finished));
    const RowResult ls = run_inprocess(g, SolverKind::kLocalSearch, 20000,
                                       /*max_seconds=*/60.0);
    print_row("counter/ls", n, ls);
    json.record("counter/ls", n, 1, ls.wall, ls.stats, ls.cost,
                gap_vs(ls.cost, dfs.cost, dfs.finished));
    check_row(greedy, ls);
  }

  if (!gate_ok) {
    std::fprintf(stderr,
                 "FAIL: local search worse than its greedy seed (or a "
                 "non-DFS backend did not finish)\n");
    return 1;
  }
  return 0;
}
