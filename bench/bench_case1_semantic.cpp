// Experiment E1 (§4.3, "Case 1"): semantic constraints on a 4x4 board with a
// 20-action game.
//
// Paper: "With a board size of 4x4, reconciliation and simulation of a
// 20-actions game produces the best solution with respect to all the
// comparison criteria. In this example, semantic constraints ensure
// immediate convergence."
//
// We report: the 20-action overlapping game of the paper plus a clean
// 16-action variant, each under the three heuristics. "Immediate
// convergence" shows up as sched2best = 1 (the first simulated schedule is
// already the best); strong static constraints show up as the tiny
// schedule counts versus Case 2's H=All enumeration (see
// bench_case2_heuristics).
#include <cstdio>

#include "bench_common.hpp"

using namespace icecube;
using namespace icecube::jigsaw;
using K = PlayerSpec::Kind;

int main() {
  std::printf("=== E1: Case 1 (semantic constraints), 4x4 board ===\n\n");
  bench::print_header();

  {
    // The paper's 20-action game: 8-piece U1 + 12-piece U2 (overlap 4).
    const Problem p = make_problem(4, 4, Board::OrderCase::kSemantic,
                                   {{K::kU1, 8}, {K::kU2, 12}});
    for (const Heuristic h :
         {Heuristic::kAll, Heuristic::kSafe, Heuristic::kStrict}) {
      char name[96];
      std::snprintf(name, sizeof name, "20 actions (U1-8 + U2-12), H=%s",
                    std::string(to_string(h)).c_str());
      bench::print_row(name, run_experiment(
                                 p, bench::options(
                                        h, FailureMode::kAbortBranch)));
    }
  }
  {
    // Clean non-overlapping game: 8 + 8 pieces, no redundant actions.
    const Problem p = make_problem(4, 4, Board::OrderCase::kSemantic,
                                   {{K::kU1, 8}, {K::kU2, 8}});
    for (const Heuristic h :
         {Heuristic::kAll, Heuristic::kSafe, Heuristic::kStrict}) {
      char name[96];
      std::snprintf(name, sizeof name, "16 actions clean (U1-8 + U2-8), H=%s",
                    std::string(to_string(h)).c_str());
      bench::print_row(name, run_experiment(
                                 p, bench::options(
                                        h, FailureMode::kAbortBranch)));
    }
  }

  std::printf(
      "\nPaper's claims reproduced: the best solution on all three criteria\n"
      "(16 correct pieces) is found, and convergence is immediate\n"
      "(sched2best = 1). The overlapping game's duplicate placements become\n"
      "static conflicts (cutsets), matching the spurious-conflict\n"
      "discussion of #4.4.\n");
  return 0;
}
