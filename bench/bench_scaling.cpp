// Experiment E4 (§4.3): behaviour as input logs grow.
//
// Paper: "Policy constraints do not always ensure convergence. As the size
// of the input logs increases, the stronger policies tend to over-constrain
// the system and no solution is found; the weaker policies do not terminate
// within the (arbitrary) limit of 100,000 simulations."
//
// Sweep of board sizes up to 10x10 (the paper's maximum) with overlapping
// two-player U1/U2 games covering ~2/3 of the board each. For every size we
// run the strong policy (Case 2, H=Safe), a weaker policy (Case 3, H=All)
// and no static constraints at all (H=All), under the paper's
// 100,000-simulation cap.
#include <cstdio>

#include "bench_common.hpp"

using namespace icecube;
using namespace icecube::jigsaw;
using K = PlayerSpec::Kind;

int main(int argc, char** argv) {
  bench::JsonSink json(argc, argv);
  std::printf("=== E4: scaling with log size (cap = 100,000 schedules) ===\n\n");
  bench::print_header();

  const auto measure = [&json](const char* name, const Problem& problem,
                               const icecube::ReconcilerOptions& opts) {
    std::size_t n_actions = 0;
    for (const auto& log : problem.logs) n_actions += log.size();
    const auto r = run_experiment(problem, opts);
    bench::print_row(name, r);
    json.record(name, n_actions, /*threads=*/1, r.stats.elapsed_seconds,
                r.stats, r.best.actions > 0 ? -r.best.actions : 0.0);
  };

  for (const int side : {4, 6, 8, 10}) {
    const int pieces = side * side;
    const int per_player = (2 * pieces) / 3;  // overlapping coverage
    const Problem strong =
        make_problem(side, side, Board::OrderCase::kKeepLogOrder,
                     {{K::kU1, per_player}, {K::kU2, per_player}});
    const Problem weak =
        make_problem(side, side, Board::OrderCase::kKeepJoinOrder,
                     {{K::kU1, per_player}, {K::kU2, per_player}});
    const Problem none =
        make_problem(side, side, Board::OrderCase::kUnconstrained,
                     {{K::kU1, per_player}, {K::kU2, per_player}});

    char name[96];
    std::snprintf(name, sizeof name, "%dx%d %d+%d acts, Case2 H=Safe", side,
                  side, per_player, per_player);
    measure(name, strong,
            bench::options(Heuristic::kSafe, FailureMode::kAbortBranch));
    std::snprintf(name, sizeof name, "%dx%d %d+%d acts, Case3 H=All", side,
                  side, per_player, per_player);
    measure(name, weak,
            bench::options(Heuristic::kAll, FailureMode::kAbortBranch));
    std::snprintf(name, sizeof name, "%dx%d %d+%d acts, no static constr.",
                  side, side, per_player, per_player);
    measure(name, none,
            bench::options(Heuristic::kAll, FailureMode::kAbortBranch));
  }

  std::printf(
      "\nShape reproduced: the strong policy stays at 2 explored sequences\n"
      "but finds no complete schedule on overlapping games (over-\n"
      "constrained); the weaker and unconstrained searches blow through the\n"
      "100,000-schedule cap ('do not terminate within the limit') from the\n"
      "smallest board up.\n");
  return 0;
}
