// M3: parallel cutset search — wall-clock scaling with worker threads.
//
// The jigsaw experiments are acyclic (one empty proper cutset), so they
// cannot exercise cutset-level parallelism. This bench builds a workload
// whose dependence graph has C *independent* 2-cycles — each cycle is a
// pair of mutually-unsafe cross-log actions — so the proper-cutset
// enumeration yields 2^C minimal hitting sets (capped at
// ReconcilerOptions::max_cutsets). Each cutset's sub-search then interleaves
// two order-preserved chains of F "free" actions, giving C(2F, F) complete
// schedules per cutset: enough uniform work per cutset for the per-cutset
// fan-out to show.
//
// Results are bit-for-bit identical across thread counts (the merge is
// deterministic — DESIGN.md §8); the bench asserts that while it measures.
// On a single-core container the sweep still runs and reports ~1.0x; the
// speedup column is meaningful on multi-core hardware only.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/reconciler.hpp"
#include "util/timer.hpp"

namespace {

using namespace icecube;

/// Single shared object whose order table is driven entirely by tags:
///  - cyc(i, side): mutually unsafe with the same cycle's other side
///    (creating the 2-cycle); ascending cycle order enforced otherwise.
///  - free(log, pos): same-log reversal unsafe (log order preserved),
///    cross-log maybe (every interleaving explored under H=All).
///  - any free before any cyc is safe; cyc before free is unsafe, which
///    pins the cycle survivors after the frees so they add no branching.
class LockstepObject final : public SharedObject {
 public:
  [[nodiscard]] std::unique_ptr<SharedObject> clone() const override {
    return std::make_unique<LockstepObject>(*this);
  }

  [[nodiscard]] Constraint order(const Action& a, const Action& b,
                                 LogRelation rel) const override {
    const Tag& ta = a.tag();
    const Tag& tb = b.tag();
    const bool a_cyc = ta.op == "cyc";
    const bool b_cyc = tb.op == "cyc";
    if (a_cyc && b_cyc) {
      if (ta.param(0) == tb.param(0)) return Constraint::kUnsafe;  // 2-cycle
      return ta.param(0) < tb.param(0) ? Constraint::kSafe
                                       : Constraint::kUnsafe;
    }
    if (a_cyc != b_cyc) {
      return b_cyc ? Constraint::kSafe : Constraint::kUnsafe;
    }
    if (rel == LogRelation::kSameLog) return Constraint::kUnsafe;
    return Constraint::kMaybe;
  }

  [[nodiscard]] std::string describe() const override { return "lockstep"; }
};

class NopAction final : public SimpleAction {
 public:
  NopAction(Tag tag, ObjectId target) : SimpleAction(std::move(tag), {target}) {}
  [[nodiscard]] bool precondition(const Universe&) const override {
    return true;
  }
  bool execute(Universe&) const override { return true; }
};

struct Workload {
  Universe initial;
  std::vector<Log> logs;
  std::size_t n_actions = 0;
};

Workload make_workload(int cycles, int frees_per_log) {
  Workload w;
  const ObjectId obj = w.initial.add(std::make_unique<LockstepObject>());
  Log a("site-a");
  Log b("site-b");
  for (int f = 0; f < frees_per_log; ++f) {
    a.append(std::make_shared<NopAction>(Tag("free", {0, f}), obj));
    b.append(std::make_shared<NopAction>(Tag("free", {1, f}), obj));
  }
  for (int c = 0; c < cycles; ++c) {
    a.append(std::make_shared<NopAction>(Tag("cyc", {c, 0}), obj));
    b.append(std::make_shared<NopAction>(Tag("cyc", {c, 1}), obj));
  }
  w.n_actions = a.size() + b.size();
  w.logs.push_back(std::move(a));
  w.logs.push_back(std::move(b));
  return w;
}

struct Measured {
  double wall = 0.0;
  std::uint64_t schedules = 0;
  std::size_t cutsets = 0;
  double best_cost = 0.0;
  std::string best_schedule;
  SearchStats stats;
};

Measured run_once(const Workload& w, std::size_t threads) {
  ReconcilerOptions options;
  options.heuristic = Heuristic::kAll;
  options.limits.max_schedules = 50'000'000;  // never the binding limit here
  options.threads = threads;

  const Stopwatch wall;
  Reconciler r(w.initial, w.logs, options);
  const ReconcileResult result = r.run();

  Measured m;
  m.wall = wall.seconds();
  m.schedules = result.stats.schedules_explored();
  m.cutsets = result.cutsets.size();
  m.best_cost = result.best().cost;
  m.best_schedule = r.describe_schedule(result.best().schedule);
  m.stats = result.stats;
  for (ActionId skip : result.best().skipped) {
    m.best_schedule += " -" + std::to_string(skip.index());
  }
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonSink json(argc, argv);

  std::printf("=== M3: parallel cutset search (speedup vs --threads 1) ===\n\n");
  std::printf("%-28s %8s %8s %8s %10s %9s %8s\n", "workload", "actions",
              "threads", "cutsets", "schedules", "time(s)", "speedup");

  for (const auto& [cycles, frees] : {std::pair{6, 6}, std::pair{6, 7}}) {
    const Workload w = make_workload(cycles, frees);
    char name[64];
    std::snprintf(name, sizeof name, "lockstep c=%d f=%d", cycles, frees);

    double base_wall = 0.0;
    Measured reference;
    for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
      const Measured m = run_once(w, threads);
      if (threads == 1) {
        base_wall = m.wall;
        reference = m;
      } else if (m.schedules != reference.schedules ||
                 m.best_cost != reference.best_cost ||
                 m.best_schedule != reference.best_schedule) {
        std::fprintf(stderr,
                     "FATAL: threads=%zu diverged from the sequential "
                     "result on %s\n",
                     threads, name);
        return 1;
      }
      std::printf("%-28s %8zu %8zu %8zu %10llu %9.3f %7.2fx\n", name,
                  w.n_actions, threads, m.cutsets,
                  static_cast<unsigned long long>(m.schedules), m.wall,
                  base_wall > 0 ? base_wall / m.wall : 0.0);
      json.record(name, w.n_actions, threads, m.wall, m.stats, m.best_cost);
    }
    std::printf("\n");
  }

  std::printf(
      "Identical schedules, costs and explored counts at every thread\n"
      "count (asserted above); speedup is the only thing that varies.\n");
  return 0;
}
