// Analysis-cost bench: what does proving order() honest cost per shipped
// type? One row per audit subject (plus an all-subjects total) reporting
// the auditor's work counters — pairs checked, states sampled, order()
// calls, execution probes — next to the wall time, so regressions in the
// static-analysis pass itself show up in the bench artifact.
//
// The binary doubles as a gate: it exits non-zero if any shipped type
// produces an error-level finding, mirroring `tools/analyze --fail-on
// error`, so the CI bench smoke re-checks soundness on every run.
//
// `--json <path>` writes one record per row (see JsonSink). Field mapping
// for this bench: n_actions carries pairs_checked and schedules_explored
// carries execution probes (the dominant cost term); the clone counters
// stay zero.
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/analyzer.hpp"
#include "bench_common.hpp"
#include "core/audit.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace icecube;
  bench::JsonSink json(argc, argv);

  const std::vector<AuditSubject> subjects =
      analysis::shipped_audit_subjects();
  const analysis::AnalyzerOptions options;

  std::printf("%-18s %8s %8s %8s %12s %12s %9s %9s\n", "subject", "pairs",
              "states", "findings", "order_calls", "executions", "err",
              "time(s)");

  analysis::AnalysisStats total;
  std::size_t total_findings = 0;
  std::size_t total_errors = 0;
  double total_wall = 0.0;
  for (const AuditSubject& subject : subjects) {
    Stopwatch clock;
    const analysis::AnalysisReport report =
        analysis::analyze_subjects({subject}, options);
    const double wall = clock.seconds();

    const std::size_t errors =
        report.count_at_least(analysis::Severity::kError);
    std::printf("%-18s %8llu %8llu %8zu %12llu %12llu %9zu %9.3f\n",
                subject.name.c_str(),
                static_cast<unsigned long long>(report.stats.pairs_checked),
                static_cast<unsigned long long>(report.stats.states_sampled),
                report.diagnostics.size(),
                static_cast<unsigned long long>(report.stats.order_calls),
                static_cast<unsigned long long>(report.stats.executions),
                errors, wall);

    json.record("analysis/" + subject.name, report.stats.pairs_checked, 1,
                wall, report.stats.executions);
    total.merge(report.stats);
    total_findings += report.diagnostics.size();
    total_errors += errors;
    total_wall += wall;
  }

  std::printf("%-18s %8llu %8llu %8zu %12llu %12llu %9zu %9.3f\n", "total",
              static_cast<unsigned long long>(total.pairs_checked),
              static_cast<unsigned long long>(total.states_sampled),
              total_findings,
              static_cast<unsigned long long>(total.order_calls),
              static_cast<unsigned long long>(total.executions), total_errors,
              total_wall);
  json.record("analysis/total", total.pairs_checked, 1, total_wall,
              total.executions);

  if (total_errors != 0) {
    std::fprintf(stderr,
                 "FAIL: %zu error-level finding(s) in shipped types\n",
                 total_errors);
    return 1;
  }
  return 0;
}
