// M5: decentralised commitment — agreement latency vs. site count and
// fault rate.
//
// Measures, for growing cluster sizes, how long the election-based
// commitment protocol (replica/commit.hpp) takes to make the whole
// workload *irrevocable* everywhere on the simulated network: simulated
// time to full stability, elections decided, rebases performed, and
// wall-clock per run. Every run executes both invariant suites (gossip +
// commitment); a violation or non-convergence fails the bench loudly.
//
// JsonSink schema note: the sink's fixed record is
// (workload, n_actions, threads, wall_seconds, schedules_explored); this
// bench maps cluster size into `threads` and simulated time-to-stability
// into `schedules_explored` — the closest "work performed" analogue.
#include <cstdio>
#include <cstdlib>

#include "bench_common.hpp"
#include "simnet/chaos.hpp"
#include "util/timer.hpp"

namespace {

using namespace icecube;

struct Scenario {
  const char* name;
  double lose;
  double duplicate;
  double partition;
  double site_down;
  double drop_vote;
  std::size_t fault_horizon;
};

// Kept milder than bench_chaos's hostile cell: the commitment layer has
// to finish *elections* after the faults stop, and the point here is the
// latency trend across cluster sizes, not survival (the chaos tests and
// the CI seed sweep cover survival at full hostility).
//
// The fault horizon doubles as the convergence floor (stability is only
// evaluated once faults stop), so the clean scenario uses horizon 0 —
// its stable_t is the protocol's raw agreement latency — while the
// faulty scenarios report recovery latency after a 150-tick fault
// window.
constexpr Scenario kScenarios[] = {
    {"clean", 0.0, 0.0, 0.0, 0.0, 0.0, 0},
    {"lossy", 0.08, 0.04, 0.0, 0.0, 0.05, 150},
    {"hostile", 0.05, 0.03, 0.02, 0.02, 0.05, 150},
};

}  // namespace

int main(int argc, char** argv) {
  bench::JsonSink json(argc, argv);

  std::printf("%-10s %6s %6s %8s %9s %9s %8s %8s %9s\n", "scenario",
              "sites", "seeds", "stable_t", "decisions", "runoffs",
              "rebases", "steps", "wall(s)");

  for (const Scenario& scenario : kScenarios) {
    for (const std::size_t sites : {3u, 9u, 27u, 81u}) {
      // Larger clusters get fewer seeds, a lighter workload, a wider
      // gossip interval, and a bigger event budget: commitment frames
      // carry every proposal's full history, so per-frame cost grows
      // roughly with sites * history and the 81-site cells would
      // otherwise dominate the bench's wall-clock.
      const std::size_t seeds_per_cell = sites <= 9 ? 3 : sites <= 27 ? 2 : 1;
      ChaosSpec spec;
      spec.sites = sites;
      spec.actions_per_site = sites <= 9 ? 3 : sites <= 27 ? 2 : 1;
      spec.gossip_interval = sites >= 81 ? 8 : 4;
      spec.fault_horizon = scenario.fault_horizon;
      spec.step_budget = 100000 + sites * 4000;
      spec.faults.lose = scenario.lose;
      spec.faults.duplicate = scenario.duplicate;
      spec.faults.partition = scenario.partition;
      spec.faults.site_down = scenario.site_down;
      spec.faults.drop_vote = scenario.drop_vote;
      spec.faults.delay_max = 3;
      spec.faults.reorder = scenario.lose > 0 ? 0.05 : 0.0;
      spec.deep_replay = false;  // measured runs: protocol cost only
      spec.keep_trace = false;

      std::size_t total_stable_t = 0;
      std::size_t total_steps = 0;
      std::size_t total_decisions = 0;
      std::size_t total_runoffs = 0;
      std::size_t total_rebases = 0;
      Stopwatch timer;
      for (std::size_t s = 0; s < seeds_per_cell; ++s) {
        spec.seed = 2000 + s;
        const ChaosReport report = run_chaos(spec);
        if (!report.ok()) {
          std::fprintf(stderr,
                       "FATAL: scenario %s sites=%zu seed %llu failed "
                       "(converged=%d, %zu violations)\n",
                       scenario.name, sites,
                       static_cast<unsigned long long>(report.seed),
                       report.converged ? 1 : 0, report.violations.size());
          return 1;
        }
        total_stable_t += report.converged_at;
        total_steps += report.steps;
        total_decisions += report.commit_totals.decisions;
        total_runoffs += report.commit_totals.runoff_votes;
        total_rebases += report.commit_totals.rebases;
      }
      const double wall = timer.seconds();

      std::printf("%-10s %6zu %6zu %8zu %9zu %9zu %8zu %8zu %9.3f\n",
                  scenario.name, sites, seeds_per_cell,
                  total_stable_t / seeds_per_cell,
                  total_decisions / seeds_per_cell,
                  total_runoffs / seeds_per_cell,
                  total_rebases / seeds_per_cell,
                  total_steps / seeds_per_cell, wall);
      json.record(std::string("commit/") + scenario.name,
                  sites * spec.actions_per_site, sites, wall,
                  total_stable_t / seeds_per_cell);
    }
  }
  return 0;
}
