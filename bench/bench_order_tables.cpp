// Figures 2, 3, 4, 5, 7 and 8 — the order-method tables.
//
// Prints each figure's `order(a, b)` matrix exactly as the engine computes
// it (rows: a, columns: b; the cell answers "may a be ordered before b?").
// Cell values follow the prose of §2.4 / §4.2; see DESIGN.md §5.1 for how
// the ambiguous scanned figures were resolved.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/universe.hpp"
#include "jigsaw/actions.hpp"
#include "jigsaw/board.hpp"
#include "jigsaw/order.hpp"
#include "objects/counter.hpp"
#include "objects/rw_register.hpp"

namespace {

using icecube::Action;
using icecube::Constraint;
using icecube::LogRelation;

void print_table(const std::string& title,
                 const std::vector<std::string>& labels,
                 const std::vector<std::shared_ptr<Action>>& actions,
                 const icecube::SharedObject& object, LogRelation rel) {
  std::printf("%s\n", title.c_str());
  std::printf("%-26s", "order(a,b): a \\ b");
  for (const auto& l : labels) std::printf("%-26s", l.c_str());
  std::printf("\n");
  for (std::size_t i = 0; i < actions.size(); ++i) {
    std::printf("%-26s", labels[i].c_str());
    for (std::size_t j = 0; j < actions.size(); ++j) {
      const Constraint c = object.order(*actions[i], *actions[j], rel);
      std::printf("%-26s", std::string(to_string(c)).c_str());
    }
    std::printf("\n");
  }
  std::printf("\n");
}

void register_tables() {
  icecube::Universe u;
  const auto reg = u.add(std::make_unique<icecube::RwRegister>(0));
  const std::vector<std::shared_ptr<Action>> actions{
      std::make_shared<icecube::WriteAction>(reg, 1),
      std::make_shared<icecube::ReadAction>(reg)};
  const std::vector<std::string> labels{"write", "read"};
  print_table("Figure 2: read-write integer order(a,b), across logs", labels,
              actions, u.at(reg), LogRelation::kAcrossLogs);
  print_table("Figure 4: read-write integer order(a,b), within log", labels,
              actions, u.at(reg), LogRelation::kSameLog);
}

void counter_tables() {
  icecube::Universe u;
  const auto c = u.add(std::make_unique<icecube::Counter>(0));
  const std::vector<std::shared_ptr<Action>> actions{
      std::make_shared<icecube::IncrementAction>(c, 1),
      std::make_shared<icecube::DecrementAction>(c, 1)};
  const std::vector<std::string> labels{"increment", "decrement"};
  print_table("Figure 3: counter integer order(a,b), across logs", labels,
              actions, u.at(c), LogRelation::kAcrossLogs);
  print_table("Figure 5: counter integer order(a,b), within log", labels,
              actions, u.at(c), LogRelation::kSameLog);
}

void jigsaw_tables() {
  using namespace icecube::jigsaw;
  icecube::Universe u;
  const auto b =
      u.add(std::make_unique<Board>(4, 4, Board::OrderCase::kSemantic));
  // Representative pairs: joins sharing a piece-edge slot conflict; joins
  // and removes of a common piece conflict; unrelated pieces are "maybe".
  const std::vector<std::shared_ptr<Action>> actions{
      std::make_shared<JoinAction>(b, 0, Edge::kRight, 1, Edge::kLeft),
      std::make_shared<JoinAction>(b, 1, Edge::kRight, 2, Edge::kLeft),
      std::make_shared<JoinAction>(b, 0, Edge::kRight, 5, Edge::kLeft),
      std::make_shared<RemoveAction>(b, 1),
      std::make_shared<RemoveAction>(b, 9)};
  const std::vector<std::string> labels{
      "join(P0,r,P1,l)", "join(P1,r,P2,l)", "join(P0,r,P5,l)", "remove(P1)",
      "remove(P9)"};
  print_table(
      "Figure 7: jigsaw semantic order(a,b), same log (reversing direction)",
      labels, actions, u.at(b), LogRelation::kSameLog);
  print_table("Figure 8: jigsaw semantic order(a,b), across logs", labels,
              actions, u.at(b), LogRelation::kAcrossLogs);
  std::printf(
      "Rules visible above: joins sharing the same edge of the same piece\n"
      "(join(P0,r,P1,l) vs join(P0,r,P5,l)) are unsafe; a join and a remove\n"
      "of a common piece are mutually unsafe (the paper's spurious-conflict\n"
      "example, #4.4); everything else is maybe, i.e. checked dynamically.\n");
}

}  // namespace

int main() {
  std::printf("=== IceCube order-method tables (Figures 2-5, 7-8) ===\n\n");
  register_tables();
  counter_tables();
  jigsaw_tables();
  return 0;
}
