// M5: wire-capture overhead — what always-on incident recording costs.
//
// Runs the same chaos scenario bare, with an in-memory capture sink, and
// through the durable writer under each durability policy, and reports
// wall-clock per run, captured frames/second and bytes written. The
// interval-durability disk row is the deployment configuration; the bench
// fails loudly when its overhead versus the bare run exceeds 15% — the
// acceptance bar for leaving capture enabled in every chaos sweep.
//
// JsonSink schema note: the sink's fixed record is (workload, n_actions,
// threads, wall_seconds, schedules_explored); this bench maps captured
// frames into `schedules_explored` and capture bytes into `n_actions` —
// the closest "work performed" analogues.
#include <cstdio>
#include <filesystem>
#include <string>

#include "bench_common.hpp"
#include "capture/replay_engine.hpp"
#include "capture/wire_log_writer.hpp"
#include "simnet/chaos.hpp"
#include "util/timer.hpp"

namespace {

using namespace icecube;

ChaosSpec scenario(std::uint64_t seed) {
  ChaosSpec spec;
  spec.seed = seed;
  spec.sites = 4;
  spec.actions_per_site = 5;
  spec.faults.lose = 0.05;
  spec.faults.duplicate = 0.03;
  spec.faults.delay_max = 3;
  spec.deep_replay = false;  // measured runs: protocol cost only
  spec.keep_trace = false;
  return spec;
}

struct Cell {
  double wall = 0.0;          ///< best-of-repeats, seconds per run
  std::size_t frames = 0;     ///< captured frames across the batch
  std::size_t bytes = 0;      ///< capture bytes written across the batch
};

}  // namespace

int main(int argc, char** argv) {
  bench::JsonSink json(argc, argv);
  constexpr std::size_t kSeeds = 4;
  constexpr std::size_t kRepeats = 3;
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("icecube-bench-capture-" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);

  // One batch = `seeds` full runs under `mode`; best-of-`repeats`
  // per-run wall. The per-frame-fsync row passes (1, 1): each of its runs
  // costs thousands of fsyncs, and one run is plenty to document that.
  const auto measure = [&](std::size_t seeds, std::size_t repeats,
                           auto&& run_one) {
    Cell cell;
    for (std::size_t rep = 0; rep < repeats; ++rep) {
      Cell attempt;
      Stopwatch timer;
      for (std::size_t s = 0; s < seeds; ++s) {
        run_one(scenario(2000 + s), attempt);
      }
      attempt.wall = timer.seconds() / static_cast<double>(seeds);
      if (rep == 0 || attempt.wall < cell.wall) cell = attempt;
    }
    return cell;
  };

  const auto fail = [&](const ChaosReport& report) {
    std::fprintf(stderr, "FATAL: seed %llu failed (converged=%d)\n",
                 static_cast<unsigned long long>(report.seed),
                 report.converged ? 1 : 0);
    std::filesystem::remove_all(dir);
    std::exit(1);
  };

  const Cell bare = measure(kSeeds, kRepeats, [&](const ChaosSpec& spec,
                                                  Cell&) {
    const ChaosReport report = run_chaos(spec);
    if (!report.ok()) fail(report);
  });

  const Cell memory = measure(kSeeds, kRepeats, [&](const ChaosSpec& spec,
                                                    Cell& cell) {
    MemoryCaptureSink sink;
    const ChaosReport report = run_chaos_captured(spec, sink);
    if (!report.ok()) fail(report);
    cell.frames += sink.records().size();
    for (const CaptureRecord& r : sink.records()) {
      cell.bytes += kCaptureFrameOverhead + r.payload.size();
    }
  });

  const auto disk_cell = [&](CaptureDurability durability,
                             std::size_t seeds, std::size_t repeats) {
    return measure(seeds, repeats, [&](const ChaosSpec& spec, Cell& cell) {
      const std::string path =
          (dir / ("run-" + std::to_string(spec.seed) + ".icap")).string();
      CaptureWriterOptions options;
      options.durability = durability;
      WireLogWriter writer(path, options);
      const ChaosReport report = run_chaos_captured(spec, writer);
      writer.close();
      if (!report.ok() || !writer.ok()) fail(report);
      cell.frames += writer.stats().frames;
      cell.bytes += writer.stats().bytes;
    });
  };
  const Cell disk_none = disk_cell(CaptureDurability::kNone, kSeeds, kRepeats);
  const Cell disk_interval =
      disk_cell(CaptureDurability::kInterval, kSeeds, kRepeats);
  const Cell disk_frame = disk_cell(CaptureDurability::kPerFrame, 1, 1);

  std::printf("%-16s %9s %10s %10s %12s %9s\n", "mode", "wall(s)",
              "overhead", "frames", "frames/s", "MiB");
  const auto row = [&](const char* name, const Cell& cell) {
    const double overhead = (cell.wall - bare.wall) / bare.wall * 100.0;
    std::printf("%-16s %9.3f %9.1f%% %10zu %12.0f %9.2f\n", name, cell.wall,
                overhead, cell.frames,
                cell.wall > 0 ? cell.frames / cell.wall : 0.0,
                cell.bytes / (1024.0 * 1024.0));
    json.record(std::string("capture/") + name, cell.bytes, kSeeds,
                cell.wall, cell.frames);
  };
  row("bare", bare);
  row("memory", memory);
  row("disk-none", disk_none);
  row("disk-interval", disk_interval);
  row("disk-frame", disk_frame);

  std::filesystem::remove_all(dir);

  const double overhead =
      (disk_interval.wall - bare.wall) / bare.wall * 100.0;
  if (overhead > 15.0) {
    std::fprintf(stderr,
                 "FATAL: interval-durability capture overhead %.1f%% "
                 "exceeds the 15%% budget\n",
                 overhead);
    return 1;
  }
  return 0;
}
