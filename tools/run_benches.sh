#!/usr/bin/env sh
# Runs the machine-readable bench suite and drops BENCH_*.json at the repo
# root. Usage:
#
#   tools/run_benches.sh [build-dir]
#
# The build dir defaults to ./build and must already contain the bench
# binaries (cmake --build <dir>). Each bench still prints its human table;
# the JSON files are the artifact a CI job archives or a notebook ingests.
set -eu

BUILD_DIR="${1:-build}"
ROOT_DIR="$(cd "$(dirname "$0")/.." && pwd)"

run() {
  name="$1"
  shift
  bin="$ROOT_DIR/$BUILD_DIR/bench/$name"
  if [ ! -x "$bin" ]; then
    echo "error: $bin not built (cmake --build $BUILD_DIR first)" >&2
    exit 1
  fi
  echo "== $name =="
  # Artifact names drop the binary's bench_ prefix: bench_state writes
  # BENCH_state.json, bench_solvers writes BENCH_solvers.json, ...
  "$bin" --json "$ROOT_DIR/BENCH_${name#bench_}.json" "$@"
  echo
}

run bench_parallel
run bench_scaling
run bench_solvers
run bench_state
run bench_chaos
run bench_commit
run bench_capture
run bench_stream
run bench_analysis
run bench_mc

# The soundness auditor's full report rides along with the bench artifacts:
# ANALYSIS_REPORT.json is the machine-readable record of every finding the
# static passes raised against the shipped types (error-level ones fail here).
echo "== analyze =="
"$ROOT_DIR/$BUILD_DIR/tools/analyze" --json "$ROOT_DIR/ANALYSIS_REPORT.json"
echo

echo "wrote:"
ls -l "$ROOT_DIR"/BENCH_*.json "$ROOT_DIR"/ANALYSIS_REPORT.json
