// Standalone driver for the constraint soundness auditor (src/analysis).
//
// Runs the relation auditor and the graph linter over every shipped object
// type (or a name-filtered subset), prints the findings, optionally writes
// the JSON report, and gates via the exit status. CI runs
// `analyze --json - --fail-on error` as the soundness gate.
//
//   analyze [--type NAME] [--seed N] [--json FILE|-]
//           [--min-severity info|warning|error] [--fail-on error|warning|never]
//           [--list]
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/analyzer.hpp"

namespace {

int usage(std::ostream& err) {
  err << "usage: analyze [options]\n"
         "  --type NAME            only subjects whose name contains NAME\n"
         "  --seed N               sampling seed (default 0x1cecbe0)\n"
         "  --json FILE|-          write the JSON report to FILE ('-' = "
         "stdout)\n"
         "  --min-severity LEVEL   text report threshold: info|warning|error"
         " (default info)\n"
         "  --fail-on LEVEL        exit non-zero on findings at or above "
         "LEVEL: error|warning|never (default error)\n"
         "  --list                 print the shipped subject names and exit\n";
  return 2;
}

bool parse_severity(const std::string& text,
                    icecube::analysis::Severity* severity) {
  using icecube::analysis::Severity;
  if (text == "info") {
    *severity = Severity::kInfo;
  } else if (text == "warning") {
    *severity = Severity::kWarning;
  } else if (text == "error") {
    *severity = Severity::kError;
  } else {
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using icecube::analysis::Severity;

  std::string type_filter;
  std::string json_path;
  Severity min_severity = Severity::kInfo;
  Severity fail_on = Severity::kError;
  bool fail_never = false;
  bool list_only = false;
  icecube::analysis::AnalyzerOptions options;

  const std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--type") {
      if (++i >= args.size()) return usage(std::cerr);
      type_filter = args[i];
    } else if (arg == "--seed") {
      if (++i >= args.size()) return usage(std::cerr);
      char* end = nullptr;
      const unsigned long long seed = std::strtoull(args[i].c_str(), &end, 0);
      if (end == nullptr || *end != '\0') {
        std::cerr << "error: --seed expects a number, got '" << args[i]
                  << "'\n";
        return 2;
      }
      options.set_seed(static_cast<std::uint64_t>(seed));
    } else if (arg == "--json") {
      if (++i >= args.size()) return usage(std::cerr);
      json_path = args[i];
    } else if (arg == "--min-severity") {
      if (++i >= args.size() || !parse_severity(args[i], &min_severity)) {
        return usage(std::cerr);
      }
    } else if (arg == "--fail-on") {
      if (++i >= args.size()) return usage(std::cerr);
      if (args[i] == "never") {
        fail_never = true;
      } else if (!parse_severity(args[i], &fail_on)) {
        return usage(std::cerr);
      }
    } else if (arg == "--list") {
      list_only = true;
    } else {
      std::cerr << "error: unknown option '" << arg << "'\n";
      return usage(std::cerr);
    }
  }

  if (list_only) {
    for (const auto& subject : icecube::analysis::shipped_audit_subjects()) {
      std::cout << subject.name << '\n';
    }
    return 0;
  }

  const icecube::analysis::AnalysisReport report =
      icecube::analysis::analyze_shipped(options, type_filter);

  if (json_path == "-") {
    std::cout << report.to_json();
  } else {
    std::cout << report.render(min_severity);
    if (!json_path.empty()) {
      std::ofstream out(json_path, std::ios::binary);
      if (!out) {
        std::cerr << "error: cannot write '" << json_path << "'\n";
        return 1;
      }
      out << report.to_json();
      std::cout << "JSON report written to " << json_path << '\n';
    }
  }

  if (!fail_never && report.count_at_least(fail_on) > 0) return 1;
  return 0;
}
