// mc — exhaustively model-check the gossip + commitment protocol on tiny
// configurations, with partial-order reduction and minimized replayable
// counterexamples.
//
// Examples:
//
//   # exhaustively explore a 3-site, 3-action config to depth 12
//   mc --sites 3 --actions 3 --depth 12
//
//   # the same space without sleep sets / state dedup (bench baseline)
//   mc --sites 3 --actions 3 --depth 12 --no-reduction
//
//   # hunt a seeded historical bug; write the minimized counterexample as
//   # a replayable capture, then reproduce it bit-exactly
//   mc --sites 3 --actions 2 --depth 10 --mutant plurality-ignore-unheard
//      --counterexample bug.icap
//   chaos --replay-capture bug.icap
//
//   # emit a counterexample-free convergent witness capture for a config
//   mc --sites 3 --actions 3 --emit-witness witness.icap
//
// Exit status: 0 when the explored space is clean, 1 when a violation was
// found (the minimized counterexample is printed and optionally written),
// 2 on bad usage. A clean-but-budget-exhausted exploration still exits 0;
// the report says complete=false.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "capture/replay_engine.hpp"
#include "mc/explorer.hpp"
#include "mc/minimize.hpp"
#include "mc/schedule.hpp"

namespace {

using namespace icecube;

void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --sites N          group size, 2..8 (default 3)\n"
      "  --actions N        total workload actions, round-robin (default 3)\n"
      "  --seed N           workload content seed (default 1)\n"
      "  --depth N          max choices per explored sequence (default 10)\n"
      "  --states-budget N  max transitions to apply (default 200000)\n"
      "  --no-reduction     disable sleep sets + transposition table\n"
      "  --no-commit        disable the commitment layer\n"
      "  --no-algebra       skip merge-law checks at quiescent states\n"
      "  --withhold         add vote-withholding step choices\n"
      "  --drops N          message-loss choice budget (default 0)\n"
      "  --dups N           duplication choice budget (default 0)\n"
      "  --crashes N        crash/restart choice budget (default 0)\n"
      "  --cuts N           partition choice budget (default 0)\n"
      "  --mutant M         seed a historical protocol bug (name or id;\n"
      "                     see --list-mutants)\n"
      "  --list-mutants     print the seedable protocol mutants and exit\n"
      "  --counterexample F write the minimized counterexample as a\n"
      "                     replayable capture (chaos --replay-capture F)\n"
      "  --no-minimize      keep the raw counterexample trace\n"
      "  --emit-witness F   write a convergent counterexample-free capture\n"
      "                     for this config and exit\n"
      "  --json PATH        write the exploration report as JSON\n",
      argv0);
}

bool parse_u64(const char* s, std::uint64_t& out) {
  char* end = nullptr;
  out = std::strtoull(s, &end, 10);
  return end != nullptr && *end == '\0' && end != s;
}

bool parse_size(const char* s, std::size_t& out) {
  std::uint64_t v = 0;
  if (!parse_u64(s, v)) return false;
  out = static_cast<std::size_t>(v);
  return true;
}

bool parse_mutant(const char* s, ProtocolMutant& out) {
  for (std::uint8_t m = 0; m <= kProtocolMutantMax; ++m) {
    const auto mutant = static_cast<ProtocolMutant>(m);
    if (to_string(mutant) == s) {
      out = mutant;
      return true;
    }
  }
  std::uint64_t id = 0;
  if (parse_u64(s, id) && id <= kProtocolMutantMax) {
    out = static_cast<ProtocolMutant>(id);
    return true;
  }
  return false;
}

void list_mutants() {
  std::printf("seedable protocol mutants (historical, fixed bugs):\n");
  for (std::uint8_t m = 1; m <= kProtocolMutantMax; ++m) {
    const auto mutant = static_cast<ProtocolMutant>(m);
    std::printf("  %u  %s\n", static_cast<unsigned>(m),
                std::string(to_string(mutant)).c_str());
  }
}

bool write_json_file(const std::string& path, const std::string& json) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write '%s'\n", path.c_str());
    return false;
  }
  out << json << "\n";
  return true;
}

/// --emit-witness: drive the config to convergence, write the capture,
/// then prove it replays bit-exactly before reporting success.
int emit_witness(const mc::McConfig& config, const std::string& path) {
  const std::vector<mc::Choice> schedule = mc::witness_schedule(config);
  if (schedule.empty()) {
    std::fprintf(stderr,
                 "emit-witness: config does not settle under the greedy "
                 "schedule\n");
    return 2;
  }
  std::string error;
  if (!write_mc_capture_file(path, config, schedule, &error)) {
    std::fprintf(stderr, "emit-witness: %s\n", error.c_str());
    return 2;
  }
  const ReplayResult replay = replay_capture_file(path);
  if (!replay.faithful()) {
    std::fprintf(stderr, "emit-witness: capture does not replay: %s\n",
                 replay.error.ok() ? "divergence"
                                   : replay.error.message().c_str());
    return 1;
  }
  std::printf("witness: %zu choice(s), settled, capture %s (replay verified)\n",
              schedule.size(), path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  mc::McConfig config;
  mc::ExploreOptions options;
  bool minimize = true;
  std::string counterexample_path;
  std::string witness_path;
  std::string json_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need = [&](int count) {
      if (i + count >= argc) {
        std::fprintf(stderr, "%s needs %d argument(s)\n", arg.c_str(), count);
        // Single-threaded CLI: exiting from the arg parser is safe.
        std::exit(2);  // NOLINT(concurrency-mt-unsafe)
      }
    };
    bool ok = true;
    if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (arg == "--sites") {
      need(1);
      ok = parse_size(argv[++i], config.sites) && config.sites >= 2 &&
           config.sites <= 8;
    } else if (arg == "--actions") {
      need(1);
      ok = parse_size(argv[++i], config.actions);
    } else if (arg == "--seed") {
      need(1);
      ok = parse_u64(argv[++i], config.seed);
    } else if (arg == "--depth") {
      need(1);
      ok = parse_size(argv[++i], options.depth) && options.depth > 0;
    } else if (arg == "--states-budget") {
      need(1);
      ok = parse_size(argv[++i], options.states_budget) &&
           options.states_budget > 0;
    } else if (arg == "--no-reduction") {
      options.reduction = false;
    } else if (arg == "--no-commit") {
      config.commitment = false;
    } else if (arg == "--no-algebra") {
      config.algebra = false;
    } else if (arg == "--withhold") {
      config.withhold = true;
    } else if (arg == "--drops") {
      need(1);
      ok = parse_size(argv[++i], config.max_drops);
    } else if (arg == "--dups") {
      need(1);
      ok = parse_size(argv[++i], config.max_dups);
    } else if (arg == "--crashes") {
      need(1);
      ok = parse_size(argv[++i], config.max_crashes);
    } else if (arg == "--cuts") {
      need(1);
      ok = parse_size(argv[++i], config.max_cuts);
    } else if (arg == "--mutant") {
      need(1);
      ok = parse_mutant(argv[++i], config.mutant);
    } else if (arg == "--list-mutants") {
      list_mutants();
      return 0;
    } else if (arg == "--counterexample") {
      need(1);
      counterexample_path = argv[++i];
    } else if (arg == "--no-minimize") {
      minimize = false;
    } else if (arg == "--emit-witness") {
      need(1);
      witness_path = argv[++i];
    } else if (arg == "--json") {
      need(1);
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      usage(argv[0]);
      return 2;
    }
    if (!ok) {
      std::fprintf(stderr, "bad value for %s\n", arg.c_str());
      return 2;
    }
  }

  if (!witness_path.empty()) return emit_witness(config, witness_path);

  mc::McReport report = mc::explore(config, options);

  std::printf(
      "explored: %zu transition(s), %zu distinct state(s), depth %zu, "
      "reduction %s\n",
      report.transitions, report.distinct_states, options.depth,
      options.reduction ? "on" : "off");
  if (options.reduction) {
    std::printf("pruned: %zu tt hit(s), %zu sleep-set skip(s)\n",
                report.tt_hits, report.sleep_skips);
  }
  std::printf("frontier: widest enabled set %zu\n", report.max_frontier);
  if (config.mutant != ProtocolMutant::kNone) {
    std::printf("mutant: %s\n",
                std::string(to_string(config.mutant)).c_str());
  }

  if (report.counterexample) {
    mc::McCounterexample& cex = *report.counterexample;
    std::printf("VIOLATION after %zu choice(s):\n", cex.trace.size());
    for (const Violation& v : cex.violations) {
      std::printf("  %s\n", v.message().c_str());
    }
    if (minimize) {
      cex.trace = mc::minimize_trace(config, cex.trace);
      std::printf("minimized to %zu choice(s):\n", cex.trace.size());
    } else {
      std::printf("raw trace (%zu choice(s)):\n", cex.trace.size());
    }
    for (const mc::Choice& c : cex.trace) {
      std::printf("  %s\n", c.describe().c_str());
    }
    if (!counterexample_path.empty()) {
      std::string error;
      if (!write_mc_capture_file(counterexample_path, config, cex.trace,
                                 &error)) {
        std::fprintf(stderr, "counterexample: %s\n", error.c_str());
        return 2;
      }
      std::printf("counterexample: %s (chaos --replay-capture)\n",
                  counterexample_path.c_str());
    }
    if (!json_path.empty() && !write_json_file(json_path, report.to_json())) {
      return 2;
    }
    return 1;
  }

  std::printf(report.complete
                  ? "state space exhausted to depth %zu: no violations\n"
                  : "budget exhausted after %zu transition(s): no "
                    "violations in the explored prefix\n",
              report.complete ? options.depth : report.transitions);
  if (!json_path.empty() && !write_json_file(json_path, report.to_json())) {
    return 2;
  }
  return 0;
}
