// Command-line front-end; all logic lives in src/cli (testable).
#include <iostream>
#include <string>
#include <vector>

#include "cli/cli.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return icecube::cli::run(args, std::cout, std::cerr);
}
