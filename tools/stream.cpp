// stream — run the online streaming reconciler daemon over a Fages
// workload and report sustained ingest throughput, commit latency and the
// incremental-solver counters.
//
// Examples:
//
//   # live mode: threaded daemon, 100k actions, real latency budget
//   stream --replicas 4 --tasks 25000 --budget-us 500 --json stream.json
//
//   # perf gates for CI (exit 1 when missed)
//   stream --tasks 5000 --min-ingest 200000 --max-p99-ms 50
//
//   # incident workflow: record a deterministic capture, replay it
//   stream --tasks 20 --arrival shuffled --batch 8 --capture caps
//   stream --replay-capture caps/stream-seed-1.icap
//
// Two run modes share the flags:
//
//  * live (default): the threaded StreamDaemon — a producer thread (main)
//    submits through the SPSC ring while the consumer solves under the
//    epoch latency budget. This is the mode that measures.
//  * captured (--capture DIR): a deterministic single-threaded run with
//    the epoch budget forced to zero, recorded frame-by-frame into
//    DIR/stream-seed-N.icap; `--replay-capture` re-drives it bit-exactly.
//
// Exit status: 0 on success (and all gates met), 1 on a missed gate or
// divergent replay, 2 on unusable input.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "capture/replay_engine.hpp"
#include "capture/wire_log_writer.hpp"
#include "stream/daemon.hpp"
#include "stream/stream_spec_codec.hpp"
#include "util/rng.hpp"
#include "workload/generators.hpp"

namespace {

using namespace icecube;

void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --replicas N      divergent replicas (default 3)\n"
      "  --tasks N         tasks per replica (default 40)\n"
      "  --density D       intra-log dependency density (default 1.5)\n"
      "  --conflict P      cross-replica conflict ratio (default 0.25)\n"
      "  --resources N     shared claim cells (default 8)\n"
      "  --capacity N      per-resource capacity (default 1)\n"
      "  --seed N          workload seed (default 1)\n"
      "  --backend K       greedy | ls (default greedy)\n"
      "  --arrival A       flatten | roundrobin | shuffled (default\n"
      "                    flatten)\n"
      "  --arrival-seed N  interleaving seed for --arrival shuffled\n"
      "  --batch N         arrivals per epoch, 0 = solve only at finish\n"
      "                    (default 64)\n"
      "  --quiescence N    undisturbed epochs before a component's prefix\n"
      "                    commits (default 1)\n"
      "  --budget-us N     per-epoch solve budget; late components degrade\n"
      "                    to greedy (live mode only; default 0 = none)\n"
      "  --json PATH       write the report as JSON\n"
      "  --min-ingest R    gate: sustained ingest must reach R actions/sec\n"
      "  --max-p99-ms MS   gate: p99 commit latency must stay under MS\n"
      "  --capture DIR     record a deterministic run into\n"
      "                    DIR/stream-seed-N.icap (forces budget 0)\n"
      "  --replay-capture F  re-drive the run recorded in capture F and\n"
      "                    verify it frame-for-frame + trace-CRC\n",
      argv0);
}

bool parse_u64(const char* s, std::uint64_t& out) {
  char* end = nullptr;
  out = std::strtoull(s, &end, 10);
  return end != nullptr && *end == '\0' && end != s;
}

bool parse_double(const char* s, double& out) {
  char* end = nullptr;
  out = std::strtod(s, &end);
  return end != nullptr && *end == '\0' && end != s;
}

void write_json_file(const std::string& path, const std::string& json) {
  if (path.empty()) return;
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  out << json << "\n";
}

int run_replay(const std::string& path, const std::string& json_path) {
  const ReplayResult result = replay_capture_file(path);
  write_json_file(json_path, result.to_json());
  if (!result.error.ok()) {
    std::fprintf(stderr, "replay-capture: %s\n",
                 result.error.message().c_str());
    return 2;
  }
  std::printf("replayed %zu/%zu recorded frame(s)", result.frames_compared,
              result.recorded_frames);
  if (result.crc_checked) {
    std::printf(", trace crc %08x %s", result.recorded_crc,
                result.crc_match ? "reproduced" : "NOT reproduced");
  }
  std::printf("\n%s\n", result.faithful() ? "replay is bit-exact"
                                          : "REPLAY DIVERGED");
  return result.faithful() ? 0 : 1;
}

struct RunNumbers {
  double ingest_rate = 0.0;  ///< sustained actions/sec over the whole run
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double wall_seconds = 0.0;
  StreamCounters counters;
  SearchStats stats;
  std::size_t executed = 0;
  std::size_t skipped = 0;
};

std::string report_json(const StreamSpec& spec, const RunNumbers& n,
                        const char* mode) {
  std::string json = "{";
  json += "\"mode\":\"" + std::string(mode) + "\"";
  json += ",\"backend\":\"" + std::string(to_string(spec.backend)) + "\"";
  json += ",\"arrival\":\"" + std::string(to_string(spec.arrival)) + "\"";
  json += ",\"replicas\":" + std::to_string(spec.workload.replicas);
  json += ",\"tasks_per_replica\":" +
          std::to_string(spec.workload.tasks_per_replica);
  json += ",\"batch\":" + std::to_string(spec.batch);
  json += ",\"actions\":" + std::to_string(n.counters.ingested);
  json += ",\"wall_seconds\":" + std::to_string(n.wall_seconds);
  json += ",\"ingest_rate\":" + std::to_string(n.ingest_rate);
  json += ",\"p50_commit_ms\":" + std::to_string(n.p50_ms);
  json += ",\"p99_commit_ms\":" + std::to_string(n.p99_ms);
  json += ",\"epochs\":" + std::to_string(n.counters.epochs);
  json += ",\"degraded_epochs\":" + std::to_string(n.counters.degraded_epochs);
  json += ",\"fast_appends\":" + std::to_string(n.counters.fast_appends);
  json += ",\"full_resolves\":" + std::to_string(n.counters.full_resolves);
  json += ",\"commit_violations\":" +
          std::to_string(n.counters.commit_violations);
  json += ",\"max_commit_lag\":" + std::to_string(n.counters.max_commit_lag);
  json += ",\"pairs_evaluated\":" +
          std::to_string(n.stats.constraint_pairs_evaluated);
  json += ",\"executed\":" + std::to_string(n.executed);
  json += ",\"skipped\":" + std::to_string(n.skipped);
  json += "}";
  return json;
}

}  // namespace

int main(int argc, char** argv) {
  StreamSpec spec;
  std::uint64_t budget_us = 0;
  std::string json_path;
  std::string capture_dir;
  std::string replay_path;
  double min_ingest = 0.0;
  double max_p99_ms = 0.0;

  for (int i = 1; i < argc; ++i) {
    const auto is = [&](const char* flag) {
      return std::strcmp(argv[i], flag) == 0;
    };
    const auto need = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs %s\n", argv[i], what);
        // Single-threaded CLI: exiting from the arg parser is safe.
        std::exit(2);  // NOLINT(concurrency-mt-unsafe)
      }
      return argv[++i];
    };
    std::uint64_t v = 0;
    double d = 0.0;
    if (is("--help") || is("-h")) {
      usage(argv[0]);
      return 0;
    } else if (is("--replicas") && parse_u64(need("N"), v)) {
      spec.workload.replicas = static_cast<int>(v);
    } else if (is("--tasks") && parse_u64(need("N"), v)) {
      spec.workload.tasks_per_replica = static_cast<int>(v);
    } else if (is("--density") && parse_double(need("D"), d)) {
      spec.workload.dependency_density = d;
    } else if (is("--conflict") && parse_double(need("P"), d)) {
      spec.workload.conflict_ratio = d;
    } else if (is("--resources") && parse_u64(need("N"), v)) {
      spec.workload.shared_resources = static_cast<int>(v);
    } else if (is("--capacity") && parse_u64(need("N"), v)) {
      spec.workload.resource_capacity = static_cast<int>(v);
    } else if (is("--seed") && parse_u64(need("N"), v)) {
      spec.workload.seed = v;
    } else if (is("--backend")) {
      const char* name = need("K");
      if (std::strcmp(name, "greedy") == 0) {
        spec.backend = SolverKind::kGreedy;
      } else if (std::strcmp(name, "ls") == 0) {
        spec.backend = SolverKind::kLocalSearch;
      } else {
        std::fprintf(stderr, "unknown backend '%s'\n", name);
        return 2;
      }
    } else if (is("--arrival")) {
      const char* name = need("A");
      if (std::strcmp(name, "flatten") == 0) {
        spec.arrival = StreamArrival::kFlatten;
      } else if (std::strcmp(name, "roundrobin") == 0) {
        spec.arrival = StreamArrival::kRoundRobin;
      } else if (std::strcmp(name, "shuffled") == 0) {
        spec.arrival = StreamArrival::kShuffled;
      } else {
        std::fprintf(stderr, "unknown arrival '%s'\n", name);
        return 2;
      }
    } else if (is("--arrival-seed") && parse_u64(need("N"), v)) {
      spec.arrival_seed = v;
    } else if (is("--batch") && parse_u64(need("N"), v)) {
      spec.batch = static_cast<std::uint32_t>(v);
    } else if (is("--quiescence") && parse_u64(need("N"), v)) {
      spec.commit_quiescence = v;
    } else if (is("--budget-us") && parse_u64(need("N"), v)) {
      budget_us = v;
    } else if (is("--json")) {
      json_path = need("PATH");
    } else if (is("--capture")) {
      capture_dir = need("DIR");
    } else if (is("--replay-capture")) {
      replay_path = need("F");
    } else if (is("--min-ingest") && parse_double(need("R"), d)) {
      min_ingest = d;
    } else if (is("--max-p99-ms") && parse_double(need("MS"), d)) {
      max_p99_ms = d;
    } else {
      std::fprintf(stderr, "bad argument: %s\n", argv[i]);
      usage(argv[0]);
      return 2;
    }
  }

  if (!replay_path.empty()) return run_replay(replay_path, json_path);

  RunNumbers numbers;
  const char* mode = "live";

  if (!capture_dir.empty()) {
    mode = "captured";
    std::error_code ec;
    std::filesystem::create_directories(capture_dir, ec);
    const std::string path = capture_dir + "/stream-seed-" +
                             std::to_string(spec.workload.seed) + ".icap";
    CaptureWriterOptions options;
    options.durability = CaptureDurability::kPerFrame;
    WireLogWriter writer(path, options);
    if (!writer.ok()) {
      std::fprintf(stderr, "cannot open capture %s: %s\n", path.c_str(),
                   writer.error().message().c_str());
      return 2;
    }
    const std::uint64_t t0 = stream_now_ns();
    const StreamRunReport report = run_stream_captured(spec, writer);
    numbers.wall_seconds =
        static_cast<double>(stream_now_ns() - t0) * 1e-9;
    writer.close();
    numbers.counters = report.counters;
    numbers.stats = report.stats;
    numbers.executed = report.result.outcome.schedule.size();
    numbers.skipped = report.result.outcome.skipped.size();
    std::printf("captured %llu action(s) -> %s\n",
                static_cast<unsigned long long>(report.counters.ingested),
                path.c_str());
  } else {
    const workload::Generated gen = workload::fages_workload(spec.workload);
    StreamOptions options;
    options.backend = spec.backend;
    options.commit_quiescence = spec.commit_quiescence;
    options.epoch_budget_us = budget_us;
    const std::size_t max_batch = spec.batch == 0 ? 4096 : spec.batch;

    // Pre-materialize the arrival order so the submit loop measures the
    // ring + daemon, not the workload generator.
    std::vector<std::pair<LogId, ActionPtr>> arrivals;
    {
      std::vector<std::size_t> next(gen.logs.size(), 0);
      std::size_t total = 0;
      for (const Log& log : gen.logs) total += log.size();
      arrivals.reserve(total);
      Rng rng(spec.arrival_seed);
      for (std::size_t taken = 0; taken < total; ++taken) {
        std::size_t pick_log = 0;
        switch (spec.arrival) {
          case StreamArrival::kFlatten:
            while (next[pick_log] >= gen.logs[pick_log].size()) ++pick_log;
            break;
          case StreamArrival::kRoundRobin:
            pick_log = taken % gen.logs.size();
            while (next[pick_log] >= gen.logs[pick_log].size()) {
              pick_log = (pick_log + 1) % gen.logs.size();
            }
            break;
          case StreamArrival::kShuffled: {
            std::uint64_t pick = rng.below(total - taken);
            for (pick_log = 0;; ++pick_log) {
              const std::size_t rem =
                  gen.logs[pick_log].size() - next[pick_log];
              if (pick < rem) break;
              pick -= rem;
            }
            break;
          }
        }
        arrivals.emplace_back(LogId(static_cast<std::uint32_t>(pick_log)),
                              gen.logs[pick_log].ptr(next[pick_log]++));
      }
    }

    StreamDaemon daemon(gen.initial, options, max_batch);
    const std::uint64_t t0 = stream_now_ns();
    for (auto& [log, action] : arrivals) {
      daemon.submit(log, std::move(action));
    }
    const StreamResult result = daemon.finish();
    numbers.wall_seconds = static_cast<double>(stream_now_ns() - t0) * 1e-9;
    numbers.counters = daemon.reconciler().counters();
    numbers.stats = daemon.reconciler().stats();
    numbers.p50_ms = daemon.reconciler().commit_latency().quantile_ms(0.50);
    numbers.p99_ms = daemon.reconciler().commit_latency().quantile_ms(0.99);
    numbers.executed = result.outcome.schedule.size();
    numbers.skipped = result.outcome.skipped.size();
  }

  if (numbers.wall_seconds > 0.0) {
    numbers.ingest_rate =
        static_cast<double>(numbers.counters.ingested) / numbers.wall_seconds;
  }

  std::printf(
      "%llu actions in %.3fs  (%.0f actions/sec)\n"
      "commit latency p50 %.3f ms, p99 %.3f ms\n"
      "epochs %llu (degraded %llu), fast appends %llu, full re-solves %llu\n"
      "committed %llu, violations %llu, max lag %llu, pairs %llu\n"
      "schedule: %zu executed, %zu skipped\n",
      static_cast<unsigned long long>(numbers.counters.ingested),
      numbers.wall_seconds, numbers.ingest_rate, numbers.p50_ms,
      numbers.p99_ms,
      static_cast<unsigned long long>(numbers.counters.epochs),
      static_cast<unsigned long long>(numbers.counters.degraded_epochs),
      static_cast<unsigned long long>(numbers.counters.fast_appends),
      static_cast<unsigned long long>(numbers.counters.full_resolves),
      static_cast<unsigned long long>(numbers.counters.committed),
      static_cast<unsigned long long>(numbers.counters.commit_violations),
      static_cast<unsigned long long>(numbers.counters.max_commit_lag),
      static_cast<unsigned long long>(
          numbers.stats.constraint_pairs_evaluated),
      numbers.executed, numbers.skipped);

  write_json_file(json_path, report_json(spec, numbers, mode));

  int status = 0;
  if (min_ingest > 0.0 && numbers.ingest_rate < min_ingest) {
    std::fprintf(stderr, "GATE MISSED: ingest %.0f < %.0f actions/sec\n",
                 numbers.ingest_rate, min_ingest);
    status = 1;
  }
  if (max_p99_ms > 0.0 && numbers.p99_ms > max_p99_ms) {
    std::fprintf(stderr, "GATE MISSED: p99 %.3f ms > %.3f ms\n",
                 numbers.p99_ms, max_p99_ms);
    status = 1;
  }
  return status;
}
