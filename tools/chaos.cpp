// chaos — run deterministic network-chaos scenarios against the gossip
// protocol and report convergence + invariant results.
//
// Examples:
//
//   # one seed, defaults (4 sites, light workload, perfect network)
//   chaos --seed 7
//
//   # a 500-seed sweep under loss, corruption, duplication, random
//   # partitions and crash/recovery; machine-readable output
//   chaos --seeds 500 --sites 6 --lose 0.05 --corrupt 0.05
//         --duplicate 0.05 --partition 0.05 --site-down 0.05
//         --json chaos.json
//
//   # a scheduled partition that isolates s0+s1 from s2+s3 until t=120,
//   # plus a crash/restart of s3
//   chaos --sites 4 --cut s0 s2 10 120 --cut s0 s3 10 120
//         --cut s1 s2 10 120 --cut s1 s3 10 120 --crash s3 30 80
//
//   # incident workflow: capture a sweep, replay one capture bit-exactly,
//   # bisect to event 500, diff two captures
//   chaos --seeds 100 --lose 0.05 --capture caps
//   chaos --replay-capture caps/seed-41.icap
//   chaos --replay-capture caps/seed-41.icap --replay-stop 500
//   chaos --audit-diff caps/seed-41.icap other/seed-41.icap
//
// Exit status is 0 iff every run converged with zero invariant
// violations (for replay/diff modes: iff the capture replayed faithfully /
// the captures are identical; 1 on divergence, 2 on unreadable input); a
// failing seed prints its spec so the identical event sequence can be
// replayed (same seed + flags => same trace CRC), and with --failures its
// capture is written out for offline replay.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "capture/audit_diff.hpp"
#include "capture/replay_engine.hpp"
#include "capture/wire_log_writer.hpp"
#include "simnet/chaos.hpp"

namespace {

using namespace icecube;

void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --seed N          first seed (default 1)\n"
      "  --seeds N         number of consecutive seeds to run (default 1)\n"
      "  --sites N         group size, >= 2 (default 4)\n"
      "  --actions N       workload actions per site (default 6)\n"
      "  --interval N      ticks between a site's gossip timers (default 4)\n"
      "  --budget N        step budget per run (default 50000)\n"
      "  --horizon N       sim-time when random faults stop (default 400)\n"
      "  --lose P          P(message lost)\n"
      "  --corrupt P       P(payload section corrupted)\n"
      "  --truncate P      P(payload section truncated)\n"
      "  --duplicate P     P(message duplicated)\n"
      "  --reorder P       P(message reordered past later traffic)\n"
      "  --delay-max N     max extra delivery delay in ticks\n"
      "  --partition P     P(random link cut per window)\n"
      "  --site-down P     P(random crash per crash window)\n"
      "  --cut A B AT HEAL cut link A-B at AT, heal at HEAL (repeatable)\n"
      "  --crash S AT RST  crash site S at AT, restart at RST (repeatable)\n"
      "  --no-deep-replay  skip per-commit history replay validation\n"
      "  --no-commit       disable the decentralised commitment layer\n"
      "  --drop-vote P     P(site withholds its commitment frame per slot)\n"
      "  --stale-vote P    P(site announces stale commitment knowledge)\n"
      "  --trace           print the full event trace of each run\n"
      "  --json PATH       write a JSON array of per-run reports\n"
      "  --failures DIR    write failing runs' reports + traces + captures\n"
      "                    into DIR\n"
      "  --capture DIR     write a binary capture log per run\n"
      "                    (DIR/seed-N.icap)\n"
      "  --capture-sync M  capture durability: none | interval | frame\n"
      "                    (default interval)\n"
      "  --capture-crash P P(a capture flush crashes mid-write)\n"
      "  --capture-short P P(a capture flush is silently cut short)\n"
      "  --capture-flip P  P(a capture flush has one byte flipped)\n"
      "  --replay-capture F  re-drive the run recorded in capture F and\n"
      "                    verify it frame-for-frame + trace-CRC\n"
      "  --replay-stop N   with --replay-capture: compare only the first\n"
      "                    N frames (incident bisection)\n"
      "  --replay-trace F  re-run the spec given by the other flags and\n"
      "                    compare its event trace against trace file F\n"
      "  --audit-diff A B  locate the first divergent frame of captures\n"
      "                    A and B\n",
      argv0);
}

bool parse_u64(const char* s, std::uint64_t& out) {
  char* end = nullptr;
  out = std::strtoull(s, &end, 10);
  return end != nullptr && *end == '\0' && end != s;
}

bool parse_size(const char* s, std::size_t& out) {
  std::uint64_t v = 0;
  if (!parse_u64(s, v)) return false;
  out = static_cast<std::size_t>(v);
  return true;
}

bool parse_prob(const char* s, double& out) {
  char* end = nullptr;
  out = std::strtod(s, &end);
  return end != nullptr && *end == '\0' && end != s && out >= 0.0 &&
         out <= 1.0;
}

void write_json_file(const std::string& path, const std::string& json) {
  if (path.empty()) return;
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write '%s'\n", path.c_str());
    return;
  }
  out << json << "\n";
}

/// One-line preview of a capture payload for terminal output.
std::string preview(const std::string& payload) {
  std::string out = payload.substr(0, 96);
  for (char& c : out) {
    if (c == '\n') c = ' ';
    if (static_cast<unsigned char>(c) < 0x20) c = '.';
  }
  if (payload.size() > out.size()) out += "...";
  return out;
}

/// --replay-capture: exit 0 faithful, 1 divergent/CRC mismatch, 2
/// unreadable capture.
int run_replay_capture(const std::string& path, std::size_t stop_after,
                       const std::string& json_path) {
  ReplayOptions options;
  options.stop_after = stop_after;
  const ReplayResult result = replay_capture_file(path, options);
  write_json_file(json_path, result.to_json());
  if (!result.error.ok()) {
    std::fprintf(stderr, "replay-capture: %s\n",
                 result.error.message().c_str());
    return 2;
  }
  if (result.capture_recovered) {
    std::printf(
        "capture was recovered from a torn write: %zu trailing byte(s) "
        "quarantined (%s)\n",
        result.quarantined_bytes, "replaying the intact prefix");
  }
  std::printf("replayed %zu/%zu recorded frame(s)", result.frames_compared,
              result.recorded_frames);
  if (result.crc_checked) {
    std::printf(", trace crc %08x %s", result.recorded_crc,
                result.crc_match ? "reproduced" : "NOT reproduced");
  } else {
    std::printf(", no summary frame (capture truncated before run end)");
  }
  std::printf("\n");
  if (result.divergence) {
    const ReplayDivergence& d = *result.divergence;
    std::printf("FIRST DIVERGENT FRAME: #%zu\n", d.frame);
    std::printf("  recorded: [%s @t%llu] %s\n",
                std::string(to_string(d.recorded.kind)).c_str(),
                static_cast<unsigned long long>(d.recorded.time),
                preview(d.recorded.payload).c_str());
    std::printf("  live:     [%s @t%llu] %s\n",
                std::string(to_string(d.live.kind)).c_str(),
                static_cast<unsigned long long>(d.live.time),
                preview(d.live.payload).c_str());
    return 1;
  }
  std::printf(result.faithful() ? "replay is bit-exact\n"
                                : "replay FAILED\n");
  return result.faithful() ? 0 : 1;
}

/// --audit-diff: exit 0 identical, 1 divergent, 2 unreadable.
int run_audit_diff(const std::string& a, const std::string& b,
                   const std::string& json_path) {
  const AuditDiff diff = audit_diff_files(a, b);
  write_json_file(json_path, diff.to_json());
  if (!diff.readable()) {
    if (!diff.a.readable()) {
      std::fprintf(stderr, "audit-diff: %s: %s\n", a.c_str(),
                   diff.a.error.message().c_str());
    }
    if (!diff.b.readable()) {
      std::fprintf(stderr, "audit-diff: %s: %s\n", b.c_str(),
                   diff.b.error.message().c_str());
    }
    return 2;
  }
  for (const auto* side : {&diff.a, &diff.b}) {
    if (side->quarantined_bytes > 0) {
      std::printf("%s: recovered, %zu byte(s) quarantined (%s)\n",
                  side == &diff.a ? a.c_str() : b.c_str(),
                  side->quarantined_bytes, side->error.message().c_str());
    }
  }
  if (diff.identical) {
    std::printf("captures identical: %zu frame(s)\n", diff.a.frames);
    return 0;
  }
  std::printf("first divergent frame: #%zu (a holds %zu, b holds %zu)\n",
              diff.first_divergent, diff.a.frames, diff.b.frames);
  std::printf("  a: [%s @t%llu] %s\n",
              std::string(to_string(diff.a_frame.kind)).c_str(),
              static_cast<unsigned long long>(diff.a_frame.time),
              preview(diff.a_frame.payload).c_str());
  std::printf("  b: [%s @t%llu] %s\n",
              std::string(to_string(diff.b_frame.kind)).c_str(),
              static_cast<unsigned long long>(diff.b_frame.time),
              preview(diff.b_frame.payload).c_str());
  return 1;
}

/// --replay-trace: re-run the spec the flags describe and compare its
/// event trace line-for-line against a .trace artifact. A missing,
/// unreadable or empty trace file is a structured error and exit 2 —
/// never a vacuous "empty run matches".
int run_replay_trace(ChaosSpec spec, const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "replay-trace: %s\n",
                 icecube::DecodeError{DecodeErrorKind::kEmptyInput, 0,
                                      "cannot read trace file '" + path + "'"}
                     .message()
                     .c_str());
    return 2;
  }
  std::vector<std::string> recorded;
  std::string line;
  while (std::getline(in, line)) {
    // Failure artifacts prepend violation lines to the trace; skip them.
    if (line.rfind("violation: ", 0) == 0) continue;
    recorded.push_back(line);
  }
  if (in.bad()) {
    std::fprintf(stderr, "replay-trace: %s\n",
                 icecube::DecodeError{DecodeErrorKind::kTruncated, 0,
                                      "error while reading '" + path + "'"}
                     .message()
                     .c_str());
    return 2;
  }
  if (recorded.empty()) {
    std::fprintf(
        stderr, "replay-trace: %s\n",
        icecube::DecodeError{DecodeErrorKind::kEmptyInput, 0,
                             "'" + path + "' holds no trace lines"}
            .message()
            .c_str());
    return 2;
  }

  spec.keep_trace = true;
  const ChaosReport report = run_chaos(spec);
  const std::size_t common = std::min(recorded.size(), report.trace.size());
  for (std::size_t i = 0; i < common; ++i) {
    if (recorded[i] != report.trace[i]) {
      std::printf("trace diverges at line %zu:\n  recorded: %s\n  live:     %s\n",
                  i + 1, recorded[i].c_str(), report.trace[i].c_str());
      return 1;
    }
  }
  if (recorded.size() != report.trace.size()) {
    std::printf("trace length mismatch: recorded %zu line(s), live %zu\n",
                recorded.size(), report.trace.size());
    return 1;
  }
  std::printf("trace matches: %zu line(s), crc %08x\n", recorded.size(),
              report.trace_crc);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ChaosSpec spec;
  std::size_t runs = 1;
  bool print_trace = false;
  std::string json_path;
  std::string failures_dir;
  std::string capture_dir;
  CaptureDurability capture_sync = CaptureDurability::kInterval;
  std::string replay_capture_path;
  std::size_t replay_stop = static_cast<std::size_t>(-1);
  std::string replay_trace_path;
  std::string audit_a;
  std::string audit_b;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need = [&](int count) {
      if (i + count >= argc) {
        std::fprintf(stderr, "%s needs %d argument(s)\n", arg.c_str(),
                     count);
        // Single-threaded CLI: exiting from the arg parser is safe.
        std::exit(2);  // NOLINT(concurrency-mt-unsafe)
      }
    };
    bool ok = true;
    if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (arg == "--seed") {
      need(1);
      ok = parse_u64(argv[++i], spec.seed);
    } else if (arg == "--seeds") {
      need(1);
      ok = parse_size(argv[++i], runs) && runs > 0;
    } else if (arg == "--sites") {
      need(1);
      ok = parse_size(argv[++i], spec.sites) && spec.sites >= 2;
    } else if (arg == "--actions") {
      need(1);
      ok = parse_size(argv[++i], spec.actions_per_site);
    } else if (arg == "--interval") {
      need(1);
      ok = parse_size(argv[++i], spec.gossip_interval);
    } else if (arg == "--budget") {
      need(1);
      ok = parse_size(argv[++i], spec.step_budget);
    } else if (arg == "--horizon") {
      need(1);
      ok = parse_size(argv[++i], spec.fault_horizon);
    } else if (arg == "--lose") {
      need(1);
      ok = parse_prob(argv[++i], spec.faults.lose);
    } else if (arg == "--corrupt") {
      need(1);
      ok = parse_prob(argv[++i], spec.faults.corrupt);
    } else if (arg == "--truncate") {
      need(1);
      ok = parse_prob(argv[++i], spec.faults.truncate);
    } else if (arg == "--duplicate") {
      need(1);
      ok = parse_prob(argv[++i], spec.faults.duplicate);
    } else if (arg == "--reorder") {
      need(1);
      ok = parse_prob(argv[++i], spec.faults.reorder);
    } else if (arg == "--delay-max") {
      need(1);
      ok = parse_size(argv[++i], spec.faults.delay_max);
    } else if (arg == "--partition") {
      need(1);
      ok = parse_prob(argv[++i], spec.faults.partition);
    } else if (arg == "--site-down") {
      need(1);
      ok = parse_prob(argv[++i], spec.faults.site_down);
    } else if (arg == "--cut") {
      need(4);
      ChaosPartition p;
      p.a = argv[++i];
      p.b = argv[++i];
      ok = parse_size(argv[++i], p.at) && parse_size(argv[++i], p.heal_at) &&
           p.at < p.heal_at;
      spec.partitions.push_back(std::move(p));
    } else if (arg == "--crash") {
      need(3);
      ChaosCrash c;
      c.site = argv[++i];
      ok = parse_size(argv[++i], c.at) &&
           parse_size(argv[++i], c.restart_at) && c.at < c.restart_at;
      spec.crashes.push_back(std::move(c));
    } else if (arg == "--no-deep-replay") {
      spec.deep_replay = false;
    } else if (arg == "--no-commit") {
      spec.commitment = false;
    } else if (arg == "--drop-vote") {
      need(1);
      ok = parse_prob(argv[++i], spec.faults.drop_vote);
    } else if (arg == "--stale-vote") {
      need(1);
      ok = parse_prob(argv[++i], spec.faults.stale_vote);
    } else if (arg == "--trace") {
      print_trace = true;
    } else if (arg == "--json") {
      need(1);
      json_path = argv[++i];
    } else if (arg == "--failures") {
      need(1);
      failures_dir = argv[++i];
    } else if (arg == "--capture") {
      need(1);
      capture_dir = argv[++i];
    } else if (arg == "--capture-sync") {
      need(1);
      const std::string mode = argv[++i];
      if (mode == "none") {
        capture_sync = CaptureDurability::kNone;
      } else if (mode == "interval") {
        capture_sync = CaptureDurability::kInterval;
      } else if (mode == "frame") {
        capture_sync = CaptureDurability::kPerFrame;
      } else {
        ok = false;
      }
    } else if (arg == "--capture-crash") {
      need(1);
      ok = parse_prob(argv[++i], spec.faults.capture_crash);
    } else if (arg == "--capture-short") {
      need(1);
      ok = parse_prob(argv[++i], spec.faults.capture_short);
    } else if (arg == "--capture-flip") {
      need(1);
      ok = parse_prob(argv[++i], spec.faults.capture_flip);
    } else if (arg == "--replay-capture") {
      need(1);
      replay_capture_path = argv[++i];
    } else if (arg == "--replay-stop") {
      need(1);
      ok = parse_size(argv[++i], replay_stop);
    } else if (arg == "--replay-trace") {
      need(1);
      replay_trace_path = argv[++i];
    } else if (arg == "--audit-diff") {
      need(2);
      audit_a = argv[++i];
      audit_b = argv[++i];
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      usage(argv[0]);
      return 2;
    }
    if (!ok) {
      std::fprintf(stderr, "bad value for %s\n", arg.c_str());
      return 2;
    }
  }
  // Replay / audit modes run instead of a sweep.
  if (!replay_capture_path.empty()) {
    return run_replay_capture(replay_capture_path, replay_stop, json_path);
  }
  if (!audit_a.empty()) {
    return run_audit_diff(audit_a, audit_b, json_path);
  }
  if (!replay_trace_path.empty()) {
    return run_replay_trace(spec, replay_trace_path);
  }

  spec.keep_trace = print_trace || !failures_dir.empty();

  for (const std::string& dir : {capture_dir, failures_dir}) {
    if (dir.empty()) continue;
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
      std::fprintf(stderr, "cannot create directory '%s': %s\n", dir.c_str(),
                   ec.message().c_str());
      return 2;
    }
  }

  std::vector<std::string> json_reports;
  std::size_t failures = 0;
  const std::uint64_t first_seed = spec.seed;

  std::printf("%8s %6s %6s %10s %8s %6s %6s %9s %7s %10s %6s\n", "seed",
              "sites", "steps", "converged", "epoch", "merges", "xfers",
              "quarant.", "stable", "trace", "viol");
  for (std::size_t r = 0; r < runs; ++r) {
    spec.seed = first_seed + r;

    // Capture plumbing: with --capture the run streams straight into a
    // durable wire log (through the capture-write fault points, if those
    // knobs are set); with only --failures it records in memory so a
    // violating run can still dump a replayable capture.
    const std::string capture_name =
        "seed-" + std::to_string(spec.seed) + ".icap";
    std::unique_ptr<WireLogWriter> writer;
    std::unique_ptr<FaultPlan> capture_faults;
    MemoryCaptureSink memory;
    ChaosReport report;
    if (!capture_dir.empty()) {
      CaptureWriterOptions options;
      options.durability = capture_sync;
      if (spec.faults.capture_crash > 0 || spec.faults.capture_short > 0 ||
          spec.faults.capture_flip > 0) {
        capture_faults = std::make_unique<FaultPlan>(spec.seed, spec.faults);
        options.faults = capture_faults.get();
      }
      writer = std::make_unique<WireLogWriter>(
          capture_dir + "/" + capture_name, options);
      if (!writer->error().ok()) {
        std::fprintf(stderr, "capture: %s\n",
                     writer->error().message().c_str());
        return 2;
      }
      report = run_chaos_captured(spec, *writer);
      writer->close();
    } else if (!failures_dir.empty()) {
      report = run_chaos_captured(spec, memory);
    } else {
      report = run_chaos(spec);
    }
    std::printf(
        "%8llu %6zu %6zu %10s %8llu %6zu %6zu %9zu %7zu   %08x %6zu\n",
        static_cast<unsigned long long>(report.seed), report.sites,
        report.steps,
        report.converged
            ? ("t=" + std::to_string(report.converged_at)).c_str()
            : "NO",
        static_cast<unsigned long long>(report.max_epoch),
        report.totals.merges, report.totals.transfers,
        report.totals.quarantines + report.commit_totals.quarantines,
        report.stable_actions, report.trace_crc, report.violations.size());
    for (const Violation& v : report.violations) {
      std::printf("    violation: %s\n", v.message().c_str());
    }
    if (print_trace) {
      for (const std::string& line : report.trace) {
        std::printf("    %s\n", line.c_str());
      }
    }
    if (!report.ok()) {
      ++failures;
      std::printf("    replay: --seed %llu (plus the flags of this run)\n",
                  static_cast<unsigned long long>(report.seed));
      if (!failures_dir.empty()) {
        // One report + trace + replayable capture per failing seed, for
        // CI artifacts.
        const std::string base = failures_dir + "/seed-" +
                                 std::to_string(report.seed);
        std::ofstream rep(base + ".json");
        if (rep) rep << report.to_json() << "\n";
        std::ofstream trc(base + ".trace");
        if (trc) {
          for (const Violation& v : report.violations) {
            trc << "violation: " << v.message() << "\n";
          }
          for (const std::string& line : report.trace) trc << line << "\n";
        }
        if (!rep || !trc) {
          std::fprintf(stderr, "cannot write failure artifacts under '%s'\n",
                       failures_dir.c_str());
        }
        if (capture_dir.empty()) {
          // Not already on disk: dump the in-memory capture next to the
          // report so the violation replays offline.
          WireLogWriter dump(base + ".icap");
          for (const CaptureRecord& record : memory.records()) {
            dump.record(record);
          }
          dump.close();
          if (!dump.error().ok()) {
            std::fprintf(stderr, "cannot write capture '%s': %s\n",
                         (base + ".icap").c_str(),
                         dump.error().message().c_str());
          } else {
            std::printf("    capture: %s.icap (chaos --replay-capture)\n",
                        base.c_str());
          }
        } else {
          std::printf("    capture: %s/%s (chaos --replay-capture)\n",
                      capture_dir.c_str(), capture_name.c_str());
        }
      }
    }
    json_reports.push_back(report.to_json());
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write '%s'\n", json_path.c_str());
      return 2;
    }
    out << "[\n";
    for (std::size_t i = 0; i < json_reports.size(); ++i) {
      out << "  " << json_reports[i]
          << (i + 1 < json_reports.size() ? "," : "") << "\n";
    }
    out << "]\n";
  }

  std::printf("\n%zu/%zu runs converged with zero violations\n",
              runs - failures, runs);
  return failures == 0 ? 0 : 1;
}
