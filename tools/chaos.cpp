// chaos — run deterministic network-chaos scenarios against the gossip
// protocol and report convergence + invariant results.
//
// Examples:
//
//   # one seed, defaults (4 sites, light workload, perfect network)
//   chaos --seed 7
//
//   # a 500-seed sweep under loss, corruption, duplication, random
//   # partitions and crash/recovery; machine-readable output
//   chaos --seeds 500 --sites 6 --lose 0.05 --corrupt 0.05
//         --duplicate 0.05 --partition 0.05 --site-down 0.05
//         --json chaos.json
//
//   # a scheduled partition that isolates s0+s1 from s2+s3 until t=120,
//   # plus a crash/restart of s3
//   chaos --sites 4 --cut s0 s2 10 120 --cut s0 s3 10 120
//         --cut s1 s2 10 120 --cut s1 s3 10 120 --crash s3 30 80
//
// Exit status is 0 iff every run converged with zero invariant
// violations; a failing seed prints its spec so the identical event
// sequence can be replayed (same seed + flags => same trace CRC).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "simnet/chaos.hpp"

namespace {

using namespace icecube;

void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --seed N          first seed (default 1)\n"
      "  --seeds N         number of consecutive seeds to run (default 1)\n"
      "  --sites N         group size, >= 2 (default 4)\n"
      "  --actions N       workload actions per site (default 6)\n"
      "  --interval N      ticks between a site's gossip timers (default 4)\n"
      "  --budget N        step budget per run (default 50000)\n"
      "  --horizon N       sim-time when random faults stop (default 400)\n"
      "  --lose P          P(message lost)\n"
      "  --corrupt P       P(payload section corrupted)\n"
      "  --truncate P      P(payload section truncated)\n"
      "  --duplicate P     P(message duplicated)\n"
      "  --reorder P       P(message reordered past later traffic)\n"
      "  --delay-max N     max extra delivery delay in ticks\n"
      "  --partition P     P(random link cut per window)\n"
      "  --site-down P     P(random crash per crash window)\n"
      "  --cut A B AT HEAL cut link A-B at AT, heal at HEAL (repeatable)\n"
      "  --crash S AT RST  crash site S at AT, restart at RST (repeatable)\n"
      "  --no-deep-replay  skip per-commit history replay validation\n"
      "  --no-commit       disable the decentralised commitment layer\n"
      "  --drop-vote P     P(site withholds its commitment frame per slot)\n"
      "  --stale-vote P    P(site announces stale commitment knowledge)\n"
      "  --trace           print the full event trace of each run\n"
      "  --json PATH       write a JSON array of per-run reports\n"
      "  --failures DIR    write failing runs' reports + traces into DIR\n",
      argv0);
}

bool parse_u64(const char* s, std::uint64_t& out) {
  char* end = nullptr;
  out = std::strtoull(s, &end, 10);
  return end != nullptr && *end == '\0' && end != s;
}

bool parse_size(const char* s, std::size_t& out) {
  std::uint64_t v = 0;
  if (!parse_u64(s, v)) return false;
  out = static_cast<std::size_t>(v);
  return true;
}

bool parse_prob(const char* s, double& out) {
  char* end = nullptr;
  out = std::strtod(s, &end);
  return end != nullptr && *end == '\0' && end != s && out >= 0.0 &&
         out <= 1.0;
}

}  // namespace

int main(int argc, char** argv) {
  ChaosSpec spec;
  std::size_t runs = 1;
  bool print_trace = false;
  std::string json_path;
  std::string failures_dir;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need = [&](int count) {
      if (i + count >= argc) {
        std::fprintf(stderr, "%s needs %d argument(s)\n", arg.c_str(),
                     count);
        std::exit(2);
      }
    };
    bool ok = true;
    if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (arg == "--seed") {
      need(1);
      ok = parse_u64(argv[++i], spec.seed);
    } else if (arg == "--seeds") {
      need(1);
      ok = parse_size(argv[++i], runs) && runs > 0;
    } else if (arg == "--sites") {
      need(1);
      ok = parse_size(argv[++i], spec.sites) && spec.sites >= 2;
    } else if (arg == "--actions") {
      need(1);
      ok = parse_size(argv[++i], spec.actions_per_site);
    } else if (arg == "--interval") {
      need(1);
      ok = parse_size(argv[++i], spec.gossip_interval);
    } else if (arg == "--budget") {
      need(1);
      ok = parse_size(argv[++i], spec.step_budget);
    } else if (arg == "--horizon") {
      need(1);
      ok = parse_size(argv[++i], spec.fault_horizon);
    } else if (arg == "--lose") {
      need(1);
      ok = parse_prob(argv[++i], spec.faults.lose);
    } else if (arg == "--corrupt") {
      need(1);
      ok = parse_prob(argv[++i], spec.faults.corrupt);
    } else if (arg == "--truncate") {
      need(1);
      ok = parse_prob(argv[++i], spec.faults.truncate);
    } else if (arg == "--duplicate") {
      need(1);
      ok = parse_prob(argv[++i], spec.faults.duplicate);
    } else if (arg == "--reorder") {
      need(1);
      ok = parse_prob(argv[++i], spec.faults.reorder);
    } else if (arg == "--delay-max") {
      need(1);
      ok = parse_size(argv[++i], spec.faults.delay_max);
    } else if (arg == "--partition") {
      need(1);
      ok = parse_prob(argv[++i], spec.faults.partition);
    } else if (arg == "--site-down") {
      need(1);
      ok = parse_prob(argv[++i], spec.faults.site_down);
    } else if (arg == "--cut") {
      need(4);
      ChaosPartition p;
      p.a = argv[++i];
      p.b = argv[++i];
      ok = parse_size(argv[++i], p.at) && parse_size(argv[++i], p.heal_at) &&
           p.at < p.heal_at;
      spec.partitions.push_back(std::move(p));
    } else if (arg == "--crash") {
      need(3);
      ChaosCrash c;
      c.site = argv[++i];
      ok = parse_size(argv[++i], c.at) &&
           parse_size(argv[++i], c.restart_at) && c.at < c.restart_at;
      spec.crashes.push_back(std::move(c));
    } else if (arg == "--no-deep-replay") {
      spec.deep_replay = false;
    } else if (arg == "--no-commit") {
      spec.commitment = false;
    } else if (arg == "--drop-vote") {
      need(1);
      ok = parse_prob(argv[++i], spec.faults.drop_vote);
    } else if (arg == "--stale-vote") {
      need(1);
      ok = parse_prob(argv[++i], spec.faults.stale_vote);
    } else if (arg == "--trace") {
      print_trace = true;
    } else if (arg == "--json") {
      need(1);
      json_path = argv[++i];
    } else if (arg == "--failures") {
      need(1);
      failures_dir = argv[++i];
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      usage(argv[0]);
      return 2;
    }
    if (!ok) {
      std::fprintf(stderr, "bad value for %s\n", arg.c_str());
      return 2;
    }
  }
  spec.keep_trace = print_trace || !failures_dir.empty();

  std::vector<std::string> json_reports;
  std::size_t failures = 0;
  const std::uint64_t first_seed = spec.seed;

  std::printf("%8s %6s %6s %10s %8s %6s %6s %9s %7s %10s %6s\n", "seed",
              "sites", "steps", "converged", "epoch", "merges", "xfers",
              "quarant.", "stable", "trace", "viol");
  for (std::size_t r = 0; r < runs; ++r) {
    spec.seed = first_seed + r;
    const ChaosReport report = run_chaos(spec);
    std::printf(
        "%8llu %6zu %6zu %10s %8llu %6zu %6zu %9zu %7zu   %08x %6zu\n",
        static_cast<unsigned long long>(report.seed), report.sites,
        report.steps,
        report.converged
            ? ("t=" + std::to_string(report.converged_at)).c_str()
            : "NO",
        static_cast<unsigned long long>(report.max_epoch),
        report.totals.merges, report.totals.transfers,
        report.totals.quarantines + report.commit_totals.quarantines,
        report.stable_actions, report.trace_crc, report.violations.size());
    for (const Violation& v : report.violations) {
      std::printf("    violation: %s\n", v.message().c_str());
    }
    if (print_trace) {
      for (const std::string& line : report.trace) {
        std::printf("    %s\n", line.c_str());
      }
    }
    if (!report.ok()) {
      ++failures;
      std::printf("    replay: --seed %llu (plus the flags of this run)\n",
                  static_cast<unsigned long long>(report.seed));
      if (!failures_dir.empty()) {
        // One report + one trace file per failing seed, for CI artifacts.
        const std::string base = failures_dir + "/seed-" +
                                 std::to_string(report.seed);
        std::ofstream rep(base + ".json");
        if (rep) rep << report.to_json() << "\n";
        std::ofstream trc(base + ".trace");
        if (trc) {
          for (const Violation& v : report.violations) {
            trc << "violation: " << v.message() << "\n";
          }
          for (const std::string& line : report.trace) trc << line << "\n";
        }
        if (!rep || !trc) {
          std::fprintf(stderr, "cannot write failure artifacts under '%s'\n",
                       failures_dir.c_str());
        }
      }
    }
    json_reports.push_back(report.to_json());
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write '%s'\n", json_path.c_str());
      return 2;
    }
    out << "[\n";
    for (std::size_t i = 0; i < json_reports.size(); ++i) {
      out << "  " << json_reports[i]
          << (i + 1 < json_reports.size() ? "," : "") << "\n";
    }
    out << "]\n";
  }

  std::printf("\n%zu/%zu runs converged with zero violations\n",
              runs - failures, runs);
  return failures == 0 ? 0 : 1;
}
