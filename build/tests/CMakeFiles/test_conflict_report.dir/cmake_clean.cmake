file(REMOVE_RECURSE
  "CMakeFiles/test_conflict_report.dir/conflict_report_test.cpp.o"
  "CMakeFiles/test_conflict_report.dir/conflict_report_test.cpp.o.d"
  "test_conflict_report"
  "test_conflict_report.pdb"
  "test_conflict_report[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_conflict_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
