file(REMOVE_RECURSE
  "CMakeFiles/test_logclean.dir/logclean_test.cpp.o"
  "CMakeFiles/test_logclean.dir/logclean_test.cpp.o.d"
  "test_logclean"
  "test_logclean.pdb"
  "test_logclean[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_logclean.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
