# Empty dependencies file for test_logclean.
# This may be replaced when dependencies are built.
