file(REMOVE_RECURSE
  "CMakeFiles/test_jigsaw_sweep.dir/jigsaw_sweep_test.cpp.o"
  "CMakeFiles/test_jigsaw_sweep.dir/jigsaw_sweep_test.cpp.o.d"
  "test_jigsaw_sweep"
  "test_jigsaw_sweep.pdb"
  "test_jigsaw_sweep[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_jigsaw_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
