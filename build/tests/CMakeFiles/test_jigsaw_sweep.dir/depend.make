# Empty dependencies file for test_jigsaw_sweep.
# This may be replaced when dependencies are built.
