# Empty dependencies file for test_jigsaw.
# This may be replaced when dependencies are built.
