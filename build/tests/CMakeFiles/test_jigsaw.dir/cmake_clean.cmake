file(REMOVE_RECURSE
  "CMakeFiles/test_jigsaw.dir/jigsaw_test.cpp.o"
  "CMakeFiles/test_jigsaw.dir/jigsaw_test.cpp.o.d"
  "test_jigsaw"
  "test_jigsaw.pdb"
  "test_jigsaw[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_jigsaw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
