# Empty compiler generated dependencies file for test_sysadmin.
# This may be replaced when dependencies are built.
