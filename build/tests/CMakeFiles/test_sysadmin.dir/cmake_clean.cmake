file(REMOVE_RECURSE
  "CMakeFiles/test_sysadmin.dir/sysadmin_test.cpp.o"
  "CMakeFiles/test_sysadmin.dir/sysadmin_test.cpp.o.d"
  "test_sysadmin"
  "test_sysadmin.pdb"
  "test_sysadmin[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sysadmin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
