# Empty dependencies file for test_universe_codec.
# This may be replaced when dependencies are built.
