file(REMOVE_RECURSE
  "CMakeFiles/test_universe_codec.dir/universe_codec_test.cpp.o"
  "CMakeFiles/test_universe_codec.dir/universe_codec_test.cpp.o.d"
  "test_universe_codec"
  "test_universe_codec.pdb"
  "test_universe_codec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_universe_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
