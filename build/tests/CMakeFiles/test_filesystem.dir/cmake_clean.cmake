file(REMOVE_RECURSE
  "CMakeFiles/test_filesystem.dir/filesystem_test.cpp.o"
  "CMakeFiles/test_filesystem.dir/filesystem_test.cpp.o.d"
  "test_filesystem"
  "test_filesystem.pdb"
  "test_filesystem[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_filesystem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
