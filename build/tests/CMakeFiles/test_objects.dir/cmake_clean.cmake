file(REMOVE_RECURSE
  "CMakeFiles/test_objects.dir/objects_test.cpp.o"
  "CMakeFiles/test_objects.dir/objects_test.cpp.o.d"
  "test_objects"
  "test_objects.pdb"
  "test_objects[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_objects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
