
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/policies_test.cpp" "tests/CMakeFiles/test_policies.dir/policies_test.cpp.o" "gcc" "tests/CMakeFiles/test_policies.dir/policies_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/icecube_core.dir/DependInfo.cmake"
  "/root/repo/build/src/objects/CMakeFiles/icecube_objects.dir/DependInfo.cmake"
  "/root/repo/build/src/jigsaw/CMakeFiles/icecube_jigsaw.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/icecube_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/replica/CMakeFiles/icecube_replica.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/icecube_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/serialize/CMakeFiles/icecube_serialize.dir/DependInfo.cmake"
  "/root/repo/build/src/cli/CMakeFiles/icecube_cli.dir/DependInfo.cmake"
  "/root/repo/build/src/logclean/CMakeFiles/icecube_logclean.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
