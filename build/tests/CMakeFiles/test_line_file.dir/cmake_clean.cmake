file(REMOVE_RECURSE
  "CMakeFiles/test_line_file.dir/line_file_test.cpp.o"
  "CMakeFiles/test_line_file.dir/line_file_test.cpp.o.d"
  "test_line_file"
  "test_line_file.pdb"
  "test_line_file[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_line_file.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
