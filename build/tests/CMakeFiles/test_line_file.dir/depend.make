# Empty dependencies file for test_line_file.
# This may be replaced when dependencies are built.
