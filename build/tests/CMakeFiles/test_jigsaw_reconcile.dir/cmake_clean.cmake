file(REMOVE_RECURSE
  "CMakeFiles/test_jigsaw_reconcile.dir/jigsaw_reconcile_test.cpp.o"
  "CMakeFiles/test_jigsaw_reconcile.dir/jigsaw_reconcile_test.cpp.o.d"
  "test_jigsaw_reconcile"
  "test_jigsaw_reconcile.pdb"
  "test_jigsaw_reconcile[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_jigsaw_reconcile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
