# Empty dependencies file for test_jigsaw_reconcile.
# This may be replaced when dependencies are built.
