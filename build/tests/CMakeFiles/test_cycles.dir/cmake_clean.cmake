file(REMOVE_RECURSE
  "CMakeFiles/test_cycles.dir/cycles_test.cpp.o"
  "CMakeFiles/test_cycles.dir/cycles_test.cpp.o.d"
  "test_cycles"
  "test_cycles.pdb"
  "test_cycles[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cycles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
