# Empty compiler generated dependencies file for test_reconciler.
# This may be replaced when dependencies are built.
