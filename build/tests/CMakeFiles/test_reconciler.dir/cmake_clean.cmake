file(REMOVE_RECURSE
  "CMakeFiles/test_reconciler.dir/reconciler_test.cpp.o"
  "CMakeFiles/test_reconciler.dir/reconciler_test.cpp.o.d"
  "test_reconciler"
  "test_reconciler.pdb"
  "test_reconciler[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reconciler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
