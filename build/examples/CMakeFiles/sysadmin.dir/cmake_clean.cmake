file(REMOVE_RECURSE
  "CMakeFiles/sysadmin.dir/sysadmin.cpp.o"
  "CMakeFiles/sysadmin.dir/sysadmin.cpp.o.d"
  "sysadmin"
  "sysadmin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sysadmin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
