# Empty compiler generated dependencies file for sysadmin.
# This may be replaced when dependencies are built.
