# Empty compiler generated dependencies file for collab_editor.
# This may be replaced when dependencies are built.
