# Empty dependencies file for interactive_jigsaw.
# This may be replaced when dependencies are built.
