file(REMOVE_RECURSE
  "CMakeFiles/interactive_jigsaw.dir/interactive_jigsaw.cpp.o"
  "CMakeFiles/interactive_jigsaw.dir/interactive_jigsaw.cpp.o.d"
  "interactive_jigsaw"
  "interactive_jigsaw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interactive_jigsaw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
