file(REMOVE_RECURSE
  "CMakeFiles/jigsaw_demo.dir/jigsaw_demo.cpp.o"
  "CMakeFiles/jigsaw_demo.dir/jigsaw_demo.cpp.o.d"
  "jigsaw_demo"
  "jigsaw_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jigsaw_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
