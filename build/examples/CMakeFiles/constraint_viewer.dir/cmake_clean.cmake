file(REMOVE_RECURSE
  "CMakeFiles/constraint_viewer.dir/constraint_viewer.cpp.o"
  "CMakeFiles/constraint_viewer.dir/constraint_viewer.cpp.o.d"
  "constraint_viewer"
  "constraint_viewer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/constraint_viewer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
