
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/constraint_viewer.cpp" "examples/CMakeFiles/constraint_viewer.dir/constraint_viewer.cpp.o" "gcc" "examples/CMakeFiles/constraint_viewer.dir/constraint_viewer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/icecube_core.dir/DependInfo.cmake"
  "/root/repo/build/src/objects/CMakeFiles/icecube_objects.dir/DependInfo.cmake"
  "/root/repo/build/src/jigsaw/CMakeFiles/icecube_jigsaw.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/icecube_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/replica/CMakeFiles/icecube_replica.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/icecube_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/logclean/CMakeFiles/icecube_logclean.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
