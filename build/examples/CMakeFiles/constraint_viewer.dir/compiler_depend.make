# Empty compiler generated dependencies file for constraint_viewer.
# This may be replaced when dependencies are built.
