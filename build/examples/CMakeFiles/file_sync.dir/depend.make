# Empty dependencies file for file_sync.
# This may be replaced when dependencies are built.
