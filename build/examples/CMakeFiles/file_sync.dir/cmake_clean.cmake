file(REMOVE_RECURSE
  "CMakeFiles/file_sync.dir/file_sync.cpp.o"
  "CMakeFiles/file_sync.dir/file_sync.cpp.o.d"
  "file_sync"
  "file_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/file_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
