file(REMOVE_RECURSE
  "CMakeFiles/multisite.dir/multisite.cpp.o"
  "CMakeFiles/multisite.dir/multisite.cpp.o.d"
  "multisite"
  "multisite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multisite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
