# Empty compiler generated dependencies file for multisite.
# This may be replaced when dependencies are built.
