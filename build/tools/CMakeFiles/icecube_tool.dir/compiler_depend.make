# Empty compiler generated dependencies file for icecube_tool.
# This may be replaced when dependencies are built.
