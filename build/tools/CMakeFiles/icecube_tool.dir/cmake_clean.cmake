file(REMOVE_RECURSE
  "CMakeFiles/icecube_tool.dir/icecube_tool.cpp.o"
  "CMakeFiles/icecube_tool.dir/icecube_tool.cpp.o.d"
  "icecube_tool"
  "icecube_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icecube_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
