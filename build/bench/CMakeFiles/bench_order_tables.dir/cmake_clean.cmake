file(REMOVE_RECURSE
  "CMakeFiles/bench_order_tables.dir/bench_order_tables.cpp.o"
  "CMakeFiles/bench_order_tables.dir/bench_order_tables.cpp.o.d"
  "bench_order_tables"
  "bench_order_tables.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_order_tables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
