# Empty compiler generated dependencies file for bench_order_tables.
# This may be replaced when dependencies are built.
