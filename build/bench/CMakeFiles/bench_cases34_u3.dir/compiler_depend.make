# Empty compiler generated dependencies file for bench_cases34_u3.
# This may be replaced when dependencies are built.
