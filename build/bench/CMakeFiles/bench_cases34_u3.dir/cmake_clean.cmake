file(REMOVE_RECURSE
  "CMakeFiles/bench_cases34_u3.dir/bench_cases34_u3.cpp.o"
  "CMakeFiles/bench_cases34_u3.dir/bench_cases34_u3.cpp.o.d"
  "bench_cases34_u3"
  "bench_cases34_u3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cases34_u3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
