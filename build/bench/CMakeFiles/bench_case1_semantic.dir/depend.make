# Empty dependencies file for bench_case1_semantic.
# This may be replaced when dependencies are built.
