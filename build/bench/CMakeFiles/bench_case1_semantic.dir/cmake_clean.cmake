file(REMOVE_RECURSE
  "CMakeFiles/bench_case1_semantic.dir/bench_case1_semantic.cpp.o"
  "CMakeFiles/bench_case1_semantic.dir/bench_case1_semantic.cpp.o.d"
  "bench_case1_semantic"
  "bench_case1_semantic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_case1_semantic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
