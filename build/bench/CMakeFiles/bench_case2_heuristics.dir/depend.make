# Empty dependencies file for bench_case2_heuristics.
# This may be replaced when dependencies are built.
