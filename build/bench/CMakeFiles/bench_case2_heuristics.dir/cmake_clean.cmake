file(REMOVE_RECURSE
  "CMakeFiles/bench_case2_heuristics.dir/bench_case2_heuristics.cpp.o"
  "CMakeFiles/bench_case2_heuristics.dir/bench_case2_heuristics.cpp.o.d"
  "bench_case2_heuristics"
  "bench_case2_heuristics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_case2_heuristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
