
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/objects/calendar.cpp" "src/objects/CMakeFiles/icecube_objects.dir/calendar.cpp.o" "gcc" "src/objects/CMakeFiles/icecube_objects.dir/calendar.cpp.o.d"
  "/root/repo/src/objects/counter.cpp" "src/objects/CMakeFiles/icecube_objects.dir/counter.cpp.o" "gcc" "src/objects/CMakeFiles/icecube_objects.dir/counter.cpp.o.d"
  "/root/repo/src/objects/file_system.cpp" "src/objects/CMakeFiles/icecube_objects.dir/file_system.cpp.o" "gcc" "src/objects/CMakeFiles/icecube_objects.dir/file_system.cpp.o.d"
  "/root/repo/src/objects/line_file.cpp" "src/objects/CMakeFiles/icecube_objects.dir/line_file.cpp.o" "gcc" "src/objects/CMakeFiles/icecube_objects.dir/line_file.cpp.o.d"
  "/root/repo/src/objects/rw_register.cpp" "src/objects/CMakeFiles/icecube_objects.dir/rw_register.cpp.o" "gcc" "src/objects/CMakeFiles/icecube_objects.dir/rw_register.cpp.o.d"
  "/root/repo/src/objects/sysadmin.cpp" "src/objects/CMakeFiles/icecube_objects.dir/sysadmin.cpp.o" "gcc" "src/objects/CMakeFiles/icecube_objects.dir/sysadmin.cpp.o.d"
  "/root/repo/src/objects/text.cpp" "src/objects/CMakeFiles/icecube_objects.dir/text.cpp.o" "gcc" "src/objects/CMakeFiles/icecube_objects.dir/text.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/icecube_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
