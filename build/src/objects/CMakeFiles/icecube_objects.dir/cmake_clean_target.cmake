file(REMOVE_RECURSE
  "libicecube_objects.a"
)
