# Empty compiler generated dependencies file for icecube_objects.
# This may be replaced when dependencies are built.
