file(REMOVE_RECURSE
  "CMakeFiles/icecube_objects.dir/calendar.cpp.o"
  "CMakeFiles/icecube_objects.dir/calendar.cpp.o.d"
  "CMakeFiles/icecube_objects.dir/counter.cpp.o"
  "CMakeFiles/icecube_objects.dir/counter.cpp.o.d"
  "CMakeFiles/icecube_objects.dir/file_system.cpp.o"
  "CMakeFiles/icecube_objects.dir/file_system.cpp.o.d"
  "CMakeFiles/icecube_objects.dir/line_file.cpp.o"
  "CMakeFiles/icecube_objects.dir/line_file.cpp.o.d"
  "CMakeFiles/icecube_objects.dir/rw_register.cpp.o"
  "CMakeFiles/icecube_objects.dir/rw_register.cpp.o.d"
  "CMakeFiles/icecube_objects.dir/sysadmin.cpp.o"
  "CMakeFiles/icecube_objects.dir/sysadmin.cpp.o.d"
  "CMakeFiles/icecube_objects.dir/text.cpp.o"
  "CMakeFiles/icecube_objects.dir/text.cpp.o.d"
  "libicecube_objects.a"
  "libicecube_objects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icecube_objects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
