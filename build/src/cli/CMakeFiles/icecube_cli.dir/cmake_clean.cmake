file(REMOVE_RECURSE
  "CMakeFiles/icecube_cli.dir/cli.cpp.o"
  "CMakeFiles/icecube_cli.dir/cli.cpp.o.d"
  "libicecube_cli.a"
  "libicecube_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icecube_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
