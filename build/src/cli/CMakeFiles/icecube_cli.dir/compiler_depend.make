# Empty compiler generated dependencies file for icecube_cli.
# This may be replaced when dependencies are built.
