file(REMOVE_RECURSE
  "libicecube_cli.a"
)
