file(REMOVE_RECURSE
  "CMakeFiles/icecube_workload.dir/generators.cpp.o"
  "CMakeFiles/icecube_workload.dir/generators.cpp.o.d"
  "libicecube_workload.a"
  "libicecube_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icecube_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
