file(REMOVE_RECURSE
  "libicecube_workload.a"
)
