# Empty dependencies file for icecube_workload.
# This may be replaced when dependencies are built.
