
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/algebraic_sync.cpp" "src/baseline/CMakeFiles/icecube_baseline.dir/algebraic_sync.cpp.o" "gcc" "src/baseline/CMakeFiles/icecube_baseline.dir/algebraic_sync.cpp.o.d"
  "/root/repo/src/baseline/cvs_merge.cpp" "src/baseline/CMakeFiles/icecube_baseline.dir/cvs_merge.cpp.o" "gcc" "src/baseline/CMakeFiles/icecube_baseline.dir/cvs_merge.cpp.o.d"
  "/root/repo/src/baseline/greedy_insertion.cpp" "src/baseline/CMakeFiles/icecube_baseline.dir/greedy_insertion.cpp.o" "gcc" "src/baseline/CMakeFiles/icecube_baseline.dir/greedy_insertion.cpp.o.d"
  "/root/repo/src/baseline/temporal_merge.cpp" "src/baseline/CMakeFiles/icecube_baseline.dir/temporal_merge.cpp.o" "gcc" "src/baseline/CMakeFiles/icecube_baseline.dir/temporal_merge.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/icecube_core.dir/DependInfo.cmake"
  "/root/repo/build/src/objects/CMakeFiles/icecube_objects.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
