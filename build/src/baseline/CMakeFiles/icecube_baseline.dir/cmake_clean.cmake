file(REMOVE_RECURSE
  "CMakeFiles/icecube_baseline.dir/algebraic_sync.cpp.o"
  "CMakeFiles/icecube_baseline.dir/algebraic_sync.cpp.o.d"
  "CMakeFiles/icecube_baseline.dir/cvs_merge.cpp.o"
  "CMakeFiles/icecube_baseline.dir/cvs_merge.cpp.o.d"
  "CMakeFiles/icecube_baseline.dir/greedy_insertion.cpp.o"
  "CMakeFiles/icecube_baseline.dir/greedy_insertion.cpp.o.d"
  "CMakeFiles/icecube_baseline.dir/temporal_merge.cpp.o"
  "CMakeFiles/icecube_baseline.dir/temporal_merge.cpp.o.d"
  "libicecube_baseline.a"
  "libicecube_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icecube_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
