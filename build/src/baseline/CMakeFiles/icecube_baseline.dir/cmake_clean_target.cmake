file(REMOVE_RECURSE
  "libicecube_baseline.a"
)
