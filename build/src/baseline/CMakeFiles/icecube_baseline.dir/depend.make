# Empty dependencies file for icecube_baseline.
# This may be replaced when dependencies are built.
