file(REMOVE_RECURSE
  "CMakeFiles/icecube_core.dir/conflict_report.cpp.o"
  "CMakeFiles/icecube_core.dir/conflict_report.cpp.o.d"
  "CMakeFiles/icecube_core.dir/constraint_builder.cpp.o"
  "CMakeFiles/icecube_core.dir/constraint_builder.cpp.o.d"
  "CMakeFiles/icecube_core.dir/cutset.cpp.o"
  "CMakeFiles/icecube_core.dir/cutset.cpp.o.d"
  "CMakeFiles/icecube_core.dir/cycles.cpp.o"
  "CMakeFiles/icecube_core.dir/cycles.cpp.o.d"
  "CMakeFiles/icecube_core.dir/graphviz.cpp.o"
  "CMakeFiles/icecube_core.dir/graphviz.cpp.o.d"
  "CMakeFiles/icecube_core.dir/incremental.cpp.o"
  "CMakeFiles/icecube_core.dir/incremental.cpp.o.d"
  "CMakeFiles/icecube_core.dir/reconciler.cpp.o"
  "CMakeFiles/icecube_core.dir/reconciler.cpp.o.d"
  "CMakeFiles/icecube_core.dir/relations.cpp.o"
  "CMakeFiles/icecube_core.dir/relations.cpp.o.d"
  "CMakeFiles/icecube_core.dir/scheduler.cpp.o"
  "CMakeFiles/icecube_core.dir/scheduler.cpp.o.d"
  "CMakeFiles/icecube_core.dir/selection.cpp.o"
  "CMakeFiles/icecube_core.dir/selection.cpp.o.d"
  "CMakeFiles/icecube_core.dir/simulator.cpp.o"
  "CMakeFiles/icecube_core.dir/simulator.cpp.o.d"
  "libicecube_core.a"
  "libicecube_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icecube_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
