file(REMOVE_RECURSE
  "libicecube_core.a"
)
