# Empty compiler generated dependencies file for icecube_core.
# This may be replaced when dependencies are built.
