
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/conflict_report.cpp" "src/core/CMakeFiles/icecube_core.dir/conflict_report.cpp.o" "gcc" "src/core/CMakeFiles/icecube_core.dir/conflict_report.cpp.o.d"
  "/root/repo/src/core/constraint_builder.cpp" "src/core/CMakeFiles/icecube_core.dir/constraint_builder.cpp.o" "gcc" "src/core/CMakeFiles/icecube_core.dir/constraint_builder.cpp.o.d"
  "/root/repo/src/core/cutset.cpp" "src/core/CMakeFiles/icecube_core.dir/cutset.cpp.o" "gcc" "src/core/CMakeFiles/icecube_core.dir/cutset.cpp.o.d"
  "/root/repo/src/core/cycles.cpp" "src/core/CMakeFiles/icecube_core.dir/cycles.cpp.o" "gcc" "src/core/CMakeFiles/icecube_core.dir/cycles.cpp.o.d"
  "/root/repo/src/core/graphviz.cpp" "src/core/CMakeFiles/icecube_core.dir/graphviz.cpp.o" "gcc" "src/core/CMakeFiles/icecube_core.dir/graphviz.cpp.o.d"
  "/root/repo/src/core/incremental.cpp" "src/core/CMakeFiles/icecube_core.dir/incremental.cpp.o" "gcc" "src/core/CMakeFiles/icecube_core.dir/incremental.cpp.o.d"
  "/root/repo/src/core/reconciler.cpp" "src/core/CMakeFiles/icecube_core.dir/reconciler.cpp.o" "gcc" "src/core/CMakeFiles/icecube_core.dir/reconciler.cpp.o.d"
  "/root/repo/src/core/relations.cpp" "src/core/CMakeFiles/icecube_core.dir/relations.cpp.o" "gcc" "src/core/CMakeFiles/icecube_core.dir/relations.cpp.o.d"
  "/root/repo/src/core/scheduler.cpp" "src/core/CMakeFiles/icecube_core.dir/scheduler.cpp.o" "gcc" "src/core/CMakeFiles/icecube_core.dir/scheduler.cpp.o.d"
  "/root/repo/src/core/selection.cpp" "src/core/CMakeFiles/icecube_core.dir/selection.cpp.o" "gcc" "src/core/CMakeFiles/icecube_core.dir/selection.cpp.o.d"
  "/root/repo/src/core/simulator.cpp" "src/core/CMakeFiles/icecube_core.dir/simulator.cpp.o" "gcc" "src/core/CMakeFiles/icecube_core.dir/simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
