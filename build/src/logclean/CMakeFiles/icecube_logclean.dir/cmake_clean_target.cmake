file(REMOVE_RECURSE
  "libicecube_logclean.a"
)
