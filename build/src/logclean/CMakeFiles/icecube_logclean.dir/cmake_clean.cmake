file(REMOVE_RECURSE
  "CMakeFiles/icecube_logclean.dir/cleaner.cpp.o"
  "CMakeFiles/icecube_logclean.dir/cleaner.cpp.o.d"
  "libicecube_logclean.a"
  "libicecube_logclean.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icecube_logclean.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
