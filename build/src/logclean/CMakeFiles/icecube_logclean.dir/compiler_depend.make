# Empty compiler generated dependencies file for icecube_logclean.
# This may be replaced when dependencies are built.
