# Empty dependencies file for icecube_replica.
# This may be replaced when dependencies are built.
