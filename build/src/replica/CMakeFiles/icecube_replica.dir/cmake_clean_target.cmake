file(REMOVE_RECURSE
  "libicecube_replica.a"
)
