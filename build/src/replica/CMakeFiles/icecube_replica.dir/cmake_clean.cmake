file(REMOVE_RECURSE
  "CMakeFiles/icecube_replica.dir/sync.cpp.o"
  "CMakeFiles/icecube_replica.dir/sync.cpp.o.d"
  "libicecube_replica.a"
  "libicecube_replica.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icecube_replica.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
