file(REMOVE_RECURSE
  "libicecube_serialize.a"
)
