file(REMOVE_RECURSE
  "CMakeFiles/icecube_serialize.dir/log_codec.cpp.o"
  "CMakeFiles/icecube_serialize.dir/log_codec.cpp.o.d"
  "CMakeFiles/icecube_serialize.dir/universe_codec.cpp.o"
  "CMakeFiles/icecube_serialize.dir/universe_codec.cpp.o.d"
  "libicecube_serialize.a"
  "libicecube_serialize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icecube_serialize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
