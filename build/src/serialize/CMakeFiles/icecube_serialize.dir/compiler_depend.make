# Empty compiler generated dependencies file for icecube_serialize.
# This may be replaced when dependencies are built.
