# Empty compiler generated dependencies file for icecube_jigsaw.
# This may be replaced when dependencies are built.
