file(REMOVE_RECURSE
  "libicecube_jigsaw.a"
)
