
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/jigsaw/actions.cpp" "src/jigsaw/CMakeFiles/icecube_jigsaw.dir/actions.cpp.o" "gcc" "src/jigsaw/CMakeFiles/icecube_jigsaw.dir/actions.cpp.o.d"
  "/root/repo/src/jigsaw/board.cpp" "src/jigsaw/CMakeFiles/icecube_jigsaw.dir/board.cpp.o" "gcc" "src/jigsaw/CMakeFiles/icecube_jigsaw.dir/board.cpp.o.d"
  "/root/repo/src/jigsaw/experiment.cpp" "src/jigsaw/CMakeFiles/icecube_jigsaw.dir/experiment.cpp.o" "gcc" "src/jigsaw/CMakeFiles/icecube_jigsaw.dir/experiment.cpp.o.d"
  "/root/repo/src/jigsaw/order.cpp" "src/jigsaw/CMakeFiles/icecube_jigsaw.dir/order.cpp.o" "gcc" "src/jigsaw/CMakeFiles/icecube_jigsaw.dir/order.cpp.o.d"
  "/root/repo/src/jigsaw/scenario.cpp" "src/jigsaw/CMakeFiles/icecube_jigsaw.dir/scenario.cpp.o" "gcc" "src/jigsaw/CMakeFiles/icecube_jigsaw.dir/scenario.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/icecube_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
