file(REMOVE_RECURSE
  "CMakeFiles/icecube_jigsaw.dir/actions.cpp.o"
  "CMakeFiles/icecube_jigsaw.dir/actions.cpp.o.d"
  "CMakeFiles/icecube_jigsaw.dir/board.cpp.o"
  "CMakeFiles/icecube_jigsaw.dir/board.cpp.o.d"
  "CMakeFiles/icecube_jigsaw.dir/experiment.cpp.o"
  "CMakeFiles/icecube_jigsaw.dir/experiment.cpp.o.d"
  "CMakeFiles/icecube_jigsaw.dir/order.cpp.o"
  "CMakeFiles/icecube_jigsaw.dir/order.cpp.o.d"
  "CMakeFiles/icecube_jigsaw.dir/scenario.cpp.o"
  "CMakeFiles/icecube_jigsaw.dir/scenario.cpp.o.d"
  "libicecube_jigsaw.a"
  "libicecube_jigsaw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icecube_jigsaw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
