#include "mc/world.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <utility>

#include "objects/counter.hpp"
#include "serialize/commit_codec.hpp"
#include "simnet/chaos.hpp"
#include "util/rng.hpp"

namespace icecube::mc {

namespace {

/// The chaos harness's decision-stream mixer (simnet/chaos.cpp) — kept
/// byte-identical so an mc workload action equals the chaos one.
std::uint64_t mix(std::uint64_t seed, std::uint64_t salt, std::uint64_t a,
                  std::uint64_t b) {
  std::uint64_t s = seed ^ (salt * 0x9E3779B97F4A7C15ULL);
  s ^= (a + 1) * 0xBF58476D1CE4E5B9ULL;
  s ^= (b + 1) * 0x94D049BB133111EBULL;
  return s;
}

/// Incremental FNV-1a over the canonical state rendering.
struct Fnv64 {
  std::uint64_t h = 14695981039346656037ULL;
  void byte(unsigned char b) {
    h ^= b;
    h *= 1099511628211ULL;
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) byte(static_cast<unsigned char>(v >> (8 * i)));
  }
  void str(const std::string& s) {
    u64(s.size());
    for (char c : s) byte(static_cast<unsigned char>(c));
  }
};

std::size_t clamp_sites(std::size_t sites) {
  return std::min<std::size_t>(std::max<std::size_t>(sites, 2), 8);
}

}  // namespace

ActionPtr mc_workload_action(std::uint64_t seed, std::size_t site,
                             std::uint64_t seq) {
  Rng rng(mix(seed, 0xA5, site, seq));
  if (rng.below(4) == 0) {
    return std::make_shared<DecrementAction>(
        ObjectId(0), static_cast<std::int64_t>(1 + rng.below(3)));
  }
  return std::make_shared<IncrementAction>(
      ObjectId(0), static_cast<std::int64_t>(1 + rng.below(5)));
}

McWorld::McWorld(const McConfig& config, CaptureSink* capture)
    : config_(config), net_(config.seed, FaultSpec{}), capture_(capture) {
  config_.sites = clamp_sites(config_.sites);
  const std::size_t n = config_.sites;

  // Same genesis as the chaos harness: one budget counter with a floor
  // deep enough that every workload action stays committable.
  Universe genesis;
  genesis.add(std::make_unique<Counter>(10000));

  names_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) names_.push_back(chaos_site_name(i));

  nodes_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    nodes_.emplace_back(names_[i], genesis, GossipOptions{});
  }
  if (config_.commitment) {
    CommitOptions commit_options;
    commit_options.auth_seed = config_.seed;
    engines_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      engines_.emplace_back(nodes_[i], n, commit_options);
    }
  }

  // All event ordering, loss and duplication is chosen by the explorer,
  // never by the seeded fault processes.
  net_.set_fault_horizon(0);
  net_.set_capture(capture_);
  for (const std::string& name : names_) net_.add_site(name);

  remaining_.assign(n, 0);
  workload_seq_.assign(n, 0);
  for (std::size_t k = 0; k < config_.actions; ++k) ++remaining_[k % n];

  for (std::size_t i = 0; i < n; ++i) observe(i);
}

McWorld::McWorld(const McWorld& other)
    : config_(other.config_),
      net_(other.net_),
      names_(other.names_),
      nodes_(other.nodes_),
      checker_(other.checker_),
      commit_checker_(other.commit_checker_),
      algebra_violations_(other.algebra_violations_),
      remaining_(other.remaining_),
      workload_seq_(other.workload_seq_),
      drops_used_(other.drops_used_),
      dups_used_(other.dups_used_),
      crashes_used_(other.crashes_used_),
      cuts_used_(other.cuts_used_),
      capture_(nullptr) {
  net_.set_capture(nullptr);
  engines_.reserve(other.engines_.size());
  for (std::size_t i = 0; i < other.engines_.size(); ++i) {
    engines_.emplace_back(other.engines_[i], nodes_[i]);
  }
}

void McWorld::capture_frame(CaptureRecordKind kind, std::size_t from,
                            std::size_t to, const std::string& payload) {
  if (capture_ == nullptr) return;
  capture_->record(
      {kind, net_.now(), names_[from] + ">" + names_[to] + "\n" + payload});
}

void McWorld::observe(std::size_t site) {
  checker_.observe(nodes_[site], net_.now());
  if (config_.commitment) {
    commit_checker_.observe(engines_[site], net_.now());
  }
}

std::vector<Choice> McWorld::enabled() {
  std::vector<Choice> out;
  const std::size_t n = names_.size();

  for (std::size_t s = 0; s < n; ++s) {
    if (!net_.is_up(names_[s])) {
      out.push_back({ChoiceKind::kRestart, static_cast<std::uint8_t>(s)});
      continue;
    }
    for (std::size_t p = 0; p < n; ++p) {
      if (p == s || !net_.link_open(names_[s], names_[p])) continue;
      out.push_back({ChoiceKind::kStep, static_cast<std::uint8_t>(s),
                     static_cast<std::uint8_t>(p)});
      if (config_.commitment && config_.withhold) {
        out.push_back({ChoiceKind::kStepWithhold,
                       static_cast<std::uint8_t>(s),
                       static_cast<std::uint8_t>(p)});
      }
    }
  }

  // Structural message addressing: index k names the k-th in-flight
  // message on its directed link, in send (seq) order.
  std::map<std::pair<std::uint8_t, std::uint8_t>, std::uint8_t> link_count;
  const auto site_index = [&](const std::string& name) {
    return static_cast<std::uint8_t>(
        std::find(names_.begin(), names_.end(), name) - names_.begin());
  };
  for (const PendingDelivery& d : net_.pending_deliveries()) {
    const std::uint8_t from = site_index(d.from);
    const std::uint8_t to = site_index(d.to);
    const std::uint8_t k = link_count[{from, to}]++;
    if (net_.is_up(d.to) && net_.link_open(d.from, d.to)) {
      out.push_back({ChoiceKind::kDeliver, from, to, k});
    }
    if (drops_used_ < config_.max_drops) {
      out.push_back({ChoiceKind::kDrop, from, to, k});
    }
    if (dups_used_ < config_.max_dups) {
      out.push_back({ChoiceKind::kDuplicate, from, to, k});
    }
  }

  if (crashes_used_ < config_.max_crashes) {
    for (std::size_t s = 0; s < n; ++s) {
      if (net_.is_up(names_[s])) {
        out.push_back({ChoiceKind::kCrash, static_cast<std::uint8_t>(s)});
      }
    }
  }
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      if (net_.link_open(names_[a], names_[b])) {
        if (cuts_used_ < config_.max_cuts) {
          out.push_back({ChoiceKind::kCut, static_cast<std::uint8_t>(a),
                         static_cast<std::uint8_t>(b)});
        }
      } else {
        out.push_back({ChoiceKind::kHeal, static_cast<std::uint8_t>(a),
                       static_cast<std::uint8_t>(b)});
      }
    }
  }
  return out;
}

std::optional<std::uint64_t> McWorld::find_message(
    const Choice& choice) const {
  if (choice.site >= names_.size() || choice.peer >= names_.size()) {
    return std::nullopt;
  }
  std::uint8_t count = 0;
  for (const PendingDelivery& d : net_.pending_deliveries()) {
    if (d.from != names_[choice.site] || d.to != names_[choice.peer]) {
      continue;
    }
    if (count == choice.index) return d.seq;
    ++count;
  }
  return std::nullopt;
}

bool McWorld::apply_step(const Choice& choice) {
  const std::size_t s = choice.site;
  const std::size_t p = choice.peer;
  if (s >= names_.size() || p >= names_.size() || s == p) return false;
  if (!net_.is_up(names_[s]) || !net_.link_open(names_[s], names_[p])) {
    return false;
  }
  if (choice.kind == ChoiceKind::kStepWithhold &&
      !(config_.commitment && config_.withhold)) {
    return false;
  }

  GossipNode& node = nodes_[s];
  if (remaining_[s] > 0) {
    const std::uint64_t seq = workload_seq_[s]++;
    ActionPtr action = mc_workload_action(config_.seed, s, seq);
    --remaining_[s];
    if (capture_ != nullptr) {
      capture_->record({CaptureRecordKind::kAction, net_.now(),
                        names_[s] + " " + std::to_string(seq) + " " +
                            action->describe()});
    }
    node.perform(std::move(action));
  }

  {
    std::string payload = node.make_message();
    capture_frame(CaptureRecordKind::kGossipFrame, s, p, payload);
    net_.send(names_[s], names_[p], std::move(payload));
  }
  if (config_.commitment) {
    engines_[s].tick();
    if (choice.kind != ChoiceKind::kStepWithhold) {
      std::string payload = engines_[s].make_message();
      capture_frame(CaptureRecordKind::kCommitFrame, s, p, payload);
      net_.send(names_[s], names_[p], std::move(payload));
    }
  }
  observe(s);
  return true;
}

bool McWorld::apply_message_choice(const Choice& choice) {
  const auto seq = find_message(choice);
  if (!seq) return false;

  if (choice.kind == ChoiceKind::kDrop) {
    if (drops_used_ >= config_.max_drops) return false;
    ++drops_used_;
    return net_.drop_delivery(*seq);
  }
  if (choice.kind == ChoiceKind::kDuplicate) {
    if (dups_used_ >= config_.max_dups) return false;
    ++dups_used_;
    return net_.duplicate_delivery(*seq).has_value();
  }

  // kDeliver. Enabledness mirrors enumeration: the destination must be up
  // and the link open, so take_delivery below cannot drop.
  const std::size_t t = choice.peer;
  if (!net_.is_up(names_[t]) ||
      !net_.link_open(names_[choice.site], names_[t])) {
    return false;
  }
  auto event = net_.take_delivery(*seq);
  if (!event) return false;

  if (config_.commitment && is_commit_frame(event->payload)) {
    const CommitReceipt receipt = engines_[t].receive(event->payload);
    if (receipt.reply_advised && net_.is_up(event->from)) {
      std::string payload = engines_[t].make_message();
      capture_frame(CaptureRecordKind::kCommitFrame, t, choice.site,
                    payload);
      net_.send(names_[t], event->from, std::move(payload));
    }
  } else {
    const GossipReceipt receipt = nodes_[t].receive(event->payload);
    if (receipt.reply_advised() && net_.is_up(event->from)) {
      std::string payload = nodes_[t].make_message();
      capture_frame(CaptureRecordKind::kGossipFrame, t, choice.site,
                    payload);
      net_.send(names_[t], event->from, std::move(payload));
    }
  }
  observe(t);
  return true;
}

bool McWorld::apply_control(const Choice& choice) {
  const std::size_t n = names_.size();
  switch (choice.kind) {
    case ChoiceKind::kCrash:
      if (choice.site >= n || crashes_used_ >= config_.max_crashes ||
          !net_.is_up(names_[choice.site])) {
        return false;
      }
      ++crashes_used_;
      net_.force_crash(names_[choice.site]);
      return true;
    case ChoiceKind::kRestart:
      if (choice.site >= n || net_.is_up(names_[choice.site])) return false;
      net_.force_restart(names_[choice.site]);
      return true;
    case ChoiceKind::kCut:
      if (choice.site >= n || choice.peer >= n ||
          choice.site == choice.peer || cuts_used_ >= config_.max_cuts ||
          !net_.link_open(names_[choice.site], names_[choice.peer])) {
        return false;
      }
      ++cuts_used_;
      net_.force_cut(names_[choice.site], names_[choice.peer]);
      return true;
    case ChoiceKind::kHeal:
      if (choice.site >= n || choice.peer >= n ||
          choice.site == choice.peer ||
          net_.link_open(names_[choice.site], names_[choice.peer])) {
        return false;
      }
      net_.force_heal(names_[choice.site], names_[choice.peer]);
      return true;
    default:
      return false;
  }
}

bool McWorld::apply(const Choice& choice) {
  switch (choice.kind) {
    case ChoiceKind::kStep:
    case ChoiceKind::kStepWithhold:
      return apply_step(choice);
    case ChoiceKind::kDeliver:
    case ChoiceKind::kDrop:
    case ChoiceKind::kDuplicate:
      return apply_message_choice(choice);
    default:
      return apply_control(choice);
  }
}

std::uint64_t McWorld::digest() const {
  Fnv64 fnv;
  const std::size_t n = names_.size();
  fnv.u64(static_cast<std::uint64_t>(config_.mutant));

  for (std::size_t i = 0; i < n; ++i) {
    const GossipNode& node = nodes_[i];
    fnv.u64(net_.is_up(names_[i]) ? 1 : 0);
    fnv.u64(remaining_[i]);
    fnv.u64(node.epoch());
    fnv.u64(node.committed_fingerprint_hash());
    fnv.u64(node.stable_length());
    fnv.u64(node.history_uids().size());
    for (const std::string& uid : node.history_uids()) fnv.str(uid);
    fnv.u64(node.pending_uids().size());
    for (const std::string& uid : node.pending_uids()) fnv.str(uid);
  }

  for (const CommitEngine& engine : engines_) {
    fnv.u64(engine.decided().size());
    for (const std::string& id : engine.decided()) fnv.str(id);
    fnv.u64(engine.stable_uids().size());
    fnv.u64(engine.proposals().size());
    for (const auto& [id, entry] : engine.proposals()) fnv.str(id);
    fnv.u64(engine.votes().size());
    for (const auto& [key, ids] : engine.votes()) {
      fnv.u64(key.election);
      fnv.u64(key.runoff);
      fnv.str(key.voter);
      for (const std::string& id : ids) fnv.str(id);
    }
  }

  // In-flight messages, grouped per directed link and ordered by send
  // sequence within a link: the order two interleavings of *independent*
  // choices can never disagree on. (A global-seq ordering would split
  // states the reduction proves equivalent.)
  std::vector<PendingDelivery> pending = net_.pending_deliveries();
  std::stable_sort(pending.begin(), pending.end(),
                   [](const PendingDelivery& a, const PendingDelivery& b) {
                     if (a.from != b.from) return a.from < b.from;
                     return a.to < b.to;
                   });
  fnv.u64(pending.size());
  for (const PendingDelivery& d : pending) {
    fnv.str(d.from);
    fnv.str(d.to);
    fnv.str(d.payload);
  }

  fnv.u64(drops_used_);
  fnv.u64(dups_used_);
  fnv.u64(crashes_used_);
  fnv.u64(cuts_used_);
  // Cut links; link_open is non-const (window memo), but with the fault
  // horizon at 0 a link is closed iff explicitly force-cut — recompute
  // from the trace-visible effect instead: closed links appear here.
  SimNet& net = const_cast<SimNet&>(net_);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      fnv.u64(net.link_open(names_[a], names_[b]) ? 1 : 0);
    }
  }
  return fnv.h;
}

bool McWorld::quiescent() const {
  if (net_.pending_events() != 0) return false;
  for (const std::string& name : names_) {
    if (!net_.is_up(name)) return false;
  }
  return true;
}

std::optional<Violation> McWorld::check_algebra() {
  // Idempotence: a node whose pending log is drained must be a fixpoint
  // of its own frame — merging a state with itself changes nothing.
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (!nodes_[i].pending().empty()) continue;
    const std::string frame = nodes_[i].make_message();
    GossipNode copy = nodes_[i];
    const GossipReceipt receipt = copy.receive(frame);
    if (receipt.adopted() || copy.committed_fingerprint_hash() !=
                                 nodes_[i].committed_fingerprint_hash()) {
      Violation v{"merge-idempotent", names_[i],
                  "node changed state merging its own frame", net_.now()};
      algebra_violations_.push_back(v);
      return v;
    }
  }
  // Commutativity: two nodes on the same committed state, merging each
  // other's frames, must adopt bit-identical committed results (this is
  // the determinism the gossip layer promises; see replica/gossip.hpp).
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    for (std::size_t j = i + 1; j < nodes_.size(); ++j) {
      if (nodes_[i].committed_fingerprint_hash() !=
          nodes_[j].committed_fingerprint_hash()) {
        continue;
      }
      const std::string frame_i = nodes_[i].make_message();
      const std::string frame_j = nodes_[j].make_message();
      GossipNode a = nodes_[i];
      GossipNode b = nodes_[j];
      (void)a.receive(frame_j);
      (void)b.receive(frame_i);
      if (a.committed_fingerprint_hash() != b.committed_fingerprint_hash()) {
        Violation v{"merge-commute", names_[i] + "/" + names_[j],
                    "pairwise merge order changed the committed state",
                    net_.now()};
        algebra_violations_.push_back(v);
        return v;
      }
    }
  }
  return std::nullopt;
}

std::vector<Violation> McWorld::violations() const {
  std::vector<Violation> out = checker_.violations();
  out.insert(out.end(), commit_checker_.violations().begin(),
             commit_checker_.violations().end());
  out.insert(out.end(), algebra_violations_.begin(),
             algebra_violations_.end());
  return out;
}

bool McWorld::violated() const {
  return !checker_.ok() || !commit_checker_.ok() ||
         !algebra_violations_.empty();
}

std::size_t McWorld::actions_remaining() const {
  std::size_t total = 0;
  for (std::size_t r : remaining_) total += r;
  return total;
}

bool McWorld::settled() const {
  if (actions_remaining() != 0 || !quiescent()) return false;
  for (const GossipNode& node : nodes_) {
    if (!node.pending().empty()) return false;
  }
  if (!gossip_converged(nodes_)) return false;
  if (config_.commitment) {
    if (!commit_converged(engines_)) return false;
    for (const CommitEngine& engine : engines_) {
      if (engine.stable_uids().size() != engine.node().history().size()) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace icecube::mc
