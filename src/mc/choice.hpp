// The model checker's transition alphabet.
//
// A chaos run consumes simnet events in seeded (time, seq) order; the model
// checker instead treats every enabled event as a *choice* and explores all
// of them. A `Choice` names one transition of the protocol state machine:
// a site taking its local step (perform + gossip + commitment tick), a
// specific in-flight message being delivered, dropped or duplicated, or a
// fault-class control action (crash/restart/cut/heal).
//
// Messages are addressed *structurally* — (from, to, index-among-in-flight
// on that directed link, in send order) — not by simnet's internal ids.
// Structural names are stable across forks and under removal of earlier
// independent choices, which is what lets delta-debugging shrink a trace
// and still have every surviving choice mean the same message.
//
// `independent()` is the commutation relation driving the sleep-set
// reduction (see explorer.cpp for the soundness argument). It is
// deliberately conservative: only the three "pure" kinds (step, withheld
// step, deliver) are ever independent, and then only when they mutate
// different sites. Budgeted fault choices share counters and control
// choices touch global reachability, so they stay dependent on everything.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace icecube::mc {

enum class ChoiceKind : std::uint8_t {
  /// Site `site` acts: performs its next workload action (if any remain),
  /// gossips to `peer`, and — with commitment on — ticks its engine and
  /// sends a commitment frame to `peer`.
  kStep = 0,
  /// Like kStep, but the commitment frame is withheld (vote withholding).
  kStepWithhold = 1,
  /// Deliver in-flight message #`index` on the directed link site→peer.
  kDeliver = 2,
  /// Drop that message instead (consumes one unit of the drop budget).
  kDrop = 3,
  /// Duplicate that message (consumes one unit of the duplicate budget).
  kDuplicate = 4,
  kCrash = 5,    ///< crash `site` (budgeted)
  kRestart = 6,  ///< restart `site` (always free: recovery must be fair)
  kCut = 7,      ///< cut the undirected link site—peer (budgeted)
  kHeal = 8,     ///< heal it (always free)
};

[[nodiscard]] constexpr std::string_view to_string(ChoiceKind kind) {
  switch (kind) {
    case ChoiceKind::kStep:
      return "step";
    case ChoiceKind::kStepWithhold:
      return "step-withhold";
    case ChoiceKind::kDeliver:
      return "deliver";
    case ChoiceKind::kDrop:
      return "drop";
    case ChoiceKind::kDuplicate:
      return "dup";
    case ChoiceKind::kCrash:
      return "crash";
    case ChoiceKind::kRestart:
      return "restart";
    case ChoiceKind::kCut:
      return "cut";
    case ChoiceKind::kHeal:
      return "heal";
  }
  return "?";
}

/// One transition; field meaning depends on `kind` (see ChoiceKind).
struct Choice {
  ChoiceKind kind = ChoiceKind::kStep;
  std::uint8_t site = 0;   ///< actor / sender / link endpoint a
  std::uint8_t peer = 0;   ///< gossip partner / destination / endpoint b
  std::uint8_t index = 0;  ///< structural message index (deliver/drop/dup)

  [[nodiscard]] bool operator==(const Choice&) const = default;

  /// Dense 32-bit key, for sleep sets and done sets.
  [[nodiscard]] std::uint32_t key() const {
    return (static_cast<std::uint32_t>(kind) << 24) |
           (static_cast<std::uint32_t>(site) << 16) |
           (static_cast<std::uint32_t>(peer) << 8) |
           static_cast<std::uint32_t>(index);
  }

  /// Human/wire form, e.g. "deliver 0 2 1"; decoded by mc_spec_codec.
  [[nodiscard]] std::string describe() const {
    std::string out(to_string(kind));
    out += " " + std::to_string(site) + " " + std::to_string(peer) + " " +
           std::to_string(index);
    return out;
  }
};

/// The site whose replica/engine state this choice mutates.
[[nodiscard]] constexpr std::uint8_t mutated_site(const Choice& c) {
  return c.kind == ChoiceKind::kDeliver ? c.peer : c.site;
}

/// The commutation relation. Two choices are independent iff from any
/// state where both are enabled, executing them in either order reaches
/// the same state and neither disables the other.
///
///   - kStep/kStepWithhold mutate only their actor and append only to the
///     directed link actor→peer (the gossip frame, and with commitment the
///     commit frame, both actor→peer).
///   - kDeliver mutates only its destination, consumes one message from
///     from→to, and may append a reply to to→from.
///
/// Two pure choices with *different mutated sites* therefore touch
/// disjoint replica state, and every link they append to is sourced at
/// their (distinct) mutated site — so their appends hit different directed
/// links and the per-link message orders agree in both interleavings. A
/// consume commutes with an append on the same link because removal is by
/// position among the *earlier* messages. Same-site pairs share replica
/// state (and, for two deliveries to one site, the receiver's merge order)
/// and are dependent — exactly the "deliveries to different sites commute,
/// same-site deliveries don't" rule. Everything else (budgeted faults,
/// control actions) conservatively commutes with nothing.
[[nodiscard]] constexpr bool independent(const Choice& a, const Choice& b) {
  constexpr auto pure = [](const Choice& c) {
    return c.kind == ChoiceKind::kStep ||
           c.kind == ChoiceKind::kStepWithhold ||
           c.kind == ChoiceKind::kDeliver;
  };
  if (!pure(a) || !pure(b)) return false;
  return mutated_site(a) != mutated_site(b);
}

}  // namespace icecube::mc
