#include "mc/mc_spec_codec.hpp"

#include <string_view>

#include "serialize/framing.hpp"

namespace icecube::mc {

namespace {

constexpr std::string_view kSpecMagic = "mc-spec";
constexpr int kSpecVersion = 1;

void put(std::string& out, std::string_view key, const std::string& value) {
  out += key;
  out += ' ';
  out += value;
  out += '\n';
}

std::vector<std::string_view> split(std::string_view line) {
  std::vector<std::string_view> tokens;
  std::size_t start = 0;
  while (start < line.size()) {
    const std::size_t end = line.find(' ', start);
    if (end == std::string_view::npos) {
      tokens.push_back(line.substr(start));
      break;
    }
    if (end > start) tokens.push_back(line.substr(start, end - start));
    start = end + 1;
  }
  return tokens;
}

bool kind_from_string(std::string_view name, ChoiceKind& out) {
  for (std::uint8_t k = 0; k <= static_cast<std::uint8_t>(ChoiceKind::kHeal);
       ++k) {
    const auto kind = static_cast<ChoiceKind>(k);
    if (name == to_string(kind)) {
      out = kind;
      return true;
    }
  }
  return false;
}

}  // namespace

std::string encode_mc_spec(const McConfig& config,
                           const std::vector<Choice>& schedule) {
  std::string out;
  out += kSpecMagic;
  out += ' ';
  out += std::to_string(kSpecVersion);
  out += '\n';
  put(out, "sites", std::to_string(config.sites));
  put(out, "actions", std::to_string(config.actions));
  put(out, "seed", std::to_string(config.seed));
  put(out, "commitment", config.commitment ? "1" : "0");
  put(out, "algebra", config.algebra ? "1" : "0");
  put(out, "withhold", config.withhold ? "1" : "0");
  put(out, "drops", std::to_string(config.max_drops));
  put(out, "dups", std::to_string(config.max_dups));
  put(out, "crashes", std::to_string(config.max_crashes));
  put(out, "cuts", std::to_string(config.max_cuts));
  put(out, "mutant",
      std::to_string(static_cast<unsigned>(config.mutant)));
  for (const Choice& c : schedule) put(out, "choice", c.describe());
  return out;
}

McSpecDecode decode_mc_spec(const std::string& text) {
  using serialize_detail::parse_number;
  McSpecDecode out;
  if (text.empty()) {
    out.error = {DecodeErrorKind::kEmptyInput, 0, {}};
    return out;
  }

  std::vector<std::string_view> lines;
  std::string_view rest = text;
  while (!rest.empty()) {
    const std::size_t nl = rest.find('\n');
    lines.push_back(rest.substr(0, nl));
    if (nl == std::string_view::npos) break;
    rest.remove_prefix(nl + 1);
  }
  while (!lines.empty() && lines.back().empty()) lines.pop_back();
  if (lines.empty()) {
    out.error = {DecodeErrorKind::kEmptyInput, 0, {}};
    return out;
  }

  const std::vector<std::string_view> head = split(lines.front());
  if (head.size() != 2 || head[0] != kSpecMagic) {
    out.error = {DecodeErrorKind::kBadHeader, 1, std::string(lines.front())};
    return out;
  }
  const auto version = parse_number<int>(head[1]);
  if (!version) {
    out.error = {DecodeErrorKind::kBadHeader, 1, std::string(head[1])};
    return out;
  }
  if (*version < 1 || *version > kSpecVersion) {
    out.error = {DecodeErrorKind::kUnsupportedVersion, 1,
                 "spec version " + std::to_string(*version)};
    return out;
  }

  McConfig& config = out.config;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const std::size_t line_no = i + 1;
    const std::vector<std::string_view> tokens = split(lines[i]);
    if (tokens.empty()) continue;
    const std::string_view key = tokens.front();

    const auto want = [&](std::size_t n) {
      if (tokens.size() == n + 1) return true;
      out.error = {DecodeErrorKind::kBadSyntax, line_no,
                   std::string(lines[i])};
      return false;
    };
    const auto num = [&](std::string_view token, auto& field) {
      using T = std::remove_reference_t<decltype(field)>;
      const auto v = parse_number<T>(token);
      if (!v) {
        out.error = {DecodeErrorKind::kBadNumber, line_no,
                     std::string(token)};
        return false;
      }
      field = *v;
      return true;
    };
    const auto flag = [&](std::string_view token, bool& field) {
      if (token == "1") {
        field = true;
      } else if (token == "0") {
        field = false;
      } else {
        out.error = {DecodeErrorKind::kBadNumber, line_no,
                     std::string(token)};
        return false;
      }
      return true;
    };

    bool handled = true;
    if (key == "sites") {
      handled = want(1) && num(tokens[1], config.sites);
    } else if (key == "actions") {
      handled = want(1) && num(tokens[1], config.actions);
    } else if (key == "seed") {
      handled = want(1) && num(tokens[1], config.seed);
    } else if (key == "commitment") {
      handled = want(1) && flag(tokens[1], config.commitment);
    } else if (key == "algebra") {
      handled = want(1) && flag(tokens[1], config.algebra);
    } else if (key == "withhold") {
      handled = want(1) && flag(tokens[1], config.withhold);
    } else if (key == "drops") {
      handled = want(1) && num(tokens[1], config.max_drops);
    } else if (key == "dups") {
      handled = want(1) && num(tokens[1], config.max_dups);
    } else if (key == "crashes") {
      handled = want(1) && num(tokens[1], config.max_crashes);
    } else if (key == "cuts") {
      handled = want(1) && num(tokens[1], config.max_cuts);
    } else if (key == "mutant") {
      unsigned value = 0;
      handled = want(1) && num(tokens[1], value);
      if (handled && value > kProtocolMutantMax) {
        out.error = {DecodeErrorKind::kBadNumber, line_no,
                     "mutant " + std::to_string(value)};
        return out;
      }
      if (handled) {
        config.mutant = static_cast<ProtocolMutant>(value);
      }
    } else if (key == "choice") {
      Choice c;
      unsigned site = 0;
      unsigned peer = 0;
      unsigned index = 0;
      handled = want(4) && num(tokens[2], site) && num(tokens[3], peer) &&
                num(tokens[4], index);
      if (handled && (!kind_from_string(tokens[1], c.kind) || site > 255 ||
                      peer > 255 || index > 255)) {
        out.error = {DecodeErrorKind::kBadSyntax, line_no,
                     std::string(lines[i])};
        return out;
      }
      if (handled) {
        c.site = static_cast<std::uint8_t>(site);
        c.peer = static_cast<std::uint8_t>(peer);
        c.index = static_cast<std::uint8_t>(index);
        out.schedule.push_back(c);
      }
    } else {
      out.error = {DecodeErrorKind::kUnknownOp, line_no, std::string(key)};
      return out;
    }
    if (!handled) return out;
  }
  return out;
}

}  // namespace icecube::mc
