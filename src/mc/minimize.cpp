#include "mc/minimize.hpp"

#include <algorithm>

namespace icecube::mc {

bool schedule_reproduces(const McConfig& config,
                         const std::vector<Choice>& schedule) {
  ScopedProtocolMutant guard(config.mutant);
  McWorld world(config);
  for (const Choice& choice : schedule) {
    if (!world.apply(choice)) return false;
    if (world.violated()) return true;
    if (config.algebra && world.quiescent() &&
        world.check_algebra().has_value()) {
      return true;
    }
  }
  return false;
}

std::vector<Choice> minimize_trace(const McConfig& config,
                                   const std::vector<Choice>& trace) {
  if (!schedule_reproduces(config, trace)) return trace;

  std::vector<Choice> current = trace;
  std::size_t granularity = 2;
  while (current.size() >= 2) {
    const std::size_t chunk =
        std::max<std::size_t>(1, current.size() / granularity);
    bool reduced = false;
    // Try removing each chunk-sized slice (the "complement" tests of
    // ddmin; testing the slices themselves is subsumed because a slice is
    // the complement of the rest at granularity 2).
    for (std::size_t start = 0; start < current.size(); start += chunk) {
      const std::size_t end = std::min(start + chunk, current.size());
      std::vector<Choice> candidate;
      candidate.reserve(current.size() - (end - start));
      candidate.insert(candidate.end(), current.begin(),
                       current.begin() + static_cast<std::ptrdiff_t>(start));
      candidate.insert(candidate.end(),
                       current.begin() + static_cast<std::ptrdiff_t>(end),
                       current.end());
      if (candidate.size() < current.size() &&
          schedule_reproduces(config, candidate)) {
        current = std::move(candidate);
        granularity = std::max<std::size_t>(2, granularity - 1);
        reduced = true;
        break;
      }
    }
    if (!reduced) {
      if (chunk == 1) break;  // 1-minimal
      granularity = std::min(current.size(), granularity * 2);
    }
  }
  return current;
}

}  // namespace icecube::mc
