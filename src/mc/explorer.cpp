#include "mc/explorer.hpp"

#include <algorithm>
#include <unordered_map>
#include <utility>

namespace icecube::mc {

namespace {

/// Sleep/done sets are tiny (bounded by one frontier), so sorted vectors
/// beat hash sets for both lookup and the subset test the TT needs.
using ChoiceSet = std::vector<Choice>;

bool contains(const ChoiceSet& set, const Choice& c) {
  return std::find(set.begin(), set.end(), c) != set.end();
}

std::vector<std::uint32_t> keys_of(const ChoiceSet& set) {
  std::vector<std::uint32_t> keys;
  keys.reserve(set.size());
  for (const Choice& c : set) keys.push_back(c.key());
  std::sort(keys.begin(), keys.end());
  return keys;
}

/// a ⊆ b over sorted key vectors.
bool subset(const std::vector<std::uint32_t>& a,
            const std::vector<std::uint32_t>& b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

// Sleep-set soundness (Godefroid's done-set formulation). From state s
// the branches are explored in canonical order; after branch c completes,
// c joins the done set. A successor state via c inherits
//
//   sleep' = { t in sleep ∪ done, t != c : independent(t, c) }
//
// and skips its sleeping choices. Why nothing is lost: take a sleeping t
// at the child s--c-->s'. Either t was in s's *done* set — every behaviour
// starting t from s' equals (by independence, t·c = c·t from s) a
// behaviour already explored under the earlier branch t — or t was in s's
// own sleep set, and the argument recurses to an ancestor. Dependent
// choices never enter sleep', so any transition that could produce a new
// state stays explored. The transposition table adds state-level pruning
// on top: an entry records under which sleep set and remaining depth a
// digest was explored, and a revisit is skipped only when some recorded
// visit was at least as deep with a sleep set no larger — i.e. the
// recorded visit explored a superset of what this visit would.
class Explorer {
 public:
  Explorer(const McConfig& config, const ExploreOptions& options,
           McReport& report)
      : options_(options), report_(report), root_(config) {}

  void run() {
    ChoiceSet empty_sleep;
    (void)dfs(root_, options_.depth, empty_sleep);
    report_.complete = !report_.budget_exhausted && report_.clean();
  }

 private:
  struct SeenEntry {
    std::size_t remaining = 0;
    std::vector<std::uint32_t> sleep_keys;
  };

  /// True iff a recorded visit covers (digest, remaining, sleep).
  bool covered(std::uint64_t digest, std::size_t remaining,
               const std::vector<std::uint32_t>& sleep_keys) {
    const auto it = table_.find(digest);
    if (it == table_.end()) return false;
    for (const SeenEntry& e : it->second) {
      if (e.remaining >= remaining && subset(e.sleep_keys, sleep_keys)) {
        return true;
      }
    }
    return false;
  }

  void remember(std::uint64_t digest, std::size_t remaining,
                std::vector<std::uint32_t> sleep_keys) {
    auto& entries = table_[digest];
    if (entries.empty()) ++report_.distinct_states;
    // Drop entries the new visit dominates, to keep the list short.
    std::erase_if(entries, [&](const SeenEntry& e) {
      return remaining >= e.remaining && subset(sleep_keys, e.sleep_keys);
    });
    entries.push_back({remaining, std::move(sleep_keys)});
  }

  /// Returns false to abort the whole search (violation or budget).
  bool dfs(McWorld& world, std::size_t remaining, const ChoiceSet& sleep) {
    if (options_.reduction) {
      auto sleep_keys = keys_of(sleep);
      if (covered(world.digest(), remaining, sleep_keys)) {
        ++report_.tt_hits;
        return true;
      }
      remember(world.digest(), remaining, std::move(sleep_keys));
    }
    if (remaining == 0) return true;

    const std::vector<Choice> choices = world.enabled();
    report_.max_frontier = std::max(report_.max_frontier, choices.size());

    ChoiceSet done;
    for (const Choice& choice : choices) {
      if (options_.reduction && contains(sleep, choice)) {
        ++report_.sleep_skips;
        continue;
      }
      if (report_.transitions >= options_.states_budget) {
        report_.budget_exhausted = true;
        return false;
      }

      McWorld child(world);
      ++report_.transitions;
      path_.push_back(choice);
      if (!child.apply(choice)) {
        // Enumerated choices always apply; tolerate gracefully anyway.
        path_.pop_back();
        continue;
      }
      if (child.violated() ||
          (child.config().algebra && child.quiescent() &&
           child.check_algebra().has_value())) {
        report_.counterexample = {path_, child.violations()};
        return false;
      }

      ChoiceSet child_sleep;
      if (options_.reduction) {
        for (const Choice& t : sleep) {
          if (t == choice || !independent(t, choice)) continue;
          child_sleep.push_back(t);
        }
        for (const Choice& t : done) {
          if (t == choice || !independent(t, choice)) continue;
          child_sleep.push_back(t);
        }
      }
      if (!dfs(child, remaining - 1, child_sleep)) return false;
      path_.pop_back();
      done.push_back(choice);
    }
    return true;
  }

  const ExploreOptions options_;
  McReport& report_;
  McWorld root_;
  std::vector<Choice> path_;
  std::unordered_map<std::uint64_t, std::vector<SeenEntry>> table_;
};

std::string json_escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xF];
          out += kHex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

McReport explore(const McConfig& config, const ExploreOptions& options) {
  McReport report;
  report.config = config;
  report.options = options;
  ScopedProtocolMutant guard(config.mutant);
  Explorer explorer(config, options, report);
  explorer.run();
  return report;
}

std::string McReport::to_json() const {
  std::string out = "{";
  const auto field = [&out](const std::string& key,
                            const std::string& value, bool quote) {
    if (out.size() > 1) out += ",";
    out += "\"" + key + "\":";
    out += quote ? "\"" + value + "\"" : value;
  };
  field("sites", std::to_string(config.sites), false);
  field("actions", std::to_string(config.actions), false);
  field("seed", std::to_string(config.seed), false);
  field("commitment", config.commitment ? "true" : "false", false);
  field("algebra", config.algebra ? "true" : "false", false);
  field("withhold", config.withhold ? "true" : "false", false);
  field("mutant", std::string(to_string(config.mutant)), true);
  field("depth", std::to_string(options.depth), false);
  field("states_budget", std::to_string(options.states_budget), false);
  field("reduction", options.reduction ? "true" : "false", false);
  field("transitions", std::to_string(transitions), false);
  field("distinct_states", std::to_string(distinct_states), false);
  field("tt_hits", std::to_string(tt_hits), false);
  field("sleep_skips", std::to_string(sleep_skips), false);
  field("max_frontier", std::to_string(max_frontier), false);
  field("complete", complete ? "true" : "false", false);
  field("budget_exhausted", budget_exhausted ? "true" : "false", false);
  field("clean", clean() ? "true" : "false", false);

  std::string cx = "null";
  if (counterexample) {
    cx = "{\"trace\":[";
    for (std::size_t i = 0; i < counterexample->trace.size(); ++i) {
      if (i > 0) cx += ",";
      cx += "\"" + counterexample->trace[i].describe() + "\"";
    }
    cx += "],\"violations\":[";
    for (std::size_t i = 0; i < counterexample->violations.size(); ++i) {
      if (i > 0) cx += ",";
      cx += "\"" + json_escape(counterexample->violations[i].message()) +
            "\"";
    }
    cx += "]}";
  }
  field("counterexample", cx, false);
  out += "}";
  return out;
}

}  // namespace icecube::mc
