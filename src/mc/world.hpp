// One forkable protocol world for the model checker.
//
// `McWorld` bundles everything one explored state needs — the simulated
// network, the gossip nodes, the commitment engines, the invariant
// checkers and the fault budgets — into a single *value type*: copying a
// world forks it. That is cheap because the expensive part, each node's
// Universe, is copy-on-write (PR 4), and correct because every member is
// a plain value except the engines, whose node references are rebound by
// the CommitEngine copy-with-rebind constructor.
//
// The world is driven exclusively through `apply(Choice)`; `enabled()`
// enumerates exactly the choices `apply` accepts, so the explorer, the
// delta-debugging minimizer and the capture replay runner all share one
// transition semantics. The workload is deterministic: site i's k-th
// action is the same function of (seed, i, k) the chaos harness uses, so
// a choice sequence fully determines the run — no RNG state to fork.
//
// `digest()` hashes the protocol-semantic state (replica contents,
// commitment knowledge, per-link in-flight message order, budgets,
// up/cut sets) and deliberately excludes bookkeeping that cannot change
// future behaviour (the clock, message ids, counters, the trace): two
// interleavings of independent choices then collide in the transposition
// table, which is where most of the reduction's power comes from.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "capture/capture_sink.hpp"
#include "core/mutation.hpp"
#include "mc/choice.hpp"
#include "replica/commit.hpp"
#include "replica/gossip.hpp"
#include "simnet/invariants.hpp"
#include "simnet/simnet.hpp"

namespace icecube::mc {

/// Shape of the explored configuration. Small on purpose: the checker is
/// exhaustive, so every knob multiplies the state space.
struct McConfig {
  std::size_t sites = 3;    ///< clamped to [2, 8]
  std::size_t actions = 3;  ///< total workload actions, round-robin
  std::uint64_t seed = 1;   ///< workload content seed (chaos recipe)
  bool commitment = true;   ///< run a CommitEngine per site
  bool algebra = true;      ///< merge-law pass at quiescent states
  bool withhold = false;    ///< enable vote-withholding step choices
  std::size_t max_drops = 0;    ///< message-loss choice budget
  std::size_t max_dups = 0;     ///< duplication choice budget
  std::size_t max_crashes = 0;  ///< crash choice budget
  std::size_t max_cuts = 0;     ///< partition choice budget
  /// Seeded protocol defect active for the whole exploration
  /// (core/mutation.hpp); kNone checks the shipped protocol.
  ProtocolMutant mutant = ProtocolMutant::kNone;
};

/// See file comment.
class McWorld {
 public:
  /// Builds the genesis state. `capture` (not owned, may be nullptr)
  /// receives chaos-format kTrace/kAction/kGossipFrame/kCommitFrame
  /// records as choices are applied — attached by the schedule runner;
  /// explorer forks never capture (copies detach the sink).
  explicit McWorld(const McConfig& config, CaptureSink* capture = nullptr);

  /// Fork. The copy is fully independent and detached from any sink.
  McWorld(const McWorld& other);
  McWorld& operator=(const McWorld&) = delete;

  [[nodiscard]] const McConfig& config() const { return config_; }
  [[nodiscard]] std::size_t sites() const { return names_.size(); }
  [[nodiscard]] const std::vector<GossipNode>& nodes() const {
    return nodes_;
  }
  [[nodiscard]] const std::vector<CommitEngine>& engines() const {
    return engines_;
  }
  [[nodiscard]] SimNet& net() { return net_; }

  /// Every choice currently applicable, in canonical order (steps by
  /// site/peer, then per-message choices by link/index, then faults).
  /// `apply` accepts exactly these.
  [[nodiscard]] std::vector<Choice> enabled();

  /// Applies one transition. Returns false — world untouched (up to a
  /// cheap probe) — when the choice is not currently enabled; the
  /// minimizer uses that to discard infeasible shrunken traces.
  bool apply(const Choice& choice);

  /// Protocol-semantic state hash; see file comment for what it covers.
  [[nodiscard]] std::uint64_t digest() const;

  /// No messages in flight and every site up — the states where the
  /// algebraic merge laws are asserted.
  [[nodiscard]] bool quiescent() const;

  /// Runs the merge-law pass on copies (the world is not disturbed):
  /// idempotence — a drained node receiving its own frame must not move;
  /// commutativity — two same-state nodes merging each other's frames
  /// must compute bit-identical committed states. Violations are recorded
  /// and also returned.
  std::optional<Violation> check_algebra();

  /// All violations found so far (invariants, commitment, algebra).
  [[nodiscard]] std::vector<Violation> violations() const;
  [[nodiscard]] bool violated() const;

  /// Full convergence, chaos-style: workload drained, everything shared,
  /// and (with commitment) every committed action irrevocable everywhere.
  [[nodiscard]] bool settled() const;

  [[nodiscard]] std::uint32_t trace_crc() const { return net_.trace_crc(); }
  [[nodiscard]] std::size_t actions_remaining() const;

 private:
  [[nodiscard]] std::optional<std::uint64_t> find_message(
      const Choice& choice) const;
  void capture_frame(CaptureRecordKind kind, std::size_t from,
                     std::size_t to, const std::string& payload);
  void observe(std::size_t site);
  bool apply_step(const Choice& choice);
  bool apply_message_choice(const Choice& choice);
  bool apply_control(const Choice& choice);

  McConfig config_;
  SimNet net_;
  std::vector<std::string> names_;
  std::vector<GossipNode> nodes_;
  std::vector<CommitEngine> engines_;  ///< empty without commitment
  InvariantChecker checker_;
  CommitInvariantChecker commit_checker_;
  std::vector<Violation> algebra_violations_;
  std::vector<std::size_t> remaining_;     ///< workload quota per site
  std::vector<std::uint64_t> workload_seq_;
  std::size_t drops_used_ = 0;
  std::size_t dups_used_ = 0;
  std::size_t crashes_used_ = 0;
  std::size_t cuts_used_ = 0;
  CaptureSink* capture_ = nullptr;  ///< not owned; dropped on fork
};

/// The deterministic workload: site `site`'s `seq`-th action under `seed`
/// — byte-identical to the chaos harness recipe, so mc findings transfer.
[[nodiscard]] ActionPtr mc_workload_action(std::uint64_t seed,
                                           std::size_t site,
                                           std::uint64_t seq);

}  // namespace icecube::mc
