// Bounded exhaustive exploration with sleep-set reduction.
//
// `explore` runs a depth-first search over choice sequences from the
// genesis `McWorld`, visiting every reachable state up to `depth`
// transitions deep (or until the state budget runs out), checking the
// full invariant suite at every state and the algebraic merge laws at
// every quiescent state. With `reduction` on, two techniques prune the
// tree without losing any reachable *state*:
//
//   sleep sets — after exploring choice c from state s, sibling branches
//     need not re-explore c first when it commutes with everything they
//     start with; see explorer.cpp for the bookkeeping and the soundness
//     argument.
//   transposition table — states are deduplicated by their 64-bit
//     protocol digest; a state is skipped only when it was already
//     explored at least as deeply *and* under a sleep set no larger than
//     the current one (so the earlier visit explored a superset of the
//     continuations this visit would).
//
// `--no-reduction` (options.reduction = false) disables both, giving the
// plain bounded DFS that bench_mc compares against.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "mc/world.hpp"

namespace icecube::mc {

struct ExploreOptions {
  std::size_t depth = 10;            ///< max choices per explored sequence
  std::size_t states_budget = 200000;  ///< max transitions applied
  bool reduction = true;             ///< sleep sets + transposition table
};

/// The first violating run found: the raw root-to-violation choice
/// sequence (minimize it with minimize_trace) and what it violated.
struct McCounterexample {
  std::vector<Choice> trace;
  std::vector<Violation> violations;
};

struct McReport {
  McConfig config;
  ExploreOptions options;
  std::size_t transitions = 0;      ///< world transitions applied
  std::size_t distinct_states = 0;  ///< transposition-table inserts
  std::size_t tt_hits = 0;          ///< states skipped as already covered
  std::size_t sleep_skips = 0;      ///< branches pruned by sleep sets
  std::size_t max_frontier = 0;     ///< widest enabled-choice set seen
  /// Every sequence to `depth` explored within budget, no violation.
  bool complete = false;
  bool budget_exhausted = false;
  std::optional<McCounterexample> counterexample;

  [[nodiscard]] bool clean() const { return !counterexample.has_value(); }
  [[nodiscard]] std::string to_json() const;
};

/// See file comment. Activates config.mutant for the whole run.
[[nodiscard]] McReport explore(const McConfig& config,
                               const ExploreOptions& options);

}  // namespace icecube::mc
