// Deterministic schedule replay — the bridge between the model checker
// and the PR 8 capture/replay harness.
//
// `run_mc_schedule` replays one choice sequence from genesis through a
// fresh `McWorld`. It is a pure function of (config, schedule): the same
// inputs produce the same trace CRC, the same capture frames and the same
// final state digest, every run. That purity is what makes an `.icap`
// counterexample *replayable*: the capture's first frame is the encoded
// (config, schedule), and the replay engine re-runs it and compares
// frame-for-frame + trace-CRC, exactly as it does for chaos captures.
//
// `witness_schedule` generates a counterexample-free convergent schedule
// for a config — the corpus entry proving the shipped protocol settles
// under a canonical exhaustively-checkable scenario.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "capture/capture_sink.hpp"
#include "mc/world.hpp"

namespace icecube::mc {

/// What one schedule replay produced.
struct McRunResult {
  bool applied_all = false;   ///< every choice was applicable in order
  std::size_t applied = 0;    ///< choices applied before stopping
  std::vector<Violation> violations;
  std::uint32_t trace_crc = 0;
  std::uint64_t final_digest = 0;
  bool settled = false;       ///< full convergence reached (see McWorld)

  [[nodiscard]] bool violated() const { return !violations.empty(); }
};

/// Replays `schedule` from genesis under config.mutant. With `sink`,
/// emits chaos-format capture records (kTrace/kAction/kGossipFrame/
/// kCommitFrame while running, then kViolation per violation and a
/// kSummary whose first line is "crc <hex32>"). Does NOT emit the kSpec
/// frame — use run_mc_schedule_captured for a self-describing capture.
McRunResult run_mc_schedule(const McConfig& config,
                            const std::vector<Choice>& schedule,
                            CaptureSink* sink = nullptr);

/// Records the spec frame first, then runs; the result is a complete
/// capture stream, replayable by capture/replay_engine.
McRunResult run_mc_schedule_captured(const McConfig& config,
                                     const std::vector<Choice>& schedule,
                                     CaptureSink& sink);

/// The kSummary payload for a run.
[[nodiscard]] std::string mc_capture_summary(const McRunResult& result,
                                             std::size_t schedule_size);

/// Greedily builds a schedule that drives `config` to full convergence
/// (settled()): rounds of per-site steps followed by draining every
/// in-flight message. Returns an empty vector if the config does not
/// settle within the internal round limit (it always does for fault-free
/// configs at mc scale).
[[nodiscard]] std::vector<Choice> witness_schedule(const McConfig& config);

}  // namespace icecube::mc
