// Delta-debugging trace minimization (Zeller/Hildebrandt ddmin).
//
// The explorer's raw counterexample carries every choice on the DFS path,
// most of which are incidental. `minimize_trace` shrinks it to a
// 1-minimal schedule: removing any single remaining choice either makes
// some later choice inapplicable (structural message indices no longer
// resolve, a step's link is down, ...) or makes the violation disappear.
// Candidate schedules are judged by `schedule_reproduces`, which replays
// them through a fresh `McWorld` under the same seeded mutant — the exact
// semantics `run_mc_schedule` uses for `.icap` replay, so a minimized
// trace is replayable by construction.
#pragma once

#include <vector>

#include "mc/world.hpp"

namespace icecube::mc {

/// True iff every choice of `schedule` applies in order from genesis and
/// an invariant (or, with config.algebra, a merge law at a quiescent
/// state) is violated by the end. Activates config.mutant for the run.
[[nodiscard]] bool schedule_reproduces(const McConfig& config,
                                       const std::vector<Choice>& schedule);

/// ddmin over `trace` (which must reproduce); returns a 1-minimal
/// reproducing subsequence. Deterministic.
[[nodiscard]] std::vector<Choice> minimize_trace(
    const McConfig& config, const std::vector<Choice>& trace);

}  // namespace icecube::mc
