#include "mc/schedule.hpp"

#include <algorithm>

#include "mc/mc_spec_codec.hpp"

namespace icecube::mc {

namespace {

std::string hex32(std::uint32_t v) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out(8, '0');
  for (int i = 7; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHex[v & 0xFu];
    v >>= 4;
  }
  return out;
}

std::string hex64(std::uint64_t v) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHex[v & 0xFu];
    v >>= 4;
  }
  return out;
}

}  // namespace

McRunResult run_mc_schedule(const McConfig& config,
                            const std::vector<Choice>& schedule,
                            CaptureSink* sink) {
  ScopedProtocolMutant guard(config.mutant);
  McRunResult result;
  McWorld world(config, sink);
  result.applied_all = true;
  for (const Choice& choice : schedule) {
    if (!world.apply(choice)) {
      result.applied_all = false;
      break;
    }
    ++result.applied;
    if (config.algebra && world.quiescent()) (void)world.check_algebra();
  }
  result.violations = world.violations();
  result.trace_crc = world.trace_crc();
  result.final_digest = world.digest();
  result.settled = world.settled();
  if (sink != nullptr) {
    for (const Violation& v : result.violations) {
      sink->record({CaptureRecordKind::kViolation, v.time, v.message()});
    }
    sink->record({CaptureRecordKind::kSummary, world.net().now(),
                  mc_capture_summary(result, schedule.size())});
  }
  return result;
}

McRunResult run_mc_schedule_captured(const McConfig& config,
                                     const std::vector<Choice>& schedule,
                                     CaptureSink& sink) {
  sink.record(
      {CaptureRecordKind::kSpec, 0, encode_mc_spec(config, schedule)});
  return run_mc_schedule(config, schedule, &sink);
}

std::string mc_capture_summary(const McRunResult& result,
                               std::size_t schedule_size) {
  std::string out;
  out += "crc " + hex32(result.trace_crc) + "\n";
  out += "choices " + std::to_string(schedule_size) + "\n";
  out += "applied " + std::to_string(result.applied) + "\n";
  out += "violations " + std::to_string(result.violations.size()) + "\n";
  out += "settled " + std::string(result.settled ? "1" : "0") + "\n";
  out += "digest " + hex64(result.final_digest);
  return out;
}

std::vector<Choice> witness_schedule(const McConfig& config) {
  ScopedProtocolMutant guard(config.mutant);
  McWorld world(config);
  std::vector<Choice> schedule;
  constexpr std::size_t kMaxRounds = 64;
  constexpr std::size_t kMaxChoices = 20000;

  for (std::size_t round = 0; round < kMaxRounds; ++round) {
    // Everyone takes a step (ring partner), then the network drains.
    const std::size_t n = world.sites();
    for (std::size_t s = 0; s < n; ++s) {
      const Choice step{ChoiceKind::kStep, static_cast<std::uint8_t>(s),
                        static_cast<std::uint8_t>((s + 1) % n)};
      if (world.apply(step)) schedule.push_back(step);
    }
    for (;;) {
      const std::vector<Choice> choices = world.enabled();
      const auto it =
          std::find_if(choices.begin(), choices.end(), [](const Choice& c) {
            return c.kind == ChoiceKind::kDeliver;
          });
      if (it == choices.end() || schedule.size() >= kMaxChoices) break;
      if (!world.apply(*it)) break;
      schedule.push_back(*it);
    }
    if (world.settled()) return schedule;
    if (schedule.size() >= kMaxChoices) break;
  }
  return {};
}

}  // namespace icecube::mc
