// McConfig + choice schedule <-> wire text, so an `.icap` counterexample
// is self-describing.
//
// The first frame of an mc capture is this spec; the replay engine
// (capture/replay_engine.cpp) recognises the "mc-spec" header keyword and
// re-drives the identical schedule through `run_mc_schedule`, which is a
// pure function of (config, schedule). Line-based "key value" text under
// a versioned header, like the chaos spec codec:
//
//   mc-spec 1
//   sites 3
//   mutant 1
//   choice step 0 1 0
//   choice deliver 0 1 0
//   ...
//
// Choice lines appear in schedule order. encode(decode(encode(x))) is
// byte-identical — the replay comparator relies on that.
#pragma once

#include <string>
#include <vector>

#include "mc/choice.hpp"
#include "mc/world.hpp"
#include "serialize/decode_error.hpp"

namespace icecube::mc {

/// One decoded spec (or why decoding failed).
struct McSpecDecode {
  McConfig config;
  std::vector<Choice> schedule;
  DecodeError error;
  [[nodiscard]] bool ok() const { return error.ok(); }
};

[[nodiscard]] std::string encode_mc_spec(const McConfig& config,
                                         const std::vector<Choice>& schedule);
[[nodiscard]] McSpecDecode decode_mc_spec(const std::string& text);

}  // namespace icecube::mc
