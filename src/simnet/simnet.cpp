#include "simnet/simnet.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace icecube {

SimNet::SimNet(std::uint64_t seed, FaultSpec spec)
    : faults_(seed, std::move(spec)) {}

void SimNet::add_site(const std::string& name) {
  assert(!name.empty());
  up_.emplace(name, true);
}

bool SimNet::has_site(const std::string& name) const {
  return up_.contains(name);
}

bool SimNet::is_up(const std::string& name) const {
  const auto it = up_.find(name);
  return it != up_.end() && it->second;
}

void SimNet::push(Event event) {
  event.seq = next_seq_++;
  queue_.push(std::move(event));
}

void SimNet::note(const std::string& line) {
  trace_crc_.update(line);
  trace_crc_.update("\n");
  if (keep_trace_) trace_.push_back(line);
  if (capture_ != nullptr) {
    capture_->record({CaptureRecordKind::kTrace, now_, line});
  }
}

std::string SimNet::link_key(const std::string& a, const std::string& b) {
  return a < b ? a + "|" + b : b + "|" + a;
}

void SimNet::schedule_timer(const std::string& site, std::size_t at) {
  assert(has_site(site));
  push({EventKind::kTimer, at, 0, site, {}, {}, 0});
}

void SimNet::schedule_crash(const std::string& site, std::size_t at) {
  assert(has_site(site));
  push({EventKind::kCrash, at, 0, site, {}, {}, 0});
}

void SimNet::schedule_restart(const std::string& site, std::size_t at) {
  assert(has_site(site));
  push({EventKind::kRestart, at, 0, site, {}, {}, 0});
}

void SimNet::schedule_partition(const std::string& a, const std::string& b,
                                std::size_t at, std::size_t heal_at) {
  assert(has_site(a) && has_site(b));
  assert(at < heal_at);
  push({EventKind::kCut, at, 0, a, b, {}, 0});
  push({EventKind::kHeal, heal_at, 0, a, b, {}, 0});
}

bool SimNet::link_open(const std::string& a, const std::string& b) {
  const std::string key = link_key(a, b);
  if (cut_links_.contains(key)) return false;
  if (!random_faults_active()) return true;
  const std::size_t window = now_ / partition_window_;
  const std::string memo = key + "@" + std::to_string(window);
  auto it = window_cuts_.find(memo);
  if (it == window_cuts_.end()) {
    it = window_cuts_.emplace(memo, faults_.link_cut(a, b, window)).first;
  }
  return !it->second;
}

std::uint64_t SimNet::send(const std::string& from, const std::string& to,
                           std::string payload) {
  assert(has_site(from) && has_site(to));
  const std::uint64_t id = ++next_msg_;
  const std::string pid =
      from + ">" + to + "#" + std::to_string(id);
  ++counters_.sent;

  if (!link_open(from, to)) {
    ++counters_.dropped_partition;
    note("t" + std::to_string(now_) + " cut-drop " + pid);
    return id;
  }
  if (random_faults_active() && faults_.delivery_fails(pid, now_)) {
    ++counters_.lost;
    note("t" + std::to_string(now_) + " lose " + pid);
    return id;
  }

  std::size_t extra = 0;
  if (random_faults_active()) {
    extra = faults_.delay(pid, now_);
    if (extra > 0) ++counters_.delayed;
  }
  note("t" + std::to_string(now_) + " send " + pid + " +" +
       std::to_string(extra));
  push({EventKind::kDeliver, now_ + 1 + extra, 0, to, from, payload, id});

  if (random_faults_active() && faults_.duplicates(pid, now_)) {
    ++counters_.duplicated;
    // The copy draws its own delay, so the two deliveries interleave
    // independently with other traffic.
    const std::size_t copy_extra = faults_.delay(pid + "'", now_);
    note("t" + std::to_string(now_) + " dup " + pid + " +" +
         std::to_string(copy_extra));
    push({EventKind::kDeliver, now_ + 1 + copy_extra, 0, to, from,
          std::move(payload), id});
  }
  return id;
}

std::optional<SimEvent> SimNet::step() {
  while (!queue_.empty()) {
    Event event = queue_.top();
    queue_.pop();
    if (event.time > now_) now_ = event.time;

    switch (event.kind) {
      case EventKind::kCrash:
        if (is_up(event.site)) {
          up_[event.site] = false;
          note("t" + std::to_string(now_) + " crash " + event.site);
        }
        continue;
      case EventKind::kRestart:
        if (has_site(event.site) && !is_up(event.site)) {
          up_[event.site] = true;
          note("t" + std::to_string(now_) + " restart " + event.site);
        }
        continue;
      case EventKind::kCut:
        cut_links_.insert(link_key(event.site, event.peer));
        note("t" + std::to_string(now_) + " cut " +
             link_key(event.site, event.peer));
        continue;
      case EventKind::kHeal:
        cut_links_.erase(link_key(event.site, event.peer));
        note("t" + std::to_string(now_) + " heal " +
             link_key(event.site, event.peer));
        continue;
      case EventKind::kTimer:
        ++counters_.timers;
        note("t" + std::to_string(now_) + " timer " + event.site);
        return SimEvent{SimEvent::Kind::kTimer, now_, event.site, {}, {}, 0};
      case EventKind::kDeliver: {
        const std::string pid = event.peer + ">" + event.site + "#" +
                                std::to_string(event.id);
        if (!is_up(event.site)) {
          ++counters_.dropped_down;
          note("t" + std::to_string(now_) + " down-drop " + pid);
          continue;
        }
        // Partitions cut in-flight traffic too: the link must be open at
        // delivery time, not just at send time.
        if (!link_open(event.peer, event.site)) {
          ++counters_.dropped_partition;
          note("t" + std::to_string(now_) + " cut-drop " + pid);
          continue;
        }
        ++counters_.delivered;
        note("t" + std::to_string(now_) + " deliver " + pid);
        return SimEvent{SimEvent::Kind::kDeliver, now_, event.site,
                        event.peer, std::move(event.payload), event.id};
      }
    }
  }
  return std::nullopt;
}

std::optional<SimNet::Event> SimNet::extract_delivery(std::uint64_t seq) {
  std::vector<Event> rest;
  rest.reserve(queue_.size());
  std::optional<Event> found;
  while (!queue_.empty()) {
    Event event = queue_.top();
    queue_.pop();
    if (!found && event.kind == EventKind::kDeliver && event.seq == seq) {
      found = std::move(event);
    } else {
      rest.push_back(std::move(event));
    }
  }
  // Re-queue directly (not via push()) so survivors keep their seq.
  for (Event& event : rest) queue_.push(std::move(event));
  return found;
}

std::vector<PendingDelivery> SimNet::pending_deliveries() const {
  auto copy = queue_;
  std::vector<PendingDelivery> out;
  while (!copy.empty()) {
    const Event& event = copy.top();
    if (event.kind == EventKind::kDeliver) {
      out.push_back({event.seq, event.time, event.peer, event.site,
                     event.payload, event.id});
    }
    copy.pop();
  }
  std::sort(out.begin(), out.end(),
            [](const PendingDelivery& a, const PendingDelivery& b) {
              return a.seq < b.seq;
            });
  return out;
}

std::optional<SimEvent> SimNet::take_delivery(std::uint64_t seq) {
  std::optional<Event> event = extract_delivery(seq);
  if (!event) return std::nullopt;
  if (event->time > now_) now_ = event->time;
  const std::string pid =
      event->peer + ">" + event->site + "#" + std::to_string(event->id);
  if (!is_up(event->site)) {
    ++counters_.dropped_down;
    note("t" + std::to_string(now_) + " down-drop " + pid);
    return std::nullopt;
  }
  if (!link_open(event->peer, event->site)) {
    ++counters_.dropped_partition;
    note("t" + std::to_string(now_) + " cut-drop " + pid);
    return std::nullopt;
  }
  ++counters_.delivered;
  note("t" + std::to_string(now_) + " deliver " + pid);
  return SimEvent{SimEvent::Kind::kDeliver, now_, event->site, event->peer,
                  std::move(event->payload), event->id};
}

bool SimNet::drop_delivery(std::uint64_t seq) {
  std::optional<Event> event = extract_delivery(seq);
  if (!event) return false;
  ++counters_.lost;
  note("t" + std::to_string(now_) + " mc-drop " + event->peer + ">" +
       event->site + "#" + std::to_string(event->id));
  return true;
}

std::optional<std::uint64_t> SimNet::duplicate_delivery(std::uint64_t seq) {
  std::optional<Event> event = extract_delivery(seq);
  if (!event) return std::nullopt;
  Event copy = *event;
  queue_.push(std::move(*event));  // the original keeps its handle
  ++counters_.duplicated;
  note("t" + std::to_string(now_) + " mc-dup " + copy.peer + ">" + copy.site +
       "#" + std::to_string(copy.id));
  const std::uint64_t new_seq = next_seq_;
  push(std::move(copy));
  return new_seq;
}

void SimNet::force_crash(const std::string& site) {
  assert(has_site(site));
  if (!is_up(site)) return;
  up_[site] = false;
  note("t" + std::to_string(now_) + " crash " + site);
}

void SimNet::force_restart(const std::string& site) {
  assert(has_site(site));
  if (is_up(site)) return;
  up_[site] = true;
  note("t" + std::to_string(now_) + " restart " + site);
}

void SimNet::force_cut(const std::string& a, const std::string& b) {
  assert(has_site(a) && has_site(b));
  const std::string key = link_key(a, b);
  if (!cut_links_.insert(key).second) return;
  note("t" + std::to_string(now_) + " cut " + key);
}

void SimNet::force_heal(const std::string& a, const std::string& b) {
  assert(has_site(a) && has_site(b));
  const std::string key = link_key(a, b);
  if (cut_links_.erase(key) == 0) return;
  note("t" + std::to_string(now_) + " heal " + key);
}

}  // namespace icecube
