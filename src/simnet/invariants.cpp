#include "simnet/invariants.hpp"

#include <utility>

namespace icecube {

namespace {

/// The protocol's commitment total order (mirrors replica/gossip.cpp).
bool commit_dominates(std::uint64_t epoch_a, const std::string& fp_a,
                      std::uint64_t epoch_b, const std::string& fp_b) {
  if (epoch_a != epoch_b) return epoch_a > epoch_b;
  return fp_a > fp_b;
}

}  // namespace

void InvariantChecker::flag(std::string kind, const std::string& site,
                            std::string detail, std::size_t time) {
  violations_.push_back(
      {std::move(kind), site, std::move(detail), time});
}

void InvariantChecker::observe(const GossipNode& node, std::size_t time) {
  ++observations_;
  // Change detection runs on the cached 64-bit digest; the fingerprint
  // string (an O(universe) concatenation) is only built below when the
  // committed state actually moved.
  const std::uint64_t fp_hash = node.committed_fingerprint_hash();

  // uid-unique: no action counted twice, in either log or across them.
  std::set<std::string> accounted;
  for (const std::string& uid : node.history_uids()) {
    if (!accounted.insert(uid).second) {
      flag("uid-unique", node.name(), "duplicate history uid " + uid, time);
    }
  }
  for (const std::string& uid : node.pending_uids()) {
    if (!accounted.insert(uid).second) {
      flag("uid-unique", node.name(),
           "pending uid also committed: " + uid, time);
    }
  }
  if (node.history_uids().size() != node.history().size() ||
      node.pending_uids().size() != node.pending().size()) {
    flag("uid-unique", node.name(), "uid/action count mismatch", time);
  }

  auto [it, first_sight] = tracks_.try_emplace(node.name());
  Track& track = it->second;
  if (first_sight) {
    track.epoch = node.epoch();
    track.fp_hash = fp_hash;
    track.fingerprint = node.committed_fingerprint();
    track.accounted = std::move(accounted);
    return;
  }

  // epoch-monotone.
  if (node.epoch() < track.epoch) {
    flag("epoch-monotone", node.name(),
         "epoch went " + std::to_string(track.epoch) + " -> " +
             std::to_string(node.epoch()),
         time);
  }

  // commit-order: any committed-state change must move strictly up the
  // commitment order. The dominance tiebreak is the protocol's
  // lexicographic fingerprint order, so the string is materialised here —
  // but only for actual changes.
  const bool changed =
      node.epoch() != track.epoch || fp_hash != track.fp_hash;
  const std::string fp =
      changed ? node.committed_fingerprint() : track.fingerprint;
  if (changed && !commit_dominates(node.epoch(), fp, track.epoch,
                                   track.fingerprint)) {
    flag("commit-order", node.name(),
         "new (epoch " + std::to_string(node.epoch()) +
             ") does not dominate old (epoch " +
             std::to_string(track.epoch) + ")",
         time);
  }

  // conservation: everything previously accounted for is still there.
  for (const std::string& uid : track.accounted) {
    if (!accounted.contains(uid)) {
      flag("conservation", node.name(), "lost action " + uid, time);
    }
  }

  // replay: the committed history really produces the committed state.
  if (changed && deep_replay_) {
    Universe replay = node.genesis();
    bool valid = true;
    std::size_t at = 0;
    for (const ActionPtr& action : node.history()) {
      if (!action->precondition(replay) || !action->execute(replay)) {
        valid = false;
        break;
      }
      ++at;
    }
    if (!valid) {
      flag("replay", node.name(),
           "history action " + std::to_string(at) +
               " fails to replay from genesis",
           time);
    } else if (replay.fingerprint_hash() != fp_hash) {
      flag("replay", node.name(),
           "replayed fingerprint differs from committed state", time);
    }
  }

  track.epoch = node.epoch();
  track.fp_hash = fp_hash;
  track.fingerprint = fp;
  track.accounted = std::move(accounted);
}

void InvariantChecker::check_converged(const std::vector<GossipNode>& nodes,
                                       std::size_t time) {
  if (nodes.empty()) return;
  const std::uint64_t fp = nodes.front().committed_fingerprint_hash();
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    if (nodes[i].committed_fingerprint_hash() != fp) {
      flag("convergence", nodes[i].name(),
           "committed state differs from " + nodes.front().name(), time);
    }
  }
}

}  // namespace icecube
