#include "simnet/invariants.hpp"

#include <algorithm>
#include <utility>

namespace icecube {

namespace {

/// The protocol's commitment total order (mirrors replica/gossip.cpp).
bool commit_dominates(std::uint64_t epoch_a, const std::string& fp_a,
                      std::uint64_t epoch_b, const std::string& fp_b) {
  if (epoch_a != epoch_b) return epoch_a > epoch_b;
  return fp_a > fp_b;
}

}  // namespace

void InvariantChecker::flag(std::string kind, const std::string& site,
                            std::string detail, std::size_t time) {
  violations_.push_back(
      {std::move(kind), site, std::move(detail), time});
}

void InvariantChecker::observe(const GossipNode& node, std::size_t time) {
  ++observations_;
  // Change detection runs on the cached 64-bit digest; the fingerprint
  // string (an O(universe) concatenation) is only built below when the
  // committed state actually moved.
  const std::uint64_t fp_hash = node.committed_fingerprint_hash();

  // uid-unique: no action counted twice, in either log or across them.
  std::set<std::string> accounted;
  for (const std::string& uid : node.history_uids()) {
    if (!accounted.insert(uid).second) {
      flag("uid-unique", node.name(), "duplicate history uid " + uid, time);
    }
  }
  for (const std::string& uid : node.pending_uids()) {
    if (!accounted.insert(uid).second) {
      flag("uid-unique", node.name(),
           "pending uid also committed: " + uid, time);
    }
  }
  if (node.history_uids().size() != node.history().size() ||
      node.pending_uids().size() != node.pending().size()) {
    flag("uid-unique", node.name(), "uid/action count mismatch", time);
  }

  auto [it, first_sight] = tracks_.try_emplace(node.name());
  Track& track = it->second;
  if (first_sight) {
    track.epoch = node.epoch();
    track.fp_hash = fp_hash;
    track.fingerprint = node.committed_fingerprint();
    track.accounted = std::move(accounted);
    return;
  }

  // epoch-monotone.
  if (node.epoch() < track.epoch) {
    flag("epoch-monotone", node.name(),
         "epoch went " + std::to_string(track.epoch) + " -> " +
             std::to_string(node.epoch()),
         time);
  }

  // commit-order: any committed-state change must move strictly up the
  // commitment order. The dominance tiebreak is the protocol's
  // lexicographic fingerprint order, so the string is materialised here —
  // but only for actual changes.
  const bool changed =
      node.epoch() != track.epoch || fp_hash != track.fp_hash;
  const std::string fp =
      changed ? node.committed_fingerprint() : track.fingerprint;
  if (changed && !commit_dominates(node.epoch(), fp, track.epoch,
                                   track.fingerprint)) {
    flag("commit-order", node.name(),
         "new (epoch " + std::to_string(node.epoch()) +
             ") does not dominate old (epoch " +
             std::to_string(track.epoch) + ")",
         time);
  }

  // conservation: everything previously accounted for is still there.
  for (const std::string& uid : track.accounted) {
    if (!accounted.contains(uid)) {
      flag("conservation", node.name(), "lost action " + uid, time);
    }
  }

  // replay: the committed history really produces the committed state.
  if (changed && deep_replay_) {
    Universe replay = node.genesis();
    bool valid = true;
    std::size_t at = 0;
    for (const ActionPtr& action : node.history()) {
      if (!action->precondition(replay) || !action->execute(replay)) {
        valid = false;
        break;
      }
      ++at;
    }
    if (!valid) {
      flag("replay", node.name(),
           "history action " + std::to_string(at) +
               " fails to replay from genesis",
           time);
    } else if (replay.fingerprint_hash() != fp_hash) {
      flag("replay", node.name(),
           "replayed fingerprint differs from committed state", time);
    }
  }

  track.epoch = node.epoch();
  track.fp_hash = fp_hash;
  track.fingerprint = fp;
  track.accounted = std::move(accounted);
}

void CommitInvariantChecker::flag(std::string kind, const std::string& site,
                                  std::string detail, std::size_t time) {
  violations_.push_back({std::move(kind), site, std::move(detail), time});
}

namespace {

/// True iff `a` is a prefix of `b` or vice versa.
bool prefix_ordered(const std::vector<std::string>& a,
                    const std::vector<std::string>& b) {
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

}  // namespace

void CommitInvariantChecker::observe(const CommitEngine& engine,
                                     std::size_t time) {
  ++observations_;
  const std::string& site = engine.site();

  // vote-unique: one slot, one id. The engine keeps equivocated votes
  // (knowledge is grow-only), so the offence stays visible; report it
  // once per slot, not once per observation.
  for (const auto& [key, ids] : engine.votes()) {
    if (ids.size() <= 1) continue;
    const std::string slot = key.voter + "/" + std::to_string(key.election) +
                             "/" + std::to_string(key.runoff);
    if (!flagged_slots_.insert(slot).second) continue;
    flag("vote-unique", site,
         "voter '" + key.voter + "' cast " + std::to_string(ids.size()) +
             " different votes in election " + std::to_string(key.election) +
             " runoff " + std::to_string(key.runoff),
         time);
  }

  // commit-irrevocable: the decided sequence only extends.
  const std::vector<std::string>& decided = engine.decided();
  Track& track = tracks_[site];
  if (decided.size() < track.decided.size() ||
      !std::equal(track.decided.begin(), track.decided.end(),
                  decided.begin())) {
    flag("commit-irrevocable", site,
         "decided sequence shrank or changed (was " +
             std::to_string(track.decided.size()) + " decisions, now " +
             std::to_string(decided.size()) + ")",
         time);
  }
  track.decided = decided;

  // stable-prefix: the agreed schedule is what the node executes.
  const std::vector<std::string>& stable = engine.stable_uids();
  const std::vector<std::string>& hist = engine.node().history_uids();
  if (hist.size() < stable.size() ||
      !std::equal(stable.begin(), stable.end(), hist.begin())) {
    flag("stable-prefix", site,
         "node history does not carry the decided prefix (stable " +
             std::to_string(stable.size()) + " uids, history " +
             std::to_string(hist.size()) + ")",
         time);
  }

  // commit-divergence: globally, all decided sequences are prefix-ordered.
  if (!prefix_ordered(decided, champion_)) {
    flag("commit-divergence", site,
         "decided sequence conflicts with site '" + champion_site_ + "'",
         time);
  } else if (decided.size() > champion_.size()) {
    champion_ = decided;
    champion_site_ = site;
  }
}

void CommitInvariantChecker::check_commit_converged(
    const std::vector<CommitEngine>& engines, std::size_t time) {
  if (engines.empty()) return;
  const std::vector<std::string>& reference = engines.front().decided();
  for (std::size_t i = 1; i < engines.size(); ++i) {
    if (engines[i].decided() != reference) {
      flag("commit-convergence", engines[i].site(),
           "decided " + std::to_string(engines[i].decided().size()) +
               " elections, site '" + engines.front().site() + "' decided " +
               std::to_string(reference.size()),
           time);
    }
  }
}

void InvariantChecker::check_converged(const std::vector<GossipNode>& nodes,
                                       std::size_t time) {
  if (nodes.empty()) return;
  const std::uint64_t fp = nodes.front().committed_fingerprint_hash();
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    if (nodes[i].committed_fingerprint_hash() != fp) {
      flag("convergence", nodes[i].name(),
           "committed state differs from " + nodes.front().name(), time);
    }
  }
}

}  // namespace icecube
