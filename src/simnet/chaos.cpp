#include "simnet/chaos.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "objects/counter.hpp"
#include "util/rng.hpp"

namespace icecube {

namespace {

/// Decision streams for the runner itself (workload content, partner
/// choice), independent of the FaultPlan's streams.
std::uint64_t mix(std::uint64_t seed, std::uint64_t salt, std::uint64_t a,
                  std::uint64_t b) {
  std::uint64_t s = seed ^ (salt * 0x9E3779B97F4A7C15ULL);
  s ^= (a + 1) * 0xBF58476D1CE4E5B9ULL;
  s ^= (b + 1) * 0x94D049BB133111EBULL;
  return s;
}

std::string json_escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xF];
          out += kHex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string hex32(std::uint32_t v) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out(8, '0');
  for (int i = 7; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHex[v & 0xFu];
    v >>= 4;
  }
  return out;
}

}  // namespace

std::string chaos_site_name(std::size_t index) {
  return "s" + std::to_string(index);
}

ChaosReport run_chaos(const ChaosSpec& spec) {
  // Gossip needs a partner; the interval must advance the clock.
  const std::size_t n = std::max<std::size_t>(spec.sites, 2);
  const std::size_t interval = std::max<std::size_t>(spec.gossip_interval, 1);

  ChaosReport report;
  report.seed = spec.seed;
  report.sites = n;

  // The workload object: a single budget counter with a floor high enough
  // that decrements never fail their dynamic constraint at this scale —
  // every performed action stays committable, so full convergence drains
  // every pending log.
  Universe genesis;
  genesis.add(std::make_unique<Counter>(10000));

  std::vector<std::string> names;
  names.reserve(n);
  for (std::size_t i = 0; i < n; ++i) names.push_back(chaos_site_name(i));

  GossipOptions gossip_options;
  gossip_options.reconcile = spec.reconcile;
  std::vector<GossipNode> nodes;
  nodes.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    nodes.emplace_back(names[i], genesis, gossip_options);
  }

  // The commitment layer rides along: one engine per node, frames on the
  // same simulated network. `nodes` must not reallocate from here on
  // (each engine holds a reference).
  std::vector<CommitEngine> engines;
  if (spec.commitment) {
    CommitOptions commit_options;
    commit_options.auth_seed = spec.seed;
    engines.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      engines.emplace_back(nodes[i], n, commit_options);
    }
  }

  SimNet net(spec.seed, spec.faults);
  net.set_fault_horizon(spec.fault_horizon);
  net.set_partition_window(spec.partition_window);
  net.set_trace_retention(spec.keep_trace);
  net.set_capture(spec.capture);
  // Capture emission helpers; no-ops without a sink. Frames are recorded
  // with the exact bytes handed to the network (post ship-faults), so a
  // replay comparison is byte-for-byte.
  const auto capture_frame = [&](CaptureRecordKind kind,
                                 const std::string& from,
                                 const std::string& to,
                                 const std::string& payload) {
    if (spec.capture == nullptr) return;
    spec.capture->record(
        {kind, net.now(), from + ">" + to + "\n" + payload});
  };
  for (const std::string& name : names) net.add_site(name);
  // Stagger the first ticks so sites never move in lockstep.
  for (std::size_t i = 0; i < n; ++i) net.schedule_timer(names[i], 1 + i);

  // Convergence is only demanded once every disruption is over.
  std::size_t quiet_time = spec.fault_horizon;

  for (const ChaosPartition& p : spec.partitions) {
    if (!net.has_site(p.a) || !net.has_site(p.b) || p.heal_at <= p.at) {
      continue;
    }
    net.schedule_partition(p.a, p.b, p.at, p.heal_at);
    quiet_time = std::max(quiet_time, p.heal_at);
  }
  for (const ChaosCrash& c : spec.crashes) {
    if (!net.has_site(c.site) || c.restart_at <= c.at) continue;
    net.schedule_crash(c.site, c.at);
    net.schedule_restart(c.site, c.restart_at);
    quiet_time = std::max(quiet_time, c.restart_at);
  }

  // Random crash/recovery cycles drawn from FaultSpec::site_down, one
  // decision per crash window per site, always with a restart.
  const std::size_t crash_len = std::max<std::size_t>(spec.crash_length, 1);
  const std::size_t crash_window = crash_len * 2;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t w = 0; w * crash_window < spec.fault_horizon; ++w) {
      if (!net.faults().site_down(names[i], w)) continue;
      const std::size_t at = w * crash_window + 1;
      net.schedule_crash(names[i], at);
      net.schedule_restart(names[i], at + crash_len);
      quiet_time = std::max(quiet_time, at + crash_len);
    }
  }

  InvariantChecker checker(spec.deep_replay);
  CommitInvariantChecker commit_checker;
  for (std::size_t i = 0; i < n; ++i) {
    checker.observe(nodes[i], 0);
    if (spec.commitment) commit_checker.observe(engines[i], 0);
  }

  std::vector<std::size_t> remaining(n, spec.actions_per_site);
  std::vector<std::uint64_t> workload_seq(n, 0);
  const auto site_index = [&](const std::string& name) {
    return static_cast<std::size_t>(
        std::find(names.begin(), names.end(), name) - names.begin());
  };

  while (report.steps < spec.step_budget) {
    auto event = net.step();
    if (!event) break;
    ++report.steps;
    const std::size_t i = site_index(event->site);
    GossipNode& node = nodes[i];

    if (event->kind == SimEvent::Kind::kTimer) {
      if (net.is_up(event->site)) {
        if (remaining[i] > 0) {
          const std::uint64_t seq = workload_seq[i]++;
          Rng rng(mix(spec.seed, 0xA5, i, seq));
          ActionPtr action;
          if (rng.below(4) == 0) {
            action = std::make_shared<DecrementAction>(
                ObjectId(0), static_cast<std::int64_t>(1 + rng.below(3)));
          } else {
            action = std::make_shared<IncrementAction>(
                ObjectId(0), static_cast<std::int64_t>(1 + rng.below(5)));
          }
          --remaining[i];
          if (spec.capture != nullptr) {
            spec.capture->record({CaptureRecordKind::kAction, net.now(),
                                  names[i] + " " + std::to_string(seq) +
                                      " " + action->describe()});
          }
          if (node.perform(std::move(action))) ++report.total_actions;
        }
        Rng partner_rng(mix(spec.seed, 0xB7, i, net.now()));
        std::size_t partner = partner_rng.below(n - 1);
        if (partner >= i) ++partner;
        {
          std::string payload = node.make_message(&net.faults(), net.now());
          capture_frame(CaptureRecordKind::kGossipFrame, event->site,
                        names[partner], payload);
          net.send(event->site, names[partner], std::move(payload));
        }
        if (spec.commitment) {
          engines[i].tick();
          // A drop-vote fault withholds this slot's commitment frame —
          // the knowledge is durable and re-announced next tick.
          if (!net.faults().vote_dropped(event->site, net.now())) {
            std::string payload =
                engines[i].make_message(&net.faults(), net.now());
            capture_frame(CaptureRecordKind::kCommitFrame, event->site,
                          names[partner], payload);
            net.send(event->site, names[partner], std::move(payload));
          }
        }
      }
      net.schedule_timer(event->site, net.now() + interval);
    } else if (spec.commitment && is_commit_frame(event->payload)) {
      const CommitReceipt receipt = engines[i].receive(event->payload);
      if (receipt.reply_advised && net.is_up(event->from)) {
        std::string payload =
            engines[i].make_message(&net.faults(), net.now());
        capture_frame(CaptureRecordKind::kCommitFrame, event->site,
                      event->from, payload);
        net.send(event->site, event->from, std::move(payload));
      }
    } else {
      const GossipReceipt receipt = node.receive(event->payload);
      if (receipt.reply_advised() && net.is_up(event->from)) {
        std::string payload = node.make_message(&net.faults(), net.now());
        capture_frame(CaptureRecordKind::kGossipFrame, event->site,
                      event->from, payload);
        net.send(event->site, event->from, std::move(payload));
      }
    }

    checker.observe(node, net.now());
    if (spec.commitment) commit_checker.observe(engines[i], net.now());

    if (net.now() >= quiet_time) {
      const bool workload_done =
          std::all_of(remaining.begin(), remaining.end(),
                      [](std::size_t r) { return r == 0; });
      const bool all_up = std::all_of(
          names.begin(), names.end(),
          [&](const std::string& s) { return net.is_up(s); });
      const bool drained = std::all_of(
          nodes.begin(), nodes.end(),
          [](const GossipNode& g) { return g.pending().empty(); });
      // With commitment on, sharing state is not enough: every committed
      // action must also have become irrevocable at every site.
      const bool all_stable =
          !spec.commitment ||
          (commit_converged(engines) &&
           std::all_of(engines.begin(), engines.end(),
                       [](const CommitEngine& e) {
                         return e.stable_uids().size() ==
                                e.node().history().size();
                       }));
      if (workload_done && all_up && drained && all_stable &&
          gossip_converged(nodes)) {
        report.converged = true;
        report.converged_at = net.now();
        break;
      }
    }
  }

  report.final_time = net.now();
  if (!report.converged) {
    checker.check_converged(nodes, net.now());
    if (spec.commitment) {
      commit_checker.check_commit_converged(engines, net.now());
    }
  }
  report.violations = checker.violations();
  report.violations.insert(report.violations.end(),
                           commit_checker.violations().begin(),
                           commit_checker.violations().end());
  report.observations =
      checker.observations() + commit_checker.observations();
  for (const GossipNode& node : nodes) {
    report.totals.performs += node.stats().performs;
    report.totals.merges += node.stats().merges;
    report.totals.merge_noops += node.stats().merge_noops;
    report.totals.merge_aborted += node.stats().merge_aborted;
    report.totals.transfers += node.stats().transfers;
    report.totals.demotions += node.stats().demotions;
    report.totals.quarantines += node.stats().quarantines;
    report.totals.stale_heard += node.stats().stale_heard;
    report.totals.stable_conflicts += node.stats().stable_conflicts;
    report.max_epoch = std::max(report.max_epoch, node.epoch());
  }
  for (const CommitEngine& engine : engines) {
    const CommitStats& s = engine.stats();
    report.commit_totals.proposals_made += s.proposals_made;
    report.commit_totals.votes_cast += s.votes_cast;
    report.commit_totals.runoff_votes += s.runoff_votes;
    report.commit_totals.decisions += s.decisions;
    report.commit_totals.fast_forwards += s.fast_forwards;
    report.commit_totals.rebases += s.rebases;
    report.commit_totals.rebase_failures += s.rebase_failures;
    report.commit_totals.frames_received += s.frames_received;
    report.commit_totals.quarantines += s.quarantines;
    report.commit_totals.records_learned += s.records_learned;
    report.stable_height =
        std::max(report.stable_height, engine.stable_height());
    report.stable_actions =
        std::max(report.stable_actions, engine.stable_uids().size());
  }
  if (report.converged) {
    report.final_fingerprint = nodes.front().committed_fingerprint();
  }
  report.net = net.counters();
  report.injected_faults = net.faults().injected().size();
  report.trace_crc = net.trace_crc();
  if (spec.keep_trace) report.trace = net.trace();
  if (spec.capture != nullptr) {
    for (const Violation& v : report.violations) {
      spec.capture->record(
          {CaptureRecordKind::kViolation, v.time, v.message()});
    }
    spec.capture->record({CaptureRecordKind::kSummary, report.final_time,
                          chaos_capture_summary(report)});
  }
  return report;
}

std::string chaos_capture_summary(const ChaosReport& report) {
  std::string out;
  out += "crc " + hex32(report.trace_crc) + "\n";
  out += "steps " + std::to_string(report.steps) + "\n";
  out += "converged " + std::string(report.converged ? "1" : "0") + "\n";
  out += "converged-at " + std::to_string(report.converged_at) + "\n";
  out += "final-time " + std::to_string(report.final_time) + "\n";
  out += "actions " + std::to_string(report.total_actions) + "\n";
  out += "violations " + std::to_string(report.violations.size()) + "\n";
  // Raw and last: the fingerprint may contain anything, including
  // newlines; byte comparison is all a replay needs.
  out += "fingerprint " + report.final_fingerprint;
  return out;
}

std::string ChaosReport::to_json() const {
  std::string out = "{";
  const auto field = [&out](const std::string& key, const std::string& value,
                            bool quote) {
    if (out.size() > 1) out += ",";
    out += "\"" + key + "\":";
    if (quote) {
      out += "\"" + value + "\"";
    } else {
      out += value;
    }
  };
  field("seed", std::to_string(seed), false);
  field("sites", std::to_string(sites), false);
  field("converged", converged ? "true" : "false", false);
  field("converged_at", std::to_string(converged_at), false);
  field("steps", std::to_string(steps), false);
  field("final_time", std::to_string(final_time), false);
  field("total_actions", std::to_string(total_actions), false);
  field("max_epoch", std::to_string(max_epoch), false);
  field("observations", std::to_string(observations), false);
  field("injected_faults", std::to_string(injected_faults), false);
  field("trace_crc", hex32(trace_crc), true);
  field("final_fingerprint", json_escape(final_fingerprint), true);

  std::string violations_json = "[";
  for (std::size_t i = 0; i < violations.size(); ++i) {
    if (i > 0) violations_json += ",";
    const Violation& v = violations[i];
    violations_json += "{\"kind\":\"" + json_escape(v.kind) +
                       "\",\"site\":\"" + json_escape(v.site) +
                       "\",\"detail\":\"" + json_escape(v.detail) +
                       "\",\"time\":" + std::to_string(v.time) + "}";
  }
  violations_json += "]";
  field("violations", violations_json, false);

  field("stats",
        "{\"performs\":" + std::to_string(totals.performs) +
            ",\"merges\":" + std::to_string(totals.merges) +
            ",\"merge_noops\":" + std::to_string(totals.merge_noops) +
            ",\"merge_aborted\":" + std::to_string(totals.merge_aborted) +
            ",\"transfers\":" + std::to_string(totals.transfers) +
            ",\"demotions\":" + std::to_string(totals.demotions) +
            ",\"quarantines\":" + std::to_string(totals.quarantines) +
            ",\"stale_heard\":" + std::to_string(totals.stale_heard) +
            ",\"stable_conflicts\":" +
            std::to_string(totals.stable_conflicts) + "}",
        false);
  field("commit",
        "{\"stable_height\":" + std::to_string(stable_height) +
            ",\"stable_actions\":" + std::to_string(stable_actions) +
            ",\"proposals\":" +
            std::to_string(commit_totals.proposals_made) +
            ",\"votes\":" + std::to_string(commit_totals.votes_cast) +
            ",\"runoff_votes\":" +
            std::to_string(commit_totals.runoff_votes) +
            ",\"decisions\":" + std::to_string(commit_totals.decisions) +
            ",\"fast_forwards\":" +
            std::to_string(commit_totals.fast_forwards) +
            ",\"rebases\":" + std::to_string(commit_totals.rebases) +
            ",\"rebase_failures\":" +
            std::to_string(commit_totals.rebase_failures) +
            ",\"frames\":" + std::to_string(commit_totals.frames_received) +
            ",\"quarantines\":" +
            std::to_string(commit_totals.quarantines) + "}",
        false);
  field("net",
        "{\"sent\":" + std::to_string(net.sent) +
            ",\"delivered\":" + std::to_string(net.delivered) +
            ",\"lost\":" + std::to_string(net.lost) +
            ",\"duplicated\":" + std::to_string(net.duplicated) +
            ",\"delayed\":" + std::to_string(net.delayed) +
            ",\"dropped_partition\":" +
            std::to_string(net.dropped_partition) +
            ",\"dropped_down\":" + std::to_string(net.dropped_down) +
            ",\"timers\":" + std::to_string(net.timers) + "}",
        false);
  out += "}";
  return out;
}

}  // namespace icecube
