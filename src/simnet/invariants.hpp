// Convergence invariants, checked after every simulated event.
//
// The chaos harness is only as strong as what it asserts. This checker
// watches every `GossipNode` between events and enforces the protocol's
// safety contract:
//
//   conservation   — the set of actions a site accounts for (committed
//                    history ∪ pending log, by uid) never shrinks. An
//                    action may be demoted from committed back to pending
//                    during a state transfer, but it can never silently
//                    vanish. "No committed action is ever lost."
//   epoch-monotone — a site's commitment epoch never decreases.
//   commit-order   — whenever a site's committed state changes, the new
//                    (epoch, fingerprint) pair strictly dominates the old
//                    one in the protocol's commitment total order; merges
//                    strictly grow the epoch, transfers only move *up* the
//                    order. Together with epoch-monotone this rules out
//                    commitment cycles (A adopts B adopts A ...).
//   uid-unique     — history and pending uids are duplicate-free and
//                    mutually disjoint: no action is counted twice.
//   replay         — (optional, deep) after every committed-state change
//                    the site's history, replayed from genesis, reproduces
//                    its committed fingerprint exactly: adopted schedules
//                    are valid, not just claimed.
//
// and, at the end of a run,
//
//   convergence    — all sites report byte-identical committed
//                    fingerprints (checked by the runner once the network
//                    is quiet and every partition has healed).
//
// Violations are collected, not thrown, so one run reports everything it
// finds along with the simulated time of each offence.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "replica/commit.hpp"
#include "replica/gossip.hpp"

namespace icecube {

/// One invariant offence, with enough context to locate it in the trace.
struct Violation {
  std::string kind;    ///< "conservation", "epoch-monotone", ...
  std::string site;    ///< offending site; empty for group-level checks
  std::string detail;  ///< human-readable specifics
  std::size_t time = 0;  ///< simulated time of the observation

  [[nodiscard]] std::string message() const {
    std::string out = kind;
    if (!site.empty()) out += " [site '" + site + "']";
    if (!detail.empty()) out += ": " + detail;
    return out + " @t" + std::to_string(time);
  }
};

/// Observes nodes between events; see file comment.
class InvariantChecker {
 public:
  /// With `deep_replay`, every committed-state change triggers a full
  /// history replay from genesis (quadratic over a run, fine at test
  /// scale; switch off for long benches).
  explicit InvariantChecker(bool deep_replay = true)
      : deep_replay_(deep_replay) {}

  /// Call after any event that may have touched `node`.
  void observe(const GossipNode& node, std::size_t time);

  /// Final check: all nodes on byte-identical committed fingerprints.
  void check_converged(const std::vector<GossipNode>& nodes,
                       std::size_t time);

  [[nodiscard]] const std::vector<Violation>& violations() const {
    return violations_;
  }
  [[nodiscard]] bool ok() const { return violations_.empty(); }
  /// Number of observe() calls, for reports.
  [[nodiscard]] std::size_t observations() const { return observations_; }

 private:
  struct Track {
    std::uint64_t epoch = 0;
    /// Cached 64-bit digest: change detection and the deep-replay compare
    /// run on this (Universe::fingerprint_hash — collisions ~2⁻⁶⁴,
    /// accepted). The string form is only materialised when the state
    /// actually changed, for the commit-order dominance tiebreak, which is
    /// protocol-semantic and stays on the full fingerprint.
    std::uint64_t fp_hash = 0;
    std::string fingerprint;
    std::set<std::string> accounted;  ///< history ∪ pending uids
  };

  void flag(std::string kind, const std::string& site, std::string detail,
            std::size_t time);

  bool deep_replay_;
  std::size_t observations_ = 0;
  std::map<std::string, Track> tracks_;
  std::vector<Violation> violations_;
};

/// Safety contract of the decentralised commitment layer
/// (replica/commit.hpp), observed engine by engine between events:
///
///   vote-unique        — no voter fills one (election, runoff) slot with
///                        two different proposal ids (equivocation is
///                        outside the crash/partition failure model).
///   commit-irrevocable — an engine's decided sequence only ever extends;
///                        a decision, once derived, is never revoked or
///                        replaced.
///   stable-prefix      — the engine's decided stable prefix is carried
///                        verbatim at the front of its node's committed
///                        history: what was agreed is what is executed.
///   commit-divergence  — across *all* engines, any two decided sequences
///                        are prefix-ordered: no two sites ever commit
///                        divergent prefixes, even transiently, even
///                        mid-partition.
///
/// and, at the end of a run,
///
///   commit-convergence — every engine derived the identical decision
///                        sequence and every node carries it.
class CommitInvariantChecker {
 public:
  /// Call after any event that may have touched `engine` (or its node).
  void observe(const CommitEngine& engine, std::size_t time);

  /// Final check; see class comment.
  void check_commit_converged(const std::vector<CommitEngine>& engines,
                              std::size_t time);

  [[nodiscard]] const std::vector<Violation>& violations() const {
    return violations_;
  }
  [[nodiscard]] bool ok() const { return violations_.empty(); }
  [[nodiscard]] std::size_t observations() const { return observations_; }

 private:
  struct Track {
    std::vector<std::string> decided;  ///< last decided sequence seen
  };

  void flag(std::string kind, const std::string& site, std::string detail,
            std::size_t time);

  std::size_t observations_ = 0;
  std::map<std::string, Track> tracks_;
  /// The longest decided sequence seen anywhere, and who produced it —
  /// every other sequence must be prefix-comparable against it.
  std::vector<std::string> champion_;
  std::string champion_site_;
  /// Equivocations already reported (slot key), so one faulty vote pair
  /// does not flood the report once it gossips everywhere.
  std::set<std::string> flagged_slots_;
  std::vector<Violation> violations_;
};

}  // namespace icecube
