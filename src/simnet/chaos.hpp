// Chaos harness: gossip nodes on the simulated network, under fire.
//
// One `run_chaos` call wires a group of `GossipNode`s (replica/gossip.hpp)
// onto a `SimNet` (simnet/simnet.hpp), drives a seeded workload of counter
// updates through seed-chosen gossip partners, injects the full fault
// menu — message loss, delay, reordering, duplication, payload corruption
// and truncation, random and scheduled link partitions, site crashes with
// restarts — and checks the `InvariantChecker` contract after every event.
//
// The run converges when, after the fault horizon and every scheduled
// heal/restart, all sites are up, the whole workload is committed
// everywhere (no pending actions anywhere) and every committed fingerprint
// is byte-identical. A run that exhausts its step budget first reports
// the divergence as a violation. Because every decision derives from the
// seed, a failing (seed, spec) pair replays its exact event sequence —
// compare `ChaosReport::trace_crc` across runs to prove it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "capture/capture_sink.hpp"
#include "core/options.hpp"
#include "fault/fault_plan.hpp"
#include "replica/commit.hpp"
#include "replica/gossip.hpp"
#include "simnet/invariants.hpp"
#include "simnet/simnet.hpp"

namespace icecube {

/// A scheduled link cut with its heal time.
struct ChaosPartition {
  std::string a;
  std::string b;
  std::size_t at = 0;
  std::size_t heal_at = 0;
};

/// A scheduled crash with its restart time.
struct ChaosCrash {
  std::string site;
  std::size_t at = 0;
  std::size_t restart_at = 0;
};

/// Everything one chaos run depends on. Same spec, same report.
struct ChaosSpec {
  std::uint64_t seed = 1;
  std::size_t sites = 4;  ///< clamped to >= 2 (gossip needs a partner)
  /// Counter updates each site performs, one per gossip tick.
  std::size_t actions_per_site = 6;
  std::size_t gossip_interval = 4;  ///< ticks between a site's timers
  std::size_t step_budget = 50000;  ///< external events before giving up
  /// Sim-time after which random faults stop (see SimNet); scheduled
  /// partitions/crashes should fit below it too for convergence runs.
  std::size_t fault_horizon = 400;
  std::size_t partition_window = 16;  ///< random link cut window width
  std::size_t crash_length = 24;      ///< duration of random crashes
  bool deep_replay = true;  ///< replay-validate every commit (see checker)
  bool keep_trace = true;   ///< retain trace lines (CRC always computed)
  /// Run the decentralised commitment protocol (replica/commit.hpp) on
  /// top of gossip: every site drives a CommitEngine, commit frames ride
  /// the same simulated network (with FaultSpec::drop_vote /
  /// stale_vote), the commitment invariants are checked after every
  /// event, and convergence additionally demands that every committed
  /// action became *stable* (irrevocable) everywhere.
  bool commitment = true;
  FaultSpec faults;         ///< loss/corrupt/.../partition probabilities
  std::vector<ChaosPartition> partitions;  ///< scheduled cuts
  std::vector<ChaosCrash> crashes;         ///< scheduled crashes
  ReconcilerOptions reconcile;  ///< forwarded to every node's merges
  /// Observation stream (capture/capture_sink.hpp): when set, the run
  /// records every simnet decision, ingested action, gossip/commit frame
  /// as sent, invariant violation and the end-of-run summary. A pure
  /// observer — attaching one cannot change the event sequence — and NOT
  /// part of the run's identity (two runs differing only here emit
  /// identical traces). Not owned; callers wanting a self-describing
  /// capture file record the serialized spec first (see
  /// capture/replay_engine.hpp's run_chaos_captured).
  CaptureSink* capture = nullptr;
};

/// What one run did and found.
struct ChaosReport {
  std::uint64_t seed = 0;
  std::size_t sites = 0;
  bool converged = false;
  std::size_t converged_at = 0;  ///< sim time of convergence (if any)
  std::size_t steps = 0;         ///< external events processed
  std::size_t final_time = 0;    ///< clock when the run ended
  std::size_t total_actions = 0;  ///< workload actions performed
  std::uint64_t max_epoch = 0;
  std::string final_fingerprint;  ///< set iff converged
  std::vector<Violation> violations;
  GossipStats totals;  ///< summed over all nodes
  CommitStats commit_totals;  ///< summed over all engines (if commitment)
  std::uint64_t stable_height = 0;  ///< max elections decided at any site
  std::size_t stable_actions = 0;   ///< irrevocable actions at run end
  SimCounters net;
  std::size_t injected_faults = 0;  ///< FaultPlan records
  std::size_t observations = 0;     ///< invariant checks performed
  std::uint32_t trace_crc = 0;      ///< replay-determinism witness
  /// Full event trace (only with ChaosSpec::keep_trace).
  std::vector<std::string> trace;

  [[nodiscard]] bool ok() const { return converged && violations.empty(); }
  /// Machine-readable rendering of the whole report (one JSON object).
  [[nodiscard]] std::string to_json() const;
};

/// Site names are "s0", "s1", ... — use this in ChaosSpec schedules.
[[nodiscard]] std::string chaos_site_name(std::size_t index);

/// Payload of the kSummary capture record: the run's replay witnesses
/// (trace CRC first) in "key value" lines, fingerprint last (raw, may span
/// lines). Byte-stable for a given report.
[[nodiscard]] std::string chaos_capture_summary(const ChaosReport& report);

/// Runs one chaos scenario; see file comment.
[[nodiscard]] ChaosReport run_chaos(const ChaosSpec& spec);

}  // namespace icecube
