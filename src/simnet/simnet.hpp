// A deterministic discrete-event network simulator.
//
// The asynchronous protocol (replica/gossip.hpp) makes no timing
// assumptions, which means no real network can exercise its interesting
// interleavings on demand. This simulator can: it owns a logical clock and
// an event queue ordered by (time, sequence), so a (seed, topology, fault
// spec) triple replays the exact same event sequence every run — a failing
// chaos seed is a unit test, not a flake.
//
// The runner drives the loop: `step()` pops the next *external* event — a
// site timer or a message delivery — and hands it back; control events
// (crashes, restarts, partition cuts and heals) are applied internally on
// the way. Messages submitted with `send` pass through the fault plan:
// they may be lost, delayed, reordered (an extra delay that lets later
// messages overtake), duplicated, or blocked by a partition. Partitions
// come in two forms: *scheduled* cuts with explicit heal times, and
// *random* per-window link cuts drawn from FaultSpec::partition. Random
// faults stop at the fault horizon so convergence-after-heal is a testable
// property rather than a race against the fault process.
//
// Crash model: a down site receives nothing (messages to it are dropped at
// delivery time) but keeps its durable replica state; timers still fire
// and are returned to the runner, which checks `is_up` — that keeps the
// timer chain alive across a crash so the site resumes gossiping after
// restart.
//
// Every decision is appended to an event trace (and folded into a running
// CRC) so tests can assert two runs of the same seed are byte-identical.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <queue>
#include <set>
#include <string>
#include <vector>

#include "capture/capture_sink.hpp"
#include "fault/fault_plan.hpp"
#include "util/crc32.hpp"

namespace icecube {

/// One external event handed to the runner.
struct SimEvent {
  enum class Kind : std::uint8_t { kTimer, kDeliver };
  Kind kind = Kind::kTimer;
  std::size_t time = 0;
  std::string site;     ///< timer owner, or message destination
  std::string from;     ///< message sender (kDeliver only)
  std::string payload;  ///< message bytes (kDeliver only)
  std::uint64_t id = 0; ///< message id (kDeliver only)
};

/// One undelivered message, as exposed to the model checker
/// (src/mc/world.hpp). `seq` is the queue's internal tie-break sequence —
/// unique per pending event and stable until the event is consumed, so it
/// doubles as a take/drop/duplicate handle. Enumeration order (ascending
/// seq) is the per-link FIFO send order.
struct PendingDelivery {
  std::uint64_t seq = 0;
  std::size_t time = 0;  ///< earliest delivery time
  std::string from;
  std::string to;
  std::string payload;
  std::uint64_t id = 0;  ///< message id (shared by fault duplicates)
};

/// Delivery accounting, for reports and assertions.
struct SimCounters {
  std::size_t sent = 0;
  std::size_t delivered = 0;
  std::size_t lost = 0;               ///< dropped by FaultSpec::lose
  std::size_t duplicated = 0;         ///< extra copies injected
  std::size_t delayed = 0;            ///< messages given extra latency
  std::size_t dropped_partition = 0;  ///< blocked by a cut link
  std::size_t dropped_down = 0;       ///< destination down at delivery
  std::size_t timers = 0;             ///< timer events returned
};

/// The simulator; see file comment. All site names must be registered with
/// `add_site` before use.
class SimNet {
 public:
  SimNet(std::uint64_t seed, FaultSpec spec);

  void add_site(const std::string& name);
  [[nodiscard]] bool has_site(const std::string& name) const;
  [[nodiscard]] bool is_up(const std::string& name) const;
  [[nodiscard]] std::size_t now() const { return now_; }
  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }
  [[nodiscard]] FaultPlan& faults() { return faults_; }
  [[nodiscard]] const SimCounters& counters() const { return counters_; }

  /// Sim-time after which the random fault processes (loss, delay,
  /// duplication, random link cuts) go quiet. Scheduled cuts/crashes are
  /// unaffected. Default: never.
  void set_fault_horizon(std::size_t time) { fault_horizon_ = time; }
  [[nodiscard]] std::size_t fault_horizon() const { return fault_horizon_; }
  /// Width of the random-link-cut windows (a cut link stays cut for the
  /// rest of its window, then heals). Default 16 ticks.
  void set_partition_window(std::size_t w) { partition_window_ = w ? w : 1; }
  /// Disable trace *retention* (the CRC keeps accumulating) for long
  /// sweeps that only compare trace_crc().
  void set_trace_retention(bool keep) { keep_trace_ = keep; }
  /// Streams every trace line (independent of retention) to `sink` as a
  /// kTrace capture record. Pure observer: attaching one cannot change any
  /// simulation decision. nullptr detaches. Not owned.
  void set_capture(CaptureSink* sink) { capture_ = sink; }

  /// Schedules a timer tick for `site` at absolute time `at`.
  void schedule_timer(const std::string& site, std::size_t at);
  /// Submits a message; it is queued, delayed, duplicated, lost or blocked
  /// per the fault plan. Returns the message id.
  std::uint64_t send(const std::string& from, const std::string& to,
                     std::string payload);

  void schedule_crash(const std::string& site, std::size_t at);
  void schedule_restart(const std::string& site, std::size_t at);
  /// Cuts the (undirected) link a—b at `at` and heals it at `heal_at`.
  void schedule_partition(const std::string& a, const std::string& b,
                          std::size_t at, std::size_t heal_at);

  /// True iff the link is currently usable: not explicitly cut and not
  /// randomly cut in the current fault window. Random-cut decisions are
  /// memoised per (link, window), so querying is repeatable and each cut
  /// is recorded in the fault plan exactly once.
  [[nodiscard]] bool link_open(const std::string& a, const std::string& b);

  /// Pops the next external event, applying any control events on the way
  /// and advancing the clock. Returns nullopt when the queue is empty.
  [[nodiscard]] std::optional<SimEvent> step();

  // --- choice-point seam (model checking; see src/mc/) -------------------
  //
  // The seeded runner above consumes events in (time, seq) order; the
  // model checker instead enumerates the *frontier* — every undelivered
  // message — and consumes a chosen one, exploring all delivery orders.
  // SimNet is a plain value type (every member copies), so a checker forks
  // a world by copying it; these methods are the only extra surface the
  // fork/restore path needs.

  /// Every pending kDeliver event, ascending seq (per-link FIFO order).
  [[nodiscard]] std::vector<PendingDelivery> pending_deliveries() const;

  /// Consumes the pending delivery with handle `seq`, advancing the clock
  /// to its delivery time. Applies the same delivery-time semantics as
  /// `step`: a down destination or cut link drops the message (counted and
  /// traced) and yields nullopt. Returns nullopt too when no pending
  /// delivery carries `seq`.
  [[nodiscard]] std::optional<SimEvent> take_delivery(std::uint64_t seq);

  /// Removes the pending delivery `seq` (a checker-chosen message loss).
  /// Returns false when no pending delivery carries `seq`.
  bool drop_delivery(std::uint64_t seq);

  /// Enqueues a copy of pending delivery `seq` (a checker-chosen
  /// duplication); the copy keeps the message id, like a fault-plan
  /// duplicate. Returns the copy's handle, or nullopt when `seq` is gone.
  [[nodiscard]] std::optional<std::uint64_t> duplicate_delivery(
      std::uint64_t seq);

  /// Immediate control actions — the checker's crash/restart/cut/heal
  /// transitions, applied at the current clock instead of scheduled.
  void force_crash(const std::string& site);
  void force_restart(const std::string& site);
  void force_cut(const std::string& a, const std::string& b);
  void force_heal(const std::string& a, const std::string& b);

  [[nodiscard]] const std::vector<std::string>& trace() const {
    return trace_;
  }
  /// CRC over every trace line emitted so far (independent of retention).
  [[nodiscard]] std::uint32_t trace_crc() const { return trace_crc_.value(); }

 private:
  enum class EventKind : std::uint8_t {
    kTimer,
    kDeliver,
    kCrash,
    kRestart,
    kCut,
    kHeal,
  };
  struct Event {
    EventKind kind;
    std::size_t time;
    std::uint64_t seq;  ///< global tie-break: FIFO among same-time events
    std::string site;   ///< timer owner / destination / crash target
    std::string peer;   ///< sender (kDeliver) or link peer (kCut/kHeal)
    std::string payload;
    std::uint64_t id = 0;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void push(Event event);
  /// Removes and returns the pending kDeliver event with tie-break `seq`;
  /// all other events keep their positions (and sequence numbers).
  [[nodiscard]] std::optional<Event> extract_delivery(std::uint64_t seq);
  void note(const std::string& line);
  [[nodiscard]] static std::string link_key(const std::string& a,
                                            const std::string& b);
  [[nodiscard]] bool random_faults_active() const {
    return now_ < fault_horizon_;
  }

  FaultPlan faults_;
  std::size_t now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_msg_ = 0;
  std::size_t fault_horizon_ = static_cast<std::size_t>(-1);
  std::size_t partition_window_ = 16;
  bool keep_trace_ = true;
  CaptureSink* capture_ = nullptr;

  std::map<std::string, bool> up_;        ///< site -> currently up
  std::set<std::string> cut_links_;       ///< explicitly cut link keys
  std::map<std::string, bool> window_cuts_;  ///< memoised "link@window"
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  SimCounters counters_;
  std::vector<std::string> trace_;
  Crc32 trace_crc_;
};

}  // namespace icecube
