// Audit subject for the Fages reconciliation substrate (see
// core/audit.hpp).
//
// The Fages cells (workload/fages.hpp) carry the only shipped `order`
// method that encodes a *dynamic* race — cross-log consumers of the same
// token cell are `maybe` because which claimer wins is the scheduler's
// choice — so the relation auditor's honesty checks (does `safe` really
// mean failure-free? does `maybe` really flip?) exercise a branch no
// src/objects type reaches. The subject samples small consume/produce
// tasks over a fixed pool of token and claim cells, deterministically in
// the rng draw.
#pragma once

#include "core/audit.hpp"

namespace icecube::workload {

/// Subject exercising a pool of token + claim cells under sampled
/// FagesTaskActions.
[[nodiscard]] AuditSubject fages_audit_subject();

}  // namespace icecube::workload
