#include "workload/generators.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>

#include "objects/calendar.hpp"
#include "objects/counter.hpp"
#include "objects/file_system.hpp"
#include "objects/line_file.hpp"
#include "objects/text.hpp"
#include "replica/site.hpp"
#include "util/rng.hpp"
#include "workload/fages.hpp"

namespace icecube::workload {

namespace {

constexpr ObjectId kPrimary{0};

/// Drives one replica: performs generated actions against a Site so only
/// successful ones are recorded (a correct log, §2.1).
template <typename GenFn>
Log isolated_log(const Universe& initial, const std::string& name,
                 int actions, int attempts_per_action, GenFn&& gen) {
  Site site(name, initial);
  int budget = actions * attempts_per_action;
  while (static_cast<int>(site.log().size()) < actions && budget-- > 0) {
    (void)site.perform(gen(site));
  }
  Log log(name);
  for (const auto& a : site.log()) log.append(a);
  return log;
}

}  // namespace

Generated counter_workload(const CounterSpec& spec) {
  Generated out;
  (void)out.initial.add(std::make_unique<Counter>(spec.initial_balance));

  Rng rng(spec.seed);
  for (int r = 0; r < spec.replicas; ++r) {
    const std::uint64_t replica_seed = rng();
    Rng local(replica_seed);
    out.logs.push_back(isolated_log(
        out.initial, "r" + std::to_string(r), spec.actions_per_replica, 16,
        [&local, &spec](const Site&) -> ActionPtr {
          const auto amount = static_cast<std::int64_t>(
              local.below(static_cast<std::uint64_t>(spec.max_amount)) + 1);
          if (local.chance(spec.increment_probability)) {
            return std::make_shared<IncrementAction>(kPrimary, amount);
          }
          return std::make_shared<DecrementAction>(kPrimary, amount);
        }));
  }
  return out;
}

Generated fs_workload(const FsSpec& spec) {
  Generated out;
  {
    auto fs = std::make_unique<FileSystem>();
    for (int d = 0; d < spec.initial_dirs; ++d) {
      (void)fs->mkdir("/d" + std::to_string(d));
    }
    (void)out.initial.add(std::move(fs));
  }

  Rng rng(spec.seed);
  for (int r = 0; r < spec.replicas; ++r) {
    const std::uint64_t replica_seed = rng();
    Rng local(replica_seed);
    int counter = 0;
    out.logs.push_back(isolated_log(
        out.initial, "r" + std::to_string(r), spec.actions_per_replica, 16,
        [&local, &spec, &counter, r](const Site& site) -> ActionPtr {
          const auto& fs = site.tentative().as<FileSystem>(kPrimary);
          // Pick a random existing path (directories for parents, any
          // non-root entry for deletion).
          const auto entries = fs.list();
          std::vector<std::string> dirs, removable;
          for (const auto& path : entries) {
            if (fs.is_dir(path)) dirs.push_back(path);
            if (path != "/") removable.push_back(path);
          }
          const std::string parent =
              dirs[static_cast<std::size_t>(local.below(dirs.size()))];
          const std::string prefix = parent == "/" ? "" : parent;

          const double roll = local.unit();
          if (roll < spec.mkdir_probability) {
            return std::make_shared<MkdirAction>(
                kPrimary, prefix + "/dir-r" + std::to_string(r) + "-" +
                              std::to_string(counter++));
          }
          if (roll < spec.mkdir_probability + spec.write_probability ||
              removable.empty()) {
            const int id = counter++;
            return std::make_shared<WriteFileAction>(
                kPrimary,
                prefix + "/f-r" + std::to_string(r) + "-" + std::to_string(id),
                "content-" + std::to_string(id));
          }
          return std::make_shared<DeleteAction>(
              kPrimary, removable[static_cast<std::size_t>(
                            local.below(removable.size()))]);
        }));
  }
  return out;
}

Generated calendar_workload(const CalendarSpec& spec) {
  Generated out;
  Rng rng(spec.seed);
  for (int u = 0; u < spec.users; ++u) {
    auto cal = std::make_unique<Calendar>("u" + std::to_string(u));
    for (int h = spec.first_hour; h <= spec.last_hour; ++h) {
      if (rng.chance(spec.prebooked_probability)) {
        cal->book(h, "pre-" + std::to_string(u) + "-" + std::to_string(h));
      }
    }
    (void)out.initial.add(std::move(cal));
  }

  for (int u = 0; u < spec.users; ++u) {
    const std::uint64_t user_seed = rng();
    Rng local(user_seed);
    int counter = 0;
    const ObjectId own(u);
    out.logs.push_back(isolated_log(
        out.initial, "u" + std::to_string(u), spec.actions_per_user, 16,
        [&local, &spec, own, u, &counter](const Site& site) -> ActionPtr {
          const auto& cal = site.tentative().as<Calendar>(own);
          if (local.chance(spec.cancel_probability) &&
              cal.booked_count() > 0) {
            // Cancel a random busy hour of our own calendar.
            for (int tries = 0; tries < 16; ++tries) {
              const int hour =
                  spec.first_hour +
                  static_cast<int>(local.below(static_cast<std::uint64_t>(
                      spec.last_hour - spec.first_hour + 1)));
              if (!cal.free_at(hour)) {
                return std::make_shared<CancelAppointmentAction>(own, hour);
              }
            }
          }
          // Request a meeting with a random other user, as early as
          // possible in the window.
          int peer = u;
          while (peer == u) {
            peer = static_cast<int>(
                local.below(static_cast<std::uint64_t>(spec.users)));
          }
          return std::make_shared<RequestAppointmentAction>(
              own, ObjectId(peer), spec.first_hour, spec.last_hour,
              "m" + std::to_string(u) + "-" + std::to_string(counter++));
        }));
  }
  return out;
}

Generated text_workload(const TextSpec& spec) {
  Generated out;
  (void)out.initial.add(std::make_unique<TextBuffer>(spec.initial_text));

  Rng rng(spec.seed);
  for (int r = 0; r < spec.replicas; ++r) {
    const std::uint64_t replica_seed = rng();
    Rng local(replica_seed);
    const int site_id = r + 1;
    out.logs.push_back(isolated_log(
        out.initial, "editor" + std::to_string(r), spec.actions_per_replica,
        16, [&local, &spec, site_id](const Site& site) -> ActionPtr {
          const auto& text = site.tentative().as<TextBuffer>(kPrimary).text();
          if (local.chance(spec.insert_probability) || text.size() < 2) {
            const auto pos = local.below(text.size() + 1);
            return std::make_shared<InsertTextAction>(
                kPrimary, site_id, pos,
                std::string(1 + local.below(4),
                            static_cast<char>('a' + site_id)));
          }
          const auto pos = local.below(text.size() - 1);
          const auto len =
              1 + local.below(std::min<std::uint64_t>(5, text.size() - pos));
          return std::make_shared<DeleteTextAction>(kPrimary, site_id, pos,
                                                    len);
        }));
  }
  return out;
}

Generated fages_workload(const FagesSpec& spec) {
  Generated out;
  const int replicas = std::max(1, spec.replicas);
  const int tasks = std::max(1, spec.tasks_per_replica);
  const int resources = std::max(1, spec.shared_resources);
  const std::int64_t capacity = std::max<std::int64_t>(1, spec.resource_capacity);

  // Claim cells first (ids 0..resources-1), then one token cell per task.
  for (int s = 0; s < resources; ++s) {
    (void)out.initial.add(std::make_unique<FagesCell>(
        ObjectId{static_cast<std::uint32_t>(s)}, capacity));
  }
  const auto token_cell = [&](int replica, int task) {
    return ObjectId{static_cast<std::uint32_t>(resources + replica * tasks +
                                               task)};
  };
  for (int r = 0; r < replicas; ++r) {
    for (int i = 0; i < tasks; ++i) {
      (void)out.initial.add(std::make_unique<FagesCell>(token_cell(r, i), 0));
    }
  }

  // Dependency count per task is uniform on [0, spread], whose mean is the
  // requested density.
  const auto spread = static_cast<std::uint64_t>(
      std::max<std::int64_t>(1, std::llround(2.0 * spec.dependency_density)));

  Rng rng(spec.seed);
  for (int r = 0; r < replicas; ++r) {
    const std::uint64_t replica_seed = rng();
    Rng local(replica_seed);

    std::vector<std::vector<int>> deps(static_cast<std::size_t>(tasks));
    std::vector<int> claim(static_cast<std::size_t>(tasks), -1);
    std::vector<int> outdeg(static_cast<std::size_t>(tasks), 0);
    std::vector<std::int64_t> claimed(static_cast<std::size_t>(resources), 0);
    for (int i = 0; i < tasks; ++i) {
      auto& mine = deps[static_cast<std::size_t>(i)];
      const int want = static_cast<int>(
          std::min<std::uint64_t>(static_cast<std::uint64_t>(i),
                                  local.below(spread + 1)));
      int attempts = 4 * want;
      while (static_cast<int>(mine.size()) < want && attempts-- > 0) {
        const int j =
            static_cast<int>(local.below(static_cast<std::uint64_t>(i)));
        if (std::find(mine.begin(), mine.end(), j) != mine.end()) continue;
        mine.push_back(j);
        ++outdeg[static_cast<std::size_t>(j)];
      }
      std::sort(mine.begin(), mine.end());
      if (local.chance(spec.conflict_ratio)) {
        const int s =
            static_cast<int>(local.below(static_cast<std::uint64_t>(resources)));
        // Keep the log replayable in isolation: this replica's own claims
        // on a cell never exceed its capacity.
        if (claimed[static_cast<std::size_t>(s)] < capacity) {
          ++claimed[static_cast<std::size_t>(s)];
          claim[static_cast<std::size_t>(i)] = s;
        }
      }
    }

    Log log("r" + std::to_string(r));
    for (int i = 0; i < tasks; ++i) {
      std::vector<ObjectId> consumes;
      for (int j : deps[static_cast<std::size_t>(i)]) {
        consumes.push_back(token_cell(r, j));
      }
      if (claim[static_cast<std::size_t>(i)] >= 0) {
        consumes.push_back(ObjectId{
            static_cast<std::uint32_t>(claim[static_cast<std::size_t>(i)])});
      }
      // One token per dependent; at least one so every task has a target.
      const int copies = std::max(1, outdeg[static_cast<std::size_t>(i)]);
      std::vector<ObjectId> produces(static_cast<std::size_t>(copies),
                                     token_cell(r, i));
      log.append(std::make_shared<FagesTaskAction>(
          static_cast<std::int64_t>(r) * tasks + i, std::move(consumes),
          std::move(produces)));
    }
    out.logs.push_back(std::move(log));
  }
  return out;
}

Generated line_workload(const LineSpec& spec) {
  Generated out;
  {
    std::vector<std::string> lines;
    for (int i = 0; i < spec.lines; ++i) {
      lines.push_back("line-" + std::to_string(i));
    }
    (void)out.initial.add(std::make_unique<LineFile>(std::move(lines)));
  }

  Rng rng(spec.seed);
  for (int r = 0; r < spec.replicas; ++r) {
    const std::uint64_t replica_seed = rng();
    Rng local(replica_seed);
    int counter = 0;
    out.logs.push_back(isolated_log(
        out.initial, "session" + std::to_string(r), spec.actions_per_replica,
        16, [&local, &spec, r, &counter](const Site& site) -> ActionPtr {
          const auto& file = site.tentative().as<LineFile>(kPrimary);
          const auto line = static_cast<std::size_t>(
              local.below(static_cast<std::uint64_t>(spec.lines)));
          return std::make_shared<SetLineAction>(
              kPrimary, line, file.line(line),
              "r" + std::to_string(r) + "-v" + std::to_string(counter++));
        }));
  }
  return out;
}

}  // namespace icecube::workload
