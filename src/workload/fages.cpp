#include "workload/fages.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace icecube::workload {

namespace {

// Tag layout: params = [uid, n_consume, consumed cells..., produced cells...].
constexpr std::size_t kCellsStart = 2;

bool tag_lists_cell(const Tag& tag, ObjectId cell, bool in_consumes) {
  const auto n_consume = static_cast<std::size_t>(tag.param(1));
  const std::size_t lo = in_consumes ? kCellsStart : kCellsStart + n_consume;
  const std::size_t hi = in_consumes ? kCellsStart + n_consume
                                     : tag.params.size();
  const auto needle = static_cast<std::int64_t>(cell.value());
  for (std::size_t i = lo; i < hi; ++i) {
    if (tag.params[i] == needle) return true;
  }
  return false;
}

}  // namespace

bool fages_consumes(const Tag& tag, ObjectId cell) {
  return tag_lists_cell(tag, cell, /*in_consumes=*/true);
}

bool fages_produces(const Tag& tag, ObjectId cell) {
  return tag_lists_cell(tag, cell, /*in_consumes=*/false);
}

Constraint FagesCell::order(const Action& a, const Action& b,
                            LogRelation rel) const {
  const bool a_consumes = fages_consumes(a.tag(), self_);
  const bool b_consumes = fages_consumes(b.tag(), self_);
  if (rel == LogRelation::kSameLog) {
    // Asked only for the log-reversing direction: b preceded a at the
    // replica. Scheduling a first starves it of any token b fed it.
    if (a_consumes && fages_produces(b.tag(), self_)) {
      return Constraint::kUnsafe;
    }
    // Two consumers of one stock commute (both fit in isolation), and
    // producing earlier only adds slack.
    return Constraint::kSafe;
  }
  // Across logs the stock is contended: any consumer may dynamically fail
  // depending on interleaving. Pure producers commute.
  return (a_consumes || b_consumes) ? Constraint::kMaybe : Constraint::kSafe;
}

FagesTaskAction::FagesTaskAction(std::int64_t uid,
                                 std::vector<ObjectId> consumes,
                                 std::vector<ObjectId> produces)
    : uid_(uid), consumes_(std::move(consumes)), produces_(std::move(produces)) {
  targets_.reserve(consumes_.size() + produces_.size());
  targets_.insert(targets_.end(), consumes_.begin(), consumes_.end());
  targets_.insert(targets_.end(), produces_.begin(), produces_.end());
  std::sort(targets_.begin(), targets_.end());
  targets_.erase(std::unique(targets_.begin(), targets_.end()),
                 targets_.end());
  std::vector<std::int64_t> params;
  params.reserve(2 + consumes_.size() + produces_.size());
  params.push_back(uid_);
  params.push_back(static_cast<std::int64_t>(consumes_.size()));
  for (ObjectId c : consumes_) {
    params.push_back(static_cast<std::int64_t>(c.value()));
  }
  for (ObjectId p : produces_) {
    params.push_back(static_cast<std::int64_t>(p.value()));
  }
  tag_ = Tag("fages", std::move(params));
}

bool FagesTaskAction::precondition(const Universe& u) const {
  // A cell consumed k times needs stock >= k; count multiplicities.
  for (std::size_t i = 0; i < consumes_.size(); ++i) {
    std::int64_t need = 1;
    bool counted_earlier = false;
    for (std::size_t j = 0; j < consumes_.size(); ++j) {
      if (j == i || consumes_[j] != consumes_[i]) continue;
      if (j < i) {
        counted_earlier = true;
        break;
      }
      ++need;
    }
    if (counted_earlier) continue;
    if (u.as<FagesCell>(consumes_[i]).value() < need) return false;
  }
  return true;
}

bool FagesTaskAction::execute(Universe& u) const {
  if (!precondition(u)) return false;  // check everything, then mutate
  for (ObjectId c : consumes_) {
    const bool ok = u.as<FagesCell>(c).apply(-1);
    assert(ok && "fages consume failed after precondition passed");
    (void)ok;
  }
  for (ObjectId p : produces_) {
    (void)u.as<FagesCell>(p).apply(+1);
  }
  return true;
}

std::string FagesTaskAction::describe() const {
  std::ostringstream os;
  os << "task" << uid_ << "(-" << consumes_.size() << ",+" << produces_.size()
     << ")";
  return os.str();
}

}  // namespace icecube::workload
