// Fages-style reconciliation problem family (cs/0109033 §5).
//
// Fages evaluates complete search against local search on synthetic
// log-reconciliation instances parameterised by dependency density and
// conflict ratio. We reproduce that family on the IceCube substrate:
//
//  * token cells — per-task output counters. Task i produces one token per
//    downstream dependent; each dependent consumes one. Intra-log
//    dependencies therefore become *static* D edges (reversing a
//    producer/consumer pair in the same log is `unsafe`).
//  * claim cells — shared resources with a fixed capacity, consumed and
//    never replenished. Tasks from different replicas race for them; the
//    losers fail *dynamically* and their dependent subtrees cascade into
//    skips. Which claimer wins is the scheduler's choice — that is the
//    optimisation surface the solver benches measure.
//
// Every cell is a FagesCell (a non-negative integer); every task is one
// FagesTaskAction that atomically consumes and produces a list of cells.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/action.hpp"
#include "core/universe.hpp"

namespace icecube::workload {

/// Non-negative token/claim counter. `order` inspects only the two actions'
/// tags (plus this cell's own id): reversing a same-log producer→consumer
/// pair is unsafe; any cross-log pair touching a consumer is maybe (the
/// dynamic token race); everything else commutes.
class FagesCell final : public SharedObject {
 public:
  FagesCell(ObjectId self, std::int64_t value) : self_(self), value_(value) {}

  [[nodiscard]] std::int64_t value() const { return value_; }

  /// Applies a delta; refuses (no mutation) if the cell would go negative.
  bool apply(std::int64_t delta) {
    if (value_ + delta < 0) return false;
    value_ += delta;
    return true;
  }

  [[nodiscard]] std::unique_ptr<SharedObject> clone() const override {
    return std::make_unique<FagesCell>(*this);
  }
  [[nodiscard]] std::size_t approx_bytes() const override {
    return sizeof(FagesCell);
  }
  [[nodiscard]] Constraint order(const Action& a, const Action& b,
                                 LogRelation rel) const override;
  [[nodiscard]] std::string describe() const override {
    return "cell" + std::to_string(self_.value()) + "=" +
           std::to_string(value_);
  }

 private:
  ObjectId self_;
  std::int64_t value_;
};

/// One Fages task: consumes one token from every cell in `consumes` (claim
/// cells included — a claim is just a consumption that nothing replenishes)
/// and adds one token to every cell in `produces` (repeats allowed: a task
/// with k dependents lists its output cell k times).
///
/// Tag: fages(uid, n_consume, consumed..., produced...) — everything the
/// cells' `order` needs is in the tag, keeping the constraints static.
class FagesTaskAction final : public Action {
 public:
  FagesTaskAction(std::int64_t uid, std::vector<ObjectId> consumes,
                  std::vector<ObjectId> produces);

  [[nodiscard]] std::vector<ObjectId> targets() const override {
    return targets_;
  }
  [[nodiscard]] bool precondition(const Universe& u) const override;
  /// Checks every consumed cell first, then applies all deltas — a failure
  /// never leaves a partial mutation behind.
  bool execute(Universe& u) const override;
  [[nodiscard]] const Tag& tag() const override { return tag_; }
  [[nodiscard]] std::string describe() const override;

  [[nodiscard]] const std::vector<ObjectId>& consumed() const {
    return consumes_;
  }
  [[nodiscard]] const std::vector<ObjectId>& produced() const {
    return produces_;
  }

 private:
  std::int64_t uid_;
  std::vector<ObjectId> consumes_;
  std::vector<ObjectId> produces_;
  std::vector<ObjectId> targets_;  // deduplicated consumes ∪ produces
  Tag tag_;
};

/// True iff the tagged task consumes (resp. produces) a token of `cell`.
/// Exposed for tests; `FagesCell::order` is built on these.
[[nodiscard]] bool fages_consumes(const Tag& tag, ObjectId cell);
[[nodiscard]] bool fages_produces(const Tag& tag, ObjectId cell);

}  // namespace icecube::workload
