#include "workload/introspect.hpp"

#include <cstdint>
#include <memory>
#include <vector>

#include "workload/fages.hpp"

namespace icecube::workload {

namespace {

// A pool small enough that sampled tasks collide on cells constantly
// (collisions are where the relation's claims get tested) but large
// enough to draw commuting pairs too.
constexpr std::uint64_t kTokenCells = 4;  // ids 0..3, replenishable
constexpr std::uint64_t kClaimCells = 2;  // ids 4..5, consumed only
constexpr std::uint64_t kCells = kTokenCells + kClaimCells;

}  // namespace

AuditSubject fages_audit_subject() {
  AuditSubject s;
  s.name = "fages";
  s.make_universe = [] {
    Universe u;
    for (std::uint64_t i = 0; i < kTokenCells; ++i) {
      (void)u.add(std::make_unique<FagesCell>(ObjectId(i), 2));
    }
    for (std::uint64_t i = 0; i < kClaimCells; ++i) {
      (void)u.add(std::make_unique<FagesCell>(ObjectId(kTokenCells + i), 1));
    }
    return u;
  };
  // Tasks consume up to two cells (tokens or claims) and produce up to two
  // token cells; claim cells are never produced — a claim is a consumption
  // nothing replenishes. At least one cell is always touched.
  s.sample_action = [](const Universe&, Rng& rng) -> ActionPtr {
    const auto uid = static_cast<std::int64_t>(rng.below(1u << 20));
    std::vector<ObjectId> consumes;
    std::vector<ObjectId> produces;
    const std::uint64_t n_consume = rng.below(3);
    for (std::uint64_t i = 0; i < n_consume; ++i) {
      consumes.emplace_back(rng.below(kCells));
    }
    const std::uint64_t n_produce =
        rng.below(consumes.empty() ? 2 : 3);  // never a no-op task
    for (std::uint64_t i = 0; i < n_produce; ++i) {
      produces.emplace_back(rng.below(kTokenCells));
    }
    if (consumes.empty() && produces.empty()) {
      produces.emplace_back(rng.below(kTokenCells));
    }
    return std::make_shared<FagesTaskAction>(uid, std::move(consumes),
                                             std::move(produces));
  };
  return s;
}

}  // namespace icecube::workload
