#include "analysis/graph_lint.hpp"

#include <algorithm>
#include <deque>
#include <optional>
#include <string>
#include <utility>

#include "core/constraint_builder.hpp"
#include "core/cycles.hpp"
#include "core/relations.hpp"

namespace icecube::analysis {

namespace {

constexpr const char* kPass = "graph_lint";
/// Minimum evaluated pairs before MAYBE_DEGENERATE may fire.
constexpr std::size_t kMinDegenerateEvidence = 10;

std::string describe_record(const ActionRecord& r) {
  return r.action->tag().describe();
}

/// Shortest cycle through one SCC of the raw D graph: BFS from each member
/// back to itself, edges restricted to the component. Exact and bounded
/// (SCCs are small in practice), unlike capped Johnson enumeration.
std::vector<ActionId> minimal_cycle(const Relations& rel,
                                    const std::vector<ActionId>& scc) {
  std::vector<char> in_scc(rel.size(), 0);
  for (ActionId v : scc) in_scc[v.index()] = 1;
  std::vector<ActionId> best;
  for (ActionId start : scc) {
    // BFS over raw edges within the SCC, recording parents.
    std::vector<int> parent(rel.size(), -1);
    std::vector<char> seen(rel.size(), 0);
    std::deque<ActionId> queue;
    queue.push_back(start);
    std::optional<ActionId> closer;
    while (!queue.empty() && !closer) {
      const ActionId v = queue.front();
      queue.pop_front();
      for (std::size_t w = 0; w < rel.size(); ++w) {
        if (!in_scc[w] || !rel.depends_raw(v, ActionId(w))) continue;
        if (ActionId(w) == start && v != start) {
          closer = v;  // found an edge back to start
          break;
        }
        if (!seen[w] && ActionId(w) != start) {
          seen[w] = 1;
          parent[w] = static_cast<int>(v.index());
          queue.push_back(ActionId(w));
        }
      }
    }
    if (!closer) continue;
    std::vector<ActionId> cycle;
    for (ActionId v = *closer;;) {
      cycle.push_back(v);
      if (v == start) break;
      v = ActionId(static_cast<std::size_t>(parent[v.index()]));
    }
    std::reverse(cycle.begin(), cycle.end());
    if (best.empty() || cycle.size() < best.size()) best = std::move(cycle);
  }
  return best;
}

struct GraphLinter {
  const std::string& subject_name;
  const GraphLintOptions& options;
  AnalysisReport report;

  void emit(Rule rule, std::string message,
            std::vector<std::string> witness_actions,
            std::string witness_state = {}) {
    Diagnostic d;
    d.rule = rule;
    d.severity = default_severity(rule);
    d.pass = kPass;
    d.subject = subject_name;
    d.message = std::move(message);
    d.witness_actions = std::move(witness_actions);
    d.witness_state = std::move(witness_state);
    report.diagnostics.push_back(std::move(d));
  }

  void lint(const Universe& universe, const std::vector<ActionRecord>& records,
            const std::vector<Universe>& states) {
    // Build the matrix through the real engine path, inheriting its work
    // counters into the analysis stats.
    ConstraintBuildStats build_stats;
    ConstraintBuildOptions build_options;
    build_options.stats = &build_stats;
    const ConstraintMatrix matrix =
        build_constraints(universe, records, build_options);
    report.stats.pairs_checked += build_stats.pairs_evaluated;
    report.stats.order_calls += build_stats.order_calls;
    report.stats.states_sampled += states.size();

    const Relations relations = Relations::from_constraints(matrix);
    const std::size_t n = records.size();

    // --- D_CYCLE: one finding per SCC, minimal witness ------------------
    std::vector<int> scc_of(n, -1);
    const auto sccs = strongly_connected_components(relations);
    for (std::size_t c = 0; c < sccs.size(); ++c) {
      for (ActionId v : sccs[c]) scc_of[v.index()] = static_cast<int>(c);
    }
    for (const auto& scc : sccs) {
      if (scc.size() < 2) continue;
      const std::vector<ActionId> cycle = minimal_cycle(relations, scc);
      std::vector<std::string> witness;
      witness.reserve(cycle.size());
      for (ActionId v : cycle) witness.push_back(describe_record(records[v.index()]));
      emit(Rule::kDCycle,
           "dependence cycle over " + std::to_string(scc.size()) +
               " action(s): no schedule can contain all of them; the "
               "scheduler must cut (minimal witness of length " +
               std::to_string(cycle.size()) + " shown)",
           std::move(witness));
    }

    // --- REDUNDANT_D_EDGE: raw edge implied transitively ----------------
    std::size_t redundant_reported = 0;
    std::size_t redundant_suppressed = 0;
    for (std::size_t a = 0; a < n; ++a) {
      for (std::size_t b = 0; b < n; ++b) {
        if (a == b || !relations.depends_raw(ActionId(a), ActionId(b))) {
          continue;
        }
        // Within one SCC the closure makes everything imply everything —
        // skip those (the cycle finding already covers them). Outside, a
        // path a→x→…→b cannot revisit `a`, so raw(a,x) && closed(x,b)
        // proves the edge redundant without using it.
        if (scc_of[a] == scc_of[b]) continue;
        bool redundant = false;
        std::size_t via = 0;
        for (std::size_t x = 0; x < n && !redundant; ++x) {
          if (x == a || x == b || scc_of[x] == scc_of[a]) continue;
          if (relations.depends_raw(ActionId(a), ActionId(x)) &&
              relations.depends(ActionId(x), ActionId(b))) {
            redundant = true;
            via = x;
          }
        }
        if (!redundant) continue;
        if (redundant_reported >= options.max_redundant_reports) {
          ++redundant_suppressed;
          continue;
        }
        ++redundant_reported;
        emit(Rule::kRedundantDEdge,
             "raw D edge already implied by the transitive closure (via the "
             "third action shown); order() encodes the same fact twice",
             {describe_record(records[a]), describe_record(records[b]),
              describe_record(records[via])});
      }
    }
    if (redundant_suppressed > 0) {
      emit(Rule::kRedundantDEdge,
           std::to_string(redundant_suppressed) +
               " further redundant D edge(s) suppressed (cap " +
               std::to_string(options.max_redundant_reports) + ")",
           {});
    }

    // --- DEAD_ACTION: precondition fails in every sampled state ---------
    for (std::size_t a = 0; a < n; ++a) {
      bool runnable = false;
      for (const Universe& s : states) {
        ++report.stats.executions;
        if (records[a].action->precondition(s)) {
          runnable = true;
          break;
        }
      }
      if (!runnable) {
        emit(Rule::kDeadAction,
             "precondition fails in all " + std::to_string(states.size()) +
                 " sampled state(s): the action can never execute, so every "
                 "constraint it contributes is noise",
             {describe_record(records[a])});
      }
    }

    // --- MAYBE_DEGENERATE: a graph with no static information -----------
    std::size_t evaluated = 0;
    std::size_t maybes = 0;
    for (std::size_t a = 0; a < n; ++a) {
      for (std::size_t b = 0; b < n; ++b) {
        if (a == b) continue;
        ++evaluated;
        if (matrix.at(ActionId(a), ActionId(b)) == Constraint::kMaybe) {
          ++maybes;
        }
      }
    }
    if (evaluated >= kMinDegenerateEvidence && maybes == evaluated) {
      emit(Rule::kMaybeDegenerate,
           "every evaluated pair is 'maybe' (" + std::to_string(evaluated) +
               " pairs): the constraint graph carries no static information "
               "and the search degenerates to brute force (§3.1)",
           {});
    }
  }
};

}  // namespace

AnalysisReport lint_problem(const Universe& universe,
                            const std::vector<Log>& logs,
                            const std::string& subject_name,
                            const GraphLintOptions& options) {
  GraphLinter linter{subject_name, options, {}};
  const std::vector<ActionRecord> records = flatten(logs);

  // State pool: the initial universe plus every per-log prefix replay
  // state (each log ran successfully at its origin site, so its prefixes
  // are reachable by construction).
  std::vector<Universe> states;
  states.push_back(universe);
  for (const Log& log : logs) {
    Universe u = universe;
    for (const ActionPtr& action : log) {
      ++linter.report.stats.executions;
      if (!action->precondition(u) || !action->execute(u)) break;
      states.push_back(u);
    }
  }

  linter.lint(universe, records, states);
  return std::move(linter.report);
}

AnalysisReport lint_subject(const AuditSubject& subject,
                            const GraphLintOptions& options) {
  GraphLinter linter{subject.name, options, {}};
  Rng rng(options.seed);
  const Universe initial = subject.make_universe();

  // Distinct-tag action pool, one synthetic single-action log per action so
  // every pair is across-logs.
  std::vector<ActionRecord> records;
  const std::size_t draws = options.action_samples * 4;
  for (std::size_t i = 0;
       i < draws && records.size() < options.action_samples; ++i) {
    ActionPtr candidate = subject.sample_action(initial, rng);
    const std::string key = candidate->tag().describe();
    const bool duplicate = std::any_of(
        records.begin(), records.end(), [&key](const ActionRecord& r) {
          return r.action->tag().describe() == key;
        });
    if (duplicate) continue;
    records.push_back(
        ActionRecord{std::move(candidate), LogId(records.size()), 0});
  }

  // Reachable-state pool for the dead-action probe.
  std::vector<Universe> states;
  states.push_back(initial);
  for (std::size_t i = 0; i < options.state_samples; ++i) {
    Universe u = initial;
    const std::size_t len = rng.below(options.max_prefix + 1);
    for (std::size_t j = 0; j < len; ++j) {
      const ActionPtr action = subject.sample_action(u, rng);
      ++linter.report.stats.executions;
      if (action->precondition(u)) (void)action->execute(u);
    }
    states.push_back(std::move(u));
  }

  linter.lint(initial, records, states);
  return std::move(linter.report);
}

AnalysisReport lint_subjects(const std::vector<AuditSubject>& subjects,
                             const GraphLintOptions& options) {
  AnalysisReport merged;
  for (const AuditSubject& subject : subjects) {
    merged.merge(lint_subject(subject, options));
  }
  return merged;
}

}  // namespace icecube::analysis
