// Pass 1 — the relation auditor: proves `order()` honest against the
// dynamic simulator (ISSUE: §2.3 soundness).
//
// For an audit subject (core/audit.hpp) the auditor samples a pool of
// actions and a pool of *reachable* states (random successful prefixes of
// sampled actions from the subject's initial universe), then replays both
// two-action orders of every distinct tag pair through the real
// precondition/execute machinery and compares the dynamic evidence with the
// static verdict the engine would use (the most-constraining `order` value
// over the pair's shared targets — exactly `evaluate_constraint`'s rule):
//
//  UNSOUND_SAFE            static safe, but a state exists where `b` alone
//                          succeeds and `a` immediately followed by `b`
//                          fails — the promise of §2.3 broken. For same-log
//                          pairs the probe follows the engine's calling
//                          convention (the reversing direction): the log
//                          order [b, a] succeeds but the swap [a, b] fails.
//  OVERCONSERVATIVE_UNSAFE static unsafe, yet both orders ran failure-free
//                          in every sampled state that could run them —
//                          the constraint prunes schedules it never needed
//                          to (search waste; possibly deliberate intent).
//  ASYMMETRY               both directions unsafe (the D-mapping then
//                          excludes every schedule containing the pair)
//                          while some sampled state runs one order
//                          successfully — a dynamically-valid
//                          reconciliation is silently discarded (the §4.4
//                          "spurious conflict" class).
//  NONDETERMINISM          repeated calls with identical inputs returned
//                          different verdicts; every constraint consumer
//                          assumes `order` is a pure function of the tags.
//  MAYBE_DEGENERATE        every consulted verdict was `maybe`: the type
//                          gives the search no static information (§3.1).
//
// All sampling is seeded; findings are reproducible from the options.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "core/audit.hpp"

namespace icecube::analysis {

struct RelationAuditOptions {
  std::uint64_t seed = 0x1cecbe0ULL;
  /// Reachable states sampled per subject (the initial state is always
  /// included on top of these).
  std::size_t state_samples = 24;
  /// Longest random action prefix executed to reach a sampled state.
  std::size_t max_prefix = 6;
  /// Actions drawn for the tag pool (deduplicated by tag).
  std::size_t action_samples = 32;
  /// Cap on audited ordered pairs, so pathological pools stay bounded.
  std::size_t max_pairs = 4000;
  /// Repeated `order` calls per direction for the determinism check.
  std::size_t determinism_repeats = 3;
};

/// Audits one subject; diagnostics carry `pass = "relation_audit"`.
[[nodiscard]] AnalysisReport audit_subject(
    const AuditSubject& subject, const RelationAuditOptions& options = {});

/// Audits every subject and merges the reports.
[[nodiscard]] AnalysisReport audit_subjects(
    const std::vector<AuditSubject>& subjects,
    const RelationAuditOptions& options = {});

}  // namespace icecube::analysis
