#include "analysis/diagnostics.hpp"

#include <algorithm>
#include <cstdio>
#include <iterator>
#include <sstream>

namespace icecube::analysis {

const char* to_string(Rule rule) {
  switch (rule) {
    case Rule::kUnsoundSafe:
      return "UNSOUND_SAFE";
    case Rule::kOverconservativeUnsafe:
      return "OVERCONSERVATIVE_UNSAFE";
    case Rule::kAsymmetry:
      return "ASYMMETRY";
    case Rule::kNondeterminism:
      return "NONDETERMINISM";
    case Rule::kDCycle:
      return "D_CYCLE";
    case Rule::kRedundantDEdge:
      return "REDUNDANT_D_EDGE";
    case Rule::kDeadAction:
      return "DEAD_ACTION";
    case Rule::kMaybeDegenerate:
      return "MAYBE_DEGENERATE";
  }
  return "?";
}

const char* to_string(Severity severity) {
  switch (severity) {
    case Severity::kInfo:
      return "info";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "?";
}

Severity default_severity(Rule rule) {
  switch (rule) {
    case Rule::kUnsoundSafe:
    case Rule::kNondeterminism:
      return Severity::kError;
    case Rule::kOverconservativeUnsafe:
    case Rule::kAsymmetry:
    case Rule::kDCycle:
    case Rule::kDeadAction:
    case Rule::kMaybeDegenerate:
      return Severity::kWarning;
    case Rule::kRedundantDEdge:
      return Severity::kInfo;
  }
  return Severity::kWarning;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string Diagnostic::render() const {
  std::ostringstream os;
  os << to_string(severity) << ": [" << to_string(rule) << "] " << subject
     << ": " << message;
  if (!witness_actions.empty()) {
    os << " [witness:";
    for (const auto& a : witness_actions) os << ' ' << a;
    os << ']';
  }
  if (!witness_state.empty()) os << " [state: " << witness_state << ']';
  return os.str();
}

std::string Diagnostic::to_json() const {
  std::ostringstream os;
  os << "{\"rule\": \"" << to_string(rule) << "\", \"severity\": \""
     << to_string(severity) << "\", \"pass\": \"" << json_escape(pass)
     << "\", \"subject\": \"" << json_escape(subject) << "\", \"message\": \""
     << json_escape(message) << "\", \"witness_actions\": [";
  for (std::size_t i = 0; i < witness_actions.size(); ++i) {
    os << (i ? ", " : "") << '"' << json_escape(witness_actions[i]) << '"';
  }
  os << "], \"witness_state\": \"" << json_escape(witness_state) << "\"}";
  return os.str();
}

void AnalysisStats::merge(const AnalysisStats& other) {
  pairs_checked += other.pairs_checked;
  states_sampled += other.states_sampled;
  order_calls += other.order_calls;
  executions += other.executions;
}

void AnalysisReport::merge(AnalysisReport other) {
  diagnostics.insert(diagnostics.end(),
                     std::make_move_iterator(other.diagnostics.begin()),
                     std::make_move_iterator(other.diagnostics.end()));
  stats.merge(other.stats);
}

std::size_t AnalysisReport::count_at_least(Severity severity) const {
  return static_cast<std::size_t>(
      std::count_if(diagnostics.begin(), diagnostics.end(),
                    [severity](const Diagnostic& d) {
                      return d.severity >= severity;
                    }));
}

Severity AnalysisReport::worst_severity() const {
  Severity worst = Severity::kInfo;
  for (const auto& d : diagnostics) worst = std::max(worst, d.severity);
  return worst;
}

std::string AnalysisReport::render(Severity min_severity) const {
  std::ostringstream os;
  std::size_t shown = 0;
  for (const auto& d : diagnostics) {
    if (d.severity < min_severity) continue;
    os << d.render() << '\n';
    ++shown;
  }
  os << shown << " finding(s) at or above " << to_string(min_severity) << " ("
     << diagnostics.size() << " total); " << stats.pairs_checked
     << " pair(s), " << stats.states_sampled << " state(s), "
     << stats.order_calls << " order call(s), " << stats.executions
     << " execution probe(s)\n";
  return os.str();
}

std::string AnalysisReport::to_json() const {
  std::ostringstream os;
  os << "{\n  \"findings\": [\n";
  for (std::size_t i = 0; i < diagnostics.size(); ++i) {
    os << "    " << diagnostics[i].to_json()
       << (i + 1 < diagnostics.size() ? "," : "") << '\n';
  }
  os << "  ],\n  \"counts\": {\"error\": " << count_at_least(Severity::kError)
     << ", \"warning\": "
     << count_at_least(Severity::kWarning) - count_at_least(Severity::kError)
     << ", \"total\": " << diagnostics.size() << "},\n"
     << "  \"stats\": {\"pairs_checked\": " << stats.pairs_checked
     << ", \"states_sampled\": " << stats.states_sampled
     << ", \"order_calls\": " << stats.order_calls
     << ", \"executions\": " << stats.executions << "}\n}\n";
  return os.str();
}

}  // namespace icecube::analysis
