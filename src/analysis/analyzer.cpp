#include "analysis/analyzer.hpp"

#include <utility>

#include "jigsaw/introspect.hpp"
#include "objects/introspect.hpp"
#include "workload/introspect.hpp"

namespace icecube::analysis {

std::vector<AuditSubject> shipped_audit_subjects() {
  std::vector<AuditSubject> subjects = object_audit_subjects();
  subjects.push_back(jigsaw::board_audit_subject());
  subjects.push_back(workload::fages_audit_subject());
  return subjects;
}

AnalysisReport analyze_subjects(const std::vector<AuditSubject>& subjects,
                                const AnalyzerOptions& options) {
  AnalysisReport report;
  for (const AuditSubject& subject : subjects) {
    report.merge(audit_subject(subject, options.relation));
    report.merge(lint_subject(subject, options.graph));
  }
  return report;
}

AnalysisReport analyze_shipped(const AnalyzerOptions& options,
                               const std::string& name_filter) {
  std::vector<AuditSubject> selected;
  for (AuditSubject& subject : shipped_audit_subjects()) {
    if (name_filter.empty() ||
        subject.name.find(name_filter) != std::string::npos) {
      selected.push_back(std::move(subject));
    }
  }
  return analyze_subjects(selected, options);
}

}  // namespace icecube::analysis
