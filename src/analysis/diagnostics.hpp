// Structured diagnostics for the static-analysis passes.
//
// Every finding carries a machine-readable rule id, a severity, the subject
// it was found in, the witness (actions, state fingerprint) that proves it,
// and a human sentence. Reports render either as text or as JSON, and gate
// CI through `worst_severity()` — error-level findings fail the build.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace icecube::analysis {

/// Audit/lint rules. The first four come from the relation auditor (does
/// `order()` honour §2.3's promises?), the rest from the graph linter
/// (pre-search smells over a built constraint graph, §3.1/§3.2).
enum class Rule : std::uint8_t {
  kUnsoundSafe = 0,          ///< static safe, dynamic failure witnessed
  kOverconservativeUnsafe,   ///< static unsafe, both orders succeed everywhere
  kAsymmetry,                ///< mutual unsafe yet one order works dynamically
  kNondeterminism,           ///< same inputs, different verdicts
  kDCycle,                   ///< dependence cycle (minimal witness per SCC)
  kRedundantDEdge,           ///< raw D edge implied by the transitive closure
  kDeadAction,               ///< precondition fails in every sampled state
  kMaybeDegenerate,          ///< order() never returned anything but maybe
};

enum class Severity : std::uint8_t { kInfo = 0, kWarning = 1, kError = 2 };

[[nodiscard]] const char* to_string(Rule rule);
[[nodiscard]] const char* to_string(Severity severity);

/// The severity a rule fires at. UNSOUND_SAFE and NONDETERMINISM are errors
/// (they break the search contract); the rest are warnings or info — an
/// over-constraining verdict can encode deliberate intent (the paper's
/// write/delete example is "contrary to mathematical intuition" on purpose,
/// and §4.4 embraces some spurious static conflicts).
[[nodiscard]] Severity default_severity(Rule rule);

/// One finding.
struct Diagnostic {
  Rule rule = Rule::kUnsoundSafe;
  Severity severity = Severity::kError;
  std::string pass;     ///< "relation_audit" | "graph_lint"
  std::string subject;  ///< audited type or problem name
  std::string message;  ///< one human sentence
  /// Witness: the actions involved (described tags, in the order that
  /// exhibits the finding) and, where a dynamic run is part of the proof,
  /// the fingerprint of the state it ran from.
  std::vector<std::string> witness_actions;
  std::string witness_state;

  [[nodiscard]] std::string render() const;
  [[nodiscard]] std::string to_json() const;
};

/// Work counters for one analysis run; the analysis-cost bench reports
/// these next to the wall time.
struct AnalysisStats {
  std::uint64_t pairs_checked = 0;
  std::uint64_t states_sampled = 0;
  std::uint64_t order_calls = 0;
  std::uint64_t executions = 0;  ///< precondition/execute probes

  void merge(const AnalysisStats& other);
};

/// A batch of findings plus the work that produced them.
struct AnalysisReport {
  std::vector<Diagnostic> diagnostics;
  AnalysisStats stats;

  void merge(AnalysisReport other);
  [[nodiscard]] std::size_t count_at_least(Severity severity) const;
  [[nodiscard]] Severity worst_severity() const;  ///< kInfo when empty

  /// Multi-line human report of findings at or above `min_severity`.
  [[nodiscard]] std::string render(Severity min_severity) const;
  /// Whole report as one JSON object (findings + counters).
  [[nodiscard]] std::string to_json() const;
};

/// Minimal JSON string escaping (quotes, backslashes, control bytes).
[[nodiscard]] std::string json_escape(const std::string& s);

}  // namespace icecube::analysis
