// Pass 2 — the graph linter: pre-search smells over a built constraint
// graph (§3.1/§3.2).
//
// Where the relation auditor (relation_audit.hpp) interrogates `order()`
// pair by pair, the linter builds the full constraint matrix the engine
// would build — through the real sparse builder, reusing its work counters
// — maps it onto the D/I relations, and inspects the graph shape:
//
//  D_CYCLE           a dependence cycle: no schedule can contain all of its
//                    actions, so the scheduler must cut (§3.2). One finding
//                    per strongly connected component, carrying a *minimal*
//                    cycle witness (shortest cycle through the SCC).
//  REDUNDANT_D_EDGE  a raw D edge already implied by the transitive closure
//                    through a third action — harmless, but it means order()
//                    encodes the same fact twice (info).
//  DEAD_ACTION       an action whose precondition fails in every sampled
//                    state: it can never execute, so every constraint it
//                    contributes is noise.
//  MAYBE_DEGENERATE  every evaluated pair came back `maybe` — the graph has
//                    no static information and the search degenerates to
//                    brute force (§3.1).
//
// Entry points: `lint_subject` samples a problem from an AuditSubject
// (one synthetic single-action log per sampled action, so every pair is
// across-logs); `lint_problem` lints a concrete universe + logs instance,
// sampling states from log-prefix replays.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "core/audit.hpp"
#include "core/log.hpp"

namespace icecube::analysis {

struct GraphLintOptions {
  std::uint64_t seed = 0x1cecbe0ULL;
  /// Subject mode: actions drawn for the synthetic problem (deduplicated by
  /// tag).
  std::size_t action_samples = 24;
  /// Subject mode: reachable states sampled for the dead-action probe.
  std::size_t state_samples = 12;
  /// Subject mode: longest random prefix executed to reach a sampled state.
  std::size_t max_prefix = 6;
  /// Cap on REDUNDANT_D_EDGE findings (info-level; they can be numerous).
  std::size_t max_redundant_reports = 16;
};

/// Lints the constraint graph of a concrete problem instance. States for
/// the dead-action probe are the initial universe plus every per-log prefix
/// replay state.
[[nodiscard]] AnalysisReport lint_problem(const Universe& universe,
                                          const std::vector<Log>& logs,
                                          const std::string& subject_name,
                                          const GraphLintOptions& options = {});

/// Samples a synthetic problem from the subject (each sampled action in its
/// own log) and lints its graph.
[[nodiscard]] AnalysisReport lint_subject(const AuditSubject& subject,
                                          const GraphLintOptions& options = {});

/// Lints every subject and merges the reports.
[[nodiscard]] AnalysisReport lint_subjects(
    const std::vector<AuditSubject>& subjects,
    const GraphLintOptions& options = {});

}  // namespace icecube::analysis
