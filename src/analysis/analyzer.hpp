// Pass 3 — orchestration: runs the relation auditor and the graph linter
// over every shipped object type (src/objects and the jigsaw board) and
// merges the findings into one gateable report. `tools/analyze` and the
// `icecube lint` subcommand are thin wrappers over this.
#pragma once

#include <string>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "analysis/graph_lint.hpp"
#include "analysis/relation_audit.hpp"
#include "core/audit.hpp"

namespace icecube::analysis {

struct AnalyzerOptions {
  RelationAuditOptions relation;
  GraphLintOptions graph;

  /// Applies one seed to both passes.
  void set_seed(std::uint64_t seed) {
    relation.seed = seed;
    graph.seed = seed;
  }
};

/// Every shipped auditable type: the seven src/objects subjects plus the
/// jigsaw board under its semantic order policy (the only policy that makes
/// honesty claims — the pedagogical Figure 7 variants deliberately mangle
/// the relation).
[[nodiscard]] std::vector<AuditSubject> shipped_audit_subjects();

/// Runs both passes over `subjects` and merges the reports.
[[nodiscard]] AnalysisReport analyze_subjects(
    const std::vector<AuditSubject>& subjects,
    const AnalyzerOptions& options = {});

/// `analyze_subjects` over `shipped_audit_subjects()`, optionally filtered
/// to subjects whose name contains `name_filter` (empty = all).
[[nodiscard]] AnalysisReport analyze_shipped(
    const AnalyzerOptions& options = {}, const std::string& name_filter = {});

}  // namespace icecube::analysis
