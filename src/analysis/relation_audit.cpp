#include "analysis/relation_audit.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <string>
#include <utility>

#include "core/constraint.hpp"

namespace icecube::analysis {

namespace {

constexpr const char* kPass = "relation_audit";
/// Minimum dynamically-runnable states before OVERCONSERVATIVE_UNSAFE may
/// fire: with fewer, "succeeded everywhere sampled" is weak evidence.
constexpr std::size_t kMinOverconservativeEvidence = 3;
/// Minimum consulted verdicts before MAYBE_DEGENERATE may fire.
constexpr std::size_t kMinDegenerateEvidence = 10;

/// Runs one action's full dynamic gate (precondition, then execute) against
/// `u`, mutating it on success exactly as the simulator does.
bool run_action(Universe& u, const Action& action, AnalysisStats& stats) {
  ++stats.executions;
  if (!action.precondition(u)) return false;
  return action.execute(u);
}

/// One-line human rendering of a universe state for witnesses.
std::string state_label(const Universe& u) {
  std::string out = u.describe();
  std::replace(out.begin(), out.end(), '\n', ' ');
  while (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

/// The verdict the engine would use for "a before b": the most-constraining
/// `order` value over the pair's shared targets (§2.3/§2.4). Returns
/// nullopt when the actions share no target — `order` is never consulted
/// for such pairs, so there is nothing to audit.
std::optional<Constraint> combined_order(const Universe& u, const Action& a,
                                         const Action& b, LogRelation rel,
                                         AnalysisStats& stats) {
  const auto ta = a.targets();
  const auto tb = b.targets();
  std::optional<Constraint> result;
  std::vector<ObjectId> seen;
  for (ObjectId t : ta) {
    if (std::find(tb.begin(), tb.end(), t) == tb.end()) continue;
    if (std::find(seen.begin(), seen.end(), t) != seen.end()) continue;
    seen.push_back(t);
    ++stats.order_calls;
    const Constraint c = u.at(t).order(a, b, rel);
    result = result ? most_constraining(*result, c) : c;
  }
  return result;
}

/// Reachable-state pool: the initial universe plus `state_samples` states
/// produced by executing random successful prefixes of sampled actions.
std::vector<Universe> sample_states(const AuditSubject& subject, Rng& rng,
                                    const RelationAuditOptions& options,
                                    AnalysisStats& stats) {
  std::vector<Universe> states;
  const Universe initial = subject.make_universe();
  states.push_back(initial);
  for (std::size_t i = 0; i < options.state_samples; ++i) {
    Universe u = initial;
    const std::size_t len = rng.below(options.max_prefix + 1);
    for (std::size_t j = 0; j < len; ++j) {
      const ActionPtr action = subject.sample_action(u, rng);
      (void)run_action(u, *action, stats);  // failed draws simply don't fire
    }
    states.push_back(std::move(u));
  }
  stats.states_sampled += states.size();
  return states;
}

/// Distinct-tag action pool.
std::vector<ActionPtr> sample_actions(const AuditSubject& subject,
                                      const Universe& initial, Rng& rng,
                                      const RelationAuditOptions& options) {
  std::vector<ActionPtr> pool;
  // Draw a bounded multiple of the requested pool size so heavily-colliding
  // samplers still terminate.
  const std::size_t draws = options.action_samples * 4;
  for (std::size_t i = 0; i < draws && pool.size() < options.action_samples;
       ++i) {
    ActionPtr candidate = subject.sample_action(initial, rng);
    const std::string key = candidate->tag().describe();
    const bool duplicate =
        std::any_of(pool.begin(), pool.end(), [&key](const ActionPtr& p) {
          return p->tag().describe() == key;
        });
    if (!duplicate) pool.push_back(std::move(candidate));
  }
  return pool;
}

/// Dynamic evidence about one ordered chain [a, b] gathered from the state
/// pool.
struct PairEvidence {
  /// States where `b` succeeded alone and `a` succeeded as chain head.
  std::size_t runnable = 0;
  /// Of those, states where a-then-b ran failure-free.
  std::size_t chain_ok = 0;
  /// First state witnessing "b alone succeeds, a succeeds, then b fails".
  std::optional<std::string> broken_chain_state;
};

PairEvidence probe_pair(const std::vector<Universe>& states, const Action& a,
                        const Action& b, AnalysisStats& stats) {
  PairEvidence ev;
  for (const Universe& s : states) {
    Universe b_alone = s;
    if (!run_action(b_alone, b, stats)) continue;
    Universe chain = s;
    if (!run_action(chain, a, stats)) continue;
    ++ev.runnable;
    if (run_action(chain, b, stats)) {
      ++ev.chain_ok;
    } else if (!ev.broken_chain_state) {
      ev.broken_chain_state = state_label(s);
    }
  }
  return ev;
}

struct SubjectAuditor {
  const AuditSubject& subject;
  const RelationAuditOptions& options;
  AnalysisReport report;
  std::map<Constraint, std::uint64_t> verdict_histogram;
  std::uint64_t verdicts_consulted = 0;

  void emit(Rule rule, std::string message,
            std::vector<std::string> witness_actions,
            std::string witness_state = {}) {
    Diagnostic d;
    d.rule = rule;
    d.severity = default_severity(rule);
    d.pass = kPass;
    d.subject = subject.name;
    d.message = std::move(message);
    d.witness_actions = std::move(witness_actions);
    d.witness_state = std::move(witness_state);
    report.diagnostics.push_back(std::move(d));
  }

  /// Consults the combined verdict, running the determinism and
  /// state-independence checks on the way (the contract says `order` is a
  /// pure function of the tags — never of object state).
  std::optional<Constraint> verdict(const std::vector<Universe>& states,
                                    const Action& a, const Action& b,
                                    LogRelation rel) {
    const auto first = combined_order(states[0], a, b, rel, report.stats);
    if (!first) return std::nullopt;
    ++verdicts_consulted;
    ++verdict_histogram[*first];
    const char* rel_name =
        rel == LogRelation::kSameLog ? "same-log" : "across-logs";
    for (std::size_t r = 1; r < options.determinism_repeats; ++r) {
      const auto again = combined_order(states[0], a, b, rel, report.stats);
      if (again != first) {
        emit(Rule::kNondeterminism,
             std::string("repeated ") + rel_name +
                 " order(a, b) calls on identical inputs returned '" +
                 std::string(to_string(*first)) + "' then '" +
                 (again ? std::string(to_string(*again)) : "unconsulted") +
                 "'",
             {a.tag().describe(), b.tag().describe()});
        return first;
      }
    }
    // Two spot checks against mutated states catch order methods that peek
    // at object state instead of tags.
    for (std::size_t s = 1; s < states.size() && s <= 2; ++s) {
      const auto elsewhere =
          combined_order(states[s], a, b, rel, report.stats);
      if (elsewhere != first) {
        emit(Rule::kNondeterminism,
             std::string(rel_name) + " order(a, b) verdict changed with "
                 "object state ('" + std::string(to_string(*first)) +
                 "' vs '" +
                 (elsewhere ? std::string(to_string(*elsewhere))
                            : "unconsulted") +
                 "'); order must depend only on tags",
             {a.tag().describe(), b.tag().describe()},
             state_label(states[s]));
        return first;
      }
    }
    return first;
  }

  /// Audits the ordered direction (a, b). The mutual-unsafe (ASYMMETRY)
  /// check is symmetric, so the caller enables it for one direction only.
  void audit_pair(const std::vector<Universe>& states, const Action& a,
                  const Action& b, bool check_mutual) {
    ++report.stats.pairs_checked;
    const auto across = verdict(states, a, b, LogRelation::kAcrossLogs);
    if (!across) return;  // no shared target: order is never consulted

    // Across-logs probe: does "a immediately followed by b" honour the
    // static verdict (§2.3: safe ⇒ the chain cannot fail where b alone
    // would have succeeded)?
    const PairEvidence forward = probe_pair(states, a, b, report.stats);
    if (*across == Constraint::kSafe && forward.broken_chain_state) {
      emit(Rule::kUnsoundSafe,
           "across-logs safe, but b fails when chained immediately after a "
           "in a reachable state (b alone succeeds there)",
           {a.tag().describe(), b.tag().describe()},
           *forward.broken_chain_state);
    }
    if (*across == Constraint::kUnsafe &&
        forward.runnable >= kMinOverconservativeEvidence &&
        forward.chain_ok == forward.runnable) {
      const PairEvidence reverse = probe_pair(states, b, a, report.stats);
      if (reverse.runnable >= kMinOverconservativeEvidence &&
          reverse.chain_ok == reverse.runnable) {
        emit(Rule::kOverconservativeUnsafe,
             "across-logs unsafe, yet both orders ran failure-free in every "
             "sampled state (" + std::to_string(forward.runnable) + "/" +
                 std::to_string(reverse.runnable) +
                 " forward/reverse probes); the D edge prunes schedules it "
                 "never needed to",
             {a.tag().describe(), b.tag().describe()});
      }
    }

    // ASYMMETRY: mutual unsafe maps to D edges both ways, excluding every
    // schedule containing the pair. If a sampled state runs one order
    // successfully, a dynamically-valid reconciliation is being silently
    // discarded (§4.4's spurious-conflict class).
    if (check_mutual && *across == Constraint::kUnsafe) {
      const auto reverse_verdict = combined_order(
          states[0], b, a, LogRelation::kAcrossLogs, report.stats);
      if (reverse_verdict == Constraint::kUnsafe) {
        const PairEvidence reverse = probe_pair(states, b, a, report.stats);
        const std::size_t ok = forward.chain_ok + reverse.chain_ok;
        if (ok > 0) {
          emit(Rule::kAsymmetry,
               "mutually unsafe (no schedule may contain both), yet " +
                   std::to_string(ok) +
                   " sampled chain(s) ran failure-free; dynamically-valid "
                   "schedules are statically discarded",
               {a.tag().describe(), b.tag().describe()});
        }
      }
    }

    // Same-log probe, following the engine's calling convention: order(a, b,
    // kSameLog) is only ever asked for the *reversing* direction — "the log
    // holds b before a; may they swap?". Safe claims the swap cannot fail
    // where the log order succeeded.
    const auto same = verdict(states, a, b, LogRelation::kSameLog);
    if (same == Constraint::kSafe) {
      for (const Universe& s : states) {
        Universe log_order = s;
        if (!run_action(log_order, b, report.stats) ||
            !run_action(log_order, a, report.stats)) {
          continue;  // the log could not have recorded [b, a] here
        }
        Universe swapped = s;
        if (!run_action(swapped, a, report.stats) ||
            !run_action(swapped, b, report.stats)) {
          emit(Rule::kUnsoundSafe,
               "same-log safe (swap allowed), but the swapped order [a, b] "
               "fails in a reachable state where the log order [b, a] "
               "succeeds",
               {a.tag().describe(), b.tag().describe()}, state_label(s));
          break;
        }
      }
    }
  }

  AnalysisReport run() {
    Rng rng(options.seed);
    const std::vector<Universe> states =
        sample_states(subject, rng, options, report.stats);
    const std::vector<ActionPtr> pool =
        sample_actions(subject, states[0], rng, options);

    std::size_t pairs = 0;
    for (std::size_t i = 0; i < pool.size() && pairs < options.max_pairs;
         ++i) {
      for (std::size_t j = i + 1;
           j < pool.size() && pairs < options.max_pairs; ++j) {
        audit_pair(states, *pool[i], *pool[j], /*check_mutual=*/true);
        audit_pair(states, *pool[j], *pool[i], /*check_mutual=*/false);
        pairs += 2;
      }
    }

    if (verdicts_consulted >= kMinDegenerateEvidence &&
        verdict_histogram.size() == 1 &&
        verdict_histogram.begin()->first == Constraint::kMaybe) {
      emit(Rule::kMaybeDegenerate,
           "order() returned 'maybe' for all " +
               std::to_string(verdicts_consulted) +
               " consulted verdicts: the type contributes no static "
               "information to the search (§3.1)",
           {});
    }
    return std::move(report);
  }
};

}  // namespace

AnalysisReport audit_subject(const AuditSubject& subject,
                             const RelationAuditOptions& options) {
  SubjectAuditor auditor{subject, options, {}, {}, 0};
  return auditor.run();
}

AnalysisReport audit_subjects(const std::vector<AuditSubject>& subjects,
                              const RelationAuditOptions& options) {
  AnalysisReport merged;
  for (const AuditSubject& subject : subjects) {
    merged.merge(audit_subject(subject, options));
  }
  return merged;
}

}  // namespace icecube::analysis
