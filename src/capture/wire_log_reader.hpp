// Reading a capture log back, with torn-write recovery.
//
// `read_capture` walks the frame sequence of wire_log_format.hpp from the
// start. The first frame that fails to decode ends the scan: every frame
// before it is returned intact, every byte from it to EOF is *quarantined*
// (counted, never interpreted) and the failure is reported through the
// DecodeError taxonomy. A file that ends exactly on a frame boundary is
// clean; anything else is a recovery — which is still a usable capture
// (a process that crashed mid-flush leaves exactly this shape), just one
// whose tail is missing. The writer uses the same scan to resume appending
// after a crash: truncate to `intact_bytes`, append from there.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "capture/capture_sink.hpp"
#include "capture/wire_log_format.hpp"
#include "serialize/decode_error.hpp"

namespace icecube {

/// A decoded capture file: the intact record prefix plus how it ended.
struct CaptureFile {
  int version = 0;
  std::vector<CaptureRecord> records;
  /// How the scan ended: ok() for a clean EOF at a frame boundary; the
  /// classified failure otherwise. `line` is the 1-based index of the
  /// frame that failed.
  DecodeError error;
  std::size_t intact_bytes = 0;       ///< prefix ending at the last intact frame
  std::size_t quarantined_bytes = 0;  ///< trailing bytes never interpreted

  [[nodiscard]] bool ok() const { return error.ok(); }
  /// True when the header was valid but the frame sequence ended early —
  /// the intact prefix is usable and a writer may resume at intact_bytes.
  [[nodiscard]] bool recovered() const {
    return !ok() && intact_bytes >= kCaptureHeaderSize;
  }
};

/// Decodes `bytes` (a whole capture file) with recovery; see file comment.
[[nodiscard]] CaptureFile read_capture(const std::string& bytes);

/// Loads and decodes `path`. A missing or unreadable file is kEmptyInput
/// with the failure in `context` — never an empty capture.
[[nodiscard]] CaptureFile read_capture_file(const std::string& path);

/// Slurps a file; false (and an untouched `out`) when it cannot be read.
[[nodiscard]] bool read_file_bytes(const std::string& path, std::string& out);

}  // namespace icecube
