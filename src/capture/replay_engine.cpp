#include "capture/replay_engine.hpp"

#include <algorithm>
#include <utility>

#include "capture/chaos_spec_codec.hpp"
#include "capture/wire_log_reader.hpp"
#include "capture/wire_log_writer.hpp"
#include "mc/mc_spec_codec.hpp"
#include "stream/stream_spec_codec.hpp"

namespace icecube {

namespace {

std::string json_escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xF];
          out += kHex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Extracts "crc xxxxxxxx" from a kSummary payload's first line.
std::optional<std::uint32_t> parse_summary_crc(const std::string& payload) {
  constexpr std::string_view kPrefix = "crc ";
  if (payload.substr(0, kPrefix.size()) != kPrefix) return std::nullopt;
  std::uint32_t crc = 0;
  std::size_t digits = 0;
  for (std::size_t i = kPrefix.size(); i < payload.size(); ++i) {
    const char c = payload[i];
    if (c == '\n') break;
    const int v = c >= '0' && c <= '9'   ? c - '0'
                  : c >= 'a' && c <= 'f' ? c - 'a' + 10
                                         : -1;
    if (v < 0 || ++digits > 8) return std::nullopt;
    crc = (crc << 4) | static_cast<std::uint32_t>(v);
  }
  if (digits != 8) return std::nullopt;
  return crc;
}

std::string record_json(const CaptureRecord& record) {
  return std::string("{\"kind\":\"") +
         std::string(to_string(record.kind)) +
         "\",\"time\":" + std::to_string(record.time) + ",\"payload\":\"" +
         json_escape(record.payload) + "\"}";
}

}  // namespace

std::string ReplayDivergence::to_json() const {
  return "{\"frame\":" + std::to_string(frame) +
         ",\"recorded\":" + record_json(recorded) +
         ",\"live\":" + record_json(live) + "}";
}

std::string ReplayResult::to_json() const {
  std::string out = "{";
  out += "\"error\":\"" + json_escape(error.ok() ? "" : error.message()) +
         "\"";
  out += ",\"recovered\":" + std::string(capture_recovered ? "true" : "false");
  out += ",\"quarantined_bytes\":" + std::to_string(quarantined_bytes);
  out += ",\"recorded_frames\":" + std::to_string(recorded_frames);
  out += ",\"frames_compared\":" + std::to_string(frames_compared);
  out += ",\"crc_checked\":" + std::string(crc_checked ? "true" : "false");
  out += ",\"crc_match\":" + std::string(crc_match ? "true" : "false");
  out += ",\"faithful\":" + std::string(faithful() ? "true" : "false");
  out += ",\"divergence\":" +
         (divergence ? divergence->to_json() : std::string("null"));
  out += "}";
  return out;
}

ChaosReport run_chaos_captured(ChaosSpec spec, CaptureSink& sink) {
  sink.record({CaptureRecordKind::kSpec, 0, encode_chaos_spec(spec)});
  spec.capture = &sink;
  return run_chaos(spec);
}

bool write_mc_capture_file(const std::string& path,
                           const mc::McConfig& config,
                           const std::vector<mc::Choice>& schedule,
                           std::string* error) {
  MemoryCaptureSink sink;
  (void)mc::run_mc_schedule_captured(config, schedule, sink);
  WireLogWriter writer(path);
  for (const CaptureRecord& record : sink.records()) writer.record(record);
  writer.close();
  if (!writer.error().ok()) {
    if (error != nullptr) *error = writer.error().message();
    return false;
  }
  return true;
}

ReplayResult replay_capture(const std::string& bytes,
                            const ReplayOptions& options) {
  ReplayResult result;
  const CaptureFile capture = read_capture(bytes);
  if (!capture.ok() && !capture.recovered()) {
    result.error = capture.error;
    return result;
  }
  result.capture_recovered = capture.recovered();
  result.quarantined_bytes = capture.quarantined_bytes;

  if (capture.records.empty() ||
      capture.records.front().kind != CaptureRecordKind::kSpec) {
    result.error = {DecodeErrorKind::kBadHeader, 1,
                    "capture does not start with a spec frame"};
    return result;
  }
  result.recorded_frames = capture.records.size() - 1;

  // Re-drive the identical scenario, collecting the regenerated stream.
  // The spec header keyword says which engine recorded the capture: a
  // "stream-spec" frame replays through the streaming daemon, an
  // "mc-spec" frame through the model checker's schedule runner, anything
  // else through the chaos harness.
  MemoryCaptureSink live;
  const std::string& spec_payload = capture.records.front().payload;
  if (spec_payload.rfind("stream-spec", 0) == 0) {
    StreamSpecDecode spec = decode_stream_spec(spec_payload);
    if (!spec.ok()) {
      result.error = spec.error;
      result.error.context = "spec frame: " + result.error.context;
      return result;
    }
    const StreamRunReport stream_report = run_stream(spec.spec, &live);
    // The summary-CRC check below reads report.trace_crc regardless of the
    // engine; the stream run's CRC drops into the same slot.
    result.report.trace_crc = stream_report.trace_crc;
  } else if (spec_payload.rfind("mc-spec", 0) == 0) {
    mc::McSpecDecode spec = mc::decode_mc_spec(spec_payload);
    if (!spec.ok()) {
      result.error = spec.error;
      result.error.context = "spec frame: " + result.error.context;
      return result;
    }
    const mc::McRunResult mc_result =
        mc::run_mc_schedule(spec.config, spec.schedule, &live);
    result.report.trace_crc = mc_result.trace_crc;
  } else {
    ChaosSpecDecode spec = decode_chaos_spec(spec_payload);
    if (!spec.ok()) {
      result.error = spec.error;
      result.error.context = "spec frame: " + result.error.context;
      return result;
    }
    spec.spec.keep_trace = options.keep_trace;
    spec.spec.capture = &live;
    result.report = run_chaos(spec.spec);
  }

  const std::vector<CaptureRecord>& got = live.records();
  const std::size_t limit =
      std::min(result.recorded_frames, options.stop_after);
  for (std::size_t i = 0; i < limit; ++i) {
    const CaptureRecord& recorded = capture.records[i + 1];
    if (i >= got.size()) {
      result.divergence = {i, recorded,
                           {CaptureRecordKind::kSummary, 0,
                            "<replay emitted no frame here>"}};
      break;
    }
    if (got[i] != recorded) {
      result.divergence = {i, recorded, got[i]};
      break;
    }
    ++result.frames_compared;
  }

  // The recorded summary (when the capture kept one) carries the original
  // trace CRC — the bit-exactness witness independent of frame contents.
  for (std::size_t i = capture.records.size(); i-- > 1;) {
    if (capture.records[i].kind != CaptureRecordKind::kSummary) continue;
    if (const auto crc = parse_summary_crc(capture.records[i].payload)) {
      result.crc_checked = true;
      result.recorded_crc = *crc;
      result.crc_match = *crc == result.report.trace_crc;
    }
    break;
  }
  return result;
}

ReplayResult replay_capture_file(const std::string& path,
                                 const ReplayOptions& options) {
  std::string bytes;
  if (!read_file_bytes(path, bytes)) {
    ReplayResult result;
    result.error = {DecodeErrorKind::kEmptyInput, 0,
                    "cannot read capture '" + path + "'"};
    return result;
  }
  return replay_capture(bytes, options);
}

}  // namespace icecube
