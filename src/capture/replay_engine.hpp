// Bit-exact incident replay from a capture file.
//
// run_chaos is a pure function of its spec, and a capture's first frame is
// that spec — so replay is: decode the spec, re-drive the simulator, and
// hold the regenerated record stream against the recorded one frame by
// frame. A faithful replay matches every frame AND reproduces the recorded
// trace CRC; the first mismatch is reported as a structured divergence
// witness (frame index, logical times, both payloads), which is what an
// incident bisection steps through (`stop_after` limits how much of the
// capture is checked, so "replay to event N" is one call).
//
// Captures recovered from a torn write replay too: the comparison covers
// the intact prefix and the CRC check is skipped when the summary frame
// was lost — the result says so instead of guessing.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "capture/capture_sink.hpp"
#include "mc/schedule.hpp"
#include "serialize/decode_error.hpp"
#include "simnet/chaos.hpp"

namespace icecube {

/// The first frame where the re-run stopped matching the capture.
struct ReplayDivergence {
  std::size_t frame = 0;  ///< 0-based index into the capture's event frames
  CaptureRecord recorded;
  CaptureRecord live;  ///< empty payload + kind kSummary when the re-run
                       ///< emitted fewer frames than the capture holds
  [[nodiscard]] std::string to_json() const;
};

struct ReplayOptions {
  /// Compare only the first N event frames (spec frame excluded);
  /// SIZE_MAX = the whole capture. The re-run itself always goes to
  /// completion — determinism makes the prefix meaningful.
  std::size_t stop_after = static_cast<std::size_t>(-1);
  /// Retain the re-run's trace lines in `ReplayResult::report`.
  bool keep_trace = false;
};

struct ReplayResult {
  /// Why the capture could not be replayed at all (unreadable file, bad
  /// header, no spec frame, spec undecodable). ok() here does NOT mean the
  /// replay matched — see `faithful()`.
  DecodeError error;
  bool capture_recovered = false;     ///< capture had a quarantined tail
  std::size_t quarantined_bytes = 0;
  std::size_t recorded_frames = 0;    ///< event frames in the capture
  std::size_t frames_compared = 0;
  ChaosReport report;                 ///< the re-run's report
  std::optional<ReplayDivergence> divergence;
  bool crc_checked = false;   ///< capture held a summary frame
  std::uint32_t recorded_crc = 0;
  bool crc_match = false;

  /// True iff the capture was replayed and every compared frame matched
  /// (and, when checkable, the trace CRC too).
  [[nodiscard]] bool faithful() const {
    return error.ok() && !divergence && (!crc_checked || crc_match);
  }
  [[nodiscard]] std::string to_json() const;
};

/// Records the serialized spec, then runs the chaos scenario with `sink`
/// attached — the canonical way to produce a self-describing capture.
/// Restores `spec.capture` untouched semantics by taking a copy.
[[nodiscard]] ChaosReport run_chaos_captured(ChaosSpec spec,
                                             CaptureSink& sink);

/// Writes a self-describing model-checker `.icap` capture of
/// (config, schedule) to `path` — the spec frame plus every record the
/// deterministic re-run emits. Returns false with `error` set on I/O
/// failure. `replay_capture_file` reproduces it bit-exactly.
bool write_mc_capture_file(const std::string& path,
                           const mc::McConfig& config,
                           const std::vector<mc::Choice>& schedule,
                           std::string* error = nullptr);

/// Replays the capture in `bytes`; see file comment.
[[nodiscard]] ReplayResult replay_capture(const std::string& bytes,
                                          const ReplayOptions& options = {});

/// Loads `path` and replays it. A missing/unreadable file is a structured
/// kEmptyInput error, never an empty (vacuously faithful) replay.
[[nodiscard]] ReplayResult replay_capture_file(
    const std::string& path, const ReplayOptions& options = {});

}  // namespace icecube
