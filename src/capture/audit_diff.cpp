#include "capture/audit_diff.hpp"

#include <algorithm>

#include "capture/wire_log_reader.hpp"

namespace icecube {

namespace {

std::string json_escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xF];
          out += kHex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

AuditSide side_of(const CaptureFile& file) {
  AuditSide side;
  side.error = file.error;
  side.frames = file.records.size();
  side.quarantined_bytes = file.quarantined_bytes;
  side.usable = file.ok() || file.recovered();
  return side;
}

std::string side_json(const AuditSide& side) {
  return "{\"error\":\"" +
         json_escape(side.error.ok() ? "" : side.error.message()) +
         "\",\"frames\":" + std::to_string(side.frames) +
         ",\"quarantined_bytes\":" + std::to_string(side.quarantined_bytes) +
         "}";
}

std::string frame_json(const CaptureRecord& record) {
  return std::string("{\"kind\":\"") + std::string(to_string(record.kind)) +
         "\",\"time\":" + std::to_string(record.time) + ",\"payload\":\"" +
         json_escape(record.payload) + "\"}";
}

}  // namespace

std::string AuditDiff::to_json() const {
  std::string out = "{";
  out += "\"a\":" + side_json(a);
  out += ",\"b\":" + side_json(b);
  out += ",\"readable\":" + std::string(readable() ? "true" : "false");
  out += ",\"identical\":" + std::string(identical ? "true" : "false");
  if (!identical && readable()) {
    out += ",\"first_divergent\":" + std::to_string(first_divergent);
    out += ",\"a_frame\":" + frame_json(a_frame);
    out += ",\"b_frame\":" + frame_json(b_frame);
  }
  out += "}";
  return out;
}

AuditDiff audit_diff(const std::string& a_bytes, const std::string& b_bytes) {
  AuditDiff diff;
  const CaptureFile a = read_capture(a_bytes);
  const CaptureFile b = read_capture(b_bytes);
  diff.a = side_of(a);
  diff.b = side_of(b);
  if (!diff.readable()) return diff;

  const std::size_t common = std::min(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < common; ++i) {
    if (a.records[i] != b.records[i]) {
      diff.first_divergent = i;
      diff.a_frame = a.records[i];
      diff.b_frame = b.records[i];
      return diff;
    }
  }
  if (a.records.size() != b.records.size()) {
    // One stream is a strict prefix of the other: the first extra frame is
    // the divergence, the missing side reports an empty sentinel.
    diff.first_divergent = common;
    const bool a_longer = a.records.size() > b.records.size();
    diff.a_frame = a_longer ? a.records[common] : CaptureRecord{};
    diff.b_frame = a_longer ? CaptureRecord{} : b.records[common];
    if (a_longer) {
      diff.b_frame.payload = "<no frame: stream ended>";
    } else {
      diff.a_frame.payload = "<no frame: stream ended>";
    }
    return diff;
  }
  diff.identical = true;
  return diff;
}

AuditDiff audit_diff_files(const std::string& a_path,
                           const std::string& b_path) {
  AuditDiff diff;
  std::string a_bytes;
  std::string b_bytes;
  const bool a_ok = read_file_bytes(a_path, a_bytes);
  const bool b_ok = read_file_bytes(b_path, b_bytes);
  if (!a_ok || !b_ok) {
    if (!a_ok) {
      diff.a.error = {DecodeErrorKind::kEmptyInput, 0,
                      "cannot read capture '" + a_path + "'"};
    }
    if (!b_ok) {
      diff.b.error = {DecodeErrorKind::kEmptyInput, 0,
                      "cannot read capture '" + b_path + "'"};
    }
    // Classify whichever side *was* readable, so the report is maximal.
    if (a_ok) diff.a = side_of(read_capture(a_bytes));
    if (b_ok) diff.b = side_of(read_capture(b_bytes));
    return diff;
  }
  return audit_diff(a_bytes, b_bytes);
}

}  // namespace icecube
