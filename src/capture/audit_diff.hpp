// Cross-site capture auditing: where did two records of "the same" history
// first disagree?
//
// Two captures of the same (seed, spec) — taken on two machines, before
// and after a code change, or from two sites that were supposed to see
// the same reconciliation — must be frame-for-frame identical. When they
// are not, the interesting fact is the *first* divergent frame: everything
// before it is common history, everything after it is fallout. audit_diff
// walks both frame streams in lockstep and reports that frame as a
// structured witness (index, kinds, logical times, both payloads), plus
// how each file ended (clean / recovered / unreadable) so a torn capture
// is never mistaken for a short history.
#pragma once

#include <cstdint>
#include <string>

#include "capture/capture_sink.hpp"
#include "serialize/decode_error.hpp"

namespace icecube {

/// How one side of the diff was read.
struct AuditSide {
  DecodeError error;          ///< unreadable / recovery classification
  std::size_t frames = 0;     ///< intact frames decoded
  std::size_t quarantined_bytes = 0;
  /// Readable = clean or recovered-with-intact-prefix.
  [[nodiscard]] bool readable() const { return usable; }
  bool usable = false;
};

/// The verdict; `first_divergent` is meaningful iff !identical && both
/// sides readable.
struct AuditDiff {
  AuditSide a;
  AuditSide b;
  bool identical = false;
  std::size_t first_divergent = 0;  ///< 0-based frame index
  CaptureRecord a_frame;  ///< divergent frame from a (empty if a ended)
  CaptureRecord b_frame;  ///< divergent frame from b (empty if b ended)

  [[nodiscard]] bool readable() const {
    return a.readable() && b.readable();
  }
  [[nodiscard]] std::string to_json() const;
};

/// Diffs two decoded captures' frame streams.
[[nodiscard]] AuditDiff audit_diff(const std::string& a_bytes,
                                   const std::string& b_bytes);

/// Loads and diffs two capture files; unreadable files are reported per
/// side, never treated as empty captures.
[[nodiscard]] AuditDiff audit_diff_files(const std::string& a_path,
                                         const std::string& b_path);

}  // namespace icecube
