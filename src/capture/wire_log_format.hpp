// On-disk layout of the binary capture log (version 1).
//
// A capture file is a 16-byte header followed by back-to-back frames, one
// per CaptureRecord. Everything multi-byte is little-endian; the format is
// binary because capture payloads (wire frames) are arbitrary bytes.
//
//   File header (16 bytes)
//     0..7    magic  89 'I' 'C' 'E' 'C' 'A' 'P' 0A   (PNG-style: the high
//             bit and the embedded newline catch text-mode mangling)
//     8..9    u16  format version (currently 1)
//     10..11  u16  flags (reserved, 0)
//     12..15  u32  CRC-32 of bytes 0..11
//
//   Frame (21 + payload bytes)
//     0..3    u32  sync marker 0x5AFEC0DE (re-synchronisation anchor)
//     4       u8   record kind (CaptureRecordKind; 1..kCaptureRecordKindMax)
//     5..12   u64  logical timestamp
//     13..16  u32  payload length
//     17..    payload bytes
//     last 4  u32  CRC-32 of bytes 4 .. 17+len-1 (kind through payload —
//             the sync marker is excluded so a damaged marker and a damaged
//             body are distinguishable)
//
// Decode classification (the DecodeError taxonomy of serialize/):
//   - fewer bytes than a full header/frame remain  -> kTruncated
//   - sync marker or CRC mismatch                  -> kCorrupted
//   - implausible payload length (> kMaxPayload)   -> kCorrupted
//   - valid CRC but unknown record kind            -> kUnknownOp
//
// Torn-write recovery is the reader's job (wire_log_reader.hpp): scan
// frames until the first classification failure, quarantine every byte
// from there to EOF, and report the error alongside the intact prefix.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "capture/capture_sink.hpp"
#include "serialize/decode_error.hpp"
#include "util/crc32.hpp"

namespace icecube {

inline constexpr std::string_view kCaptureMagic = "\x89ICECAP\n";
inline constexpr std::uint16_t kCaptureVersion = 1;
inline constexpr std::size_t kCaptureHeaderSize = 16;
inline constexpr std::uint32_t kCaptureFrameSync = 0x5AFEC0DEu;
inline constexpr std::size_t kCaptureFrameOverhead = 21;  ///< header + CRC
/// Upper bound on a single frame payload; a damaged length field must not
/// turn into a multi-gigabyte allocation.
inline constexpr std::size_t kCaptureMaxPayload = 1u << 28;

namespace capture_detail {

inline void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xFFu));
  out.push_back(static_cast<char>((v >> 8) & 0xFFu));
}

inline void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

inline void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

[[nodiscard]] inline std::uint16_t get_u16(std::string_view bytes,
                                           std::size_t at) {
  return static_cast<std::uint16_t>(
      static_cast<unsigned char>(bytes[at]) |
      (static_cast<unsigned char>(bytes[at + 1]) << 8));
}

[[nodiscard]] inline std::uint32_t get_u32(std::string_view bytes,
                                           std::size_t at) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) |
        static_cast<unsigned char>(bytes[at + static_cast<std::size_t>(i)]);
  }
  return v;
}

[[nodiscard]] inline std::uint64_t get_u64(std::string_view bytes,
                                           std::size_t at) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) |
        static_cast<unsigned char>(bytes[at + static_cast<std::size_t>(i)]);
  }
  return v;
}

}  // namespace capture_detail

/// Renders the 16-byte file header.
[[nodiscard]] inline std::string encode_capture_header() {
  std::string out{kCaptureMagic};
  capture_detail::put_u16(out, kCaptureVersion);
  capture_detail::put_u16(out, 0);  // flags
  capture_detail::put_u32(out, Crc32::of(out));
  return out;
}

/// Validates the file header; on success `version` is set. `bytes` is the
/// whole file (only the first 16 bytes are inspected).
[[nodiscard]] inline DecodeError decode_capture_header(std::string_view bytes,
                                                       int& version) {
  version = 0;
  if (bytes.empty()) return {DecodeErrorKind::kEmptyInput, 0, {}};
  if (bytes.size() < kCaptureHeaderSize) {
    return {DecodeErrorKind::kTruncated, 0, "short file header"};
  }
  if (bytes.substr(0, kCaptureMagic.size()) != kCaptureMagic) {
    return {DecodeErrorKind::kBadHeader, 0, "bad capture magic"};
  }
  if (Crc32::of(bytes.substr(0, 12)) != capture_detail::get_u32(bytes, 12)) {
    return {DecodeErrorKind::kCorrupted, 0, "file header crc mismatch"};
  }
  const std::uint16_t v = capture_detail::get_u16(bytes, 8);
  if (v < 1 || v > kCaptureVersion) {
    return {DecodeErrorKind::kUnsupportedVersion, 0,
            "capture version " + std::to_string(v)};
  }
  version = v;
  return {};
}

/// Appends the frame encoding of `record` to `out`.
inline void append_capture_frame(std::string& out,
                                 const CaptureRecord& record) {
  using namespace capture_detail;
  const std::size_t body_start = out.size() + 4;
  put_u32(out, kCaptureFrameSync);
  out.push_back(static_cast<char>(record.kind));
  put_u64(out, record.time);
  put_u32(out, static_cast<std::uint32_t>(record.payload.size()));
  out += record.payload;
  put_u32(out, Crc32::of(std::string_view(out).substr(body_start)));
}

[[nodiscard]] inline std::string encode_capture_frame(
    const CaptureRecord& record) {
  std::string out;
  out.reserve(kCaptureFrameOverhead + record.payload.size());
  append_capture_frame(out, record);
  return out;
}

/// Result of decoding one frame at a byte offset.
struct CaptureFrameDecode {
  CaptureRecord record;
  std::size_t consumed = 0;  ///< bytes the frame occupied (when ok)
  DecodeError error;
  [[nodiscard]] bool ok() const { return error.ok(); }
};

/// Decodes the frame starting at `offset`. `frame_index` (1-based) is only
/// used to fill DecodeError::line so recovery reports can say *which*
/// frame died. Exactly-at-EOF is reported as kEmptyInput — the clean end.
[[nodiscard]] inline CaptureFrameDecode decode_capture_frame(
    std::string_view bytes, std::size_t offset, std::size_t frame_index) {
  using namespace capture_detail;
  CaptureFrameDecode out;
  const std::size_t remaining = bytes.size() - offset;
  if (remaining == 0) {
    out.error = {DecodeErrorKind::kEmptyInput, frame_index, {}};
    return out;
  }
  if (remaining < kCaptureFrameOverhead) {
    out.error = {DecodeErrorKind::kTruncated, frame_index,
                 "partial frame header"};
    return out;
  }
  if (get_u32(bytes, offset) != kCaptureFrameSync) {
    out.error = {DecodeErrorKind::kCorrupted, frame_index,
                 "bad frame sync marker"};
    return out;
  }
  const auto kind_byte = static_cast<std::uint8_t>(bytes[offset + 4]);
  const std::uint64_t time = get_u64(bytes, offset + 5);
  const std::size_t len = get_u32(bytes, offset + 13);
  if (len > kCaptureMaxPayload) {
    out.error = {DecodeErrorKind::kCorrupted, frame_index,
                 "implausible payload length " + std::to_string(len)};
    return out;
  }
  if (remaining < kCaptureFrameOverhead + len) {
    out.error = {DecodeErrorKind::kTruncated, frame_index,
                 "frame cut mid-payload"};
    return out;
  }
  const std::string_view body = bytes.substr(offset + 4, 13 + len);
  const std::uint32_t expected = get_u32(bytes, offset + 17 + len);
  if (Crc32::of(body) != expected) {
    out.error = {DecodeErrorKind::kCorrupted, frame_index,
                 "frame crc mismatch"};
    return out;
  }
  if (kind_byte < 1 || kind_byte > kCaptureRecordKindMax) {
    out.error = {DecodeErrorKind::kUnknownOp, frame_index,
                 "frame kind " + std::to_string(kind_byte)};
    return out;
  }
  out.record.kind = static_cast<CaptureRecordKind>(kind_byte);
  out.record.time = time;
  out.record.payload = std::string(bytes.substr(offset + 17, len));
  out.consumed = kCaptureFrameOverhead + len;
  return out;
}

}  // namespace icecube
