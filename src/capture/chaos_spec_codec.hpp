// ChaosSpec <-> wire text, so a capture file is self-describing.
//
// The first frame of every capture is the serialized spec of the run that
// produced it; the replay engine re-derives the identical event sequence
// from it (run_chaos is a pure function of its spec). The encoding is
// line-based "key value" text under a versioned header:
//
//   chaos-spec 1
//   seed 7
//   lose 0.05
//   cut s0 s1 10 120
//   ...
//
// Doubles are printed with 17 significant digits, so
// encode(decode(encode(s))) == encode(s) byte-for-byte — the replay
// comparator relies on that stability. Volatile fields that cannot change
// the event sequence (keep_trace, the capture sink, reconciler options —
// the chaos harness always runs with defaults) are deliberately not
// serialized.
#pragma once

#include <string>

#include "serialize/decode_error.hpp"
#include "simnet/chaos.hpp"

namespace icecube {

/// One decoded spec (or why decoding failed).
struct ChaosSpecDecode {
  ChaosSpec spec;
  DecodeError error;
  [[nodiscard]] bool ok() const { return error.ok(); }
};

[[nodiscard]] std::string encode_chaos_spec(const ChaosSpec& spec);
[[nodiscard]] ChaosSpecDecode decode_chaos_spec(const std::string& text);

}  // namespace icecube
