// The capture observation interface.
//
// A `CaptureSink` receives every observable record a chaos run produces —
// the run's spec, each simnet decision, each ingested workload action,
// every gossip/commit frame put on the wire, every invariant violation and
// the end-of-run summary — as it happens. The interface lives here (pure
// virtual, header-only) so the producers (simnet, the chaos runner) can
// emit records without linking against the capture library; the durable
// writer (wire_log_writer.hpp), the in-memory sink below and the replay
// comparator all implement it.
//
// Records are totally ordered by emission; two runs of the same spec emit
// byte-identical record streams (the property the replay engine checks).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace icecube {

/// What one capture record describes. Values are the on-disk frame type
/// bytes (wire_log_format.hpp) — do not renumber.
enum class CaptureRecordKind : std::uint8_t {
  kSpec = 1,         ///< serialized ChaosSpec (chaos_spec_codec.hpp)
  kTrace = 2,        ///< one simnet decision line ("t12 deliver s0>s1#4")
  kAction = 3,       ///< ingested workload action: "<site> <seq> <describe>"
  kGossipFrame = 4,  ///< "<from>><to>\n" + gossip wire bytes as sent
  kCommitFrame = 5,  ///< "<from>><to>\n" + commitment wire bytes as sent
  kViolation = 6,    ///< invariant violation message
  kSummary = 7,      ///< end-of-run digest (trace CRC, steps, convergence)
};

inline constexpr std::uint8_t kCaptureRecordKindMax = 7;

[[nodiscard]] constexpr std::string_view to_string(CaptureRecordKind kind) {
  switch (kind) {
    case CaptureRecordKind::kSpec:
      return "spec";
    case CaptureRecordKind::kTrace:
      return "trace";
    case CaptureRecordKind::kAction:
      return "action";
    case CaptureRecordKind::kGossipFrame:
      return "gossip-frame";
    case CaptureRecordKind::kCommitFrame:
      return "commit-frame";
    case CaptureRecordKind::kViolation:
      return "violation";
    case CaptureRecordKind::kSummary:
      return "summary";
  }
  return "?";
}

/// One captured observation: what kind, the logical time it happened, and
/// the raw payload bytes (format depends on the kind; see the enum).
struct CaptureRecord {
  CaptureRecordKind kind = CaptureRecordKind::kTrace;
  std::uint64_t time = 0;
  std::string payload;

  friend bool operator==(const CaptureRecord& a,
                         const CaptureRecord& b) = default;
};

/// Receives records in emission order. Implementations must not throw out
/// of `record` — a capture failure must never alter the run it observes.
class CaptureSink {
 public:
  virtual ~CaptureSink() = default;
  virtual void record(CaptureRecord record) = 0;
};

/// Retains every record in memory — the sink behind replay comparison and
/// behind failure-triggered capture dumps (record always, write on
/// violation).
class MemoryCaptureSink : public CaptureSink {
 public:
  void record(CaptureRecord record) override {
    records_.push_back(std::move(record));
  }

  [[nodiscard]] const std::vector<CaptureRecord>& records() const {
    return records_;
  }
  [[nodiscard]] std::vector<CaptureRecord> take() {
    return std::move(records_);
  }
  void clear() { records_.clear(); }

 private:
  std::vector<CaptureRecord> records_;
};

}  // namespace icecube
