// Durable capture writer: fixed ring buffer, explicit durability policy,
// crash-mid-write fault injection, resume after torn writes.
//
// Frames are encoded into a fixed-size ring buffer and drained to the file
// in batches; the durability policy decides when a drain happens beyond
// "the ring is full":
//
//   kNone      — drain only when the ring wraps and once on close. Fastest;
//                a crash can lose up to a ring of frames.
//   kInterval  — additionally drain every `flush_interval` frames.
//   kPerFrame  — drain (and fsync) after every frame. Slowest; a crash
//                loses at most the frame being written.
//
// Every drain passes through the capture-write fault points
// (FaultPlan::capture_crash / capture_short_write / capture_bit_flip), so
// the torn files the reader must recover from are produced by the same
// deterministic machinery as every other injected fault — a (seed, spec)
// pair reproduces the exact tear. A crash fault writes a prefix of the
// batch and permanently kills the writer (like the process dying); a
// short-write fault silently loses the batch's tail but the writer keeps
// going (like a lying disk); a bit-flip damages one byte in the batch.
//
// Opening with `kResume` runs the reader's recovery scan first: the file
// is truncated back to its last intact frame and appending continues from
// there, so a capture survives any number of crash/restart cycles with
// only its quarantined tail lost.
#pragma once

#include <cstdio>
#include <string>

#include "capture/capture_sink.hpp"
#include "capture/wire_log_format.hpp"
#include "fault/fault_plan.hpp"
#include "serialize/decode_error.hpp"

namespace icecube {

/// When buffered frames reach the disk; see file comment.
enum class CaptureDurability : std::uint8_t { kNone, kInterval, kPerFrame };

struct CaptureWriterOptions {
  CaptureDurability durability = CaptureDurability::kInterval;
  std::size_t flush_interval = 64;      ///< frames per drain (kInterval)
  std::size_t ring_capacity = 1 << 16;  ///< buffered bytes before a forced drain
  /// Capture-write fault injection; nullptr = faithful disk. Not owned.
  FaultPlan* faults = nullptr;
};

/// Cumulative writer accounting, for benches and tests.
struct CaptureWriterStats {
  std::size_t frames = 0;        ///< records accepted
  std::size_t bytes = 0;         ///< encoded bytes handed to the ring
  std::size_t flushes = 0;       ///< drains attempted
  std::size_t resumed_bytes = 0; ///< quarantined tail truncated on resume
  std::size_t torn_flushes = 0;  ///< drains damaged by an injected fault
};

/// The durable sink; see file comment. Not thread-safe (one run, one
/// writer).
class WireLogWriter : public CaptureSink {
 public:
  enum class Mode : std::uint8_t {
    kTruncate,  ///< start a fresh capture (existing file overwritten)
    kResume,    ///< recover an existing capture and append to it
  };

  WireLogWriter(std::string path, CaptureWriterOptions options = {},
                Mode mode = Mode::kTruncate);
  WireLogWriter(const WireLogWriter&) = delete;
  WireLogWriter& operator=(const WireLogWriter&) = delete;
  ~WireLogWriter() override;

  /// False when the file could not be opened / recovered; `error()` says
  /// why. Records sent to a failed writer are dropped.
  [[nodiscard]] bool ok() const { return error_.ok() && !crashed_; }
  [[nodiscard]] const DecodeError& error() const { return error_; }
  /// True once an injected crash fault killed the writer.
  [[nodiscard]] bool crashed() const { return crashed_; }
  [[nodiscard]] const CaptureWriterStats& stats() const { return stats_; }

  /// Encodes and buffers one record, draining per the durability policy.
  void record(CaptureRecord record) override;

  /// Drains the ring to disk now. Returns false if the writer is dead.
  bool flush();

  /// Final drain + close. Called by the destructor; safe to call twice.
  void close();

 private:
  void drain();

  std::string path_;
  CaptureWriterOptions options_;
  std::FILE* file_ = nullptr;
  DecodeError error_;
  bool crashed_ = false;
  std::string ring_;
  std::size_t frames_since_flush_ = 0;
  std::size_t flush_index_ = 0;
  CaptureWriterStats stats_;
};

}  // namespace icecube
