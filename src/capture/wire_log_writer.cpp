#include "capture/wire_log_writer.hpp"

#include <unistd.h>

#include <cerrno>
#include <filesystem>
#include <system_error>
#include <utility>

#include "capture/wire_log_reader.hpp"

namespace icecube {

WireLogWriter::WireLogWriter(std::string path, CaptureWriterOptions options,
                             Mode mode)
    : path_(std::move(path)), options_(options) {
  if (options_.ring_capacity < kCaptureFrameOverhead) {
    options_.ring_capacity = kCaptureFrameOverhead;
  }
  ring_.reserve(options_.ring_capacity);

  bool fresh = mode == Mode::kTruncate;
  if (mode == Mode::kResume) {
    std::string bytes;
    if (!read_file_bytes(path_, bytes)) {
      fresh = true;  // nothing to recover — start a new capture
    } else {
      const CaptureFile existing = read_capture(bytes);
      if (!existing.ok() && !existing.recovered()) {
        // A damaged header is not a capture; refuse to append garbage.
        error_ = existing.error;
        return;
      }
      if (existing.quarantined_bytes > 0) {
        std::error_code ec;
        std::filesystem::resize_file(path_, existing.intact_bytes, ec);
        if (ec) {
          error_ = {DecodeErrorKind::kTruncated, 0,
                    "cannot truncate torn tail of '" + path_ + "'"};
          return;
        }
        stats_.resumed_bytes = existing.quarantined_bytes;
      }
    }
  }

  file_ = std::fopen(path_.c_str(), fresh ? "wb" : "ab");
  if (file_ == nullptr) {
    error_ = {DecodeErrorKind::kEmptyInput, 0,
              "cannot open '" + path_ + "': " + std::system_category().message(errno)};
    return;
  }
  if (fresh) {
    const std::string header = encode_capture_header();
    if (std::fwrite(header.data(), 1, header.size(), file_) !=
        header.size()) {
      error_ = {DecodeErrorKind::kTruncated, 0,
                "cannot write capture header to '" + path_ + "'"};
      std::fclose(file_);
      file_ = nullptr;
    }
  }
}

WireLogWriter::~WireLogWriter() { close(); }

void WireLogWriter::record(CaptureRecord record) {
  if (!ok() || file_ == nullptr) return;
  const std::size_t need = kCaptureFrameOverhead + record.payload.size();
  // The ring is drained whenever the next frame would wrap it, so a frame
  // is always contiguous in the buffer (and an over-sized frame simply
  // flows through an empty ring in one drain).
  if (!ring_.empty() && ring_.size() + need > options_.ring_capacity) {
    drain();
    if (!ok()) return;
  }
  append_capture_frame(ring_, record);
  ++stats_.frames;
  stats_.bytes += need;
  ++frames_since_flush_;

  switch (options_.durability) {
    case CaptureDurability::kNone:
      if (ring_.size() >= options_.ring_capacity) drain();
      break;
    case CaptureDurability::kInterval:
      if (ring_.size() >= options_.ring_capacity ||
          frames_since_flush_ >= options_.flush_interval) {
        drain();
      }
      break;
    case CaptureDurability::kPerFrame:
      drain();
      break;
  }
}

bool WireLogWriter::flush() {
  if (!ok() || file_ == nullptr) return false;
  drain();
  return ok();
}

void WireLogWriter::drain() {
  if (file_ == nullptr || ring_.empty()) return;
  std::string batch = std::move(ring_);
  ring_.clear();
  ring_.reserve(options_.ring_capacity);
  frames_since_flush_ = 0;
  ++stats_.flushes;
  const std::size_t flush = flush_index_++;

  FaultPlan* faults = options_.faults;
  if (faults != nullptr && faults->capture_crash(flush)) {
    // The process dies mid-write: a prefix of the batch reaches the disk
    // (possibly cutting a frame between header and body) and nothing else
    // ever will. The writer stays dead, like its process.
    const std::size_t cut = faults->capture_cut(flush, batch.size());
    std::fwrite(batch.data(), 1, cut, file_);
    std::fflush(file_);
    ++stats_.torn_flushes;
    crashed_ = true;
    return;
  }
  if (faults != nullptr && faults->capture_short_write(flush)) {
    // A lying disk: the tail of this batch is lost but the writer keeps
    // appending afterwards. Recovery stops at the tear, so later frames
    // are quarantined with it — "resume from the last intact frame" is
    // the only promise a torn log can keep.
    const std::size_t cut = faults->capture_cut(flush, batch.size());
    batch.resize(cut);
    ++stats_.torn_flushes;
  } else if (faults != nullptr && faults->capture_bit_flip(flush)) {
    if (!batch.empty()) {
      const std::size_t pos = faults->capture_cut(flush + 0x5F, batch.size());
      batch[pos] = static_cast<char>(
          static_cast<unsigned char>(batch[pos]) ^ 0x40u);
      ++stats_.torn_flushes;
    }
  }

  if (std::fwrite(batch.data(), 1, batch.size(), file_) != batch.size()) {
    error_ = {DecodeErrorKind::kTruncated, 0,
              "short write to '" + path_ + "'"};
    return;
  }
  if (std::fflush(file_) != 0) {
    error_ = {DecodeErrorKind::kTruncated, 0,
              "cannot flush '" + path_ + "'"};
    return;
  }
  if (options_.durability == CaptureDurability::kPerFrame) {
    ::fsync(fileno(file_));
  }
}

void WireLogWriter::close() {
  if (file_ == nullptr) return;
  if (ok()) drain();
  std::fclose(file_);
  file_ = nullptr;
}

}  // namespace icecube
