#include "capture/chaos_spec_codec.hpp"

#include <charconv>
#include <cstdio>
#include <string_view>
#include <vector>

#include "serialize/framing.hpp"

namespace icecube {

namespace {

constexpr std::string_view kSpecMagic = "chaos-spec";
constexpr int kSpecVersion = 1;

std::string fmt_double(double v) {
  char buf[64];
  // 17 significant digits round-trip any double exactly, and re-printing
  // the parsed value reproduces the same string.
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

void put(std::string& out, std::string_view key, const std::string& value) {
  out += key;
  out += ' ';
  out += value;
  out += '\n';
}

std::vector<std::string_view> split(std::string_view line) {
  std::vector<std::string_view> tokens;
  std::size_t start = 0;
  while (start < line.size()) {
    const std::size_t end = line.find(' ', start);
    if (end == std::string_view::npos) {
      tokens.push_back(line.substr(start));
      break;
    }
    if (end > start) tokens.push_back(line.substr(start, end - start));
    start = end + 1;
  }
  return tokens;
}

bool parse_double(std::string_view token, double& out) {
  const char* first = token.data();
  const char* last = token.data() + token.size();
  const auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc{} && ptr == last;
}

}  // namespace

std::string encode_chaos_spec(const ChaosSpec& spec) {
  std::string out;
  out += kSpecMagic;
  out += ' ';
  out += std::to_string(kSpecVersion);
  out += '\n';
  put(out, "seed", std::to_string(spec.seed));
  put(out, "sites", std::to_string(spec.sites));
  put(out, "actions", std::to_string(spec.actions_per_site));
  put(out, "interval", std::to_string(spec.gossip_interval));
  put(out, "budget", std::to_string(spec.step_budget));
  put(out, "horizon", std::to_string(spec.fault_horizon));
  put(out, "pwindow", std::to_string(spec.partition_window));
  put(out, "crashlen", std::to_string(spec.crash_length));
  put(out, "deep", spec.deep_replay ? "1" : "0");
  put(out, "commit", spec.commitment ? "1" : "0");
  const FaultSpec& f = spec.faults;
  put(out, "corrupt", fmt_double(f.corrupt));
  put(out, "truncate", fmt_double(f.truncate));
  put(out, "site-down", fmt_double(f.site_down));
  put(out, "lose", fmt_double(f.lose));
  put(out, "max-corrupt", std::to_string(f.max_corrupt_bytes));
  put(out, "delay-max", std::to_string(f.delay_max));
  put(out, "reorder", fmt_double(f.reorder));
  put(out, "reorder-max", std::to_string(f.reorder_max));
  put(out, "duplicate", fmt_double(f.duplicate));
  put(out, "partition", fmt_double(f.partition));
  put(out, "drop-vote", fmt_double(f.drop_vote));
  put(out, "stale-vote", fmt_double(f.stale_vote));
  put(out, "capture-crash", fmt_double(f.capture_crash));
  put(out, "capture-short", fmt_double(f.capture_short));
  put(out, "capture-flip", fmt_double(f.capture_flip));
  for (const ChaosPartition& p : spec.partitions) {
    put(out, "cut",
        p.a + " " + p.b + " " + std::to_string(p.at) + " " +
            std::to_string(p.heal_at));
  }
  for (const ChaosCrash& c : spec.crashes) {
    put(out, "crash",
        c.site + " " + std::to_string(c.at) + " " +
            std::to_string(c.restart_at));
  }
  return out;
}

ChaosSpecDecode decode_chaos_spec(const std::string& text) {
  using serialize_detail::parse_number;
  ChaosSpecDecode out;
  if (text.empty()) {
    out.error = {DecodeErrorKind::kEmptyInput, 0, {}};
    return out;
  }

  std::vector<std::string_view> lines;
  std::string_view rest = text;
  while (!rest.empty()) {
    const std::size_t nl = rest.find('\n');
    lines.push_back(rest.substr(0, nl));
    if (nl == std::string_view::npos) break;
    rest.remove_prefix(nl + 1);
  }
  while (!lines.empty() && lines.back().empty()) lines.pop_back();
  if (lines.empty()) {
    out.error = {DecodeErrorKind::kEmptyInput, 0, {}};
    return out;
  }

  const std::vector<std::string_view> head = split(lines.front());
  if (head.size() != 2 || head[0] != kSpecMagic) {
    out.error = {DecodeErrorKind::kBadHeader, 1, std::string(lines.front())};
    return out;
  }
  const auto version = parse_number<int>(head[1]);
  if (!version) {
    out.error = {DecodeErrorKind::kBadHeader, 1, std::string(head[1])};
    return out;
  }
  if (*version < 1 || *version > kSpecVersion) {
    out.error = {DecodeErrorKind::kUnsupportedVersion, 1,
                 "spec version " + std::to_string(*version)};
    return out;
  }

  ChaosSpec& spec = out.spec;
  FaultSpec& f = spec.faults;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const std::size_t line_no = i + 1;
    const std::vector<std::string_view> tokens = split(lines[i]);
    if (tokens.empty()) continue;
    const std::string_view key = tokens.front();

    const auto want = [&](std::size_t n) {
      if (tokens.size() == n + 1) return true;
      out.error = {DecodeErrorKind::kBadSyntax, line_no,
                   std::string(lines[i])};
      return false;
    };
    const auto num = [&](std::string_view token, auto& field) {
      using T = std::remove_reference_t<decltype(field)>;
      const auto v = parse_number<T>(token);
      if (!v) {
        out.error = {DecodeErrorKind::kBadNumber, line_no,
                     std::string(token)};
        return false;
      }
      field = *v;
      return true;
    };
    const auto dbl = [&](std::string_view token, double& field) {
      if (!parse_double(token, field)) {
        out.error = {DecodeErrorKind::kBadNumber, line_no,
                     std::string(token)};
        return false;
      }
      return true;
    };
    const auto flag = [&](std::string_view token, bool& field) {
      if (token == "1") {
        field = true;
      } else if (token == "0") {
        field = false;
      } else {
        out.error = {DecodeErrorKind::kBadNumber, line_no,
                     std::string(token)};
        return false;
      }
      return true;
    };

    bool handled = true;
    if (key == "seed") {
      handled = want(1) && num(tokens[1], spec.seed);
    } else if (key == "sites") {
      handled = want(1) && num(tokens[1], spec.sites);
    } else if (key == "actions") {
      handled = want(1) && num(tokens[1], spec.actions_per_site);
    } else if (key == "interval") {
      handled = want(1) && num(tokens[1], spec.gossip_interval);
    } else if (key == "budget") {
      handled = want(1) && num(tokens[1], spec.step_budget);
    } else if (key == "horizon") {
      handled = want(1) && num(tokens[1], spec.fault_horizon);
    } else if (key == "pwindow") {
      handled = want(1) && num(tokens[1], spec.partition_window);
    } else if (key == "crashlen") {
      handled = want(1) && num(tokens[1], spec.crash_length);
    } else if (key == "deep") {
      handled = want(1) && flag(tokens[1], spec.deep_replay);
    } else if (key == "commit") {
      handled = want(1) && flag(tokens[1], spec.commitment);
    } else if (key == "corrupt") {
      handled = want(1) && dbl(tokens[1], f.corrupt);
    } else if (key == "truncate") {
      handled = want(1) && dbl(tokens[1], f.truncate);
    } else if (key == "site-down") {
      handled = want(1) && dbl(tokens[1], f.site_down);
    } else if (key == "lose") {
      handled = want(1) && dbl(tokens[1], f.lose);
    } else if (key == "max-corrupt") {
      handled = want(1) && num(tokens[1], f.max_corrupt_bytes);
    } else if (key == "delay-max") {
      handled = want(1) && num(tokens[1], f.delay_max);
    } else if (key == "reorder") {
      handled = want(1) && dbl(tokens[1], f.reorder);
    } else if (key == "reorder-max") {
      handled = want(1) && num(tokens[1], f.reorder_max);
    } else if (key == "duplicate") {
      handled = want(1) && dbl(tokens[1], f.duplicate);
    } else if (key == "partition") {
      handled = want(1) && dbl(tokens[1], f.partition);
    } else if (key == "drop-vote") {
      handled = want(1) && dbl(tokens[1], f.drop_vote);
    } else if (key == "stale-vote") {
      handled = want(1) && dbl(tokens[1], f.stale_vote);
    } else if (key == "capture-crash") {
      handled = want(1) && dbl(tokens[1], f.capture_crash);
    } else if (key == "capture-short") {
      handled = want(1) && dbl(tokens[1], f.capture_short);
    } else if (key == "capture-flip") {
      handled = want(1) && dbl(tokens[1], f.capture_flip);
    } else if (key == "cut") {
      ChaosPartition p;
      handled = want(4) && num(tokens[3], p.at) && num(tokens[4], p.heal_at);
      if (handled) {
        p.a = std::string(tokens[1]);
        p.b = std::string(tokens[2]);
        spec.partitions.push_back(std::move(p));
      }
    } else if (key == "crash") {
      ChaosCrash c;
      handled = want(3) && num(tokens[2], c.at) && num(tokens[3], c.restart_at);
      if (handled) {
        c.site = std::string(tokens[1]);
        spec.crashes.push_back(std::move(c));
      }
    } else {
      out.error = {DecodeErrorKind::kUnknownOp, line_no, std::string(key)};
      return out;
    }
    if (!handled) return out;
  }
  return out;
}

}  // namespace icecube
