#include "capture/wire_log_reader.hpp"

#include <cerrno>
#include <cstdio>
#include <system_error>
#include <utility>

namespace icecube {

CaptureFile read_capture(const std::string& bytes) {
  CaptureFile file;
  file.error = decode_capture_header(bytes, file.version);
  if (!file.error.ok()) {
    file.quarantined_bytes = bytes.size();
    return file;
  }

  std::size_t offset = kCaptureHeaderSize;
  std::size_t index = 1;
  while (true) {
    CaptureFrameDecode frame = decode_capture_frame(bytes, offset, index);
    if (!frame.ok()) {
      if (frame.error.kind == DecodeErrorKind::kEmptyInput) break;  // clean
      file.error = frame.error;
      break;
    }
    file.records.push_back(std::move(frame.record));
    offset += frame.consumed;
    ++index;
  }
  file.intact_bytes = offset;
  file.quarantined_bytes = bytes.size() - offset;
  return file;
}

bool read_file_bytes(const std::string& path, std::string& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::string bytes;
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    bytes.append(buf, n);
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!ok) return false;
  out = std::move(bytes);
  return true;
}

CaptureFile read_capture_file(const std::string& path) {
  std::string bytes;
  if (!read_file_bytes(path, bytes)) {
    CaptureFile file;
    file.error = {DecodeErrorKind::kEmptyInput, 0,
                  "cannot read '" + path + "': " + std::system_category().message(errno)};
    return file;
  }
  return read_capture(bytes);
}

}  // namespace icecube
