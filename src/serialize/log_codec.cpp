#include "serialize/log_codec.hpp"

#include <cstdint>
#include <sstream>
#include <stdexcept>

#include "jigsaw/actions.hpp"
#include "objects/calendar.hpp"
#include "objects/counter.hpp"
#include "objects/file_system.hpp"
#include "objects/line_file.hpp"
#include "objects/rw_register.hpp"
#include "objects/sysadmin.hpp"
#include "objects/text.hpp"
#include "serialize/framing.hpp"

namespace icecube {

namespace {

using serialize_detail::parse_number;

constexpr char kHeader[] = "icecube-log";

bool needs_escape(char c) {
  return c == '%' || c == ' ' || c == '\n' || c == '\r' || c == '\t' ||
         c == '|';
}

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

std::vector<std::string> split_ws(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream is(s);
  std::string token;
  while (is >> token) out.push_back(token);
  return out;
}

/// Splits a line into the four '|'-separated groups.
std::optional<std::vector<std::string>> split_groups(const std::string& line) {
  std::vector<std::string> groups;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= line.size(); ++i) {
    if (i == line.size() || line[i] == '|') {
      groups.push_back(line.substr(start, i - start));
      start = i + 1;
    }
  }
  if (groups.size() != 4) return std::nullopt;
  return groups;
}

}  // namespace

std::string escape_field(const std::string& raw) {
  static const char kHex[] = "0123456789abcdef";
  // Whitespace-tokenised formats cannot carry an empty token; "%-" is the
  // dedicated empty-string marker.
  if (raw.empty()) return "%-";
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    if (needs_escape(c)) {
      const auto byte = static_cast<unsigned char>(c);
      out.push_back('%');
      out.push_back(kHex[byte >> 4]);
      out.push_back(kHex[byte & 0xF]);
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::optional<std::string> unescape_field(const std::string& escaped) {
  if (escaped == "%-") return std::string{};
  std::string out;
  out.reserve(escaped.size());
  for (std::size_t i = 0; i < escaped.size(); ++i) {
    if (escaped[i] != '%') {
      out.push_back(escaped[i]);
      continue;
    }
    if (i + 2 >= escaped.size()) return std::nullopt;
    const int hi = hex_value(escaped[i + 1]);
    const int lo = hex_value(escaped[i + 2]);
    if (hi < 0 || lo < 0) return std::nullopt;
    out.push_back(static_cast<char>((hi << 4) | lo));
    i += 2;
  }
  return out;
}

std::string encode_log(const Log& log) {
  std::ostringstream os;
  os << kHeader << ' ' << serialize_detail::kWireVersion << ' '
     << escape_field(log.name()) << '\n';
  for (const auto& action : log) {
    const Tag& tag = action->tag();
    os << escape_field(tag.op) << " |";
    for (ObjectId t : action->targets()) os << ' ' << t.value();
    os << " |";
    for (std::int64_t p : tag.params) os << ' ' << p;
    os << " |";
    for (const auto& s : tag.str_params) os << ' ' << escape_field(s);
    os << '\n';
  }
  std::string body = os.str();
  body += serialize_detail::crc_trailer(body);
  return body;
}

ActionPtr ActionRegistry::make(const std::vector<ObjectId>& targets,
                               const Tag& tag) const {
  const auto it = factories_.find(tag.op);
  if (it == factories_.end()) return nullptr;
  try {
    return it->second(targets, tag);
  } catch (const std::exception&) {
    return nullptr;  // out-of-range params, bad sizes: malformed input
  }
}

DecodedLog decode_log(const std::string& text, const ActionRegistry& registry) {
  DecodedLog result;
  const auto frame = serialize_detail::parse_frame(text, kHeader);
  if (!frame.ok()) {
    result.error = frame.error;
    return result;
  }

  const auto header = split_ws(frame.header);
  if (header.size() != 3) {
    result.error = {DecodeErrorKind::kBadHeader, 1, frame.header};
    return result;
  }
  const auto name = unescape_field(header[2]);
  if (!name) {
    result.error = {DecodeErrorKind::kBadEscape, 1, header[2]};
    return result;
  }

  Log log(*name);
  for (std::size_t i = 0; i < frame.lines.size(); ++i) {
    const std::string& line = frame.lines[i];
    const std::size_t line_no = i + 2;  // 1-based; header is line 1
    if (line.empty()) continue;
    const auto groups = split_groups(line);
    if (!groups) {
      result.error = {DecodeErrorKind::kBadSyntax, line_no,
                      "expected 4 '|'-separated fields"};
      return result;
    }
    const auto op_tokens = split_ws((*groups)[0]);
    if (op_tokens.size() != 1) {
      result.error = {DecodeErrorKind::kBadSyntax, line_no,
                      "expected one op token"};
      return result;
    }
    const auto op = unescape_field(op_tokens[0]);
    if (!op) {
      result.error = {DecodeErrorKind::kBadEscape, line_no, op_tokens[0]};
      return result;
    }

    std::vector<ObjectId> targets;
    std::vector<std::int64_t> params;
    std::vector<std::string> strs;
    for (const auto& t : split_ws((*groups)[1])) {
      const auto value = parse_number<std::uint32_t>(t);
      if (!value) {
        result.error = {DecodeErrorKind::kBadNumber, line_no, t};
        return result;
      }
      targets.push_back(ObjectId(*value));
    }
    for (const auto& p : split_ws((*groups)[2])) {
      const auto value = parse_number<std::int64_t>(p);
      if (!value) {
        result.error = {DecodeErrorKind::kBadNumber, line_no, p};
        return result;
      }
      params.push_back(*value);
    }
    for (const auto& s : split_ws((*groups)[3])) {
      const auto unescaped = unescape_field(s);
      if (!unescaped) {
        result.error = {DecodeErrorKind::kBadEscape, line_no, s};
        return result;
      }
      strs.push_back(*unescaped);
    }

    if (!registry.knows(*op)) {
      result.error = {DecodeErrorKind::kUnknownOp, line_no, *op};
      return result;
    }
    ActionPtr action = registry.make(targets, Tag(*op, params, strs));
    if (action == nullptr) {
      result.error = {DecodeErrorKind::kBadOperands, line_no, *op};
      return result;
    }
    log.append(std::move(action));
  }
  result.log = std::move(log);
  return result;
}

ActionRegistry ActionRegistry::with_builtins() {
  ActionRegistry reg;
  using Targets = std::vector<ObjectId>;

  // Counter.
  reg.register_op("increment", [](const Targets& t, const Tag& tag) {
    return std::make_shared<IncrementAction>(t.at(0), tag.param(0));
  });
  reg.register_op("decrement", [](const Targets& t, const Tag& tag) {
    return std::make_shared<DecrementAction>(t.at(0), tag.param(0));
  });

  // Register.
  reg.register_op("write", [](const Targets& t, const Tag& tag) {
    return std::make_shared<WriteAction>(t.at(0), tag.param(0));
  });
  reg.register_op("read", [](const Targets& t, const Tag& tag) {
    if (tag.params.empty()) return std::make_shared<ReadAction>(t.at(0));
    return std::make_shared<ReadAction>(t.at(0), tag.param(0));
  });

  // File system.
  reg.register_op("mkdir", [](const Targets& t, const Tag& tag) {
    return std::make_shared<MkdirAction>(t.at(0), tag.str_param(0));
  });
  reg.register_op("fswrite", [](const Targets& t, const Tag& tag) {
    return std::make_shared<WriteFileAction>(t.at(0), tag.str_param(0),
                                             tag.str_param(1));
  });
  reg.register_op("fsdelete", [](const Targets& t, const Tag& tag) {
    return std::make_shared<DeleteAction>(t.at(0), tag.str_param(0));
  });

  // Calendar.
  reg.register_op("request", [](const Targets& t, const Tag& tag) {
    return std::make_shared<RequestAppointmentAction>(
        t.at(0), t.at(1), static_cast<int>(tag.param(0)),
        static_cast<int>(tag.param(1)), tag.str_param(0));
  });
  reg.register_op("cancel", [](const Targets& t, const Tag& tag) {
    return std::make_shared<CancelAppointmentAction>(
        t.at(0), static_cast<int>(tag.param(0)));
  });

  // Sys-admin.
  reg.register_op("upgrade", [](const Targets& t, const Tag& tag) {
    return std::make_shared<UpgradeOsAction>(t.at(0),
                                             static_cast<int>(tag.param(0)),
                                             static_cast<int>(tag.param(1)));
  });
  reg.register_op("buy", [](const Targets& t, const Tag& tag) {
    return std::make_shared<BuyDeviceAction>(t.at(0), t.at(1),
                                             static_cast<int>(tag.param(0)),
                                             tag.param(1));
  });
  reg.register_op("install", [](const Targets& t, const Tag& tag) {
    return std::make_shared<InstallDriverAction>(
        t.at(0), static_cast<int>(tag.param(0)),
        static_cast<int>(tag.param(1)));
  });
  reg.register_op("fund", [](const Targets& t, const Tag& tag) {
    return std::make_shared<FundBudgetAction>(t.at(0), tag.param(0));
  });

  // Jigsaw.
  reg.register_op("insert", [](const Targets& t, const Tag& tag) {
    return std::make_shared<jigsaw::InsertAction>(
        t.at(0), static_cast<int>(tag.param(0)), /*strict=*/false);
  });
  reg.register_op("insert!", [](const Targets& t, const Tag& tag) {
    return std::make_shared<jigsaw::InsertAction>(
        t.at(0), static_cast<int>(tag.param(0)), /*strict=*/true);
  });
  reg.register_op("join", [](const Targets& t, const Tag& tag) {
    return std::make_shared<jigsaw::JoinAction>(
        t.at(0), static_cast<int>(tag.param(0)),
        static_cast<jigsaw::Edge>(tag.param(1)),
        static_cast<int>(tag.param(2)),
        static_cast<jigsaw::Edge>(tag.param(3)));
  });
  reg.register_op("remove", [](const Targets& t, const Tag& tag) {
    return std::make_shared<jigsaw::RemoveAction>(
        t.at(0), static_cast<int>(tag.param(0)));
  });

  // OT text.
  reg.register_op("tins", [](const Targets& t, const Tag& tag) {
    return std::make_shared<InsertTextAction>(
        t.at(0), static_cast<int>(tag.param(0)),
        static_cast<std::size_t>(tag.param(1)), tag.str_param(0));
  });
  reg.register_op("tdel", [](const Targets& t, const Tag& tag) {
    return std::make_shared<DeleteTextAction>(
        t.at(0), static_cast<int>(tag.param(0)),
        static_cast<std::size_t>(tag.param(1)),
        static_cast<std::size_t>(tag.param(2)));
  });

  // Line file.
  reg.register_op("setline", [](const Targets& t, const Tag& tag) {
    return std::make_shared<SetLineAction>(
        t.at(0), static_cast<std::size_t>(tag.param(0)), tag.str_param(0),
        tag.str_param(1));
  });

  return reg;
}

}  // namespace icecube
