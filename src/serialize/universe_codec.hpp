// Universe (replica state) serialization.
//
// A site that shuts down between the isolated-execution phase and the next
// reconciliation needs its committed state and pending log on disk; a site
// that joins a group needs a state transfer. This codec persists a
// `Universe` of built-in substrate objects to a line-oriented text format
// and restores it through a registry of per-type state factories.
//
// Format version 2 (current):
//
//   icecube-universe 2
//   <type-name> <escaped state payload>
//   #crc32 <8-hex digest of everything above>
//
// Object ids are implicit (line order), matching `Universe::add` order.
// The CRC-32 trailer lets a receiving site classify transport damage
// (truncation vs corruption) before trusting the payload; version-1 files
// (no trailer) remain decodable. Each substrate defines its own payload
// encoding; applications register custom types with
// `ObjectRegistry::register_type`.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "core/universe.hpp"
#include "serialize/decode_error.hpp"

namespace icecube {

/// Reconstructs shared objects from (type name, payload).
class ObjectRegistry {
 public:
  using Factory =
      std::function<std::unique_ptr<SharedObject>(const std::string& payload)>;
  using Encoder = std::function<std::string(const SharedObject&)>;
  using Matcher = std::function<bool(const SharedObject&)>;

  /// Registry covering every substrate in this repository.
  [[nodiscard]] static ObjectRegistry with_builtins();

  /// Registers a type: `matcher` recognises instances during encoding
  /// (typically a dynamic_cast check), `encoder` renders the state payload,
  /// `factory` rebuilds the object (may throw on malformed payloads).
  void register_type(std::string name, Matcher matcher, Encoder encoder,
                     Factory factory) {
    types_[std::move(name)] = {std::move(matcher), std::move(encoder),
                               std::move(factory)};
  }

  [[nodiscard]] bool knows(const std::string& type) const {
    return types_.contains(type);
  }
  /// Type name used for `object` when encoding, empty if unknown.
  [[nodiscard]] std::string type_of(const SharedObject& object) const;
  [[nodiscard]] std::string encode(const std::string& type,
                                   const SharedObject& object) const;
  [[nodiscard]] std::unique_ptr<SharedObject> decode(
      const std::string& type, const std::string& payload) const;

 private:
  struct Entry {
    Matcher matcher;
    Encoder encoder;
    Factory factory;
  };
  std::map<std::string, Entry> types_;
};

/// Serialises every object of `universe` (all must be known to `registry`).
/// Returns nullopt if some object's type is not registered.
[[nodiscard]] std::optional<std::string> encode_universe(
    const Universe& universe, const ObjectRegistry& registry);

struct DecodedUniverse {
  std::optional<Universe> universe;
  DecodeError error;  ///< kind == kNone iff decoding succeeded

  [[nodiscard]] bool ok() const { return universe.has_value(); }
};

/// Parses a serialised universe. Accepts versions 1 (legacy, no trailer)
/// and 2 (CRC-verified).
[[nodiscard]] DecodedUniverse decode_universe(const std::string& text,
                                              const ObjectRegistry& registry);

}  // namespace icecube
