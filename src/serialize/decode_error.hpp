// Structured decode failures for the shipping codecs.
//
// A site receiving a log or universe over an unreliable channel needs to
// know *why* a decode failed, not just that it did: truncation and checksum
// corruption are transport faults worth a retry, while an unknown op or a
// bad payload is a version/compatibility problem that a retransmission will
// not fix. `DecodeError` carries that taxonomy plus the 1-based line number
// and the offending token, replacing the codecs' earlier bare strings.
#pragma once

#include <cstddef>
#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>

namespace icecube {

/// Why a decode failed. `kNone` means success.
enum class DecodeErrorKind : std::uint8_t {
  kNone,
  kEmptyInput,          ///< nothing to decode at all
  kBadHeader,           ///< first line is not a recognised header
  kUnsupportedVersion,  ///< recognised format, version we cannot read
  kTruncated,           ///< v2 payload ends before its CRC trailer
  kCorrupted,           ///< CRC trailer present but does not match
  kBadSyntax,           ///< line structure wrong (field count, shape)
  kBadNumber,           ///< numeric field failed to parse
  kBadEscape,           ///< %-escape sequence malformed
  kUnknownOp,           ///< op / object type not in the registry
  kBadOperands,         ///< known op, but the factory rejected the data
};

[[nodiscard]] constexpr std::string_view to_string(DecodeErrorKind kind) {
  switch (kind) {
    case DecodeErrorKind::kNone:
      return "ok";
    case DecodeErrorKind::kEmptyInput:
      return "empty input";
    case DecodeErrorKind::kBadHeader:
      return "bad header";
    case DecodeErrorKind::kUnsupportedVersion:
      return "unsupported version";
    case DecodeErrorKind::kTruncated:
      return "truncated payload";
    case DecodeErrorKind::kCorrupted:
      return "corrupted payload";
    case DecodeErrorKind::kBadSyntax:
      return "bad syntax";
    case DecodeErrorKind::kBadNumber:
      return "bad number";
    case DecodeErrorKind::kBadEscape:
      return "bad escape";
    case DecodeErrorKind::kUnknownOp:
      return "unknown op";
    case DecodeErrorKind::kBadOperands:
      return "bad operands";
  }
  return "?";
}

/// One decode failure: what kind, where, and the offending text.
struct DecodeError {
  DecodeErrorKind kind = DecodeErrorKind::kNone;
  std::size_t line = 0;  ///< 1-based line number; 0 when not line-specific
  std::string context;   ///< offending token or short explanation

  [[nodiscard]] bool ok() const { return kind == DecodeErrorKind::kNone; }
  /// Mirrors the old `std::string error` convention: empty iff no error.
  [[nodiscard]] bool empty() const { return ok(); }

  [[nodiscard]] std::string message() const {
    std::string out{to_string(kind)};
    if (line != 0) out += " at line " + std::to_string(line);
    if (!context.empty()) out += ": " + context;
    return out;
  }

  /// Transport faults are worth a retransmission; format/content faults
  /// are not.
  [[nodiscard]] bool transient() const {
    return kind == DecodeErrorKind::kTruncated ||
           kind == DecodeErrorKind::kCorrupted ||
           kind == DecodeErrorKind::kEmptyInput;
  }

  [[nodiscard]] static DecodeError at(DecodeErrorKind kind, std::size_t line,
                                      std::string context = {}) {
    return DecodeError{kind, line, std::move(context)};
  }
};

inline std::ostream& operator<<(std::ostream& os, const DecodeError& error) {
  return os << error.message();
}

}  // namespace icecube
