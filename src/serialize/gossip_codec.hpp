// Gossip frame — the wire format of one anti-entropy exchange.
//
// The asynchronous protocol (replica/gossip.hpp) ships three payloads per
// message: the sender's committed history, its pending log, and — the
// state-transfer path — its committed universe. Each sub-payload is encoded
// by the existing codecs (log_codec, universe_codec) and keeps its own CRC
// trailer, so transport damage to any one section is classified by that
// section's decoder. The frame adds the envelope: who is speaking, at which
// commitment epoch, and the per-action uids that let a receiver match
// actions across histories without relying on tags.
//
// Format version 1 (byte-oriented; sections carry their exact byte length
// so embedded newlines never confuse the parser):
//
//   icecube-gossip 1 <escaped-site> <epoch> <n-history> <n-pending>
//   <escaped uid>                      x n-history
//   <escaped uid>                      x n-pending
//   @history <byte-length>
//   <bytes of encode_log(history)>
//   @pending <byte-length>
//   <bytes of encode_log(pending)>
//   @universe <byte-length>
//   <bytes of encode_universe(committed)>
//   #gossip-end
//
// A truncated frame (a section length overrunning the buffer, or a missing
// end marker) is reported as kTruncated before any section is trusted;
// the fault-injection sweeps rely on that ordering.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "serialize/decode_error.hpp"

namespace icecube {

/// One gossip message, envelope plus still-encoded sections. The gossip
/// layer decodes the sections with the log/universe codecs (and their
/// registries); the frame codec only handles the envelope.
struct GossipFrame {
  std::string site;          ///< sender name
  std::uint64_t epoch = 0;   ///< sender's commitment epoch
  std::vector<std::string> history_uids;  ///< one per history action
  std::vector<std::string> pending_uids;  ///< one per pending action
  std::string history_bytes;   ///< encode_log(history) output
  std::string pending_bytes;   ///< encode_log(pending) output
  std::string universe_bytes;  ///< encode_universe(committed) output
};

/// Serialises `frame` to the version-1 byte format above.
[[nodiscard]] std::string encode_gossip_frame(const GossipFrame& frame);

struct DecodedGossipFrame {
  std::optional<GossipFrame> frame;
  DecodeError error;  ///< kind == kNone iff decoding succeeded

  [[nodiscard]] bool ok() const { return frame.has_value(); }
};

/// Parses a gossip frame envelope. Section bytes are returned verbatim;
/// decode them with decode_log / decode_universe.
[[nodiscard]] DecodedGossipFrame decode_gossip_frame(const std::string& text);

}  // namespace icecube
