// Shared wire-framing for the shipping codecs (internal).
//
// Both payload kinds (logs, universes) use the same frame:
//
//   <magic> <version> [header fields...]
//   <content lines...>
//   #crc32 <8-hex digest of every byte above>     (version >= 2)
//
// `parse_frame` validates the frame before any content is parsed, so
// transport faults (truncation, corruption) are classified first and never
// misreported as syntax errors. Strict number parsing lives here too: the
// std::sto* family silently accepts trailing garbage and negative values
// where unsigned is expected, which under corruption turns damaged tokens
// into plausible-looking values.
#pragma once

#include <charconv>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "serialize/decode_error.hpp"
#include "util/crc32.hpp"

namespace icecube::serialize_detail {

inline constexpr std::string_view kCrcPrefix = "#crc32 ";
inline constexpr int kWireVersion = 2;

/// Whole-token integer parse; nullopt on partial consumption, sign errors,
/// or overflow (unlike std::stoull / std::stoll).
template <typename T>
[[nodiscard]] std::optional<T> parse_number(std::string_view token) {
  if (token.empty()) return std::nullopt;
  T value{};
  const char* first = token.data();
  const char* last = token.data() + token.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last) return std::nullopt;
  return value;
}

/// Renders the trailer line (with terminating newline) for `body`, which
/// must be every byte of the frame above the trailer.
[[nodiscard]] inline std::string crc_trailer(std::string_view body) {
  static constexpr char kHex[] = "0123456789abcdef";
  const std::uint32_t digest = Crc32::of(body);
  std::string line{kCrcPrefix};
  for (int shift = 28; shift >= 0; shift -= 4) {
    line.push_back(kHex[(digest >> shift) & 0xFu]);
  }
  line.push_back('\n');
  return line;
}

/// A validated frame: header line, content lines, negotiated version.
struct Frame {
  int version = 0;
  std::string header;              ///< first line, verbatim
  std::vector<std::string> lines;  ///< content lines (header and trailer
                                   ///< excluded); line i is file line i + 2
  DecodeError error;

  [[nodiscard]] bool ok() const { return error.ok(); }
};

/// Splits `text` into lines, checks the magic + version, and for v2 frames
/// locates and verifies the CRC trailer. Content is not parsed.
[[nodiscard]] inline Frame parse_frame(const std::string& text,
                                       std::string_view magic) {
  Frame frame;
  if (text.empty()) {
    frame.error = {DecodeErrorKind::kEmptyInput, 0, {}};
    return frame;
  }

  // Split keeping byte offsets, so the CRC can cover the exact trailer-free
  // prefix.
  std::vector<std::string> lines;
  std::vector<std::size_t> offsets;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t nl = text.find('\n', start);
    const std::size_t end = nl == std::string::npos ? text.size() : nl;
    if (end == text.size() && end == start) break;  // no trailing empty line
    offsets.push_back(start);
    lines.push_back(text.substr(start, end - start));
    if (nl == std::string::npos) break;
    start = nl + 1;
  }
  if (lines.empty()) {
    frame.error = {DecodeErrorKind::kEmptyInput, 0, {}};
    return frame;
  }

  frame.header = lines.front();
  // "<magic> <version>[ ...]" — tolerate anything after the version token.
  if (frame.header.substr(0, magic.size()) != magic ||
      (frame.header.size() > magic.size() &&
       frame.header[magic.size()] != ' ')) {
    frame.error = {DecodeErrorKind::kBadHeader, 1, frame.header};
    return frame;
  }
  std::string_view rest = std::string_view(frame.header).substr(magic.size());
  while (!rest.empty() && rest.front() == ' ') rest.remove_prefix(1);
  const std::size_t ver_end = rest.find(' ');
  const auto version = parse_number<int>(
      rest.substr(0, ver_end == std::string_view::npos ? rest.size()
                                                       : ver_end));
  if (!version) {
    frame.error = {DecodeErrorKind::kBadHeader, 1, frame.header};
    return frame;
  }
  if (*version < 1 || *version > kWireVersion) {
    frame.error = {DecodeErrorKind::kUnsupportedVersion, 1,
                   "version " + std::to_string(*version)};
    return frame;
  }
  frame.version = *version;

  std::size_t content_end = lines.size();
  if (frame.version >= 2) {
    // v2 frames end with a newline-terminated trailer line; a payload cut
    // anywhere — including one byte short — is truncation, not a frame.
    if (text.back() != '\n') {
      frame.error = {DecodeErrorKind::kTruncated, lines.size(),
                     "unterminated trailer"};
      return frame;
    }
    // The trailer must be the last non-empty line.
    std::size_t last = lines.size();
    while (last > 1 && lines[last - 1].empty()) --last;
    if (last <= 1 || lines[last - 1].substr(0, kCrcPrefix.size()) !=
                         kCrcPrefix) {
      frame.error = {DecodeErrorKind::kTruncated, last,
                     "missing crc trailer"};
      return frame;
    }
    const std::string digest_hex = lines[last - 1].substr(kCrcPrefix.size());
    std::uint32_t expected = 0;
    bool hex_ok = digest_hex.size() == 8;
    for (char c : digest_hex) {
      const int v = c >= '0' && c <= '9'   ? c - '0'
                    : c >= 'a' && c <= 'f' ? c - 'a' + 10
                    : c >= 'A' && c <= 'F' ? c - 'A' + 10
                                           : -1;
      if (v < 0) {
        hex_ok = false;
        break;
      }
      expected = (expected << 4) | static_cast<std::uint32_t>(v);
    }
    if (!hex_ok) {
      frame.error = {DecodeErrorKind::kCorrupted, last, "bad crc trailer"};
      return frame;
    }
    const std::string_view body =
        std::string_view(text).substr(0, offsets[last - 1]);
    if (Crc32::of(body) != expected) {
      frame.error = {DecodeErrorKind::kCorrupted, last, "crc mismatch"};
      return frame;
    }
    content_end = last - 1;
  }

  frame.lines.assign(lines.begin() + 1,
                     lines.begin() + static_cast<std::ptrdiff_t>(content_end));
  return frame;
}

}  // namespace icecube::serialize_detail
